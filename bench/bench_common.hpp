// bench/bench_common.hpp
//
// Shared scaffolding for the paper-artifact benches: command-line options
// (problem class, trials, CSV emission) and the benchmark list of the
// paper's single-program study.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cli/flags.hpp"
#include "paxsim.hpp"

// Build provenance macros are injected by the root CMakeLists on
// paxsim_options; default them so out-of-tree compiles still build.
#ifndef PAXSIM_BUILD_TYPE
#define PAXSIM_BUILD_TYPE "unknown"
#endif
#ifndef PAXSIM_BUILD_NATIVE
#define PAXSIM_BUILD_NATIVE 0
#endif

namespace paxsim::bench {

/// Options common to every artifact bench.
struct BenchOptions {
  harness::RunOptions run;
  int jobs = 1;           ///< host worker threads for independent cells
  bool csv = false;       ///< additionally emit CSV rows after each table
  std::string plot_dir;   ///< when set, also write gnuplot .dat/.gp files
  /// --store=DIR: persistent result store every engine the bench builds
  /// attaches (attach_store below); previously answered cells skip
  /// simulation.  Empty / --store=off runs detached, bit-identical to the
  /// storeless engine.
  std::string store_dir;
};

/// The bench flag table: the exact run/engine tables the `paxsim` CLI
/// registers (cli/flags.hpp) plus the bench-only output flags, so every
/// artifact accepts the same spellings with the same validation as the CLI
/// by construction.
inline cli::FlagSet make_bench_flags(BenchOptions& opt) {
  cli::FlagSet fs;
  cli::register_run_flags(fs, &opt.run);
  cli::register_engine_flags(fs, &opt.jobs, &opt.store_dir);
  fs.add_flag("csv", &opt.csv, "additionally emit CSV rows after each table");
  fs.add_string("plot", &opt.plot_dir, "DIR",
                "also write gnuplot .dat/.gp files under DIR");
  return fs;
}

/// Parses every flag in the shared run/engine tables (--class, --trials,
/// --seed, --jobs, --par, --par-window, --grain, --sched, --chunk, --scale,
/// --machine, --check, --trace, --no-verify, --store) plus --csv and
/// --plot=DIR.  Returns false (after printing usage or the error) on an
/// unknown or invalid flag.
inline bool parse_args(int argc, char** argv, BenchOptions& opt) {
  const cli::FlagSet fs = make_bench_flags(opt);
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--help" || a == "-h") {
      std::printf("usage: %s [flags]\n%s", argv[0], fs.help_text(2).c_str());
      return false;
    }
    std::string error;
    if (fs.parse_flag(a, &error) != cli::FlagSet::Outcome::kOk) {
      std::fprintf(stderr, "%s (try --help)\n", error.c_str());
      return false;
    }
  }
  return true;
}

/// Host/build provenance as a JSON object fragment, e.g.
///   "host":{"hardware_concurrency":16,"jobs":2,"par":1,
///           "compiler":"13.2.0","build_type":"Release","native":false}
/// Embedded in every bench JSON envelope so throughput trajectories from
/// different machines, thread budgets and build flavours are never compared
/// as if they were the same experiment.
inline std::string host_provenance_json(const BenchOptions& opt) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "\"host\":{\"hardware_concurrency\":%u,\"jobs\":%d,"
                "\"par\":%d,\"compiler\":\"%s\",\"build_type\":\"%s\","
                "\"native\":%s}",
                std::thread::hardware_concurrency(), opt.jobs, opt.run.par,
                __VERSION__, PAXSIM_BUILD_TYPE,
                PAXSIM_BUILD_NATIVE ? "true" : "false");
  return std::string(buf);
}

/// Emits a one-line provenance envelope for artifacts whose per-row JSON
/// lines predate the "host" field: downstream collectors join it on the
/// artifact name.  New artifacts should inline host_provenance_json() into
/// their rows instead.
inline void print_host_provenance(const char* artifact,
                                  const BenchOptions& opt) {
  std::printf("{\"artifact\":\"%s\",\"kind\":\"host_provenance\",%s}\n",
              artifact, host_provenance_json(opt).c_str());
}

/// Same provenance block for the file-writing artifacts that stream a
/// schema'd document through report::Json: emits `"host":{...}` into the
/// currently open object.
inline void write_host_provenance(report::Json& j, const BenchOptions& opt) {
  j.key("host").object();
  j.field("hardware_concurrency",
          static_cast<unsigned>(std::thread::hardware_concurrency()));
  j.field("jobs", opt.jobs);
  j.field("par", opt.run.par);
  j.field("compiler", __VERSION__);
  j.field("build_type", PAXSIM_BUILD_TYPE);
  j.field("native", PAXSIM_BUILD_NATIVE != 0);
  j.end();
}

/// Attaches the --store directory (when given) to a freshly built engine.
/// Every artifact that constructs an ExperimentEngine calls this right
/// after construction, so `--store=` works uniformly across bench/.
inline void attach_store(harness::ExperimentEngine& engine,
                         const BenchOptions& opt) {
  if (!opt.store_dir.empty()) {
    engine.set_store(std::make_shared<serve::ResultStore>(opt.store_dir));
  }
}

/// One-line engine accounting footer (cache effectiveness + pool reuse).
inline void print_engine_stats(const harness::ExperimentEngine& engine) {
  const harness::EngineStats s = engine.stats();
  std::printf(
      "engine: %llu simulated, %llu cached (hit rate %.1f%%), "
      "%llu machines built for %llu acquisitions\n",
      static_cast<unsigned long long>(s.cache_misses),
      static_cast<unsigned long long>(s.cache_hits), 100.0 * s.hit_rate(),
      static_cast<unsigned long long>(s.machines_created),
      static_cast<unsigned long long>(s.machines_acquired));
}

/// The six benchmarks of the paper's single-program sections (the two
/// remaining suite members, EP and IS, appear in the cross-product study).
inline const std::vector<npb::Benchmark>& study_benchmarks() {
  static const std::vector<npb::Benchmark> v = {
      npb::Benchmark::kCG, npb::Benchmark::kMG, npb::Benchmark::kLU,
      npb::Benchmark::kFT, npb::Benchmark::kSP, npb::Benchmark::kBT};
  return v;
}

/// Prints the Table-1 header so each artifact is self-describing.
inline void print_study_header(const char* artifact,
                               double machine_scale = 16.0) {
  std::printf("paxsim reproduction of Grant & Afsahi, IPPS 2007 — %s\n",
              artifact);
  std::printf(
      "machine: 2 chips x 2 cores x 2 HT contexts (capacity scale 1/%g)\n\n",
      machine_scale);
}

/// Topology-aware header variant for the artifacts that honour --machine:
/// the shape line is derived from the Topology accessors, not hard-coded.
inline void print_study_header(const char* artifact, const sim::Topology& topo,
                               double machine_scale = 16.0) {
  std::printf("paxsim reproduction of Grant & Afsahi, IPPS 2007 — %s\n",
              artifact);
  std::printf(
      "machine: %s — %d chips x %d cores x %d contexts "
      "(capacity scale 1/%g)\n\n",
      topo.name.c_str(), topo.packages, topo.cores_per_package,
      topo.smt_per_core, machine_scale);
}

}  // namespace paxsim::bench
