// bench/engine_throughput.cpp — harness-engineering artifact: measures the
// ExperimentEngine itself rather than the simulated machine.  Times one
// Figure-3-shaped plan (every study benchmark on every Table-1
// configuration, serial baselines included) three ways:
//
//   cold, 1 job      — the pre-engine behaviour: every cell simulated
//   cold, --jobs=N   — the same cells fanned out over N host workers
//   warm re-run      — the whole plan answered from the memo cache
//
// and reports trials/sec, the parallel speedup, the warm-pass hit rate and
// the machine-pool reuse counts as a single JSON object (plus a readable
// summary), so harness regressions are scriptable to catch.
//
// paxlint: allow-file(wallclock) -- this bench's whole point is timing the harness on the host; nothing here feeds simulated state
#include <chrono>
#include <cstdio>

#include "bench/bench_common.hpp"

using namespace paxsim;

namespace {

struct Pass {
  double seconds = 0;
  std::uint64_t cells = 0;  // simulated + cached cells the pass answered
  harness::EngineStats stats;
};

Pass run_pass(harness::ExperimentEngine& engine,
              const harness::ExperimentPlan& plan) {
  const harness::EngineStats before = engine.stats();
  const auto t0 = std::chrono::steady_clock::now();
  (void)engine.run(plan);
  const auto t1 = std::chrono::steady_clock::now();
  Pass p;
  p.seconds = std::chrono::duration<double>(t1 - t0).count();
  p.stats = engine.stats();
  p.cells = (p.stats.cache_hits - before.cache_hits) +
            (p.stats.cache_misses - before.cache_misses);
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions opt;
  opt.run.cls = npb::ProblemClass::kClassS;  // engine overhead, not the sim
  opt.jobs = 4;
  if (!bench::parse_args(argc, argv, opt)) return 1;
  bench::print_study_header("engine throughput: pooling, memoization, --jobs");
  bench::print_host_provenance("engine_throughput", opt);

  const auto plan = harness::ExperimentPlan(opt.run, harness::all_configs())
                        .add_benchmarks(bench::study_benchmarks())
                        .with_serial_baselines()
                        .trials(opt.run.trials);

  harness::ExperimentEngine serial_engine(1);
  const Pass cold1 = run_pass(serial_engine, plan);

  harness::ExperimentEngine parallel_engine(opt.jobs);
  const Pass coldN = run_pass(parallel_engine, plan);

  // Same plan on the warm engine: every cell is a cache hit.
  const Pass warm = run_pass(parallel_engine, plan);

  const double speedup = coldN.seconds > 0 ? cold1.seconds / coldN.seconds : 0;
  const double warm_hit_rate =
      warm.cells > 0
          ? static_cast<double>(warm.stats.cache_hits -
                                coldN.stats.cache_hits) /
                static_cast<double>(warm.cells)
          : 0;

  std::printf("cold 1 job : %6.2f s, %5.1f cells/s (%llu cells)\n",
              cold1.seconds, static_cast<double>(cold1.cells) / cold1.seconds,
              static_cast<unsigned long long>(cold1.cells));
  std::printf("cold %d jobs: %6.2f s, %5.1f cells/s, speedup %.2fx\n",
              opt.jobs, coldN.seconds,
              static_cast<double>(coldN.cells) / coldN.seconds, speedup);
  std::printf("warm re-run: %6.2f s, hit rate %.1f%%\n", warm.seconds,
              100.0 * warm_hit_rate);
  std::printf("machine pool: %llu built for %llu acquisitions (%llu reuses)\n",
              static_cast<unsigned long long>(warm.stats.machines_created),
              static_cast<unsigned long long>(warm.stats.machines_acquired),
              static_cast<unsigned long long>(warm.stats.machines_reused()));

  // One machine-readable line for CI trend tracking.
  std::printf(
      "{\"artifact\":\"engine_throughput\",\"class\":\"%s\","
      "\"trials\":%d,\"jobs\":%d,\"cells\":%llu,"
      "\"cold_1job_sec\":%.4f,\"cold_njob_sec\":%.4f,"
      "\"parallel_speedup\":%.3f,\"warm_sec\":%.4f,"
      "\"warm_hit_rate\":%.4f,"
      "\"machines_created\":%llu,\"machines_acquired\":%llu}\n",
      std::string(npb::class_name(opt.run.cls)).c_str(), opt.run.trials,
      opt.jobs, static_cast<unsigned long long>(cold1.cells), cold1.seconds,
      coldN.seconds, speedup, warm.seconds, warm_hit_rate,
      static_cast<unsigned long long>(warm.stats.machines_created),
      static_cast<unsigned long long>(warm.stats.machines_acquired));
  return 0;
}
