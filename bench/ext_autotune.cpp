// bench/ext_autotune.cpp — EXTENSION artifact: model-driven autotuning.
//
// The paper finds its Table-2 best configurations by brute force: simulate
// every architecture x benchmark cell and read off the winner.  This
// artifact asks whether the PR 4 analytical model can steer that search —
// the tuner explores the configuration space through the model tier
// (microseconds per point after one profiling run), then validates only
// the top-ranked candidates on the cycle-level simulator.  With the
// default greedy strategy it rediscovers every per-kernel winner with a
// quarter of the simulator invocations the grid needs, and the emitted
// tuning_report records both the winners and the exact model/simulator
// cell counts so the claim is checkable from the artifact alone.
#include <fstream>
#include <iostream>

#include "bench/bench_common.hpp"
#include "paxsim.hpp"

using namespace paxsim;

int main(int argc, char** argv) {
  bench::BenchOptions opt;
  opt.run.cls = npb::ProblemClass::kClassS;
  std::string strategy = "greedy";
  int top_k = 2;
  int budget = 48;
  std::string out_path = "autotune_report.json";

  // The shared run/engine table plus the tuner's own knobs — one FlagSet,
  // so --help and validation cover both uniformly.
  cli::FlagSet fs = bench::make_bench_flags(opt);
  fs.add_string("strategy", &strategy, "NAME",
                "search strategy: grid, greedy or anneal");
  fs.add_int("top-k", &top_k, 1, "N",
             "simulator validations per kernel (non-exhaustive strategies)");
  fs.add_int("budget", &budget, 1, "N", "anneal proposal steps");
  fs.add_string("out", &out_path, "FILE",
                "tuning_report JSON path (\"off\" disables the file)");
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--help" || a == "-h") {
      std::printf("usage: %s [flags]\n%s", argv[0], fs.help_text(2).c_str());
      return 1;
    }
    std::string error;
    if (fs.parse_flag(a, &error) != cli::FlagSet::Outcome::kOk) {
      std::fprintf(stderr, "%s (try --help)\n", error.c_str());
      return 1;
    }
  }

  const std::string machine_spec =
      opt.run.topology == nullptr ? std::string() : opt.run.topology->name;
  if (opt.run.topology == nullptr) {
    bench::print_study_header("Extension: model-driven autotuning");
  } else {
    bench::print_study_header("Extension: model-driven autotuning",
                              *opt.run.topology, opt.run.machine_scale);
  }
  bench::print_host_provenance("ext_autotune", opt);

  harness::ExperimentEngine engine(opt.jobs);
  bench::attach_store(engine, opt);

  const std::vector<npb::Benchmark> benches(std::begin(npb::kAllBenchmarks),
                                            std::end(npb::kAllBenchmarks));
  tune::TuneOptions topt;
  topt.strategy = strategy;
  topt.top_k = top_k;
  topt.anneal_budget = budget;
  topt.grains = {opt.run.grain};
  topt.scales = {opt.run.machine_scale};

  tune::TuneReport rep;
  try {
    rep = tune::tune(engine, benches, opt.run, machine_spec, topt);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  harness::Table table(
      "autotuned best configuration per kernel (strategy " + rep.strategy +
          ", class " + rep.problem_class + ")",
      {"sim Mcycles", "speedup", "model cells", "sim cells"});
  for (const tune::KernelResult& kr : rep.kernels) {
    table.add_row(std::string(npb::benchmark_name(kr.bench)) + "  " +
                      kr.best.config_name,
                  {kr.best.sim_wall / 1e6, kr.best.sim_speedup,
                   static_cast<double>(kr.model_cells),
                   static_cast<double>(kr.sim_cells)});
  }
  table.print(std::cout, 2);
  if (opt.csv) table.print_csv(std::cout);

  std::size_t agreed = 0, sim_cells = 0, model_cells = 0;
  for (const tune::KernelResult& kr : rep.kernels) {
    if (kr.model_agrees) ++agreed;
    sim_cells += kr.sim_cells;
    model_cells += kr.model_cells;
  }
  std::printf(
      "model's top pick was the measured winner on %zu/%zu kernels; "
      "%zu model evaluations steered %zu simulator cells\n",
      agreed, rep.kernels.size(), model_cells, sim_cells);
  bench::print_engine_stats(engine);

  if (!out_path.empty() && out_path != "off") {
    std::ofstream f(out_path);
    if (!f) {
      std::fprintf(stderr, "error: cannot open '%s' for writing\n",
                   out_path.c_str());
      return 1;
    }
    tune::write_tuning_report(f, rep);
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}
