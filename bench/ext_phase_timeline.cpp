// bench/ext_phase_timeline.cpp — EXTENSION artifact: per-step architectural
// metric timelines (the VTune sampling view the paper's authors worked
// from, but exact).  Shows how each benchmark's behaviour evolves across
// its timed steps on a chosen configuration — e.g. CG's cold-cache first
// solve vs its warm steady state.
#include <iostream>

#include "bench/bench_common.hpp"
#include "harness/report.hpp"
#include "perf/timeline.hpp"
#include "xomp/team.hpp"

using namespace paxsim;

int main(int argc, char** argv) {
  bench::BenchOptions opt;
  opt.run.cls = npb::ProblemClass::kClassA;
  if (!bench::parse_args(argc, argv, opt)) return 1;
  bench::print_study_header("Extension: per-step metric timeline");

  const harness::StudyConfig* cfg = harness::find_config("HT on -8-2");
  for (const npb::Benchmark b : bench::study_benchmarks()) {
    sim::Machine machine(opt.run.machine_params());
    sim::AddressSpace space(0);
    perf::CounterSet counters;
    perf::Timeline timeline;

    auto kernel = npb::make_kernel(b);
    kernel->setup(space, npb::ProblemConfig{opt.run.cls, opt.run.trial_seed(0)});
    xomp::Team team(machine, cfg->cpus, &counters, space);
    for (int chip = 0; chip < 2; ++chip) {
      for (int core = 0; core < 2; ++core) {
        machine.core(chip, core).set_active_contexts(2);
      }
    }

    std::vector<double> step_wall;
    double prev_wall = 0;
    for (int s = 0; s < kernel->total_steps(); ++s) {
      kernel->step(team, s);
      team.flush();
      timeline.sample(counters);
      const double w = team.wall_time();
      step_wall.push_back(w - prev_wall);
      prev_wall = w;
    }

    harness::Table table(std::string(kernel->name()) +
                             " per-step metrics on HT on -8-2",
                         {"Mcycles", "CPI", "L1miss", "L2miss", "stall%",
                          "prefetch%"});
    for (std::size_t i = 0; i < timeline.intervals(); ++i) {
      const perf::Metrics m = timeline.metrics(i);
      table.add_row("step " + std::to_string(i),
                    {step_wall[i] / 1e6, m.cpi, m.l1d_miss_rate,
                     m.l2_miss_rate, 100 * m.stalled_fraction,
                     100 * m.prefetch_bus_fraction});
    }
    table.print(std::cout, 3);
    if (opt.csv) timeline.print_csv(std::cout);
    if (!kernel->verify()) {
      std::fprintf(stderr, "verification failed for %s\n",
                   std::string(kernel->name()).c_str());
      return 1;
    }
  }
  std::printf("Note the cold-start effect: step 0 carries the compulsory\n"
              "misses; the paper's whole-program counters blend this in.\n");
  return 0;
}
