// bench/ext_phase_timeline.cpp — EXTENSION artifact: per-step architectural
// metric timelines (the VTune sampling view the paper's authors worked
// from, but exact).  Shows how each benchmark's behaviour evolves across
// its timed steps on a chosen configuration — e.g. CG's cold-cache first
// solve vs its warm steady state.
#include <iostream>

#include "bench/bench_common.hpp"
#include "paxsim.hpp"

using namespace paxsim;

int main(int argc, char** argv) {
  bench::BenchOptions opt;
  opt.run.cls = npb::ProblemClass::kClassA;
  if (!bench::parse_args(argc, argv, opt)) return 1;
  bench::print_study_header("Extension: per-step metric timeline");
  bench::print_host_provenance("ext_phase_timeline", opt);

  const harness::StudyConfig* cfg = harness::find_config("HT on -8-2");
  const auto& benches = bench::study_benchmarks();

  // Sampled runs fan out over the engine workers (one pooled machine each);
  // printing happens afterwards, in benchmark order.
  harness::ExperimentEngine engine(opt.jobs);
  attach_store(engine, opt);
  std::vector<harness::TimelineResult> timelines(benches.size());
  engine.for_each(benches.size(), [&](std::size_t i) {
    timelines[i] =
        engine.timeline(benches[i], *cfg, opt.run, opt.run.trial_seed(0));
  });

  for (std::size_t bi = 0; bi < benches.size(); ++bi) {
    const harness::TimelineResult& tl = timelines[bi];
    harness::Table table(std::string(npb::benchmark_name(benches[bi])) +
                             " per-step metrics on HT on -8-2",
                         {"Mcycles", "CPI", "L1miss", "L2miss", "stall%",
                          "prefetch%"});
    for (std::size_t i = 0; i < tl.timeline.intervals(); ++i) {
      const perf::Metrics m = tl.timeline.metrics(i);
      table.add_row("step " + std::to_string(i),
                    {tl.step_wall[i] / 1e6, m.cpi, m.l1d_miss_rate,
                     m.l2_miss_rate, 100 * m.stalled_fraction,
                     100 * m.prefetch_bus_fraction});
    }
    table.print(std::cout, 3);
    if (opt.csv) tl.timeline.print_csv(std::cout);
    if (!tl.run.verified) {
      std::fprintf(stderr, "verification failed for %s\n",
                   std::string(npb::benchmark_name(benches[bi])).c_str());
      return 1;
    }
  }
  std::printf("Note the cold-start effect: step 0 carries the compulsory\n"
              "misses; the paper's whole-program counters blend this in.\n");
  bench::print_engine_stats(engine);
  return 0;
}
