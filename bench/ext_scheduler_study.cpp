// bench/ext_scheduler_study.cpp — EXTENSION artifact (the paper's §5
// future work): "The decisions made by the scheduler are crucial to the
// performance of multithreading architectures.  We are currently
// experimenting with other schedulers..."
//
// Compares OS-scheduler policies on single-program and multi-program
// workloads across chip-multithreaded configurations:
//   pinned-spread    — well-pinned OpenMP (the study's measurement mode)
//   naive-pack       — topology-blind placement (siblings first)
//   random-migrating — 2.6-era load-balancer churn (the migration effect
//                      the paper suspects behind its multi-program stalls)
//   ht-aware         — cores before siblings, siblings kept within program
//   symbiotic        — sample placements, lock the best (Snavely/Tullsen)
#include <iostream>
#include <memory>

#include "bench/bench_common.hpp"
#include "paxsim.hpp"

using namespace paxsim;

int main(int argc, char** argv) {
  bench::BenchOptions opt;
  opt.run.cls = npb::ProblemClass::kClassA;
  if (!bench::parse_args(argc, argv, opt)) return 1;
  bench::print_study_header(
      "Extension: OS-scheduler policy study (paper section 5 future work)");
  bench::print_host_provenance("ext_scheduler_study", opt);

  struct Workload {
    const char* label;
    std::vector<npb::Benchmark> benches;
  };
  const Workload workloads[] = {
      {"CG alone", {npb::Benchmark::kCG}},
      {"CG+FT", {npb::Benchmark::kCG, npb::Benchmark::kFT}},
      {"FT+FT", {npb::Benchmark::kFT, npb::Benchmark::kFT}},
  };
  const char* configs[] = {"HT on -4-1", "HT on -8-2"};
  constexpr int kPolicies = 5;
  constexpr std::size_t kWorkloads = 3;

  const std::uint64_t seed = opt.run.trial_seed(0);

  // Scheduler runs are stateful (the policy object carries history), so the
  // engine cannot memoize them — instead the flat config x workload x policy
  // cell list fans out over for_each, each cell on its own pooled machine
  // with its own freshly built policy.
  const auto make_policy = [seed](int policy) {
    std::unique_ptr<sched::Scheduler> s;
    switch (policy) {
      case 0: s = sched::make_pinned_spread(); break;
      case 1: s = sched::make_naive_pack(); break;
      case 2: s = sched::make_random_migrating(0.5, seed); break;
      case 3: s = sched::make_ht_aware(); break;
      default: s = sched::make_symbiotic(1); break;
    }
    return s;
  };

  harness::ExperimentEngine engine(opt.jobs);
  attach_store(engine, opt);
  const std::size_t n_cells = std::size(configs) * kWorkloads * kPolicies;
  std::vector<harness::ScheduledResult> results(n_cells);
  engine.for_each(n_cells, [&](std::size_t i) {
    const std::size_t cfg_i = i / (kWorkloads * kPolicies);
    const std::size_t w_i = (i / kPolicies) % kWorkloads;
    const int policy = static_cast<int>(i % kPolicies);
    const harness::StudyConfig* cfg = harness::find_config(configs[cfg_i]);
    const auto s = make_policy(policy);
    results[i] = engine.scheduled(workloads[w_i].benches, *cfg, *s, opt.run,
                                  seed);
  });

  for (std::size_t cfg_i = 0; cfg_i < std::size(configs); ++cfg_i) {
    const char* cname = configs[cfg_i];
    harness::Table table(std::string("completion time (Mcycles) on ") + cname,
                         {"pinned-spread", "naive-pack", "random-migrating",
                          "ht-aware", "symbiotic"});
    harness::Table migr(std::string("migrations performed on ") + cname,
                        {"pinned-spread", "naive-pack", "random-migrating",
                         "ht-aware", "symbiotic"});
    for (std::size_t w_i = 0; w_i < kWorkloads; ++w_i) {
      std::vector<double> walls, migs;
      for (int policy = 0; policy < kPolicies; ++policy) {
        const harness::ScheduledResult& r =
            results[(cfg_i * kWorkloads + w_i) * kPolicies +
                    static_cast<std::size_t>(policy)];
        double worst = 0;
        for (const auto& pr : r.program) worst = std::max(worst, pr.wall_cycles);
        walls.push_back(worst / 1e6);
        migs.push_back(static_cast<double>(r.migrations));
      }
      table.add_row(workloads[w_i].label, walls);
      migr.add_row(workloads[w_i].label, migs);
    }
    table.print(std::cout, 1);
    migr.print(std::cout, 0);
    if (opt.csv) table.print_csv(std::cout);
  }
  std::printf(
      "Expected shapes: random migration costs real time (cold caches +\n"
      "switch overhead), supporting the paper's hypothesis about its\n"
      "multi-program stalls; ht-aware placement matters most when the\n"
      "configuration has more contexts than threads in flight; the\n"
      "symbiotic sampler converges to the best placement it tried.\n");
  bench::print_engine_stats(engine);
  return 0;
}
