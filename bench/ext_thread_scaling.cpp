// bench/ext_thread_scaling.cpp — EXTENSION artifact: speedup-vs-threads
// curves, the `maxcpus=` methodology of the paper's Section 3 taken to its
// natural presentation.  For each benchmark, threads are added in the
// Figure-1 enumeration order (A0, A1, ..., A7), so the curve passes through
// the interesting topology boundaries: +SMT sibling, +second core, +second
// package.
#include <iostream>

#include "bench/bench_common.hpp"
#include "harness/report.hpp"

using namespace paxsim;

int main(int argc, char** argv) {
  bench::BenchOptions opt;
  opt.run.cls = npb::ProblemClass::kClassA;
  if (!bench::parse_args(argc, argv, opt)) return 1;
  bench::print_study_header("Extension: speedup vs thread count (A0..A7 order)");

  // Build incremental configs A0..A0..A7 (HT on; Linux enumeration order).
  const harness::StudyConfig* full = harness::find_config("HT on -8-2");
  std::vector<harness::StudyConfig> ladder;
  for (int n = 1; n <= 8; ++n) {
    harness::StudyConfig c = *full;
    c.threads = n;
    c.cpus.assign(full->cpus.begin(), full->cpus.begin() + n);
    ladder.push_back(std::move(c));
  }

  std::vector<std::string> cols;
  for (int n = 1; n <= 8; ++n) cols.push_back(std::to_string(n) + "T");
  harness::Table table("speedup over serial vs maxcpus", cols);

  const std::uint64_t seed = opt.run.trial_seed(0);
  for (const npb::Benchmark b : bench::study_benchmarks()) {
    const double serial =
        harness::run_serial(b, opt.run, seed).wall_cycles;
    std::vector<double> row;
    for (const auto& cfg : ladder) {
      const auto r = harness::run_single(b, cfg, opt.run, seed);
      row.push_back(serial / r.wall_cycles);
    }
    table.add_row(std::string(npb::benchmark_name(b)), row);
  }
  table.print(std::cout);
  if (opt.csv) table.print_csv(std::cout);
  std::printf("Topology boundaries: 1->2 adds the SMT sibling, 2->3 the\n"
              "second core, 4->5 the second package — each benchmark's curve\n"
              "bends where its bottleneck resource is replicated.\n");
  return 0;
}
