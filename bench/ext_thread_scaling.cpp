// bench/ext_thread_scaling.cpp — EXTENSION artifact: speedup-vs-threads
// curves, the `maxcpus=` methodology of the paper's Section 3 taken to its
// natural presentation.  For each benchmark, threads are added in the
// Figure-1 enumeration order (A0, A1, ..., A7), so the curve passes through
// the interesting topology boundaries: +SMT sibling, +second core, +second
// package.
#include <iostream>

#include "bench/bench_common.hpp"
#include "paxsim.hpp"

using namespace paxsim;

int main(int argc, char** argv) {
  bench::BenchOptions opt;
  opt.run.cls = npb::ProblemClass::kClassA;
  if (!bench::parse_args(argc, argv, opt)) return 1;
  bench::print_study_header("Extension: speedup vs thread count (A0..A7 order)");

  // Build incremental configs A0..A0..A7 (HT on; Linux enumeration order).
  const harness::StudyConfig* full = harness::find_config("HT on -8-2");
  std::vector<harness::StudyConfig> ladder;
  for (int n = 1; n <= 8; ++n) {
    harness::StudyConfig c = *full;
    c.threads = n;
    c.cpus.assign(full->cpus.begin(), full->cpus.begin() + n);
    ladder.push_back(std::move(c));
  }

  std::vector<std::string> cols;
  for (int n = 1; n <= 8; ++n) cols.push_back(std::to_string(n) + "T");
  harness::Table table("speedup over serial vs maxcpus", cols);

  // The ladder configs all carry the name "HT on -8-2"; the engine keys its
  // cache on the full context list, so each rung is a distinct cell.
  harness::ExperimentEngine engine(opt.jobs);
  const auto study = engine.run(harness::ExperimentPlan(opt.run, ladder)
                                    .add_benchmarks(bench::study_benchmarks())
                                    .with_serial_baselines()
                                    .trials(1));
  for (const npb::Benchmark b : bench::study_benchmarks()) {
    std::vector<double> row;
    for (std::size_t ci = 0; ci < ladder.size(); ++ci) {
      row.push_back(study.speedup(b, ci));
    }
    table.add_row(std::string(npb::benchmark_name(b)), row);
  }
  table.print(std::cout);
  if (opt.csv) table.print_csv(std::cout);
  std::printf("Topology boundaries: 1->2 adds the SMT sibling, 2->3 the\n"
              "second core, 4->5 the second package — each benchmark's curve\n"
              "bends where its bottleneck resource is replicated.\n");
  bench::print_engine_stats(engine);
  return 0;
}
