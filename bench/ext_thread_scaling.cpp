// bench/ext_thread_scaling.cpp — EXTENSION artifact: speedup-vs-threads
// curves, the `maxcpus=` methodology of the paper's Section 3 taken to its
// natural presentation.  For each benchmark, threads are added in the
// machine's flat enumeration order (A0, A1, ..., A7 on the default
// Paxville), so the curve passes through the interesting topology
// boundaries: +SMT sibling, +second core, +second package.  `--machine=`
// retargets the ladder at any topology preset or JSON description; the
// rung count and the boundary notes are derived from the Topology
// accessors, not hard-coded to the 8-context default.
#include <iostream>

#include "bench/bench_common.hpp"
#include "paxsim.hpp"

using namespace paxsim;

int main(int argc, char** argv) {
  bench::BenchOptions opt;
  opt.run.cls = npb::ProblemClass::kClassA;
  if (!bench::parse_args(argc, argv, opt)) return 1;
  const sim::Topology topo = opt.run.topology != nullptr
                                 ? *opt.run.topology
                                 : sim::Topology::paxville();
  bench::print_study_header("Extension: speedup vs thread count (flat order)",
                            topo, opt.run.machine_scale);
  bench::print_host_provenance("ext_thread_scaling", opt);

  // Build incremental configs by slicing the machine's widest Table-1
  // configuration, whose cpus are listed in flat enumeration order.
  const std::vector<harness::StudyConfig> configs = harness::configs_for(topo);
  const harness::StudyConfig* full = &configs.front();  // Serial fallback
  for (const harness::StudyConfig& c : configs) {
    if (static_cast<int>(c.cpus.size()) == topo.total_contexts()) full = &c;
  }
  const int total = static_cast<int>(full->cpus.size());
  std::vector<harness::StudyConfig> ladder;
  for (int n = 1; n <= total; ++n) {
    harness::StudyConfig c = *full;
    c.threads = n;
    c.cpus.assign(full->cpus.begin(), full->cpus.begin() + n);
    ladder.push_back(std::move(c));
  }

  std::vector<std::string> cols;
  for (int n = 1; n <= total; ++n) cols.push_back(std::to_string(n) + "T");
  harness::Table table("speedup over serial vs maxcpus", cols);

  // The ladder configs all carry the widest config's name; the engine keys
  // its cache on the full context list, so each rung is a distinct cell.
  harness::ExperimentEngine engine(opt.jobs);
  attach_store(engine, opt);
  const auto study = engine.run(harness::ExperimentPlan(opt.run, ladder)
                                    .add_benchmarks(bench::study_benchmarks())
                                    .with_serial_baselines()
                                    .trials(1));
  for (const npb::Benchmark b : bench::study_benchmarks()) {
    std::vector<double> row;
    for (std::size_t ci = 0; ci < ladder.size(); ++ci) {
      row.push_back(study.speedup(b, ci));
    }
    table.add_row(std::string(npb::benchmark_name(b)), row);
  }
  table.print(std::cout);
  if (opt.csv) table.print_csv(std::cout);

  // Where each curve may bend: the rungs at which the next thread lands on
  // a newly replicated resource rather than a shared one.
  std::printf("Topology boundaries:");
  if (topo.smt_per_core > 1) {
    std::printf(" 1->2 adds the SMT sibling;");
  }
  if (topo.cores_per_package > 1) {
    std::printf(" %d->%d the second core;", topo.smt_per_core,
                topo.smt_per_core + 1);
  }
  if (topo.packages > 1) {
    std::printf(" %d->%d the second package;", topo.contexts_per_chip(),
                topo.contexts_per_chip() + 1);
  }
  std::printf(
      "\neach benchmark's curve bends where its bottleneck resource is "
      "replicated.\n");
  bench::print_engine_stats(engine);
  return 0;
}
