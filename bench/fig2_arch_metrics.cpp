// bench/fig2_arch_metrics.cpp — regenerates Figure 2 of the paper: the nine
// architectural-metric panels (L1/L2/trace-cache miss rate, ITLB miss rate,
// DTLB load+store misses normalised to serial, % stalled cycles, branch
// prediction rate, % prefetching bus accesses, CPI) for every study
// benchmark on every Table-1 configuration.
#include <iostream>
#include <map>

#include "bench/bench_common.hpp"
#include "paxsim.hpp"

using namespace paxsim;

int main(int argc, char** argv) {
  bench::BenchOptions opt;
  if (!bench::parse_args(argc, argv, opt)) return 1;
  bench::print_study_header("Figure 2: architectural metrics, single program");
  bench::print_host_provenance("fig2_arch_metrics", opt);

  const auto& all = harness::all_configs();  // serial + 7 parallel
  std::vector<std::string> cols;
  for (const auto& c : all) cols.emplace_back(c.name);

  // One run per (benchmark, config), dispatched across the engine's workers.
  harness::ExperimentEngine engine(opt.jobs);
  attach_store(engine, opt);
  const auto study = engine.run(harness::ExperimentPlan(opt.run, all)
                                    .add_benchmarks(bench::study_benchmarks())
                                    .trials(1));
  std::map<npb::Benchmark, std::vector<harness::RunResult>> results;
  for (const npb::Benchmark b : bench::study_benchmarks()) {
    auto& row = results[b];
    row.reserve(all.size());
    for (std::size_t ci = 0; ci < all.size(); ++ci) {
      row.push_back(study.single(b, ci));
    }
  }

  // One table ("panel") per metric.  DTLB misses are normalised to serial,
  // exactly as the paper plots them.
  for (int m = 0; m < perf::kMetricCount; ++m) {
    harness::Table panel(std::string(perf::metric_name(m)), cols);
    for (const npb::Benchmark b : bench::study_benchmarks()) {
      const auto& row = results[b];
      std::vector<double> vals;
      vals.reserve(row.size());
      const double serial_dtlb = row.front().metrics.dtlb_misses;
      for (const auto& r : row) {
        double v = perf::metric_value(r.metrics, m);
        if (perf::metric_name(m) == "dtlb_misses" && serial_dtlb > 0) {
          v /= serial_dtlb;  // "normalized over Serial"
        }
        vals.push_back(v);
      }
      panel.add_row(std::string(npb::benchmark_name(b)), vals);
    }
    panel.print(std::cout, 4);
    if (opt.csv) panel.print_csv(std::cout);
  }
  bench::print_engine_stats(engine);
  return 0;
}
