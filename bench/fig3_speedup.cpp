// bench/fig3_speedup.cpp — regenerates Figure 3 of the paper:
// speedup of each NAS OpenMP benchmark over serial, for every Table-1
// configuration, averaged over trials.  Also prints the paper's §4.1.7
// CG deep-dive (HT on -8-2 vs HT off -4-2 architectural comparison).
#include <iostream>

#include "bench/bench_common.hpp"
#include "paxsim.hpp"

using namespace paxsim;

int main(int argc, char** argv) {
  bench::BenchOptions opt;
  if (!bench::parse_args(argc, argv, opt)) return 1;
  bench::print_study_header("Figure 3: speedup of NAS OpenMP applications");
  bench::print_host_provenance("fig3_speedup", opt);

  const auto configs = harness::parallel_configs();
  std::vector<std::string> cols;
  for (const auto& c : configs) cols.emplace_back(c.name);

  // Every (benchmark, config, trial) cell plus the per-trial serial
  // baselines, evaluated in one engine pass.
  harness::ExperimentEngine engine(opt.jobs);
  attach_store(engine, opt);
  const auto study = engine.run(harness::ExperimentPlan(opt.run, configs)
                                    .add_benchmarks(bench::study_benchmarks())
                                    .with_serial_baselines());

  harness::Table table("Figure 3 — speedup over serial", cols);
  harness::Table cv("trial variance (coefficient of variation)", cols);
  harness::BarChart chart{"Figure 3 — speedup of NAS OpenMP applications",
                          "speedup over serial", cols, {}, {}};
  for (const npb::Benchmark b : bench::study_benchmarks()) {
    std::vector<double> speedups, cvs;
    for (std::size_t ci = 0; ci < configs.size(); ++ci) {
      const harness::TrialStats st = study.speedup_stats(b, ci);
      speedups.push_back(st.mean);
      cvs.push_back(st.cv());
    }
    chart.groups.emplace_back(npb::benchmark_name(b));
    chart.values.push_back(speedups);
    table.add_row(std::string(npb::benchmark_name(b)), speedups);
    cv.add_row(std::string(npb::benchmark_name(b)), cvs);
  }
  table.print(std::cout);
  cv.print(std::cout, 4);
  if (opt.csv) table.print_csv(std::cout);
  if (!opt.plot_dir.empty()) {
    const std::string gp =
        harness::write_bar_chart(opt.plot_dir, "fig3_speedup", chart);
    std::printf("wrote %s (render with gnuplot)\n\n", gp.c_str());
  }

  // --- §4.1.7: why CG behaves differently at full load ----------------------
  // Cache hits: both cells were already simulated for the table above.
  const auto* cmp_smp = harness::find_config("HT off -4-2");
  const auto* cmt_smp = harness::find_config("HT on -8-2");
  const auto seed = opt.run.trial_seed(0);
  const auto r4 = engine.single(npb::Benchmark::kCG, *cmp_smp, opt.run, seed);
  const auto r8 = engine.single(npb::Benchmark::kCG, *cmt_smp, opt.run, seed);
  harness::Table dive("CG deep-dive (paper §4.1.7)",
                      {"HT off -4-2", "HT on -8-2"});
  dive.add_row("L2 miss rate", {r4.metrics.l2_miss_rate, r8.metrics.l2_miss_rate});
  dive.add_row("L1 miss rate", {r4.metrics.l1d_miss_rate, r8.metrics.l1d_miss_rate});
  dive.add_row("CPI", {r4.metrics.cpi, r8.metrics.cpi});
  dive.add_row("prefetch bus share",
               {r4.metrics.prefetch_bus_fraction, r8.metrics.prefetch_bus_fraction});
  dive.add_row("bus transactions",
               {static_cast<double>(r4.counters.get(perf::Event::kBusTransactions)),
                static_cast<double>(r8.counters.get(perf::Event::kBusTransactions))});
  dive.print(std::cout);
  if (opt.csv) dive.print_csv(std::cout);
  bench::print_engine_stats(engine);
  return 0;
}
