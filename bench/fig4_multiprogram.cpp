// bench/fig4_multiprogram.cpp — regenerates Figure 4 of the paper: the
// multi-program study.  Workloads: CG/FT (complementary: memory-bound vs
// compute-bound), FT/FT and CG/CG (identical pairs), co-scheduled with the
// threads split evenly between the two programs at each configuration's
// full width.  Emits the nine metric panels per program plus the three
// speedup panels (per-program speedup over that program's serial run).
#include <iostream>
#include <iterator>

#include "bench/bench_common.hpp"
#include "paxsim.hpp"

using namespace paxsim;

namespace {

struct Workload {
  const char* label;
  npb::Benchmark a, b;
};

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions opt;
  if (!bench::parse_args(argc, argv, opt)) return 1;
  bench::print_study_header("Figure 4: multi-program workloads (CG/FT, FT/FT, CG/CG)");
  bench::print_host_provenance("fig4_multiprogram", opt);

  const Workload workloads[] = {
      {"CG/FT", npb::Benchmark::kCG, npb::Benchmark::kFT},
      {"FT/FT", npb::Benchmark::kFT, npb::Benchmark::kFT},
      {"CG/CG", npb::Benchmark::kCG, npb::Benchmark::kCG},
  };

  const auto configs = harness::parallel_configs();
  std::vector<std::string> cols;
  for (const auto& c : configs) cols.emplace_back(c.name);

  // All three workloads across every configuration, plus the serial
  // baselines for the speedup panels, in one engine pass.
  harness::ExperimentEngine engine(opt.jobs);
  attach_store(engine, opt);
  auto plan = harness::ExperimentPlan(opt.run, configs)
                  .with_serial_baselines()
                  .trials(1);
  for (const Workload& w : workloads) plan.add_pair(w.a, w.b);
  const auto study = engine.run(plan);

  const double serial_cg = study.serial(npb::Benchmark::kCG).wall_cycles;
  const double serial_ft = study.serial(npb::Benchmark::kFT).wall_cycles;

  for (std::size_t wi = 0; wi < std::size(workloads); ++wi) {
    const Workload& w = workloads[wi];
    std::printf("---- workload %s ----\n", w.label);
    std::vector<harness::PairResult> runs;
    runs.reserve(configs.size());
    for (std::size_t ci = 0; ci < configs.size(); ++ci) {
      runs.push_back(study.pair(wi, ci));
    }
    // Metric panels: one row per program.
    for (int m = 0; m < perf::kMetricCount; ++m) {
      harness::Table panel(std::string(w.label) + " " +
                               std::string(perf::metric_name(m)),
                           cols);
      for (int p = 0; p < 2; ++p) {
        std::vector<double> vals;
        for (const auto& r : runs) {
          vals.push_back(perf::metric_value(r.program[p].metrics, m));
        }
        panel.add_row(std::string(npb::benchmark_name(p == 0 ? w.a : w.b)) +
                          "(" + w.label + ")[" + std::to_string(p) + "]",
                      vals);
      }
      panel.print(std::cout, 4);
      if (opt.csv) panel.print_csv(std::cout);
    }
    // Speedup panel: per-program speedup over its own serial run.
    harness::Table sp(std::string(w.label) + " multiprogrammed speedup over serial",
                      cols);
    for (int p = 0; p < 2; ++p) {
      const npb::Benchmark b = p == 0 ? w.a : w.b;
      const double serial = b == npb::Benchmark::kCG ? serial_cg : serial_ft;
      std::vector<double> vals;
      for (const auto& r : runs) {
        vals.push_back(serial / r.program[p].wall_cycles);
      }
      sp.add_row(std::string(npb::benchmark_name(b)) + "[" + std::to_string(p) + "]",
                 vals);
    }
    sp.print(std::cout);
    if (opt.csv) sp.print_csv(std::cout);
  }
  bench::print_engine_stats(engine);
  return 0;
}
