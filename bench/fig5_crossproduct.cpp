// bench/fig5_crossproduct.cpp — regenerates Figure 5 of the paper: the
// cross-product multi-program study.  Every unordered pair from the full
// eight-benchmark suite (including identical pairs) is co-scheduled on each
// fully-loaded configuration; the distribution of per-program speedups over
// serial is summarised as a box-and-whiskers plot per configuration.
//
// This is the heaviest artifact: use --class=A (default here) or --class=W
// for a quick pass; --class=B matches the other figures.
#include <iostream>
#include <map>

#include "bench/bench_common.hpp"
#include "paxsim.hpp"

using namespace paxsim;

int main(int argc, char** argv) {
  bench::BenchOptions opt;
  opt.run.cls = npb::ProblemClass::kClassA;  // cross-product default
  if (!bench::parse_args(argc, argv, opt)) return 1;
  bench::print_study_header("Figure 5: multi-programmed speedup of NAS benchmark pairs");
  bench::print_host_provenance("fig5_crossproduct", opt);

  // The configurations a pair can fully load (>= 2 contexts).
  const char* config_names[] = {"HT on -2-1", "HT off -2-1", "HT on -4-1",
                                "HT off -2-2", "HT on -4-2", "HT off -4-2",
                                "HT on -8-2"};
  std::vector<harness::StudyConfig> configs;
  for (const char* name : config_names) {
    configs.push_back(*harness::find_config(name));
  }

  // The full cross-product (36 unordered pairs x 7 configurations) plus the
  // eight serial baselines — one declarative plan, fanned out over --jobs
  // workers with every repeated cell served from the engine cache.
  const std::vector<npb::Benchmark> suite(std::begin(npb::kAllBenchmarks),
                                          std::end(npb::kAllBenchmarks));
  harness::ExperimentEngine engine(opt.jobs);
  attach_store(engine, opt);
  const auto study = engine.run(harness::ExperimentPlan(opt.run, configs)
                                    .add_all_pairs(suite)
                                    .with_serial_baselines()
                                    .trials(1));

  std::map<npb::Benchmark, double> serial;
  for (const npb::Benchmark b : npb::kAllBenchmarks) {
    serial[b] = study.serial(b).wall_cycles;
  }

  std::vector<std::pair<std::string, harness::BoxStats>> boxes;
  double lo = 1e300, hi = -1e300;
  for (std::size_t ci = 0; ci < configs.size(); ++ci) {
    const char* name = config_names[ci];
    std::vector<double> speedups;
    for (std::size_t pi = 0; pi < study.plan().pairs().size(); ++pi) {
      const auto& [a, b] = study.plan().pairs()[pi];
      const harness::PairResult& r = study.pair(pi, ci);
      speedups.push_back(serial[a] / r.program[0].wall_cycles);
      speedups.push_back(serial[b] / r.program[1].wall_cycles);
    }
    const harness::BoxStats box = harness::box_summary(speedups);
    lo = std::min(lo, box.min);
    hi = std::max(hi, box.max);
    boxes.emplace_back(name, box);
    if (opt.csv) {
      for (const double s : speedups) {
        std::printf("fig5,%s,speedup,%.4f\n", name, s);
      }
    }
  }

  std::printf("Multi-Programmed Speedup of NAS Benchmark Pairs (per-program, "
              "all %zu pairs)\n",
              std::size(npb::kAllBenchmarks) * (std::size(npb::kAllBenchmarks) + 1) / 2);
  std::printf("scale: [%.2f, %.2f]\n\n", lo, hi);
  for (const auto& [name, box] : boxes) {
    harness::print_box_line(std::cout, name, box, lo, hi);
  }
  if (!opt.plot_dir.empty()) {
    harness::BoxChart chart{"Figure 5 — multi-programmed speedup of NAS pairs",
                            "speedup over serial",
                            {},
                            {}};
    for (const auto& [name, box] : boxes) {
      chart.labels.push_back(name);
      chart.boxes.push_back(box);
    }
    const std::string gp =
        harness::write_box_chart(opt.plot_dir, "fig5_crossproduct", chart);
    std::printf("\nwrote %s (render with gnuplot)\n", gp.c_str());
  }
  bench::print_engine_stats(engine);
  return 0;
}
