// bench/fig5_crossproduct.cpp — regenerates Figure 5 of the paper: the
// cross-product multi-program study.  Every unordered pair from the full
// eight-benchmark suite (including identical pairs) is co-scheduled on each
// fully-loaded configuration; the distribution of per-program speedups over
// serial is summarised as a box-and-whiskers plot per configuration.
//
// This is the heaviest artifact: use --class=A (default here) or --class=W
// for a quick pass; --class=B matches the other figures.
#include <iostream>
#include <map>

#include "bench/bench_common.hpp"
#include "harness/plot.hpp"
#include "harness/report.hpp"

using namespace paxsim;

int main(int argc, char** argv) {
  bench::BenchOptions opt;
  opt.run.cls = npb::ProblemClass::kClassA;  // cross-product default
  if (!bench::parse_args(argc, argv, opt)) return 1;
  bench::print_study_header("Figure 5: multi-programmed speedup of NAS benchmark pairs");

  // The configurations a pair can fully load (>= 2 contexts).
  const char* config_names[] = {"HT on -2-1", "HT off -2-1", "HT on -4-1",
                                "HT off -2-2", "HT on -4-2", "HT off -4-2",
                                "HT on -8-2"};

  const std::uint64_t seed = opt.run.trial_seed(0);

  // Serial baselines per benchmark.
  std::map<npb::Benchmark, double> serial;
  for (const npb::Benchmark b : npb::kAllBenchmarks) {
    serial[b] = harness::run_serial(b, opt.run, seed).wall_cycles;
  }

  std::vector<std::pair<std::string, harness::BoxStats>> boxes;
  double lo = 1e300, hi = -1e300;
  for (const char* name : config_names) {
    const harness::StudyConfig* cfg = harness::find_config(name);
    std::vector<double> speedups;
    for (std::size_t i = 0; i < std::size(npb::kAllBenchmarks); ++i) {
      for (std::size_t j = i; j < std::size(npb::kAllBenchmarks); ++j) {
        const npb::Benchmark a = npb::kAllBenchmarks[i];
        const npb::Benchmark b = npb::kAllBenchmarks[j];
        const harness::PairResult r =
            harness::run_pair(a, b, *cfg, opt.run, seed);
        speedups.push_back(serial[a] / r.program[0].wall_cycles);
        speedups.push_back(serial[b] / r.program[1].wall_cycles);
      }
    }
    const harness::BoxStats box = harness::box_summary(speedups);
    lo = std::min(lo, box.min);
    hi = std::max(hi, box.max);
    boxes.emplace_back(name, box);
    if (opt.csv) {
      for (const double s : speedups) {
        std::printf("fig5,%s,speedup,%.4f\n", name, s);
      }
    }
  }

  std::printf("Multi-Programmed Speedup of NAS Benchmark Pairs (per-program, "
              "all %zu pairs)\n",
              std::size(npb::kAllBenchmarks) * (std::size(npb::kAllBenchmarks) + 1) / 2);
  std::printf("scale: [%.2f, %.2f]\n\n", lo, hi);
  for (const auto& [name, box] : boxes) {
    harness::print_box_line(std::cout, name, box, lo, hi);
  }
  if (!opt.plot_dir.empty()) {
    harness::BoxChart chart{"Figure 5 — multi-programmed speedup of NAS pairs",
                            "speedup over serial",
                            {},
                            {}};
    for (const auto& [name, box] : boxes) {
      chart.labels.push_back(name);
      chart.boxes.push_back(box);
    }
    const std::string gp =
        harness::write_box_chart(opt.plot_dir, "fig5_crossproduct", chart);
    std::printf("\nwrote %s (render with gnuplot)\n", gp.c_str());
  }
  return 0;
}
