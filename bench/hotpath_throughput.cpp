// bench/hotpath_throughput.cpp — simulator-engineering artifact: measures
// the inner-loop overhaul (inlined L1/DTLB fast path, batched counters,
// heap scheduling) rather than the modeled machine.  Each NPB kernel runs
// on the Serial configuration twice per machine flavour:
//
//   fast      — MachineParams::fast_path = true (the default build)
//   reference — fast_path = false, every access through the slow path
//   checked   — check_mode = full: the reference path with the src/check
//               analysis sink attached (race detection + invariant audits);
//               the "check_overhead" figure is checked-vs-reference warm
//               time, i.e. the cost of the analyses themselves on top of
//               the slow path they require
//
// with per-flavour cold (first run, cold host caches) and warm (best of
// the remaining --trials repeats) timings of the simulation loop proper
// (RunResult::host_sim_sec — kernel setup and verification are flavour-
// invariant and excluded).  Throughput is reported as simulated events per
// host second, where "events" is the sum of the high-frequency counters the
// fast path services: instructions, L1D references, DTLB references and
// trace-cache references.  The two flavours' counter tables are
// cross-checked for exact equality — this artifact doubles as a
// differential test and exits non-zero on mismatch.
//
// The default --scale=16 machine shrinks the caches to 1/16 capacity, so a
// large share of accesses genuinely miss L1 and both paths converge on the
// same miss-handling code; --scale=1 measures the full-fidelity machine the
// fast path is designed for, where L1/DTLB hits dominate.
#include <chrono>
#include <cstdio>
#include <string>

#include "bench/bench_common.hpp"
#include "paxsim.hpp"

using namespace paxsim;

namespace {

std::uint64_t event_count(const perf::CounterSet& c) {
  using perf::Event;
  return c.get(Event::kInstructions) + c.get(Event::kL1dReferences) +
         c.get(Event::kDtlbReferences) + c.get(Event::kTraceCacheReferences);
}

struct Timing {
  double cold_sec = 0;
  double warm_sec = 0;  // best repeat after the first (cold when trials == 1)
  harness::RunResult result;
};

Timing time_runs(sim::Machine& machine, npb::Benchmark bench,
                 const harness::StudyConfig& cfg,
                 const harness::RunOptions& opt, int repeats) {
  Timing t;
  for (int r = 0; r < repeats; ++r) {
    harness::RunResult res =
        harness::run_single(machine, bench, cfg, opt, opt.trial_seed(0));
    const double sec = res.host_sim_sec;
    if (r == 0) {
      t.cold_sec = sec;
      t.warm_sec = sec;
      t.result = std::move(res);
    } else if (sec < t.warm_sec || r == 1) {
      t.warm_sec = sec;
    }
  }
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions opt;
  opt.run.cls = npb::ProblemClass::kClassS;  // inner-loop cost, not the model
  opt.run.verify = false;
  std::string only;  // --bench=NAME restricts to one kernel (profiling, CI)
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--bench=", 0) == 0) {
      only = std::string(argv[i] + 8);
      for (int j = i + 1; j < argc; ++j) argv[j - 1] = argv[j];
      --argc;
      break;
    }
  }
  if (!bench::parse_args(argc, argv, opt)) return 1;
  bench::print_study_header("hot-path throughput: fast vs reference path",
                            opt.run.machine_scale);
  bench::print_host_provenance("hotpath_throughput", opt);

  const harness::StudyConfig& cfg = harness::serial_config();
  const int repeats = opt.run.trials < 1 ? 1 : opt.run.trials;

  sim::MachineParams fast_params = opt.run.machine_params();
  fast_params.fast_path = true;
  sim::MachineParams ref_params = opt.run.machine_params();
  ref_params.fast_path = false;
  harness::RunOptions check_run = opt.run;
  check_run.check_mode = sim::CheckMode::kFull;
  sim::MachineParams check_params = check_run.machine_params();
  sim::Machine fast_machine(fast_params);
  sim::Machine ref_machine(ref_params);
  sim::Machine check_machine(check_params);

  const std::string cls = std::string(npb::class_name(opt.run.cls));
  std::printf("%-4s %12s %10s %10s %10s %10s %8s %8s\n", "", "events",
              "fast cold", "fast warm", "ref warm", "chk warm", "speedup",
              "chk ovh");

  bool mismatch = false;
  for (const npb::Benchmark bench : npb::kAllBenchmarks) {
    if (!only.empty() && std::string(npb::benchmark_name(bench)) != only) {
      continue;
    }
    const Timing fast =
        time_runs(fast_machine, bench, cfg, opt.run, repeats);
    const Timing ref = time_runs(ref_machine, bench, cfg, opt.run, repeats);
    const Timing chk =
        time_runs(check_machine, bench, cfg, check_run, repeats);

    // The analyses are pure observers on the reference path, so all three
    // flavours must agree on every counter and on virtual wall time.
    if (fast.result.counters != ref.result.counters ||
        fast.result.wall_cycles != ref.result.wall_cycles ||
        chk.result.counters != ref.result.counters ||
        chk.result.wall_cycles != ref.result.wall_cycles) {
      std::fprintf(stderr,
                   "FAIL: %s diverged between fast/reference/checked paths\n",
                   std::string(npb::benchmark_name(bench)).c_str());
      mismatch = true;
      continue;
    }
    if (!chk.result.check.clean()) {
      std::fprintf(stderr, "FAIL: %s not clean under --check=full\n",
                   std::string(npb::benchmark_name(bench)).c_str());
      mismatch = true;
      continue;
    }

    const std::uint64_t events = event_count(fast.result.counters);
    const double fast_eps = static_cast<double>(events) / fast.warm_sec;
    const double ref_eps = static_cast<double>(events) / ref.warm_sec;
    const double chk_eps = static_cast<double>(events) / chk.warm_sec;
    const double speedup = ref.warm_sec / fast.warm_sec;
    const double check_overhead = chk.warm_sec / ref.warm_sec;
    const std::string name = std::string(npb::benchmark_name(bench));
    std::printf("%-4s %12llu %9.3fs %9.3fs %9.3fs %9.3fs %7.2fx %7.2fx\n",
                name.c_str(), static_cast<unsigned long long>(events),
                fast.cold_sec, fast.warm_sec, ref.warm_sec, chk.warm_sec,
                speedup, check_overhead);
    // One machine-readable line per kernel for CI trend tracking.
    std::printf(
        "{\"artifact\":\"hotpath_throughput\",\"bench\":\"%s\","
        "\"class\":\"%s\",\"events\":%llu,"
        "\"fast_cold_sec\":%.4f,\"fast_warm_sec\":%.4f,"
        "\"ref_cold_sec\":%.4f,\"ref_warm_sec\":%.4f,"
        "\"check_cold_sec\":%.4f,\"check_warm_sec\":%.4f,"
        "\"fast_events_per_sec\":%.0f,\"ref_events_per_sec\":%.0f,"
        "\"check_events_per_sec\":%.0f,"
        "\"speedup\":%.3f,\"check_overhead\":%.3f}\n",
        name.c_str(), cls.c_str(), static_cast<unsigned long long>(events),
        fast.cold_sec, fast.warm_sec, ref.cold_sec, ref.warm_sec,
        chk.cold_sec, chk.warm_sec, fast_eps, ref_eps, chk_eps, speedup,
        check_overhead);
  }
  return mismatch ? 1 : 0;
}
