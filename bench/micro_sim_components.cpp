// bench/micro_sim_components.cpp — google-benchmark microbenchmarks of the
// simulator's building blocks (engineering, not a paper artifact): probe
// throughput of the cache / TLB / predictor models and end-to-end simulated
// access cost, plus ablations of the design choices DESIGN.md calls out
// (SMT issue stretch, prefetch depth).
#include <benchmark/benchmark.h>

#include <random>

#include "paxsim.hpp"
#include "sim/cache.hpp"
#include "sim/tlb.hpp"

using namespace paxsim;

namespace {

void BM_CacheProbeHit(benchmark::State& state) {
  sim::SetAssocCache cache(sim::CacheGeometry{64 * 1024, 64, 8});
  for (sim::Addr a = 0; a < 64 * 1024; a += 64) {
    cache.fill(a, sim::LineState::kExclusive, false);
  }
  sim::Addr a = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.probe(a, false));
    a = (a + 64) & (64 * 1024 - 1);
  }
}
BENCHMARK(BM_CacheProbeHit);

void BM_CacheFillEvict(benchmark::State& state) {
  sim::SetAssocCache cache(sim::CacheGeometry{64 * 1024, 64, 8});
  sim::Addr a = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.fill(a, sim::LineState::kModified, false));
    a += 64;
  }
}
BENCHMARK(BM_CacheFillEvict);

void BM_TlbAccess(benchmark::State& state) {
  sim::Tlb tlb(64, 16, 4096);
  std::mt19937_64 rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tlb.access(rng() & ((1ull << 30) - 1)));
  }
}
BENCHMARK(BM_TlbAccess);

/// End-to-end simulated load cost through a full machine, streaming.
void BM_SimulatedLoadStream(benchmark::State& state) {
  sim::MachineParams params = sim::MachineParams{}.scaled(16);
  sim::Machine machine(params);
  sim::AddressSpace space(0);
  perf::CounterSet counters;
  sim::HwContext& ctx = machine.context({0, 0, 0});
  ctx.bind(&counters, space.code_base());
  const sim::Addr base = space.alloc(16 << 20);
  sim::Addr off = 0;
  for (auto _ : state) {
    ctx.load(base + off);
    off = (off + 64) & ((16 << 20) - 1);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SimulatedLoadStream);

/// Ablation: wall-time effect of the SMT issue-stretch parameter on a
/// compute-bound two-thread region (design-choice sweep from DESIGN.md).
void BM_AblationSmtStretch(benchmark::State& state) {
  const double stretch = static_cast<double>(state.range(0)) / 100.0;
  for (auto _ : state) {
    sim::MachineParams params = sim::MachineParams{}.scaled(16);
    params.smt_issue_stretch = stretch;
    sim::Machine machine(params);
    sim::AddressSpace space(0);
    perf::CounterSet counters;
    sim::Core& core = machine.core(0, 0);
    core.set_active_contexts(2);
    for (int c = 0; c < 2; ++c) {
      machine.context({0, 0, static_cast<std::uint8_t>(c)})
          .bind(&counters, space.code_base());
      machine.context({0, 0, static_cast<std::uint8_t>(c)}).alu(10000);
    }
    benchmark::DoNotOptimize(machine.wall_time());
  }
}
BENCHMARK(BM_AblationSmtStretch)->Arg(100)->Arg(132)->Arg(162)->Arg(200);

/// Ablation: prefetch depth vs achieved simulated stream time.
void BM_AblationPrefetchDepth(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::MachineParams params = sim::MachineParams{}.scaled(16);
    params.prefetch_depth = depth;
    sim::Machine machine(params);
    sim::AddressSpace space(0);
    perf::CounterSet counters;
    sim::HwContext& ctx = machine.context({0, 0, 0});
    ctx.bind(&counters, space.code_base());
    const sim::Addr base = space.alloc(1 << 20);
    for (sim::Addr a = 0; a < (1 << 20); a += 64) ctx.load(base + a);
    benchmark::DoNotOptimize(ctx.now());
  }
}
BENCHMARK(BM_AblationPrefetchDepth)->Arg(0)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

/// Ablation: MT-mode memory-level-parallelism partitioning.  Sweeps the
/// mt_mem_overlap factor (Arg/100) and reports the simulated time of an
/// independent-miss stream under two active contexts — the knob that
/// separates CG (chained, unaffected) from FT (streams, penalised) at
/// full Hyper-Threaded load.
void BM_AblationMtOverlap(benchmark::State& state) {
  const double overlap = static_cast<double>(state.range(0)) / 100.0;
  for (auto _ : state) {
    sim::MachineParams params = sim::MachineParams{}.scaled(16);
    params.mt_mem_overlap = overlap;
    sim::Machine machine(params);
    sim::AddressSpace space(0);
    perf::CounterSet counters;
    machine.core(0, 0).set_active_contexts(2);
    sim::HwContext& ctx = machine.context({0, 0, 0});
    ctx.bind(&counters, space.code_base());
    // Page-stride loads: every access an independent DRAM miss.
    const sim::Addr base = space.alloc(8 << 20, 4096);
    for (int i = 0; i < 1000; ++i) {
      ctx.load(base + static_cast<sim::Addr>((i * 37) % 2048) * 4096);
    }
    benchmark::DoNotOptimize(ctx.now());
  }
}
BENCHMARK(BM_AblationMtOverlap)->Arg(38)->Arg(45)->Arg(55)->Arg(70)->Arg(100);

/// Ablation: chained loads are *insensitive* to the same knob — the CG
/// mechanism.  Compare against BM_AblationMtOverlap at equal Args.
void BM_AblationMtOverlapChained(benchmark::State& state) {
  const double overlap = static_cast<double>(state.range(0)) / 100.0;
  for (auto _ : state) {
    sim::MachineParams params = sim::MachineParams{}.scaled(16);
    params.mt_mem_overlap = overlap;
    sim::Machine machine(params);
    sim::AddressSpace space(0);
    perf::CounterSet counters;
    machine.core(0, 0).set_active_contexts(2);
    sim::HwContext& ctx = machine.context({0, 0, 0});
    ctx.bind(&counters, space.code_base());
    const sim::Addr base = space.alloc(8 << 20, 4096);
    for (int i = 0; i < 1000; ++i) {
      ctx.load(base + static_cast<sim::Addr>((i * 37) % 2048) * 4096,
               sim::Dep::kChained);
    }
    benchmark::DoNotOptimize(ctx.now());
  }
}
BENCHMARK(BM_AblationMtOverlapChained)->Arg(38)->Arg(55)->Arg(100);

}  // namespace

BENCHMARK_MAIN();
