// bench/model_accuracy.cpp — cross-validation artifact for the analytical
// predictor: every NPB kernel on {Serial, HT off -4-2, HT on -8-2}, predicted
// and simulated side by side, with per-cell relative errors, the aggregate
// wall-time advantage of the analytical tier, and one JSON line per cell for
// trend tracking.
//
// On class S (the calibrated study) the binary also enforces the
// CALIBRATION.md error bands and exits non-zero when any cell breaches them,
// so CI can gate on prediction accuracy without a separate harness.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>

#include "bench/bench_common.hpp"
#include "paxsim.hpp"

using namespace paxsim;

namespace {

// CALIBRATION.md bands ("Analytical model error bands", class S).
constexpr double kSpeedupBand = 0.40;
constexpr double kCpiBand = 0.25;
constexpr double kL2HitBand = 0.35;

double rel_err(double predicted, double simulated) {
  return simulated == 0.0 ? 0.0 : (predicted - simulated) / simulated;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions opt;
  if (!bench::parse_args(argc, argv, opt)) return 1;
  bench::print_study_header(
      "model accuracy: analytical prediction vs simulation");
  bench::print_host_provenance("model_accuracy", opt);

  const bool class_s = opt.run.cls == npb::ProblemClass::kClassS;
  const char* config_names[] = {"Serial", "HT off -4-2", "HT on -8-2"};
  const std::vector<std::string> cols = {"sim off", "pred off", "err off",
                                         "sim on",  "pred on",  "err on"};

  harness::ExperimentEngine engine(opt.jobs);
  attach_store(engine, opt);
  harness::Table speedup_t("speedup — simulated vs predicted", cols);
  harness::Table cpi_t("CPI — simulated vs predicted", cols);
  harness::Table l2_t("L2 hit rate — simulated vs predicted", cols);

  const std::uint64_t seed = opt.run.trial_seed(0);
  double sim_host_sec = 0, predict_host_sec = 0, profile_host_sec = 0;
  double max_speedup_err = 0, max_cpi_err = 0, max_l2_err = 0;
  int breaches = 0;

  for (const npb::Benchmark b : npb::kAllBenchmarks) {
    const std::string bn(npb::benchmark_name(b));
    const harness::RunResult serial = engine.serial(b, opt.run, seed);
    sim_host_sec += serial.host_sim_sec;

    std::vector<double> sp_row, cpi_row, l2_row;
    for (const char* cname : config_names) {
      const harness::StudyConfig* cfg = harness::find_config(cname);
      if (cfg == nullptr) {
        std::fprintf(stderr, "missing config '%s'\n", cname);
        return 1;
      }
      const bool is_serial = cfg->is_serial();
      const harness::RunResult sim =
          is_serial ? serial : engine.single(b, *cfg, opt.run, seed);
      if (!is_serial) sim_host_sec += sim.host_sim_sec;
      const harness::PredictionResult pr =
          engine.predict(b, *cfg, opt.run, seed);
      predict_host_sec += pr.predict_host_sec;
      profile_host_sec += pr.profile_host_sec;
      const model::Prediction& p = pr.prediction;

      const double sim_speedup = serial.wall_cycles / sim.wall_cycles;
      const double e_sp = rel_err(p.speedup, sim_speedup);
      const double e_cpi = rel_err(p.metrics.cpi, sim.metrics.cpi);
      const double e_l2 = rel_err(1.0 - p.metrics.l2_miss_rate,
                                  1.0 - sim.metrics.l2_miss_rate);
      if (!is_serial) {
        sp_row.insert(sp_row.end(), {sim_speedup, p.speedup, e_sp});
        cpi_row.insert(cpi_row.end(),
                       {sim.metrics.cpi, p.metrics.cpi, e_cpi});
        l2_row.insert(l2_row.end(), {1.0 - sim.metrics.l2_miss_rate,
                                     1.0 - p.metrics.l2_miss_rate, e_l2});
        max_speedup_err = std::max(max_speedup_err, std::abs(e_sp));
        max_cpi_err = std::max(max_cpi_err, std::abs(e_cpi));
        max_l2_err = std::max(max_l2_err, std::abs(e_l2));
        if (class_s && (std::abs(e_sp) > kSpeedupBand ||
                        std::abs(e_cpi) > kCpiBand ||
                        std::abs(e_l2) > kL2HitBand)) {
          ++breaches;
          std::fprintf(stderr,
                       "BAND BREACH: %s on '%s' (speedup %+.3f, cpi %+.3f, "
                       "l2 hit %+.3f)\n",
                       bn.c_str(), cname, e_sp, e_cpi, e_l2);
        }
      }

      std::printf(
          "{\"artifact\":\"model_accuracy\",\"bench\":\"%s\","
          "\"config\":\"%s\",\"sim_speedup\":%.6f,\"pred_speedup\":%.6f,"
          "\"sim_cpi\":%.6f,\"pred_cpi\":%.6f,\"sim_l2_hit\":%.6f,"
          "\"pred_l2_hit\":%.6f,\"speedup_err\":%.4f,\"cpi_err\":%.4f,"
          "\"l2_hit_err\":%.4f,\"sim_host_sec\":%.6f,"
          "\"predict_host_sec\":%.9f}\n",
          bn.c_str(), cname, sim_speedup, p.speedup, sim.metrics.cpi,
          p.metrics.cpi, 1.0 - sim.metrics.l2_miss_rate,
          1.0 - p.metrics.l2_miss_rate, e_sp, e_cpi, e_l2, sim.host_sim_sec,
          pr.predict_host_sec);
    }
    speedup_t.add_row(bn, sp_row);
    cpi_t.add_row(bn, cpi_row);
    l2_t.add_row(bn, l2_row);
  }

  std::printf("\n(Serial rows omitted from the tables: the anchored model "
              "reproduces the profiled serial run by construction.)\n");
  speedup_t.print(std::cout, 4);
  cpi_t.print(std::cout, 4);
  l2_t.print(std::cout, 4);
  if (opt.csv) {
    speedup_t.print_csv(std::cout);
    cpi_t.print_csv(std::cout);
    l2_t.print_csv(std::cout);
  }

  const double advantage =
      predict_host_sec > 0 ? sim_host_sec / predict_host_sec : 0.0;
  std::printf(
      "host time: %.3fs simulated, %.3fs profiling (one serial run per "
      "kernel, amortised), %.6fs analytical evaluation — %.0fx faster per "
      "configuration question\n",
      sim_host_sec, profile_host_sec, predict_host_sec, advantage);
  std::printf(
      "{\"artifact\":\"model_accuracy_summary\",\"max_speedup_err\":%.4f,"
      "\"max_cpi_err\":%.4f,\"max_l2_hit_err\":%.4f,\"sim_host_sec\":%.6f,"
      "\"predict_host_sec\":%.9f,\"advantage\":%.1f,\"band_breaches\":%d}\n",
      max_speedup_err, max_cpi_err, max_l2_err, sim_host_sec,
      predict_host_sec, advantage, breaches);
  bench::print_engine_stats(engine);

  if (breaches > 0) {
    std::fprintf(stderr,
                 "%d cell(s) outside the CALIBRATION.md error bands "
                 "(speedup %.2f, CPI %.2f, L2 hit %.2f)\n",
                 breaches, kSpeedupBand, kCpiBand, kL2HitBand);
    return 1;
  }
  return 0;
}
