// bench/parallel_sim_throughput.cpp — simulator-engineering artifact for
// the host-parallel backend (src/par): one simulated machine sharded over
// host threads, measured against the single-threaded fast path it must be
// bit-identical to.
//
// Each NPB kernel runs on the most parallel configuration of the selected
// machine (all contexts active) twice per flavour:
//
//   serial — the single-threaded fast path (--par=1), the baseline the
//            whole backend is differential-tested against
//   par    — the conservative-synchronisation parallel backend with
//            --par LPs (default: one per coherence domain, capped by the
//            host), same machine, same seed
//
// with cold (first run) and warm (best of the remaining --trials repeats)
// timings of the simulation loop proper (RunResult::host_sim_sec).
// Throughput is simulated events per host second over the fast path's
// high-frequency counters (instructions, L1D refs, DTLB refs, trace-cache
// refs).  The two flavours' full counter tables and virtual wall time are
// cross-checked for exact equality — the artifact doubles as a
// differential test and exits non-zero on any divergence, so the perf CI
// job gates determinism even though it cannot gate shared-runner timings.
//
// Per-kernel sync-overhead accounting comes from the par::Stats delta of
// the warm run: grains (scheduling epochs), token acquisitions and spins,
// cooperative yields while blocked, lookahead-window parks, conflicts and
// serial reruns.  The JSON rows embed the host-provenance envelope
// (hardware_concurrency, --par, compiler, build flags) so trajectories
// from different hosts are never conflated.
#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>

#include "bench/bench_common.hpp"
#include "paxsim.hpp"

using namespace paxsim;

namespace {

std::uint64_t event_count(const perf::CounterSet& c) {
  using perf::Event;
  return c.get(Event::kInstructions) + c.get(Event::kL1dReferences) +
         c.get(Event::kDtlbReferences) + c.get(Event::kTraceCacheReferences);
}

struct Timing {
  double cold_sec = 0;
  double warm_sec = 0;  // best repeat after the first (cold when trials == 1)
  harness::RunResult result;
  par::Stats warm_stats;  // backend stats of the best repeat
};

Timing time_runs(sim::Machine& machine, npb::Benchmark bench,
                 const harness::StudyConfig& cfg,
                 const harness::RunOptions& opt, int repeats) {
  Timing t;
  for (int r = 0; r < repeats; ++r) {
    par::stats_reset();
    harness::RunResult res =
        harness::run_single(machine, bench, cfg, opt, opt.trial_seed(0));
    const par::Stats stats = par::stats_snapshot();
    const double sec = res.host_sim_sec;
    if (r == 0) {
      t.cold_sec = sec;
      t.warm_sec = sec;
      t.result = std::move(res);
      t.warm_stats = stats;
    } else if (sec < t.warm_sec || r == 1) {
      t.warm_sec = sec;
      t.warm_stats = stats;
    }
  }
  return t;
}

/// The configuration with the most simulated contexts — the regime the
/// parallel backend targets (every coherence domain populated).
const harness::StudyConfig& widest_config(
    const std::vector<harness::StudyConfig>& configs) {
  const harness::StudyConfig* best = &configs.front();
  for (const harness::StudyConfig& c : configs) {
    if (c.cpus.size() > best->cpus.size()) best = &c;
  }
  return *best;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions opt;
  opt.run.cls = npb::ProblemClass::kClassS;  // backend cost, not the model
  opt.run.verify = false;
  bool par_given = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--par=", 0) == 0) par_given = true;
  }
  if (!bench::parse_args(argc, argv, opt)) return 1;

  // Default --par to one LP per coherence domain, capped by the host: the
  // widest decomposition the conservative protocol can actually use.
  sim::Machine machine(opt.run.machine_params());
  if (!par_given) {
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    opt.run.par = std::max(
        1, std::min(machine.domain_count(), static_cast<int>(hw)));
  }

  const std::vector<harness::StudyConfig> configs =
      opt.run.topology != nullptr ? harness::configs_for(*opt.run.topology)
                                  : harness::all_configs();
  const harness::StudyConfig& cfg = widest_config(configs);
  const int repeats = opt.run.trials < 1 ? 1 : opt.run.trials;

  bench::print_study_header("parallel simulation throughput: --par vs serial",
                            opt.run.machine_scale);
  bench::print_host_provenance("parallel_sim_throughput", opt);
  std::printf("configuration: %s (%zu contexts), %d coherence domains, "
              "--par=%d, window factor %g\n\n",
              cfg.name.c_str(), cfg.cpus.size(), machine.domain_count(),
              opt.run.par, opt.run.par_window);

  harness::RunOptions serial_opt = opt.run;
  serial_opt.par = 1;
  harness::RunOptions par_opt = opt.run;

  const std::string cls = std::string(npb::class_name(opt.run.cls));
  std::printf("%-4s %12s %10s %10s %8s %9s %11s %9s\n", "", "events",
              "serial wm", "par warm", "speedup", "grains", "spins/grain",
              "yld/grain");

  bool mismatch = false;
  std::uint64_t total_events = 0;
  double total_serial = 0, total_par = 0;
  for (const npb::Benchmark bench : npb::kAllBenchmarks) {
    const Timing serial = time_runs(machine, bench, cfg, serial_opt, repeats);
    const Timing par = time_runs(machine, bench, cfg, par_opt, repeats);

    // The hard invariant: the parallel backend is an execution strategy,
    // not a model change.  Any divergence is a bug, never noise.
    if (serial.result.counters != par.result.counters ||
        serial.result.wall_cycles != par.result.wall_cycles) {
      std::fprintf(stderr, "FAIL: %s diverged between serial and --par=%d\n",
                   std::string(npb::benchmark_name(bench)).c_str(),
                   par_opt.par);
      mismatch = true;
      continue;
    }
    if (par.warm_stats.parallel_regions == 0 && par_opt.par > 1 &&
        par.warm_stats.serial_regions == 0) {
      std::fprintf(stderr, "FAIL: %s never engaged the parallel backend\n",
                   std::string(npb::benchmark_name(bench)).c_str());
      mismatch = true;
      continue;
    }

    const std::uint64_t events = event_count(serial.result.counters);
    total_events += events;
    total_serial += serial.warm_sec;
    total_par += par.warm_sec;
    const double speedup = serial.warm_sec / par.warm_sec;
    const par::Stats& ps = par.warm_stats;
    const double grains = ps.grains > 0 ? static_cast<double>(ps.grains) : 1.0;
    const std::string name = std::string(npb::benchmark_name(bench));
    std::printf("%-4s %12llu %9.3fs %9.3fs %7.2fx %9llu %11.2f %9.2f\n",
                name.c_str(), static_cast<unsigned long long>(events),
                serial.warm_sec, par.warm_sec, speedup,
                static_cast<unsigned long long>(ps.grains),
                static_cast<double>(ps.token_spins) / grains,
                static_cast<double>(ps.yields) / grains);
    std::printf(
        "{\"artifact\":\"parallel_sim_throughput\",\"bench\":\"%s\","
        "\"class\":\"%s\",\"config\":\"%s\",\"events\":%llu,"
        "\"serial_cold_sec\":%.4f,\"serial_warm_sec\":%.4f,"
        "\"par_cold_sec\":%.4f,\"par_warm_sec\":%.4f,"
        "\"serial_events_per_sec\":%.0f,\"par_events_per_sec\":%.0f,"
        "\"speedup\":%.3f,\"parallel_regions\":%llu,"
        "\"serial_regions\":%llu,\"grains\":%llu,\"token_acquires\":%llu,"
        "\"token_spins\":%llu,\"yields\":%llu,\"window_parks\":%llu,"
        "\"conflicts\":%llu,\"serial_reruns\":%llu,%s}\n",
        name.c_str(), cls.c_str(), cfg.name.c_str(),
        static_cast<unsigned long long>(events), serial.cold_sec,
        serial.warm_sec, par.cold_sec, par.warm_sec,
        static_cast<double>(events) / serial.warm_sec,
        static_cast<double>(events) / par.warm_sec, speedup,
        static_cast<unsigned long long>(ps.parallel_regions),
        static_cast<unsigned long long>(ps.serial_regions),
        static_cast<unsigned long long>(ps.grains),
        static_cast<unsigned long long>(ps.token_acquires),
        static_cast<unsigned long long>(ps.token_spins),
        static_cast<unsigned long long>(ps.yields),
        static_cast<unsigned long long>(ps.window_parks),
        static_cast<unsigned long long>(ps.conflicts),
        static_cast<unsigned long long>(ps.serial_reruns),
        bench::host_provenance_json(opt).c_str());
  }

  if (total_par > 0 && total_serial > 0) {
    const double agg = total_serial / total_par;
    std::printf("\naggregate: %.2fx (%.0f events/s serial, %.0f events/s "
                "--par=%d)\n",
                agg, static_cast<double>(total_events) / total_serial,
                static_cast<double>(total_events) / total_par, par_opt.par);
    std::printf(
        "{\"artifact\":\"parallel_sim_throughput\",\"bench\":\"ALL\","
        "\"class\":\"%s\",\"config\":\"%s\",\"events\":%llu,"
        "\"serial_warm_sec\":%.4f,\"par_warm_sec\":%.4f,"
        "\"serial_events_per_sec\":%.0f,\"par_events_per_sec\":%.0f,"
        "\"speedup\":%.3f,%s}\n",
        cls.c_str(), cfg.name.c_str(),
        static_cast<unsigned long long>(total_events), total_serial, total_par,
        static_cast<double>(total_events) / total_serial,
        static_cast<double>(total_events) / total_par, agg,
        bench::host_provenance_json(opt).c_str());
  }
  return mismatch ? 1 : 0;
}
