// bench/sec3_lmbench.cpp — regenerates the paper's Section 3 platform
// characterisation: LMbench-style load latency ladder and streaming
// read/write bandwidth, one package vs both packages, on the *unscaled*
// calibrated machine.
#include <cstdio>

#include "paxsim.hpp"

using namespace paxsim;

int main() {
  const sim::MachineParams full{};
  std::printf("paxsim reproduction of Grant & Afsahi, IPPS 2007 — Section 3\n");
  std::printf("LMbench-analog on the calibrated machine (unscaled)\n\n");

  std::printf("%-16s %12s\n", "working set", "ns / load");
  const auto sizes = lmb::default_ladder_sizes(4 * 1024, 64 * 1024 * 1024);
  for (const auto& pt : lmb::latency_ladder(full, sizes, 8000)) {
    std::printf("%13zu KB %12.2f\n", pt.working_set_bytes / 1024, pt.ns_per_load);
  }
  std::printf("\npaper anchors: L1 1.43 ns, L2 10.6 ns, memory 136.85 ns\n\n");

  const auto one = lmb::stream_bandwidth(full, /*both_chips=*/false);
  const auto two = lmb::stream_bandwidth(full, /*both_chips=*/true);
  std::printf("%-12s %10s %10s\n", "placement", "read GB/s", "write GB/s");
  std::printf("%-12s %10.2f %10.2f   (paper: 3.57 / 1.77)\n", "one chip",
              one.read_gbps, one.write_gbps);
  std::printf("%-12s %10.2f %10.2f   (paper: 4.43 / 2.60)\n", "two chips",
              two.read_gbps, two.write_gbps);
  return 0;
}
