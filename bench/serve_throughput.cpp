// bench/serve_throughput.cpp — serving-layer artifact: measures the
// persistent result store end to end.  Expands one job file shaped like the
// acceptance sweep (every suite kernel on every Table-1 configuration),
// then runs it twice against a fresh store:
//
//   cold pass — every cell simulated and written through (rename commits)
//   warm pass — every cell answered from the store; zero simulation
//
// and reports cells/sec for both, the warm:cold ratio, and the store's own
// operation counters as a single JSON object (plus a readable summary), so
// serving regressions are scriptable to catch.
//
// paxlint: allow-file(wallclock) -- this bench times the serving layer on the host; nothing here feeds simulated state
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>

#include "bench/bench_common.hpp"

using namespace paxsim;

namespace {

struct Pass {
  double seconds = 0;
  serve::ServeSummary summary;
};

Pass run_pass(const serve::JobPlan& plan, const std::string& store_dir) {
  serve::ServeOptions so;
  Pass p;
  const auto t0 = std::chrono::steady_clock::now();
  p.summary = serve::serve_cells(plan, store_dir, so, nullptr);
  const auto t1 = std::chrono::steady_clock::now();
  p.seconds = std::chrono::duration<double>(t1 - t0).count();
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions opt;
  opt.run.cls = npb::ProblemClass::kClassS;  // store overhead, not the sim
  if (!bench::parse_args(argc, argv, opt)) return 1;
  bench::print_study_header("serve throughput: cold compute vs warm store");
  bench::print_host_provenance("serve_throughput", opt);

  // The acceptance-shaped sweep: all kernels x all Table-1 configurations,
  // simulation cells plus analytical predictions.
  const std::string job_text =
      "{\"schema_version\":1,\"kind\":\"job_file\","
      "\"defaults\":{\"class\":\"" +
      std::string(npb::class_name(opt.run.cls)) +
      "\",\"trials\":1,\"seed\":" + std::to_string(opt.run.base_seed) +
      "},\"sweeps\":[{\"benches\":\"all\",\"configs\":\"all\","
      "\"modes\":[\"single\",\"predict\"]}]}";
  serve::JobPlan plan;
  std::string error;
  if (!serve::parse_job_file(job_text, &plan, &error)) {
    std::fprintf(stderr, "internal job file rejected: %s\n", error.c_str());
    return 1;
  }

  // A store of this process's own: cold means cold.
  const std::string store_dir =
      !opt.store_dir.empty()
          ? opt.store_dir
          : (std::filesystem::temp_directory_path() /
             ("paxserve_bench." + std::to_string(::getpid())))
                .string();
  const Pass cold = run_pass(plan, store_dir);
  const Pass warm = run_pass(plan, store_dir);
  if (opt.store_dir.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(store_dir, ec);
  }

  const double cells = static_cast<double>(plan.cells.size());
  const double cold_rate = cold.seconds > 0 ? cells / cold.seconds : 0;
  const double warm_rate = warm.seconds > 0 ? cells / warm.seconds : 0;
  std::printf("plan: %llu cells (%s)\n",
              static_cast<unsigned long long>(plan.cells.size()),
              std::string(npb::class_name(opt.run.cls)).c_str());
  std::printf("cold: %6.2f s, %8.1f cells/s (%llu computed)\n", cold.seconds,
              cold_rate,
              static_cast<unsigned long long>(cold.summary.computed));
  std::printf("warm: %6.2f s, %8.1f cells/s (%llu store hits)\n",
              warm.seconds, warm_rate,
              static_cast<unsigned long long>(warm.summary.store_hits));
  std::printf("warm/cold: %.1fx\n",
              cold_rate > 0 ? warm_rate / cold_rate : 0.0);

  // One machine-readable line for CI trend tracking.  The warm pass must
  // have computed nothing; collectors alert on warm_computed != 0.
  std::printf(
      "{\"artifact\":\"serve_throughput\",\"schema_version\":1,"
      "\"cells\":%llu,%s,"
      "\"cold_sec\":%.6f,\"cold_cells_per_sec\":%.2f,"
      "\"warm_sec\":%.6f,\"warm_cells_per_sec\":%.2f,"
      "\"cold_computed\":%llu,\"warm_store_hits\":%llu,"
      "\"warm_computed\":%llu}\n",
      static_cast<unsigned long long>(plan.cells.size()),
      bench::host_provenance_json(opt).c_str(), cold.seconds, cold_rate,
      warm.seconds, warm_rate,
      static_cast<unsigned long long>(cold.summary.computed),
      static_cast<unsigned long long>(warm.summary.store_hits),
      static_cast<unsigned long long>(warm.summary.computed));
  return warm.summary.computed == 0 ? 0 : 1;
}
