// bench/table2_avg_speedup.cpp — regenerates Table 2 of the paper:
// average speedup across all study benchmarks, per multithreaded
// architecture (SMT, CMP, CMT, SMP, SMT-/CMP-/CMT-based SMP).
#include <iostream>

#include "bench/bench_common.hpp"
#include "paxsim.hpp"

using namespace paxsim;

int main(int argc, char** argv) {
  bench::BenchOptions opt;
  if (!bench::parse_args(argc, argv, opt)) return 1;
  bench::print_study_header("Table 2: average speedup per architecture");
  bench::print_host_provenance("table2_avg_speedup", opt);

  const auto configs = harness::parallel_configs();
  std::vector<std::string> cols;
  for (const auto& c : configs) {
    cols.emplace_back(harness::architecture_name(c.arch));
  }

  harness::ExperimentEngine engine(opt.jobs);
  attach_store(engine, opt);
  const auto study = engine.run(harness::ExperimentPlan(opt.run, configs)
                                    .add_benchmarks(bench::study_benchmarks())
                                    .with_serial_baselines());

  std::vector<double> avg(configs.size(), 0.0);
  for (const npb::Benchmark b : bench::study_benchmarks()) {
    for (std::size_t i = 0; i < configs.size(); ++i) {
      avg[i] += study.speedup_stats(b, i).mean;
    }
  }
  const auto nb = static_cast<double>(bench::study_benchmarks().size());
  for (double& v : avg) v /= nb;

  harness::Table table("Table 2 — average speedup for architectures", cols);
  table.add_row("avg speedup", avg);
  table.print(std::cout);
  if (opt.csv) table.print_csv(std::cout);

  // The paper's two headline deltas.
  const auto at = [&](const char* name) {
    for (std::size_t i = 0; i < configs.size(); ++i) {
      if (configs[i].name == name) return avg[i];
    }
    return 0.0;
  };
  const double cmt = at("HT on -4-1");
  const double cmp_smp = at("HT off -4-2");
  const double cmt_smp = at("HT on -8-2");
  std::printf("CMT (HT on -4-1) vs CMP-based SMP (HT off -4-2): %+.1f%%  (paper: -3.6%%)\n",
              100.0 * (cmt / cmp_smp - 1.0));
  std::printf("CMT-based SMP (HT on -8-2) vs CMP-based SMP    : %+.1f%%  (paper: ~-6.7%%)\n",
              100.0 * (cmt_smp / cmp_smp - 1.0));
  bench::print_engine_stats(engine);
  return 0;
}
