// bench/trace_overhead.cpp — simulator-engineering artifact: the cost of
// paxtrace.  Each NPB kernel runs on the Serial configuration three times
// per repeat:
//
//   ref    — reference path, no tracer (trace mode forces the reference
//            path, so this is the like-for-like baseline)
//   stacks — trace=stacks: the CPI stall accountant, no event recording
//   full   — trace=full: accountant + per-context ring-buffered events
//
// and reports warm host-time ratios (stacks/ref, full/ref) alongside the
// recorded-event volume.  The artifact doubles as an invariant check and
// exits non-zero when a traced run's virtual wall time diverges from the
// untraced baseline (tracing must not perturb virtual time) or when any
// context's CPI stack fails to sum exactly to the run's wall cycles.
#include <cstdio>
#include <string>

#include "bench/bench_common.hpp"

using namespace paxsim;

namespace {

struct Timing {
  double warm_sec = 0;  // best repeat after the first (cold when trials == 1)
  harness::RunResult run;
  trace::TraceReport trace;
};

Timing time_traced(sim::Machine& machine, npb::Benchmark bench,
                   const harness::StudyConfig& cfg,
                   const harness::RunOptions& opt, int repeats) {
  Timing t;
  for (int r = 0; r < repeats; ++r) {
    harness::TraceResult res =
        harness::run_traced(machine, bench, cfg, opt, opt.trial_seed(0));
    const double sec = res.run.host_sim_sec;
    if (r == 0 || sec < t.warm_sec) t.warm_sec = sec;
    if (r == 0) {
      t.run = std::move(res.run);
      t.trace = std::move(res.trace);
    }
  }
  return t;
}

Timing time_plain(sim::Machine& machine, npb::Benchmark bench,
                  const harness::StudyConfig& cfg,
                  const harness::RunOptions& opt, int repeats) {
  Timing t;
  for (int r = 0; r < repeats; ++r) {
    harness::RunResult res =
        harness::run_single(machine, bench, cfg, opt, opt.trial_seed(0));
    const double sec = res.host_sim_sec;
    if (r == 0 || sec < t.warm_sec) t.warm_sec = sec;
    if (r == 0) t.run = std::move(res);
  }
  return t;
}

bool stacks_sum_to_wall(const trace::TraceReport& t, std::string& why) {
  for (const trace::ContextStack& c : t.contexts) {
    if (!c.active) continue;
    if (c.stack.sum() != t.wall_cycles) {
      why = "cpu" + std::to_string(c.cpu.flat()) + " stack sums to " +
            std::to_string(c.stack.sum()) + ", wall is " +
            std::to_string(t.wall_cycles);
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions opt;
  opt.run.cls = npb::ProblemClass::kClassS;  // accountant cost, not the model
  opt.run.verify = false;
  if (!bench::parse_args(argc, argv, opt)) return 1;
  bench::print_study_header("trace overhead: tracer vs reference path",
                            opt.run.machine_scale);
  bench::print_host_provenance("trace_overhead", opt);

  const harness::StudyConfig& cfg = harness::serial_config();
  const int repeats = opt.run.trials < 1 ? 1 : opt.run.trials;

  // The baseline must walk the same reference path the tracer forces.
  harness::RunOptions ref_run = opt.run;
  sim::MachineParams ref_params = ref_run.machine_params();
  ref_params.fast_path = false;
  harness::RunOptions stacks_run = opt.run;
  stacks_run.trace_mode = sim::TraceMode::kStacks;
  harness::RunOptions full_run = opt.run;
  full_run.trace_mode = sim::TraceMode::kFull;

  sim::Machine ref_machine(ref_params);
  sim::Machine stacks_machine(stacks_run.machine_params());
  sim::Machine full_machine(full_run.machine_params());

  const std::string cls = std::string(npb::class_name(opt.run.cls));
  std::printf("%-4s %10s %10s %10s %9s %9s %10s\n", "", "ref warm",
              "stacks", "full", "stk ovh", "full ovh", "events");

  bool failed = false;
  for (const npb::Benchmark bench : npb::kAllBenchmarks) {
    const Timing ref = time_plain(ref_machine, bench, cfg, ref_run, repeats);
    const Timing stk =
        time_traced(stacks_machine, bench, cfg, stacks_run, repeats);
    const Timing ful =
        time_traced(full_machine, bench, cfg, full_run, repeats);
    const std::string name = std::string(npb::benchmark_name(bench));

    if (stk.run.wall_cycles != ref.run.wall_cycles ||
        ful.run.wall_cycles != ref.run.wall_cycles) {
      std::fprintf(stderr,
                   "FAIL: %s traced wall time diverged from the untraced "
                   "reference run\n",
                   name.c_str());
      failed = true;
      continue;
    }
    std::string why;
    if (!stacks_sum_to_wall(stk.trace, why) ||
        !stacks_sum_to_wall(ful.trace, why)) {
      std::fprintf(stderr, "FAIL: %s CPI stack != wall: %s\n", name.c_str(),
                   why.c_str());
      failed = true;
      continue;
    }

    const double stk_ovh = stk.warm_sec / ref.warm_sec;
    const double ful_ovh = ful.warm_sec / ref.warm_sec;
    std::printf("%-4s %9.3fs %9.3fs %9.3fs %8.2fx %8.2fx %10llu\n",
                name.c_str(), ref.warm_sec, stk.warm_sec, ful.warm_sec,
                stk_ovh, ful_ovh,
                static_cast<unsigned long long>(ful.trace.events_recorded));
    // One machine-readable line per kernel for CI trend tracking.
    std::printf(
        "{\"artifact\":\"trace_overhead\",\"bench\":\"%s\",\"class\":\"%s\","
        "\"ref_warm_sec\":%.4f,\"stacks_warm_sec\":%.4f,"
        "\"full_warm_sec\":%.4f,\"stacks_overhead\":%.3f,"
        "\"full_overhead\":%.3f,\"events_recorded\":%llu,"
        "\"events_dropped\":%llu}\n",
        name.c_str(), cls.c_str(), ref.warm_sec, stk.warm_sec, ful.warm_sec,
        stk_ovh, ful_ovh,
        static_cast<unsigned long long>(ful.trace.events_recorded),
        static_cast<unsigned long long>(ful.trace.events_dropped));
  }
  return failed ? 1 : 0;
}
