// examples/custom_kernel.cpp
//
// Domain scenario 2: bring your own workload.
//
// Shows how to implement a new instrumented kernel against the public API —
// here a 2-D 5-point Jacobi heat solver — and characterise it across the
// Table-1 configurations the way the paper characterises the NAS suite.
// This is the path a user takes to ask "how would *my* code behave on a
// dual-core HT Xeon SMP?".
//
// Run: ./build/examples/custom_kernel
#include <cmath>
#include <cstdio>
#include <vector>

#include "paxsim.hpp"

using namespace paxsim;

namespace {

/// A user-defined workload: 2-D Jacobi iteration on an n x n grid.
class HeatSolver {
 public:
  HeatSolver(sim::AddressSpace& space, std::size_t n)
      : n_(n), a_(space, n * n), b_(space, n * n) {
    for (std::size_t c = 0; c < n * n; ++c) {
      a_.host(c) = 0.0;
      b_.host(c) = 0.0;
    }
    // Hot boundary on one edge.
    for (std::size_t i = 0; i < n; ++i) a_.host(i) = b_.host(i) = 100.0;
  }

  /// One Jacobi sweep: b = relax(a), then swap.  Every load/store goes
  /// through the simulated hierarchy; the arithmetic is real.
  void sweep(xomp::Team& team) {
    constexpr xomp::CodeBlock kBody{1, 24};
    const std::size_t n = n_;
    team.parallel_for(1, n - 1, xomp::Schedule::static_default(), kBody,
                      [&](std::size_t j, sim::HwContext& ctx, int) {
                        for (std::size_t i = 1; i < n - 1; ++i) {
                          const std::size_t c = j * n + i;
                          ctx.load(a_.addr(c));
                          ctx.load(a_.addr(c - n));
                          ctx.load(a_.addr(c + n));
                          ctx.alu(5);
                          const double v =
                              0.25 * (a_.host(c - 1) + a_.host(c + 1) +
                                      a_.host(c - n) + a_.host(c + n));
                          b_.put(ctx, c, v);
                        }
                      });
    std::swap(a_, b_);
  }

  [[nodiscard]] double center() const { return a_.host((n_ / 2) * n_ + n_ / 2); }

 private:
  std::size_t n_;
  npb::Array<double> a_, b_;
};

}  // namespace

int main() {
  std::printf("custom workload characterisation: 2-D Jacobi heat (256x256)\n\n");
  std::printf("%-14s %9s %9s %8s %8s %8s\n", "config", "cycles", "speedup",
              "L1miss", "stall%", "CPI");

  double serial_wall = 0;
  for (const harness::StudyConfig& cfg : harness::all_configs()) {
    sim::MachineParams params = sim::MachineParams{}.scaled(16);
    sim::Machine machine(params);
    sim::AddressSpace space(0);
    perf::CounterSet counters;

    HeatSolver solver(space, 256);
    xomp::Team team(machine, cfg.cpus, &counters, space);
    // Declare SMT co-activity per core (the harness does this for you when
    // you use harness::run_single; shown here explicitly for clarity).
    for (int chip = 0; chip < params.chips; ++chip) {
      for (int core = 0; core < params.cores_per_chip; ++core) {
        int nctx = 0;
        for (const auto c : cfg.cpus) {
          if (c.chip == chip && c.core == core) ++nctx;
        }
        machine.core(chip, core).set_active_contexts(nctx > 0 ? nctx : 1);
      }
    }

    for (int it = 0; it < 30; ++it) solver.sweep(team);
    team.flush();

    const double wall = team.wall_time();
    if (cfg.is_serial()) serial_wall = wall;
    const perf::Metrics m = perf::derive_metrics(counters);
    std::printf("%-14s %9.0f %9.2f %8.3f %8.1f %8.2f\n",
                std::string(cfg.name).c_str(), wall, serial_wall / wall,
                m.l1d_miss_rate, 100.0 * m.stalled_fraction, m.cpi);
    if (!std::isfinite(solver.center())) {
      std::fprintf(stderr, "numeric blow-up!\n");
      return 1;
    }
  }
  std::printf("\nInterpretation: a streaming stencil is bandwidth-sensitive —\n"
              "expect the speedup to track the configurations' bus resources\n"
              "(one package vs two), as the paper's MG does.\n");
  return 0;
}
