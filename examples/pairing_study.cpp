// examples/pairing_study.cpp
//
// Domain scenario 1: symbiotic job pairing.
//
// The paper's multi-program study (§4.2) shows that co-scheduling a
// compute-bound program with a memory-bound one beats running identical
// pairs.  This example uses the public API to build a small "pairing
// advisor": it measures every pairing of a candidate set on a chosen
// configuration and prints which partner hurts each program least —
// exactly the measurement an OS-level symbiotic scheduler (Snavely &
// Tullsen) would want.
//
// Run: ./build/examples/pairing_study [config-name]
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "paxsim.hpp"

using namespace paxsim;

int main(int argc, char** argv) {
  const char* config_name = argc > 1 ? argv[1] : "HT on -4-1";
  const harness::StudyConfig* cfg = harness::find_config(config_name);
  if (cfg == nullptr) {
    std::fprintf(stderr, "unknown configuration '%s'\n", config_name);
    return 1;
  }

  harness::RunOptions opt;
  opt.cls = npb::ProblemClass::kClassW;  // quick
  const std::uint64_t seed = opt.trial_seed(0);

  const std::vector<npb::Benchmark> cands = {
      npb::Benchmark::kCG, npb::Benchmark::kFT, npb::Benchmark::kMG,
      npb::Benchmark::kEP};

  std::printf("pairing study on %s (class %s)\n\n", config_name,
              std::string(npb::class_name(opt.cls)).c_str());

  // Solo baselines (pooled machines, memoized cells).
  harness::ExperimentEngine engine;
  std::map<npb::Benchmark, double> solo;
  for (const npb::Benchmark b : cands) {
    solo[b] = engine.serial(b, opt, seed).wall_cycles;
  }

  // All ordered pairings; report each program's slowdown vs serial.
  std::printf("%-6s", "");
  for (const npb::Benchmark p : cands) {
    std::printf("%12s", std::string(npb::benchmark_name(p)).c_str());
  }
  std::printf("   <- partner\n");
  std::map<npb::Benchmark, std::pair<npb::Benchmark, double>> best;
  for (const npb::Benchmark a : cands) {
    std::printf("%-6s", std::string(npb::benchmark_name(a)).c_str());
    for (const npb::Benchmark b : cands) {
      const harness::PairResult r = engine.pair(a, b, *cfg, opt, seed);
      const double speedup = solo[a] / r.program[0].wall_cycles;
      std::printf("%12.2f", speedup);
      auto it = best.find(a);
      if (it == best.end() || speedup > it->second.second) {
        best[a] = {b, speedup};
      }
    }
    std::printf("\n");
  }

  std::printf("\nbest partner per program (higher multiprogrammed speedup):\n");
  for (const npb::Benchmark a : cands) {
    std::printf("  %s prefers running beside %s (speedup %.2f)\n",
                std::string(npb::benchmark_name(a)).c_str(),
                std::string(npb::benchmark_name(best[a].first)).c_str(),
                best[a].second);
  }
  std::printf("\nThe paper's finding — pair compute-bound with memory-bound —\n"
              "should be visible above: CG (memory) prefers FT/EP (compute).\n");
  return 0;
}
