// examples/quickstart.cpp
//
// Tour of the paxsim public API in five minutes:
//   1. calibrate-check the machine with the LMbench analog (paper §3),
//   2. run one NAS kernel serially and on a parallel configuration,
//   3. print its speedup and the Figure-2 metric bundle.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "paxsim.hpp"

using namespace paxsim;

int main() {
  // --- 1. The machine reports the paper's Section-3 numbers ---------------
  const sim::MachineParams full{};  // the calibrated Paxville SMP
  std::printf("LMbench analog (paper: L1 1.43 ns, L2 10.6 ns, mem 136.85 ns)\n");
  const auto ladder = lmb::latency_ladder(
      full, {8 * 1024, 256 * 1024, 32 * 1024 * 1024}, 4000);
  for (const auto& pt : ladder) {
    std::printf("  %8zu KiB working set : %7.2f ns/load\n",
                pt.working_set_bytes / 1024, pt.ns_per_load);
  }
  const auto bw1 = lmb::stream_bandwidth(full, /*both_chips=*/false);
  const auto bw2 = lmb::stream_bandwidth(full, /*both_chips=*/true);
  std::printf("  one chip : read %.2f GB/s, write %.2f GB/s  (paper 3.57 / 1.77)\n",
              bw1.read_gbps, bw1.write_gbps);
  std::printf("  two chips: read %.2f GB/s, write %.2f GB/s  (paper 4.43 / 2.60)\n\n",
              bw2.read_gbps, bw2.write_gbps);

  // --- 2. One benchmark, serial vs the CMT configuration ------------------
  harness::RunOptions opt;
  opt.cls = npb::ProblemClass::kClassA;  // quick
  opt.trials = 1;

  const std::uint64_t seed = opt.trial_seed(0);
  harness::ExperimentEngine engine;
  const auto serial = engine.serial(npb::Benchmark::kCG, opt, seed);
  const harness::StudyConfig* cmt = harness::find_config("HT on -4-1");
  const auto par = engine.single(npb::Benchmark::kCG, *cmt, opt, seed);

  std::printf("CG class A: serial %.0f cycles, %s %.0f cycles -> speedup %.2f\n",
              serial.wall_cycles, std::string(cmt->name).c_str(),
              par.wall_cycles, serial.wall_cycles / par.wall_cycles);
  std::printf("  verified: serial=%s parallel=%s\n\n",
              serial.verified ? "yes" : "no", par.verified ? "yes" : "no");

  // --- 3. The Figure-2 metric bundle ---------------------------------------
  std::printf("Figure-2 metrics for CG on %s:\n", std::string(cmt->name).c_str());
  for (int i = 0; i < perf::kMetricCount; ++i) {
    std::printf("  %-24s %12.4f\n", std::string(perf::metric_name(i)).c_str(),
                perf::metric_value(par.metrics, i));
  }
  return 0;
}
