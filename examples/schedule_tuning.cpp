// examples/schedule_tuning.cpp
//
// Domain scenario 3: OpenMP loop-schedule tuning on SMT hardware.
//
// The paper's related work (Zhang & Voss, IPDPS'05) and its conclusions
// both point at *loop scheduling* as the lever for SMT-aware OpenMP
// performance.  This example measures static vs dynamic vs guided schedules
// for an imbalanced sparse workload (CG-like rows of wildly varying length)
// across Hyper-Threading configurations — the experiment a runtime-schedule
// autotuner starts from.
//
// Run: ./build/examples/schedule_tuning
#include <cstdio>
#include <string>
#include <vector>

#include "paxsim.hpp"

using namespace paxsim;

namespace {

/// An imbalanced sparse sweep: row i costs ~len[i] work, where len follows
/// a heavy-tailed distribution (a few rows are 100x the median).
class ImbalancedSweep {
 public:
  ImbalancedSweep(sim::AddressSpace& space, std::size_t rows)
      : lens_(rows), data_(space, rows * 64) {
    // The imbalance is *clustered* (as in triangular loops or sorted sparse
    // matrices): the first eighth of the rows carries most of the work, so
    // a default static schedule dumps it all on thread 0.
    npb::NpbRandom rng(7);
    for (std::size_t i = 0; i < rows; ++i) {
      const double u = rng.next();
      lens_[i] = i < rows / 8 ? 120 + static_cast<int>(u * 120)
                              : 4 + static_cast<int>(u * 12);
    }
    for (std::size_t c = 0; c < data_.size(); ++c) data_.host(c) = 1.0;
  }

  double run(xomp::Team& team, xomp::Schedule sched) {
    constexpr xomp::CodeBlock kBody{1, 40};
    const double t0 = team.wall_time();
    team.parallel_for(0, lens_.size(), sched, kBody,
                      [&](std::size_t i, sim::HwContext& ctx, int) {
                        const int len = lens_[i];
                        for (int k = 0; k < len; ++k) {
                          ctx.load(data_.addr((i * 64 + k) % data_.size()));
                          ctx.alu(3);
                        }
                      });
    return team.wall_time() - t0;
  }

 private:
  std::vector<int> lens_;
  npb::Array<double> data_;
};

}  // namespace

int main() {
  const struct {
    const char* label;
    xomp::Schedule sched;
  } schedules[] = {
      {"static", xomp::Schedule::static_default()},
      {"static,8", {xomp::ScheduleKind::kStatic, 8}},
      {"dynamic,1", xomp::Schedule::dynamic(1)},
      {"dynamic,8", xomp::Schedule::dynamic(8)},
      {"guided", xomp::Schedule::guided()},
  };

  std::printf("loop-schedule tuning, heavy-tailed sparse sweep (4096 rows)\n\n");
  std::printf("%-14s", "config");
  for (const auto& s : schedules) std::printf("%12s", s.label);
  std::printf("      cycles; lower is better\n");

  for (const char* cname :
       {"HT off -2-1", "HT on -4-1", "HT off -4-2", "HT on -8-2"}) {
    const harness::StudyConfig* cfg = harness::find_config(cname);
    std::printf("%-14s", cname);
    for (const auto& s : schedules) {
      sim::MachineParams params = sim::MachineParams{}.scaled(16);
      sim::Machine machine(params);
      sim::AddressSpace space(0);
      perf::CounterSet counters;
      ImbalancedSweep sweep(space, 4096);
      xomp::Team team(machine, cfg->cpus, &counters, space);
      for (int chip = 0; chip < params.chips; ++chip) {
        for (int core = 0; core < params.cores_per_chip; ++core) {
          int nctx = 0;
          for (const auto c : cfg->cpus) {
            if (c.chip == chip && c.core == core) ++nctx;
          }
          machine.core(chip, core).set_active_contexts(nctx > 0 ? nctx : 1);
        }
      }
      std::printf("%12.0f", sweep.run(team, s.sched));
    }
    std::printf("\n");
  }
  std::printf("\nExpected shape: static loses badly under imbalance; dynamic's\n"
              "shared-cursor line ping-pongs (visible as the dynamic,1 penalty\n"
              "at higher thread counts); dynamic,8 / guided balance both.\n");
  return 0;
}
