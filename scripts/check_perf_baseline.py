#!/usr/bin/env python3
"""Soft perf-regression gate for the perf-smoke CI job.

Reads the one-JSON-object-per-line rows the bench artifacts print
(collected into a .jsonl file by the workflow) and compares the gated
metrics against the checked-in baseline, bench/baselines/perf_smoke.json.
Only same-host ratios are gated (fast-vs-reference speedup, parallel-vs-
serial speedup); absolute events/sec are runner-dependent and reported
for trend inspection only.

A metric fails when  measured < baseline * (1 - tolerance).  When an
artifact produced several rows for the same (artifact, bench) pair — the
hotpath bench runs at --scale=1 and --scale=16 — the best row is taken,
so the gate asks "is the optimisation still intact anywhere", which is
robust to one noisy pass.

Override knobs:
  PAXSIM_PERF_SKIP=1        skip the gate entirely (exit 0, loudly)
  PAXSIM_PERF_TOLERANCE=F   override the baseline file's tolerance

Usage: check_perf_baseline.py [--baseline FILE] RESULTS.jsonl [MORE.jsonl...]
"""

import argparse
import json
import os
import sys

DEFAULT_BASELINE = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "bench", "baselines", "perf_smoke.json")


def load_rows(paths):
    rows = []
    for path in paths:
        with open(path, encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if not line.startswith("{"):
                    continue
                try:
                    rows.append(json.loads(line))
                except json.JSONDecodeError:
                    print(f"warning: unparseable JSON line in {path}: "
                          f"{line[:80]}", file=sys.stderr)
    return rows


def host_concurrency(rows):
    for row in rows:
        host = row.get("host")
        if isinstance(host, dict) and "hardware_concurrency" in host:
            return int(host["hardware_concurrency"])
    return None


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", default=DEFAULT_BASELINE)
    ap.add_argument("results", nargs="+", help=".jsonl files of bench rows")
    args = ap.parse_args()

    if os.environ.get("PAXSIM_PERF_SKIP") == "1":
        print("PAXSIM_PERF_SKIP=1: perf baseline gate skipped")
        return 0

    with open(args.baseline, encoding="utf-8") as f:
        baseline = json.load(f)
    if baseline.get("kind") != "perf_baseline":
        print(f"error: {args.baseline} is not a perf_baseline document",
              file=sys.stderr)
        return 2

    tolerance = baseline.get("tolerance", 0.25)
    env_tol = os.environ.get("PAXSIM_PERF_TOLERANCE")
    if env_tol is not None:
        tolerance = float(env_tol)
        print(f"PAXSIM_PERF_TOLERANCE={tolerance} (overriding baseline file)")

    rows = load_rows(args.results)
    hw = host_concurrency(rows)
    failures = []
    for metric in baseline["metrics"]:
        artifact, bench = metric["artifact"], metric["bench"]
        field, floor = metric["field"], metric["baseline"]
        label = f"{artifact}/{bench}/{field}"

        need_hw = metric.get("min_host_concurrency", 1)
        if need_hw > 1 and (hw is None or hw < need_hw):
            print(f"SKIP  {label}: needs >= {need_hw} host threads "
                  f"(runner has {hw})")
            continue

        candidates = [r[field] for r in rows
                      if r.get("artifact") == artifact
                      and r.get("bench") == bench and field in r]
        if not candidates:
            # A missing gated metric is itself a failure: a silently
            # dropped artifact must not green the gate.
            failures.append(f"{label}: no measurement found in results")
            continue

        measured = max(candidates)
        threshold = floor * (1.0 - tolerance)
        verdict = "ok" if measured >= threshold else "REGRESSION"
        print(f"{verdict:10s} {label}: measured {measured:.3f} vs "
              f"baseline {floor:.3f} (floor {threshold:.3f})")
        if measured < threshold:
            msg = (f"{label}: {measured:.3f} < {threshold:.3f} "
                   f"(baseline {floor:.3f}, tolerance {tolerance:.0%})")
            if metric.get("advisory"):
                print(f"ADVISORY  {msg} — not gating (advisory metric)")
            else:
                failures.append(msg)

    if failures:
        print("\nperf baseline gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        print("(rerun with PAXSIM_PERF_SKIP=1 to bypass, or recalibrate "
              "bench/baselines/perf_smoke.json)", file=sys.stderr)
        return 1
    print("perf baseline gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
