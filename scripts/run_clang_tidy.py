#!/usr/bin/env python3
"""Full-tree clang-tidy against a checked-in baseline.

Runs clang-tidy (profile: .clang-tidy at the repo root) over every
first-party translation unit in compile_commands.json and compares the
diagnostics to .clang-tidy-baseline:

  * `error:` diagnostics (the WarningsAsErrors categories — use-after-move,
    dangling-handle, concurrency-*, use-override) ALWAYS fail.  They are
    never baselined; the baseline file cannot grandfather them in.
  * `warning:` diagnostics are fingerprinted as `check|path` (line numbers
    are deliberately dropped so unrelated edits don't churn the file).
    A fingerprint absent from the baseline fails the run; fix the warning
    or — for a deliberate, argued exception — rerun with --update-baseline
    and commit the diff so the exception is reviewable.
  * Baseline entries that no longer occur are reported; rerun with
    --update-baseline to drop them (burn-down should shrink this file
    toward empty, never grow it silently).

Usage:
  python3 scripts/run_clang_tidy.py --build-dir build-lint [--jobs N]
                                    [--update-baseline]

Exit status: 0 clean (baseline-matched warnings allowed), 1 on errors or
new warnings, 2 on usage/environment problems.
"""

import argparse
import concurrent.futures
import json
import os
import re
import shutil
import subprocess
import sys

FIRST_PARTY = ("src/", "tests/", "bench/", "examples/", "tools/")
EXCLUDED = ("tools/lint/fixtures/",)
DIAG_RE = re.compile(
    r"^(?P<path>[^\s:][^:]*):(?P<line>\d+):(?P<col>\d+): "
    r"(?P<sev>warning|error): (?P<msg>.*) \[(?P<check>[^\[\]]+)\]$"
)


def first_party_sources(build_dir, root):
    ccj = os.path.join(build_dir, "compile_commands.json")
    if not os.path.isfile(ccj):
        sys.exit(
            f"run_clang_tidy: {ccj} not found; configure with "
            "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON"
        )
    with open(ccj, encoding="utf-8") as f:
        entries = json.load(f)
    files = set()
    for entry in entries:
        path = os.path.normpath(
            os.path.join(entry.get("directory", ""), entry["file"])
        )
        rel = os.path.relpath(path, root)
        if rel.startswith(FIRST_PARTY) and not rel.startswith(EXCLUDED):
            files.add(path)
    return sorted(files)


def run_one(tidy, build_dir, path):
    proc = subprocess.run(
        [tidy, "-p", build_dir, "--quiet", path],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        check=False,
    )
    return proc.stdout


def load_baseline(path):
    fingerprints = set()
    if not os.path.isfile(path):
        return fingerprints
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if line and not line.startswith("#"):
                fingerprints.add(line)
    return fingerprints


def write_baseline(path, fingerprints):
    with open(path, "w", encoding="utf-8") as f:
        f.write(
            "# clang-tidy warning baseline (scripts/run_clang_tidy.py).\n"
            "# One `check|path` fingerprint per line; WarningsAsErrors\n"
            "# categories are never listed here.  Burn this file down —\n"
            "# additions need review, removals are free.\n"
        )
        for fp in sorted(fingerprints):
            f.write(fp + "\n")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--build-dir", default="build")
    ap.add_argument("--baseline", default=".clang-tidy-baseline")
    ap.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    ap.add_argument("--update-baseline", action="store_true")
    ap.add_argument("--clang-tidy", default="clang-tidy")
    args = ap.parse_args()

    tidy = shutil.which(args.clang_tidy)
    if tidy is None:
        sys.exit(f"run_clang_tidy: {args.clang_tidy} not on PATH")
    root = os.getcwd()
    files = first_party_sources(args.build_dir, root)
    if not files:
        sys.exit("run_clang_tidy: no first-party sources in compile commands")
    print(f"run_clang_tidy: {len(files)} translation units, -j{args.jobs}")

    errors = []  # (display_line) — always fatal
    warnings = {}  # fingerprint -> first display line
    seen_lines = set()  # dedupe header diagnostics repeated across TUs
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        for out in pool.map(lambda p: run_one(tidy, args.build_dir, p), files):
            for line in out.splitlines():
                m = DIAG_RE.match(line)
                if m is None:
                    continue
                path = os.path.relpath(m.group("path"), root)
                if not path.startswith(FIRST_PARTY) or path.startswith(EXCLUDED):
                    continue
                display = (
                    f"{path}:{m.group('line')}:{m.group('col')}: "
                    f"{m.group('sev')}: {m.group('msg')} [{m.group('check')}]"
                )
                if display in seen_lines:
                    continue
                seen_lines.add(display)
                for check in m.group("check").split(","):
                    fingerprint = f"{check}|{path}"
                    if m.group("sev") == "error":
                        errors.append(display)
                    else:
                        warnings.setdefault(fingerprint, display)

    baseline = load_baseline(args.baseline)
    if args.update_baseline:
        write_baseline(args.baseline, set(warnings))
        print(f"run_clang_tidy: wrote {len(warnings)} fingerprints to "
              f"{args.baseline}")
        if errors:
            print("run_clang_tidy: NOTE errors are never baselined:")
            for line in errors:
                print("  " + line)
            return 1
        return 0

    new = {fp: line for fp, line in warnings.items() if fp not in baseline}
    stale = baseline - set(warnings)
    for line in errors:
        print(line)
    for fp in sorted(new):
        print(new[fp])
    for fp in sorted(stale):
        print(f"note: stale baseline entry (no longer reported): {fp}")
    print(
        f"run_clang_tidy: {len(errors)} errors, {len(new)} new warnings, "
        f"{len(warnings) - len(new)} baselined, {len(stale)} stale"
    )
    if errors or new:
        print(
            "run_clang_tidy: fix the diagnostics above (or, for argued "
            "warning exceptions only, --update-baseline and commit the diff)"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
