#!/bin/sh
# Full-tree paxlint run — the single definition of "what CI lints".
#
#   scripts/run_paxlint.sh <paxlint-binary> <repo-root> [json-output]
#
# Used by the `paxlint` CMake custom target and by the CI lint job, so the
# two cannot drift.  Exit status is paxlint's: 0 clean, 2 unsuppressed
# findings.
set -eu

BIN="${1:?usage: run_paxlint.sh <paxlint-binary> <repo-root> [json-out]}"
ROOT="${2:?usage: run_paxlint.sh <paxlint-binary> <repo-root> [json-out]}"
JSON="${3:-}"

if [ -n "$JSON" ]; then
  exec "$BIN" --root="$ROOT" --json="$JSON" src bench tests examples tools
else
  exec "$BIN" --root="$ROOT" src bench tests examples tools
fi
