#include "check/checker.hpp"

#include "sim/core.hpp"

namespace paxsim::check {

Checker::Checker(sim::Machine& machine, sim::CheckMode mode)
    : machine_(&machine), mode_(mode) {
  if (mode_ == sim::CheckMode::kOff) return;
  if (race_mode()) detector_ = std::make_unique<RaceDetector>();
  if (invariant_mode()) auditor_ = std::make_unique<InvariantAuditor>();
  machine_->set_trace_sink(this);
  attached_ = true;
}

Checker::~Checker() {
  if (attached_) machine_->set_trace_sink(nullptr);
}

int Checker::tid_of(const sim::HwContext& ctx) {
  const auto it = tids_.find(&ctx);
  if (it != tids_.end()) return it->second;
  const int tid = next_tid_++;
  tids_.emplace(&ctx, tid);
  if (detector_) detector_->ensure_thread(tid);
  return tid;
}

void Checker::maybe_audit() {
  if (!auditor_ || events_since_audit_ < kAuditMinEvents) return;
  auditor_->audit(*machine_);
  events_since_audit_ = 0;
}

void Checker::on_access(const sim::HwContext& ctx, sim::Addr addr,
                        bool is_store, sim::Dep /*dep*/) {
  ++accesses_;
  ++events_since_audit_;
  if (auditor_) {
    auditor_->note_data_page(addr & ~(machine_->params().page_bytes - 1));
  }
  if (detector_ && !detector_->exempt(addr)) {
    detector_->on_access(tid_of(ctx), addr, is_store,
                         AccessRecord{-1, ctx.id(), ctx.last_block(),
                                      ctx.now()});
  }
}

void Checker::on_fetch(const sim::HwContext& /*ctx*/, sim::Addr code_addr,
                       std::uint32_t /*uops*/) {
  ++fetches_;
  ++events_since_audit_;
  if (auditor_) {
    auditor_->note_code_page(code_addr & ~(machine_->params().page_bytes - 1));
  }
}

void Checker::on_team(TeamEvent /*ev*/, const void* /*team*/,
                      const sim::HwContext* const* members,
                      std::size_t count) {
  ++team_events_;
  if (detector_) {
    tid_scratch_.clear();
    for (std::size_t i = 0; i < count; ++i) {
      tid_scratch_.push_back(tid_of(*members[i]));
    }
    // Create, fork, barrier and join all synchronise every member clock in
    // the runtime, so they carry the same all-to-all happens-before edge.
    detector_->on_barrier(tid_scratch_.data(), tid_scratch_.size());
  }
  maybe_audit();
}

void Checker::on_runtime_range(sim::Addr base, std::size_t bytes) {
  if (detector_) detector_->add_exempt_range(base, bytes);
}

void Checker::on_sync(SyncOp op, const sim::HwContext& ctx, sim::Addr addr) {
  ++syncs_;
  if (!detector_) return;
  const int tid = tid_of(ctx);
  switch (op) {
    case SyncOp::kAcquire: detector_->on_acquire(tid, addr); break;
    case SyncOp::kRelease: detector_->on_release(tid, addr); break;
    case SyncOp::kCombine: break;  // ordered by the join barrier already
  }
}

void Checker::on_thread_moved(const sim::HwContext& from,
                              const sim::HwContext& to) {
  const auto it = tids_.find(&from);
  if (it == tids_.end()) return;
  const int tid = it->second;
  tids_.erase(it);
  // The logical thread carries its identity (and so its happens-before
  // history) to the destination context.
  tids_[&to] = tid;
  if (detector_) detector_->on_thread_moved(tid);
}

CheckReport Checker::finish() {
  if (attached_) {
    if (auditor_) auditor_->audit(*machine_);
    machine_->set_trace_sink(nullptr);
    attached_ = false;
  }
  CheckReport r;
  r.mode = mode_;
  r.accesses = accesses_;
  r.fetches = fetches_;
  r.syncs = syncs_;
  r.team_events = team_events_;
  if (detector_) {
    r.races_total = detector_->races_total();
    r.racy_words = detector_->racy_words();
    r.races = detector_->races();
    r.line_conflicts = detector_->line_conflicts();
    r.conflicted_lines = detector_->conflicted_lines();
  }
  if (auditor_) {
    r.audits = auditor_->audits_run();
    r.violations_total = auditor_->violations_total();
    r.violations = auditor_->violations();
  }
  return r;
}

}  // namespace paxsim::check
