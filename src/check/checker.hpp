// paxsim/check/checker.hpp
//
// The Checker glues the analysis subsystem to a Machine: it implements
// sim::TraceSink, owns the race detector and/or the invariant auditor
// according to the CheckMode, and renders a CheckReport at the end of the
// run.
//
// Usage (the harness runner does exactly this):
//
//   machine.reset();
//   check::Checker checker(machine, machine.params().check_mode);  // attaches
//   ... run the program ...
//   check::CheckReport report = checker.finish();                  // detaches
//
// Attachment is RAII: the destructor detaches the sink if finish() was
// never called, so an exception cannot leave a dangling sink on a pooled
// machine.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "check/invariants.hpp"
#include "check/race_detector.hpp"
#include "check/report.hpp"
#include "sim/hooks.hpp"
#include "sim/machine.hpp"

namespace paxsim::check {

/// TraceSink implementation driving the analyses in virtual time.
class Checker final : public sim::TraceSink {
 public:
  /// Attaches to @p machine (Machine::set_trace_sink).  @p mode selects the
  /// analyses; kOff constructs a valid but inert checker.
  Checker(sim::Machine& machine, sim::CheckMode mode);
  ~Checker() override;

  Checker(const Checker&) = delete;
  Checker& operator=(const Checker&) = delete;

  /// Final invariant audit, detach, and report assembly.  Idempotent.
  CheckReport finish();

  // ---- sim::TraceSink ------------------------------------------------------
  void on_access(const sim::HwContext& ctx, sim::Addr addr, bool is_store,
                 sim::Dep dep) override;
  void on_fetch(const sim::HwContext& ctx, sim::Addr code_addr,
                std::uint32_t uops) override;
  void on_team(TeamEvent ev, const void* team,
               const sim::HwContext* const* members,
               std::size_t count) override;
  void on_runtime_range(sim::Addr base, std::size_t bytes) override;
  void on_sync(SyncOp op, const sim::HwContext& ctx, sim::Addr addr) override;
  void on_thread_moved(const sim::HwContext& from,
                       const sim::HwContext& to) override;

  /// Audit throttle: a sync-boundary audit runs only after this many events
  /// since the previous one (plus the unconditional final audit).
  static constexpr std::uint64_t kAuditMinEvents = 4096;

 private:
  [[nodiscard]] bool race_mode() const noexcept {
    return mode_ == sim::CheckMode::kRace || mode_ == sim::CheckMode::kFull;
  }
  [[nodiscard]] bool invariant_mode() const noexcept {
    return mode_ == sim::CheckMode::kInvariants ||
           mode_ == sim::CheckMode::kFull;
  }
  /// Dense thread id of @p ctx, assigned on first sight.
  int tid_of(const sim::HwContext& ctx);
  void maybe_audit();

  sim::Machine* machine_;
  sim::CheckMode mode_;
  bool attached_ = false;

  std::unique_ptr<RaceDetector> detector_;    // race_mode() only
  std::unique_ptr<InvariantAuditor> auditor_; // invariant_mode() only

  std::unordered_map<const sim::HwContext*, int> tids_;
  int next_tid_ = 0;
  std::vector<int> tid_scratch_;  // member-tid buffer for on_team

  std::uint64_t accesses_ = 0;
  std::uint64_t fetches_ = 0;
  std::uint64_t syncs_ = 0;
  std::uint64_t team_events_ = 0;
  std::uint64_t events_since_audit_ = 0;
};

}  // namespace paxsim::check
