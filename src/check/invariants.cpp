#include "check/invariants.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <unordered_map>
#include <utility>
#include <vector>

namespace paxsim::check {

namespace {

const char* state_name(sim::LineState s) noexcept {
  switch (s) {
    case sim::LineState::kInvalid: return "I";
    case sim::LineState::kShared: return "S";
    case sim::LineState::kExclusive: return "E";
    case sim::LineState::kModified: return "M";
  }
  return "?";
}

std::string hex(sim::Addr a) {
  std::ostringstream os;
  os << "0x" << std::hex << a;
  return os.str();
}

bool owned(sim::LineState s) noexcept {
  return s == sim::LineState::kExclusive || s == sim::LineState::kModified;
}

}  // namespace

void InvariantAuditor::record(const char* rule, std::string detail) {
  ++violations_total_;
  if (violations_.size() < max_records_) {
    violations_.push_back(Violation{rule, std::move(detail)});
  }
}

void InvariantAuditor::audit(const sim::Machine& m) {
  ++audits_run_;
  audit_coherence(m);
  audit_tlbs(m);
  audit_structures(m);
}

void InvariantAuditor::audit_coherence(const sim::Machine& m) {
  // Coherence is tracked per *domain* — one per outermost cache instance
  // (every core on private-L2 topologies, every chip when the outer level is
  // chip-shared).  Each domain owns one outer residency map; cores keep
  // their own L1 (and, on three-level topologies, private mid-L2) maps.
  const int ncores = m.params().total_cores();
  const int ndomains = m.domain_count();

  struct CoreLines {
    std::unordered_map<sim::Addr, sim::LineState> l1;
    std::unordered_map<sim::Addr, sim::LineState> mid;  // 3-level only
    bool has_mid = false;
  };
  std::vector<CoreLines> per(static_cast<std::size_t>(ncores));
  std::vector<std::unordered_map<sim::Addr, sim::LineState>> outer(
      static_cast<std::size_t>(ndomains));
  // Ordered so violation examples are recorded in a deterministic order
  // (record() keeps only the first few as samples).
  std::set<sim::Addr> all_lines;
  for (int c = 0; c < ncores; ++c) {
    const sim::Core& core = m.core_by_id(c);
    CoreLines& cl = per[static_cast<std::size_t>(c)];
    for (const auto& lv : core.l1d().live_lines()) {
      cl.l1.emplace(lv.line_addr, lv.state);
      all_lines.insert(lv.line_addr);
    }
    if (core.l3() != nullptr) {
      cl.has_mid = true;
      for (const auto& lv : core.l2().live_lines()) {
        cl.mid.emplace(lv.line_addr, lv.state);
        all_lines.insert(lv.line_addr);
      }
    }
  }
  for (int d = 0; d < ndomains; ++d) {
    for (const auto& lv : m.domain_outer_cache(d).live_lines()) {
      outer[static_cast<std::size_t>(d)].emplace(lv.line_addr, lv.state);
      all_lines.insert(lv.line_addr);
    }
  }

  // swmr + inclusion, per line.
  for (const sim::Addr line : all_lines) {
    int owner = -1;       // domain holding the line E/M in its outer cache
    int holders = 0;      // domains with the line live anywhere
    for (int d = 0; d < ndomains; ++d) {
      const auto& om = outer[static_cast<std::size_t>(d)];
      const auto oit = om.find(line);
      bool here = oit != om.end();
      for (const int c : m.domain_cores(d)) {
        const CoreLines& cl = per[static_cast<std::size_t>(c)];
        if (cl.l1.count(line) != 0 || cl.mid.count(line) != 0) here = true;
      }
      if (here) ++holders;
      if (oit != om.end() && owned(oit->second)) {
        if (owner >= 0) {
          record("swmr", "line " + hex(line) + " owned by domains " +
                             std::to_string(owner) + " and " +
                             std::to_string(d));
        }
        owner = d;
      }

      // Inclusion + state consistency inside one domain.
      int inner_owner = -1;  // core of this domain holding the line E/M in L1
      for (const int c : m.domain_cores(d)) {
        const CoreLines& cl = per[static_cast<std::size_t>(c)];
        const auto l1it = cl.l1.find(line);
        const auto midit = cl.mid.find(line);
        if (cl.has_mid && midit != cl.mid.end() && oit == om.end()) {
          record("inclusion", "core " + std::to_string(c) + " holds line " +
                                  hex(line) + " in its mid-level L2 (" +
                                  state_name(midit->second) +
                                  ") without an outer copy");
        }
        if (l1it == cl.l1.end()) continue;
        const sim::LineState s1 = l1it->second;
        if (cl.has_mid && midit == cl.mid.end()) {
          record("inclusion", "core " + std::to_string(c) + " holds line " +
                                  hex(line) + " in L1 (" + state_name(s1) +
                                  ") without a mid-level L2 copy");
        }
        if (oit == om.end()) {
          record("inclusion", "core " + std::to_string(c) + " holds line " +
                                  hex(line) + " in L1 (" + state_name(s1) +
                                  ") without an outer copy");
          continue;
        }
        const sim::LineState s2 = oit->second;
        if (m.domain_cores(d).size() == 1) {
          // Private outer cache: the seed's exact state rule.
          const bool ok = s1 == sim::LineState::kShared
                              ? s2 == sim::LineState::kShared
                              : owned(s2);
          if (!ok) {
            record("inclusion", "core " + std::to_string(c) + " line " +
                                    hex(line) + " L1=" + state_name(s1) +
                                    " vs outer=" + state_name(s2));
          }
        } else {
          // Shared outer cache: an owned L1 copy needs an owned outer copy;
          // a Shared L1 copy may sit under any outer state (intra-domain
          // sharing keeps the domain-owned outer line Exclusive/Modified).
          if (owned(s1)) {
            if (!owned(s2)) {
              record("inclusion", "core " + std::to_string(c) + " line " +
                                      hex(line) + " L1=" + state_name(s1) +
                                      " vs shared outer=" + state_name(s2));
            }
            if (inner_owner >= 0) {
              record("swmr", "line " + hex(line) +
                                 " owned E/M in L1 by sibling cores " +
                                 std::to_string(inner_owner) + " and " +
                                 std::to_string(c));
            }
            inner_owner = c;
          }
        }
      }
      // Intra-domain SWMR: an L1 owner excludes sibling L1/mid copies.
      if (inner_owner >= 0) {
        for (const int c : m.domain_cores(d)) {
          if (c == inner_owner) continue;
          const CoreLines& cl = per[static_cast<std::size_t>(c)];
          if (cl.l1.count(line) != 0 || cl.mid.count(line) != 0) {
            record("swmr", "line " + hex(line) + " owned E/M in L1 by core " +
                               std::to_string(inner_owner) +
                               " but also resident in sibling core " +
                               std::to_string(c));
          }
        }
      }
    }
    if (owner >= 0 && holders > 1) {
      record("swmr", "line " + hex(line) + " owned E/M by domain " +
                         std::to_string(owner) + " but resident in " +
                         std::to_string(holders) + " domains");
    }
  }

  // Directory <-> outer-cache residency, both directions.
  std::unordered_map<sim::Addr, unsigned> dir;
  for (const auto& [line, holders] : m.directory_snapshot()) {
    dir.emplace(line, holders);
    for (int d = 0; d < ndomains; ++d) {
      const bool bit = (holders & (1u << d)) != 0;
      const bool resident =
          outer[static_cast<std::size_t>(d)].count(line) != 0;
      if (bit && !resident) {
        record("directory", "bit set for domain " + std::to_string(d) +
                                " on line " + hex(line) +
                                " absent from that outer cache");
      }
    }
  }
  for (int d = 0; d < ndomains; ++d) {
    // Sorted copy: hash order must not pick which violations become the
    // recorded examples.
    std::vector<std::pair<sim::Addr, sim::LineState>> resident(
        outer[static_cast<std::size_t>(d)].begin(),
        outer[static_cast<std::size_t>(d)].end());
    std::sort(resident.begin(), resident.end());
    for (const auto& [line, state] : resident) {
      const auto it = dir.find(line);
      if (it == dir.end() || (it->second & (1u << d)) == 0) {
        record("directory", "domain " + std::to_string(d) + " holds line " +
                                hex(line) + " (" + state_name(state) +
                                ") with no directory bit");
      }
    }
  }
}

void InvariantAuditor::audit_tlbs(const sim::Machine& m) {
  const int ncores = m.params().total_cores();
  for (int c = 0; c < ncores; ++c) {
    const sim::Core& core = m.core_by_id(c);
    for (const auto& e : core.dtlb().table().live_lines()) {
      if (data_pages_.count(e.line_addr) == 0) {
        record("tlb", "core " + std::to_string(c) + " DTLB entry for page " +
                          hex(e.line_addr) + " never observed in the stream");
      }
    }
    for (const auto& e : core.itlb().table().live_lines()) {
      if (code_pages_.count(e.line_addr) == 0) {
        record("tlb", "core " + std::to_string(c) + " ITLB entry for page " +
                          hex(e.line_addr) + " never observed in the stream");
      }
    }
  }
}

void InvariantAuditor::audit_structures(const sim::Machine& m) {
  const int ncores = m.params().total_cores();
  std::string why;
  for (int c = 0; c < ncores; ++c) {
    const sim::Core& core = m.core_by_id(c);
    std::vector<std::pair<const char*, const sim::SetAssocCache*>> structs = {
        {"L1D", &core.l1d()},
        {"ITLB", &core.itlb().table()},
        {"DTLB", &core.dtlb().table()},
    };
    // The core's L2 is audited here only when it owns the storage; a
    // chip-shared cache is audited once per domain below.
    if (core.owns_l2()) structs.emplace_back("L2", &core.l2());
    for (const auto& s : structs) {
      if (!s.second->audit(&why)) {
        record("structure",
               std::string(s.first) + " of core " + std::to_string(c) + ": " + why);
      }
    }
    if (!core.audit_fast_entries(&why)) {
      record("fastpath", why);
    }
  }
  if (m.chip_domains()) {
    for (int d = 0; d < m.domain_count(); ++d) {
      if (!m.domain_outer_cache(d).audit(&why)) {
        record("structure", "shared outer cache of domain " +
                                std::to_string(d) + ": " + why);
      }
    }
  }
}

}  // namespace paxsim::check
