#include "check/invariants.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>

namespace paxsim::check {

namespace {

const char* state_name(sim::LineState s) noexcept {
  switch (s) {
    case sim::LineState::kInvalid: return "I";
    case sim::LineState::kShared: return "S";
    case sim::LineState::kExclusive: return "E";
    case sim::LineState::kModified: return "M";
  }
  return "?";
}

std::string hex(sim::Addr a) {
  std::ostringstream os;
  os << "0x" << std::hex << a;
  return os.str();
}

bool owned(sim::LineState s) noexcept {
  return s == sim::LineState::kExclusive || s == sim::LineState::kModified;
}

}  // namespace

void InvariantAuditor::record(const char* rule, std::string detail) {
  ++violations_total_;
  if (violations_.size() < max_records_) {
    violations_.push_back(Violation{rule, std::move(detail)});
  }
}

void InvariantAuditor::audit(const sim::Machine& m) {
  ++audits_run_;
  audit_coherence(m);
  audit_tlbs(m);
  audit_structures(m);
}

void InvariantAuditor::audit_coherence(const sim::Machine& m) {
  const int ncores = m.params().total_cores();

  // Per-core residency maps, and the union of lines seen anywhere.
  struct CoreLines {
    std::unordered_map<sim::Addr, sim::LineState> l1;
    std::unordered_map<sim::Addr, sim::LineState> l2;
  };
  std::vector<CoreLines> per(static_cast<std::size_t>(ncores));
  std::unordered_set<sim::Addr> all_lines;
  for (int c = 0; c < ncores; ++c) {
    const sim::Core& core = m.core_by_id(c);
    for (const auto& lv : core.l1d().live_lines()) {
      per[static_cast<std::size_t>(c)].l1.emplace(lv.line_addr, lv.state);
      all_lines.insert(lv.line_addr);
    }
    for (const auto& lv : core.l2().live_lines()) {
      per[static_cast<std::size_t>(c)].l2.emplace(lv.line_addr, lv.state);
      all_lines.insert(lv.line_addr);
    }
  }

  // swmr + inclusion, per line.
  for (const sim::Addr line : all_lines) {
    int owner = -1;       // core holding the line E/M in its L2
    int holders = 0;      // cores with the line live anywhere
    for (int c = 0; c < ncores; ++c) {
      const CoreLines& cl = per[static_cast<std::size_t>(c)];
      const auto l2it = cl.l2.find(line);
      const auto l1it = cl.l1.find(line);
      const bool here = l2it != cl.l2.end() || l1it != cl.l1.end();
      if (here) ++holders;
      if (l2it != cl.l2.end() && owned(l2it->second)) {
        if (owner >= 0) {
          record("swmr", "line " + hex(line) + " owned by cores " +
                             std::to_string(owner) + " and " +
                             std::to_string(c));
        }
        owner = c;
      }
      // Inclusion + state consistency inside one core.
      if (l1it != cl.l1.end()) {
        if (l2it == cl.l2.end()) {
          record("inclusion", "core " + std::to_string(c) + " holds line " +
                                  hex(line) + " in L1 (" +
                                  state_name(l1it->second) +
                                  ") without an L2 copy");
        } else {
          const sim::LineState s1 = l1it->second;
          const sim::LineState s2 = l2it->second;
          const bool ok = s1 == sim::LineState::kShared
                              ? s2 == sim::LineState::kShared
                              : owned(s2);
          if (!ok) {
            record("inclusion", "core " + std::to_string(c) + " line " +
                                    hex(line) + " L1=" + state_name(s1) +
                                    " vs L2=" + state_name(s2));
          }
        }
      }
    }
    if (owner >= 0 && holders > 1) {
      record("swmr", "line " + hex(line) + " owned E/M by core " +
                         std::to_string(owner) + " but resident in " +
                         std::to_string(holders) + " cores");
    }
  }

  // Directory <-> L2 residency, both directions.
  std::unordered_map<sim::Addr, unsigned> dir;
  for (const auto& [line, holders] : m.directory_snapshot()) {
    dir.emplace(line, holders);
    for (int c = 0; c < ncores; ++c) {
      const bool bit = (holders & (1u << c)) != 0;
      const bool resident =
          per[static_cast<std::size_t>(c)].l2.count(line) != 0;
      if (bit && !resident) {
        record("directory", "bit set for core " + std::to_string(c) +
                                " on line " + hex(line) +
                                " absent from that L2");
      }
    }
  }
  for (int c = 0; c < ncores; ++c) {
    for (const auto& [line, state] : per[static_cast<std::size_t>(c)].l2) {
      const auto it = dir.find(line);
      if (it == dir.end() || (it->second & (1u << c)) == 0) {
        record("directory", "core " + std::to_string(c) + " holds line " +
                                hex(line) + " (" + state_name(state) +
                                ") with no directory bit");
      }
    }
  }
}

void InvariantAuditor::audit_tlbs(const sim::Machine& m) {
  const int ncores = m.params().total_cores();
  for (int c = 0; c < ncores; ++c) {
    const sim::Core& core = m.core_by_id(c);
    for (const auto& e : core.dtlb().table().live_lines()) {
      if (data_pages_.count(e.line_addr) == 0) {
        record("tlb", "core " + std::to_string(c) + " DTLB entry for page " +
                          hex(e.line_addr) + " never observed in the stream");
      }
    }
    for (const auto& e : core.itlb().table().live_lines()) {
      if (code_pages_.count(e.line_addr) == 0) {
        record("tlb", "core " + std::to_string(c) + " ITLB entry for page " +
                          hex(e.line_addr) + " never observed in the stream");
      }
    }
  }
}

void InvariantAuditor::audit_structures(const sim::Machine& m) {
  const int ncores = m.params().total_cores();
  std::string why;
  for (int c = 0; c < ncores; ++c) {
    const sim::Core& core = m.core_by_id(c);
    const struct {
      const char* name;
      const sim::SetAssocCache* cache;
    } structs[] = {
        {"L1D", &core.l1d()},
        {"L2", &core.l2()},
        {"ITLB", &core.itlb().table()},
        {"DTLB", &core.dtlb().table()},
    };
    for (const auto& s : structs) {
      if (!s.cache->audit(&why)) {
        record("structure",
               std::string(s.name) + " of core " + std::to_string(c) + ": " + why);
      }
    }
    if (!core.audit_fast_entries(&why)) {
      record("fastpath", why);
    }
  }
}

}  // namespace paxsim::check
