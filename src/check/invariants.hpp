// paxsim/check/invariants.hpp
//
// Machine-state invariant auditor: validates the structural laws the
// simulated memory system must obey at every quiescent point.  Run at sync
// boundaries (with a min-event throttle) and once at the end of a checked
// run; each audit walks the four cores' caches, TLBs and the coherence
// directory.
//
// Families checked:
//   swmr        — single-writer/multi-reader: a line Exclusive/Modified in
//                 one core's hierarchy is resident nowhere else.
//   inclusion   — every live L1 line is backed by the same core's L2, with
//                 consistent states (L1 S => L2 S; L1 E/M => L2 E/M).
//   directory   — directory holder bits match L2 residency exactly, both
//                 directions.
//   tlb         — every live TLB entry translates a page the observed
//                 access/fetch stream actually touched.
//   structure   — SetAssocCache self-audit (LRU stamps bounded by the
//                 clock, MRU hints in range, no duplicate tags in a set).
//   fastpath    — armed fast-path entries must still pass handle
//                 revalidation (Core::audit_fast_entries).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "sim/machine.hpp"

namespace paxsim::check {

/// One invariant violation.
struct Violation {
  std::string rule;    ///< family name ("swmr", "inclusion", ...)
  std::string detail;  ///< human-readable specifics (line address, states)
};

/// Stateful auditor: accumulates the observed page sets between audits and
/// keeps capped violation records across audits.
class InvariantAuditor {
 public:
  explicit InvariantAuditor(std::size_t max_records = 32)
      : max_records_(max_records) {}

  /// Feeds the page-observation sets (from the access / fetch stream).
  void note_data_page(sim::Addr page) { data_pages_.insert(page); }
  void note_code_page(sim::Addr page) { code_pages_.insert(page); }

  /// Runs every family once against @p m.
  void audit(const sim::Machine& m);

  [[nodiscard]] const std::vector<Violation>& violations() const noexcept {
    return violations_;
  }
  [[nodiscard]] std::uint64_t violations_total() const noexcept {
    return violations_total_;
  }
  [[nodiscard]] std::uint64_t audits_run() const noexcept {
    return audits_run_;
  }

 private:
  void record(const char* rule, std::string detail);

  void audit_coherence(const sim::Machine& m);  // swmr + inclusion + directory
  void audit_tlbs(const sim::Machine& m);
  void audit_structures(const sim::Machine& m);

  std::size_t max_records_;
  std::unordered_set<sim::Addr> data_pages_;
  std::unordered_set<sim::Addr> code_pages_;
  std::vector<Violation> violations_;
  std::uint64_t violations_total_ = 0;
  std::uint64_t audits_run_ = 0;
};

}  // namespace paxsim::check
