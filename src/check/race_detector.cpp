#include "check/race_detector.hpp"

#include <algorithm>

namespace paxsim::check {

namespace {
constexpr sim::Addr kLineShift = 6;  // 64-byte lines, as the modelled caches
}  // namespace

const char* race_kind_name(RaceRecord::Kind k) noexcept {
  switch (k) {
    case RaceRecord::Kind::kWriteWrite: return "write-write";
    case RaceRecord::Kind::kReadWrite: return "read-write";
    case RaceRecord::Kind::kWriteRead: return "write-read";
  }
  return "?";
}

void RaceDetector::add_exempt_range(sim::Addr base, std::size_t bytes) {
  exempt_.emplace_back(base, base + static_cast<sim::Addr>(bytes));
}

bool RaceDetector::exempt(sim::Addr addr) const noexcept {
  for (const auto& [lo, hi] : exempt_) {
    if (addr >= lo && addr < hi) return true;
  }
  return false;
}

void RaceDetector::ensure_thread(int tid) {
  const auto i = static_cast<std::size_t>(tid);
  if (i >= clocks_.size()) clocks_.resize(i + 1);
  // A fresh thread's own component starts at 1 so its epochs are never the
  // reserved kEpochNone.
  if (clocks_[i].get(tid) == 0) clocks_[i].tick(tid);
}

void RaceDetector::report(RaceRecord::Kind kind, sim::Addr word_addr,
                          const AccessRecord& prior,
                          const AccessRecord& current) {
  ++races_total_;
  racy_words_.insert(word_addr);
  // One retained record per (word, kind): repeats just inflate the total,
  // but a load-then-store racer (Array::add) exposes both a write-read and
  // a write-write on the same word and both kinds are worth a record.
  // word_addr's low two bits are clear, so they can carry the kind tag.
  const sim::Addr key = word_addr | static_cast<sim::Addr>(kind);
  if (!reported_.insert(key).second) return;
  if (races_.size() < max_records_) {
    races_.push_back(RaceRecord{kind, word_addr, prior, current});
  }
}

void RaceDetector::note_line(int tid, sim::Addr addr, bool is_store) {
  const sim::Addr line = addr >> kLineShift;
  const sim::Addr word = addr >> 2;
  LineTouch& lt = lines_[line];
  if (lt.tid >= 0 && lt.tid != tid && lt.word != word &&
      (is_store || lt.store)) {
    ++line_conflicts_;
    if (!lt.counted) {
      lt.counted = true;
      ++conflicted_lines_;
    }
  }
  lt.tid = tid;
  lt.word = word;
  lt.store = is_store;
}

void RaceDetector::on_access(int tid, sim::Addr addr, bool is_store,
                             AccessRecord rec) {
  ensure_thread(tid);
  rec.tid = tid;
  note_line(tid, addr, is_store);

  const sim::Addr word = addr >> 2;
  const sim::Addr word_addr = word << 2;
  const VectorClock& ct = clocks_[static_cast<std::size_t>(tid)];
  const Epoch here = ct.epoch_of(tid);
  VarState& v = words_[word];

  if (is_store) {
    if (v.w == here) return;  // same-epoch repeat write
    // Writes must be ordered after every prior read and write.
    if (v.shared) {
      if (!v.rvc.leq(ct)) {
        // Find a reader the writer is not ordered after, for the report.
        const AccessRecord* prior = &v.last_read;
        for (const AccessRecord& r : v.shared_reads) {
          if (r.tid >= 0 && v.rvc.get(r.tid) > ct.get(r.tid)) {
            prior = &r;
            break;
          }
        }
        report(RaceRecord::Kind::kReadWrite, word_addr, *prior, rec);
      }
    } else if (v.r != kEpochNone && !ct.covers(v.r)) {
      report(RaceRecord::Kind::kReadWrite, word_addr, v.last_read, rec);
    }
    if (v.w != kEpochNone && !ct.covers(v.w)) {
      report(RaceRecord::Kind::kWriteWrite, word_addr, v.last_write, rec);
    }
    // The write adopts the word: reads collapse back to the epoch regime.
    v.w = here;
    v.r = kEpochNone;
    v.shared = false;
    v.rvc.clear();
    v.shared_reads.clear();
    v.last_write = rec;
    return;
  }

  // Read.
  if (!v.shared && v.r == here) return;  // same-epoch repeat read
  if (v.shared && v.rvc.get(tid) == ct.get(tid)) return;
  if (v.w != kEpochNone && !ct.covers(v.w)) {
    report(RaceRecord::Kind::kWriteRead, word_addr, v.last_write, rec);
  }
  if (v.shared) {
    v.rvc.set(tid, ct.get(tid));
    const auto i = static_cast<std::size_t>(tid);
    if (i >= v.shared_reads.size()) v.shared_reads.resize(i + 1);
    v.shared_reads[i] = rec;
  } else if (v.r == kEpochNone || ct.covers(v.r)) {
    v.r = here;  // reads stay totally ordered: keep the cheap epoch
    v.last_read = rec;
  } else {
    // Two concurrent readers: promote to a read vector clock (FastTrack's
    // read-share transition).
    v.shared = true;
    v.rvc.set(epoch_tid(v.r), epoch_clock(v.r));
    v.rvc.set(tid, ct.get(tid));
    const auto prev = static_cast<std::size_t>(epoch_tid(v.r));
    const auto cur = static_cast<std::size_t>(tid);
    v.shared_reads.resize(std::max(prev, cur) + 1);
    v.shared_reads[prev] = v.last_read;
    v.shared_reads[cur] = rec;
    v.r = kEpochNone;
  }
}

void RaceDetector::on_acquire(int tid, sim::Addr lock) {
  ensure_thread(tid);
  const auto it = lock_clocks_.find(lock);
  if (it != lock_clocks_.end()) {
    clocks_[static_cast<std::size_t>(tid)].join(it->second);
  }
}

void RaceDetector::on_release(int tid, sim::Addr lock) {
  ensure_thread(tid);
  VectorClock& ct = clocks_[static_cast<std::size_t>(tid)];
  lock_clocks_[lock] = ct;
  // The releaser moves to a fresh epoch so its post-release accesses are not
  // mistaken for lock-protected ones.
  ct.tick(tid);
}

void RaceDetector::on_barrier(const int* tids, std::size_t count) {
  VectorClock all;
  for (std::size_t i = 0; i < count; ++i) {
    ensure_thread(tids[i]);
    all.join(clocks_[static_cast<std::size_t>(tids[i])]);
  }
  for (std::size_t i = 0; i < count; ++i) {
    VectorClock& ct = clocks_[static_cast<std::size_t>(tids[i])];
    ct = all;
    ct.tick(tids[i]);
  }
}

void RaceDetector::on_thread_moved(int /*tid*/) {}

}  // namespace paxsim::check
