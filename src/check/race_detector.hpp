// paxsim/check/race_detector.hpp
//
// FastTrack-style happens-before data-race detector over simulated memory.
//
// Granularity: the shadow state is per 4-byte word (addr >> 2), which keeps
// adjacent array elements written by different threads from reporting as
// races; same-line/different-word interleavings are tracked separately as
// false-sharing statistics (they are a performance event, not a bug).
//
// The detector is deliberately independent of the Checker so the state
// machine is unit-testable on a bare event sequence: callers feed dense
// thread ids plus the synchronization vocabulary (acquire/release on a lock
// address, all-to-all barriers) and read back capped, deduplicated race
// records.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "check/vector_clock.hpp"
#include "sim/types.hpp"

namespace paxsim::check {

/// What the detector remembers about one access, for reporting.
struct AccessRecord {
  int tid = -1;               ///< dense thread id
  sim::LogicalCpu cpu{};      ///< hardware context that executed it
  sim::BlockId block = 0;     ///< code block fetched last (the "racy PC")
  double vtime = 0;           ///< virtual time of the access
};

/// One reported race: two accesses to the same word, at least one a store,
/// unordered by happens-before.
struct RaceRecord {
  enum class Kind : std::uint8_t { kWriteWrite, kReadWrite, kWriteRead };
  Kind kind = Kind::kWriteWrite;
  sim::Addr addr = 0;         ///< word-aligned byte address
  AccessRecord prior;         ///< the older of the two conflicting accesses
  AccessRecord current;       ///< the access that exposed the race
};

[[nodiscard]] const char* race_kind_name(RaceRecord::Kind k) noexcept;

/// The detector.  All addresses are byte addresses; words are addr >> 2.
class RaceDetector {
 public:
  /// @param max_records  cap on retained RaceRecords (total counts keep
  ///        accumulating past it).
  explicit RaceDetector(std::size_t max_records = 32)
      : max_records_(max_records) {}

  /// Declares [base, base+bytes) exempt from race checking (runtime-internal
  /// synchronization storage modelling atomic hardware operations).
  void add_exempt_range(sim::Addr base, std::size_t bytes);

  /// True if @p addr falls in an exempt range.
  [[nodiscard]] bool exempt(sim::Addr addr) const noexcept;

  /// One data access by thread @p tid.  @p rec carries reporting metadata;
  /// rec.tid is overwritten with @p tid.
  void on_access(int tid, sim::Addr addr, bool is_store, AccessRecord rec);

  /// Lock-ordering edges: acquire joins the lock's clock into the thread's;
  /// release publishes the thread's clock into the lock's and advances the
  /// releaser (FastTrack's rel/acq rule).
  void on_acquire(int tid, sim::Addr lock);
  void on_release(int tid, sim::Addr lock);

  /// All-to-all join across @p tids (fork / barrier / join all synchronise
  /// every member clock), then each member advances its own component.
  void on_barrier(const int* tids, std::size_t count);

  /// The logical thread @p tid keeps its clock; nothing to do beyond what
  /// the Checker's context remapping already did.  Present for symmetry.
  void on_thread_moved(int tid);

  /// Ensures @p tid has a clock (threads appear lazily).
  void ensure_thread(int tid);

  // ---- results -------------------------------------------------------------
  [[nodiscard]] const std::vector<RaceRecord>& races() const noexcept {
    return races_;
  }
  /// Every race observation, including ones past the record cap and repeat
  /// races on an already-reported word.
  [[nodiscard]] std::uint64_t races_total() const noexcept {
    return races_total_;
  }
  /// Distinct words with at least one race.
  [[nodiscard]] std::uint64_t racy_words() const noexcept {
    return racy_words_.size();
  }
  /// Same-line/different-word accesses from different threads with a store
  /// involved — false-sharing (line ping-pong) candidates, not races.
  [[nodiscard]] std::uint64_t line_conflicts() const noexcept {
    return line_conflicts_;
  }
  /// Distinct lines with at least one such conflict.
  [[nodiscard]] std::uint64_t conflicted_lines() const noexcept {
    return conflicted_lines_;
  }

  /// Direct clock access for the unit tests.
  [[nodiscard]] const VectorClock& clock_of(int tid) const noexcept {
    return clocks_[static_cast<std::size_t>(tid)];
  }

 private:
  /// Per-word FastTrack shadow state.
  struct VarState {
    Epoch w = kEpochNone;  ///< last write epoch
    Epoch r = kEpochNone;  ///< last read epoch (unused once shared)
    bool shared = false;   ///< reads promoted to a full vector clock
    VectorClock rvc;       ///< read clock when shared
    AccessRecord last_write;
    AccessRecord last_read;                ///< exclusive-read metadata
    std::vector<AccessRecord> shared_reads;  ///< per-tid metadata when shared
  };

  /// Last-toucher state of one cache line, for false-sharing accounting.
  struct LineTouch {
    int tid = -1;
    sim::Addr word = 0;
    bool store = false;
    bool counted = false;  ///< line already in conflicted_lines_
  };

  void report(RaceRecord::Kind kind, sim::Addr word_addr,
              const AccessRecord& prior, const AccessRecord& current);
  void note_line(int tid, sim::Addr addr, bool is_store);

  std::size_t max_records_;
  std::vector<VectorClock> clocks_;
  std::unordered_map<sim::Addr, VectorClock> lock_clocks_;
  std::unordered_map<sim::Addr, VarState> words_;
  std::unordered_map<sim::Addr, LineTouch> lines_;
  std::vector<std::pair<sim::Addr, sim::Addr>> exempt_;  // [base, end)

  std::vector<RaceRecord> races_;
  std::unordered_set<sim::Addr> racy_words_;
  std::unordered_set<sim::Addr> reported_;  // word_addr | kind dedup keys
  std::uint64_t races_total_ = 0;
  std::uint64_t line_conflicts_ = 0;
  std::uint64_t conflicted_lines_ = 0;
};

}  // namespace paxsim::check
