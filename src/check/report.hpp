// paxsim/check/report.hpp
//
// The structured result of a checked run: event stream totals, the race
// detector's findings and the invariant auditor's findings.  Rendering
// (text and JSON) lives in the harness report layer with the other
// artifact emitters (harness/report.hpp).
#pragma once

#include <cstdint>
#include <vector>

#include "check/invariants.hpp"
#include "check/race_detector.hpp"
#include "sim/params.hpp"

namespace paxsim::check {

/// Everything a checked run learned.  Default-constructed == "not checked"
/// (mode kOff, zeros everywhere, trivially clean).
struct CheckReport {
  sim::CheckMode mode = sim::CheckMode::kOff;

  // ---- event stream totals -------------------------------------------------
  std::uint64_t accesses = 0;     ///< data loads + stores observed
  std::uint64_t fetches = 0;      ///< code-block fetches observed
  std::uint64_t syncs = 0;        ///< acquire/release/combine events
  std::uint64_t team_events = 0;  ///< create/fork/barrier/join events
  std::uint64_t audits = 0;       ///< invariant audits executed

  // ---- race detector -------------------------------------------------------
  std::uint64_t races_total = 0;  ///< every race observation
  std::uint64_t racy_words = 0;   ///< distinct words with >= 1 race
  std::vector<RaceRecord> races;  ///< capped, one per racy word

  /// False-sharing statistics (line-granularity conflicts; not races).
  std::uint64_t line_conflicts = 0;
  std::uint64_t conflicted_lines = 0;

  // ---- invariant auditor ---------------------------------------------------
  std::uint64_t violations_total = 0;
  std::vector<Violation> violations;  ///< capped

  /// True when the run raised no race and no invariant violation.
  [[nodiscard]] bool clean() const noexcept {
    return races_total == 0 && violations_total == 0;
  }
};

}  // namespace paxsim::check
