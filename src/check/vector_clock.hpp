// paxsim/check/vector_clock.hpp
//
// Vector-clock algebra for the happens-before race detector: plain vector
// clocks plus FastTrack's packed epochs (one thread's scalar clock tagged
// with its thread id), which let the common same-thread / ordered cases be
// decided with one u64 compare instead of a full vector join.
//
// Thread ids are small dense integers assigned by the Checker (at most the
// machine's context count, 8 on the modelled SMP); clocks start at 1 so the
// packed value 0 is free to mean "no access yet" (kEpochNone).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace paxsim::check {

/// Packed epoch: thread id in the top 8 bits, that thread's scalar clock in
/// the low 56.  Value 0 is reserved for "never accessed".
using Epoch = std::uint64_t;

inline constexpr Epoch kEpochNone = 0;
inline constexpr unsigned kEpochTidShift = 56;

[[nodiscard]] constexpr Epoch make_epoch(int tid, std::uint64_t clock) noexcept {
  return (static_cast<Epoch>(tid) << kEpochTidShift) | clock;
}
[[nodiscard]] constexpr int epoch_tid(Epoch e) noexcept {
  return static_cast<int>(e >> kEpochTidShift);
}
[[nodiscard]] constexpr std::uint64_t epoch_clock(Epoch e) noexcept {
  return e & ((Epoch{1} << kEpochTidShift) - 1);
}

/// A vector clock over dense thread ids.  Missing entries read as 0, so
/// clocks grow lazily as threads appear.
class VectorClock {
 public:
  VectorClock() = default;

  [[nodiscard]] std::uint64_t get(int tid) const noexcept {
    const auto i = static_cast<std::size_t>(tid);
    return i < c_.size() ? c_[i] : 0;
  }

  void set(int tid, std::uint64_t v) {
    const auto i = static_cast<std::size_t>(tid);
    if (i >= c_.size()) c_.resize(i + 1, 0);
    c_[i] = v;
  }

  /// Advances this thread's own component.
  void tick(int tid) { set(tid, get(tid) + 1); }

  /// Pointwise maximum: this := this join other.
  void join(const VectorClock& other) {
    if (other.c_.size() > c_.size()) c_.resize(other.c_.size(), 0);
    for (std::size_t i = 0; i < other.c_.size(); ++i) {
      if (other.c_[i] > c_[i]) c_[i] = other.c_[i];
    }
  }

  /// True if every component of this clock is <= the corresponding
  /// component of @p other (this happened-before-or-equals other).
  [[nodiscard]] bool leq(const VectorClock& other) const noexcept {
    for (std::size_t i = 0; i < c_.size(); ++i) {
      if (c_[i] > other.get(static_cast<int>(i))) return false;
    }
    return true;
  }

  /// The epoch of thread @p tid under this clock.
  [[nodiscard]] Epoch epoch_of(int tid) const noexcept {
    return make_epoch(tid, get(tid));
  }

  /// True if the access stamped @p e happened-before this clock's view:
  /// the accessing thread's component has reached e's scalar clock.
  [[nodiscard]] bool covers(Epoch e) const noexcept {
    return epoch_clock(e) <= get(epoch_tid(e));
  }

  void clear() noexcept { c_.clear(); }
  [[nodiscard]] std::size_t size() const noexcept { return c_.size(); }

 private:
  std::vector<std::uint64_t> c_;
};

}  // namespace paxsim::check
