#include "cli/cli.hpp"

#include <cstdlib>
#include <fstream>
#include <memory>
#include <ostream>
#include <sstream>

#include "cli/flags.hpp"
#include "paxsim.hpp"
#include "sim/topology.hpp"

namespace paxsim::cli {
namespace {

bool parse_bench_list(const std::string& s, std::vector<npb::Benchmark>& out) {
  out.clear();
  std::stringstream ss(s);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    npb::Benchmark b;
    if (!npb::parse_benchmark(tok, b)) return false;
    out.push_back(b);
  }
  return !out.empty();
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string tok;
  while (std::getline(ss, tok, ',')) out.push_back(tok);
  return out;
}

/// Registers every `paxsim` flag onto @p cmd.  One table serves all
/// subcommands (as the hand-rolled parser did) and usage() renders its help
/// from the same rows.
FlagSet make_flag_table(Command* cmd) {
  FlagSet fs;
  register_run_flags(fs, &cmd->options, &cmd->machine);
  register_engine_flags(fs, &cmd->jobs, &cmd->store_dir);
  {
    FlagSpec s;
    s.name = "bench";
    s.value_hint = "A[,B...]";
    s.help = "benchmark (run/predict/trace), pair (pair/sched) or list (tune)";
    Command* c = cmd;
    s.apply = [c](const std::string& v) -> std::string {
      if (!parse_bench_list(v, c->benches)) return "bad --bench '" + v + "'";
      return {};
    };
    fs.add(std::move(s));
  }
  fs.add_string("config", &cmd->config_name, "NAME",
                "Table-1 configuration (see `paxsim list`)");
  fs.add_string("policy", &cmd->policy, "NAME",
                "sched: pinned-spread, naive-pack, random-migrating, "
                "ht-aware or symbiotic");
  fs.add_flag("csv", &cmd->csv, "machine-readable output (CSV or JSON)");
  fs.add_flag("baseline", &cmd->baseline,
              "run: also run and report the serial baseline");
  fs.add_flag("compare", &cmd->compare,
              "predict: also simulate the cell and print relative errors");
  {
    FlagSpec s;
    s.name = "profile";
    s.value_hint = "on|off";
    s.def = "off";
    s.help = "run (Serial config): collect + print the paxmodel profile";
    s.bare_ok = true;
    Command* c = cmd;
    s.apply = [c](const std::string& v) -> std::string {
      if (v.empty() || v == "on") {
        c->profile = true;
      } else if (v == "off") {
        c->profile = false;
      } else {
        return "bad --profile '" + v + "' (use on or off)";
      }
      return {};
    };
    fs.add(std::move(s));
  }
  fs.add_string("trace-out", &cmd->trace_out, "FILE",
                "trace: write a Chrome-tracing/Perfetto JSON timeline");
  fs.add_flag("regions", &cmd->regions, "trace: print the per-region table");
  fs.add_flag("stacks", &cmd->stacks, "trace: print the per-context table");
  fs.add_string("jobs-file", &cmd->jobs_file, "FILE",
                "serve: the job file to expand");
  fs.add_int("procs", &cmd->procs, 1, "N", "serve: worker processes");
  {
    FlagSpec s;
    s.name = "max-cells";
    s.value_hint = "N";
    s.help = "serve: stop after computing N cells";
    Command* c = cmd;
    s.apply = [c](const std::string& v) -> std::string {
      char* end = nullptr;
      const unsigned long long x = std::strtoull(v.c_str(), &end, 10);
      if (v.empty() || end == nullptr || *end != '\0' || x == 0) {
        return "bad --max-cells (need an integer >= 1)";
      }
      c->max_cells = x;
      return {};
    };
    fs.add(std::move(s));
  }
  fs.add_flag("quiet", &cmd->quiet, "serve: suppress per-cell progress lines");
  {
    FlagSpec s;
    s.name = "strategy";
    s.value_hint = "grid|greedy|anneal";
    s.def = "greedy";
    s.help = "tune: search strategy over the configuration space";
    Command* c = cmd;
    s.apply = [c](const std::string& v) -> std::string {
      if (v != "grid" && v != "greedy" && v != "anneal") {
        return "bad --strategy '" + v + "' (use grid, greedy or anneal)";
      }
      c->strategy = v;
      return {};
    };
    fs.add(std::move(s));
  }
  fs.add_int("top-k", &cmd->top_k, 1, "N",
             "tune: simulator validations per kernel (grid validates all)");
  fs.add_int("budget", &cmd->anneal_budget, 1, "N",
             "tune: proposal steps for --strategy=anneal");
  {
    FlagSpec s;
    s.name = "schedules";
    s.value_hint = "K1,K2,...";
    s.help = "tune: schedule-override axis (default, static, dynamic, guided)";
    Command* c = cmd;
    s.apply = [c](const std::string& v) -> std::string {
      std::vector<int> kinds;
      for (const std::string& tok : split_csv(v)) {
        int k = -1;
        if (!parse_sched_name(tok, &k)) {
          return "bad --schedules '" + v +
                 "' (use default, static, dynamic or guided)";
        }
        kinds.push_back(k);
      }
      if (kinds.empty()) return "bad --schedules (need at least one kind)";
      c->sched_kinds = std::move(kinds);
      return {};
    };
    fs.add(std::move(s));
  }
  {
    FlagSpec s;
    s.name = "chunks";
    s.value_hint = "N1,N2,...";
    s.help = "tune: chunk axis for overridden schedules (0 = default)";
    Command* c = cmd;
    s.apply = [c](const std::string& v) -> std::string {
      std::vector<std::size_t> xs;
      for (const std::string& tok : split_csv(v)) {
        char* end = nullptr;
        const unsigned long long x = std::strtoull(tok.c_str(), &end, 10);
        if (tok.empty() || end == nullptr || *end != '\0') {
          return "bad --chunks '" + v + "' (need comma-separated integers)";
        }
        xs.push_back(static_cast<std::size_t>(x));
      }
      if (xs.empty()) return "bad --chunks (need at least one value)";
      c->chunks = std::move(xs);
      return {};
    };
    fs.add(std::move(s));
  }
  {
    FlagSpec s;
    s.name = "grains";
    s.value_hint = "N1,N2,...";
    s.help = "tune: iteration-grain axis";
    Command* c = cmd;
    s.apply = [c](const std::string& v) -> std::string {
      std::vector<std::size_t> xs;
      for (const std::string& tok : split_csv(v)) {
        char* end = nullptr;
        const unsigned long long x = std::strtoull(tok.c_str(), &end, 10);
        if (tok.empty() || end == nullptr || *end != '\0' || x < 1) {
          return "bad --grains '" + v +
                 "' (need comma-separated integers >= 1)";
        }
        xs.push_back(static_cast<std::size_t>(x));
      }
      if (xs.empty()) return "bad --grains (need at least one value)";
      c->grains = std::move(xs);
      return {};
    };
    fs.add(std::move(s));
  }
  {
    FlagSpec s;
    s.name = "scales";
    s.value_hint = "F1,F2,...";
    s.help = "tune: machine capacity-scale axis";
    Command* c = cmd;
    s.apply = [c](const std::string& v) -> std::string {
      std::vector<double> xs;
      for (const std::string& tok : split_csv(v)) {
        char* end = nullptr;
        const double x = std::strtod(tok.c_str(), &end);
        if (tok.empty() || end == nullptr || *end != '\0' || x < 1.0) {
          return "bad --scales '" + v + "' (need comma-separated numbers >= 1)";
        }
        xs.push_back(x);
      }
      if (xs.empty()) return "bad --scales (need at least one value)";
      c->scales = std::move(xs);
      return {};
    };
    fs.add(std::move(s));
  }
  fs.add_string("out", &cmd->tune_out, "FILE",
                "tune: also write the tuning_report JSON document to FILE");
  {
    FlagSpec s;
    s.name = "mode";
    s.value_hint = "single|pair|predict";
    s.def = "single";
    s.help = "store get: which cell kind the axis flags name";
    Command* c = cmd;
    s.apply = [c](const std::string& v) -> std::string {
      if (v != "single" && v != "pair" && v != "predict") {
        return "bad --mode '" + v + "' (use single, pair or predict)";
      }
      c->get_mode = v;
      return {};
    };
    fs.add(std::move(s));
  }
  return fs;
}

/// The configuration table for the command's machine: the Table-1 list for
/// the default, the topology's analogue ladder otherwise.
std::vector<harness::StudyConfig> configs_for_command(const Command& cmd) {
  if (cmd.options.topology != nullptr) {
    return harness::configs_for(*cmd.options.topology);
  }
  return harness::all_configs();
}

std::unique_ptr<sched::Scheduler> make_policy(const std::string& name,
                                              std::uint64_t seed) {
  if (name == "pinned-spread") return sched::make_pinned_spread();
  if (name == "naive-pack") return sched::make_naive_pack();
  if (name == "random-migrating") return sched::make_random_migrating(0.5, seed);
  if (name == "ht-aware") return sched::make_ht_aware();
  if (name == "symbiotic") return sched::make_symbiotic();
  return nullptr;
}

/// The one CellSpec every cell-shaped subcommand resolves through: the
/// parsed Command projected onto the fluent builder, so the CLI constructs
/// cells exactly the way serve's job expansion and the tuner do.
harness::CellSpec spec_for(const Command& cmd, npb::Benchmark bench) {
  harness::CellSpec s = harness::CellSpec::bench(bench);
  s.machine(cmd.options.topology)
      .config(cmd.config_name)
      .problem_class(cmd.options.cls)
      .scale(cmd.options.machine_scale)
      .grain(cmd.options.grain)
      .schedule(cmd.options.sched_kind, cmd.options.sched_chunk)
      .trials(cmd.options.trials)
      .seed(cmd.options.base_seed)
      .verify(cmd.options.verify)
      .check(cmd.options.check_mode)
      .trace(cmd.options.trace_mode)
      .par(cmd.options.par, cmd.options.par_window);
  return s;
}

void print_result(std::ostream& out, const std::string& label,
                  const harness::RunResult& r, bool csv) {
  if (csv) {
    out << label << ",wall_cycles," << r.wall_cycles << '\n';
    for (int m = 0; m < perf::kMetricCount; ++m) {
      out << label << ',' << perf::metric_name(m) << ','
          << perf::metric_value(r.metrics, m) << '\n';
    }
    return;
  }
  out << label << ": " << static_cast<std::uint64_t>(r.wall_cycles)
      << " cycles, verified=" << (r.verified ? "yes" : "no") << '\n';
  out << "  cpi=" << r.metrics.cpi
      << " stalled=" << r.metrics.stalled_fraction
      << " l1_miss=" << r.metrics.l1d_miss_rate
      << " l2_miss=" << r.metrics.l2_miss_rate
      << " bp_rate=" << r.metrics.branch_prediction_rate
      << " prefetch_share=" << r.metrics.prefetch_bus_fraction << '\n';
}

int do_list(const Command& cmd, std::ostream& out) {
  out << "benchmarks:";
  for (const npb::Benchmark b : npb::kAllBenchmarks) {
    out << ' ' << npb::benchmark_name(b);
  }
  out << "\nclasses: S W A B\nconfigurations";
  if (cmd.options.topology != nullptr) {
    out << " (machine " << cmd.options.topology->name << ")";
  }
  out << ":\n";
  for (const auto& c : configs_for_command(cmd)) {
    out << "  \"" << c.name << "\"  (" << harness::architecture_name(c.arch)
        << ", " << c.threads << " thread" << (c.threads > 1 ? "s" : "")
        << ", " << c.chips << " chip" << (c.chips > 1 ? "s" : "") << ")\n";
  }
  out << "machine presets:";
  for (const std::string& p : sim::Topology::preset_names()) out << ' ' << p;
  out << " (or --machine=<file.json>)\n";
  out << "scheduler policies: pinned-spread naive-pack random-migrating "
         "ht-aware symbiotic\n";
  out << "tune strategies: grid greedy anneal\n";
  return 0;
}

/// Attaches the --store directory (when given) to a freshly built engine.
/// Detached (the default / --store=off), the engine is bit-identical to
/// the storeless path.
void attach_store(harness::ExperimentEngine& engine, const Command& cmd) {
  if (!cmd.store_dir.empty()) {
    engine.set_store(std::make_shared<serve::ResultStore>(cmd.store_dir));
  }
}

/// `paxsim store get`: print the stored entry for a digest, or for the cell
/// the axis flags describe (resolved through CellSpec, the same naming path
/// the engine writes through).
int do_store_get(const Command& cmd, std::ostream& out, std::ostream& err) {
  serve::ResultStore store(cmd.store_dir);
  std::string digest = cmd.store_digest;
  if (digest.empty()) {
    harness::CellSpec spec = spec_for(cmd, cmd.benches[0]);
    if (cmd.get_mode == "pair") {
      if (cmd.benches.size() != 2) {
        err << "error: store get --mode=pair needs --bench=<A,B>\n";
        return 1;
      }
      spec.pair_with(cmd.benches[1]).mode(harness::CellSpec::Mode::kPair);
    } else if (cmd.get_mode == "predict") {
      spec.mode(harness::CellSpec::Mode::kPredict);
    }
    harness::CellSpec::Resolved r;
    std::string why;
    if (!spec.resolve(&r, &why)) {
      err << "error: " << why << '\n';
      return 1;
    }
    digest = r.digest(0);
  }
  std::string payload;
  if (!store.read_object(digest, &payload)) {
    err << "error: no stored object " << digest << " in '" << cmd.store_dir
        << "'\n";
    return 1;
  }
  out << payload;
  if (payload.empty() || payload.back() != '\n') out << '\n';
  return 0;
}

/// The `paxsim store <stat|ls|gc|verify>` maintenance actions.  Output is
/// NDJSON (one schema_version'd document per line), feeding the same
/// tooling as the serve progress stream.
int do_store(const Command& cmd, std::ostream& out, std::ostream& err) {
  if (cmd.store_action == "get") return do_store_get(cmd, out, err);
  serve::ResultStore store(cmd.store_dir);
  if (cmd.store_action == "stat") {
    const serve::StoreScan s = store.scan();
    report::Json j(out);
    j.begin_document("store_stat")
        .field("dir", store.dir())
        .field("entries", s.entries)
        .field("bytes", s.bytes)
        .field("quarantined", s.quarantined)
        .field("tmp_files", s.tmp_files);
    j.finish();
  } else if (cmd.store_action == "ls") {
    for (const serve::StoreEntry& e : store.list()) {
      report::Json j(out);
      j.begin_document("store_entry")
          .field("digest", e.digest)
          .field("payload", e.payload)
          .field("bytes", e.bytes)
          .field("fingerprint", e.fingerprint);
      j.finish();
    }
  } else if (cmd.store_action == "gc") {
    const serve::GcResult r = store.gc();
    report::Json j(out);
    j.begin_document("store_gc")
        .field("removed_tmp", r.removed_tmp)
        .field("removed_quarantined", r.removed_quarantined);
    j.finish();
  } else {  // verify
    const serve::VerifyResult r = store.verify();
    report::Json j(out);
    j.begin_document("store_verify")
        .field("checked", r.checked)
        .field("ok", r.ok)
        .field("version_mismatch", r.version_mismatch)
        .field("corrupt", r.corrupt);
    j.finish();
    return r.checked == r.ok ? 0 : 1;
  }
  return 0;
}

int do_tune(const Command& cmd, std::ostream& out, std::ostream& err) {
  harness::ExperimentEngine engine(cmd.jobs);
  attach_store(engine, cmd);
  std::vector<npb::Benchmark> benches = cmd.benches;
  if (benches.empty()) {
    benches.assign(std::begin(npb::kAllBenchmarks),
                   std::end(npb::kAllBenchmarks));
  }
  tune::TuneOptions topt;
  topt.strategy = cmd.strategy;
  topt.top_k = cmd.top_k;
  topt.anneal_budget = cmd.anneal_budget;
  if (!cmd.sched_kinds.empty()) topt.sched_kinds = cmd.sched_kinds;
  topt.chunks = cmd.chunks.empty() ? std::vector<std::size_t>{0} : cmd.chunks;
  topt.grains = cmd.grains.empty()
                    ? std::vector<std::size_t>{cmd.options.grain}
                    : cmd.grains;
  topt.scales = cmd.scales.empty()
                    ? std::vector<double>{cmd.options.machine_scale}
                    : cmd.scales;
  const tune::TuneReport rep =
      tune::tune(engine, benches, cmd.options, cmd.machine, topt);
  if (cmd.csv) {
    tune::write_tuning_report(out, rep);
  } else {
    out << "tuned " << rep.kernels.size() << " kernel"
        << (rep.kernels.size() == 1 ? "" : "s") << " on machine "
        << (rep.machine.empty() ? "default" : rep.machine) << " (class "
        << rep.problem_class << ", strategy " << rep.strategy << ", "
        << (rep.strategy == "grid" ? std::string("exhaustive validation")
                                   : "top-" + std::to_string(rep.top_k) +
                                         " validation")
        << ", seed " << rep.seed << ")\n";
    for (const tune::KernelResult& kr : rep.kernels) {
      out << "  " << npb::benchmark_name(kr.bench) << ": best "
          << kr.best.label << "\n    sim "
          << static_cast<std::uint64_t>(kr.best.sim_wall)
          << " cycles, speedup " << kr.best.sim_speedup << " ("
          << (kr.model_agrees ? "model agreed" : "model disagreed") << "; "
          << kr.model_cells << " model cells, " << kr.sim_cells
          << " simulated, space " << kr.space_cells << ")\n";
    }
    const auto& st = rep.stats;
    out << "engine: " << st.cache_misses << " cells simulated, "
        << st.cache_hits << " cache hits, " << st.store_hits
        << " store hits, " << st.store_writes << " store writes\n";
  }
  if (!cmd.tune_out.empty()) {
    std::ofstream f(cmd.tune_out);
    if (!f) {
      err << "error: cannot open '" << cmd.tune_out << "' for writing\n";
      return 1;
    }
    tune::write_tuning_report(f, rep);
    if (!cmd.csv) out << "wrote " << cmd.tune_out << '\n';
  }
  return 0;
}

int do_lmbench(std::ostream& out) {
  const sim::MachineParams full{};
  out << "working-set ladder (ns/load):\n";
  for (const auto& pt : lmb::latency_ladder(
           full, lmb::default_ladder_sizes(4096, 64 << 20), 6000)) {
    out << "  " << pt.working_set_bytes / 1024 << " KB: " << pt.ns_per_load
        << '\n';
  }
  const auto one = lmb::stream_bandwidth(full, false);
  const auto two = lmb::stream_bandwidth(full, true);
  out << "bandwidth GB/s: one-chip read " << one.read_gbps << " write "
      << one.write_gbps << "; two-chip read " << two.read_gbps << " write "
      << two.write_gbps << '\n';
  return 0;
}

}  // namespace

std::string usage() {
  Command dummy;
  const FlagSet fs = make_flag_table(&dummy);
  return
      "usage: paxsim <subcommand> [flags]\n"
      "  list                                      enumerate benchmarks/configs\n"
      "  run   --bench=CG --config=\"HT on -4-1\"    single-program run\n"
      "  pair  --bench=CG,FT --config=\"HT off -4-2\" co-scheduled pair\n"
      "  sched --bench=CG,FT --config=\"HT on -8-2\" --policy=symbiotic\n"
      "  timeline --bench=CG --config=\"HT on -8-2\"  per-step metric deltas\n"
      "  predict --bench=CG --config=\"HT on -8-2\"   analytical prediction from\n"
      "                                            one profiled serial run\n"
      "  trace --bench=CG --config=\"HT on -8-2\"     traced run: per-context and\n"
      "                                            per-region CPI stall stacks\n"
      "  tune  [--bench=CG,...] [--strategy=greedy] model-driven autotuning:\n"
      "        [--machine=...] [--top-k=N] [--out=F] search the configuration\n"
      "                                            space on the model, validate\n"
      "                                            the frontier on the simulator\n"
      "  serve --jobs-file=plan.json [--store=DIR]  batch sweep service: expand\n"
      "        [--procs=N] [--max-cells=N] [--quiet] the job file, answer stored\n"
      "                                            cells from the store, compute\n"
      "                                            + persist the rest (NDJSON)\n"
      "  store <stat|ls|gc|verify> --store=DIR     result-store maintenance\n"
      "  store get [<digest>] --store=DIR          print one stored entry, by\n"
      "                                            digest or by the cell axes\n"
      "                                            (--bench/--config/--mode...)\n"
      "  lmbench                                   section-3 characterisation\n"
      "flags (every subcommand accepts the full table):\n" +
      fs.help_text(2);
}

ParseResult parse(const std::vector<std::string>& args) {
  ParseResult res;
  if (args.empty()) {
    res.error = "missing subcommand";
    return res;
  }
  Command cmd;
  const std::string& sub = args[0];
  if (sub == "list") {
    cmd.kind = Command::Kind::kList;
  } else if (sub == "run") {
    cmd.kind = Command::Kind::kRun;
  } else if (sub == "pair") {
    cmd.kind = Command::Kind::kPair;
  } else if (sub == "sched") {
    cmd.kind = Command::Kind::kSched;
  } else if (sub == "timeline") {
    cmd.kind = Command::Kind::kTimeline;
  } else if (sub == "predict") {
    cmd.kind = Command::Kind::kPredict;
  } else if (sub == "trace") {
    cmd.kind = Command::Kind::kTrace;
  } else if (sub == "tune") {
    cmd.kind = Command::Kind::kTune;
  } else if (sub == "serve") {
    cmd.kind = Command::Kind::kServe;
  } else if (sub == "store") {
    cmd.kind = Command::Kind::kStore;
  } else if (sub == "lmbench") {
    cmd.kind = Command::Kind::kLmbench;
  } else if (sub == "help" || sub == "--help" || sub == "-h") {
    cmd.kind = Command::Kind::kHelp;
  } else {
    res.error = "unknown subcommand '" + sub + "'";
    return res;
  }

  const FlagSet fs = make_flag_table(&cmd);
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i].rfind("--", 0) != 0) {
      // `paxsim store` takes its action — and, for `get`, the digest — as
      // positional arguments.
      if (cmd.kind == Command::Kind::kStore && cmd.store_action.empty()) {
        cmd.store_action = args[i];
        continue;
      }
      if (cmd.kind == Command::Kind::kStore && cmd.store_action == "get" &&
          cmd.store_digest.empty()) {
        cmd.store_digest = args[i];
        continue;
      }
      res.error = "unexpected argument '" + args[i] + "'";
      return res;
    }
    if (fs.parse_flag(args[i], &res.error) != FlagSet::Outcome::kOk) {
      return res;
    }
  }

  // Per-subcommand requirements.
  const auto need = [&](bool cond, const char* msg) {
    if (!cond && res.error.empty()) res.error = msg;
  };
  switch (cmd.kind) {
    case Command::Kind::kRun:
    case Command::Kind::kTimeline:
      need(cmd.benches.size() == 1,
           "run/timeline need --bench=<one benchmark>");
      need(!cmd.config_name.empty(), "run/timeline need --config=<name>");
      break;
    case Command::Kind::kPredict:
      need(cmd.benches.size() == 1, "predict needs --bench=<one benchmark>");
      need(!cmd.config_name.empty(), "predict needs --config=<name>");
      break;
    case Command::Kind::kTrace:
      need(cmd.benches.size() == 1, "trace needs --bench=<one benchmark>");
      need(!cmd.config_name.empty(), "trace needs --config=<name>");
      need(cmd.options.check_mode == sim::CheckMode::kOff,
           "trace and --check are mutually exclusive (one sink per machine)");
      break;
    case Command::Kind::kPair:
    case Command::Kind::kSched:
      need(cmd.benches.size() == 2, "pair/sched need --bench=<A,B>");
      need(!cmd.config_name.empty(), "pair/sched need --config=<name>");
      if (cmd.kind == Command::Kind::kSched &&
          make_policy(cmd.policy, 0) == nullptr) {
        res.error = "unknown --policy '" + cmd.policy + "'";
      }
      break;
    case Command::Kind::kServe:
      need(!cmd.jobs_file.empty(), "serve needs --jobs-file=<plan.json>");
      break;
    case Command::Kind::kStore:
      need(cmd.store_action == "stat" || cmd.store_action == "ls" ||
               cmd.store_action == "gc" || cmd.store_action == "verify" ||
               cmd.store_action == "get",
           "store needs an action: stat, ls, gc, verify or get");
      need(!cmd.store_dir.empty(), "store needs --store=<dir>");
      if (cmd.store_action == "get" && cmd.store_digest.empty()) {
        need(!cmd.benches.empty() && !cmd.config_name.empty(),
             "store get needs a <digest>, or --bench + --config naming the "
             "cell");
      }
      break;
    default:
      break;
  }
  if (!res.error.empty()) return res;
  if (!cmd.config_name.empty() &&
      harness::find_config_index(configs_for_command(cmd), cmd.config_name) <
          0) {
    res.error = "unknown configuration '" + cmd.config_name +
                "' (see `paxsim list" +
                (cmd.machine.empty() ? "" : " --machine=" + cmd.machine) +
                "`)";
    return res;
  }
  res.command = std::move(cmd);
  return res;
}

int execute(const Command& cmd, std::ostream& out, std::ostream& err) {
  try {
    switch (cmd.kind) {
      case Command::Kind::kHelp:
        out << usage();
        return 0;
      case Command::Kind::kList:
        return do_list(cmd, out);
      case Command::Kind::kLmbench:
        return do_lmbench(out);
      case Command::Kind::kTune:
        return do_tune(cmd, out, err);
      case Command::Kind::kServe: {
        serve::ServeOptions so;
        so.jobs_file = cmd.jobs_file;
        so.store_dir = cmd.store_dir;
        so.jobs = cmd.jobs;
        so.procs = cmd.procs;
        so.max_cells = cmd.max_cells;
        so.progress = !cmd.quiet;
        return serve::run_serve(so, out, err);
      }
      case Command::Kind::kStore:
        return do_store(cmd, out, err);
      case Command::Kind::kPredict: {
        const auto cell = spec_for(cmd, cmd.benches[0])
                              .mode(harness::CellSpec::Mode::kPredict)
                              .resolve();
        harness::ExperimentEngine engine(cmd.jobs);
        attach_store(engine, cmd);
        const auto seed = cell.opt.trial_seed(0);
        const auto pr = engine.predict(cell.a, cell.cfg, cell.opt, seed);
        const std::string label =
            std::string(npb::benchmark_name(cell.a)) + "@" + cmd.config_name;
        if (cmd.csv) {
          harness::print_prediction_json(
              out, std::string(npb::benchmark_name(cell.a)), cmd.config_name,
              pr.prediction);
        } else {
          harness::print_prediction(out, label, pr.prediction, false);
          out << "  profile: "
              << (pr.profile_reused ? "reused" : "collected") << " ("
              << pr.profile_host_sec << "s), model evaluation "
              << pr.predict_host_sec << "s\n";
        }
        if (cmd.compare) {
          const auto sim = engine.single(cell.a, cell.cfg, cell.opt, seed);
          const auto serial = engine.serial(cell.a, cell.opt, seed);
          const double sim_speedup = serial.wall_cycles / sim.wall_cycles;
          const auto table = harness::prediction_error_table(
              pr.prediction, sim, sim_speedup);
          if (cmd.csv) {
            table.print_csv(out);
          } else {
            table.print(out, 4);
            out << "simulation host time: " << sim.host_sim_sec
                << "s; prediction is "
                << (pr.predict_host_sec > 0
                        ? sim.host_sim_sec / pr.predict_host_sec
                        : 0.0)
                << "x faster (model evaluation only)\n";
          }
        }
        return 0;
      }
      case Command::Kind::kRun: {
        const auto cell = spec_for(cmd, cmd.benches[0]).resolve();
        if (cmd.profile) {
          if (!cell.cfg.is_serial()) {
            err << "error: --profile=on requires --config=\"Serial\" (the "
                   "profile is collected from a serial run)\n";
            return 1;
          }
          const auto seed = cell.opt.trial_seed(0);
          const auto prof =
              harness::run_profiled_serial(cell.a, cell.opt, seed);
          print_result(out,
                       std::string(npb::benchmark_name(cell.a)) + "@Serial",
                       prof.result, cmd.csv);
          const auto& p = prof.profile;
          const double acc = static_cast<double>(p.loads + p.stores);
          out << "profile: " << p.loads << " loads, " << p.stores
              << " stores, " << p.uops << " uops, " << p.loops << " loops, "
              << p.iterations << " iterations, " << p.barriers
              << " barriers\n";
          out << "  distinct: " << p.distinct_lines << " lines, "
              << p.distinct_pages << " pages, " << p.distinct_blocks
              << " blocks\n";
          out << "  serial_uop_fraction=" << p.serial_uop_fraction()
              << " chained_load_fraction="
              << (p.loads > 0 ? static_cast<double>(p.chained_loads) /
                                    static_cast<double>(p.loads)
                              : 0.0)
              << " stream_fraction="
              << (p.stream_candidates > 0
                      ? static_cast<double>(p.streamed) /
                            static_cast<double>(p.stream_candidates)
                      : 0.0)
              << " runtime_access_share="
              << (acc > 0 ? static_cast<double>(p.runtime_accesses) / acc
                          : 0.0)
              << '\n';
          return 0;
        }
        harness::ExperimentEngine engine(cmd.jobs);
        attach_store(engine, cmd);
        auto plan = harness::ExperimentPlan(cell.opt, {cell.cfg})
                        .add_benchmark(cell.a)
                        .with_serial_baselines(cmd.baseline)
                        .trials(1);
        const auto study = engine.run(plan);
        const auto& r = study.single(cell.a, 0);
        print_result(out,
                     std::string(npb::benchmark_name(cell.a)) + "@" +
                         cmd.config_name,
                     r, cmd.csv);
        if (cmd.baseline) {
          const auto& s = study.serial(cell.a);
          print_result(out,
                       std::string(npb::benchmark_name(cell.a)) + "@Serial",
                       s, cmd.csv);
          out << "speedup," << study.speedup(cell.a, 0) << '\n';
        }
        if (cell.opt.check_mode != sim::CheckMode::kOff) {
          if (cmd.csv) {
            harness::print_check_report_json(out, r.check);
          } else {
            harness::print_check_report(out, r.check);
          }
        }
        return 0;
      }
      case Command::Kind::kPair: {
        const auto cell = spec_for(cmd, cmd.benches[0])
                              .pair_with(cmd.benches[1])
                              .mode(harness::CellSpec::Mode::kPair)
                              .resolve();
        const auto seed = cell.opt.trial_seed(0);
        harness::ExperimentEngine engine(cmd.jobs);
        attach_store(engine, cmd);
        const auto r = engine.pair(cell.a, cell.b, cell.cfg, cell.opt, seed);
        for (int p = 0; p < 2; ++p) {
          print_result(out,
                       std::string(npb::benchmark_name(cmd.benches[p])) +
                           "[" + std::to_string(p) + "]@" + cmd.config_name,
                       r.program[p], cmd.csv);
        }
        if (cell.opt.check_mode != sim::CheckMode::kOff) {
          // One machine-wide checker covers both programs; the report is
          // shared, so print it once.
          if (cmd.csv) {
            harness::print_check_report_json(out, r.program[0].check);
          } else {
            harness::print_check_report(out, r.program[0].check);
          }
        }
        return 0;
      }
      case Command::Kind::kTimeline: {
        const auto cell = spec_for(cmd, cmd.benches[0]).resolve();
        const auto seed = cell.opt.trial_seed(0);
        harness::ExperimentEngine engine(cmd.jobs);
        const auto tl = engine.timeline(cell.a, cell.cfg, cell.opt, seed);
        if (cell.opt.verify && !tl.run.verified) {
          err << "error: verification failed\n";
          return 1;
        }
        if (cmd.csv) {
          tl.timeline.print_csv(out);
        } else {
          for (std::size_t i = 0; i < tl.timeline.intervals(); ++i) {
            const perf::Metrics m = tl.timeline.metrics(i);
            out << "step " << i << ": cpi=" << m.cpi
                << " stalled=" << m.stalled_fraction
                << " l2_miss=" << m.l2_miss_rate
                << " prefetch_share=" << m.prefetch_bus_fraction << '\n';
          }
        }
        return 0;
      }
      case Command::Kind::kTrace: {
        auto spec = spec_for(cmd, cmd.benches[0]);
        // The Chrome export needs the event stream; the stack tables need
        // only the accountant.  engine.trace() substitutes kStacks for kOff.
        if (!cmd.trace_out.empty() &&
            cmd.options.trace_mode != sim::TraceMode::kEvents &&
            cmd.options.trace_mode != sim::TraceMode::kFull) {
          spec.trace(sim::TraceMode::kFull);
        }
        const auto cell = spec.resolve();
        const auto seed = cell.opt.trial_seed(0);
        harness::ExperimentEngine engine(cmd.jobs);
        const auto tr = engine.trace(cell.a, cell.cfg, cell.opt, seed);
        const std::string bench_name(npb::benchmark_name(cell.a));
        if (cmd.csv) {
          harness::print_trace_report_json(out, bench_name, cmd.config_name,
                                           tr.trace);
        } else {
          print_result(out, bench_name + "@" + cmd.config_name, tr.run,
                       false);
          // --stacks / --regions narrow the output; default prints both.
          const bool want_stacks = cmd.stacks || !cmd.regions;
          const bool want_regions = cmd.regions || !cmd.stacks;
          out << "trace: mode=" << sim::trace_mode_name(tr.trace.mode)
              << ", " << tr.trace.team_forks << " forks, "
              << tr.trace.loop_dispatches << " loop dispatches, "
              << tr.trace.barriers << " barriers, " << tr.trace.criticals
              << " critical sections, " << tr.trace.events_recorded
              << " events (" << tr.trace.events_dropped << " dropped)\n";
          if (want_stacks) harness::trace_context_table(tr.trace).print(out, 0);
          if (want_regions) harness::trace_region_table(tr.trace).print(out, 0);
        }
        if (!cmd.trace_out.empty()) {
          std::ofstream f(cmd.trace_out);
          if (!f) {
            err << "error: cannot open '" << cmd.trace_out
                << "' for writing\n";
            return 1;
          }
          trace::write_chrome_trace(f, tr.trace);
          if (!cmd.csv) {
            out << "wrote " << cmd.trace_out
                << " (chrome://tracing / Perfetto)\n";
          }
        }
        return 0;
      }
      case Command::Kind::kSched: {
        const auto cell = spec_for(cmd, cmd.benches[0]).resolve();
        const auto seed = cell.opt.trial_seed(0);
        harness::ExperimentEngine engine(cmd.jobs);
        auto policy = make_policy(cmd.policy, seed);
        const auto r =
            engine.scheduled(cmd.benches, cell.cfg, *policy, cell.opt, seed);
        for (std::size_t p = 0; p < r.program.size(); ++p) {
          print_result(out,
                       std::string(npb::benchmark_name(cmd.benches[p])) +
                           "[" + std::to_string(p) + "]@" + cmd.config_name +
                           "/" + r.scheduler,
                       r.program[p], cmd.csv);
        }
        out << "migrations," << r.migrations << '\n';
        return 0;
      }
    }
  } catch (const std::exception& e) {
    err << "error: " << e.what() << '\n';
    return 1;
  }
  return 1;
}

}  // namespace paxsim::cli
