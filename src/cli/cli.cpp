#include "cli/cli.hpp"

#include <cstdlib>
#include <fstream>
#include <memory>
#include <ostream>
#include <sstream>

#include "paxsim.hpp"
#include "sim/topology.hpp"

namespace paxsim::cli {
namespace {

bool parse_class(const std::string& s, npb::ProblemClass& out) {
  if (s.size() != 1) return false;
  switch (s[0]) {
    case 'S': out = npb::ProblemClass::kClassS; return true;
    case 'W': out = npb::ProblemClass::kClassW; return true;
    case 'A': out = npb::ProblemClass::kClassA; return true;
    case 'B': out = npb::ProblemClass::kClassB; return true;
    default: return false;
  }
}

bool parse_bench_list(const std::string& s, std::vector<npb::Benchmark>& out) {
  out.clear();
  std::stringstream ss(s);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    npb::Benchmark b;
    if (!npb::parse_benchmark(tok, b)) return false;
    out.push_back(b);
  }
  return !out.empty();
}

/// Splits "--key=value" into (key, value); bare flags get empty value.
bool split_flag(const std::string& a, std::string& key, std::string& value) {
  if (a.rfind("--", 0) != 0) return false;
  const std::size_t eq = a.find('=');
  if (eq == std::string::npos) {
    key = a.substr(2);
    value.clear();
  } else {
    key = a.substr(2, eq - 2);
    value = a.substr(eq + 1);
  }
  return true;
}

/// Resolves a --machine spec — a preset name, else a path to a
/// schema_version'd topology JSON file — into a validated topology.
/// Returns an empty string on success, the user-facing error otherwise.
std::string resolve_machine(const std::string& spec,
                            std::shared_ptr<const sim::Topology>& out) {
  sim::Topology topo;
  std::string why;
  if (!sim::Topology::resolve(spec, &topo, &why)) {
    return "bad --machine: " + why;
  }
  out = std::make_shared<const sim::Topology>(std::move(topo));
  return {};
}

/// The configuration table for the command's machine: the Table-1 list for
/// the default, the topology's analogue ladder otherwise.
std::vector<harness::StudyConfig> configs_for_command(const Command& cmd) {
  if (cmd.options.topology != nullptr) {
    return harness::configs_for(*cmd.options.topology);
  }
  return harness::all_configs();
}

std::unique_ptr<sched::Scheduler> make_policy(const std::string& name,
                                              std::uint64_t seed) {
  if (name == "pinned-spread") return sched::make_pinned_spread();
  if (name == "naive-pack") return sched::make_naive_pack();
  if (name == "random-migrating") return sched::make_random_migrating(0.5, seed);
  if (name == "ht-aware") return sched::make_ht_aware();
  if (name == "symbiotic") return sched::make_symbiotic();
  return nullptr;
}

void print_result(std::ostream& out, const std::string& label,
                  const harness::RunResult& r, bool csv) {
  if (csv) {
    out << label << ",wall_cycles," << r.wall_cycles << '\n';
    for (int m = 0; m < perf::kMetricCount; ++m) {
      out << label << ',' << perf::metric_name(m) << ','
          << perf::metric_value(r.metrics, m) << '\n';
    }
    return;
  }
  out << label << ": " << static_cast<std::uint64_t>(r.wall_cycles)
      << " cycles, verified=" << (r.verified ? "yes" : "no") << '\n';
  out << "  cpi=" << r.metrics.cpi
      << " stalled=" << r.metrics.stalled_fraction
      << " l1_miss=" << r.metrics.l1d_miss_rate
      << " l2_miss=" << r.metrics.l2_miss_rate
      << " bp_rate=" << r.metrics.branch_prediction_rate
      << " prefetch_share=" << r.metrics.prefetch_bus_fraction << '\n';
}

int do_list(const Command& cmd, std::ostream& out) {
  out << "benchmarks:";
  for (const npb::Benchmark b : npb::kAllBenchmarks) {
    out << ' ' << npb::benchmark_name(b);
  }
  out << "\nclasses: S W A B\nconfigurations";
  if (cmd.options.topology != nullptr) {
    out << " (machine " << cmd.options.topology->name << ")";
  }
  out << ":\n";
  for (const auto& c : configs_for_command(cmd)) {
    out << "  \"" << c.name << "\"  (" << harness::architecture_name(c.arch)
        << ", " << c.threads << " thread" << (c.threads > 1 ? "s" : "")
        << ", " << c.chips << " chip" << (c.chips > 1 ? "s" : "") << ")\n";
  }
  out << "machine presets:";
  for (const std::string& p : sim::Topology::preset_names()) out << ' ' << p;
  out << " (or --machine=<file.json>)\n";
  out << "scheduler policies: pinned-spread naive-pack random-migrating "
         "ht-aware symbiotic\n";
  return 0;
}

/// Attaches the --store directory (when given) to a freshly built engine.
/// Detached (the default / --store=off), the engine is bit-identical to
/// the storeless path.
void attach_store(harness::ExperimentEngine& engine, const Command& cmd) {
  if (!cmd.store_dir.empty()) {
    engine.set_store(std::make_shared<serve::ResultStore>(cmd.store_dir));
  }
}

/// The `paxsim store <stat|ls|gc|verify>` maintenance actions.  Output is
/// NDJSON (one schema_version'd document per line), feeding the same
/// tooling as the serve progress stream.
int do_store(const Command& cmd, std::ostream& out) {
  serve::ResultStore store(cmd.store_dir);
  if (cmd.store_action == "stat") {
    const serve::StoreScan s = store.scan();
    report::Json j(out);
    j.begin_document("store_stat")
        .field("dir", store.dir())
        .field("entries", s.entries)
        .field("bytes", s.bytes)
        .field("quarantined", s.quarantined)
        .field("tmp_files", s.tmp_files);
    j.finish();
  } else if (cmd.store_action == "ls") {
    for (const serve::StoreEntry& e : store.list()) {
      report::Json j(out);
      j.begin_document("store_entry")
          .field("digest", e.digest)
          .field("payload", e.payload)
          .field("bytes", e.bytes)
          .field("fingerprint", e.fingerprint);
      j.finish();
    }
  } else if (cmd.store_action == "gc") {
    const serve::GcResult r = store.gc();
    report::Json j(out);
    j.begin_document("store_gc")
        .field("removed_tmp", r.removed_tmp)
        .field("removed_quarantined", r.removed_quarantined);
    j.finish();
  } else {  // verify
    const serve::VerifyResult r = store.verify();
    report::Json j(out);
    j.begin_document("store_verify")
        .field("checked", r.checked)
        .field("ok", r.ok)
        .field("version_mismatch", r.version_mismatch)
        .field("corrupt", r.corrupt);
    j.finish();
    return r.checked == r.ok ? 0 : 1;
  }
  return 0;
}

int do_lmbench(std::ostream& out) {
  const sim::MachineParams full{};
  out << "working-set ladder (ns/load):\n";
  for (const auto& pt : lmb::latency_ladder(
           full, lmb::default_ladder_sizes(4096, 64 << 20), 6000)) {
    out << "  " << pt.working_set_bytes / 1024 << " KB: " << pt.ns_per_load
        << '\n';
  }
  const auto one = lmb::stream_bandwidth(full, false);
  const auto two = lmb::stream_bandwidth(full, true);
  out << "bandwidth GB/s: one-chip read " << one.read_gbps << " write "
      << one.write_gbps << "; two-chip read " << two.read_gbps << " write "
      << two.write_gbps << '\n';
  return 0;
}

}  // namespace

std::string usage() {
  return
      "usage: paxsim <subcommand> [flags]\n"
      "  list                                      enumerate benchmarks/configs\n"
      "  run   --bench=CG --config=\"HT on -4-1\"    single-program run\n"
      "  pair  --bench=CG,FT --config=\"HT off -4-2\" co-scheduled pair\n"
      "  sched --bench=CG,FT --config=\"HT on -8-2\" --policy=symbiotic\n"
      "  timeline --bench=CG --config=\"HT on -8-2\"  per-step metric deltas\n"
      "  predict --bench=CG --config=\"HT on -8-2\"   analytical prediction from\n"
      "                                            one profiled serial run\n"
      "  trace --bench=CG --config=\"HT on -8-2\"     traced run: per-context and\n"
      "                                            per-region CPI stall stacks\n"
      "  serve --jobs-file=plan.json [--store=DIR]  batch sweep service: expand\n"
      "        [--procs=N] [--max-cells=N] [--quiet] the job file, answer stored\n"
      "                                            cells from the store, compute\n"
      "                                            + persist the rest (NDJSON)\n"
      "  store <stat|ls|gc|verify> --store=DIR     result-store maintenance\n"
      "  lmbench                                   section-3 characterisation\n"
      "common flags: --class=S|W|A|B  --trials=N  --seed=N  --csv\n"
      "              --machine=<preset|file.json> (simulate a different\n"
      "                         machine: paxville, paxville-noht, woodcrest,\n"
      "                         numa16, or a topology JSON description;\n"
      "                         configurations are the machine's analogue of\n"
      "                         Table 1 — see `paxsim list --machine=...`)\n"
      "              --check=off|race|invariants|full (run/pair: attach the\n"
      "                         src/check analysis sink; prints a check report)\n"
      "              --baseline (also run and report the serial baseline)\n"
      "              --compare (predict: also simulate the same cell and print\n"
      "                         a per-metric relative-error table)\n"
      "              --profile=on|off (run, Serial config only: collect the\n"
      "                         paxmodel reuse profile and print its summary)\n"
      "              --trace=off|stacks|events|full (trace: recording depth;\n"
      "                         default stacks; events/full feed --trace-out)\n"
      "              --trace-out=FILE (trace: write a Chrome-tracing /\n"
      "                         Perfetto JSON timeline; implies --trace=full)\n"
      "              --regions / --stacks (trace: print only the per-region /\n"
      "                         per-context table; default prints both)\n"
      "              --store=DIR|off (run/pair/predict/serve: persistent\n"
      "                         content-addressed result store; previously\n"
      "                         answered cells skip simulation entirely;\n"
      "                         'off' — the default — is bit-identical to\n"
      "                         no store)\n"
      "              --jobs=N (host worker threads for independent trials)\n"
      "              --par=N (host threads per run: shard one simulated\n"
      "                         machine across N logical processes;\n"
      "                         bit-identical to --par=1, composes with\n"
      "                         --jobs by dividing the host)\n"
      "              --par-window=F (lookahead window factor, default 64;\n"
      "                         0 disables the speculation bound)\n"
      "              --grain=N (iterations per scheduling turn; default 1;\n"
      "                         N>1 is faster but changes the interleaving)\n"
      "              --no-verify\n";
}

ParseResult parse(const std::vector<std::string>& args) {
  ParseResult res;
  if (args.empty()) {
    res.error = "missing subcommand";
    return res;
  }
  Command cmd;
  const std::string& sub = args[0];
  if (sub == "list") {
    cmd.kind = Command::Kind::kList;
  } else if (sub == "run") {
    cmd.kind = Command::Kind::kRun;
  } else if (sub == "pair") {
    cmd.kind = Command::Kind::kPair;
  } else if (sub == "sched") {
    cmd.kind = Command::Kind::kSched;
  } else if (sub == "timeline") {
    cmd.kind = Command::Kind::kTimeline;
  } else if (sub == "predict") {
    cmd.kind = Command::Kind::kPredict;
  } else if (sub == "trace") {
    cmd.kind = Command::Kind::kTrace;
  } else if (sub == "serve") {
    cmd.kind = Command::Kind::kServe;
  } else if (sub == "store") {
    cmd.kind = Command::Kind::kStore;
  } else if (sub == "lmbench") {
    cmd.kind = Command::Kind::kLmbench;
  } else if (sub == "help" || sub == "--help" || sub == "-h") {
    cmd.kind = Command::Kind::kHelp;
  } else {
    res.error = "unknown subcommand '" + sub + "'";
    return res;
  }

  for (std::size_t i = 1; i < args.size(); ++i) {
    std::string key, value;
    if (!split_flag(args[i], key, value)) {
      // `paxsim store` takes its action as the one positional argument.
      if (cmd.kind == Command::Kind::kStore && cmd.store_action.empty()) {
        cmd.store_action = args[i];
        continue;
      }
      res.error = "unexpected argument '" + args[i] + "'";
      return res;
    }
    if (key == "bench") {
      if (!parse_bench_list(value, cmd.benches)) {
        res.error = "bad --bench '" + value + "'";
        return res;
      }
    } else if (key == "config") {
      cmd.config_name = value;
    } else if (key == "machine") {
      if (value.empty()) {
        res.error = "bad --machine (need a preset name or a JSON file)";
        return res;
      }
      cmd.machine = value;
    } else if (key == "class") {
      if (!parse_class(value, cmd.options.cls)) {
        res.error = "bad --class '" + value + "' (use S, W, A or B)";
        return res;
      }
    } else if (key == "trials") {
      cmd.options.trials = std::atoi(value.c_str());
      if (cmd.options.trials < 1) {
        res.error = "bad --trials";
        return res;
      }
    } else if (key == "seed") {
      cmd.options.base_seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "jobs") {
      cmd.jobs = std::atoi(value.c_str());
      if (cmd.jobs < 1) {
        res.error = "bad --jobs";
        return res;
      }
    } else if (key == "par") {
      cmd.options.par = std::atoi(value.c_str());
      if (cmd.options.par < 1) {
        res.error = "bad --par (need an integer >= 1)";
        return res;
      }
    } else if (key == "par-window") {
      cmd.options.par_window = std::atof(value.c_str());
    } else if (key == "grain") {
      const long g = std::atol(value.c_str());
      if (g < 1) {
        res.error = "bad --grain (need an integer >= 1)";
        return res;
      }
      cmd.options.grain = static_cast<std::size_t>(g);
    } else if (key == "check") {
      if (!sim::parse_check_mode(value.c_str(), cmd.options.check_mode)) {
        res.error = "bad --check '" + value +
                    "' (use off, race, invariants or full)";
        return res;
      }
    } else if (key == "trace") {
      if (!sim::parse_trace_mode(value.c_str(), cmd.options.trace_mode)) {
        res.error = "bad --trace '" + value +
                    "' (use off, stacks, events or full)";
        return res;
      }
    } else if (key == "trace-out") {
      if (value.empty()) {
        res.error = "bad --trace-out (need a file name)";
        return res;
      }
      cmd.trace_out = value;
    } else if (key == "regions") {
      cmd.regions = true;
    } else if (key == "stacks") {
      cmd.stacks = true;
    } else if (key == "policy") {
      cmd.policy = value;
    } else if (key == "csv") {
      cmd.csv = true;
    } else if (key == "baseline") {
      cmd.baseline = true;
    } else if (key == "compare") {
      cmd.compare = true;
    } else if (key == "profile") {
      if (value.empty() || value == "on") {
        cmd.profile = true;
      } else if (value == "off") {
        cmd.profile = false;
      } else {
        res.error = "bad --profile '" + value + "' (use on or off)";
        return res;
      }
    } else if (key == "no-verify") {
      cmd.options.verify = false;
    } else if (key == "store") {
      // "off" is the explicit spelling of the default (no store attached).
      cmd.store_dir = (value == "off") ? std::string() : value;
      if (value.empty()) {
        res.error = "bad --store (need a directory, or 'off')";
        return res;
      }
    } else if (key == "jobs-file") {
      if (value.empty()) {
        res.error = "bad --jobs-file (need a file name)";
        return res;
      }
      cmd.jobs_file = value;
    } else if (key == "procs") {
      cmd.procs = std::atoi(value.c_str());
      if (cmd.procs < 1) {
        res.error = "bad --procs (need an integer >= 1)";
        return res;
      }
    } else if (key == "max-cells") {
      cmd.max_cells = std::strtoull(value.c_str(), nullptr, 10);
      if (cmd.max_cells == 0) {
        res.error = "bad --max-cells (need an integer >= 1)";
        return res;
      }
    } else if (key == "quiet") {
      cmd.quiet = true;
    } else {
      res.error = "unknown flag '--" + key + "'";
      return res;
    }
  }

  // Per-subcommand requirements.
  const auto need = [&](bool cond, const char* msg) {
    if (!cond && res.error.empty()) res.error = msg;
  };
  switch (cmd.kind) {
    case Command::Kind::kRun:
    case Command::Kind::kTimeline:
      need(cmd.benches.size() == 1,
           "run/timeline need --bench=<one benchmark>");
      need(!cmd.config_name.empty(), "run/timeline need --config=<name>");
      break;
    case Command::Kind::kPredict:
      need(cmd.benches.size() == 1, "predict needs --bench=<one benchmark>");
      need(!cmd.config_name.empty(), "predict needs --config=<name>");
      break;
    case Command::Kind::kTrace:
      need(cmd.benches.size() == 1, "trace needs --bench=<one benchmark>");
      need(!cmd.config_name.empty(), "trace needs --config=<name>");
      need(cmd.options.check_mode == sim::CheckMode::kOff,
           "trace and --check are mutually exclusive (one sink per machine)");
      break;
    case Command::Kind::kPair:
    case Command::Kind::kSched:
      need(cmd.benches.size() == 2, "pair/sched need --bench=<A,B>");
      need(!cmd.config_name.empty(), "pair/sched need --config=<name>");
      if (cmd.kind == Command::Kind::kSched &&
          make_policy(cmd.policy, 0) == nullptr) {
        res.error = "unknown --policy '" + cmd.policy + "'";
      }
      break;
    case Command::Kind::kServe:
      need(!cmd.jobs_file.empty(), "serve needs --jobs-file=<plan.json>");
      break;
    case Command::Kind::kStore:
      need(cmd.store_action == "stat" || cmd.store_action == "ls" ||
               cmd.store_action == "gc" || cmd.store_action == "verify",
           "store needs an action: stat, ls, gc or verify");
      need(!cmd.store_dir.empty(), "store needs --store=<dir>");
      break;
    default:
      break;
  }
  if (!res.error.empty()) return res;
  if (!cmd.machine.empty()) {
    res.error = resolve_machine(cmd.machine, cmd.options.topology);
    if (!res.error.empty()) return res;
  }
  if (!cmd.config_name.empty() &&
      harness::find_config_index(configs_for_command(cmd), cmd.config_name) <
          0) {
    res.error = "unknown configuration '" + cmd.config_name +
                "' (see `paxsim list" +
                (cmd.machine.empty() ? "" : " --machine=" + cmd.machine) +
                "`)";
    return res;
  }
  res.command = std::move(cmd);
  return res;
}

int execute(const Command& cmd, std::ostream& out, std::ostream& err) {
  // The configuration table for this command's machine; the per-case
  // `cfg` pointers below point into this list.
  const std::vector<harness::StudyConfig> configs = configs_for_command(cmd);
  const auto find_cfg =
      [&configs](const std::string& name) -> const harness::StudyConfig* {
    const int i = harness::find_config_index(configs, name);
    return i < 0 ? nullptr : &configs[static_cast<std::size_t>(i)];
  };
  try {
    switch (cmd.kind) {
      case Command::Kind::kHelp:
        out << usage();
        return 0;
      case Command::Kind::kList:
        return do_list(cmd, out);
      case Command::Kind::kLmbench:
        return do_lmbench(out);
      case Command::Kind::kServe: {
        serve::ServeOptions so;
        so.jobs_file = cmd.jobs_file;
        so.store_dir = cmd.store_dir;
        so.jobs = cmd.jobs;
        so.procs = cmd.procs;
        so.max_cells = cmd.max_cells;
        so.progress = !cmd.quiet;
        return serve::run_serve(so, out, err);
      }
      case Command::Kind::kStore:
        return do_store(cmd, out);
      case Command::Kind::kPredict: {
        const auto* cfg = find_cfg(cmd.config_name);
        harness::ExperimentEngine engine(cmd.jobs);
        attach_store(engine, cmd);
        const auto seed = cmd.options.trial_seed(0);
        const auto pr =
            engine.predict(cmd.benches[0], *cfg, cmd.options, seed);
        const std::string label =
            std::string(npb::benchmark_name(cmd.benches[0])) + "@" +
            cmd.config_name;
        if (cmd.csv) {
          harness::print_prediction_json(
              out, std::string(npb::benchmark_name(cmd.benches[0])),
              cmd.config_name, pr.prediction);
        } else {
          harness::print_prediction(out, label, pr.prediction, false);
          out << "  profile: "
              << (pr.profile_reused ? "reused" : "collected") << " ("
              << pr.profile_host_sec << "s), model evaluation "
              << pr.predict_host_sec << "s\n";
        }
        if (cmd.compare) {
          const auto sim =
              engine.single(cmd.benches[0], *cfg, cmd.options, seed);
          const auto serial =
              engine.serial(cmd.benches[0], cmd.options, seed);
          const double sim_speedup = serial.wall_cycles / sim.wall_cycles;
          const auto table = harness::prediction_error_table(
              pr.prediction, sim, sim_speedup);
          if (cmd.csv) {
            table.print_csv(out);
          } else {
            table.print(out, 4);
            out << "simulation host time: " << sim.host_sim_sec
                << "s; prediction is "
                << (pr.predict_host_sec > 0
                        ? sim.host_sim_sec / pr.predict_host_sec
                        : 0.0)
                << "x faster (model evaluation only)\n";
          }
        }
        return 0;
      }
      case Command::Kind::kRun: {
        const auto* cfg = find_cfg(cmd.config_name);
        if (cmd.profile) {
          if (!cfg->is_serial()) {
            err << "error: --profile=on requires --config=\"Serial\" (the "
                   "profile is collected from a serial run)\n";
            return 1;
          }
          const auto seed = cmd.options.trial_seed(0);
          const auto prof =
              harness::run_profiled_serial(cmd.benches[0], cmd.options, seed);
          print_result(out,
                       std::string(npb::benchmark_name(cmd.benches[0])) +
                           "@Serial",
                       prof.result, cmd.csv);
          const auto& p = prof.profile;
          const double acc = static_cast<double>(p.loads + p.stores);
          out << "profile: " << p.loads << " loads, " << p.stores
              << " stores, " << p.uops << " uops, " << p.loops << " loops, "
              << p.iterations << " iterations, " << p.barriers
              << " barriers\n";
          out << "  distinct: " << p.distinct_lines << " lines, "
              << p.distinct_pages << " pages, " << p.distinct_blocks
              << " blocks\n";
          out << "  serial_uop_fraction=" << p.serial_uop_fraction()
              << " chained_load_fraction="
              << (p.loads > 0 ? static_cast<double>(p.chained_loads) /
                                    static_cast<double>(p.loads)
                              : 0.0)
              << " stream_fraction="
              << (p.stream_candidates > 0
                      ? static_cast<double>(p.streamed) /
                            static_cast<double>(p.stream_candidates)
                      : 0.0)
              << " runtime_access_share="
              << (acc > 0 ? static_cast<double>(p.runtime_accesses) / acc
                          : 0.0)
              << '\n';
          return 0;
        }
        harness::ExperimentEngine engine(cmd.jobs);
        attach_store(engine, cmd);
        auto plan = harness::ExperimentPlan(cmd.options, {*cfg})
                        .add_benchmark(cmd.benches[0])
                        .with_serial_baselines(cmd.baseline)
                        .trials(1);
        const auto study = engine.run(plan);
        const auto& r = study.single(cmd.benches[0], 0);
        print_result(out,
                     std::string(npb::benchmark_name(cmd.benches[0])) + "@" +
                         cmd.config_name,
                     r, cmd.csv);
        if (cmd.baseline) {
          const auto& s = study.serial(cmd.benches[0]);
          print_result(out,
                       std::string(npb::benchmark_name(cmd.benches[0])) +
                           "@Serial",
                       s, cmd.csv);
          out << "speedup," << study.speedup(cmd.benches[0], 0) << '\n';
        }
        if (cmd.options.check_mode != sim::CheckMode::kOff) {
          if (cmd.csv) {
            harness::print_check_report_json(out, r.check);
          } else {
            harness::print_check_report(out, r.check);
          }
        }
        return 0;
      }
      case Command::Kind::kPair: {
        const auto* cfg = find_cfg(cmd.config_name);
        const auto seed = cmd.options.trial_seed(0);
        harness::ExperimentEngine engine(cmd.jobs);
        attach_store(engine, cmd);
        const auto r = engine.pair(cmd.benches[0], cmd.benches[1], *cfg,
                                   cmd.options, seed);
        for (int p = 0; p < 2; ++p) {
          print_result(out,
                       std::string(npb::benchmark_name(cmd.benches[p])) +
                           "[" + std::to_string(p) + "]@" + cmd.config_name,
                       r.program[p], cmd.csv);
        }
        if (cmd.options.check_mode != sim::CheckMode::kOff) {
          // One machine-wide checker covers both programs; the report is
          // shared, so print it once.
          if (cmd.csv) {
            harness::print_check_report_json(out, r.program[0].check);
          } else {
            harness::print_check_report(out, r.program[0].check);
          }
        }
        return 0;
      }
      case Command::Kind::kTimeline: {
        const auto* cfg = find_cfg(cmd.config_name);
        const auto seed = cmd.options.trial_seed(0);
        harness::ExperimentEngine engine(cmd.jobs);
        const auto tl = engine.timeline(cmd.benches[0], *cfg, cmd.options,
                                        seed);
        if (cmd.options.verify && !tl.run.verified) {
          err << "error: verification failed\n";
          return 1;
        }
        if (cmd.csv) {
          tl.timeline.print_csv(out);
        } else {
          for (std::size_t i = 0; i < tl.timeline.intervals(); ++i) {
            const perf::Metrics m = tl.timeline.metrics(i);
            out << "step " << i << ": cpi=" << m.cpi
                << " stalled=" << m.stalled_fraction
                << " l2_miss=" << m.l2_miss_rate
                << " prefetch_share=" << m.prefetch_bus_fraction << '\n';
          }
        }
        return 0;
      }
      case Command::Kind::kTrace: {
        const auto* cfg = find_cfg(cmd.config_name);
        harness::RunOptions opt = cmd.options;
        // The Chrome export needs the event stream; the stack tables need
        // only the accountant.  engine.trace() substitutes kStacks for kOff.
        if (!cmd.trace_out.empty() &&
            opt.trace_mode != sim::TraceMode::kEvents &&
            opt.trace_mode != sim::TraceMode::kFull) {
          opt.trace_mode = sim::TraceMode::kFull;
        }
        const auto seed = opt.trial_seed(0);
        harness::ExperimentEngine engine(cmd.jobs);
        const auto tr = engine.trace(cmd.benches[0], *cfg, opt, seed);
        const std::string bench_name(npb::benchmark_name(cmd.benches[0]));
        if (cmd.csv) {
          harness::print_trace_report_json(out, bench_name, cmd.config_name,
                                           tr.trace);
        } else {
          print_result(out, bench_name + "@" + cmd.config_name, tr.run,
                       false);
          // --stacks / --regions narrow the output; default prints both.
          const bool want_stacks = cmd.stacks || !cmd.regions;
          const bool want_regions = cmd.regions || !cmd.stacks;
          out << "trace: mode=" << sim::trace_mode_name(tr.trace.mode)
              << ", " << tr.trace.team_forks << " forks, "
              << tr.trace.loop_dispatches << " loop dispatches, "
              << tr.trace.barriers << " barriers, " << tr.trace.criticals
              << " critical sections, " << tr.trace.events_recorded
              << " events (" << tr.trace.events_dropped << " dropped)\n";
          if (want_stacks) harness::trace_context_table(tr.trace).print(out, 0);
          if (want_regions) harness::trace_region_table(tr.trace).print(out, 0);
        }
        if (!cmd.trace_out.empty()) {
          std::ofstream f(cmd.trace_out);
          if (!f) {
            err << "error: cannot open '" << cmd.trace_out
                << "' for writing\n";
            return 1;
          }
          trace::write_chrome_trace(f, tr.trace);
          if (!cmd.csv) {
            out << "wrote " << cmd.trace_out
                << " (chrome://tracing / Perfetto)\n";
          }
        }
        return 0;
      }
      case Command::Kind::kSched: {
        const auto* cfg = find_cfg(cmd.config_name);
        const auto seed = cmd.options.trial_seed(0);
        harness::ExperimentEngine engine(cmd.jobs);
        auto policy = make_policy(cmd.policy, seed);
        const auto r =
            engine.scheduled(cmd.benches, *cfg, *policy, cmd.options, seed);
        for (std::size_t p = 0; p < r.program.size(); ++p) {
          print_result(out,
                       std::string(npb::benchmark_name(cmd.benches[p])) +
                           "[" + std::to_string(p) + "]@" + cmd.config_name +
                           "/" + r.scheduler,
                       r.program[p], cmd.csv);
        }
        out << "migrations," << r.migrations << '\n';
        return 0;
      }
    }
  } catch (const std::exception& e) {
    err << "error: " << e.what() << '\n';
    return 1;
  }
  return 1;
}

}  // namespace paxsim::cli
