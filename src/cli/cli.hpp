// paxsim/cli/cli.hpp
//
// The `paxsim` command-line driver, split into a testable library (command
// parsing + execution against an abstract output stream) and a thin main.
//
// Subcommands:
//   paxsim list                        — benchmarks, classes, configurations
//   paxsim run   --bench=CG --config="HT on -4-1" [--class=B] [--trials=N]
//                [--seed=N] [--csv] [--baseline] [--check=mode]
//   paxsim pair  --bench=CG,FT --config="HT off -4-2" [...]
//   paxsim sched --bench=CG,FT --config="HT on -8-2" --policy=symbiotic
//   paxsim timeline --bench=CG --config="HT on -8-2"
//   paxsim predict --bench=CG --config="HT on -8-2" [--compare]
//   paxsim trace --bench=CG --config="HT on -8-2" [--trace=stacks|events|full]
//                [--trace-out=FILE] [--regions] [--stacks]
//   paxsim serve --jobs-file=plan.json [--store=DIR] [--jobs=N] [--procs=N]
//                [--max-cells=N] [--quiet]
//   paxsim store <stat|ls|gc|verify> --store=DIR
//   paxsim lmbench
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "paxsim.hpp"

namespace paxsim::cli {

/// Parsed command line.
struct Command {
  enum class Kind {
    kList, kRun, kPair, kSched, kTimeline, kPredict, kTrace, kServe, kStore,
    kLmbench, kHelp
  };

  Kind kind = Kind::kHelp;
  std::vector<npb::Benchmark> benches;  ///< 1 for run/predict, 2 for pair/sched
  std::string config_name;              ///< Table-1 configuration
  /// --machine spec: a topology preset name ("paxville", "woodcrest", ...)
  /// or a path to a schema_version'd topology JSON file.  Empty runs the
  /// default machine; parse() resolves it into options.topology.
  std::string machine;
  std::string policy = "pinned-spread"; ///< sched subcommand policy
  harness::RunOptions options;
  int jobs = 1;                         ///< host worker threads (--jobs=N)
  bool csv = false;
  bool baseline = false;                ///< also run + report serial
  bool compare = false;                 ///< predict: also simulate + errors
  bool profile = false;                 ///< run: profiled serial + summary
  std::string trace_out;                ///< trace: Chrome-tracing JSON file
  bool regions = false;                 ///< trace: print the region table
  bool stacks = false;                  ///< trace: print the context stacks
  /// --store=DIR|off: persistent result store for run/pair/predict/serve
  /// ("off" and empty both mean detached — bit-identical to the storeless
  /// engine).  serve may instead take the directory from the job file.
  std::string store_dir;
  std::string jobs_file;                ///< serve: the job-file path
  std::string store_action;             ///< store: stat | ls | gc | verify
  int procs = 1;                        ///< serve: worker processes
  std::uint64_t max_cells = 0;          ///< serve: compute bound (0 = all)
  bool quiet = false;                   ///< serve: suppress per-cell lines
};

/// Parse result: a command, or an error message for the user.
struct ParseResult {
  std::optional<Command> command;
  std::string error;  ///< non-empty iff command is empty

  [[nodiscard]] bool ok() const noexcept { return command.has_value(); }
};

/// Parses argv (excluding argv[0]).  Pure; no I/O.
[[nodiscard]] ParseResult parse(const std::vector<std::string>& args);

/// Executes @p cmd, writing human-readable (or CSV) output to @p out and
/// diagnostics to @p err.  Returns a process exit code.
int execute(const Command& cmd, std::ostream& out, std::ostream& err);

/// Usage text.
[[nodiscard]] std::string usage();

}  // namespace paxsim::cli
