// paxsim/cli/cli.hpp
//
// The `paxsim` command-line driver, split into a testable library (command
// parsing + execution against an abstract output stream) and a thin main.
//
// Flags are declarative: one cli::FlagSet table (src/cli/flags.hpp) defines
// every flag's name, hint, default, help line and validation, and the same
// table both parses argv and renders the flag section of usage() — the help
// can never drift from what the parser accepts.  The bench drivers consume
// the same register_run_flags/register_engine_flags tables, so `paxsim` and
// bench/ agree on spellings and validation by construction.
//
// Subcommands:
//   paxsim list                        — benchmarks, classes, configurations
//   paxsim run   --bench=CG --config="HT on -4-1" [--class=B] [--trials=N]
//                [--seed=N] [--csv] [--baseline] [--check=mode]
//   paxsim pair  --bench=CG,FT --config="HT off -4-2" [...]
//   paxsim sched --bench=CG,FT --config="HT on -8-2" --policy=symbiotic
//   paxsim timeline --bench=CG --config="HT on -8-2"
//   paxsim predict --bench=CG --config="HT on -8-2" [--compare]
//   paxsim trace --bench=CG --config="HT on -8-2" [--trace=stacks|events|full]
//                [--trace-out=FILE] [--regions] [--stacks]
//   paxsim tune  [--bench=CG,...] [--strategy=grid|greedy|anneal] [--top-k=N]
//                [--schedules=...] [--chunks=...] [--grains=...]
//                [--scales=...] [--out=FILE] — model-driven autotuning
//   paxsim serve --jobs-file=plan.json [--store=DIR] [--jobs=N] [--procs=N]
//                [--max-cells=N] [--quiet]
//   paxsim store <stat|ls|gc|verify> --store=DIR
//   paxsim store get <digest> --store=DIR        — or name the cell by its
//                [--bench=CG --config=... flags]   axes instead of a digest
//   paxsim lmbench
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "paxsim.hpp"

namespace paxsim::cli {

/// Parsed command line.
struct Command {
  enum class Kind {
    kList, kRun, kPair, kSched, kTimeline, kPredict, kTrace, kTune, kServe,
    kStore, kLmbench, kHelp
  };

  Kind kind = Kind::kHelp;
  std::vector<npb::Benchmark> benches;  ///< 1 for run/predict, 2 for pair/sched
  std::string config_name;              ///< Table-1 configuration
  /// --machine spec: a topology preset name ("paxville", "woodcrest", ...)
  /// or a path to a schema_version'd topology JSON file.  Empty runs the
  /// default machine; the flag table resolves it into options.topology.
  std::string machine;
  std::string policy = "pinned-spread"; ///< sched subcommand policy
  harness::RunOptions options;
  int jobs = 1;                         ///< host worker threads (--jobs=N)
  bool csv = false;
  bool baseline = false;                ///< also run + report serial
  bool compare = false;                 ///< predict: also simulate + errors
  bool profile = false;                 ///< run: profiled serial + summary
  std::string trace_out;                ///< trace: Chrome-tracing JSON file
  bool regions = false;                 ///< trace: print the region table
  bool stacks = false;                  ///< trace: print the context stacks
  /// --store=DIR|off: persistent result store for run/pair/predict/serve
  /// ("off" and empty both mean detached — bit-identical to the storeless
  /// engine).  serve may instead take the directory from the job file.
  std::string store_dir;
  std::string jobs_file;                ///< serve: the job-file path
  std::string store_action;             ///< store: stat|ls|gc|verify|get
  std::string store_digest;             ///< store get: positional 32-hex digest
  std::string get_mode = "single";      ///< store get: single|pair|predict
  int procs = 1;                        ///< serve: worker processes
  std::uint64_t max_cells = 0;          ///< serve: compute bound (0 = all)
  bool quiet = false;                   ///< serve: suppress per-cell lines

  // ---- tune -----------------------------------------------------------------
  std::string strategy = "greedy";      ///< --strategy=grid|greedy|anneal
  int top_k = 2;                        ///< --top-k: validations per kernel
  int anneal_budget = 48;               ///< --budget: anneal proposal steps
  /// Extra search axes (--schedules/--chunks/--grains/--scales CSV lists).
  /// Empty means single-point: the corresponding RunOptions value.
  std::vector<int> sched_kinds;
  std::vector<std::size_t> chunks;
  std::vector<std::size_t> grains;
  std::vector<double> scales;
  std::string tune_out;                 ///< --out: tuning_report JSON file
};

/// Parse result: a command, or an error message for the user.
struct ParseResult {
  std::optional<Command> command;
  std::string error;  ///< non-empty iff command is empty

  [[nodiscard]] bool ok() const noexcept { return command.has_value(); }
};

/// Parses argv (excluding argv[0]).  Pure; no I/O.
[[nodiscard]] ParseResult parse(const std::vector<std::string>& args);

/// Executes @p cmd, writing human-readable (or CSV) output to @p out and
/// diagnostics to @p err.  Returns a process exit code.
int execute(const Command& cmd, std::ostream& out, std::ostream& err);

/// Usage text (the flag section is generated from the flag table).
[[nodiscard]] std::string usage();

}  // namespace paxsim::cli
