// paxsim/cli/flags.hpp
//
// The declarative flag layer shared by the CLI (src/cli/cli.cpp) and every
// bench driver (bench/bench_common.hpp).  A FlagSet is a table of FlagSpec
// rows — name, value hint, default, help text and a validating apply
// function — consumed three ways:
//
//   * parse_flag()  turns one "--key=value" token into a write-through to
//                   the owner's option struct (or a typed error);
//   * parse()       runs a whole argv tail through the table;
//   * help_text()   renders the table as aligned, self-documenting help,
//                   so `--help` output can never drift from what the
//                   parser actually accepts.
//
// Subcommands and benches register flags instead of re-parsing argv: the
// register_*_flags helpers below bind the flags every execution tier shares
// (problem class, trials, seeding, machine spec, schedule override, host
// parallelism, store attachment) onto a harness::RunOptions, so the CLI and
// bench/ accept the same spellings with the same validation by
// construction.
//
// Header-only on purpose: bench drivers link the harness libraries but not
// paxsim_cli, and a table of closures needs no translation unit.
#pragma once

#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "harness/runner.hpp"
#include "sim/topology.hpp"
#include "xomp/schedule.hpp"

namespace paxsim::cli {

/// One declarative flag: everything the parser and the help renderer need.
struct FlagSpec {
  std::string name;        ///< flag name without the leading "--"
  std::string value_hint;  ///< e.g. "N", "S|W|A|B"; empty for bare flags
  std::string def;         ///< rendered default value (empty hides it)
  std::string help;        ///< one-line description
  bool bare_ok = false;    ///< may appear as "--name" with no value
  /// Validates @p value and writes it through to the owner's options.
  /// Returns the user-facing error message, or empty on success.
  std::function<std::string(const std::string&)> apply;
};

/// A table of FlagSpec rows with parse and help-rendering front-ends.
class FlagSet {
 public:
  FlagSet& add(FlagSpec spec) {
    specs_.push_back(std::move(spec));
    return *this;
  }

  /// Bare boolean flag: "--name" sets *out to true.
  FlagSet& add_flag(std::string name, bool* out, std::string help) {
    FlagSpec s;
    s.name = std::move(name);
    s.help = std::move(help);
    s.bare_ok = true;
    const std::string n = s.name;
    s.apply = [out, n](const std::string& v) -> std::string {
      if (!v.empty()) return "bad --" + n + " (takes no value)";
      *out = true;
      return {};
    };
    return add(std::move(s));
  }

  /// Integer flag with an inclusive lower bound.
  FlagSet& add_int(std::string name, int* out, int min, std::string hint,
                   std::string help) {
    FlagSpec s;
    s.name = std::move(name);
    s.value_hint = std::move(hint);
    s.def = std::to_string(*out);
    s.help = std::move(help);
    const std::string n = s.name;
    s.apply = [out, min, n](const std::string& v) -> std::string {
      char* end = nullptr;
      const long x = std::strtol(v.c_str(), &end, 10);
      if (v.empty() || end == nullptr || *end != '\0' || x < min) {
        return "bad --" + n + " (need an integer >= " + std::to_string(min) +
               ")";
      }
      *out = static_cast<int>(x);
      return {};
    };
    return add(std::move(s));
  }

  /// size_t flag with an inclusive lower bound.
  FlagSet& add_size(std::string name, std::size_t* out, std::size_t min,
                    std::string hint, std::string help) {
    FlagSpec s;
    s.name = std::move(name);
    s.value_hint = std::move(hint);
    s.def = std::to_string(*out);
    s.help = std::move(help);
    const std::string n = s.name;
    s.apply = [out, min, n](const std::string& v) -> std::string {
      char* end = nullptr;
      const unsigned long long x = std::strtoull(v.c_str(), &end, 10);
      if (v.empty() || end == nullptr || *end != '\0' || x < min) {
        return "bad --" + n + " (need an integer >= " + std::to_string(min) +
               ")";
      }
      *out = static_cast<std::size_t>(x);
      return {};
    };
    return add(std::move(s));
  }

  /// uint64 flag (any value accepted).
  FlagSet& add_u64(std::string name, std::uint64_t* out, std::string hint,
                   std::string help) {
    FlagSpec s;
    s.name = std::move(name);
    s.value_hint = std::move(hint);
    s.def = std::to_string(*out);
    s.help = std::move(help);
    const std::string n = s.name;
    s.apply = [out, n](const std::string& v) -> std::string {
      char* end = nullptr;
      const unsigned long long x = std::strtoull(v.c_str(), &end, 10);
      if (v.empty() || end == nullptr || *end != '\0') {
        return "bad --" + n + " (need an unsigned integer)";
      }
      *out = x;
      return {};
    };
    return add(std::move(s));
  }

  /// double flag with an exclusive lower bound check supplied by min.
  FlagSet& add_double(std::string name, double* out, double min,
                      std::string hint, std::string help) {
    FlagSpec s;
    s.name = std::move(name);
    s.value_hint = std::move(hint);
    s.def = std::to_string(*out);
    s.help = std::move(help);
    const std::string n = s.name;
    s.apply = [out, min, n](const std::string& v) -> std::string {
      char* end = nullptr;
      const double x = std::strtod(v.c_str(), &end);
      if (v.empty() || end == nullptr || *end != '\0' || x < min) {
        return "bad --" + n + " (need a number >= " + std::to_string(min) +
               ")";
      }
      *out = x;
      return {};
    };
    return add(std::move(s));
  }

  /// Non-empty string flag.
  FlagSet& add_string(std::string name, std::string* out, std::string hint,
                      std::string help) {
    FlagSpec s;
    s.name = std::move(name);
    s.value_hint = std::move(hint);
    s.help = std::move(help);
    const std::string n = s.name;
    s.apply = [out, n](const std::string& v) -> std::string {
      if (v.empty()) return "bad --" + n + " (need a value)";
      *out = v;
      return {};
    };
    return add(std::move(s));
  }

  enum class Outcome { kOk, kUnknown, kError };

  /// Parses one argv token.  kUnknown when the token is not "--name[=v]"
  /// of a registered flag (error is filled with the user-facing message in
  /// both failure outcomes).
  Outcome parse_flag(const std::string& arg, std::string* error) const {
    if (arg.rfind("--", 0) != 0) {
      *error = "unexpected argument '" + arg + "'";
      return Outcome::kUnknown;
    }
    const std::size_t eq = arg.find('=');
    const std::string key =
        eq == std::string::npos ? arg.substr(2) : arg.substr(2, eq - 2);
    const std::string value =
        eq == std::string::npos ? std::string() : arg.substr(eq + 1);
    for (const FlagSpec& s : specs_) {
      if (s.name != key) continue;
      if (eq == std::string::npos && !s.bare_ok) {
        *error = "bad --" + key + " (need --" + key + "=" +
                 (s.value_hint.empty() ? "VALUE" : s.value_hint) + ")";
        return Outcome::kError;
      }
      const std::string err = s.apply(value);
      if (!err.empty()) {
        *error = err;
        return Outcome::kError;
      }
      return Outcome::kOk;
    }
    *error = "unknown flag '--" + key + "'";
    return Outcome::kUnknown;
  }

  /// Parses a whole token list; every token must be a registered flag.
  bool parse(const std::vector<std::string>& args, std::string* error) const {
    for (const std::string& a : args) {
      if (parse_flag(a, error) != Outcome::kOk) return false;
    }
    return true;
  }

  /// Renders the table as aligned "--name=HINT  (default D)  help" lines,
  /// one per flag, in registration order.
  [[nodiscard]] std::string help_text(int indent = 2) const {
    std::vector<std::string> heads;
    std::size_t width = 0;
    heads.reserve(specs_.size());
    for (const FlagSpec& s : specs_) {
      std::string h = "--" + s.name;
      if (!s.value_hint.empty()) h += "=" + s.value_hint;
      width = h.size() > width ? h.size() : width;
      heads.push_back(std::move(h));
    }
    std::string out;
    for (std::size_t i = 0; i < specs_.size(); ++i) {
      out.append(static_cast<std::size_t>(indent), ' ');
      out += heads[i];
      out.append(width - heads[i].size() + 2, ' ');
      out += specs_[i].help;
      if (!specs_[i].def.empty()) {
        out += " (default ";
        out += specs_[i].def;
        out += ')';
      }
      out += '\n';
    }
    return out;
  }

  [[nodiscard]] bool has(std::string_view name) const {
    for (const FlagSpec& s : specs_) {
      if (s.name == name) return true;
    }
    return false;
  }

  [[nodiscard]] const std::vector<FlagSpec>& specs() const noexcept {
    return specs_;
  }

 private:
  std::vector<FlagSpec> specs_;
};

/// Parses one problem-class letter.
inline bool parse_class_letter(const std::string& s, npb::ProblemClass* out) {
  if (s.size() != 1) return false;
  switch (s[0]) {
    case 'S': *out = npb::ProblemClass::kClassS; return true;
    case 'W': *out = npb::ProblemClass::kClassW; return true;
    case 'A': *out = npb::ProblemClass::kClassA; return true;
    case 'B': *out = npb::ProblemClass::kClassB; return true;
    default: return false;
  }
}

/// Parses a schedule-override name onto RunOptions::sched_kind.
inline bool parse_sched_name(const std::string& s, int* out) {
  if (s == "default") {
    *out = -1;
  } else if (s == "static") {
    *out = static_cast<int>(xomp::ScheduleKind::kStatic);
  } else if (s == "dynamic") {
    *out = static_cast<int>(xomp::ScheduleKind::kDynamic);
  } else if (s == "guided") {
    *out = static_cast<int>(xomp::ScheduleKind::kGuided);
  } else {
    return false;
  }
  return true;
}

/// Inverse of parse_sched_name (for reports and labels).
inline const char* sched_name(int sched_kind) {
  switch (sched_kind) {
    case static_cast<int>(xomp::ScheduleKind::kStatic): return "static";
    case static_cast<int>(xomp::ScheduleKind::kDynamic): return "dynamic";
    case static_cast<int>(xomp::ScheduleKind::kGuided): return "guided";
    default: return "default";
  }
}

/// Registers the simulation knobs every execution tier shares, writing
/// through to @p run.  One table serves `paxsim <subcommand>` and every
/// bench driver, so the spellings, defaults and validation can never
/// diverge between them.
/// @p machine_spec (optional) also receives the raw --machine spelling, for
/// error messages and report labels.
inline void register_run_flags(FlagSet& fs, harness::RunOptions* run,
                               std::string* machine_spec = nullptr) {
  {
    FlagSpec s;
    s.name = "class";
    s.value_hint = "S|W|A|B";
    s.def = "B";
    s.help = "NPB problem class";
    harness::RunOptions* r = run;
    s.apply = [r](const std::string& v) -> std::string {
      if (!parse_class_letter(v, &r->cls)) {
        return "bad --class '" + v + "' (use S, W, A or B)";
      }
      return {};
    };
    fs.add(std::move(s));
  }
  fs.add_int("trials", &run->trials, 1, "N", "trials per cell");
  fs.add_u64("seed", &run->base_seed, "N", "base RNG seed");
  fs.add_int("par", &run->par, 1, "N",
             "host threads per run (bit-identical to --par=1)");
  fs.add_double("par-window", &run->par_window, 0.0, "F",
                "lookahead window factor; 0 disables the bound");
  fs.add_size("grain", &run->grain, 1, "N",
              "iterations per scheduling turn (N>1 changes the interleaving)");
  {
    FlagSpec s;
    s.name = "sched";
    s.value_hint = "default|static|dynamic|guided";
    s.def = "default";
    s.help = "override every parallel loop's schedule";
    harness::RunOptions* r = run;
    s.apply = [r](const std::string& v) -> std::string {
      if (!parse_sched_name(v, &r->sched_kind)) {
        return "bad --sched '" + v +
               "' (use default, static, dynamic or guided)";
      }
      return {};
    };
    fs.add(std::move(s));
  }
  fs.add_size("chunk", &run->sched_chunk, 0, "N",
              "chunk parameter for --sched (0 = schedule's default)");
  fs.add_double("scale", &run->machine_scale, 1.0, "F",
                "machine capacity scale factor");
  {
    FlagSpec s;
    s.name = "machine";
    s.value_hint = "PRESET|FILE.json";
    s.def = "paxville";
    s.help = "machine to simulate (preset or topology JSON)";
    harness::RunOptions* r = run;
    std::string* spec = machine_spec;
    s.apply = [r, spec](const std::string& v) -> std::string {
      if (v.empty()) return "bad --machine (need a preset name or a JSON file)";
      sim::Topology topo;
      std::string why;
      if (!sim::Topology::resolve(v, &topo, &why)) {
        return "bad --machine: " + why;
      }
      r->topology = std::make_shared<const sim::Topology>(std::move(topo));
      if (spec != nullptr) *spec = v;
      return {};
    };
    fs.add(std::move(s));
  }
  {
    FlagSpec s;
    s.name = "check";
    s.value_hint = "off|race|invariants|full";
    s.def = "off";
    s.help = "attach the src/check analysis sink";
    harness::RunOptions* r = run;
    s.apply = [r](const std::string& v) -> std::string {
      if (!sim::parse_check_mode(v.c_str(), r->check_mode)) {
        return "bad --check '" + v + "' (use off, race, invariants or full)";
      }
      return {};
    };
    fs.add(std::move(s));
  }
  {
    FlagSpec s;
    s.name = "trace";
    s.value_hint = "off|stacks|events|full";
    s.def = "off";
    s.help = "execution-trace recording depth";
    harness::RunOptions* r = run;
    s.apply = [r](const std::string& v) -> std::string {
      if (!sim::parse_trace_mode(v.c_str(), r->trace_mode)) {
        return "bad --trace '" + v + "' (use off, stacks, events or full)";
      }
      return {};
    };
    fs.add(std::move(s));
  }
  {
    FlagSpec s;
    s.name = "no-verify";
    s.help = "skip numeric verification";
    s.bare_ok = true;
    harness::RunOptions* r = run;
    s.apply = [r](const std::string&) -> std::string {
      r->verify = false;
      return {};
    };
    fs.add(std::move(s));
  }
}

/// Registers the engine-attachment flags (host worker threads and the
/// persistent result store) shared by the CLI and the bench drivers.
inline void register_engine_flags(FlagSet& fs, int* jobs,
                                  std::string* store_dir) {
  fs.add_int("jobs", jobs, 1, "N", "host worker threads for independent cells");
  {
    FlagSpec s;
    s.name = "store";
    s.value_hint = "DIR|off";
    s.def = "off";
    s.help = "persistent content-addressed result store";
    std::string* dir = store_dir;
    s.apply = [dir](const std::string& v) -> std::string {
      if (v.empty()) return "bad --store (need a directory, or 'off')";
      *dir = (v == "off") ? std::string() : v;
      return {};
    };
    fs.add(std::move(s));
  }
}

}  // namespace paxsim::cli
