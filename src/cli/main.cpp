// paxsim CLI entry point — all logic lives in the testable cli library.
#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  const paxsim::cli::ParseResult parsed = paxsim::cli::parse(args);
  if (!parsed.ok()) {
    std::cerr << "error: " << parsed.error << "\n\n" << paxsim::cli::usage();
    return 2;
  }
  return paxsim::cli::execute(*parsed.command, std::cout, std::cerr);
}
