// paxsim/harness/cellspec.cpp
#include "harness/cellspec.hpp"

#include <stdexcept>
#include <utility>

namespace paxsim::harness {

CellSpec CellSpec::bench(npb::Benchmark b) {
  CellSpec s;
  s.a_ = b;
  s.b_ = b;
  return s;
}

CellSpec CellSpec::bench(std::string_view name) {
  CellSpec s;
  npb::Benchmark b{};
  if (!npb::parse_benchmark(std::string(name), b)) {
    s.fail("unknown benchmark '" + std::string(name) + "'");
    return s;
  }
  s.a_ = b;
  s.b_ = b;
  return s;
}

void CellSpec::fail(std::string why) {
  if (error_.empty()) error_ = std::move(why);
}

CellSpec& CellSpec::pair_with(npb::Benchmark b) {
  b_ = b;
  has_pair_ = true;
  if (!mode_set_) mode_ = Mode::kPair;
  return *this;
}

CellSpec& CellSpec::pair_with(std::string_view name) {
  npb::Benchmark b{};
  if (!npb::parse_benchmark(std::string(name), b)) {
    fail("unknown benchmark '" + std::string(name) + "'");
    return *this;
  }
  return pair_with(b);
}

CellSpec& CellSpec::machine(std::string_view spec) {
  machine_spec_ = spec == "default" ? std::string() : std::string(spec);
  topology_.reset();
  machine_resolved_ = false;
  return *this;
}

CellSpec& CellSpec::machine(std::shared_ptr<const sim::Topology> topo) {
  topology_ = std::move(topo);
  machine_spec_ = topology_ == nullptr ? std::string() : topology_->name;
  machine_resolved_ = true;
  return *this;
}

CellSpec& CellSpec::config(std::string_view name) {
  config_name_ = std::string(name);
  has_explicit_cfg_ = false;
  return *this;
}

CellSpec& CellSpec::config(const StudyConfig& cfg) {
  explicit_cfg_ = cfg;
  has_explicit_cfg_ = true;
  config_name_.clear();
  return *this;
}

CellSpec& CellSpec::problem_class(npb::ProblemClass cls) {
  opt_.cls = cls;
  return *this;
}

CellSpec& CellSpec::problem_class(char letter) {
  switch (letter) {
    case 'S': opt_.cls = npb::ProblemClass::kClassS; break;
    case 'W': opt_.cls = npb::ProblemClass::kClassW; break;
    case 'A': opt_.cls = npb::ProblemClass::kClassA; break;
    case 'B': opt_.cls = npb::ProblemClass::kClassB; break;
    default:
      fail(std::string("bad problem class '") + letter +
           "' (use S, W, A or B)");
  }
  return *this;
}

CellSpec& CellSpec::scale(double machine_scale) {
  if (machine_scale < 1.0) {
    fail("bad scale " + std::to_string(machine_scale) + " (need >= 1)");
    return *this;
  }
  opt_.machine_scale = machine_scale;
  return *this;
}

CellSpec& CellSpec::grain(std::size_t grain) {
  if (grain < 1) {
    fail("bad grain (need >= 1)");
    return *this;
  }
  opt_.grain = grain;
  return *this;
}

CellSpec& CellSpec::schedule(int sched_kind, std::size_t chunk) {
  if (sched_kind < -1 || sched_kind > 2) {
    fail("bad schedule kind " + std::to_string(sched_kind) +
         " (use -1, or xomp::ScheduleKind as an int)");
    return *this;
  }
  opt_.sched_kind = sched_kind;
  // Canonical identity: the kernel-default schedule has no chunk, so a
  // chunk next to kind -1 must not mint a distinct (but behaviourally
  // identical) CellKey.
  opt_.sched_chunk = sched_kind < 0 ? 0 : chunk;
  return *this;
}

CellSpec& CellSpec::schedule(std::string_view name, std::size_t chunk) {
  if (name == "default") return schedule(-1, chunk);
  if (name == "static") {
    return schedule(static_cast<int>(xomp::ScheduleKind::kStatic), chunk);
  }
  if (name == "dynamic") {
    return schedule(static_cast<int>(xomp::ScheduleKind::kDynamic), chunk);
  }
  if (name == "guided") {
    return schedule(static_cast<int>(xomp::ScheduleKind::kGuided), chunk);
  }
  fail("bad schedule '" + std::string(name) +
       "' (use default, static, dynamic or guided)");
  return *this;
}

CellSpec& CellSpec::trials(int n) {
  if (n < 1) {
    fail("bad trials (need >= 1)");
    return *this;
  }
  opt_.trials = n;
  return *this;
}

CellSpec& CellSpec::seed(std::uint64_t base_seed) {
  opt_.base_seed = base_seed;
  return *this;
}

CellSpec& CellSpec::verify(bool on) {
  opt_.verify = on;
  return *this;
}

CellSpec& CellSpec::check(sim::CheckMode mode) {
  opt_.check_mode = mode;
  return *this;
}

CellSpec& CellSpec::trace(sim::TraceMode mode) {
  opt_.trace_mode = mode;
  return *this;
}

CellSpec& CellSpec::par(int par, double window) {
  if (par < 1) {
    fail("bad par (need >= 1)");
    return *this;
  }
  opt_.par = par;
  opt_.par_window = window;
  return *this;
}

CellSpec& CellSpec::mode(Mode m) {
  mode_ = m;
  mode_set_ = true;
  return *this;
}

bool CellSpec::resolve(Resolved* out, std::string* why) const {
  const auto err = [why](std::string msg) {
    if (why != nullptr) *why = std::move(msg);
    return false;
  };
  if (!error_.empty()) return err(error_);
  if (mode_ == Mode::kPair && !has_pair_) {
    return err("pair cell needs a second benchmark (pair_with)");
  }
  if (mode_ != Mode::kPair && has_pair_) {
    return err("pair_with set on a non-pair cell");
  }

  Resolved r;
  r.a = a_;
  r.b = mode_ == Mode::kPair ? b_ : a_;
  r.mode = mode_;
  r.opt = opt_;
  r.machine_spec = machine_spec_;

  // Machine: an adopted topology is authoritative; otherwise resolve the
  // spec ("" = the calibrated default machine, null topology).
  std::shared_ptr<const sim::Topology> topo = topology_;
  if (!machine_resolved_ && !machine_spec_.empty()) {
    sim::Topology t;
    std::string res_why;
    if (!sim::Topology::resolve(machine_spec_, &t, &res_why)) {
      return err("bad machine '" + machine_spec_ + "': " + res_why);
    }
    topo = std::make_shared<const sim::Topology>(std::move(t));
  }
  r.opt.topology = topo;

  // Configuration: an explicit row passes through; a name resolves against
  // THIS machine's configuration table.
  if (has_explicit_cfg_) {
    r.cfg = explicit_cfg_;
  } else {
    if (config_name_.empty()) return err("configuration not set");
    const std::vector<StudyConfig> table =
        topo == nullptr ? all_configs() : configs_for(*topo);
    const int i = find_config_index(table, config_name_);
    if (i < 0) {
      return err("unknown configuration '" + config_name_ + "' on machine '" +
                 (r.machine_spec.empty() ? "default" : r.machine_spec) + "'");
    }
    r.cfg = table[static_cast<std::size_t>(i)];
  }
  if (r.mode == Mode::kPair && r.cfg.cpus.size() < 2) {
    return err("pair cell needs a configuration with at least two contexts");
  }
  *out = std::move(r);
  return true;
}

CellSpec::Resolved CellSpec::resolve() const {
  Resolved r;
  std::string why;
  if (!resolve(&r, &why)) throw std::invalid_argument("CellSpec: " + why);
  return r;
}

CellKey CellSpec::Resolved::key(int trial) const {
  CellKey::Kind kind = CellKey::Kind::kSingle;
  if (mode == Mode::kPair) kind = CellKey::Kind::kPair;
  if (mode == Mode::kPredict) kind = CellKey::Kind::kPredict;
  return CellKey::from(kind, a, b, cfg, opt, opt.trial_seed(trial));
}

std::string CellSpec::Resolved::fingerprint(int trial) const {
  return cell_fingerprint(key(trial));
}

std::string CellSpec::Resolved::digest(int trial) const {
  return cell_digest(fingerprint(trial));
}

}  // namespace paxsim::harness
