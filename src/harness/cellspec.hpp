// paxsim/harness/cellspec.hpp
//
// CellSpec — the one public way to assemble the (StudyConfig, RunOptions,
// CellKey) triple that names a simulation or prediction cell.  Before it,
// three construction paths existed side by side (the CLI's flag handling,
// serve's job-file expansion and each bench driver's ad-hoc RunOptions
// assembly), and every new axis had to be threaded through all three.  Now
// the axes are set fluently —
//
//   auto cell = CellSpec::bench(npb::Benchmark::kCG)
//                   .machine("paxville")
//                   .config("HT off -4-2")
//                   .problem_class('S')
//                   .schedule("dynamic", 8)
//                   .mode(CellSpec::Mode::kSingle)
//                   .resolve();
//
// — and resolve() performs every cross-field validation in one place: the
// machine spec resolves to a topology, the configuration name resolves
// against THAT machine's Table-1 analogue, and the schedule/grain/scale
// knobs land in the RunOptions fields CellKey::from projects.  The resolved
// cell can mint its CellKey (and store fingerprint/digest) for any trial.
//
// Builders accumulate errors instead of throwing: the first bad setter wins
// and resolve() reports it, so fluent chains stay exception-free until the
// caller decides how to surface the problem.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "harness/config.hpp"
#include "harness/engine.hpp"
#include "harness/runner.hpp"
#include "npb/kernel.hpp"
#include "sim/topology.hpp"

namespace paxsim::harness {

class CellSpec {
 public:
  /// What the cell asks of the engine; mirrors CellKey::Kind.
  enum class Mode : std::uint8_t { kSingle, kPair, kPredict };

  /// Entry points: every spec starts from a benchmark.
  [[nodiscard]] static CellSpec bench(npb::Benchmark b);
  /// Name-parsing variant; an unknown name becomes a resolve()-time error.
  [[nodiscard]] static CellSpec bench(std::string_view name);

  /// Second program of a pair cell (sets mode kPair).
  CellSpec& pair_with(npb::Benchmark b);
  CellSpec& pair_with(std::string_view name);

  /// Machine to simulate: "", "default" or a preset/JSON spec resolved via
  /// sim::Topology::resolve.  The overload taking a Topology adopts an
  /// already resolved machine (serve's job expansion path).
  CellSpec& machine(std::string_view spec);
  CellSpec& machine(std::shared_ptr<const sim::Topology> topo);

  /// Configuration by name, resolved at resolve() time against the
  /// machine's configuration table — or an explicit row (ad-hoc ladders).
  CellSpec& config(std::string_view name);
  CellSpec& config(const StudyConfig& cfg);

  CellSpec& problem_class(npb::ProblemClass cls);
  CellSpec& problem_class(char letter);
  CellSpec& scale(double machine_scale);
  CellSpec& grain(std::size_t grain);
  /// Loop-schedule override: kind -1 (kernel default) or
  /// xomp::ScheduleKind cast to int, plus the chunk parameter.
  CellSpec& schedule(int sched_kind, std::size_t chunk = 0);
  /// Named variant: "default", "static", "dynamic" or "guided".
  CellSpec& schedule(std::string_view name, std::size_t chunk = 0);
  CellSpec& trials(int n);
  CellSpec& seed(std::uint64_t base_seed);
  CellSpec& verify(bool on);
  CellSpec& check(sim::CheckMode mode);
  CellSpec& trace(sim::TraceMode mode);
  /// Host-parallel knobs (never part of the cell's identity).
  CellSpec& par(int par, double window = 64.0);
  CellSpec& mode(Mode m);

  /// A fully validated cell: the config/options pair every runner consumes
  /// plus the identity helpers the store and the engine cache key on.
  struct Resolved {
    npb::Benchmark a{};
    npb::Benchmark b{};  ///< == a unless mode is kPair
    Mode mode = Mode::kSingle;
    StudyConfig cfg;
    RunOptions opt;
    std::string machine_spec;  ///< normalized ("" = default machine)

    [[nodiscard]] CellKey key(int trial = 0) const;
    [[nodiscard]] std::string fingerprint(int trial = 0) const;
    [[nodiscard]] std::string digest(int trial = 0) const;
  };

  /// Validates and resolves the spec.  False (with *why filled) on the
  /// first accumulated builder error or any cross-field failure; @p out is
  /// untouched on failure.
  [[nodiscard]] bool resolve(Resolved* out, std::string* why) const;

  /// Throwing convenience for call sites that treat a bad spec as a bug.
  [[nodiscard]] Resolved resolve() const;

 private:
  CellSpec() = default;
  void fail(std::string why);

  npb::Benchmark a_{};
  npb::Benchmark b_{};
  bool has_pair_ = false;
  Mode mode_ = Mode::kSingle;
  bool mode_set_ = false;
  std::string machine_spec_;
  std::shared_ptr<const sim::Topology> topology_;
  bool machine_resolved_ = false;  ///< topology_/machine_spec_ authoritative
  std::string config_name_;
  StudyConfig explicit_cfg_;
  bool has_explicit_cfg_ = false;
  RunOptions opt_;
  std::string error_;  ///< first builder error; resolve() reports it
};

}  // namespace paxsim::harness
