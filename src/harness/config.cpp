#include "harness/config.hpp"

#include <cstdlib>

namespace paxsim::harness {
namespace {

using sim::LogicalCpu;

constexpr LogicalCpu cpu(int chip, int core, int ctx) {
  return LogicalCpu{static_cast<std::uint8_t>(chip),
                    static_cast<std::uint8_t>(core),
                    static_cast<std::uint8_t>(ctx)};
}

std::vector<StudyConfig> build_configs() {
  std::vector<StudyConfig> v;
  // Serial baseline: B0.
  v.push_back({"Serial", Architecture::kSerial, false, 1, 1, {cpu(0, 0, 0)}});
  // Group 1: HT on -2-1 vs serial.
  v.push_back({"HT on -2-1", Architecture::kSMT, true, 2, 1,
               {cpu(0, 0, 0), cpu(0, 0, 1)}});
  // Group 2: one chip.
  v.push_back({"HT off -2-1", Architecture::kCMP, false, 2, 1,
               {cpu(0, 0, 0), cpu(0, 1, 0)}});
  v.push_back({"HT on -4-1", Architecture::kCMT, true, 4, 1,
               {cpu(0, 0, 0), cpu(0, 0, 1), cpu(0, 1, 0), cpu(0, 1, 1)}});
  // Group 3: both chips at half use.
  v.push_back({"HT off -2-2", Architecture::kSMP, false, 2, 2,
               {cpu(0, 0, 0), cpu(1, 0, 0)}});
  v.push_back({"HT on -4-2", Architecture::kSmtSmp, true, 4, 2,
               {cpu(0, 0, 0), cpu(0, 0, 1), cpu(1, 0, 0), cpu(1, 0, 1)}});
  // Group 4: everything.
  v.push_back({"HT off -4-2", Architecture::kCmpSmp, false, 4, 2,
               {cpu(0, 0, 0), cpu(0, 1, 0), cpu(1, 0, 0), cpu(1, 1, 0)}});
  v.push_back({"HT on -8-2", Architecture::kCmtSmp, true, 8, 2,
               {cpu(0, 0, 0), cpu(0, 0, 1), cpu(0, 1, 0), cpu(0, 1, 1),
                cpu(1, 0, 0), cpu(1, 0, 1), cpu(1, 1, 0), cpu(1, 1, 1)}});
  return v;
}

}  // namespace

std::string_view architecture_name(Architecture a) noexcept {
  switch (a) {
    case Architecture::kSerial: return "Serial";
    case Architecture::kSMT: return "SMT";
    case Architecture::kCMP: return "CMP";
    case Architecture::kCMT: return "CMT";
    case Architecture::kSMP: return "SMP";
    case Architecture::kSmtSmp: return "SMT-based SMP";
    case Architecture::kCmpSmp: return "CMP-based SMP";
    case Architecture::kCmtSmp: return "CMT-based SMP";
  }
  return "?";
}

const std::vector<StudyConfig>& all_configs() {
  static const std::vector<StudyConfig> configs = build_configs();
  return configs;
}

const StudyConfig& serial_config() {
  for (const StudyConfig& c : all_configs()) {
    if (c.is_serial()) return c;
  }
  // Table 1 always contains the Serial row; reaching here means the config
  // table was edited into an invalid state.
  std::abort();
}

std::vector<StudyConfig> parallel_configs() {
  std::vector<StudyConfig> out;
  for (const StudyConfig& c : all_configs()) {
    if (!c.is_serial()) out.push_back(c);
  }
  return out;
}

const StudyConfig* find_config(std::string_view name) {
  for (const StudyConfig& c : all_configs()) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

std::string cpu_label(sim::LogicalCpu cpu_, bool ht_on) {
  if (ht_on) {
    return "A" + std::to_string(cpu_.flat());
  }
  return "B" + std::to_string(cpu_.chip * 2 + cpu_.core);
}

}  // namespace paxsim::harness
