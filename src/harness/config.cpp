#include "harness/config.hpp"

#include <cstdlib>

#include "sim/topology.hpp"

namespace paxsim::harness {
namespace {

using sim::LogicalCpu;

constexpr LogicalCpu cpu(int chip, int core, int ctx) {
  return LogicalCpu{static_cast<std::uint8_t>(chip),
                    static_cast<std::uint8_t>(core),
                    static_cast<std::uint8_t>(ctx)};
}

/// "HT on -8-2"-style name from the HT state, thread count and chip count.
std::string config_name(bool ht_on, int threads, int chips) {
  std::string s = ht_on ? "HT on -" : "HT off -";
  s += std::to_string(threads);
  s += '-';
  s += std::to_string(chips);
  return s;
}

std::vector<StudyConfig> build_configs() {
  std::vector<StudyConfig> v;
  // Serial baseline: B0.
  v.push_back({"Serial", Architecture::kSerial, false, 1, 1, {cpu(0, 0, 0)}});
  // Group 1: HT on -2-1 vs serial.
  v.push_back({"HT on -2-1", Architecture::kSMT, true, 2, 1,
               {cpu(0, 0, 0), cpu(0, 0, 1)}});
  // Group 2: one chip.
  v.push_back({"HT off -2-1", Architecture::kCMP, false, 2, 1,
               {cpu(0, 0, 0), cpu(0, 1, 0)}});
  v.push_back({"HT on -4-1", Architecture::kCMT, true, 4, 1,
               {cpu(0, 0, 0), cpu(0, 0, 1), cpu(0, 1, 0), cpu(0, 1, 1)}});
  // Group 3: both chips at half use.
  v.push_back({"HT off -2-2", Architecture::kSMP, false, 2, 2,
               {cpu(0, 0, 0), cpu(1, 0, 0)}});
  v.push_back({"HT on -4-2", Architecture::kSmtSmp, true, 4, 2,
               {cpu(0, 0, 0), cpu(0, 0, 1), cpu(1, 0, 0), cpu(1, 0, 1)}});
  // Group 4: everything.
  v.push_back({"HT off -4-2", Architecture::kCmpSmp, false, 4, 2,
               {cpu(0, 0, 0), cpu(0, 1, 0), cpu(1, 0, 0), cpu(1, 1, 0)}});
  v.push_back({"HT on -8-2", Architecture::kCmtSmp, true, 8, 2,
               {cpu(0, 0, 0), cpu(0, 0, 1), cpu(0, 1, 0), cpu(0, 1, 1),
                cpu(1, 0, 0), cpu(1, 0, 1), cpu(1, 1, 0), cpu(1, 1, 1)}});
  return v;
}

}  // namespace

std::string_view architecture_name(Architecture a) noexcept {
  switch (a) {
    case Architecture::kSerial: return "Serial";
    case Architecture::kSMT: return "SMT";
    case Architecture::kCMP: return "CMP";
    case Architecture::kCMT: return "CMT";
    case Architecture::kSMP: return "SMP";
    case Architecture::kSmtSmp: return "SMT-based SMP";
    case Architecture::kCmpSmp: return "CMP-based SMP";
    case Architecture::kCmtSmp: return "CMT-based SMP";
  }
  return "?";
}

const std::vector<StudyConfig>& all_configs() {
  static const std::vector<StudyConfig> configs = build_configs();
  return configs;
}

const StudyConfig& serial_config() {
  for (const StudyConfig& c : all_configs()) {
    if (c.is_serial()) return c;
  }
  // Table 1 always contains the Serial row; reaching here means the config
  // table was edited into an invalid state.
  std::abort();
}

std::vector<StudyConfig> parallel_configs() {
  std::vector<StudyConfig> out;
  for (const StudyConfig& c : all_configs()) {
    if (!c.is_serial()) out.push_back(c);
  }
  return out;
}

const StudyConfig* find_config(std::string_view name) {
  for (const StudyConfig& c : all_configs()) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

std::vector<StudyConfig> configs_for(const sim::Topology& topo) {
  const int P = topo.packages;
  const int C = topo.cores_per_package;
  const int S = topo.smt_per_core;
  std::vector<StudyConfig> v;

  const auto add = [&v](Architecture arch, bool ht_on, int chips,
                        std::vector<LogicalCpu> cpus) {
    const int threads = static_cast<int>(cpus.size());
    v.push_back({config_name(ht_on, threads, chips), arch, ht_on, threads,
                 chips, std::move(cpus)});
  };

  // Serial baseline: context 0 of core 0 of package 0.
  v.push_back(
      {"Serial", Architecture::kSerial, false, 1, 1, {cpu(0, 0, 0)}});

  // Group 1: the SMT pair (two contexts of one core).
  if (S > 1) {
    add(Architecture::kSMT, true, 1, {cpu(0, 0, 0), cpu(0, 0, 1)});
  }
  // Group 2: one chip.  The CMP pair, then — when the chip has more than
  // two cores — every core of the chip, then the chip with HT on.
  if (C > 1) {
    add(Architecture::kCMP, false, 1, {cpu(0, 0, 0), cpu(0, 1, 0)});
    if (C > 2) {
      std::vector<LogicalCpu> cpus;
      for (int c = 0; c < C; ++c) cpus.push_back(cpu(0, c, 0));
      add(Architecture::kCMP, false, 1, std::move(cpus));
    }
    if (S > 1) {
      std::vector<LogicalCpu> cpus;
      for (int c = 0; c < C; ++c) {
        for (int s = 0; s < S; ++s) cpus.push_back(cpu(0, c, s));
      }
      add(Architecture::kCMT, true, 1, std::move(cpus));
    }
  }
  // Group 3: both-chips-at-half-use (one core per chip, HT off then on).
  if (P > 1) {
    std::vector<LogicalCpu> one_core;
    for (int p = 0; p < P; ++p) one_core.push_back(cpu(p, 0, 0));
    add(Architecture::kSMP, false, P, std::move(one_core));
    if (S > 1) {
      std::vector<LogicalCpu> cpus;
      for (int p = 0; p < P; ++p) {
        for (int s = 0; s < S; ++s) cpus.push_back(cpu(p, 0, s));
      }
      add(Architecture::kSmtSmp, true, P, std::move(cpus));
    }
  }
  // Group 4: everything.
  if (P > 1 && C > 1) {
    std::vector<LogicalCpu> cpus;
    for (int p = 0; p < P; ++p) {
      for (int c = 0; c < C; ++c) cpus.push_back(cpu(p, c, 0));
    }
    add(Architecture::kCmpSmp, false, P, std::move(cpus));
    if (S > 1) {
      std::vector<LogicalCpu> all;
      for (int p = 0; p < P; ++p) {
        for (int c = 0; c < C; ++c) {
          for (int s = 0; s < S; ++s) all.push_back(cpu(p, c, s));
        }
      }
      add(Architecture::kCmtSmp, true, P, std::move(all));
    }
  }
  return v;
}

int find_config_index(const std::vector<StudyConfig>& configs,
                      std::string_view name) {
  for (std::size_t i = 0; i < configs.size(); ++i) {
    if (configs[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

std::string cpu_label(sim::LogicalCpu cpu_, bool ht_on) {
  // The Paxville-shaped default; Figure 1's A0..A7 / B0..B3 labelling.
  static const sim::Topology paxville = sim::Topology::paxville();
  return cpu_label(cpu_, ht_on, paxville);
}

std::string cpu_label(sim::LogicalCpu cpu_, bool ht_on,
                      const sim::Topology& topo) {
  // Built via += rather than `"A" + std::to_string(...)`: GCC 12's
  // -Wrestrict misfires on operator+(const char*, string&&) at -O3
  // (GCC PR105651), and the -Werror CI build must stay clean.
  std::string label(1, ht_on ? 'A' : 'B');
  label += std::to_string(ht_on ? topo.flat(cpu_)
                                : topo.core_id(cpu_.chip, cpu_.core));
  return label;
}

}  // namespace paxsim::harness
