// paxsim/harness/config.hpp
//
// The study configurations of the paper's Table 1 — the eight ways of
// exposing the PowerEdge 2850's hardware contexts via Hyper-Threading
// enable/disable plus `maxcpus=` masking, with Figure 1's A0..A7 / B0..B3
// context labelling.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "sim/types.hpp"

namespace paxsim::sim {
struct Topology;
}

namespace paxsim::harness {

/// The multithreaded architecture each configuration realises (Table 1's
/// right-hand column).
enum class Architecture {
  kSerial,
  kSMT,        ///< HT on  -2-1: two contexts of one core
  kCMP,        ///< HT off -2-1: two cores of one chip
  kCMT,        ///< HT on  -4-1: one chip, both cores, HT on
  kSMP,        ///< HT off -2-2: one core on each chip
  kSmtSmp,     ///< HT on  -4-2: one HT core on each chip
  kCmpSmp,     ///< HT off -4-2: all four cores
  kCmtSmp,     ///< HT on  -8-2: everything
};

[[nodiscard]] std::string_view architecture_name(Architecture a) noexcept;

/// One row of Table 1.
struct StudyConfig {
  std::string name;        ///< paper terminology, e.g. "HT on -4-1"
  Architecture arch = Architecture::kSerial;
  bool ht_on = false;      ///< Hyper-Threading state
  int threads = 1;         ///< application threads
  int chips = 1;           ///< physical packages used
  std::vector<sim::LogicalCpu> cpus;  ///< the hardware contexts, in order

  [[nodiscard]] bool is_serial() const noexcept {
    return arch == Architecture::kSerial;
  }
};

/// All Table-1 configurations, serial first, in the paper's group order.
[[nodiscard]] const std::vector<StudyConfig>& all_configs();

/// The Serial baseline row of Table 1 — the reference point every speedup
/// in the study is computed against.  Looked up by its architecture rather
/// than by list position, so reordering all_configs() cannot silently
/// change what "serial" means.
[[nodiscard]] const StudyConfig& serial_config();

/// The seven multithreaded configurations (Table 1 minus serial).
[[nodiscard]] std::vector<StudyConfig> parallel_configs();

/// Finds a configuration by its paper name ("HT on -4-1"); nullptr if absent.
[[nodiscard]] const StudyConfig* find_config(std::string_view name);

/// The Table-1 analogue for an arbitrary topology: Serial first, then the
/// same HT-pair / one-chip / one-core-per-chip / everything ladder the paper
/// enumerates, with each rung present only when the topology has the
/// hardware for it (SMT rungs need smt_per_core > 1, multi-chip rungs need
/// more than one package).  For the default Paxville shape this reproduces
/// all_configs() exactly, names included (test-enforced).
[[nodiscard]] std::vector<StudyConfig> configs_for(const sim::Topology& topo);

/// Finds a configuration of @p topo by name; nullopt-style nullptr-free
/// lookup is not needed here — returns the config list position or -1.
[[nodiscard]] int find_config_index(const std::vector<StudyConfig>& configs,
                                    std::string_view name);

/// Figure-1 label of a hardware context under the given HT state:
/// "A0".."A7" when HT is on, "B0".."B3" when it is off (Paxville shape).
[[nodiscard]] std::string cpu_label(sim::LogicalCpu cpu, bool ht_on);

/// Topology-aware variant: the A-label numbers contexts by the topology's
/// dense flat() index, the B-label numbers physical cores by its core_id().
[[nodiscard]] std::string cpu_label(sim::LogicalCpu cpu, bool ht_on,
                                    const sim::Topology& topo);

}  // namespace paxsim::harness
