#include "harness/engine.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstring>
#include <exception>
#include <stdexcept>
#include <thread>
#include <unordered_set>

#include "par/par.hpp"
#include "xomp/team.hpp"

namespace paxsim::harness {
namespace {

/// Pool key: the capacity-like fields RunOptions::machine_scale actually
/// varies.  Machines with equal keys are interchangeable for pooling.
std::string params_pool_key(const sim::MachineParams& p) {
  std::string s;
  s.reserve(64);
  const auto app = [&s](std::uint64_t v) {
    s += std::to_string(v);
    s += ':';
  };
  app(static_cast<std::uint64_t>(p.chips));
  app(static_cast<std::uint64_t>(p.cores_per_chip));
  app(p.l1d.size_bytes);
  app(p.l2.size_bytes);
  app(p.trace_cache_uops);
  app(p.itlb_entries);
  app(p.dtlb_entries);
  app(static_cast<std::uint64_t>(p.prefetch_streams));
  app(p.fast_path ? 1u : 0u);
  // A checked machine routes through the reference path and carries an
  // attached sink during runs; never hand it out for unchecked cells.
  app(static_cast<std::uint64_t>(p.check_mode));
  // Same story for profiled machines (model::Profiler attachment).
  app(p.profile ? 1u : 0u);
  // And for traced machines (trace::Tracer attachment + region flushes).
  app(static_cast<std::uint64_t>(p.trace_mode));
  // Machines built from different topologies are never interchangeable.
  if (p.topology != nullptr) s += p.topology->fingerprint();
  return s;
}

/// Memo key for kernel profiles: everything run_profiled_serial's outcome
/// depends on.  Verification and check mode do not change the profile.
/// Schedule overrides do not either: the profiling run is single-threaded,
/// and a one-thread team executes serial_for, which has no schedule.
std::string profile_key(npb::Benchmark b, const RunOptions& opt,
                        std::uint64_t seed) {
  std::string s;
  s.reserve(48);
  s += std::to_string(static_cast<int>(b));
  s += '|';
  s += std::to_string(static_cast<int>(opt.cls));
  s += '|';
  s += std::to_string(opt.machine_scale);
  s += '|';
  s += std::to_string(seed);
  s += '|';
  s += std::to_string(opt.grain);
  return s;
}

}  // namespace

// Tripwire for CellKey::from: RunOptions and CellKey must evolve together.
// When a field is added to RunOptions, the build fails here until (a) the
// factory below is audited to either project the field into the key or
// justify its exclusion, and (b) this expected size is updated.  (Guarded to
// the common LP64 layout; other ABIs rely on the audit having happened.)
// Audit note (par / par_window): deliberately excluded from the key.  The
// parallel backend is bit-identical to the serial path (test-enforced), so a
// cell's value is independent of host parallelism — including it would split
// the cache by a knob that cannot change results.
#if defined(__x86_64__) && defined(__LP64__)
static_assert(sizeof(RunOptions) == 104,
              "RunOptions changed: audit CellKey::from for the new field, "
              "then update this expected size");
#endif

CellKey CellKey::from(Kind kind, npb::Benchmark a, npb::Benchmark b,
                      const StudyConfig& cfg, const RunOptions& opt,
                      std::uint64_t seed) {
  CellKey k;
  k.kind = kind;
  k.a = a;
  k.b = b;
  k.config = config_fingerprint(cfg);
  k.cls = opt.cls;
  k.machine_scale = opt.machine_scale;
  k.seed = seed;  // per-trial seed; opt.trials/base_seed are plan-level
  k.verify = opt.verify;
  k.grain = opt.grain;
  k.sched_kind = opt.sched_kind;
  k.sched_chunk = opt.sched_chunk;
  k.check = opt.check_mode;
  k.trace = opt.trace_mode;
  if (opt.topology != nullptr) k.machine = opt.topology->fingerprint();
  return k;
}

std::string config_fingerprint(const StudyConfig& cfg) {
  std::string s(cfg.name);
  s += '|';
  s += std::to_string(static_cast<int>(cfg.arch));
  s += cfg.ht_on ? "|ht|" : "|--|";
  s += std::to_string(cfg.threads);
  s += '/';
  s += std::to_string(cfg.chips);
  // Spell out chip.core.context rather than LogicalCpu::flat(): flat() is
  // Paxville-shaped and aliases distinct contexts on wider topologies.
  for (const sim::LogicalCpu c : cfg.cpus) {
    s += ':';
    s += std::to_string(c.chip);
    s += '.';
    s += std::to_string(c.core);
    s += '.';
    s += std::to_string(c.context);
  }
  return s;
}

namespace {

/// Fixed-width lowercase hex of @p v over @p digits nibbles (MSB first).
void append_hex(std::string& s, std::uint64_t v, int digits) {
  static const char* kHex = "0123456789abcdef";
  for (int d = digits - 1; d >= 0; --d) {
    // paxlint: allow(fold-order) -- MSB-first hex formatting of one scalar, not a sharded reduction; no counter fold happens here
    s += kHex[(v >> (4 * d)) & 0xF];
  }
}

/// Length-prefixed byte field: 8 hex digits of length, ':', the raw bytes.
/// The prefix makes the serialization injective however the strings nest.
void append_bytes(std::string& s, std::string_view bytes) {
  append_hex(s, bytes.size(), 8);
  s += ':';
  s.append(bytes);
}

}  // namespace

std::string cell_fingerprint(const CellKey& k) {
  // Every field is rendered explicitly at a fixed width, in declaration
  // order, so the result is a pure function of the key's VALUES — never of
  // struct padding, enum underlying types or host endianness.  The leading
  // version token makes old stores reject new-format keys (and vice versa)
  // instead of silently aliasing.
  std::string s;
  s.reserve(96 + k.config.size() + k.machine.size());
  s += "cellkey-v";
  s += std::to_string(kCellFingerprintVersion);
  s += ";kind=";
  append_hex(s, static_cast<std::uint64_t>(k.kind), 2);
  s += ";a=";
  append_hex(s, static_cast<std::uint64_t>(k.a), 2);
  s += ";b=";
  append_hex(s, static_cast<std::uint64_t>(k.b), 2);
  s += ";cls=";
  append_hex(s, static_cast<std::uint64_t>(k.cls), 2);
  s += ";scale=";
  std::uint64_t scale_bits = 0;
  static_assert(sizeof(scale_bits) == sizeof(k.machine_scale));
  std::memcpy(&scale_bits, &k.machine_scale, sizeof(scale_bits));
  append_hex(s, scale_bits, 16);  // IEEE-754 bit pattern: exact, total
  s += ";seed=";
  append_hex(s, k.seed, 16);
  s += ";verify=";
  s += k.verify ? '1' : '0';
  s += ";grain=";
  append_hex(s, static_cast<std::uint64_t>(k.grain), 16);
  s += ";skind=";
  // Sign-extended so the -1 kernel-default sentinel stays injective.
  append_hex(s, static_cast<std::uint64_t>(static_cast<std::int64_t>(k.sched_kind)), 16);
  s += ";schunk=";
  append_hex(s, static_cast<std::uint64_t>(k.sched_chunk), 16);
  s += ";check=";
  append_hex(s, static_cast<std::uint64_t>(k.check), 2);
  s += ";trace=";
  append_hex(s, static_cast<std::uint64_t>(k.trace), 2);
  s += ";config=";
  append_bytes(s, k.config);
  s += ";machine=";
  append_bytes(s, k.machine);
  return s;
}

std::string cell_digest(std::string_view fingerprint) {
  // Two independent 64-bit FNV-1a passes (distinct offset bases) → 128 bits
  // rendered as 32 hex characters.  Not cryptographic; collision odds at
  // sweep scale (~10^6 cells) are ~10^-26, and the store additionally
  // verifies the full fingerprint string recorded inside each entry.
  const auto fnv1a = [fingerprint](std::uint64_t h) {
    for (const char c : fingerprint) {
      h ^= static_cast<unsigned char>(c);
      h *= 0x100000001b3ull;
    }
    return h;
  };
  std::string s;
  s.reserve(32);
  append_hex(s, fnv1a(0xcbf29ce484222325ull), 16);
  append_hex(s, fnv1a(0x6c62272e07bb0142ull), 16);
  return s;
}

std::size_t CellKeyHash::operator()(const CellKey& k) const noexcept {
  std::size_t h = std::hash<std::string>{}(k.config);
  const auto mix = [&h](std::uint64_t v) {
    h ^= static_cast<std::size_t>(v) + 0x9e3779b97f4a7c15ull + (h << 6) +
         (h >> 2);
  };
  mix(static_cast<std::uint64_t>(k.kind));
  mix(static_cast<std::uint64_t>(k.a));
  mix(static_cast<std::uint64_t>(k.b));
  mix(static_cast<std::uint64_t>(k.cls));
  std::uint64_t scale_bits = 0;
  static_assert(sizeof(scale_bits) == sizeof(k.machine_scale));
  std::memcpy(&scale_bits, &k.machine_scale, sizeof(scale_bits));
  mix(scale_bits);
  mix(k.seed);
  mix(k.verify ? 1u : 0u);
  mix(static_cast<std::uint64_t>(k.grain));
  mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(k.sched_kind)));
  mix(static_cast<std::uint64_t>(k.sched_chunk));
  mix(static_cast<std::uint64_t>(k.check));
  mix(static_cast<std::uint64_t>(k.trace));
  mix(static_cast<std::uint64_t>(std::hash<std::string>{}(k.machine)));
  return h;
}

// ---------------------------------------------------------------------------
// MachinePool
// ---------------------------------------------------------------------------

MachinePool::Lease::~Lease() {
  if (pool_ != nullptr && machine_ != nullptr) {
    pool_->release(std::move(machine_));
  }
}

MachinePool::Lease MachinePool::acquire() {
  std::unique_ptr<sim::Machine> m;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++acquired_;
    if (!free_.empty()) {
      m = std::move(free_.back());
      free_.pop_back();
    } else {
      ++created_;
    }
  }
  if (m == nullptr) m = std::make_unique<sim::Machine>(params_);
  return Lease(this, std::move(m));
}

void MachinePool::release(std::unique_ptr<sim::Machine> m) {
  // Return the machine cold so the next lease starts from the same state a
  // fresh construction would (the runners also reset on entry, but a cold
  // pool keeps leaked state impossible by construction).
  m->reset();
  std::lock_guard<std::mutex> lock(mu_);
  free_.push_back(std::move(m));
}

std::uint64_t MachinePool::created() const {
  std::lock_guard<std::mutex> lock(mu_);
  return created_;
}

std::uint64_t MachinePool::acquired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return acquired_;
}

// ---------------------------------------------------------------------------
// StudyResult
// ---------------------------------------------------------------------------

const CellValue& StudyResult::at(const CellKey& key) const {
  const auto it = cells_.find(key);
  if (it == cells_.end()) {
    throw std::out_of_range(
        "StudyResult: cell not in plan (benchmark/config/trial outside the "
        "plan cross-product, or serial baseline not requested)");
  }
  return it->second;
}

const RunResult& StudyResult::single(npb::Benchmark b, std::size_t config_index,
                                     int trial) const {
  const RunOptions& opt = plan_.options();
  return at(CellKey::from(b, plan_.configs().at(config_index), opt,
                          opt.trial_seed(trial)))
      .single;
}

const RunResult& StudyResult::serial(npb::Benchmark b, int trial) const {
  const RunOptions& opt = plan_.options();
  return at(CellKey::from(b, serial_config(), opt, opt.trial_seed(trial)))
      .single;
}

const PairResult& StudyResult::pair(std::size_t pair_index,
                                    std::size_t config_index, int trial) const {
  const RunOptions& opt = plan_.options();
  const auto& pr = plan_.pairs().at(pair_index);
  return at(CellKey::from(CellKey::Kind::kPair, pr.first, pr.second,
                          plan_.configs().at(config_index), opt,
                          opt.trial_seed(trial)))
      .pair;
}

double StudyResult::speedup(npb::Benchmark b, std::size_t config_index,
                            int trial) const {
  return serial(b, trial).wall_cycles /
         single(b, config_index, trial).wall_cycles;
}

TrialStats StudyResult::speedup_stats(npb::Benchmark b,
                                      std::size_t config_index) const {
  std::vector<double> speedups;
  const int n = plan_.options().trials;
  speedups.reserve(static_cast<std::size_t>(n));
  for (int t = 0; t < n; ++t) speedups.push_back(speedup(b, config_index, t));
  return summarize(speedups);
}

double StudyResult::pair_speedup(std::size_t pair_index, int program,
                                 std::size_t config_index, int trial) const {
  const auto& pr = plan_.pairs().at(pair_index);
  const npb::Benchmark b = program == 0 ? pr.first : pr.second;
  return serial(b, trial).wall_cycles /
         pair(pair_index, config_index, trial).program[program].wall_cycles;
}

// ---------------------------------------------------------------------------
// ExperimentEngine
// ---------------------------------------------------------------------------

ExperimentEngine::ExperimentEngine(int jobs) : jobs_(jobs < 1 ? 1 : jobs) {}

MachinePool& ExperimentEngine::pool_for(const sim::MachineParams& params) {
  const std::string key = params_pool_key(params);
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = pools_[key];
  if (slot == nullptr) slot = std::make_unique<MachinePool>(params);
  return *slot;
}

void ExperimentEngine::set_store(std::shared_ptr<CellStore> store) {
  std::lock_guard<std::mutex> lock(mu_);
  store_ = std::move(store);
}

bool ExperimentEngine::has_store() const {
  std::lock_guard<std::mutex> lock(mu_);
  return store_ != nullptr;
}

bool ExperimentEngine::store_eligible(const CellKey& key) noexcept {
  // Checked cells carry a CheckReport the stored envelope does not
  // serialize; persisting them would return finding-less results on reload.
  return key.check == sim::CheckMode::kOff;
}

const CellValue* ExperimentEngine::lookup(const CellKey& key) {
  std::shared_ptr<CellStore> store;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++cache_hits_;
      return &it->second;
    }
    store = store_;
  }
  if (store == nullptr || !store_eligible(key)) return nullptr;
  // Store I/O happens outside mu_ so a slow disk never serializes the
  // worker pool.  Entries are never erased while workers run (clear_cache
  // is not concurrent-safe by contract), so the returned pointer stays
  // valid after the lock drops.
  CellValue v;
  if (!store->load_cell(key, &v)) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = cache_.emplace(key, std::move(v)).first;
  ++store_hits_;
  return &it->second;
}

const CellValue& ExperimentEngine::memoize(const CellKey& key,
                                           CellValue value) {
  const CellValue* stored = nullptr;
  bool fresh = false;
  std::shared_ptr<CellStore> store;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto [it, inserted] = cache_.emplace(key, std::move(value));
    if (inserted) ++cache_misses_;
    stored = &it->second;
    fresh = inserted;
    store = store_;
  }
  if (fresh && store != nullptr && store_eligible(key)) {
    store->store_cell(key, *stored);
    std::lock_guard<std::mutex> lock(mu_);
    ++store_writes_;
  }
  return *stored;
}

CellValue ExperimentEngine::compute_cell(
    sim::Machine& machine, const CellKey& key, const StudyConfig& cfg,
    const RunOptions& opt) {
  CellValue v;
  if (key.kind == CellKey::Kind::kSingle) {
    v.single = run_single(machine, key.a, cfg, opt, key.seed);
  } else {
    v.pair = run_pair(machine, key.a, key.b, cfg, opt, key.seed);
  }
  return v;
}

void ExperimentEngine::enumerate_cells(
    const ExperimentPlan& plan,
    const std::function<void(const CellKey&, const StudyConfig&)>& fn) {
  const RunOptions& opt = plan.options();
  for (int t = 0; t < opt.trials; ++t) {
    const std::uint64_t seed = opt.trial_seed(t);
    for (const npb::Benchmark b : plan.benchmarks()) {
      for (const StudyConfig& cfg : plan.configs()) {
        fn(CellKey::from(b, cfg, opt, seed), cfg);
      }
    }
    for (const auto& [a, b] : plan.pairs()) {
      for (const StudyConfig& cfg : plan.configs()) {
        fn(CellKey::from(CellKey::Kind::kPair, a, b, cfg, opt, seed), cfg);
      }
    }
    if (plan.serial_baselines()) {
      // Every benchmark the plan mentions, deduplicated in first-mention
      // order so enumeration (and therefore dispatch) is deterministic.
      std::vector<npb::Benchmark> mentioned;
      const auto mention = [&mentioned](npb::Benchmark b) {
        for (const npb::Benchmark m : mentioned) {
          if (m == b) return;
        }
        mentioned.push_back(b);
      };
      for (const npb::Benchmark b : plan.benchmarks()) mention(b);
      for (const auto& [a, b] : plan.pairs()) {
        mention(a);
        mention(b);
      }
      for (const npb::Benchmark b : mentioned) {
        fn(CellKey::from(b, serial_config(), opt, seed), serial_config());
      }
    }
  }
}

StudyResult ExperimentEngine::run(const ExperimentPlan& plan) {
  // --par composes with --jobs by division: jobs cells in flight, each with
  // at most hardware/jobs LP threads, so the host is never oversubscribed.
  // Purely a host-side clamp — par is not in CellKey, results are identical.
  RunOptions opt = plan.options();
  opt.par =
      par::effective_par(opt.par, jobs_, std::thread::hardware_concurrency());

  // 1. Enumerate the plan's cells, deduplicating against both the cache and
  //    earlier occurrences within this plan.
  std::vector<Work> todo;
  std::unordered_set<CellKey, CellKeyHash> queued;
  enumerate_cells(plan, [&](const CellKey& key, const StudyConfig& cfg) {
    if (queued.contains(key)) {
      std::lock_guard<std::mutex> lock(mu_);
      ++cache_hits_;
      return;
    }
    if (lookup(key) != nullptr) return;  // lookup() counted the hit
    queued.insert(key);
    todo.push_back(Work{key, &cfg});
  });

  // 2. Simulate the missing cells across the worker pool; each worker owns
  //    one pooled machine for its whole batch.
  if (!todo.empty()) {
    MachinePool& pool = pool_for(opt.machine_params());
    std::vector<CellValue> computed(todo.size());
    const int workers =
        static_cast<int>(std::min<std::size_t>(
            static_cast<std::size_t>(jobs_), todo.size()));
    auto work_loop = [&](std::atomic<std::size_t>& next) {
      MachinePool::Lease lease = pool.acquire();
      for (std::size_t i = next.fetch_add(1); i < todo.size();
           i = next.fetch_add(1)) {
        computed[i] = compute_cell(*lease, todo[i].key, *todo[i].cfg, opt);
      }
    };
    if (workers <= 1) {
      std::atomic<std::size_t> next{0};
      work_loop(next);
    } else {
      std::atomic<std::size_t> next{0};
      std::vector<std::thread> threads;
      std::mutex err_mu;
      std::exception_ptr first_error;
      threads.reserve(static_cast<std::size_t>(workers));
      for (int w = 0; w < workers; ++w) {
        threads.emplace_back([&] {
          try {
            work_loop(next);
          } catch (...) {
            std::lock_guard<std::mutex> lock(err_mu);
            if (first_error == nullptr) first_error = std::current_exception();
            // Drain the queue so the other workers stop promptly.
            next.store(todo.size());
          }
        });
      }
      for (std::thread& t : threads) t.join();
      if (first_error != nullptr) std::rethrow_exception(first_error);
    }
    for (std::size_t i = 0; i < todo.size(); ++i) {
      memoize(todo[i].key, std::move(computed[i]));
    }
  }

  // 3. Assemble the result table from the cache.
  StudyResult result;
  result.plan_ = plan;
  enumerate_cells(plan, [&](const CellKey& key, const StudyConfig&) {
    if (result.cells_.contains(key)) return;
    std::lock_guard<std::mutex> lock(mu_);
    result.cells_.emplace(key, cache_.at(key));
  });
  return result;
}

model::Placement placement_for(const StudyConfig& cfg) {
  static const sim::Topology paxville = sim::Topology::paxville();
  return placement_for(cfg, paxville);
}

model::Placement placement_for(const StudyConfig& cfg,
                               const sim::Topology& topo) {
  model::Placement pl;
  const std::size_t n = cfg.cpus.size();
  pl.threads = n == 0 ? 1 : static_cast<int>(n);
  std::vector<int> per_core(
      static_cast<std::size_t>(std::max(1, topo.total_cores())), 0);
  std::vector<int> per_chip(
      static_cast<std::size_t>(std::max(1, topo.packages)), 0);
  for (std::size_t r = 0; r < n && r < pl.rank_core.size(); ++r) {
    const sim::LogicalCpu c = cfg.cpus[r];
    const int core_id = topo.core_id(c.chip, c.core);
    pl.rank_core[r] = static_cast<std::uint8_t>(core_id);
    if (core_id >= 0 && static_cast<std::size_t>(core_id) < per_core.size()) {
      ++per_core[static_cast<std::size_t>(core_id)];
    }
    if (c.chip < per_chip.size()) ++per_chip[c.chip];
  }
  int cores = 0;
  int share = 1;
  for (const int occ : per_core) {
    if (occ > 0) ++cores;
    share = std::max(share, occ);
  }
  int chips = 0;
  int chip_share = 1;
  for (const int occ : per_chip) {
    if (occ > 0) ++chips;
    chip_share = std::max(chip_share, occ);
  }
  pl.cores_used = std::max(1, cores);
  pl.chips_used = std::max(1, chips);
  pl.contexts_per_core = share;
  pl.contexts_per_chip = chip_share;
  return pl;
}

std::shared_ptr<const model::KernelProfile> ExperimentEngine::profile(
    npb::Benchmark b, const RunOptions& opt, std::uint64_t seed) {
  const std::string key = profile_key(b, opt, seed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = profiles_.find(key);
    if (it != profiles_.end()) return it->second;
  }
  // Profile outside the lock; a concurrent duplicate computes the identical
  // (deterministic) profile and first insertion wins.
  ProfiledRun run = run_profiled_serial(b, opt, seed);
  auto prof =
      std::make_shared<const model::KernelProfile>(std::move(run.profile));
  std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] = profiles_.emplace(key, std::move(prof));
  if (inserted) profile_host_sec_[key] = run.result.host_sim_sec;
  return it->second;
}

PredictionResult ExperimentEngine::predict(npb::Benchmark b,
                                           const StudyConfig& cfg,
                                           const RunOptions& opt,
                                           std::uint64_t seed) {
  // Persistent tier first: a stored prediction answers without profiling or
  // evaluating the model at all (the O(1) serve path).
  const CellKey pkey =
      CellKey::from(CellKey::Kind::kPredict, b, b, cfg, opt, seed);
  std::shared_ptr<CellStore> store;
  {
    std::lock_guard<std::mutex> lock(mu_);
    store = store_;
  }
  PredictionResult out;
  if (store != nullptr && store_eligible(pkey) &&
      store->load_prediction(pkey, &out.prediction)) {
    out.store_hit = true;
    std::lock_guard<std::mutex> lock(mu_);
    ++store_hits_;
    return out;
  }
  const std::string key = profile_key(b, opt, seed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.profile_reused = profiles_.contains(key);
  }
  const std::shared_ptr<const model::KernelProfile> prof =
      this->profile(b, opt, seed);
  if (!out.profile_reused) {
    std::lock_guard<std::mutex> lock(mu_);
    out.profile_host_sec = profile_host_sec_[key];
  }
  // paxlint: allow(wallclock) -- predict_host_sec provenance timing; the prediction itself is host-time-free
  const auto t0 = std::chrono::steady_clock::now();
  const sim::MachineParams mp = opt.machine_params();
  out.prediction =
      model::predict(*prof, mp, placement_for(cfg, mp.resolved_topology()));
  // paxlint: allow(wallclock) -- predict_host_sec provenance timing; the prediction itself is host-time-free
  const auto t1 = std::chrono::steady_clock::now();
  out.predict_host_sec = std::chrono::duration<double>(t1 - t0).count();
  if (store != nullptr && store_eligible(pkey)) {
    store->store_prediction(pkey, out.prediction);
    std::lock_guard<std::mutex> lock(mu_);
    ++store_writes_;
  }
  return out;
}

RunResult ExperimentEngine::single(npb::Benchmark b, const StudyConfig& cfg,
                                   const RunOptions& opt, std::uint64_t seed) {
  const CellKey key = CellKey::from(b, cfg, opt, seed);
  if (const CellValue* hit = lookup(key)) return hit->single;
  MachinePool::Lease lease = pool_for(opt.machine_params()).acquire();
  return memoize(key, compute_cell(*lease, key, cfg, opt)).single;
}

RunResult ExperimentEngine::serial(npb::Benchmark b, const RunOptions& opt,
                                   std::uint64_t seed) {
  return single(b, serial_config(), opt, seed);
}

PairResult ExperimentEngine::pair(npb::Benchmark a, npb::Benchmark b,
                                  const StudyConfig& cfg, const RunOptions& opt,
                                  std::uint64_t seed) {
  const CellKey key = CellKey::from(CellKey::Kind::kPair, a, b, cfg, opt, seed);
  if (const CellValue* hit = lookup(key)) return hit->pair;
  MachinePool::Lease lease = pool_for(opt.machine_params()).acquire();
  return memoize(key, compute_cell(*lease, key, cfg, opt)).pair;
}

ScheduledResult ExperimentEngine::scheduled(
    const std::vector<npb::Benchmark>& benches, const StudyConfig& cfg,
    sched::Scheduler& policy, const RunOptions& opt, std::uint64_t seed) {
  MachinePool::Lease lease = pool_for(opt.machine_params()).acquire();
  return run_scheduled(*lease, benches, cfg, policy, opt, seed);
}

TimelineResult ExperimentEngine::timeline(npb::Benchmark b,
                                          const StudyConfig& cfg,
                                          const RunOptions& opt,
                                          std::uint64_t seed) {
  MachinePool::Lease lease = pool_for(opt.machine_params()).acquire();
  sim::Machine& machine = *lease;
  machine.reset();

  sim::AddressSpace space(0);
  perf::CounterSet counters;
  TimelineResult out;

  auto kernel = npb::make_kernel(b);
  kernel->setup(space, npb::ProblemConfig{opt.cls, seed});
  xomp::Team team(machine, cfg.cpus, &counters, space);
  for (int chip = 0; chip < machine.params().chips; ++chip) {
    for (int core = 0; core < machine.params().cores_per_chip; ++core) {
      int n = 0;
      for (const sim::LogicalCpu c : cfg.cpus) {
        if (c.chip == chip && c.core == core) ++n;
      }
      machine.core(chip, core).set_active_contexts(n > 0 ? n : 1);
    }
  }

  double prev_wall = 0;
  for (int s = 0; s < kernel->total_steps(); ++s) {
    kernel->step(team, s);
    team.flush();
    out.timeline.sample(counters);
    const double w = team.wall_time();
    out.step_wall.push_back(w - prev_wall);
    prev_wall = w;
  }

  out.run.wall_cycles = team.wall_time();
  out.run.counters = counters;
  out.run.metrics = perf::derive_metrics(out.run.counters);
  out.run.verified = !opt.verify || kernel->verify();
  return out;
}

TraceResult ExperimentEngine::trace(npb::Benchmark b, const StudyConfig& cfg,
                                    const RunOptions& opt,
                                    std::uint64_t seed) {
  RunOptions topt = opt;
  if (topt.trace_mode == sim::TraceMode::kOff) {
    topt.trace_mode = sim::TraceMode::kStacks;  // trace() implies tracing
  }
  MachinePool::Lease lease = pool_for(topt.machine_params()).acquire();
  return run_traced(*lease, b, cfg, topt, seed);
}

void ExperimentEngine::for_each(std::size_t n,
                                const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t workers =
      std::min<std::size_t>(static_cast<std::size_t>(jobs_), n);
  std::atomic<std::size_t> next{0};
  auto loop = [&] {
    for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
      fn(i);
    }
  };
  if (workers <= 1) {
    loop();
    return;
  }
  std::vector<std::thread> threads;
  std::mutex err_mu;
  std::exception_ptr first_error;
  threads.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    threads.emplace_back([&] {
      try {
        loop();
      } catch (...) {
        std::lock_guard<std::mutex> lock(err_mu);
        if (first_error == nullptr) first_error = std::current_exception();
        next.store(n);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

EngineStats ExperimentEngine::stats() const {
  EngineStats s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.cache_hits = cache_hits_;
    s.cache_misses = cache_misses_;
    s.store_hits = store_hits_;
    s.store_writes = store_writes_;
    // paxlint: allow(determinism) -- integer sums over all pools; addition commutes, so hash order cannot change the totals
    for (const auto& [key, pool] : pools_) {
      (void)key;
      s.machines_created += pool->created();
      s.machines_acquired += pool->acquired();
    }
  }
  return s;
}

void ExperimentEngine::clear_cache() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.clear();
  profiles_.clear();
  profile_host_sec_.clear();
}

}  // namespace paxsim::harness
