// paxsim/harness/engine.hpp
//
// The experiment engine — the execution layer every study driver (the CLI
// and each bench/ artifact) routes through instead of hand-rolling
// benchmark x configuration x trial loops.
//
//   * MachinePool      recycles sim::Machine instances across trials via
//                      reset() instead of reconstructing them.  A recycled
//                      machine is bit-identical to a fresh one (enforced by
//                      the engine determinism tests).
//   * result cache     memoizes every simulated cell, keyed by
//                      (kind, benchmarks, config fingerprint, problem class,
//                      machine scale, seed, verify).  Serial baselines and
//                      repeated cells are simulated exactly once per engine
//                      lifetime, however many studies request them.
//   * worker dispatch  independent cells fan out over host threads (--jobs).
//                      Each worker simulates on its own pooled machine, so
//                      simulated virtual time stays fully deterministic: the
//                      result table is identical for any job count.
//   * ExperimentPlan   a declarative cross-product (benchmarks and/or pairs,
//                      over configurations, over trial seeds, with optional
//                      serial baselines) that ExperimentEngine::run()
//                      evaluates into a StudyResult table.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "harness/config.hpp"
#include "harness/runner.hpp"
#include "harness/sched_runner.hpp"
#include "harness/stats.hpp"
#include "model/predict.hpp"
#include "perf/timeline.hpp"

namespace paxsim::harness {

/// Semantic fingerprint of a configuration: name, architecture, HT state,
/// thread count and the exact hardware-context list.  Cache keys use this
/// rather than the bare name so ad-hoc configurations (e.g. the thread-
/// scaling ladder) memoize correctly even when their names collide.
[[nodiscard]] std::string config_fingerprint(const StudyConfig& cfg);

/// Counters describing what the engine actually did.
struct EngineStats {
  std::uint64_t cache_hits = 0;      ///< cells answered from the in-RAM cache
  std::uint64_t cache_misses = 0;    ///< cells that had to be simulated
  std::uint64_t store_hits = 0;      ///< cells answered from the on-disk store
  std::uint64_t store_writes = 0;    ///< freshly simulated cells persisted
  std::uint64_t machines_created = 0;   ///< sim::Machine constructions
  std::uint64_t machines_acquired = 0;  ///< pool acquisitions (incl. reuse)

  [[nodiscard]] double hit_rate() const noexcept {
    const double total =
        static_cast<double>(cache_hits) + static_cast<double>(cache_misses);
    return total == 0 ? 0.0 : static_cast<double>(cache_hits) / total;
  }
  [[nodiscard]] std::uint64_t machines_reused() const noexcept {
    return machines_acquired - machines_created;
  }
};

/// A thread-safe pool of reset-recycled machines of one geometry.
class MachinePool {
 public:
  explicit MachinePool(const sim::MachineParams& params) : params_(params) {}

  /// RAII handle to a pooled machine; returns (and resets) it on
  /// destruction.  Move-only, confined to one host thread while held.
  class Lease {
   public:
    Lease(Lease&& o) noexcept
        : pool_(o.pool_), machine_(std::move(o.machine_)) {
      o.pool_ = nullptr;
    }
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease();

    [[nodiscard]] sim::Machine& operator*() noexcept { return *machine_; }
    [[nodiscard]] sim::Machine* operator->() noexcept { return machine_.get(); }

   private:
    friend class MachinePool;
    Lease(MachinePool* pool, std::unique_ptr<sim::Machine> m)
        : pool_(pool), machine_(std::move(m)) {}

    MachinePool* pool_;
    std::unique_ptr<sim::Machine> machine_;
  };

  /// Hands out a cold machine: a recycled one when available, else new.
  [[nodiscard]] Lease acquire();

  [[nodiscard]] const sim::MachineParams& params() const noexcept {
    return params_;
  }
  [[nodiscard]] std::uint64_t created() const;
  [[nodiscard]] std::uint64_t acquired() const;

 private:
  void release(std::unique_ptr<sim::Machine> m);

  sim::MachineParams params_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<sim::Machine>> free_;
  std::uint64_t created_ = 0;
  std::uint64_t acquired_ = 0;
};

/// Identity of one memoizable simulation cell.  kPredict keys identify
/// analytical-prediction answers in the persistent result store (they never
/// appear in the simulation cell cache or in plan enumeration).
struct CellKey {
  enum class Kind : std::uint8_t { kSingle, kPair, kPredict };

  Kind kind = Kind::kSingle;
  npb::Benchmark a{};
  npb::Benchmark b{};      ///< == a for singles
  std::string config;      ///< config_fingerprint of the configuration
  npb::ProblemClass cls{};
  double machine_scale = 0;
  std::uint64_t seed = 0;
  bool verify = true;
  std::size_t grain = 1;   ///< RunOptions::grain (changes interleaving)
  /// RunOptions::sched_kind / sched_chunk: a loop-schedule override changes
  /// the interleaving exactly like grain does, so overridden cells never
  /// alias kernel-default ones.  -1 / 0 is the kernel-default identity.
  int sched_kind = -1;
  std::size_t sched_chunk = 0;
  /// RunOptions::check_mode: checked cells route through the reference path
  /// and carry a CheckReport, so they never alias unchecked ones.
  sim::CheckMode check = sim::CheckMode::kOff;
  /// RunOptions::trace_mode: traced cells route through the reference path
  /// and flush at region boundaries (different counter rounding), so they
  /// never alias untraced ones.
  sim::TraceMode trace = sim::TraceMode::kOff;
  /// RunOptions::topology projected through Topology::fingerprint(): cells
  /// simulated on different machines never alias.  Empty for the default
  /// (null-topology) Paxville machine.
  std::string machine;

  /// The one place RunOptions is projected onto a cell identity.  Every
  /// result-relevant RunOptions field must flow through here (trials and
  /// base_seed are plan-level: the per-trial seed is the @p seed argument);
  /// a sizeof tripwire in engine.cpp fails the build when RunOptions grows
  /// a field this factory has not been audited against.
  [[nodiscard]] static CellKey from(Kind kind, npb::Benchmark a,
                                    npb::Benchmark b, const StudyConfig& cfg,
                                    const RunOptions& opt, std::uint64_t seed);
  /// Single-program shorthand (b == a).
  [[nodiscard]] static CellKey from(npb::Benchmark b, const StudyConfig& cfg,
                                    const RunOptions& opt, std::uint64_t seed) {
    return from(Kind::kSingle, b, b, cfg, opt, seed);
  }

  friend bool operator==(const CellKey&, const CellKey&) = default;
};

struct CellKeyHash {
  [[nodiscard]] std::size_t operator()(const CellKey& k) const noexcept;
};

/// Version of the explicit CellKey wire fingerprint below.  Bump whenever a
/// field changes meaning, width or order — on-disk stores key entries by
/// the digest of this serialization, so a silent format change would alias
/// incompatible results.  v2 added the schedule-override fields
/// (sched_kind/sched_chunk) for the paxtune schedule axis.
inline constexpr int kCellFingerprintVersion = 2;

/// Canonical serialized identity of a cell: every CellKey field rendered
/// explicitly (field-by-field, fixed-width hex for scalars, length-prefixed
/// bytes for strings), prefixed with kCellFingerprintVersion.  Deliberately
/// independent of in-memory struct layout, compiler, ABI and endianness —
/// the same key fingerprints identically on every build, so on-disk stores
/// written by different binaries interoperate.  Injective: two distinct
/// keys can never serialize equal (golden-fingerprint test enforced).
[[nodiscard]] std::string cell_fingerprint(const CellKey& k);

/// 128-bit content digest of a fingerprint as 32 lowercase hex characters —
/// the on-disk address of a cell (serve::ResultStore's object name).
[[nodiscard]] std::string cell_digest(std::string_view fingerprint);

/// The value of one simulation cell: the single-program result, or the
/// pair result, according to the key's kind.
struct CellValue {
  RunResult single;
  PairResult pair;
};

/// Abstract persistent cell store the engine can write through to
/// (serve::ResultStore is the on-disk implementation; the indirection keeps
/// harness/ below serve/ in the layering).  Implementations must be
/// thread-safe: engine workers load and store cells concurrently.
class CellStore {
 public:
  virtual ~CellStore() = default;

  /// Loads the stored result for @p key; false when absent (or rejected —
  /// version mismatch, corruption — which the store treats as absence).
  virtual bool load_cell(const CellKey& key, CellValue* out) = 0;
  /// Persists a freshly simulated cell (atomic, last-writer-wins between
  /// writers computing the identical deterministic value).
  virtual void store_cell(const CellKey& key, const CellValue& value) = 0;

  /// Same contract for analytical predictions (CellKey::Kind::kPredict).
  virtual bool load_prediction(const CellKey& key, model::Prediction* out) = 0;
  virtual void store_prediction(const CellKey& key,
                                const model::Prediction& p) = 0;
};

/// A declarative experiment: benchmarks and/or co-scheduled pairs, crossed
/// with configurations and trial seeds.  Build one, hand it to
/// ExperimentEngine::run(), read the StudyResult.
class ExperimentPlan {
 public:
  /// @p options supplies the problem class, machine scale, trial count,
  /// seeding and verification policy for every cell of the plan.
  ExperimentPlan(RunOptions options, std::vector<StudyConfig> configs)
      : options_(options), configs_(std::move(configs)) {}

  ExperimentPlan& add_benchmark(npb::Benchmark b) {
    benchmarks_.push_back(b);
    return *this;
  }
  ExperimentPlan& add_benchmarks(const std::vector<npb::Benchmark>& bs) {
    benchmarks_.insert(benchmarks_.end(), bs.begin(), bs.end());
    return *this;
  }
  /// Adds one co-scheduled pair (threads split evenly, as run_pair does).
  ExperimentPlan& add_pair(npb::Benchmark a, npb::Benchmark b) {
    pairs_.emplace_back(a, b);
    return *this;
  }
  /// All unordered pairs of @p bs, identical pairs included — the Figure-5
  /// cross-product.
  ExperimentPlan& add_all_pairs(const std::vector<npb::Benchmark>& bs) {
    for (std::size_t i = 0; i < bs.size(); ++i) {
      for (std::size_t j = i; j < bs.size(); ++j) pairs_.emplace_back(bs[i], bs[j]);
    }
    return *this;
  }
  /// Also computes the Serial-config baseline for every benchmark the plan
  /// mentions (single or pair member), per trial seed — the denominators of
  /// every speedup the drivers report.
  ExperimentPlan& with_serial_baselines(bool on = true) {
    serial_baselines_ = on;
    return *this;
  }
  ExperimentPlan& trials(int n) {
    options_.trials = n;
    return *this;
  }

  [[nodiscard]] const RunOptions& options() const noexcept { return options_; }
  [[nodiscard]] const std::vector<StudyConfig>& configs() const noexcept {
    return configs_;
  }
  [[nodiscard]] const std::vector<npb::Benchmark>& benchmarks() const noexcept {
    return benchmarks_;
  }
  [[nodiscard]] const std::vector<std::pair<npb::Benchmark, npb::Benchmark>>&
  pairs() const noexcept {
    return pairs_;
  }
  [[nodiscard]] bool serial_baselines() const noexcept {
    return serial_baselines_;
  }

 private:
  RunOptions options_;
  std::vector<StudyConfig> configs_;
  std::vector<npb::Benchmark> benchmarks_;
  std::vector<std::pair<npb::Benchmark, npb::Benchmark>> pairs_;
  bool serial_baselines_ = false;
};

/// The evaluated result table of one plan.  Indexing mirrors the plan:
/// configurations by position in plan.configs(), pairs by position in
/// plan.pairs(), trials by trial number (seed = options.trial_seed(t)).
class StudyResult {
 public:
  [[nodiscard]] const ExperimentPlan& plan() const noexcept { return plan_; }

  /// Single-program result of @p b on configuration @p config_index.
  [[nodiscard]] const RunResult& single(npb::Benchmark b,
                                        std::size_t config_index,
                                        int trial = 0) const;
  /// Serial-baseline result of @p b (requires with_serial_baselines()).
  [[nodiscard]] const RunResult& serial(npb::Benchmark b, int trial = 0) const;
  /// Pair result of plan.pairs()[pair_index] on @p config_index.
  [[nodiscard]] const PairResult& pair(std::size_t pair_index,
                                       std::size_t config_index,
                                       int trial = 0) const;

  /// serial wall / single wall for one trial.
  [[nodiscard]] double speedup(npb::Benchmark b, std::size_t config_index,
                               int trial = 0) const;
  /// Speedup summarised over all plan trials (the Figure-3 cell).
  [[nodiscard]] TrialStats speedup_stats(npb::Benchmark b,
                                         std::size_t config_index) const;
  /// Per-program pair speedup over that program's own serial baseline.
  [[nodiscard]] double pair_speedup(std::size_t pair_index, int program,
                                    std::size_t config_index,
                                    int trial = 0) const;

 private:
  friend class ExperimentEngine;

  [[nodiscard]] const CellValue& at(const CellKey& key) const;

  ExperimentPlan plan_{RunOptions{}, {}};
  std::unordered_map<CellKey, CellValue, CellKeyHash> cells_;
};

/// Thread placement the analytical model needs from a Table-1 row: team
/// size, distinct cores/chips occupied, the worst-case SMT sharing degree
/// and each rank's physical core.
[[nodiscard]] model::Placement placement_for(const StudyConfig& cfg);

/// Topology-aware variant: core identities and per-chip occupancy come from
/// @p topo's accessors instead of the Paxville 2-cores-per-chip arithmetic.
[[nodiscard]] model::Placement placement_for(const StudyConfig& cfg,
                                             const sim::Topology& topo);

/// Outcome of ExperimentEngine::predict(): the analytical prediction plus
/// the host-time split that backs the "N x faster than simulation" claim.
struct PredictionResult {
  model::Prediction prediction;
  /// Host seconds of the profiling run backing this prediction; 0 when the
  /// profile was answered from the engine's memo cache.
  double profile_host_sec = 0;
  /// Host seconds of the analytical evaluation itself (microseconds).
  double predict_host_sec = 0;
  bool profile_reused = false;   ///< profile came from the memo cache
  /// The prediction was answered from the attached persistent store — no
  /// profiling and no model evaluation happened at all.
  bool store_hit = false;
};

/// Per-step timeline of one run (the VTune sampling view): produced by
/// ExperimentEngine::timeline() for the timeline drivers.
struct TimelineResult {
  RunResult run;                  ///< whole-run counters and metrics
  perf::Timeline timeline;        ///< per-step counter deltas
  std::vector<double> step_wall;  ///< per-step wall-cycle deltas
};

/// The engine: machine pool + memoized cell cache + worker dispatch.
class ExperimentEngine {
 public:
  /// @p jobs is the host-thread worker count for run()/for_each(); 1 runs
  /// everything inline on the caller's thread.
  explicit ExperimentEngine(int jobs = 1);

  ExperimentEngine(const ExperimentEngine&) = delete;
  ExperimentEngine& operator=(const ExperimentEngine&) = delete;

  [[nodiscard]] int jobs() const noexcept { return jobs_; }

  /// Attaches a persistent cell store (nullptr detaches).  With a store
  /// attached, cache misses consult the store before simulating, and every
  /// freshly simulated eligible cell is written through.  Checked cells
  /// (check_mode != kOff) bypass the store: their CheckReport payload is
  /// not part of the stored envelope, so persisting them would drop
  /// findings on reload.  Detached (the default), behaviour is bit-
  /// identical to the pre-store engine.
  void set_store(std::shared_ptr<CellStore> store);
  [[nodiscard]] bool has_store() const;

  /// True when @p key's value survives a store round-trip losslessly (the
  /// eligibility rule set_store documents).
  [[nodiscard]] static bool store_eligible(const CellKey& key) noexcept;

  /// Evaluates @p plan: dedupes its cells against the cache, simulates the
  /// missing ones across the worker pool, and assembles the result table.
  /// Throws if any cell fails numeric verification (when options.verify).
  StudyResult run(const ExperimentPlan& plan);

  /// Memoized single-cell entry points (pooled machine on miss).
  RunResult single(npb::Benchmark b, const StudyConfig& cfg,
                   const RunOptions& opt, std::uint64_t seed);
  RunResult serial(npb::Benchmark b, const RunOptions& opt,
                   std::uint64_t seed);
  PairResult pair(npb::Benchmark a, npb::Benchmark b, const StudyConfig& cfg,
                  const RunOptions& opt, std::uint64_t seed);

  /// Analytical prediction of @p b on @p cfg — the instant tier next to
  /// single().  Profiles @p b once per (class, scale, seed, grain) with
  /// run_profiled_serial (memoized for the engine's lifetime), then
  /// evaluates model::predict for the configuration's placement.  Costs one
  /// serial simulation on first touch and microseconds afterwards.
  PredictionResult predict(npb::Benchmark b, const StudyConfig& cfg,
                           const RunOptions& opt, std::uint64_t seed);

  /// The memoized profile predict() uses (profiling on first touch) —
  /// exposed for drivers that evaluate the model directly.
  std::shared_ptr<const model::KernelProfile> profile(npb::Benchmark b,
                                                      const RunOptions& opt,
                                                      std::uint64_t seed);

  /// Scheduler-policy run on a pooled machine.  Not memoized: policies are
  /// stateful objects the cache cannot key.
  ScheduledResult scheduled(const std::vector<npb::Benchmark>& benches,
                            const StudyConfig& cfg, sched::Scheduler& policy,
                            const RunOptions& opt, std::uint64_t seed);

  /// Per-step sampled run on a pooled machine.  Not memoized (the timeline
  /// is not part of the cell table).  Does not throw on verification
  /// failure; the caller inspects result.run.verified.
  TimelineResult timeline(npb::Benchmark b, const StudyConfig& cfg,
                          const RunOptions& opt, std::uint64_t seed);

  /// Traced run on a pooled machine (run_traced): CPI stall stacks,
  /// per-region aggregates and ring-buffered events per opt.trace_mode
  /// (kStacks is substituted when the caller left it kOff).  Not memoized:
  /// trace reports are not part of the cell table.
  TraceResult trace(npb::Benchmark b, const StudyConfig& cfg,
                    const RunOptions& opt, std::uint64_t seed);

  /// Host-parallel index map over [0, n) on the engine's worker pool — for
  /// cell shapes the cache cannot key (e.g. scheduler-policy studies).
  /// @p fn must synchronise any shared mutable state itself; writing to
  /// distinct pre-sized slots per index is the intended pattern.
  void for_each(std::size_t n, const std::function<void(std::size_t)>& fn);

  [[nodiscard]] EngineStats stats() const;
  void clear_cache();

 private:
  /// One enumerated cell of a plan plus what is needed to simulate it.
  struct Work {
    CellKey key;
    const StudyConfig* cfg = nullptr;
  };

  /// Invokes @p fn for every cell the plan requests (duplicates included).
  static void enumerate_cells(const ExperimentPlan& plan,
                              const std::function<void(const CellKey&,
                                                       const StudyConfig&)>& fn);

  MachinePool& pool_for(const sim::MachineParams& params);
  CellValue compute_cell(sim::Machine& machine, const CellKey& key,
                         const StudyConfig& cfg, const RunOptions& opt);
  /// Cache lookup + stats accounting; falls through to the attached store
  /// (admitting a store hit into the RAM cache); returns nullptr on miss.
  const CellValue* lookup(const CellKey& key);
  /// Inserts a freshly simulated cell (counts a miss) and writes it
  /// through to the attached store when eligible.
  const CellValue& memoize(const CellKey& key, CellValue value);

  int jobs_;
  std::shared_ptr<CellStore> store_;  ///< set_store; guarded by mu_
  mutable std::mutex mu_;  ///< guards cache_, pools_, hit/miss counters
  std::unordered_map<CellKey, CellValue, CellKeyHash> cache_;
  std::unordered_map<std::string, std::unique_ptr<MachinePool>> pools_;
  /// Memoized kernel profiles, keyed by (bench, class, scale, seed, grain).
  /// Guarded by mu_; the shared_ptr values are immutable once inserted.
  std::unordered_map<std::string,
                     std::shared_ptr<const model::KernelProfile>>
      profiles_;
  std::unordered_map<std::string, double> profile_host_sec_;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;
  std::uint64_t store_hits_ = 0;
  std::uint64_t store_writes_ = 0;
};

}  // namespace paxsim::harness
