#include "harness/plot.hpp"

#include <fstream>
#include <stdexcept>

namespace paxsim::harness {
namespace {

std::ofstream open_or_throw(const std::string& path) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot write " + path);
  return f;
}

/// Quotes a string for gnuplot double-quoted context.
std::string q(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string write_bar_chart(const std::string& dir, const std::string& stem,
                            const BarChart& chart) {
  const std::string dat = dir + "/" + stem + ".dat";
  const std::string gp = dir + "/" + stem + ".gp";
  {
    std::ofstream f = open_or_throw(dat);
    f << "# " << chart.title << "\n# group";
    for (const auto& s : chart.series) f << '\t' << s;
    f << '\n';
    for (std::size_t g = 0; g < chart.groups.size(); ++g) {
      f << chart.groups[g];
      for (const double v : chart.values[g]) f << '\t' << v;
      f << '\n';
    }
  }
  {
    std::ofstream f = open_or_throw(gp);
    f << "set terminal pngcairo size 1100,520\n"
      << "set output " << q(stem + ".png") << "\n"
      << "set title " << q(chart.title) << "\n"
      << "set ylabel " << q(chart.ylabel) << "\n"
      << "set style data histogram\n"
      << "set style histogram clustered gap 1\n"
      << "set style fill solid 0.8 border -1\n"
      << "set boxwidth 0.9\n"
      << "set key outside right\n"
      << "set xtics rotate by -20\n"
      << "plot ";
    for (std::size_t s = 0; s < chart.series.size(); ++s) {
      if (s != 0) f << ", \\\n     ";
      f << q(stem + ".dat") << " using " << (s + 2)
        << (s == 0 ? ":xtic(1)" : "") << " title " << q(chart.series[s]);
    }
    f << '\n';
  }
  return gp;
}

std::string write_box_chart(const std::string& dir, const std::string& stem,
                            const BoxChart& chart) {
  const std::string dat = dir + "/" + stem + ".dat";
  const std::string gp = dir + "/" + stem + ".gp";
  {
    std::ofstream f = open_or_throw(dat);
    f << "# x\tmin\tq1\tmedian\tq3\tmax\tlabel\n";
    for (std::size_t i = 0; i < chart.boxes.size(); ++i) {
      const BoxStats& b = chart.boxes[i];
      f << i + 1 << '\t' << b.min << '\t' << b.q1 << '\t' << b.median << '\t'
        << b.q3 << '\t' << b.max << '\t' << chart.labels[i] << '\n';
    }
  }
  {
    std::ofstream f = open_or_throw(gp);
    f << "set terminal pngcairo size 900,520\n"
      << "set output " << q(stem + ".png") << "\n"
      << "set title " << q(chart.title) << "\n"
      << "set ylabel " << q(chart.ylabel) << "\n"
      << "set boxwidth 0.4\n"
      << "set style fill empty\n"
      << "set xrange [0.4:" << chart.boxes.size() + 0.6 << "]\n"
      << "set xtics (";
    for (std::size_t i = 0; i < chart.labels.size(); ++i) {
      if (i != 0) f << ", ";
      f << q(chart.labels[i]) << ' ' << i + 1;
    }
    f << ") rotate by -20\n"
      // candlesticks: x box_min whisker_min whisker_max box_max (+ median)
      << "plot " << q(stem + ".dat")
      << " using 1:3:2:6:5 with candlesticks notitle whiskerbars, \\\n"
      << "     " << q(stem + ".dat")
      << " using 1:4:4:4:4 with candlesticks lt -1 notitle\n";
  }
  return gp;
}

}  // namespace paxsim::harness
