// paxsim/harness/plot.hpp
//
// Gnuplot emitters: turn the benches' tables and box summaries into .dat /
// .gp file pairs so each paper figure can be rendered graphically
// (`gnuplot fig3_speedup.gp` -> fig3_speedup.png).  Pure file generation;
// no plotting dependency is linked.
#pragma once

#include <string>
#include <vector>

#include "harness/stats.hpp"

namespace paxsim::harness {

/// A grouped-bar dataset: one row per group (benchmark), one value per
/// series (configuration) — the layout of Figures 2 and 3.
struct BarChart {
  std::string title;
  std::string ylabel;
  std::vector<std::string> series;              ///< configuration names
  std::vector<std::string> groups;              ///< benchmark names
  std::vector<std::vector<double>> values;      ///< [group][series]
};

/// Writes `<stem>.dat` and `<stem>.gp` into @p dir.  Returns the .gp path.
/// Throws std::runtime_error on I/O failure.
std::string write_bar_chart(const std::string& dir, const std::string& stem,
                            const BarChart& chart);

/// A box-and-whiskers dataset: one five-number summary per x position —
/// the layout of Figure 5.
struct BoxChart {
  std::string title;
  std::string ylabel;
  std::vector<std::string> labels;
  std::vector<BoxStats> boxes;
};

/// Writes `<stem>.dat` and `<stem>.gp` (candlesticks) into @p dir.
std::string write_box_chart(const std::string& dir, const std::string& stem,
                            const BoxChart& chart);

}  // namespace paxsim::harness
