#include "harness/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <iomanip>
#include <ostream>

#include "perf/metrics.hpp"

namespace paxsim::harness {

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void Table::add_row(std::string label, std::vector<double> values) {
  rows_.push_back(Row{std::move(label), std::move(values)});
}

void Table::print(std::ostream& os, int precision) const {
  std::size_t label_w = 12;
  for (const Row& r : rows_) label_w = std::max(label_w, r.label.size() + 2);
  std::size_t col_w = 10;
  for (const std::string& c : columns_) col_w = std::max(col_w, c.size() + 2);

  os << "== " << title_ << " ==\n";
  os << std::left << std::setw(static_cast<int>(label_w)) << "";
  for (const std::string& c : columns_) {
    os << std::right << std::setw(static_cast<int>(col_w)) << c;
  }
  os << '\n';
  for (const Row& r : rows_) {
    os << std::left << std::setw(static_cast<int>(label_w)) << r.label;
    for (const double v : r.values) {
      os << std::right << std::setw(static_cast<int>(col_w)) << std::fixed
         << std::setprecision(precision) << v;
    }
    os << '\n';
  }
  os.unsetf(std::ios::fixed);
  os << '\n';
}

void Table::print_csv(std::ostream& os) const {
  for (const Row& r : rows_) {
    for (std::size_t c = 0; c < r.values.size() && c < columns_.size(); ++c) {
      os << title_ << ',' << r.label << ',' << columns_[c] << ','
         << r.values[c] << '\n';
    }
  }
}

void print_box_line(std::ostream& os, const std::string& label,
                    const BoxStats& box, double lo, double hi, int width) {
  auto pos = [&](double v) {
    if (hi <= lo) return 0;
    const double f = (v - lo) / (hi - lo);
    return static_cast<int>(std::clamp(f, 0.0, 1.0) * (width - 1));
  };
  std::string line(static_cast<std::size_t>(width), ' ');
  const int pmin = pos(box.min), p1 = pos(box.q1), pm = pos(box.median),
            p3 = pos(box.q3), pmax = pos(box.max);
  for (int i = pmin; i <= pmax; ++i) line[static_cast<std::size_t>(i)] = '-';
  for (int i = p1; i <= p3; ++i) line[static_cast<std::size_t>(i)] = '=';
  line[static_cast<std::size_t>(pmin)] = '|';
  line[static_cast<std::size_t>(pmax)] = '|';
  line[static_cast<std::size_t>(p1)] = '[';
  line[static_cast<std::size_t>(p3)] = ']';
  line[static_cast<std::size_t>(pm)] = '#';
  os << std::left << std::setw(14) << label << line << "  med="
     << std::fixed << std::setprecision(2) << box.median << " iqr=["
     << box.q1 << "," << box.q3 << "] range=[" << box.min << "," << box.max
     << "] n=" << box.n << '\n';
  os.unsetf(std::ios::fixed);
}

namespace {

void print_access(std::ostream& os, const char* role,
                  const check::AccessRecord& a) {
  os << "      " << role << ": thread " << a.tid << " on cpu "
     << static_cast<int>(a.cpu.flat()) << " (chip " << int{a.cpu.chip}
     << " core " << int{a.cpu.core} << " ctx " << int{a.cpu.context}
     << "), block " << a.block << ", t=" << std::fixed << std::setprecision(0)
     << a.vtime << '\n';
  os.unsetf(std::ios::fixed);
}

void json_access(std::ostream& os, const check::AccessRecord& a) {
  os << "{\"tid\":" << a.tid << ",\"cpu\":" << static_cast<int>(a.cpu.flat())
     << ",\"block\":" << a.block << ",\"vtime\":" << std::fixed
     << std::setprecision(0) << a.vtime << "}";
  os.unsetf(std::ios::fixed);
}

void json_escape(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}

}  // namespace

void print_check_report(std::ostream& os, const check::CheckReport& r) {
  os << "== check report (mode=" << sim::check_mode_name(r.mode) << ") ==\n";
  os << "  events: " << r.accesses << " accesses, " << r.fetches
     << " fetches, " << r.syncs << " syncs, " << r.team_events
     << " team events, " << r.audits << " audits\n";
  os << "  result: " << (r.clean() ? "CLEAN" : "FINDINGS") << " ("
     << r.races_total << " race observations on " << r.racy_words
     << " words, " << r.violations_total << " invariant violations)\n";
  if (!r.races.empty()) {
    os << "  races (first per word and kind, " << r.races.size()
       << " retained):\n";
    for (const check::RaceRecord& rec : r.races) {
      os << "    " << check::race_kind_name(rec.kind) << " on word 0x"
         << std::hex << rec.addr << std::dec << '\n';
      print_access(os, "prior  ", rec.prior);
      print_access(os, "current", rec.current);
    }
  }
  if (!r.violations.empty()) {
    os << "  invariant violations (" << r.violations.size() << " retained):\n";
    for (const check::Violation& v : r.violations) {
      os << "    [" << v.rule << "] " << v.detail << '\n';
    }
  }
  os << "  false sharing: " << r.line_conflicts
     << " line conflicts across " << r.conflicted_lines << " lines\n\n";
}

void print_check_report_json(std::ostream& os, const check::CheckReport& r) {
  os << "{\"mode\":\"" << sim::check_mode_name(r.mode) << "\""
     << ",\"clean\":" << (r.clean() ? "true" : "false")
     << ",\"accesses\":" << r.accesses << ",\"fetches\":" << r.fetches
     << ",\"syncs\":" << r.syncs << ",\"team_events\":" << r.team_events
     << ",\"audits\":" << r.audits << ",\"races_total\":" << r.races_total
     << ",\"racy_words\":" << r.racy_words
     << ",\"violations_total\":" << r.violations_total
     << ",\"line_conflicts\":" << r.line_conflicts
     << ",\"conflicted_lines\":" << r.conflicted_lines << ",\"races\":[";
  for (std::size_t i = 0; i < r.races.size(); ++i) {
    const check::RaceRecord& rec = r.races[i];
    if (i != 0) os << ',';
    os << "{\"kind\":\"" << check::race_kind_name(rec.kind) << "\",\"addr\":"
       << rec.addr << ",\"prior\":";
    json_access(os, rec.prior);
    os << ",\"current\":";
    json_access(os, rec.current);
    os << "}";
  }
  os << "],\"violations\":[";
  for (std::size_t i = 0; i < r.violations.size(); ++i) {
    if (i != 0) os << ',';
    os << "{\"rule\":\"";
    json_escape(os, r.violations[i].rule);
    os << "\",\"detail\":\"";
    json_escape(os, r.violations[i].detail);
    os << "\"}";
  }
  os << "]}\n";
}

void print_prediction(std::ostream& os, const std::string& label,
                      const model::Prediction& p, bool csv) {
  if (csv) {
    os << label << ",wall_cycles," << p.wall_cycles << '\n';
    os << label << ",speedup," << p.speedup << '\n';
    for (int m = 0; m < perf::kMetricCount; ++m) {
      os << label << ',' << perf::metric_name(m) << ','
         << perf::metric_value(p.metrics, m) << '\n';
    }
    return;
  }
  os << label << ": " << static_cast<std::uint64_t>(p.wall_cycles)
     << " cycles (predicted), speedup=" << p.speedup << '\n';
  os << "  cpi=" << p.metrics.cpi
     << " stalled=" << p.metrics.stalled_fraction
     << " l1_miss=" << p.metrics.l1d_miss_rate
     << " l2_miss=" << p.metrics.l2_miss_rate
     << " bp_rate=" << p.metrics.branch_prediction_rate
     << " prefetch_share=" << p.metrics.prefetch_bus_fraction << '\n';
}

void print_prediction_json(std::ostream& os, const std::string& bench,
                           const std::string& config,
                           const model::Prediction& p) {
  os << "{\"bench\":\"";
  json_escape(os, bench);
  os << "\",\"config\":\"";
  json_escape(os, config);
  os << "\",\"wall_cycles\":" << p.wall_cycles
     << ",\"serial_wall_cycles\":" << p.serial_wall_cycles
     << ",\"speedup\":" << p.speedup << ",\"cycles\":" << p.cycles
     << ",\"instructions\":" << p.instructions << ",\"metrics\":{";
  for (int m = 0; m < perf::kMetricCount; ++m) {
    if (m != 0) os << ',';
    os << '"' << perf::metric_name(m)
       << "\":" << perf::metric_value(p.metrics, m);
  }
  os << "},\"l1d_misses\":" << p.l1d_misses
     << ",\"l2_misses\":" << p.l2_misses << ",\"tc_misses\":" << p.tc_misses
     << ",\"dtlb_misses\":" << p.dtlb_misses
     << ",\"bus_reads\":" << p.bus_reads << ",\"bus_writes\":" << p.bus_writes
     << ",\"bus_prefetches\":" << p.bus_prefetches
     << ",\"coherence_transfers\":" << p.coherence_transfers
     << ",\"mc_utilization\":" << p.mc_utilization << "}\n";
}

Table prediction_error_table(const model::Prediction& p, const RunResult& sim,
                             double sim_speedup) {
  Table t("prediction vs simulation",
          {"predicted", "simulated", "rel_error"});
  const auto rel = [](double pred, double measured) {
    return measured != 0 ? (pred - measured) / measured : 0.0;
  };
  const auto row = [&](const std::string& name, double pred, double measured) {
    t.add_row(name, {pred, measured, rel(pred, measured)});
  };
  row("wall_cycles", p.wall_cycles, sim.wall_cycles);
  row("speedup", p.speedup, sim_speedup);
  for (int m = 0; m < perf::kMetricCount; ++m) {
    row(std::string(perf::metric_name(m)), perf::metric_value(p.metrics, m),
        perf::metric_value(sim.metrics, m));
  }
  return t;
}

}  // namespace paxsim::harness
