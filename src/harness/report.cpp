#include "harness/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <iomanip>
#include <ostream>

#include "perf/metrics.hpp"
#include "report/json.hpp"
#include "trace/stack.hpp"

namespace paxsim::harness {

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void Table::add_row(std::string label, std::vector<double> values) {
  rows_.push_back(Row{std::move(label), std::move(values)});
}

void Table::print(std::ostream& os, int precision) const {
  std::size_t label_w = 12;
  for (const Row& r : rows_) label_w = std::max(label_w, r.label.size() + 2);
  std::size_t col_w = 10;
  for (const std::string& c : columns_) col_w = std::max(col_w, c.size() + 2);

  os << "== " << title_ << " ==\n";
  os << std::left << std::setw(static_cast<int>(label_w)) << "";
  for (const std::string& c : columns_) {
    os << std::right << std::setw(static_cast<int>(col_w)) << c;
  }
  os << '\n';
  for (const Row& r : rows_) {
    os << std::left << std::setw(static_cast<int>(label_w)) << r.label;
    for (const double v : r.values) {
      os << std::right << std::setw(static_cast<int>(col_w)) << std::fixed
         << std::setprecision(precision) << v;
    }
    os << '\n';
  }
  os.unsetf(std::ios::fixed);
  os << '\n';
}

void Table::print_csv(std::ostream& os) const {
  for (const Row& r : rows_) {
    for (std::size_t c = 0; c < r.values.size() && c < columns_.size(); ++c) {
      os << title_ << ',' << r.label << ',' << columns_[c] << ','
         << r.values[c] << '\n';
    }
  }
}

void print_box_line(std::ostream& os, const std::string& label,
                    const BoxStats& box, double lo, double hi, int width) {
  auto pos = [&](double v) {
    if (hi <= lo) return 0;
    const double f = (v - lo) / (hi - lo);
    return static_cast<int>(std::clamp(f, 0.0, 1.0) * (width - 1));
  };
  std::string line(static_cast<std::size_t>(width), ' ');
  const int pmin = pos(box.min), p1 = pos(box.q1), pm = pos(box.median),
            p3 = pos(box.q3), pmax = pos(box.max);
  for (int i = pmin; i <= pmax; ++i) line[static_cast<std::size_t>(i)] = '-';
  for (int i = p1; i <= p3; ++i) line[static_cast<std::size_t>(i)] = '=';
  line[static_cast<std::size_t>(pmin)] = '|';
  line[static_cast<std::size_t>(pmax)] = '|';
  line[static_cast<std::size_t>(p1)] = '[';
  line[static_cast<std::size_t>(p3)] = ']';
  line[static_cast<std::size_t>(pm)] = '#';
  os << std::left << std::setw(14) << label << line << "  med="
     << std::fixed << std::setprecision(2) << box.median << " iqr=["
     << box.q1 << "," << box.q3 << "] range=[" << box.min << "," << box.max
     << "] n=" << box.n << '\n';
  os.unsetf(std::ios::fixed);
}

namespace {

void print_access(std::ostream& os, const char* role,
                  const check::AccessRecord& a) {
  os << "      " << role << ": thread " << a.tid << " on cpu "
     << static_cast<int>(a.cpu.flat()) << " (chip " << int{a.cpu.chip}
     << " core " << int{a.cpu.core} << " ctx " << int{a.cpu.context}
     << "), block " << a.block << ", t=" << std::fixed << std::setprecision(0)
     << a.vtime << '\n';
  os.unsetf(std::ios::fixed);
}

void json_access(report::Json& j, const check::AccessRecord& a) {
  j.object()
      .field("tid", a.tid)
      .field("cpu", static_cast<int>(a.cpu.flat()))
      .field("block", static_cast<std::uint64_t>(a.block))
      .field("vtime", a.vtime)
      .end();
}

void json_cpi_stack(report::Json& j, const trace::CpiStack& s) {
  j.object();
  for (std::size_t c = 0; c < trace::kStackCatCount; ++c) {
    j.field(trace::stack_cat_name(static_cast<trace::StackCat>(c)),
            s.cycles[c]);
  }
  j.end();
}

}  // namespace

void print_check_report(std::ostream& os, const check::CheckReport& r) {
  os << "== check report (mode=" << sim::check_mode_name(r.mode) << ") ==\n";
  os << "  events: " << r.accesses << " accesses, " << r.fetches
     << " fetches, " << r.syncs << " syncs, " << r.team_events
     << " team events, " << r.audits << " audits\n";
  os << "  result: " << (r.clean() ? "CLEAN" : "FINDINGS") << " ("
     << r.races_total << " race observations on " << r.racy_words
     << " words, " << r.violations_total << " invariant violations)\n";
  if (!r.races.empty()) {
    os << "  races (first per word and kind, " << r.races.size()
       << " retained):\n";
    for (const check::RaceRecord& rec : r.races) {
      os << "    " << check::race_kind_name(rec.kind) << " on word 0x"
         << std::hex << rec.addr << std::dec << '\n';
      print_access(os, "prior  ", rec.prior);
      print_access(os, "current", rec.current);
    }
  }
  if (!r.violations.empty()) {
    os << "  invariant violations (" << r.violations.size() << " retained):\n";
    for (const check::Violation& v : r.violations) {
      os << "    [" << v.rule << "] " << v.detail << '\n';
    }
  }
  os << "  false sharing: " << r.line_conflicts
     << " line conflicts across " << r.conflicted_lines << " lines\n\n";
}

void print_check_report_json(std::ostream& os, const check::CheckReport& r) {
  report::Json j(os);
  j.begin_document("check")
      .field("mode", sim::check_mode_name(r.mode))
      .field("clean", r.clean())
      .field("accesses", r.accesses)
      .field("fetches", r.fetches)
      .field("syncs", r.syncs)
      .field("team_events", r.team_events)
      .field("audits", r.audits)
      .field("races_total", r.races_total)
      .field("racy_words", r.racy_words)
      .field("violations_total", r.violations_total)
      .field("line_conflicts", r.line_conflicts)
      .field("conflicted_lines", r.conflicted_lines);
  j.key("races").array();
  for (const check::RaceRecord& rec : r.races) {
    j.object()
        .field("kind", check::race_kind_name(rec.kind))
        .field("addr", rec.addr);
    j.key("prior");
    json_access(j, rec.prior);
    j.key("current");
    json_access(j, rec.current);
    j.end();
  }
  j.end();
  j.key("violations").array();
  for (const check::Violation& v : r.violations) {
    j.object().field("rule", v.rule).field("detail", v.detail).end();
  }
  j.end();
  j.finish();
}

void print_prediction(std::ostream& os, const std::string& label,
                      const model::Prediction& p, bool csv) {
  if (csv) {
    os << label << ",wall_cycles," << p.wall_cycles << '\n';
    os << label << ",speedup," << p.speedup << '\n';
    for (int m = 0; m < perf::kMetricCount; ++m) {
      os << label << ',' << perf::metric_name(m) << ','
         << perf::metric_value(p.metrics, m) << '\n';
    }
    return;
  }
  os << label << ": " << static_cast<std::uint64_t>(p.wall_cycles)
     << " cycles (predicted), speedup=" << p.speedup << '\n';
  os << "  cpi=" << p.metrics.cpi
     << " stalled=" << p.metrics.stalled_fraction
     << " l1_miss=" << p.metrics.l1d_miss_rate
     << " l2_miss=" << p.metrics.l2_miss_rate
     << " bp_rate=" << p.metrics.branch_prediction_rate
     << " prefetch_share=" << p.metrics.prefetch_bus_fraction << '\n';
}

void print_prediction_json(std::ostream& os, const std::string& bench,
                           const std::string& config,
                           const model::Prediction& p) {
  report::Json j(os);
  j.begin_document("predict")
      .field("bench", bench)
      .field("config", config)
      .field("wall_cycles", p.wall_cycles)
      .field("serial_wall_cycles", p.serial_wall_cycles)
      .field("speedup", p.speedup)
      .field("cycles", p.cycles)
      .field("instructions", p.instructions);
  j.key("metrics").object();
  for (int m = 0; m < perf::kMetricCount; ++m) {
    j.field(perf::metric_name(m), perf::metric_value(p.metrics, m));
  }
  j.end();
  j.field("l1d_misses", p.l1d_misses)
      .field("l2_misses", p.l2_misses)
      .field("tc_misses", p.tc_misses)
      .field("dtlb_misses", p.dtlb_misses)
      .field("bus_reads", p.bus_reads)
      .field("bus_writes", p.bus_writes)
      .field("bus_prefetches", p.bus_prefetches)
      .field("coherence_transfers", p.coherence_transfers)
      .field("mc_utilization", p.mc_utilization);
  j.finish();
}

Table prediction_error_table(const model::Prediction& p, const RunResult& sim,
                             double sim_speedup) {
  Table t("prediction vs simulation",
          {"predicted", "simulated", "rel_error"});
  const auto rel = [](double pred, double measured) {
    return measured != 0 ? (pred - measured) / measured : 0.0;
  };
  const auto row = [&](const std::string& name, double pred, double measured) {
    t.add_row(name, {pred, measured, rel(pred, measured)});
  };
  row("wall_cycles", p.wall_cycles, sim.wall_cycles);
  row("speedup", p.speedup, sim_speedup);
  for (int m = 0; m < perf::kMetricCount; ++m) {
    row(std::string(perf::metric_name(m)), perf::metric_value(p.metrics, m),
        perf::metric_value(sim.metrics, m));
  }
  return t;
}

void print_run_json(std::ostream& os, const std::string& bench,
                    const std::string& config, const RunResult& r) {
  report::Json j(os);
  j.begin_document("run")
      .field("bench", bench)
      .field("config", config)
      .field("wall_cycles", r.wall_cycles)
      .field("verified", r.verified);
  j.key("metrics").object();
  for (int m = 0; m < perf::kMetricCount; ++m) {
    j.field(perf::metric_name(m), perf::metric_value(r.metrics, m));
  }
  j.end();
  j.key("counters").object();
  for (std::size_t e = 0; e < perf::kEventCount; ++e) {
    const auto ev = static_cast<perf::Event>(e);
    j.field(perf::event_name(ev), r.counters.get(ev));
  }
  j.end();
  j.finish();
}

namespace {

std::vector<std::string> stack_columns(std::vector<std::string> head) {
  for (std::size_t c = 0; c < trace::kStackCatCount; ++c) {
    head.emplace_back(trace::stack_cat_name(static_cast<trace::StackCat>(c)));
  }
  return head;
}

void append_stack(std::vector<double>& row, const trace::CpiStack& s) {
  for (std::size_t c = 0; c < trace::kStackCatCount; ++c) {
    row.push_back(s.cycles[c]);
  }
}

std::string region_label(const trace::RegionStats& r) {
  return r.body == 0 ? std::string("serial")
                     : "body " + std::to_string(r.body);
}

}  // namespace

Table trace_context_table(const trace::TraceReport& t) {
  Table tab("per-context CPI stack (cycles)", stack_columns({"wall"}));
  // Rows are labelled by the dense context slot (the list is in slot
  // order); LogicalCpu::flat() would alias slots on non-Paxville shapes.
  for (std::size_t i = 0; i < t.contexts.size(); ++i) {
    const trace::ContextStack& c = t.contexts[i];
    if (!c.active) continue;
    std::vector<double> row = {c.stack.sum()};
    append_stack(row, c.stack);
    tab.add_row("cpu" + std::to_string(i), std::move(row));
  }
  return tab;
}

Table trace_region_table(const trace::TraceReport& t) {
  Table tab("per-region CPI stack (cycles)",
            stack_columns({"instances", "iterations", "accesses"}));
  for (const trace::RegionStats& r : t.regions) {
    std::vector<double> row = {static_cast<double>(r.instances),
                               static_cast<double>(r.iterations),
                               static_cast<double>(r.accesses)};
    append_stack(row, r.stack);
    tab.add_row(region_label(r), std::move(row));
  }
  return tab;
}

void print_trace_report(std::ostream& os, const trace::TraceReport& t,
                        bool csv) {
  const Table ctx = trace_context_table(t);
  const Table reg = trace_region_table(t);
  if (csv) {
    ctx.print_csv(os);
    reg.print_csv(os);
    return;
  }
  os << "== trace report (mode=" << sim::trace_mode_name(t.mode)
     << ") ==\n  wall: " << std::fixed << std::setprecision(0)
     << t.wall_cycles << " cycles\n";
  os.unsetf(std::ios::fixed);
  os << "  phases: " << t.team_forks << " forks, " << t.loop_dispatches
     << " loop dispatches, " << t.barriers << " barriers, " << t.criticals
     << " critical sections\n";
  os << "  events: " << t.events_recorded << " recorded, " << t.events_dropped
     << " dropped\n\n";
  ctx.print(os, 0);
  reg.print(os, 0);
}

void print_trace_report_json(std::ostream& os, const std::string& bench,
                             const std::string& config,
                             const trace::TraceReport& t) {
  report::Json j(os);
  j.begin_document("trace")
      .field("bench", bench)
      .field("config", config)
      .field("mode", sim::trace_mode_name(t.mode))
      .field("wall_cycles", t.wall_cycles)
      .field("team_forks", t.team_forks)
      .field("loop_dispatches", t.loop_dispatches)
      .field("barriers", t.barriers)
      .field("criticals", t.criticals)
      .field("events_recorded", t.events_recorded)
      .field("events_dropped", t.events_dropped);
  j.key("contexts").array();
  for (std::size_t i = 0; i < t.contexts.size(); ++i) {
    const trace::ContextStack& c = t.contexts[i];
    j.object()
        .field("cpu", static_cast<int>(i))  // dense slot; flat() can alias
        .field("active", c.active)
        .field("wall_cycles", c.stack.sum())
        .field("executed", c.executed);
    j.key("stack");
    json_cpi_stack(j, c.stack);
    j.end();
  }
  j.end();
  j.key("regions").array();
  for (const trace::RegionStats& r : t.regions) {
    j.object()
        .field("body", static_cast<std::uint64_t>(r.body))
        .field("instances", r.instances)
        .field("iterations", r.iterations)
        .field("accesses", r.accesses)
        .field("l1_misses", r.l1_misses)
        .field("l2_misses", r.l2_misses)
        .field("fetches", r.fetches);
    j.key("stack");
    json_cpi_stack(j, r.stack);
    j.end();
  }
  j.end();
  j.finish();
}

}  // namespace paxsim::harness
