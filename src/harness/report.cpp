#include "harness/report.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>

namespace paxsim::harness {

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void Table::add_row(std::string label, std::vector<double> values) {
  rows_.push_back(Row{std::move(label), std::move(values)});
}

void Table::print(std::ostream& os, int precision) const {
  std::size_t label_w = 12;
  for (const Row& r : rows_) label_w = std::max(label_w, r.label.size() + 2);
  std::size_t col_w = 10;
  for (const std::string& c : columns_) col_w = std::max(col_w, c.size() + 2);

  os << "== " << title_ << " ==\n";
  os << std::left << std::setw(static_cast<int>(label_w)) << "";
  for (const std::string& c : columns_) {
    os << std::right << std::setw(static_cast<int>(col_w)) << c;
  }
  os << '\n';
  for (const Row& r : rows_) {
    os << std::left << std::setw(static_cast<int>(label_w)) << r.label;
    for (const double v : r.values) {
      os << std::right << std::setw(static_cast<int>(col_w)) << std::fixed
         << std::setprecision(precision) << v;
    }
    os << '\n';
  }
  os.unsetf(std::ios::fixed);
  os << '\n';
}

void Table::print_csv(std::ostream& os) const {
  for (const Row& r : rows_) {
    for (std::size_t c = 0; c < r.values.size() && c < columns_.size(); ++c) {
      os << title_ << ',' << r.label << ',' << columns_[c] << ','
         << r.values[c] << '\n';
    }
  }
}

void print_box_line(std::ostream& os, const std::string& label,
                    const BoxStats& box, double lo, double hi, int width) {
  auto pos = [&](double v) {
    if (hi <= lo) return 0;
    const double f = (v - lo) / (hi - lo);
    return static_cast<int>(std::clamp(f, 0.0, 1.0) * (width - 1));
  };
  std::string line(static_cast<std::size_t>(width), ' ');
  const int pmin = pos(box.min), p1 = pos(box.q1), pm = pos(box.median),
            p3 = pos(box.q3), pmax = pos(box.max);
  for (int i = pmin; i <= pmax; ++i) line[static_cast<std::size_t>(i)] = '-';
  for (int i = p1; i <= p3; ++i) line[static_cast<std::size_t>(i)] = '=';
  line[static_cast<std::size_t>(pmin)] = '|';
  line[static_cast<std::size_t>(pmax)] = '|';
  line[static_cast<std::size_t>(p1)] = '[';
  line[static_cast<std::size_t>(p3)] = ']';
  line[static_cast<std::size_t>(pm)] = '#';
  os << std::left << std::setw(14) << label << line << "  med="
     << std::fixed << std::setprecision(2) << box.median << " iqr=["
     << box.q1 << "," << box.q3 << "] range=[" << box.min << "," << box.max
     << "] n=" << box.n << '\n';
  os.unsetf(std::ios::fixed);
}

}  // namespace paxsim::harness
