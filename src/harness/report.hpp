// paxsim/harness/report.hpp
//
// Plain-text emitters for the paper's artifacts: fixed-width tables (one per
// metric panel of Figures 2 and 4, plus Tables 1-2) and an ASCII
// box-and-whiskers rendering of Figure 5.  Every emitter can also append
// CSV rows so results are machine-readable.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "check/report.hpp"
#include "harness/runner.hpp"
#include "harness/stats.hpp"
#include "model/predict.hpp"
#include "trace/report.hpp"

namespace paxsim::harness {

/// A simple fixed-width table: column headers plus labelled numeric rows.
class Table {
 public:
  Table(std::string title, std::vector<std::string> columns);

  /// Appends a labelled row; @p values must match the column count.
  void add_row(std::string label, std::vector<double> values);

  /// Renders with aligned columns; values printed with @p precision digits.
  void print(std::ostream& os, int precision = 3) const;

  /// Emits "title,label,col,value" CSV lines.
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  struct Row {
    std::string label;
    std::vector<double> values;
  };
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<Row> rows_;
};

/// Renders one box-and-whiskers line:  min |--[ q1 | median | q3 ]--| max,
/// scaled into [lo, hi] over @p width characters.
void print_box_line(std::ostream& os, const std::string& label,
                    const BoxStats& box, double lo, double hi, int width = 60);

/// Renders the analysis findings of a checked run (--check=...): event
/// totals, each retained race with its two conflicting accesses, each
/// invariant violation, and the false-sharing statistics.
void print_check_report(std::ostream& os, const check::CheckReport& r);

/// One JSON object (single line) with the same content, machine-readable —
/// the check-mode counterpart of print_csv.
void print_check_report_json(std::ostream& os, const check::CheckReport& r);

/// Renders an analytical prediction in the same schema the run emitters use
/// for a simulated result (wall cycles + the Figure-2 metric bundle), so
/// `--predict` output lines up column-for-column with `run` output.
void print_prediction(std::ostream& os, const std::string& label,
                      const model::Prediction& p, bool csv);

/// One JSON object (single line) with the prediction's metrics and backing
/// event counts — the predict-mode counterpart of print_check_report_json.
void print_prediction_json(std::ostream& os, const std::string& bench,
                           const std::string& config,
                           const model::Prediction& p);

/// Per-metric predicted/simulated/relative-error table for a configuration
/// where both tiers ran (`predict --compare`).  @p sim_speedup is the
/// simulated serial wall over @p sim's wall.
[[nodiscard]] Table prediction_error_table(const model::Prediction& p,
                                           const RunResult& sim,
                                           double sim_speedup);

/// One JSON document (single line), kind "run": wall time, verification,
/// the Figure-2 metric bundle and every PMU counter of a simulated run.
void print_run_json(std::ostream& os, const std::string& bench,
                    const std::string& config, const RunResult& r);

/// Per-context CPI stack table: one row per active hardware context with
/// the cycle count of every stack category plus the stack sum (== wall).
[[nodiscard]] Table trace_context_table(const trace::TraceReport& t);

/// Per-region CPI stack table: one row per parallel-loop body (plus the
/// serial bucket) with dispatch counts and the attributed cycle split.
[[nodiscard]] Table trace_region_table(const trace::TraceReport& t);

/// Renders a traced run: header line with the event tallies, then the
/// per-context and per-region stack tables (CSV rows when @p csv).
void print_trace_report(std::ostream& os, const trace::TraceReport& t,
                        bool csv);

/// One JSON document (single line), kind "trace": tallies, per-context
/// stacks and per-region stacks (events go through the Chrome exporter).
void print_trace_report_json(std::ostream& os, const std::string& bench,
                             const std::string& config,
                             const trace::TraceReport& t);

}  // namespace paxsim::harness
