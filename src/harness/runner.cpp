#include "harness/runner.hpp"

// paxlint: allow-file(wallclock) -- every steady_clock pair here measures host_sim_sec, the host-cost provenance field of run envelopes; simulated results read only Team::wall_time() (virtual cycles)

#include <algorithm>
#include <cassert>
#include <chrono>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>

#include "check/checker.hpp"
#include "par/par.hpp"
#include "trace/tracer.hpp"
#include "xomp/min_heap.hpp"
#include "xomp/team.hpp"

namespace paxsim::harness {
namespace {

/// Cheapest simulated cross-context interaction on this machine: the scale
/// for the parallel backend's lookahead window (par::lookahead_window).
double latency_floor(const sim::MachineParams& p) noexcept {
  double f = static_cast<double>(p.l1_latency);
  f = std::min(f, static_cast<double>(p.l2_latency));
  f = std::min(f, static_cast<double>(p.mem_latency));
  f = std::min(f, p.bus_read_occupancy);
  f = std::min(f, p.bus_write_occupancy);
  f = std::min(f, p.mem_read_occupancy);
  f = std::min(f, p.mem_write_occupancy);
  return f;
}

/// True when run_single may arm the host-parallel backend: fast path only
/// (reference-path analyses observe a serial event stream by contract), no
/// sinks, and more than one context to shard.
bool par_eligible(const sim::MachineParams& p, const RunOptions& opt,
                  std::size_t n_cpus) {
  return opt.par > 1 && n_cpus > 1 && p.fast_path && !p.profile &&
         p.check_mode == sim::CheckMode::kOff &&
         p.trace_mode == sim::TraceMode::kOff;
}

/// Declares each core's SMT activity from the set of occupied contexts.
void apply_smt_activity(sim::Machine& machine,
                        const std::vector<sim::LogicalCpu>& occupied) {
  const auto& p = machine.params();
  for (int chip = 0; chip < p.chips; ++chip) {
    for (int core = 0; core < p.cores_per_chip; ++core) {
      int n = 0;
      for (const sim::LogicalCpu c : occupied) {
        if (c.chip == chip && c.core == core) ++n;
      }
      machine.core(chip, core).set_active_contexts(std::max(1, n));
    }
  }
}

/// One resident program: kernel + address space + counters + team.
struct Program {
  std::unique_ptr<npb::Kernel> kernel;
  std::unique_ptr<sim::AddressSpace> space;
  perf::CounterSet counters;
  std::unique_ptr<xomp::Team> team;
  int steps_done = 0;
  double finish_time = 0;

  [[nodiscard]] bool done() const {
    return steps_done >= kernel->total_steps();
  }
};

std::unique_ptr<Program> make_program(npb::Benchmark bench, int slot,
                                      std::vector<sim::LogicalCpu> cpus,
                                      sim::Machine& machine,
                                      const RunOptions& opt,
                                      std::uint64_t seed) {
  auto prog = std::make_unique<Program>();
  prog->kernel = npb::make_kernel(bench);
  prog->space = std::make_unique<sim::AddressSpace>(slot);
  prog->kernel->setup(*prog->space, npb::ProblemConfig{opt.cls, seed});
  prog->team = std::make_unique<xomp::Team>(machine, std::move(cpus),
                                            &prog->counters, *prog->space);
  prog->team->set_grain(opt.grain);
  if (opt.sched_kind >= 0) {
    prog->team->set_schedule_override(xomp::Schedule{
        static_cast<xomp::ScheduleKind>(opt.sched_kind), opt.sched_chunk});
  }
  return prog;
}

RunResult finish_result(Program& prog, bool verify) {
  prog.team->flush();
  RunResult r;
  r.wall_cycles = prog.finish_time;
  r.counters = prog.counters;
  r.metrics = perf::derive_metrics(r.counters);
  r.verified = !verify || prog.kernel->verify();
  return r;
}

}  // namespace

RunResult run_single(sim::Machine& machine, npb::Benchmark bench,
                     const StudyConfig& cfg, const RunOptions& opt,
                     std::uint64_t seed) {
  machine.reset();
  // The checker must attach before the Team exists: the Team's constructor
  // reports its runtime-internal lines and the initial clock sync.
  std::optional<check::Checker> checker;
  if (machine.params().check_mode != sim::CheckMode::kOff) {
    checker.emplace(machine, machine.params().check_mode);
  }
  auto prog = make_program(bench, 0, cfg.cpus, machine, opt, seed);
  if (par_eligible(machine.params(), opt, cfg.cpus.size())) {
    prog->team->enable_parallel(
        opt.par,
        par::lookahead_window(latency_floor(machine.params()), opt.par_window));
  }
  apply_smt_activity(machine, cfg.cpus);
  const auto host_t0 = std::chrono::steady_clock::now();
  try {
    while (!prog->done()) {
      prog->kernel->step(*prog->team, prog->steps_done);
      ++prog->steps_done;
    }
  } catch (const par::Abort&) {
    // Speculation diverged from the serial order: the machine state is
    // garbage.  Replay the whole trial serially — bit-identity is therefore
    // unconditional; an abort only costs time.
    par::Stats rerun{};
    rerun.serial_reruns = 1;
    par::stats_add(rerun);
    RunOptions serial_opt = opt;
    serial_opt.par = 1;
    return run_single(machine, bench, cfg, serial_opt, seed);
  }
  prog->finish_time = prog->team->wall_time();
  const auto host_t1 = std::chrono::steady_clock::now();
  RunResult r = finish_result(*prog, opt.verify);
  if (checker) r.check = checker->finish();
  r.host_sim_sec = std::chrono::duration<double>(host_t1 - host_t0).count();
  if (opt.verify && !r.verified) {
    throw std::runtime_error(std::string("verification failed: ") +
                             std::string(prog->kernel->name()) + " on " +
                             std::string(cfg.name));
  }
  return r;
}

RunResult run_serial(sim::Machine& machine, npb::Benchmark bench,
                     const RunOptions& opt, std::uint64_t seed) {
  return run_single(machine, bench, serial_config(), opt, seed);
}

TraceResult run_traced(sim::Machine& machine, npb::Benchmark bench,
                       const StudyConfig& cfg, const RunOptions& opt,
                       std::uint64_t seed) {
  if (machine.params().trace_mode == sim::TraceMode::kOff) {
    throw std::invalid_argument(
        "run_traced: machine must be built with trace_mode != off "
        "(opt.machine_params() with opt.trace_mode set)");
  }
  if (machine.params().check_mode != sim::CheckMode::kOff) {
    throw std::invalid_argument(
        "run_traced: trace and check modes are mutually exclusive (the "
        "machine carries one sink)");
  }
  machine.reset();
  // Like the checker, the tracer must attach before the Team exists so it
  // observes the team-creation events and the initial clock sync.
  trace::Tracer tracer(machine, machine.params().trace_mode);
  auto prog = make_program(bench, 0, cfg.cpus, machine, opt, seed);
  apply_smt_activity(machine, cfg.cpus);
  const auto host_t0 = std::chrono::steady_clock::now();
  while (!prog->done()) {
    prog->kernel->step(*prog->team, prog->steps_done);
    ++prog->steps_done;
  }
  prog->finish_time = prog->team->wall_time();
  const auto host_t1 = std::chrono::steady_clock::now();

  TraceResult out;
  // finish_result's flush drives the final on_flush while the tracer is
  // still attached, so the last region's deltas land in the stacks.
  out.run = finish_result(*prog, opt.verify);
  out.run.host_sim_sec =
      std::chrono::duration<double>(host_t1 - host_t0).count();
  out.trace = tracer.finish(out.run.wall_cycles);
  if (opt.verify && !out.run.verified) {
    throw std::runtime_error(std::string("verification failed: ") +
                             std::string(prog->kernel->name()) + " on traced " +
                             std::string(cfg.name));
  }
  return out;
}

ProfiledRun run_profiled_serial(npb::Benchmark bench, const RunOptions& opt,
                                std::uint64_t seed) {
  sim::MachineParams params = opt.machine_params();
  params.profile = true;
  sim::Machine machine(params);
  machine.reset();
  // Like the checker, the profiler must attach before the Team exists: the
  // Team's constructor reports its runtime-internal line ranges.
  model::Profiler profiler(machine);
  const StudyConfig& cfg = serial_config();
  auto prog = make_program(bench, 0, cfg.cpus, machine, opt, seed);
  apply_smt_activity(machine, cfg.cpus);
  const auto host_t0 = std::chrono::steady_clock::now();
  while (!prog->done()) {
    prog->kernel->step(*prog->team, prog->steps_done);
    ++prog->steps_done;
  }
  prog->finish_time = prog->team->wall_time();
  const auto host_t1 = std::chrono::steady_clock::now();

  ProfiledRun out;
  out.result = finish_result(*prog, opt.verify);
  out.result.host_sim_sec =
      std::chrono::duration<double>(host_t1 - host_t0).count();
  if (opt.verify && !out.result.verified) {
    throw std::runtime_error(std::string("verification failed: ") +
                             std::string(prog->kernel->name()) +
                             " on profiled Serial");
  }
  out.profile = profiler.finish();

  // The profiling run doubles as the model's per-kernel calibration point.
  using perf::Event;
  const perf::CounterSet& c = out.result.counters;
  auto& a = out.profile.anchor;
  a.valid = true;
  a.wall_cycles = out.result.wall_cycles;
  a.cycles = static_cast<double>(c.get(Event::kCycles));
  a.instructions = static_cast<double>(c.get(Event::kInstructions));
  a.l1d_refs = static_cast<double>(c.get(Event::kL1dReferences));
  a.l1d_misses = static_cast<double>(c.get(Event::kL1dMisses));
  a.l2_refs = static_cast<double>(c.get(Event::kL2References));
  a.l2_misses = static_cast<double>(c.get(Event::kL2Misses));
  a.tc_refs = static_cast<double>(c.get(Event::kTraceCacheReferences));
  a.tc_misses = static_cast<double>(c.get(Event::kTraceCacheMisses));
  a.itlb_refs = static_cast<double>(c.get(Event::kItlbReferences));
  a.itlb_misses = static_cast<double>(c.get(Event::kItlbMisses));
  a.dtlb_misses = static_cast<double>(c.get(Event::kDtlbLoadMisses) +
                                      c.get(Event::kDtlbStoreMisses));
  a.branches = static_cast<double>(c.get(Event::kBranches));
  a.mispredicts = static_cast<double>(c.get(Event::kBranchMispredicts));
  a.bus_reads = static_cast<double>(c.get(Event::kBusReads));
  a.bus_writes = static_cast<double>(c.get(Event::kBusWrites));
  a.bus_prefetches = static_cast<double>(c.get(Event::kBusPrefetches));
  a.prefetches_issued = static_cast<double>(c.get(Event::kPrefetchesIssued));
  a.prefetches_useful = static_cast<double>(c.get(Event::kPrefetchesUseful));
  a.stall_mem = static_cast<double>(c.get(Event::kStallCyclesMemory));
  a.stall_branch = static_cast<double>(c.get(Event::kStallCyclesBranch));
  a.stall_tlb = static_cast<double>(c.get(Event::kStallCyclesTlb));
  a.stall_fe = static_cast<double>(c.get(Event::kStallCyclesFrontend));
  return out;
}

PairResult run_pair(sim::Machine& machine, npb::Benchmark a, npb::Benchmark b,
                    const StudyConfig& cfg, const RunOptions& opt,
                    std::uint64_t seed) {
  assert(cfg.cpus.size() >= 2 && "pair runs need at least two contexts");
  machine.reset();
  std::optional<check::Checker> checker;
  if (machine.params().check_mode != sim::CheckMode::kOff) {
    checker.emplace(machine, machine.params().check_mode);
  }
  // Even list positions to program 0, odd to program 1.
  std::vector<sim::LogicalCpu> cpus_a, cpus_b;
  for (std::size_t i = 0; i < cfg.cpus.size(); ++i) {
    (i % 2 == 0 ? cpus_a : cpus_b).push_back(cfg.cpus[i]);
  }

  std::array<std::unique_ptr<Program>, 2> progs;
  progs[0] = make_program(a, 0, cpus_a, machine, opt, seed);
  progs[1] = make_program(b, 1, cpus_b, machine, opt, seed + 17);
  apply_smt_activity(machine, cfg.cpus);

  // Co-schedule: always advance the program that is behind in virtual time.
  // The (wall, index) heap order reproduces the old "<=" pick exactly:
  // equal wall times resolve to program 0.
  xomp::IndexedMinHeap behind(2);
  for (int i = 0; i < 2; ++i) {
    if (!progs[i]->done()) behind.push(i, progs[i]->team->wall_time());
  }
  while (!behind.empty()) {
    const int pick = behind.top();
    Program& p = *progs[pick];
    p.kernel->step(*p.team, p.steps_done);
    ++p.steps_done;
    if (p.done()) {
      behind.remove(pick);
      p.finish_time = p.team->wall_time();
      // The finished program's contexts go idle: recompute SMT activity so
      // the survivor regains full issue width on shared cores.
      const auto& still = progs[pick == 0 ? 1 : 0];
      if (!still->done()) {
        apply_smt_activity(machine, pick == 0 ? cpus_b : cpus_a);
      }
    } else {
      behind.update(pick, p.team->wall_time());
    }
  }

  PairResult out;
  out.program[0] = finish_result(*progs[0], opt.verify);
  out.program[1] = finish_result(*progs[1], opt.verify);
  if (checker) {
    // The analyses observe the whole machine, not one program; both results
    // carry the same machine-wide report.
    const check::CheckReport rep = checker->finish();
    out.program[0].check = rep;
    out.program[1].check = rep;
  }
  if (opt.verify && (!out.program[0].verified || !out.program[1].verified)) {
    throw std::runtime_error("pair verification failed on " +
                             std::string(cfg.name));
  }
  return out;
}

TrialStats speedup_over_trials(npb::Benchmark bench, const StudyConfig& cfg,
                               const RunOptions& opt) {
  // One machine serves every trial — reset() restores the cold state, so
  // this is bit-identical to constructing a machine per run.
  sim::Machine machine(opt.machine_params());
  std::vector<double> speedups;
  speedups.reserve(static_cast<std::size_t>(opt.trials));
  for (int t = 0; t < opt.trials; ++t) {
    const std::uint64_t seed = opt.trial_seed(t);
    const RunResult serial = run_serial(machine, bench, opt, seed);
    const RunResult par = run_single(machine, bench, cfg, opt, seed);
    speedups.push_back(serial.wall_cycles / par.wall_cycles);
  }
  return summarize(speedups);
}

}  // namespace paxsim::harness
