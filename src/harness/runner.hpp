// paxsim/harness/runner.hpp
//
// Experiment runners:
//   * run_single    — one benchmark on one Table-1 configuration (the
//                     Figure 2 / Figure 3 workhorse);
//   * run_pair      — two programs co-scheduled on one configuration with
//                     threads split evenly (Figure 4 / Figure 5), the
//                     programs interleaved in virtual time the way two
//                     processes share a real machine;
//   * run_traced    — run_single with a trace::Tracer attached (CPI stall
//                     stacks + event recording, RunOptions::trace_mode);
//   * speedup helpers over repeated trials.
//
// Every runner takes the sim::Machine to run on (the MachinePool recycling
// path; the machine is reset() to a cold state on entry, so results are
// bit-identical to a fresh construction).  The historical machine-less
// [[deprecated]] wrappers are gone — every call site routes through
// ExperimentEngine, which pools machines and memoizes cells.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "check/report.hpp"
#include "harness/config.hpp"
#include "harness/stats.hpp"
#include "model/profile.hpp"
#include "npb/kernel.hpp"
#include "perf/counters.hpp"
#include "perf/metrics.hpp"
#include "sim/machine.hpp"
#include "trace/report.hpp"

namespace paxsim::harness {

/// Knobs shared by every experiment.
struct RunOptions {
  npb::ProblemClass cls = npb::ProblemClass::kClassB;
  /// Capacity scale factor applied to the machine (DESIGN.md: caches and
  /// problem classes shrink together; 16 is the study default the class
  /// tables are tuned for).
  double machine_scale = 16.0;
  int trials = 3;                    ///< paper used 10; 3 is the quick default
  std::uint64_t base_seed = 314159265;
  bool verify = true;                ///< run numeric verification per trial
  /// Iteration grain handed to every Team (xomp::kDefaultGrain = 1 is the
  /// full-fidelity setting; larger grains change the interleaving, so
  /// grained runs are never comparable against grain-1 golden signatures).
  std::size_t grain = 1;
  /// Loop-schedule override (the paxtune schedule axis).  -1 leaves every
  /// parallel loop on the schedule its kernel passes (bit-identical to the
  /// pre-override harness); 0/1/2 force xomp::ScheduleKind
  /// static/dynamic/guided with chunk parameter sched_chunk on every loop
  /// via Team::set_schedule_override.  An override changes the interleaving
  /// — and with it every emergent contention number — so both fields are
  /// part of CellKey.
  int sched_kind = -1;
  std::size_t sched_chunk = 0;
  /// Opt-in runtime analyses (race detection / invariant auditing).  Any
  /// mode but kOff routes the machine through the reference path and
  /// attaches a check::Checker for the duration of each run.
  sim::CheckMode check_mode = sim::CheckMode::kOff;
  /// Opt-in execution tracing (CPI stall stacks / event recording).  Any
  /// mode but kOff routes the machine through the reference path, enables
  /// the xomp region-boundary flushes and (in run_traced) attaches a
  /// trace::Tracer.  Mutually exclusive with check_mode in a traced run:
  /// the machine carries one sink.
  sim::TraceMode trace_mode = sim::TraceMode::kOff;
  /// The machine to simulate (sim/topology.hpp).  Null means the calibrated
  /// default Paxville — bit-identical to the pre-topology harness
  /// (test-enforced).  Set from a preset name or a JSON description via the
  /// CLI's --machine flag; shared because every cell of a plan runs on it.
  std::shared_ptr<const sim::Topology> topology;
  /// Host threads per run for the parallel backend (src/par/): the team's
  /// contexts are sharded into up to `par` logical processes along coherence
  /// domain boundaries.  Results are bit-identical to par == 1
  /// (test-enforced), so `par` is deliberately NOT part of CellKey — the
  /// memo cache must hash a cell the same way at any host parallelism.
  /// Applies to fast-path run_single only; checked/traced/profiled runs and
  /// run_pair stay serial.  The engine additionally clamps it against
  /// --jobs (par::effective_par).
  int par = 1;
  /// Lookahead window factor: each LP may speculate at most
  /// window_factor * latency-floor simulated cycles ahead of the slowest
  /// LP.  Purely a host-side throttle — results are identical for every
  /// value (<= 0 disables the bound) — so it too stays out of CellKey.
  double par_window = 64.0;

  [[nodiscard]] sim::MachineParams machine_params() const {
    sim::MachineParams base{};
    if (topology != nullptr) base.set_topology(topology);
    sim::MachineParams p = base.scaled(machine_scale);
    p.check_mode = check_mode;
    p.trace_mode = trace_mode;
    return p;
  }
  [[nodiscard]] std::uint64_t trial_seed(int trial) const noexcept {
    return base_seed + static_cast<std::uint64_t>(trial) * 104729;
  }
};

/// Outcome of one program execution (one trial).
struct RunResult {
  double wall_cycles = 0;            ///< virtual completion time
  perf::CounterSet counters;         ///< raw PMU-event deltas
  perf::Metrics metrics;             ///< the Figure-2 bundle
  bool verified = false;             ///< numeric validation outcome
  /// Host seconds spent inside the simulation loop proper (kernel steps
  /// driving the machine), excluding program construction/setup and numeric
  /// verification.  Filled by run_single; the throughput artifacts use it so
  /// they measure the simulator inner loop, not workload setup.
  double host_sim_sec = 0;
  /// Analysis findings when opt.check_mode != kOff (default-constructed —
  /// trivially clean — otherwise).  For pair runs the analyses observe the
  /// whole machine, so both programs carry the same machine-wide report.
  check::CheckReport check;
};

/// Runs @p bench once on @p cfg (single-program) on @p machine, which is
/// reset() to a cold state on entry — the MachinePool recycling path.
/// @p machine must have been built from opt.machine_params() (same
/// geometry); results are bit-identical to running on a freshly
/// constructed machine.
RunResult run_single(sim::Machine& machine, npb::Benchmark bench,
                     const StudyConfig& cfg, const RunOptions& opt,
                     std::uint64_t seed);

/// Outcome of a co-scheduled pair.
struct PairResult {
  std::array<RunResult, 2> program;  ///< per-program results
};

/// Runs @p a and @p b co-scheduled on @p cfg on @p machine, threads split
/// evenly between the two programs (even list positions to program 0, odd
/// to program 1 — the spread the 2.6-era Linux balancer converges to).
PairResult run_pair(sim::Machine& machine, npb::Benchmark a, npb::Benchmark b,
                    const StudyConfig& cfg, const RunOptions& opt,
                    std::uint64_t seed);

/// Serial-baseline run of @p bench (run_single on the Serial config).
RunResult run_serial(sim::Machine& machine, npb::Benchmark bench,
                     const RunOptions& opt, std::uint64_t seed);

/// Outcome of a traced run: the ordinary result plus the trace report.
struct TraceResult {
  RunResult run;
  trace::TraceReport trace;  ///< stacks/regions/events per opt.trace_mode
};

/// run_single with a trace::Tracer attached for the duration of the run.
/// @p machine must have been built from opt.machine_params() with
/// opt.trace_mode != kOff and opt.check_mode == kOff (the machine carries
/// one sink).  The virtual-time trajectory is identical to an untraced
/// reference-path run; every context stack in the report sums exactly to
/// run.wall_cycles.
TraceResult run_traced(sim::Machine& machine, npb::Benchmark bench,
                       const StudyConfig& cfg, const RunOptions& opt,
                       std::uint64_t seed);

/// Outcome of a profiled serial run — paxmodel's input.
struct ProfiledRun {
  RunResult result;              ///< the serial run itself (measured)
  model::KernelProfile profile;  ///< reuse/sharing summary, anchor filled
};

/// Runs @p bench once on the Serial configuration with
/// MachineParams::profile enabled and a model::Profiler attached, then
/// fills profile.anchor from the run's own counters.  The run routes
/// through the reference path but its counters and wall time are
/// bit-identical to an unprofiled serial run (test-enforced).
ProfiledRun run_profiled_serial(npb::Benchmark bench, const RunOptions& opt,
                                std::uint64_t seed);

/// Mean speedup (serial wall / config wall) over opt.trials trials,
/// with the per-trial serial baseline sharing the trial's seed.
TrialStats speedup_over_trials(npb::Benchmark bench, const StudyConfig& cfg,
                               const RunOptions& opt);

}  // namespace paxsim::harness
