#include "harness/sched_runner.hpp"

#include <algorithm>
#include <cassert>
#include <memory>
#include <stdexcept>

#include "xomp/min_heap.hpp"
#include "xomp/team.hpp"

namespace paxsim::harness {
namespace {

/// One resident program under the scheduled runner.
struct Program {
  std::unique_ptr<npb::Kernel> kernel;
  std::unique_ptr<sim::AddressSpace> space;
  perf::CounterSet counters;
  std::unique_ptr<xomp::Team> team;
  int steps_done = 0;
  double finish_time = 0;
  std::uint64_t last_instructions = 0;
  double last_wall = 0;

  [[nodiscard]] bool done() const {
    return steps_done >= kernel->total_steps();
  }
};

/// Recomputes every core's SMT-activity count from the live placements of
/// all unfinished programs.
void refresh_smt_activity(sim::Machine& machine,
                          const std::vector<std::unique_ptr<Program>>& progs) {
  const auto& p = machine.params();
  for (int chip = 0; chip < p.chips; ++chip) {
    for (int core = 0; core < p.cores_per_chip; ++core) {
      int n = 0;
      for (const auto& prog : progs) {
        if (prog->done()) continue;
        for (int r = 0; r < prog->team->size(); ++r) {
          const sim::LogicalCpu c = prog->team->placement_of(r);
          if (c.chip == chip && c.core == core) ++n;
        }
      }
      machine.core(chip, core).set_active_contexts(std::max(1, n));
    }
  }
}

std::vector<sched::ThreadView> collect_views(
    const std::vector<std::unique_ptr<Program>>& progs) {
  std::vector<sched::ThreadView> views;
  for (std::size_t p = 0; p < progs.size(); ++p) {
    Program& prog = *progs[p];
    if (prog.done()) continue;
    // Progress signal: instructions retired per wall cycle since the last
    // rebalance (an OS would read this from the PMU, as the paper's
    // future-work scheduler proposes).
    prog.team->flush();
    const std::uint64_t instr =
        prog.counters.get(perf::Event::kInstructions);
    const double wall = prog.team->wall_time();
    const double dwall = std::max(1.0, wall - prog.last_wall);
    const double progress =
        static_cast<double>(instr - prog.last_instructions) / dwall;
    prog.last_instructions = instr;
    prog.last_wall = wall;
    for (int r = 0; r < prog.team->size(); ++r) {
      views.push_back(sched::ThreadView{static_cast<int>(p), r,
                                        prog.team->placement_of(r), progress});
    }
  }
  return views;
}

}  // namespace

ScheduledResult run_scheduled(const std::vector<npb::Benchmark>& benches,
                              const StudyConfig& cfg, sched::Scheduler& policy,
                              const RunOptions& opt, std::uint64_t seed) {
  sim::Machine machine(opt.machine_params());
  return run_scheduled(machine, benches, cfg, policy, opt, seed);
}

ScheduledResult run_scheduled(sim::Machine& machine,
                              const std::vector<npb::Benchmark>& benches,
                              const StudyConfig& cfg, sched::Scheduler& policy,
                              const RunOptions& opt, std::uint64_t seed) {
  assert(!benches.empty() && benches.size() <= 2);
  machine.reset();
  const int np = static_cast<int>(benches.size());
  const int per = cfg.threads / np;
  assert(per >= 1 && "configuration too small for the program count");

  std::vector<int> tpp(static_cast<std::size_t>(np), per);
  auto placement = policy.place(tpp, cfg.cpus);
  if (placement.size() != static_cast<std::size_t>(np)) {
    throw std::runtime_error("scheduler returned wrong program count");
  }

  std::vector<std::unique_ptr<Program>> progs;
  for (int p = 0; p < np; ++p) {
    auto prog = std::make_unique<Program>();
    prog->kernel = npb::make_kernel(benches[static_cast<std::size_t>(p)]);
    prog->space = std::make_unique<sim::AddressSpace>(p);
    prog->kernel->setup(*prog->space,
                        npb::ProblemConfig{opt.cls, seed + 17u * p});
    prog->team = std::make_unique<xomp::Team>(
        machine, placement[static_cast<std::size_t>(p)], &prog->counters,
        *prog->space);
    prog->team->set_grain(opt.grain);
    if (opt.sched_kind >= 0) {
      prog->team->set_schedule_override(xomp::Schedule{
          static_cast<xomp::ScheduleKind>(opt.sched_kind), opt.sched_chunk});
    }
    progs.push_back(std::move(prog));
  }
  refresh_smt_activity(machine, progs);

  ScheduledResult out;
  out.scheduler = std::string(policy.name());

  // Programs in a min-heap keyed by wall time; the (key, index) tie-break
  // matches the old scan's strict-< pick (equal walls go to the lower
  // index).  Keys are refreshed after migrations too: repin() can advance a
  // team's wall even when the program did not step.
  xomp::IndexedMinHeap behind(np);
  for (int p = 0; p < np; ++p) {
    if (!progs[static_cast<std::size_t>(p)]->done()) {
      behind.push(p, progs[static_cast<std::size_t>(p)]->team->wall_time());
    }
  }

  while (!behind.empty()) {
    // Advance the program furthest behind in virtual time.
    const int pick_idx = behind.top();
    Program* pick = progs[static_cast<std::size_t>(pick_idx)].get();
    pick->kernel->step(*pick->team, pick->steps_done);
    ++pick->steps_done;
    if (pick->done()) {
      behind.remove(pick_idx);
      pick->finish_time = pick->team->wall_time();
      refresh_smt_activity(machine, progs);
    } else {
      behind.update(pick_idx, pick->team->wall_time());
    }

    // Consult the policy.
    if (!behind.empty()) {
      const auto views = collect_views(progs);
      const auto migrations = policy.rebalance(views);
      for (const sched::Migration& m : migrations) {
        Program& prog = *progs[static_cast<std::size_t>(m.program)];
        if (prog.done()) continue;
        prog.team->repin(m.rank, m.to, sched::kMigrationPenaltyCycles);
        ++out.migrations;
      }
      if (!migrations.empty()) {
        refresh_smt_activity(machine, progs);
        for (int p = 0; p < np; ++p) {
          if (behind.contains(p)) {
            behind.update(p, progs[static_cast<std::size_t>(p)]->team->wall_time());
          }
        }
      }
    }
  }

  for (auto& prog : progs) {
    prog->team->flush();
    RunResult r;
    r.wall_cycles = prog->finish_time;
    r.counters = prog->counters;
    r.metrics = perf::derive_metrics(r.counters);
    r.verified = !opt.verify || prog->kernel->verify();
    if (opt.verify && !r.verified) {
      throw std::runtime_error("scheduled-run verification failed: " +
                               std::string(prog->kernel->name()));
    }
    out.program.push_back(std::move(r));
  }
  return out;
}

}  // namespace paxsim::harness
