// paxsim/harness/sched_runner.hpp
//
// Scheduler-driven experiment runner: runs one or two programs on a
// Table-1 configuration under an OS-scheduler policy (src/sched), letting
// the policy choose initial placement and migrate threads between kernel
// steps.  This is the harness for the paper's future-work question: how
// much do scheduler decisions cost or gain on a chip-multithreaded SMP?
#pragma once

#include <string_view>
#include <vector>

#include "harness/config.hpp"
#include "harness/runner.hpp"
#include "sched/scheduler.hpp"

namespace paxsim::harness {

/// Outcome of a scheduled (possibly multi-program) run.
struct ScheduledResult {
  std::vector<RunResult> program;  ///< per-program results
  int migrations = 0;              ///< migrations the policy performed
  std::string scheduler;           ///< policy name
};

/// Runs @p benches (one or two programs) co-scheduled on @p cfg under
/// @p policy.  The policy is consulted for initial placement and after
/// every kernel step for rebalancing.  Thread counts are split evenly
/// between programs (all contexts to a single program).
ScheduledResult run_scheduled(const std::vector<npb::Benchmark>& benches,
                              const StudyConfig& cfg, sched::Scheduler& policy,
                              const RunOptions& opt, std::uint64_t seed);

/// Machine-reusing variant: runs on @p machine, reset() to a cold state on
/// entry (the MachinePool recycling path; see runner.hpp).
ScheduledResult run_scheduled(sim::Machine& machine,
                              const std::vector<npb::Benchmark>& benches,
                              const StudyConfig& cfg, sched::Scheduler& policy,
                              const RunOptions& opt, std::uint64_t seed);

}  // namespace paxsim::harness
