#include "harness/stats.hpp"

#include <algorithm>
#include <cmath>

namespace paxsim::harness {
namespace {

double quantile_sorted(const std::vector<double>& s, double q) {
  if (s.empty()) return 0;
  if (s.size() == 1) return s[0];
  const double pos = q * static_cast<double>(s.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= s.size()) return s.back();
  return s[lo] * (1.0 - frac) + s[lo + 1] * frac;
}

}  // namespace

TrialStats summarize(const std::vector<double>& samples) {
  TrialStats st;
  st.n = static_cast<int>(samples.size());
  if (samples.empty()) return st;
  double sum = 0;
  st.min = samples[0];
  st.max = samples[0];
  for (const double v : samples) {
    sum += v;
    st.min = std::min(st.min, v);
    st.max = std::max(st.max, v);
  }
  st.mean = sum / static_cast<double>(samples.size());
  if (samples.size() > 1) {
    double ss = 0;
    for (const double v : samples) ss += (v - st.mean) * (v - st.mean);
    st.stdev = std::sqrt(ss / static_cast<double>(samples.size() - 1));
  }
  return st;
}

BoxStats box_summary(std::vector<double> samples) {
  BoxStats b;
  b.n = static_cast<int>(samples.size());
  if (samples.empty()) return b;
  std::sort(samples.begin(), samples.end());
  b.min = samples.front();
  b.max = samples.back();
  b.q1 = quantile_sorted(samples, 0.25);
  b.median = quantile_sorted(samples, 0.50);
  b.q3 = quantile_sorted(samples, 0.75);
  return b;
}

}  // namespace paxsim::harness
