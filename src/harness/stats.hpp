// paxsim/harness/stats.hpp
//
// Small statistics helpers: trial summaries (mean/stdev/CV, matching the
// paper's "<~1-5% variance over ten trials" reporting) and the
// box-and-whiskers quartile summary of Figure 5.
#pragma once

#include <vector>

namespace paxsim::harness {

/// Mean / sample standard deviation / extremes of a set of trials.
struct TrialStats {
  double mean = 0;
  double stdev = 0;
  double min = 0;
  double max = 0;
  int n = 0;

  /// Coefficient of variation (stdev / mean); 0 when mean is 0.
  [[nodiscard]] double cv() const noexcept { return mean == 0 ? 0 : stdev / mean; }
};

[[nodiscard]] TrialStats summarize(const std::vector<double>& samples);

/// Five-number summary: min, first quartile, median, third quartile, max
/// (linear interpolation between order statistics, the common "type 7"
/// definition).  Drives the Figure-5 box-and-whiskers plot.
struct BoxStats {
  double min = 0;
  double q1 = 0;
  double median = 0;
  double q3 = 0;
  double max = 0;
  int n = 0;
};

[[nodiscard]] BoxStats box_summary(std::vector<double> samples);

}  // namespace paxsim::harness
