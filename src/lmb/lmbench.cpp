#include "lmb/lmbench.hpp"

#include <algorithm>
#include <numeric>
#include <random>

#include "perf/counters.hpp"

namespace paxsim::lmb {
namespace {

/// Builds a pointer-chase visiting order over @p n_lines: page-sequential
/// blocks with a shuffled interior, which defeats the stream prefetcher
/// (no constant stride) while keeping TLB misses rare — the lat_mem_rd
/// access discipline.
std::vector<std::size_t> chase_order(std::size_t n_lines, std::uint64_t seed) {
  std::vector<std::size_t> order(n_lines);
  std::iota(order.begin(), order.end(), 0);
  std::mt19937_64 rng(seed);
  const std::size_t block = 256;  // lines per shuffle block (4 pages)
  for (std::size_t lo = 0; lo < n_lines; lo += block) {
    const std::size_t hi = std::min(n_lines, lo + block);
    std::shuffle(order.begin() + static_cast<std::ptrdiff_t>(lo),
                 order.begin() + static_cast<std::ptrdiff_t>(hi), rng);
  }
  return order;
}

}  // namespace

std::vector<std::size_t> default_ladder_sizes(std::size_t min_bytes,
                                              std::size_t max_bytes) {
  std::vector<std::size_t> sizes;
  for (std::size_t s = min_bytes; s <= max_bytes; s *= 2) sizes.push_back(s);
  return sizes;
}

std::vector<LatencyPoint> latency_ladder(const sim::MachineParams& params,
                                         const std::vector<std::size_t>& sizes,
                                         std::size_t chases_per_size) {
  std::vector<LatencyPoint> out;
  out.reserve(sizes.size());
  for (const std::size_t ws : sizes) {
    sim::Machine machine(params);
    sim::AddressSpace space(0);
    perf::CounterSet counters;
    sim::HwContext& ctx = machine.context({0, 0, 0});
    ctx.bind(&counters, space.code_base());

    const std::size_t line = params.l1d.line_bytes;
    const std::size_t n_lines = std::max<std::size_t>(1, ws / line);
    const sim::Addr base = space.alloc(n_lines * line, params.page_bytes);
    const std::vector<std::size_t> order = chase_order(n_lines, 42);

    // Warm-up lap: populate caches and TLB for the resident regime.
    for (const std::size_t l : order) {
      ctx.load(base + static_cast<sim::Addr>(l) * line, sim::Dep::kChained);
    }
    const double t0 = ctx.now();
    std::size_t done = 0;
    while (done < chases_per_size) {
      for (std::size_t i = 0; i < order.size() && done < chases_per_size;
           ++i, ++done) {
        ctx.load(base + static_cast<sim::Addr>(order[i]) * line,
                 sim::Dep::kChained);
      }
    }
    const double cycles = ctx.now() - t0;
    out.push_back(LatencyPoint{
        ws, cycles / static_cast<double>(chases_per_size) / params.clock_ghz});
  }
  return out;
}

BandwidthResult stream_bandwidth(const sim::MachineParams& params,
                                 bool both_chips,
                                 std::size_t bytes_per_thread) {
  const std::size_t line = params.l1d.line_bytes;
  const std::size_t lines_per_thread = bytes_per_thread / line;

  auto run = [&](bool writes) {
    sim::Machine machine(params);
    sim::AddressSpace space(0);
    perf::CounterSet counters;
    // Two streaming threads: both cores of chip 0, or core 0 of each chip.
    std::vector<sim::LogicalCpu> cpus =
        both_chips ? std::vector<sim::LogicalCpu>{{0, 0, 0}, {1, 0, 0}}
                   : std::vector<sim::LogicalCpu>{{0, 0, 0}, {0, 1, 0}};
    std::vector<sim::HwContext*> ctxs;
    std::vector<sim::Addr> bases;
    for (const auto cpu : cpus) {
      sim::HwContext& ctx = machine.context(cpu);
      ctx.bind(&counters, space.code_base());
      ctxs.push_back(&ctx);
      bases.push_back(space.alloc(bytes_per_thread, params.page_bytes));
    }
    // Two passes over the buffer, interleaved in virtual time a burst of
    // lines at a time; only the second (steady-state) pass is measured —
    // bw_mem's warm-up discipline, which matters for writes because a cold
    // cache absorbs the first working set without writebacks.
    auto one_pass = [&] {
      std::vector<std::size_t> pos(ctxs.size(), 0);
      const std::size_t burst = 16;
      while (true) {
        // Advance the thread furthest behind.
        std::size_t pick = 0;
        double best = 1e300;
        bool work = false;
        for (std::size_t t = 0; t < ctxs.size(); ++t) {
          if (pos[t] >= lines_per_thread) continue;
          work = true;
          if (ctxs[t]->now() < best) {
            best = ctxs[t]->now();
            pick = t;
          }
        }
        if (!work) break;
        sim::HwContext& ctx = *ctxs[pick];
        for (std::size_t b = 0; b < burst && pos[pick] < lines_per_thread;
             ++b, ++pos[pick]) {
          const sim::Addr a =
              bases[pick] + static_cast<sim::Addr>(pos[pick]) * line;
          if (writes) {
            ctx.store(a);
          } else {
            ctx.load(a);
          }
        }
      }
    };
    auto wall = [&] {
      double w = 0;
      for (const sim::HwContext* c : ctxs) w = std::max(w, c->now());
      return w;
    };
    one_pass();  // warm-up
    const double t0 = wall();
    one_pass();  // measured
    const double cycles = wall() - t0;
    const double bytes =
        static_cast<double>(lines_per_thread * line * ctxs.size());
    const double seconds = cycles / (params.clock_ghz * 1e9);
    return bytes / seconds / 1e9;
  };

  BandwidthResult r;
  r.read_gbps = run(false);
  r.write_gbps = run(true);
  return r;
}

}  // namespace paxsim::lmb
