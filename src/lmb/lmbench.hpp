// paxsim/lmb/lmbench.hpp
//
// LMbench-style microbenchmarks run *on the simulator*, reproducing the
// paper's Section 3 platform characterisation:
//   * lat_mem_rd analog — a dependent pointer chase over working sets from
//     a few cache lines up to many times the L2, yielding the L1 / L2 /
//     memory latency plateaus (paper: 1.43 ns / 10.6 ns / 136.85 ns);
//   * bw_mem analog — streaming read and write bandwidth with the threads
//     on one package or spread over both (paper: 3.57 -> 4.43 GB/s read,
//     1.77 -> 2.60 GB/s write).
//
// These close the calibration loop: tests assert the simulated machine
// reports the paper's numbers back.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/machine.hpp"

namespace paxsim::lmb {

/// One point of the latency ladder.
struct LatencyPoint {
  std::size_t working_set_bytes = 0;
  double ns_per_load = 0;
};

/// Dependent-chain load latency over the given working-set sizes, measured
/// on context (0,0,0) of a fresh machine built from @p params.
std::vector<LatencyPoint> latency_ladder(const sim::MachineParams& params,
                                         const std::vector<std::size_t>& sizes,
                                         std::size_t chases_per_size = 20000);

/// Convenient ladder of power-of-two working sets in [min_bytes, max_bytes].
std::vector<std::size_t> default_ladder_sizes(std::size_t min_bytes,
                                              std::size_t max_bytes);

/// Result of a streaming bandwidth run.
struct BandwidthResult {
  double read_gbps = 0;
  double write_gbps = 0;
};

/// Streaming bandwidth with @p n_threads threads placed on one package
/// (@p both_chips = false) or spread over both packages (true), one thread
/// per core, mirroring the paper's one-chip vs two-chip measurement.
BandwidthResult stream_bandwidth(const sim::MachineParams& params,
                                 bool both_chips,
                                 std::size_t bytes_per_thread = 4 << 20);

}  // namespace paxsim::lmb
