#include "model/predict.hpp"

#include <algorithm>
#include <cmath>

#include "sim/topology.hpp"

namespace paxsim::model {
namespace {

// ---- model calibration constants ------------------------------------------
// These are properties of the *model*, not of the simulated machine (those
// live in MachineParams); docs/CALIBRATION.md discusses the error bands they
// produce against the simulator.

/// Fraction of detected sequential DRAM candidates the stream prefetcher
/// converts into L2 hits (detection lag plus bus-threshold throttling keep
/// it below 1).
constexpr double kPrefetchCoverage = 0.85;
/// Prefetch lines issued per useful prefetch when the anchor cannot supply
/// the measured ratio (depth-8 streams overshoot at stream ends).
constexpr double kPrefetchOverIssue = 1.3;
/// Straggler-wait per barrier episode beyond what the per-thread RMW
/// stalls already carry, as a fraction of the DRAM latency (the runtime
/// RMW traffic itself is modelled explicitly; this covers sync skew).
constexpr double kBarrierLatencyFrac = 0.5;
/// DRAM latency inflation per unit of memory-controller utilisation
/// (open-loop stand-in for the queueing the simulator resolves in time).
constexpr double kQueueGain = 0.6;
/// Anchor-ratio clamp: measured/modelled corrections outside this range are
/// treated as model failures and clamped rather than amplified.
constexpr double kAnchorClampLo = 0.1;
constexpr double kAnchorClampHi = 10.0;

/// Raw (un-anchored) analytical outcome.
struct Raw {
  double accesses = 0;
  double l1_hits = 0, l1_misses = 0;
  double l2_refs = 0, l2_demand_hits = 0, l2_misses = 0;
  double dtlb_misses = 0;
  double tc_refs = 0, tc_misses = 0;
  double itlb_misses = 0;
  double coherence = 0;
  double rescued = 0;
  double instructions = 0;
  double branches = 0, mispredicts = 0;
  double issue = 0;
  double stall_mem = 0, stall_fe = 0, stall_tlb = 0, stall_branch = 0;
  double cycles = 0;
  double wall = 0;
  double bus_reads = 0, bus_writes = 0, bus_prefetches = 0;
  double mc_busy = 0;
};

/// Sharing facts the model needs from the machine's topology, resolved once
/// per predict() call.  A default-constructed Hierarchy (no attached
/// topology) reproduces the pre-topology model arithmetic exactly: the L2
/// contends between SMT siblings and there is no L3 stage.
struct Hierarchy {
  bool l2_per_chip = false;  ///< level-1 cache shared by a package's cores
  bool has_l3 = false;       ///< three-level hierarchy with a shared L3
  std::size_t l3_sets = 1;
  std::size_t l3_ways = 1;
  double l3_latency = 0;
  bool l3_per_chip = true;
};

Hierarchy resolve_hierarchy(const sim::MachineParams& m) {
  Hierarchy h;
  if (m.topology == nullptr) return h;  // default machine: seed arithmetic
  const sim::Topology& t = *m.topology;
  h.l2_per_chip = t.levels.size() >= 2 &&
                  t.levels[1].scope == sim::SharingScope::kPerChip;
  if (t.levels.size() >= 3) {
    const sim::TopoCacheLevel& l3 = t.levels[2];
    h.has_l3 = true;
    h.l3_sets = std::max<std::size_t>(1, l3.geometry.sets());
    h.l3_ways = std::max<std::size_t>(1, l3.geometry.ways);
    h.l3_latency = static_cast<double>(l3.latency);
    h.l3_per_chip = l3.scope == sim::SharingScope::kPerChip;
  }
  return h;
}

double ratio_or(double num, double den, double fallback) {
  if (den <= 1e-9 || num <= 0) return fallback;
  return num / den;
}

double anchor_ratio(double measured, double modelled) {
  if (modelled <= 1e-9 || measured <= 0) return 1.0;
  return std::clamp(measured / modelled, kAnchorClampLo, kAnchorClampHi);
}

/// Measured-over-modelled capacity correction factors, derived once from
/// the un-anchored serial analysis against the profiling run's counters.
/// They scale only the *capacity* components inside analyze() — coherence
/// and runtime-barrier traffic are structural reconstructions with no
/// serial counterpart, so they ride on top unscaled.
struct Correction {
  double l1_miss = 1.0;
  double l2_miss = 1.0;
  double dtlb = 1.0;
  double tc_refs = 1.0;
  double tc_miss = 1.0;
  double itlb = 1.0;
  double bus_writes = 1.0;
};

/// The core of the model: expected counts and cycles for one placement.
/// @p serial_base is the same computation for the Serial placement (used
/// for the Amdahl serial portion); null when computing that base itself.
/// @p corr, when present, rescales the capacity estimates to the profiling
/// run's measured serial counters before derived costs are computed.
Raw analyze(const KernelProfile& p, const sim::MachineParams& m,
            const Placement& pl, const Hierarchy& hier, const Raw* serial_base,
            const Correction* corr) {
  Raw r;
  const std::size_t k = thread_count_index(pl.threads);
  const double T = static_cast<double>(pl.threads);
  const int share = std::max(1, pl.contexts_per_core);
  const bool mt = share > 1;
  // Contexts competing for one instance of the level-1 cache: SMT siblings
  // when it is core-private (Paxville), the package's whole team share when
  // it is chip-shared (Woodcrest).
  const int l2_share =
      hier.l2_per_chip ? std::max(1, pl.contexts_per_chip) : share;

  r.accesses = static_cast<double>(p.loads + p.stores);
  const double loads = static_cast<double>(p.loads);
  const double stores = static_cast<double>(p.stores);

  // ---- capacity integration ------------------------------------------------
  // Competitive sharing under SMT: both contexts hash into the same sets, so
  // each context's stream effectively sees its share of the ways.
  const std::size_t l1_sets = std::max<std::size_t>(1, m.l1d.sets());
  const std::size_t l1_ways = std::max<std::size_t>(1, m.l1d.ways / share);
  const std::size_t l2_sets = std::max<std::size_t>(1, m.l2.sets());
  const std::size_t l2_ways = std::max<std::size_t>(1, m.l2.ways / l2_share);
  const std::size_t dtlb_sets =
      std::max<std::size_t>(1, m.dtlb_entries / m.dtlb_ways);
  const std::size_t dtlb_ways = std::max<std::size_t>(1, m.dtlb_ways / share);
  const std::size_t itlb_sets =
      std::max<std::size_t>(1, m.itlb_entries / m.itlb_ways);
  const std::size_t itlb_ways = std::max<std::size_t>(1, m.itlb_ways / share);

  const ReuseHistogram& lineh = p.line[k];
  const ReuseHistogram& storeh = p.store_line[k];

  double l1_hits = lineh.expected_hits(l1_sets, l1_ways);
  double l2_resident = std::max(l1_hits, lineh.expected_hits(l2_sets, l2_ways));
  const double st_l1 = storeh.expected_hits(l1_sets, l1_ways);
  const double st_l2res =
      std::max(st_l1, storeh.expected_hits(l2_sets, l2_ways));

  // Raw per-level store shares, before coherence/prefetch adjustment.
  const double mem_unadj = std::max(0.0, r.accesses - l2_resident);
  const double l2hit_unadj = std::max(0.0, l2_resident - l1_hits);
  const double store_share_l1 = ratio_or(st_l1, l1_hits, 0.0);
  const double store_share_l2 = ratio_or(st_l2res - st_l1, l2hit_unadj, 0.0);
  const double store_share_mem =
      ratio_or(stores - st_l2res, mem_unadj, stores / std::max(1.0, r.accesses));

  // Anchor the capacity estimates before any structural traffic is layered
  // on: scaling the *misses* (not the hits) keeps the correction stable when
  // hit rates approach 1.
  if (corr != nullptr) {
    const double l1m = std::max(0.0, r.accesses - l1_hits) * corr->l1_miss;
    l1_hits = std::clamp(r.accesses - l1m, 0.0, r.accesses);
    const double memc =
        std::max(0.0, r.accesses - l2_resident) * corr->l2_miss;
    l2_resident = std::clamp(r.accesses - memc, l1_hits, r.accesses);
  }

  // ---- chip-shared L3 (three-level topologies only) ------------------------
  // The same reuse histogram integrated against the L3's geometry, with the
  // package's whole team competing for its ways.  Lines resident in the L3
  // but not the mid-level L2 are served at the L3 latency instead of DRAM.
  double l3_resident = l2_resident;
  if (hier.has_l3) {
    const int l3_share =
        hier.l3_per_chip ? std::max(1, pl.contexts_per_chip) : share;
    const std::size_t l3_ways =
        std::max<std::size_t>(1, hier.l3_ways / l3_share);
    l3_resident =
        std::max(l2_resident, lineh.expected_hits(hier.l3_sets, l3_ways));
    if (corr != nullptr) {
      const double memc =
          std::max(0.0, r.accesses - l3_resident) * corr->l2_miss;
      l3_resident = std::clamp(r.accesses - memc, l2_resident, r.accesses);
    }
  }

  // ---- coherence -----------------------------------------------------------
  // Cross-owner transitions on written lines become cache-to-cache misses
  // when the owners run on different physical cores.
  if (k > 0) {
    const auto& tr = p.owner_transitions[k - 1];
    for (std::size_t from = 0; from < 8; ++from) {
      for (std::size_t to = 0; to < 8; ++to) {
        if (from >= static_cast<std::size_t>(pl.threads) ||
            to >= static_cast<std::size_t>(pl.threads)) {
          continue;
        }
        if (pl.rank_core[from] != pl.rank_core[to]) {
          r.coherence += static_cast<double>(tr[from * 8 + to]);
        }
      }
    }
    r.coherence = std::min(r.coherence, l2_resident);
  }
  // A coherence victim the stack model saw as resident actually misses both
  // levels and re-fetches over the bus.
  l1_hits = std::max(0.0, l1_hits - r.coherence);
  l2_resident = std::max(l1_hits, l2_resident - r.coherence);

  double mem_level = std::max(0.0, r.accesses - l2_resident);
  double l3_level = 0;  // L2 misses the chip-shared L3 absorbs
  if (hier.has_l3) {
    l3_resident = std::max(l2_resident, l3_resident - r.coherence);
    l3_level = std::max(0.0, l3_resident - l2_resident);
    mem_level = std::max(0.0, mem_level - l3_level);
  }

  // ---- prefetch rescue -----------------------------------------------------
  const double stream_frac =
      ratio_or(static_cast<double>(p.streamed),
               static_cast<double>(p.stream_candidates), 0.0);
  r.rescued = kPrefetchCoverage * stream_frac *
              std::max(0.0, mem_level - r.coherence);
  mem_level -= r.rescued;

  r.l1_hits = l1_hits;
  r.l1_misses = r.accesses - l1_hits;
  r.l2_refs = r.l1_misses;
  r.l2_misses = mem_level + l3_level;
  r.l2_demand_hits = std::max(0.0, r.l2_refs - r.l2_misses);
  // Application accesses, before structural runtime/gather traffic is
  // layered on below — the DTLB stream the profile's page histograms
  // describe (the injected accesses hit a handful of hot pages).
  const double app_accesses = r.accesses;

  // ---- runtime barrier traffic ---------------------------------------------
  // The Team's sense-reversing barrier RMWs one shared line per thread per
  // episode.  The serial profile deliberately excludes runtime-internal
  // lines (a serial run has no barrier contention to observe), so their
  // parallel-run coherence traffic is reconstructed structurally: every
  // cross-core handoff of the barrier line is an L1+L2 miss resolved with a
  // full bus read — the simulator charges cache-to-cache transfers the same
  // FSB path as DRAM fills.  Same-core (SMT sibling) handoffs stay in the
  // shared L1.
  double rt_cross = 0;
  if (pl.threads > 1) {
    double cross = 0;
    const int nranks =
        std::min(pl.threads, static_cast<int>(Placement::kMaxRanks));
    for (int rank = 0; rank < nranks; ++rank) {
      const int prev = (rank + nranks - 1) % nranks;
      if (pl.rank_core[static_cast<std::size_t>(rank)] !=
          pl.rank_core[static_cast<std::size_t>(prev)]) {
        cross += 1;
      }
    }
    const double episodes = static_cast<double>(p.barriers);
    rt_cross = episodes * cross;
    r.accesses += episodes * 2.0 * T;  // chained load + store per thread
    r.l1_misses += rt_cross;
    r.l2_refs += rt_cross;
    r.l2_misses += rt_cross;
    r.coherence += rt_cross;
  }

  // ---- team-scaled serial gather -------------------------------------------
  // Serial sections that read every thread's partial results (reductions,
  // histogram merges) replicate with team size: where the serial profile saw
  // the master scan one partial set, a T-thread run scans T, and the
  // replicated reads land on lines dirty in other cores' caches — cache-to-
  // cache misses on the master's critical path.
  const double gfrac = p.gather_fraction();
  double gather_miss = 0, gather_rescued = 0;
  if (pl.threads > 1 && p.serial_gather > 0) {
    const double cross_frac = 1.0 - static_cast<double>(share) / T;
    // Line fetches: only the first touch per line per scan misses (the
    // profile counts those events); the other replicated reads are L1 hits
    // already priced into the replicated serial cycles.  Scans are
    // sequential walks, so the stream prefetcher rescues them like any
    // other stream: rescued lines become chained L2 hits, the residue full
    // cache-to-cache misses.
    const double invalidated =
        static_cast<double>(p.serial_gather_lines) * (T - 1.0) * cross_frac;
    gather_rescued = kPrefetchCoverage * stream_frac * invalidated;
    gather_miss = invalidated - gather_rescued;
    r.accesses += static_cast<double>(p.serial_gather) * (T - 1.0);
    r.l1_misses += invalidated;
    r.l2_refs += invalidated;
    r.l2_misses += gather_miss;
    r.coherence += invalidated;
  }

  // ---- DTLB / trace cache / ITLB ------------------------------------------
  r.dtlb_misses = std::max(
      0.0, app_accesses - p.page[k].expected_hits(dtlb_sets, dtlb_ways));
  if (corr != nullptr) {
    r.dtlb_misses = std::min(r.dtlb_misses * corr->dtlb, r.accesses);
  }

  const double fetches = static_cast<double>(p.fetches);
  const double avg_uops =
      ratio_or(static_cast<double>(p.uops), fetches, 1.0);
  const bool tc_partition = mt && m.trace_mt_static_partition;
  const double cap_uops =
      static_cast<double>(m.trace_cache_uops) / (tc_partition ? 2.0 : 1.0);
  const double cap_blocks = std::max(1.0, cap_uops / std::max(1.0, avg_uops));
  const std::size_t tc_ways = std::max<std::size_t>(1, m.trace_cache_ways);
  const std::size_t tc_sets = std::max<std::size_t>(
      1, static_cast<std::size_t>(cap_blocks) / tc_ways);
  const double block_hits = p.block.expected_hits(tc_sets, tc_ways);
  const double lines_per_fetch =
      std::max(1.0, avg_uops / static_cast<double>(m.trace_uops_per_line));
  r.tc_refs = fetches * lines_per_fetch;
  r.tc_misses = std::max(0.0, fetches - block_hits) * lines_per_fetch;

  r.itlb_misses = std::max(
      0.0, fetches - p.code_page.expected_hits(itlb_sets, itlb_ways));
  if (corr != nullptr) {
    r.tc_refs *= corr->tc_refs;
    r.tc_misses = std::min(r.tc_misses * corr->tc_miss, r.tc_refs);
    r.itlb_misses = std::min(r.itlb_misses * corr->itlb, fetches);
  }

  // ---- instruction stream --------------------------------------------------
  const double base_instr = p.anchor.valid
                                ? p.anchor.instructions
                                : static_cast<double>(p.uops);
  r.branches = p.anchor.valid
                   ? p.anchor.branches
                   : static_cast<double>(p.iterations);
  r.mispredicts = p.anchor.valid ? p.anchor.mispredicts : 0.0;
  // Parallel-runtime overhead: per-chunk scheduler slice (16 front-end +
  // 4 bookkeeping uops) and the barrier RMW per thread per episode.
  double overhead_uops = 0;
  if (pl.threads > 1) {
    overhead_uops += static_cast<double>(p.loops) * T * 20.0;
    overhead_uops += static_cast<double>(p.barriers) * T * 2.0;
    // Replicated gather-section uops (the serial profile counted one set).
    overhead_uops +=
        gfrac * static_cast<double>(p.uops - p.par_uops) * (T - 1.0);
  }
  r.instructions = base_instr + overhead_uops;

  // ---- latency exposure (mirrors Core::access_memory) ----------------------
  const double issue_per_uop =
      m.cycles_per_uop * (mt ? m.smt_issue_stretch : 1.0);
  r.issue = r.instructions * issue_per_uop;

  const double fc =
      ratio_or(static_cast<double>(p.chained_loads), loads, 0.0);
  const double l2ov = mt ? m.mt_l2_overlap : m.l2_overlap;
  const double memov = mt ? m.mt_mem_overlap : m.mem_overlap;
  const double stov = mt ? m.mt_store_overlap : m.store_overlap;
  const double l1_lat = static_cast<double>(m.l1_latency);
  const double l2_lat = static_cast<double>(m.l2_latency);

  // Memory-controller pressure inflates the effective DRAM latency (the
  // simulator resolves this queueing in virtual time; the model closes the
  // loop with one fixed-point refinement).
  const double wb = mem_level * store_share_mem *
                    (corr != nullptr ? corr->bus_writes : 1.0);  // writebacks
  const double over_issue =
      p.anchor.valid ? std::max(1.0, ratio_or(p.anchor.prefetches_issued,
                                              p.anchor.prefetches_useful,
                                              kPrefetchOverIssue))
                     : kPrefetchOverIssue;
  r.bus_prefetches = (r.rescued + gather_rescued) * over_issue;
  r.bus_reads = mem_level + rt_cross + gather_miss;
  r.bus_writes = wb;
  const double mc_busy = (r.bus_reads + r.bus_prefetches) * m.mem_read_occupancy +
                         wb * m.mem_write_occupancy;
  r.mc_busy = mc_busy;

  double mem_lat = static_cast<double>(m.mem_latency);
  double gather_wall = 0, gather_stall = 0;
  for (int pass = 0; pass < 2; ++pass) {
    const double l1_loads = l1_hits * (1.0 - store_share_l1);
    const double l2_level = r.l2_demand_hits + r.rescued;
    const double l2_loads = l2_level * (1.0 - store_share_l2);
    const double l2_stores = l2_level - l2_loads;
    const double mem_loads = mem_level * (1.0 - store_share_mem);
    const double mem_stores = mem_level - mem_loads;

    double stall = 0;
    stall += l1_loads * fc * std::max(0.0, l1_lat - issue_per_uop);
    stall += l2_loads * (fc * std::max(0.0, l2_lat - issue_per_uop) +
                         (1.0 - fc) * l2_lat * l2ov);
    stall += l2_stores * l2_lat * stov;
    if (hier.has_l3) {
      // L2 misses the L3 absorbs: exposed like L2 hits, at the L3 latency.
      const double l3_loads = l3_level * (1.0 - store_share_mem);
      stall +=
          l3_loads * (fc * std::max(0.0, hier.l3_latency - issue_per_uop) +
                      (1.0 - fc) * hier.l3_latency * l2ov);
      stall += (l3_level - l3_loads) * hier.l3_latency * stov;
    }
    stall += mem_loads * (fc * mem_lat + (1.0 - fc) * mem_lat * memov);
    stall += mem_stores * mem_lat * stov;
    stall += rt_cross * mem_lat;  // barrier RMWs are chained: full exposure
    r.stall_mem = stall;

    r.stall_tlb = (r.dtlb_misses + r.itlb_misses) *
                  static_cast<double>(m.tlb_walk_penalty);
    r.stall_fe = r.tc_misses * static_cast<double>(m.trace_miss_penalty);
    r.stall_branch =
        r.mispredicts * static_cast<double>(m.mispredict_penalty);
    r.cycles =
        r.issue + r.stall_mem + r.stall_tlb + r.stall_fe + r.stall_branch;

    // ---- wall time ---------------------------------------------------------
    const double sf = p.serial_uop_fraction();
    double wall_cpu;
    if (pl.threads <= 1) {
      wall_cpu = r.cycles;
    } else {
      const double serial_cycles =
          serial_base != nullptr ? serial_base->cycles : r.cycles;
      const double imb = p.imbalance(k);
      // Serial sections run on the master while the other contexts wait —
      // but the simulator's SMT degradation is per *configured* core
      // occupancy, not per instantaneous activity, so with HT on the
      // master pays the issue stretch even alone.
      const double serial_mode = mt ? m.smt_issue_stretch : 1.0;
      // Gather sections replicate with team size (scanned partial sets) at
      // that serial-mode speed, plus the coherence upgrade of the
      // replicated reads: rescued lines are chained L2 hits, the residue
      // full cache-to-cache misses, all exposed on the master's critical
      // path.
      gather_stall = gather_miss * mem_lat + gather_rescued * l2_lat;
      gather_wall =
          sf * serial_cycles * gfrac * (T - 1.0) * serial_mode + gather_stall;
      wall_cpu = sf * serial_cycles * serial_mode + gather_wall +
                 (1.0 - sf) * r.cycles / T * imb;
      wall_cpu += static_cast<double>(p.barriers) * kBarrierLatencyFrac *
                  static_cast<double>(m.mem_latency);
    }
    const double chips = std::max(1, pl.chips_used);
    const double bus_busy =
        ((mem_level + r.bus_prefetches) * m.bus_read_occupancy +
         wb * m.bus_write_occupancy) /
        chips;
    r.wall = std::max({wall_cpu, bus_busy, mc_busy});

    // Refine the DRAM latency from the controller utilisation seen this
    // pass, then recompute once.
    const double util = mc_busy / std::max(1.0, wall_cpu);
    mem_lat = static_cast<double>(m.mem_latency) *
              (1.0 + kQueueGain * std::min(1.5, util));
  }
  // The replicated gather work is master-context busy time: fold it into
  // the cycle/stall totals after the wall loop so the parallel-portion term
  // (r.cycles / T) stays free of serial-section cycles.
  r.stall_mem += gather_stall;
  r.cycles += gather_wall;
  return r;
}

}  // namespace

Prediction predict(const KernelProfile& profile,
                   const sim::MachineParams& params, const Placement& place) {
  const KernelProfile::Anchor& a = profile.anchor;

  // First pass: un-anchored serial analysis, from which the measured-over-
  // modelled capacity corrections are derived.  Second pass re-runs the
  // serial analysis with those corrections so the base reproduces the
  // anchor; the target placement then extrapolates from that calibrated
  // footing, with coherence/runtime traffic added unscaled on top.
  const Hierarchy hier = resolve_hierarchy(params);
  const Raw base0 =
      analyze(profile, params, Placement::serial(), hier, nullptr, nullptr);
  Correction c;
  if (a.valid) {
    c.l1_miss = anchor_ratio(a.l1d_misses, base0.l1_misses);
    c.l2_miss = anchor_ratio(a.l2_misses, base0.l2_misses);
    c.dtlb = anchor_ratio(a.dtlb_misses, base0.dtlb_misses);
    c.tc_refs = anchor_ratio(a.tc_refs, base0.tc_refs);
    c.tc_miss = anchor_ratio(a.tc_misses, base0.tc_misses);
    c.itlb = anchor_ratio(a.itlb_misses, base0.itlb_misses);
    c.bus_writes = anchor_ratio(a.bus_writes, base0.bus_writes);
  }
  const Raw base =
      analyze(profile, params, Placement::serial(), hier, nullptr, &c);
  const Raw raw = place.threads <= 1 && place.contexts_per_core <= 1
                      ? base
                      : analyze(profile, params, place, hier, &base, &c);

  const double r_cyc = a.valid ? anchor_ratio(a.cycles, base.cycles) : 1.0;
  const double r_wall = a.valid ? anchor_ratio(a.wall_cycles, base.wall) : 1.0;

  Prediction out;
  out.coherence_transfers = raw.coherence;
  out.l1d_refs = raw.accesses;
  out.l1d_misses = std::min(raw.l1_misses, out.l1d_refs);
  out.l2_refs = out.l1d_misses;
  out.l2_misses = std::min(raw.l2_misses, out.l2_refs);
  out.tc_refs = raw.tc_refs;
  out.tc_misses = std::min(raw.tc_misses, out.tc_refs);
  out.itlb_refs = static_cast<double>(profile.fetches);
  out.itlb_misses = raw.itlb_misses;
  out.dtlb_misses = raw.dtlb_misses;
  out.branches = raw.branches;
  out.mispredicts = raw.mispredicts;
  out.bus_reads = raw.bus_reads;
  out.bus_writes = raw.bus_writes;
  out.bus_prefetches = raw.bus_prefetches;

  out.instructions = raw.instructions;
  out.cycles = raw.cycles * r_cyc;
  out.stall_mem = raw.stall_mem * r_cyc;
  out.stall_fe = raw.stall_fe * r_cyc;
  out.stall_tlb = raw.stall_tlb * r_cyc;
  out.stall_branch = raw.stall_branch * r_cyc;
  out.wall_cycles = raw.wall * r_wall;
  out.serial_wall_cycles = a.valid ? a.wall_cycles : base.wall;
  out.speedup = out.wall_cycles > 0
                    ? out.serial_wall_cycles / out.wall_cycles
                    : 1.0;
  out.mc_utilization =
      out.wall_cycles > 0 ? raw.mc_busy / out.wall_cycles : 0.0;

  perf::Metrics& mtx = out.metrics;
  const auto rate = [](double n, double d) { return d > 0 ? n / d : 0.0; };
  mtx.l1d_miss_rate = rate(out.l1d_misses, out.l1d_refs);
  mtx.l2_miss_rate = rate(out.l2_misses, out.l2_refs);
  mtx.trace_cache_miss_rate = rate(out.tc_misses, out.tc_refs);
  mtx.itlb_miss_rate = rate(out.itlb_misses, out.itlb_refs);
  mtx.dtlb_misses = out.dtlb_misses;
  mtx.stalled_fraction =
      rate(out.stall_mem + out.stall_fe + out.stall_tlb + out.stall_branch,
           out.cycles);
  mtx.branch_prediction_rate =
      out.branches > 0 ? 1.0 - out.mispredicts / out.branches : 0.0;
  mtx.prefetch_bus_fraction =
      rate(out.bus_prefetches,
           out.bus_reads + out.bus_writes + out.bus_prefetches);
  mtx.cpi = rate(out.cycles, out.instructions);
  return out;
}

}  // namespace paxsim::model
