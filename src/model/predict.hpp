// paxsim/model/predict.hpp
//
// The analytical layer of paxmodel: maps one KernelProfile (collected from a
// single profiled serial run, model/profile.hpp) to predicted cache/TLB hit
// rates, bus occupancy, CPI, wall time and speedup for *any* MachineParams
// and thread placement — the instant what-if tier next to full simulation.
//
// Model structure (each piece mirrors the simulator's cost model so the two
// tiers disagree only where the analytical abstractions lose information):
//
//   capacity   per-thread reuse-distance histograms integrated against the
//              target geometry, with a Poisson set-conflict correction and
//              per-context competitive capacity sharing under SMT;
//   SMT        the paper's partitioned-buffer asymmetry: issue stretched by
//              smt_issue_stretch, independent-miss overlap degraded to the
//              mt_* factors, chained loads unaffected (CG's HT win);
//   sharing    cross-owner transitions on written lines become cache-to-
//              cache misses when the owners map to different cores;
//   prefetch   sequential DRAM candidates (stream detection at profile
//              time) are rescued to L2 at kPrefetchCoverage;
//   bandwidth  FSB-per-package and memory-controller rooflines bound the
//              wall time, with a queueing inflation of the DRAM latency as
//              controller utilisation grows;
//   Amdahl     the serial uop fraction runs at serial-mode speed; the
//              parallel remainder divides by the thread count times the
//              static-schedule imbalance factor.
//
// Anchoring: when profile.anchor is valid (the harness fills it from the
// profiling run's own counters), absolute scales are corrected by the
// measured-over-modelled serial ratios, so configuration predictions
// extrapolate relative effects from a measured baseline.  The Serial
// configuration then reproduces the anchor exactly by construction.
#pragma once

#include <array>
#include <cstdint>

#include "model/profile.hpp"
#include "perf/metrics.hpp"
#include "sim/params.hpp"

namespace paxsim::model {

/// Where a team's threads land on the machine — the placement facts the
/// model needs from a harness StudyConfig (kept free of harness types so
/// the dependency points harness -> model only).
struct Placement {
  /// Upper bound on team size the model resolves core placement for; wide
  /// enough for every topology the simulator accepts (numa16 is 16 ranks).
  static constexpr std::size_t kMaxRanks = 32;

  int threads = 1;             ///< team size
  int cores_used = 1;          ///< distinct physical cores occupied
  int chips_used = 1;          ///< distinct packages occupied
  int contexts_per_core = 1;   ///< max team contexts sharing one core
  int contexts_per_chip = 1;   ///< max team contexts sharing one package
  /// Global physical-core index (chip * cores_per_chip + core) of each
  /// thread rank; only the first `threads` entries are meaningful.
  std::array<std::uint8_t, kMaxRanks> rank_core{};

  [[nodiscard]] static Placement serial() noexcept { return Placement{}; }
};

/// Predicted outcome of one benchmark on one configuration.  Counts are
/// expected values (fractional); `metrics` carries the same Figure-2 bundle
/// simulation reports, so the two tiers emit one schema.
struct Prediction {
  double wall_cycles = 0;        ///< predicted completion time
  double serial_wall_cycles = 0; ///< predicted Serial wall (speedup base)
  double speedup = 1.0;          ///< serial_wall_cycles / wall_cycles
  double cycles = 0;             ///< total context execution cycles
  double instructions = 0;
  perf::Metrics metrics;         ///< the Figure-2 bundle

  // Expected event counts backing the metrics.
  double l1d_refs = 0, l1d_misses = 0;
  double l2_refs = 0, l2_misses = 0;
  double tc_refs = 0, tc_misses = 0;
  double itlb_refs = 0, itlb_misses = 0;
  double dtlb_misses = 0;
  double branches = 0, mispredicts = 0;
  double bus_reads = 0, bus_writes = 0, bus_prefetches = 0;
  double coherence_transfers = 0;
  double stall_mem = 0, stall_fe = 0, stall_tlb = 0, stall_branch = 0;
  /// Memory-controller busy cycles over predicted wall (roofline pressure).
  double mc_utilization = 0;
};

/// Evaluates the analytical model: @p profile from a profiled serial run,
/// @p params the target machine (any geometry/scale), @p place the thread
/// placement.  Pure computation — microseconds, no simulation.
[[nodiscard]] Prediction predict(const KernelProfile& profile,
                                 const sim::MachineParams& params,
                                 const Placement& place);

}  // namespace paxsim::model
