#include "model/profile.hpp"

#include <algorithm>

namespace paxsim::model {

std::size_t thread_count_index(int threads) noexcept {
  std::size_t best = 0;
  for (std::size_t k = 0; k < kProfiledThreadCounts.size(); ++k) {
    if (kProfiledThreadCounts[k] <= threads) best = k;
  }
  return best;
}

Profiler::Profiler(sim::Machine& machine) : machine_(&machine) {
  machine_->set_trace_sink(this);
  attached_ = true;
}

Profiler::~Profiler() {
  if (attached_) machine_->set_trace_sink(nullptr);
}

KernelProfile Profiler::finish() {
  if (attached_) {
    machine_->set_trace_sink(nullptr);
    attached_ = false;
  }
  profile_.distinct_lines = line_stacks_[0].distinct();
  profile_.distinct_pages = page_stacks_[0].distinct();
  profile_.distinct_blocks = block_stack_.distinct();
  KernelProfile out = std::move(profile_);
  profile_ = KernelProfile{};
  return out;
}

bool Profiler::in_runtime_range(sim::Addr addr) const noexcept {
  for (const auto& [base, end] : runtime_ranges_) {
    if (addr >= base && addr < end) return true;
  }
  return false;
}

void Profiler::on_access(const sim::HwContext& /*ctx*/, sim::Addr addr,
                         bool is_store, sim::Dep dep) {
  if (is_store) {
    ++profile_.stores;
  } else {
    ++profile_.loads;
    if (dep == sim::Dep::kChained) ++profile_.chained_loads;
  }
  if (fork_depth_ > 0) ++profile_.par_accesses;
  const bool runtime = in_runtime_range(addr);
  if (runtime) ++profile_.runtime_accesses;

  const std::uint64_t word = addr >> 3;
  const std::uint64_t line = addr >> 6;
  const std::uint64_t pageno = addr >> 12;

  // Serial word stream (spatial-locality diagnostic).
  if (const std::uint64_t d = word_stack_.access(word);
      d == StackDistanceTracker::kCold) {
    profile_.word.add_cold();
  } else {
    profile_.word.add(d);
  }

  // Per-tau virtual-owner line/page streams.
  std::uint64_t serial_line_distance = StackDistanceTracker::kCold;
  for (std::size_t k = 0; k < kProfiledThreadCounts.size(); ++k) {
    const std::uint8_t owner = k == 0 ? 0 : owner_[k];
    StackDistanceTracker& ls = line_stacks_[owner_base_[k] + owner];
    StackDistanceTracker& ps = page_stacks_[owner_base_[k] + owner];
    const std::uint64_t dl = ls.access(line);
    if (k == 0) serial_line_distance = dl;
    if (dl == StackDistanceTracker::kCold) {
      profile_.line[k].add_cold();
      if (is_store) profile_.store_line[k].add_cold();
    } else {
      profile_.line[k].add(dl);
      if (is_store) profile_.store_line[k].add(dl);
    }
    const std::uint64_t dp = ps.access(pageno);
    if (dp == StackDistanceTracker::kCold) {
      profile_.page[k].add_cold();
    } else {
      profile_.page[k].add(dp);
    }
  }

  // Stream detection on the serial line stream: a DRAM candidate whose
  // predecessor line is still hot is part of a sequential walk the stream
  // prefetcher covers.
  if (!runtime && (serial_line_distance == StackDistanceTracker::kCold ||
                   serial_line_distance >= kStreamFar)) {
    ++profile_.stream_candidates;
    if (line != 0) {
      const std::uint64_t dprev = line_stacks_[0].peek(line - 1);
      if (dprev != StackDistanceTracker::kCold && dprev < kStreamNear) {
        ++profile_.streamed;
      }
    }
  }

  // Cross-owner invalidations on written lines: the coherence-transfer
  // candidates.  Runtime-internal lines are excluded — their parallel-run
  // traffic (barrier, cursor) is modelled analytically from the loop
  // structure, not from the serial stream.
  if (!runtime) {
    LineShare& share = shares_[line];
    if (fork_depth_ == 0 && share.written) {
      const LineShare::Tau& t8 = share.tau[2];
      if (t8.last_writer != 0xFF && t8.last_writer != 0) {
        ++profile_.serial_gather;
        if ((t8.valid & 1u) == 0 || t8.seen[0] < t8.version) {
          ++profile_.serial_gather_lines;
        }
      }
    }
    for (std::size_t k = 1; k < kProfiledThreadCounts.size(); ++k) {
      LineShare::Tau& ts = share.tau[k - 1];
      const std::uint8_t owner = owner_[k];
      const auto bit = static_cast<std::uint8_t>(1u << owner);
      // A transfer needs the line cached by this owner (not a cold touch —
      // those are already in the reuse histograms) and written by another
      // owner since; read-read sharing never invalidates.
      if ((ts.valid & bit) != 0 && ts.seen[owner] < ts.version &&
          ts.last_writer != 0xFF && ts.last_writer != owner) {
        ++profile_.owner_transitions[k - 1]
                                    [static_cast<std::size_t>(ts.last_writer) *
                                         8 +
                                     owner];
      }
      if (is_store) {
        ++ts.version;
        ts.last_writer = owner;
      }
      ts.seen[owner] = ts.version;
      ts.valid |= bit;
    }
    if (is_store) share.written = true;
  }
}

void Profiler::on_fetch(const sim::HwContext& ctx, sim::Addr code_addr,
                        std::uint32_t uops) {
  ++profile_.fetches;
  profile_.uops += uops;
  if (fork_depth_ > 0) profile_.par_uops += uops;

  const sim::BlockId block = ctx.last_block();
  if (const std::uint64_t d = block_stack_.access(block);
      d == StackDistanceTracker::kCold) {
    profile_.block.add_cold();
  } else {
    profile_.block.add(d);
  }
  if (const std::uint64_t d = code_page_stack_.access(code_addr >> 12);
      d == StackDistanceTracker::kCold) {
    profile_.code_page.add_cold();
  } else {
    profile_.code_page.add(d);
  }

  // Advance the loop cursor: in a serial run the body block is fetched
  // exactly once per iteration, in iteration order, so the fetch count *is*
  // the iteration index — which determines the static-schedule virtual
  // owner under every candidate thread count.
  if (loop_.open && block == loop_.body && loop_.next < loop_.end) {
    const std::size_t iter = loop_.next++;
    ++profile_.iterations;
    const std::size_t n = loop_.end - loop_.begin;
    for (std::size_t k = 1; k < kProfiledThreadCounts.size(); ++k) {
      const auto tau = static_cast<std::size_t>(kProfiledThreadCounts[k]);
      const std::size_t per = (n + tau - 1) / tau;
      const std::size_t owner = per == 0 ? 0 : (iter - loop_.begin) / per;
      owner_[k] = static_cast<std::uint8_t>(std::min(owner, tau - 1));
    }
  }
}

void Profiler::on_loop(const sim::HwContext& /*ctx*/, sim::BlockId body,
                       std::size_t begin, std::size_t end) {
  loop_ = LoopCursor{true, body, begin, end, begin};
  ++profile_.loops;
  const std::size_t n = end > begin ? end - begin : 0;
  if (n == 0) return;
  for (std::size_t k = 0; k < kProfiledThreadCounts.size(); ++k) {
    const auto tau = static_cast<std::size_t>(kProfiledThreadCounts[k]);
    const std::size_t per = (n + tau - 1) / tau;
    // Contiguous static split: every thread but the last runs `per`
    // iterations; the straggler chunk is what the slowest thread waits on.
    profile_.chunk_max_iters[k] += static_cast<double>(per);
    profile_.chunk_mean_iters[k] +=
        static_cast<double>(n) / static_cast<double>(tau);
  }
}

void Profiler::on_team(TeamEvent ev, const void* /*team*/,
                       const sim::HwContext* const* /*members*/,
                       std::size_t /*count*/) {
  // Any team event delimits the current work-sharing loop.
  loop_.open = false;
  owner_.fill(0);
  switch (ev) {
    case TeamEvent::kFork:
      ++fork_depth_;
      break;
    case TeamEvent::kJoin:
      if (fork_depth_ > 0) --fork_depth_;
      break;
    case TeamEvent::kBarrier:
      ++profile_.barriers;
      break;
    case TeamEvent::kCreate:
      break;
  }
}

void Profiler::on_runtime_range(sim::Addr base, std::size_t bytes) {
  runtime_ranges_.emplace_back(base, base + bytes);
}

void Profiler::on_sync(SyncOp /*op*/, const sim::HwContext& /*ctx*/,
                       sim::Addr /*addr*/) {}

void Profiler::on_thread_moved(const sim::HwContext& /*from*/,
                               const sim::HwContext& /*to*/) {}

}  // namespace paxsim::model
