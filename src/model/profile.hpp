// paxsim/model/profile.hpp
//
// The profiling pass of paxmodel: a sim::TraceSink that condenses one
// *serial* reference-path run into a KernelProfile — the machine-independent
// summary the analytical layer (model/predict.hpp) evaluates for any
// MachineParams and thread placement.
//
// What one serial run can say about parallel runs
// -----------------------------------------------
// The suite's loops are statically scheduled over contiguous iteration
// blocks, so the iteration-to-thread mapping under tau threads is known at
// profile time.  The profiler therefore tracks, for every candidate thread
// count tau in {1,2,4,8}, a *virtual owner* per access (which thread would
// have issued it) and maintains per-owner reuse-distance stacks: the
// resulting per-tau histograms describe each thread's private reference
// stream, including the cold-miss duplication shared data incurs when every
// owner first-touches its own copy.  Cross-owner transitions on written
// lines are recorded per tau as an 8x8 matrix — the coherence-transfer
// candidates a placement turns into cache-to-cache misses when the two
// owners land on different cores.
//
// Attachment is RAII like check::Checker: construction attaches to the
// machine, finish() (or destruction) detaches.  The machine must run with
// MachineParams::profile = true so the reference path reports every event;
// profiling observes and never mutates, so a profiled run's counters are
// bit-identical to an unprofiled one (test-enforced).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "model/reuse.hpp"
#include "sim/hooks.hpp"
#include "sim/machine.hpp"

namespace paxsim::model {

/// Thread counts the profiler precomputes virtual-owner streams for —
/// exactly the team sizes of the paper's Table-1 configurations.
inline constexpr std::array<int, 4> kProfiledThreadCounts{1, 2, 4, 8};

/// Index into kProfiledThreadCounts for a team size (nearest not-above
/// match; 3 threads maps to 2, anything above 8 maps to 8).
[[nodiscard]] std::size_t thread_count_index(int threads) noexcept;

/// Machine-independent summary of one profiled serial run.
struct KernelProfile {
  // ---- instruction/access mix ---------------------------------------------
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t chained_loads = 0;   ///< Dep::kChained loads (HT's overlap win)
  std::uint64_t fetches = 0;         ///< dynamic block fetches
  std::uint64_t uops = 0;            ///< total uops fetched
  std::uint64_t par_accesses = 0;    ///< accesses inside fork..join regions
  std::uint64_t par_uops = 0;        ///< uops fetched inside fork..join
  std::uint64_t runtime_accesses = 0;///< to declared runtime-internal lines

  // ---- loop structure ------------------------------------------------------
  std::uint64_t loops = 0;           ///< work-sharing loop instances
  std::uint64_t iterations = 0;      ///< loop-body iterations observed
  std::uint64_t barriers = 0;        ///< runtime barrier events
  /// Per tau: sum over loops of the largest static chunk (iterations the
  /// slowest thread runs) and of the mean chunk n/tau — their ratio is the
  /// static-schedule imbalance factor.
  std::array<double, 4> chunk_max_iters{};
  std::array<double, 4> chunk_mean_iters{};

  // ---- reuse-distance histograms ------------------------------------------
  ReuseHistogram word;               ///< 8-byte words, serial stream
  std::array<ReuseHistogram, 4> line;        ///< 64-byte lines, per tau
  std::array<ReuseHistogram, 4> store_line;  ///< store subset of `line`
  std::array<ReuseHistogram, 4> page;        ///< 4-KiB pages, per tau
  ReuseHistogram block;              ///< code blocks (trace-cache stream)
  ReuseHistogram code_page;          ///< code pages (ITLB stream)

  // ---- streaming ----------------------------------------------------------
  /// Long-distance or cold line accesses (DRAM candidates), and the subset
  /// whose predecessor line was touched recently — sequential streams the
  /// hardware prefetcher covers.
  std::uint64_t stream_candidates = 0;
  std::uint64_t streamed = 0;

  // ---- sharing ------------------------------------------------------------
  /// Per tau in {2,4,8} (index tau_idx-1): count of accesses to a line the
  /// accessing virtual owner had cached but another owner *wrote* since —
  /// the MESI invalidations a placement turns into cache-to-cache misses
  /// when the two owners land on different cores.  [from*8+to] matrix with
  /// `from` the invalidating writer.  Cold first touches are not counted
  /// (the per-owner reuse histograms already carry them), and read-read
  /// sharing never invalidates, so it is not counted either.
  std::array<std::array<std::uint64_t, 64>, 3> owner_transitions{};
  /// Serial-region (outside fork..join) accesses to lines last written by a
  /// non-master tau=8 virtual owner: the master scanning the team's partial
  /// results.  Such gather sections replicate with team size — a T-thread
  /// run scans T partial sets where the serial profile saw one.
  std::uint64_t serial_gather = 0;
  /// The line-grain subset of `serial_gather`: accesses that would actually
  /// fetch the line (first master touch, or written by another owner since
  /// the master last held it).  Scans re-read each line many times; only
  /// these events become misses when the sets replicate.
  std::uint64_t serial_gather_lines = 0;

  // ---- footprint ----------------------------------------------------------
  std::uint64_t distinct_lines = 0;
  std::uint64_t distinct_pages = 0;
  std::uint64_t distinct_blocks = 0;

  // ---- serial anchor -------------------------------------------------------
  /// Measured outcome of the profiling run itself (filled by the harness
  /// from the run's counters).  The analytical layer anchors its absolute
  /// scale against these: the profiled serial run doubles as the model's
  /// per-kernel calibration point, so configuration predictions extrapolate
  /// *relative* effects rather than absolute ones.
  struct Anchor {
    bool valid = false;
    double wall_cycles = 0;
    double cycles = 0;
    double instructions = 0;
    double l1d_refs = 0, l1d_misses = 0;
    double l2_refs = 0, l2_misses = 0;
    double tc_refs = 0, tc_misses = 0;
    double itlb_refs = 0, itlb_misses = 0;
    double dtlb_misses = 0;
    double branches = 0, mispredicts = 0;
    double bus_reads = 0, bus_writes = 0, bus_prefetches = 0;
    double prefetches_issued = 0, prefetches_useful = 0;
    double stall_mem = 0, stall_branch = 0, stall_tlb = 0, stall_fe = 0;
  } anchor;

  /// Fraction of fetched uops outside fork..join (the Amdahl serial part).
  [[nodiscard]] double serial_uop_fraction() const noexcept {
    if (uops == 0) return 0.0;
    return 1.0 - static_cast<double>(par_uops) / static_cast<double>(uops);
  }
  /// Fraction of serial-region accesses that gather parallel partials —
  /// the share of serial work expected to replicate with team size.
  [[nodiscard]] double gather_fraction() const noexcept {
    const std::uint64_t total = loads + stores;
    if (total <= par_accesses) return 0.0;
    const auto serial_acc = static_cast<double>(total - par_accesses);
    return std::min(1.0, static_cast<double>(serial_gather) / serial_acc);
  }
  /// Static-schedule imbalance factor (>= 1) for tau-index @p k.
  [[nodiscard]] double imbalance(std::size_t k) const noexcept {
    if (chunk_mean_iters[k] <= 0) return 1.0;
    const double r = chunk_max_iters[k] / chunk_mean_iters[k];
    return r < 1.0 ? 1.0 : r;
  }
};

/// TraceSink that builds a KernelProfile from the reference-path event
/// stream of a (serial) run.
class Profiler final : public sim::TraceSink {
 public:
  /// Attaches to @p machine (Machine::set_trace_sink).
  explicit Profiler(sim::Machine& machine);
  ~Profiler() override;

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Detaches and returns the assembled profile.  Idempotent (subsequent
  /// calls return an empty profile).
  [[nodiscard]] KernelProfile finish();

  // ---- sim::TraceSink ------------------------------------------------------
  void on_access(const sim::HwContext& ctx, sim::Addr addr, bool is_store,
                 sim::Dep dep) override;
  void on_fetch(const sim::HwContext& ctx, sim::Addr code_addr,
                std::uint32_t uops) override;
  void on_loop(const sim::HwContext& ctx, sim::BlockId body,
               std::size_t begin, std::size_t end) override;
  void on_team(TeamEvent ev, const void* team,
               const sim::HwContext* const* members,
               std::size_t count) override;
  void on_runtime_range(sim::Addr base, std::size_t bytes) override;
  void on_sync(SyncOp op, const sim::HwContext& ctx, sim::Addr addr) override;
  void on_thread_moved(const sim::HwContext& from,
                       const sim::HwContext& to) override;

 private:
  /// Reuse distance thresholds for stream detection (in 64-byte lines):
  /// an access is a DRAM candidate when cold or with distance >= kStreamFar,
  /// and counted as streamed when line-1 was within kStreamNear.
  static constexpr std::uint64_t kStreamFar = 4096;   // 256 KiB of lines
  static constexpr std::uint64_t kStreamNear = 64;

  [[nodiscard]] bool in_runtime_range(sim::Addr addr) const noexcept;

  sim::Machine* machine_;
  bool attached_ = false;
  KernelProfile profile_;

  // Virtual-owner state: per tau-index, per owner, one line and one page
  // stack.  Index [k][owner] flattened as owner_base_[k]+owner.
  std::array<StackDistanceTracker, 15> line_stacks_;
  std::array<StackDistanceTracker, 15> page_stacks_;
  StackDistanceTracker word_stack_;
  StackDistanceTracker block_stack_;
  StackDistanceTracker code_page_stack_;
  static constexpr std::array<std::size_t, 4> owner_base_{0, 1, 3, 7};

  // Current work-sharing loop (owner attribution).
  struct LoopCursor {
    bool open = false;
    sim::BlockId body = 0;
    std::size_t begin = 0, end = 0;
    std::size_t next = 0;  ///< next iteration a body fetch accounts for
  } loop_;
  std::array<std::uint8_t, 4> owner_{};  ///< current virtual owner per tau
  int fork_depth_ = 0;

  // Per-line sharing state.  Per tau: the last writing owner, a version
  // bumped on every store, and each owner's version-at-last-access — an
  // owner re-touching the line with a newer version than it last saw was
  // invalidated in between (the MESI transfer candidate).
  struct LineShare {
    struct Tau {
      std::uint8_t last_writer = 0xFF;
      std::uint8_t valid = 0;  ///< bitmask: owners that have touched the line
      std::uint32_t version = 0;
      std::array<std::uint32_t, 8> seen{};
    };
    std::array<Tau, 3> tau{};
    bool written = false;
  };
  std::unordered_map<std::uint64_t, LineShare> shares_;

  std::vector<std::pair<sim::Addr, sim::Addr>> runtime_ranges_;
};

}  // namespace paxsim::model
