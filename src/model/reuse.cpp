#include "model/reuse.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace paxsim::model {

// ---------------------------------------------------------------------------
// StackDistanceTracker
// ---------------------------------------------------------------------------

namespace {
constexpr std::uint32_t kInitialCap = 1024;
}  // namespace

void StackDistanceTracker::fen_add(std::uint32_t slot, int delta) noexcept {
  for (std::uint32_t i = slot + 1; i <= cap_; i += i & (~i + 1)) {
    fen_[i] = static_cast<std::uint32_t>(static_cast<int>(fen_[i]) + delta);
  }
}

std::uint64_t StackDistanceTracker::fen_prefix(
    std::uint32_t slot) const noexcept {
  std::uint64_t sum = 0;
  for (std::uint32_t i = slot + 1; i > 0; i -= i & (~i + 1)) sum += fen_[i];
  return sum;
}

std::uint64_t StackDistanceTracker::live_after(
    std::uint32_t t) const noexcept {
  // All live slots minus those at or before t (t itself is live).
  return static_cast<std::uint64_t>(last_.size()) - fen_prefix(t);
}

void StackDistanceTracker::compact_or_grow() {
  const std::uint32_t live = static_cast<std::uint32_t>(last_.size());
  if (cap_ == 0) {
    cap_ = kInitialCap;
    fen_.assign(cap_ + 1, 0);
    return;
  }
  if (live * 2 <= cap_) {
    // Renumber the live slots in recency order, dropping the dead ones.
    std::vector<std::pair<std::uint32_t, std::uint64_t>> order;
    order.reserve(live);
    // paxlint: allow(determinism) -- collected pairs are sorted on the next line before any order-sensitive use
    for (const auto& [key, slot] : last_) order.emplace_back(slot, key);
    std::sort(order.begin(), order.end());
    fen_.assign(cap_ + 1, 0);
    std::uint32_t next = 0;
    for (const auto& [slot, key] : order) {
      last_[key] = next;
      fen_add(next, +1);
      ++next;
    }
    time_ = next;
    return;
  }
  // Mostly-live tree: double the slot space instead (keeps amortized O(1)
  // slot assignment even for scans that never reuse).
  cap_ *= 2;
  fen_.assign(cap_ + 1, 0);
  // paxlint: allow(determinism) -- Fenwick point-adds commute; the resulting tree is identical in any visit order
  for (const auto& [key, slot] : last_) {
    (void)key;
    fen_add(slot, +1);
  }
}

std::uint64_t StackDistanceTracker::access(std::uint64_t key) {
  if (time_ == cap_) compact_or_grow();
  std::uint64_t distance = kCold;
  const auto it = last_.find(key);
  if (it != last_.end()) {
    distance = live_after(it->second);
    fen_add(it->second, -1);
    it->second = time_;
    fen_add(time_, +1);
  } else {
    last_.emplace(key, time_);
    fen_add(time_, +1);
  }
  ++time_;
  return distance;
}

std::uint64_t StackDistanceTracker::peek(std::uint64_t key) const {
  const auto it = last_.find(key);
  if (it == last_.end()) return kCold;
  return live_after(it->second);
}

// ---------------------------------------------------------------------------
// ReuseHistogram
// ---------------------------------------------------------------------------

std::size_t ReuseHistogram::bucket_index(std::uint64_t d) noexcept {
  if (d < kExact) return static_cast<std::size_t>(d);
  const int octave = std::bit_width(d) - 1;  // >= 6
  const std::uint64_t sub = (d >> (octave - 3)) & (kSub - 1);
  return kExact + static_cast<std::size_t>(octave - 6) * kSub +
         static_cast<std::size_t>(sub);
}

std::uint64_t ReuseHistogram::bucket_lo(std::size_t i) noexcept {
  if (i < kExact) return i;
  const std::size_t octave = 6 + (i - kExact) / kSub;
  const std::size_t sub = (i - kExact) % kSub;
  return (std::uint64_t{1} << octave) +
         static_cast<std::uint64_t>(sub) * (std::uint64_t{1} << (octave - 3));
}

std::uint64_t ReuseHistogram::bucket_hi(std::size_t i) noexcept {
  if (i < kExact) return i + 1;
  const std::size_t octave = 6 + (i - kExact) / kSub;
  return bucket_lo(i) + (std::uint64_t{1} << (octave - 3));
}

void ReuseHistogram::add(std::uint64_t distance, std::uint64_t weight) {
  const std::size_t idx = bucket_index(distance);
  if (idx >= counts_.size()) counts_.resize(idx + 1, 0);
  counts_[idx] += weight;
  finite_ += weight;
}

void ReuseHistogram::merge(const ReuseHistogram& other) {
  if (other.counts_.size() > counts_.size()) {
    counts_.resize(other.counts_.size(), 0);
  }
  for (std::size_t i = 0; i < other.counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  finite_ += other.finite_;
  cold_ += other.cold_;
}

double ReuseHistogram::hit_probability(double distance, std::size_t sets,
                                       std::size_t ways) {
  if (ways == 0 || sets == 0) return 0.0;
  if (distance < static_cast<double>(ways)) return 1.0;  // cannot be evicted
  // The distance-many distinct intervening lines scatter uniformly over the
  // sets; the access hits iff fewer than `ways` landed in its own set.
  // Binomial(distance, 1/sets) ~= Poisson(distance/sets).
  const double lambda = distance / static_cast<double>(sets);
  double term = std::exp(-lambda);  // underflows to 0 for hopeless lambdas
  if (term == 0.0) return 0.0;
  double cdf = term;
  for (std::size_t j = 1; j < ways; ++j) {
    term *= lambda / static_cast<double>(j);
    cdf += term;
  }
  return std::min(1.0, cdf);
}

double ReuseHistogram::expected_hits(std::size_t sets,
                                     std::size_t ways) const {
  double hits = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double mid = 0.5 * (static_cast<double>(bucket_lo(i)) +
                              static_cast<double>(bucket_hi(i) - 1));
    hits += static_cast<double>(counts_[i]) * hit_probability(mid, sets, ways);
  }
  return hits;
}

double ReuseHistogram::fraction_below(double capacity) const {
  if (total() == 0) return 0.0;
  double below = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double lo = static_cast<double>(bucket_lo(i));
    const double hi = static_cast<double>(bucket_hi(i));
    if (capacity >= hi) {
      below += static_cast<double>(counts_[i]);
    } else if (capacity > lo) {
      below += static_cast<double>(counts_[i]) * (capacity - lo) / (hi - lo);
    }
  }
  return below / static_cast<double>(total());
}

MissSplit miss_split(const ReuseHistogram& h, std::size_t sets,
                     std::size_t ways) {
  MissSplit out;
  out.cold = static_cast<double>(h.cold());
  const double capacity_lines =
      static_cast<double>(sets) * static_cast<double>(ways);
  const auto& counts = h.buckets();
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double mid =
        0.5 * (static_cast<double>(ReuseHistogram::bucket_lo(i)) +
               static_cast<double>(ReuseHistogram::bucket_hi(i) - 1));
    const double p = ReuseHistogram::hit_probability(mid, sets, ways);
    const double n = static_cast<double>(counts[i]);
    out.hits += n * p;
    if (mid >= capacity_lines) {
      out.capacity += n * (1.0 - p);
    } else {
      out.conflict += n * (1.0 - p);
    }
  }
  return out;
}

}  // namespace paxsim::model
