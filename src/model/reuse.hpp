// paxsim/model/reuse.hpp
//
// Reuse-distance machinery for paxmodel, the analytical predictor:
//
//   * StackDistanceTracker — Mattson's LRU stack algorithm in Olken's
//     O(log n) formulation: a hash map from key to its most recent
//     timestamp plus a Fenwick tree over timestamps marking which are live
//     (most recent for their key).  The reuse distance of an access is the
//     number of *distinct* other keys touched since the previous access to
//     the same key — exactly the LRU stack depth minus one, so an LRU cache
//     of capacity C hits iff distance < C.
//
//   * ReuseHistogram — log-linear histogram of reuse distances (exact
//     buckets below 64, then eight sub-buckets per octave), integrable
//     against any cache geometry: `expected_hits(sets, ways)` folds each
//     bucket through a binomial/Poisson set-conflict model, which is what
//     lets one profiled run predict hit rates for every MachineParams.
//
//   * miss_split — the classic cold / capacity / conflict decomposition of
//     the misses the histogram implies for one geometry.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace paxsim::model {

/// Mattson/Olken LRU stack-distance tracker over opaque 64-bit keys
/// (line indices, page indices, block ids — the caller picks the
/// granularity by shifting addresses before calling).
class StackDistanceTracker {
 public:
  /// Distance reported for a first-touch (cold) access.
  static constexpr std::uint64_t kCold = ~std::uint64_t{0};

  /// Records an access to @p key and returns its reuse distance: the number
  /// of distinct other keys accessed since the previous access to @p key,
  /// or kCold on first touch.
  std::uint64_t access(std::uint64_t key);

  /// Reuse distance @p key would observe if accessed now, without recording
  /// anything.  kCold if never seen.  (Used for neighbour-line stream
  /// detection.)
  [[nodiscard]] std::uint64_t peek(std::uint64_t key) const;

  /// Number of distinct keys seen so far.
  [[nodiscard]] std::size_t distinct() const noexcept { return last_.size(); }

 private:
  /// Live timestamps strictly greater than slot @p t (0-based).
  [[nodiscard]] std::uint64_t live_after(std::uint32_t t) const noexcept;
  void fen_add(std::uint32_t slot, int delta) noexcept;
  [[nodiscard]] std::uint64_t fen_prefix(std::uint32_t slot) const noexcept;
  /// Renumbers timestamps (dropping dead slots) or doubles capacity.
  void compact_or_grow();

  std::unordered_map<std::uint64_t, std::uint32_t> last_;  ///< key -> slot
  std::vector<std::uint32_t> fen_;  ///< Fenwick tree, 1-based, live markers
  std::uint32_t cap_ = 0;           ///< slots available before compaction
  std::uint32_t time_ = 0;          ///< next slot to assign
};

/// Log-linear reuse-distance histogram.  Distances below kExact get exact
/// buckets; above, each power-of-two octave is split into kSub sub-buckets,
/// so integration error stays within ~12% of a bucket's span.
class ReuseHistogram {
 public:
  static constexpr std::uint64_t kExact = 64;
  static constexpr std::uint64_t kSub = 8;

  void add(std::uint64_t distance, std::uint64_t weight = 1);
  void add_cold(std::uint64_t weight = 1) { cold_ += weight; }
  void merge(const ReuseHistogram& other);

  [[nodiscard]] std::uint64_t cold() const noexcept { return cold_; }
  /// Accesses with a finite distance (re-references).
  [[nodiscard]] std::uint64_t finite() const noexcept { return finite_; }
  /// All recorded accesses (finite + cold).
  [[nodiscard]] std::uint64_t total() const noexcept {
    return finite_ + cold_;
  }

  /// Expected number of recorded accesses that hit an LRU cache of
  /// @p sets x @p ways entries: stack-distance integration with a Poisson
  /// set-conflict correction (an access at distance d sees ~Poisson(d/sets)
  /// intervening lines in its own set and hits iff fewer than `ways`
  /// arrived).  Cold accesses never hit.
  [[nodiscard]] double expected_hits(std::size_t sets,
                                     std::size_t ways) const;

  /// Fraction of all recorded accesses (cold included) whose distance is
  /// below @p capacity — the fully-associative hit rate at that capacity,
  /// with linear interpolation inside the straddling bucket.
  [[nodiscard]] double fraction_below(double capacity) const;

  /// Probability that one access at distance @p distance hits a
  /// @p sets x @p ways LRU cache (the per-access kernel expected_hits
  /// integrates).  Exposed for the unit tests.
  [[nodiscard]] static double hit_probability(double distance,
                                              std::size_t sets,
                                              std::size_t ways);

  // Bucket introspection (tests and report emitters).
  [[nodiscard]] static std::size_t bucket_index(std::uint64_t d) noexcept;
  [[nodiscard]] static std::uint64_t bucket_lo(std::size_t i) noexcept;
  [[nodiscard]] static std::uint64_t bucket_hi(std::size_t i) noexcept;
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const noexcept {
    return counts_;
  }

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t finite_ = 0;
  std::uint64_t cold_ = 0;
};

/// Cold / capacity / conflict decomposition of a histogram against one
/// geometry.  hits + cold + capacity + conflict == total().
struct MissSplit {
  double hits = 0;      ///< expected set-associative hits
  double cold = 0;      ///< first-touch misses
  double capacity = 0;  ///< distance >= sets*ways: even fully-assoc misses
  double conflict = 0;  ///< distance <  sets*ways but evicted by set conflict
};

[[nodiscard]] MissSplit miss_split(const ReuseHistogram& h, std::size_t sets,
                                   std::size_t ways);

}  // namespace paxsim::model
