// paxsim/npb/array.hpp
//
// Instrumented arrays: real host storage whose every simulated access is
// routed through a hardware context, so the kernels compute *real numbers*
// (verifiable) while the cache hierarchy, TLBs and bus see the *real address
// stream*.
//
// Two access planes:
//   * get()/put()   — instrumented: charge a simulated load/store, then
//                     touch host memory.
//   * host()        — uninstrumented: used only by untimed setup and
//                     verification code.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

#include "sim/core.hpp"
#include "sim/machine.hpp"
#include "sim/types.hpp"

namespace paxsim::npb {

/// A 1-D instrumented array of trivially-copyable T.
template <typename T>
class Array {
 public:
  Array() = default;

  /// Allocates @p n elements in @p space (64-byte aligned, like a real
  /// allocator would for scientific arrays).
  Array(sim::AddressSpace& space, std::size_t n)
      : data_(n), base_(space.alloc(n * sizeof(T), 64)) {}

  /// Simulated address of element @p i.
  [[nodiscard]] sim::Addr addr(std::size_t i) const noexcept {
    return base_ + static_cast<sim::Addr>(i) * sizeof(T);
  }

  /// Instrumented load of element @p i.
  [[nodiscard]] T get(sim::HwContext& ctx, std::size_t i,
                      sim::Dep dep = sim::Dep::kIndependent) const {
    assert(i < data_.size());
    ctx.load(addr(i), dep);
    return data_[i];
  }

  /// Instrumented store of @p v to element @p i.
  void put(sim::HwContext& ctx, std::size_t i, T v,
           sim::Dep dep = sim::Dep::kIndependent) {
    assert(i < data_.size());
    ctx.store(addr(i), dep);
    data_[i] = v;
  }

  /// Instrumented read-modify-write add (one load + one store).
  void add(sim::HwContext& ctx, std::size_t i, T v,
           sim::Dep dep = sim::Dep::kIndependent) {
    assert(i < data_.size());
    ctx.load(addr(i), dep);
    ctx.store(addr(i), dep);
    data_[i] += v;
  }

  /// Uninstrumented host access (setup / verification only).
  [[nodiscard]] T& host(std::size_t i) noexcept { return data_[i]; }
  [[nodiscard]] const T& host(std::size_t i) const noexcept { return data_[i]; }

  /// Uninstrumented raw pointer to the host backing store.
  [[nodiscard]] const T* host_data() const noexcept { return data_.data(); }
  [[nodiscard]] T* host_data() noexcept { return data_.data(); }

  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }
  [[nodiscard]] std::size_t footprint_bytes() const noexcept {
    return data_.size() * sizeof(T);
  }

 private:
  std::vector<T> data_;
  sim::Addr base_ = 0;
};

}  // namespace paxsim::npb
