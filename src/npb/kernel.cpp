#include "npb/kernel.hpp"

#include <cctype>

#include "npb/kernels_impl.hpp"

namespace paxsim::npb {

std::string_view benchmark_name(Benchmark b) noexcept {
  switch (b) {
    case Benchmark::kCG: return "CG";
    case Benchmark::kMG: return "MG";
    case Benchmark::kFT: return "FT";
    case Benchmark::kIS: return "IS";
    case Benchmark::kEP: return "EP";
    case Benchmark::kBT: return "BT";
    case Benchmark::kSP: return "SP";
    case Benchmark::kLU: return "LU";
    case Benchmark::kRacyHist: return "RW";
    case Benchmark::kRacyFlag: return "RF";
  }
  return "??";
}

bool parse_benchmark(std::string_view s, Benchmark& out) noexcept {
  if (s.size() != 2) return false;
  const char a = static_cast<char>(std::toupper(s[0]));
  const char b = static_cast<char>(std::toupper(s[1]));
  const auto match = [&](Benchmark bm) {
    const std::string_view n = benchmark_name(bm);
    if (n[0] == a && n[1] == b) {
      out = bm;
      return true;
    }
    return false;
  };
  for (const Benchmark bm : kAllBenchmarks) {
    if (match(bm)) return true;
  }
  for (const Benchmark bm : kRacyBenchmarks) {
    if (match(bm)) return true;
  }
  return false;
}

std::string_view class_name(ProblemClass c) noexcept {
  switch (c) {
    case ProblemClass::kClassS: return "S";
    case ProblemClass::kClassW: return "W";
    case ProblemClass::kClassA: return "A";
    case ProblemClass::kClassB: return "B";
  }
  return "?";
}

std::unique_ptr<Kernel> make_kernel(Benchmark b) {
  switch (b) {
    case Benchmark::kCG: return detail::make_cg();
    case Benchmark::kMG: return detail::make_mg();
    case Benchmark::kFT: return detail::make_ft();
    case Benchmark::kIS: return detail::make_is();
    case Benchmark::kEP: return detail::make_ep();
    case Benchmark::kBT: return detail::make_bt();
    case Benchmark::kSP: return detail::make_sp();
    case Benchmark::kLU: return detail::make_lu();
    case Benchmark::kRacyHist: return detail::make_racy_hist();
    case Benchmark::kRacyFlag: return detail::make_racy_flag();
  }
  return nullptr;
}

}  // namespace paxsim::npb
