// paxsim/npb/kernel.hpp
//
// The benchmark-kernel interface and the suite registry.
//
// Each kernel is the NAS Parallel Benchmark algorithm re-implemented in C++
// against the instrumented-array API: the numbers computed are real (and
// verified), and the address/branch stream presented to the simulator is the
// algorithm's own.
//
// Problem classes: NPB classes rescaled by the same factor as the machine's
// caches (DESIGN.md).  `kClassB` is the study default and is tuned so that
// the per-benchmark working-set : L2 ratios land in the same regimes the
// paper reports for real class B on the 2 MB Paxville L2.
//
// Kernels execute in `step()` granules (one outer iteration each) so that
// the multi-program co-scheduler can interleave two programs in virtual
// time, the way two processes share a real machine.
#pragma once

#include <memory>
#include <string_view>

#include "sim/machine.hpp"
#include "xomp/team.hpp"

namespace paxsim::npb {

/// Suite members (NPB-OMP 3.x), plus two deliberately racy diagnostic
/// kernels (kRacyHist "RW", kRacyFlag "RF") that seed known data races for
/// the analysis subsystem (src/check/) to find.  The racy kernels are never
/// part of kAllBenchmarks: study drivers iterate the suite, the checker
/// tests request them by name.
enum class Benchmark { kCG, kMG, kFT, kIS, kEP, kBT, kSP, kLU,
                       kRacyHist, kRacyFlag };

/// All suite members, in the paper's listing order (kernels then apps).
inline constexpr Benchmark kAllBenchmarks[] = {
    Benchmark::kCG, Benchmark::kMG, Benchmark::kFT, Benchmark::kIS,
    Benchmark::kEP, Benchmark::kBT, Benchmark::kSP, Benchmark::kLU};

/// The seeded-racy diagnostic kernels (checker tests only).
inline constexpr Benchmark kRacyBenchmarks[] = {Benchmark::kRacyHist,
                                                Benchmark::kRacyFlag};

/// Short uppercase name ("CG", "MG", ...).
[[nodiscard]] std::string_view benchmark_name(Benchmark b) noexcept;

/// Parses "CG"/"cg" etc.; returns true on success.
bool parse_benchmark(std::string_view s, Benchmark& out) noexcept;

/// Rescaled NPB problem classes (see DESIGN.md: problem sizes shrink by the
/// same factor as the simulated caches, preserving pressure regimes).
enum class ProblemClass { kClassS, kClassW, kClassA, kClassB };

[[nodiscard]] std::string_view class_name(ProblemClass c) noexcept;

/// Per-run problem configuration.
struct ProblemConfig {
  ProblemClass cls = ProblemClass::kClassB;
  std::uint64_t seed = 314159265;  ///< data seed; varied across trials
};

/// A benchmark kernel instance.  Lifecycle:
///   setup(space, cfg)  — untimed: allocate & initialise data
///   step(team, s) for s in [0, total_steps())   — the timed region
///   verify()           — numeric validation of the computed results
class Kernel {
 public:
  virtual ~Kernel() = default;

  [[nodiscard]] virtual Benchmark id() const noexcept = 0;
  [[nodiscard]] std::string_view name() const noexcept {
    return benchmark_name(id());
  }

  /// Allocates and initialises problem data (untimed, host side).
  virtual void setup(sim::AddressSpace& space, const ProblemConfig& cfg) = 0;

  /// Number of timed outer iterations.
  [[nodiscard]] virtual int total_steps() const noexcept = 0;

  /// Executes timed outer iteration @p s on @p team.
  virtual void step(xomp::Team& team, int s) = 0;

  /// Validates the numeric result after all steps have run.
  [[nodiscard]] virtual bool verify() const = 0;

  /// A scalar digest of the computed result (NPB prints analogous
  /// verification values).  Two runs of the same problem (same class and
  /// seed) must produce signatures equal up to parallel-reduction
  /// reassociation error, regardless of the hardware configuration that
  /// executed them — the cross-configuration determinism property the test
  /// suite enforces.
  [[nodiscard]] virtual double result_signature() const = 0;

  /// Approximate simulated-data footprint, for reporting.
  [[nodiscard]] virtual std::size_t footprint_bytes() const noexcept = 0;
};

/// Creates a fresh kernel instance for @p b.
[[nodiscard]] std::unique_ptr<Kernel> make_kernel(Benchmark b);

}  // namespace paxsim::npb
