// NPB BT / SP — simplified ADI application kernels (shared implementation).
//
// Both applications advance a 5-component field on a 3-D grid by an
// alternating-direction implicit step: for each dimension, every grid line
// is solved with the Thomas algorithm for an implicit diffusion system
// (I + sigma * tridiag(-1, 2, -1)) u* = u with reflective (Neumann) ends.
// This is a real, unconditionally stable solve with two exact invariants we
// verify: total mass is conserved and energy (sum u^2) is non-increasing.
//
// The two benchmarks differ exactly where the NPB originals differ:
//   * BT solves 5x5 *block* tridiagonal systems — all five components move
//     in one pass per dimension, with heavy per-cell arithmetic (the block
//     factorisations).  Compute-rich, good cache locality.
//   * SP solves *scalar* (penta)diagonal systems — one component per pass,
//     five passes per dimension, light per-cell arithmetic.  Same data, 5x
//     the memory sweeps: SP is the bandwidth-hungry sibling.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "npb/array.hpp"
#include "npb/kernel.hpp"
#include "npb/rng.hpp"

namespace paxsim::npb::detail {

struct AdiShape {
  std::size_t n;  // grid edge
  int steps;
};

inline AdiShape adi_size(ProblemClass c) {
  // Class B keeps the field at ~10x the (scaled) per-core L2, preserving
  // the "grid far exceeds the cache" regime the real class B sits in — a
  // smaller grid would let the split working set become L2-resident and
  // manufacture superlinear speedups the paper does not show.
  switch (c) {
    case ProblemClass::kClassS: return {8, 2};
    case ProblemClass::kClassW: return {16, 3};
    case ProblemClass::kClassA: return {24, 3};
    case ProblemClass::kClassB: return {32, 4};
  }
  return {8, 2};
}

/// Behavioural knobs distinguishing BT from SP.
struct AdiProfile {
  Benchmark bench;
  bool per_component_passes;     // SP: one pass per component
  std::uint32_t cell_uops;       // arithmetic per cell per pass
  std::uint32_t body_uops;       // static code-block size
};

template <AdiProfile Profile>
class AdiKernel final : public Kernel {
 public:
  [[nodiscard]] Benchmark id() const noexcept override { return Profile.bench; }

  void setup(sim::AddressSpace& space, const ProblemConfig& cfg) override {
    const AdiShape sz = adi_size(cfg.cls);
    n_ = sz.n;
    steps_ = sz.steps;
    u_ = Array<double>(space, kComp * n_ * n_ * n_);
    NpbRandom rng(cfg.seed);
    double mass = 0, energy = 0;
    for (std::size_t c = 0; c < u_.size(); ++c) {
      const double v = rng.next() - 0.5;
      u_.host(c) = v;
      mass += v;
      energy += v * v;
    }
    initial_mass_ = mass;
    initial_energy_ = energy;
    energy_history_.assign(1, energy);
  }

  [[nodiscard]] int total_steps() const noexcept override { return steps_; }

  void step(xomp::Team& team, int /*s*/) override {
    for (int dim = 0; dim < 3; ++dim) {
      if constexpr (Profile.per_component_passes) {
        for (std::size_t comp = 0; comp < kComp; ++comp) {
          sweep(team, dim, comp, comp + 1);
        }
      } else {
        sweep(team, dim, 0, kComp);
      }
    }
    energy_history_.push_back(host_energy());
  }

  [[nodiscard]] bool verify() const override {
    // Mass conservation (Neumann ends) and monotone energy decay.
    double mass = 0;
    for (std::size_t c = 0; c < u_.size(); ++c) {
      if (!std::isfinite(u_.host(c))) return false;
      mass += u_.host(c);
    }
    if (std::abs(mass - initial_mass_) >
        1e-9 * (1.0 + std::abs(initial_mass_))) {
      return false;
    }
    for (std::size_t s = 1; s < energy_history_.size(); ++s) {
      if (energy_history_[s] > energy_history_[s - 1] * (1.0 + 1e-12)) {
        return false;
      }
    }
    return energy_history_.back() < initial_energy_;
  }

  [[nodiscard]] std::size_t footprint_bytes() const noexcept override {
    return u_.footprint_bytes();
  }

  [[nodiscard]] double result_signature() const override {
    return energy_history_.back();
  }

 private:
  static constexpr std::size_t kComp = 5;
  static constexpr double kSigma = 0.4;
  static constexpr xomp::CodeBlock kBlkSweep{1, Profile.body_uops};

  [[nodiscard]] std::size_t cell(std::size_t i, std::size_t j,
                                 std::size_t k) const noexcept {
    return ((k * n_ + j) * n_ + i);
  }

  /// Solves (I + sigma*L) x = rhs along one line (Thomas), reflective ends.
  static void thomas(std::vector<double>& x) {
    const std::size_t n = x.size();
    static thread_local std::vector<double> cp, dp;
    cp.assign(n, 0.0);
    dp.assign(n, 0.0);
    auto diag = [n](std::size_t t) {
      return (t == 0 || t + 1 == n) ? 1.0 + kSigma : 1.0 + 2.0 * kSigma;
    };
    const double off = -kSigma;
    cp[0] = off / diag(0);
    dp[0] = x[0] / diag(0);
    for (std::size_t t = 1; t < n; ++t) {
      const double m = diag(t) - off * cp[t - 1];
      cp[t] = off / m;
      dp[t] = (x[t] - off * dp[t - 1]) / m;
    }
    x[n - 1] = dp[n - 1];
    for (std::size_t t = n - 1; t-- > 0;) x[t] = dp[t] - cp[t] * x[t + 1];
  }

  /// One implicit sweep along dimension @p dim for components
  /// [comp_lo, comp_hi), parallel over the n^2 grid lines.
  ///
  /// BT visits each 40-byte cell once per dimension and solves all five
  /// components off that single visit (block-tridiagonal: one pass, heavy
  /// per-cell arithmetic).  SP is called once per component, so it re-sweeps
  /// the whole interleaved field five times per dimension with light
  /// arithmetic — 5x the memory traffic over the same lines, the scalar-
  /// pentadiagonal signature.
  void sweep(xomp::Team& team, int dim, std::size_t comp_lo,
             std::size_t comp_hi) {
    const std::size_t n = n_;
    const auto ncomp = static_cast<std::uint32_t>(comp_hi - comp_lo);
    // One scratch set per team rank: bodies run concurrently on host
    // threads under --par, so shared buffers would race (thomas() keeps
    // its own temporaries thread_local for the same reason).
    if (scratch_.size() < static_cast<std::size_t>(team.size())) {
      scratch_.resize(static_cast<std::size_t>(team.size()));
    }
    team.parallel_for(
        0, n * n, xomp::Schedule::static_default(), kBlkSweep,
        [&](std::size_t line, sim::HwContext& ctx, int rank) {
          Scratch& sc = scratch_[static_cast<std::size_t>(rank)];
          std::vector<double>& line_buf = sc.line_buf;
          const std::size_t a = line % n;
          const std::size_t b = line / n;
          line_buf.resize(n * (comp_hi - comp_lo));
          // Gather: one visit per cell, all requested components ride the
          // same 40-byte cell record.
          for (std::size_t t = 0; t < n; ++t) {
            const std::size_t c = line_cell(dim, a, b, t);
            ctx.load(u_.addr(kComp * c + comp_lo));
            for (std::size_t comp = comp_lo; comp < comp_hi; ++comp) {
              line_buf[(comp - comp_lo) * n + t] = u_.host(kComp * c + comp);
            }
          }
          // Per-cell arithmetic (5x5 block factorisations for BT, scalar
          // eliminations for SP), then the real Thomas solves.
          ctx.alu(static_cast<std::uint32_t>(n) * Profile.cell_uops * ncomp);
          for (std::size_t comp = comp_lo; comp < comp_hi; ++comp) {
            sc.comp_view.assign(
                line_buf.begin() + static_cast<std::ptrdiff_t>((comp - comp_lo) * n),
                line_buf.begin() + static_cast<std::ptrdiff_t>((comp - comp_lo + 1) * n));
            thomas(sc.comp_view);
            for (std::size_t t = 0; t < n; ++t) {
              line_buf[(comp - comp_lo) * n + t] = sc.comp_view[t];
            }
          }
          // Scatter: again one store per cell visit.
          for (std::size_t t = 0; t < n; ++t) {
            const std::size_t c = line_cell(dim, a, b, t);
            ctx.store(u_.addr(kComp * c + comp_lo));
            for (std::size_t comp = comp_lo; comp < comp_hi; ++comp) {
              u_.host(kComp * c + comp) = line_buf[(comp - comp_lo) * n + t];
            }
          }
        });
  }

  [[nodiscard]] std::size_t line_cell(int dim, std::size_t a, std::size_t b,
                                      std::size_t t) const noexcept {
    switch (dim) {
      case 0: return cell(t, a, b);
      case 1: return cell(a, t, b);
      default: return cell(a, b, t);
    }
  }

  [[nodiscard]] double host_energy() const {
    double e = 0;
    for (std::size_t c = 0; c < u_.size(); ++c) e += u_.host(c) * u_.host(c);
    return e;
  }

  std::size_t n_ = 0;
  int steps_ = 0;
  double initial_mass_ = 0;
  double initial_energy_ = 0;
  struct Scratch {
    std::vector<double> line_buf;
    std::vector<double> comp_view;
  };

  std::vector<double> energy_history_;
  std::vector<Scratch> scratch_;  // indexed by team rank
  Array<double> u_;
};

}  // namespace paxsim::npb::detail
