// NPB BT — block tridiagonal ADI application (see adi_kernel.hpp).
#include "npb/kernels/adi_kernel.hpp"
#include "npb/kernels_impl.hpp"

namespace paxsim::npb::detail {
namespace {

// BT: all five components per pass, heavy 5x5-block arithmetic per cell.
constexpr AdiProfile kBtProfile{Benchmark::kBT,
                                /*per_component_passes=*/false,
                                /*cell_uops=*/40,
                                /*body_uops=*/64};

}  // namespace

std::unique_ptr<Kernel> make_bt() {
  return std::make_unique<AdiKernel<kBtProfile>>();
}

}  // namespace paxsim::npb::detail
