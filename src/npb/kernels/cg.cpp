// NPB CG — conjugate gradient.
//
// Estimates the smallest eigenvalue of a sparse symmetric positive-definite
// matrix by inverse power iteration, each outer iteration running `kCgIts`
// iterations of unpreconditioned CG (the NPB 3.x structure).
//
// Memory signature (why the paper's CG behaves the way it does):
//   * the sparse mat-vec gathers x[colidx[k]] — an *indirect, chained* load
//     stream that defeats the stream prefetcher and exposes full memory
//     latency;
//   * row lengths vary pseudo-randomly, so the inner-loop trip count — and
//     with it the back-edge branch history — is irregular; under SMT the
//     shared pattern table takes cross-thread aliasing, which is exactly the
//     branch-prediction collapse Figure 2 shows for CG on HT-on configs.
#include <cmath>
#include <cstdint>
#include <vector>

#include "npb/array.hpp"
#include "npb/kernel.hpp"
#include "npb/kernels_impl.hpp"
#include "npb/rng.hpp"

namespace paxsim::npb {
namespace {

struct CgSize {
  std::size_t n;        // rows
  int nz_min, nz_max;   // off-diagonal entries per row (upper triangle)
  int cg_its;           // CG iterations per outer step
  int outer;            // outer (timed) steps
};

CgSize cg_size(ProblemClass c) {
  // Class B is sized so that x (the gather target) is a sizeable fraction
  // of the scaled L2 while the a/colidx streams churn many times the L2 per
  // mat-vec: the unbanded quarter of the gathers then misses L2 — the
  // paper's measured CG regime (~50% L2 miss rate) — and exposes the full
  // chained DRAM latency, which is what makes CG the latency-bound,
  // HT-loving member of the suite.
  switch (c) {
    case ProblemClass::kClassS: return {512, 2, 5, 10, 2};
    case ProblemClass::kClassW: return {2048, 3, 7, 12, 2};
    case ProblemClass::kClassA: return {4096, 3, 9, 10, 3};
    case ProblemClass::kClassB: return {8192, 4, 11, 12, 3};
  }
  return {512, 2, 5, 10, 2};
}

// Static code-block ids (front-end model).
constexpr xomp::CodeBlock kBlkMatvec{1, 36};
constexpr xomp::CodeBlock kBlkDot{2, 10};
constexpr xomp::CodeBlock kBlkAxpy{3, 14};
constexpr xomp::CodeBlock kBlkScale{4, 10};
constexpr std::uint32_t kInnerBranchSite = 101;

class CgKernel final : public Kernel {
 public:
  [[nodiscard]] Benchmark id() const noexcept override { return Benchmark::kCG; }

  void setup(sim::AddressSpace& space, const ProblemConfig& cfg) override {
    const CgSize sz = cg_size(cfg.cls);
    n_ = sz.n;
    cg_its_ = sz.cg_its;
    outer_ = sz.outer;

    // Build a symmetric, strongly diagonally dominant sparse matrix from a
    // reproducible random pattern (a compact stand-in for NPB's makea).
    // Like makea's geometrically clustered columns, most entries land in a
    // band near the diagonal: the x-gather then mostly hits near-resident
    // lines while the a/colidx streams sweep the whole matrix — which is
    // what gives real CG its high *L2* miss rate (the streams) alongside a
    // tolerable L1 hit rate (the gather).
    NpbRandom rng(cfg.seed);
    std::vector<std::vector<std::pair<std::uint32_t, double>>> rows(n_);
    const std::int64_t band = 48;
    for (std::size_t i = 0; i < n_; ++i) {
      const int nz = sz.nz_min +
                     static_cast<int>(rng.next() * (sz.nz_max - sz.nz_min + 1));
      for (int k = 0; k < nz; ++k) {
        std::uint32_t j;
        if (rng.next() < 0.75) {
          // Banded entry: within +/- band of the diagonal.
          const auto off =
              static_cast<std::int64_t>(rng.next() * (2 * band + 1)) - band;
          const auto cand = static_cast<std::int64_t>(i) + off;
          if (cand < 0 || cand >= static_cast<std::int64_t>(n_)) continue;
          j = static_cast<std::uint32_t>(cand);
        } else {
          j = static_cast<std::uint32_t>(rng.next() * n_);
        }
        if (j == i) continue;
        const double v = rng.next() * 0.1;
        rows[i].push_back({j, v});
        rows[j].push_back({static_cast<std::uint32_t>(i), v});
      }
    }
    // Diagonal dominance: diag = 1 + sum|offdiag|.
    std::size_t nnz = n_;  // diagonals
    for (auto& r : rows) nnz += r.size();

    a_ = Array<double>(space, nnz);
    colidx_ = Array<std::uint32_t>(space, nnz);
    rowstr_ = Array<std::uint32_t>(space, n_ + 1);
    x_ = Array<double>(space, n_);
    z_ = Array<double>(space, n_);
    p_ = Array<double>(space, n_);
    q_ = Array<double>(space, n_);
    r_ = Array<double>(space, n_);

    std::size_t pos = 0;
    for (std::size_t i = 0; i < n_; ++i) {
      rowstr_.host(i) = static_cast<std::uint32_t>(pos);
      double offsum = 0;
      for (const auto& [j, v] : rows[i]) offsum += std::abs(v);
      a_.host(pos) = 1.0 + offsum;  // diagonal first
      colidx_.host(pos) = static_cast<std::uint32_t>(i);
      ++pos;
      for (const auto& [j, v] : rows[i]) {
        a_.host(pos) = v;
        colidx_.host(pos) = j;
        ++pos;
      }
    }
    rowstr_.host(n_) = static_cast<std::uint32_t>(pos);

    for (std::size_t i = 0; i < n_; ++i) x_.host(i) = 1.0;
    zeta_ = 0.0;
  }

  [[nodiscard]] int total_steps() const noexcept override { return outer_; }

  void step(xomp::Team& team, int /*s*/) override {
    // One NPB outer iteration: z = A^{-1} x by CG, zeta update, x = z/||z||.
    cg_solve(team);
    const double xz = dot(team, x_, z_);
    const double znorm = std::sqrt(dot(team, z_, z_));
    zeta_ = kShift + 1.0 / xz;
    // x = z / ||z||
    team.parallel_for(0, n_, xomp::Schedule::static_default(), kBlkScale,
                      [&](std::size_t i, sim::HwContext& ctx, int) {
                        const double zi = z_.get(ctx, i);
                        ctx.alu(2);
                        x_.put(ctx, i, zi / znorm);
                      });
  }

  [[nodiscard]] bool verify() const override {
    if (b_saved_.size() != n_) return false;  // no solve was run
    if (!std::isfinite(zeta_)) return false;
    // Independent residual check of the last solve: ||x_prev - A z|| must be
    // tiny relative to ||x_prev||.  x_ has been overwritten by z/||z||, so
    // recompute b = x from z: b_i = x_i * ||z||; equivalently check
    // A z ≈ b using the saved pre-normalisation vector.
    double rnorm = 0, bnorm = 0;
    for (std::size_t i = 0; i < n_; ++i) {
      double az = 0;
      for (std::uint32_t k = rowstr_.host(i); k < rowstr_.host(i + 1); ++k) {
        az += a_.host(k) * z_.host(colidx_.host(k));
      }
      const double bi = b_saved_[i];
      rnorm += (az - bi) * (az - bi);
      bnorm += bi * bi;
    }
    return std::sqrt(rnorm) <= 1e-5 * std::sqrt(bnorm);
  }

  [[nodiscard]] std::size_t footprint_bytes() const noexcept override {
    return a_.footprint_bytes() + colidx_.footprint_bytes() +
           rowstr_.footprint_bytes() + 5 * x_.footprint_bytes();
  }

  [[nodiscard]] double zeta() const noexcept { return zeta_; }

  [[nodiscard]] double result_signature() const override { return zeta_; }

 private:
  static constexpr double kShift = 20.0;

  // q = A * p  — the irregular heart of CG.
  void matvec(xomp::Team& team, Array<double>& pv, Array<double>& qv) {
    team.parallel_for(
        0, n_, xomp::Schedule::static_default(), kBlkMatvec,
        [&](std::size_t i, sim::HwContext& ctx, int) {
          const std::uint32_t lo = rowstr_.get(ctx, i);
          const std::uint32_t hi = rowstr_.get(ctx, i + 1);
          double sum = 0;
          for (std::uint32_t k = lo; k < hi; ++k) {
            const std::uint32_t j = colidx_.get(ctx, k);
            const double av = a_.get(ctx, k);
            // The gather: address depends on the just-loaded colidx -> chained.
            const double pj = pv.get(ctx, j, sim::Dep::kChained);
            ctx.alu(2);
            sum += av * pj;
            // Variable-trip inner back-edge: the CG branch signature.
            ctx.branch(kInnerBranchSite, k + 1 < hi);
          }
          qv.put(ctx, i, sum);
        });
  }

  double dot(xomp::Team& team, Array<double>& u, Array<double>& v) {
    return team.parallel_reduce(0, n_, xomp::Schedule::static_default(), kBlkDot,
                                [&](std::size_t i, sim::HwContext& ctx, int) {
                                  const double a = u.get(ctx, i);
                                  const double b = v.get(ctx, i);
                                  ctx.alu(2);
                                  return a * b;
                                });
  }

  void cg_solve(xomp::Team& team) {
    // r = p = x (b := x), z = 0.
    b_saved_.assign(n_, 0.0);
    team.parallel_for(0, n_, xomp::Schedule::static_default(), kBlkAxpy,
                      [&](std::size_t i, sim::HwContext& ctx, int) {
                        const double xi = x_.get(ctx, i);
                        r_.put(ctx, i, xi);
                        p_.put(ctx, i, xi);
                        z_.put(ctx, i, 0.0);
                        b_saved_[i] = xi;
                      });
    double rho = dot(team, r_, r_);
    for (int it = 0; it < cg_its_; ++it) {
      matvec(team, p_, q_);
      const double pq = dot(team, p_, q_);
      const double alpha = rho / pq;
      // z += alpha p;  r -= alpha q  (fused axpy pair)
      team.parallel_for(0, n_, xomp::Schedule::static_default(), kBlkAxpy,
                        [&](std::size_t i, sim::HwContext& ctx, int) {
                          const double pi = p_.get(ctx, i);
                          const double qi = q_.get(ctx, i);
                          ctx.alu(4);
                          z_.add(ctx, i, alpha * pi);
                          r_.add(ctx, i, -alpha * qi);
                        });
      const double rho_new = dot(team, r_, r_);
      const double beta = rho_new / rho;
      rho = rho_new;
      // p = r + beta p
      team.parallel_for(0, n_, xomp::Schedule::static_default(), kBlkAxpy,
                        [&](std::size_t i, sim::HwContext& ctx, int) {
                          const double ri = r_.get(ctx, i);
                          const double pi = p_.get(ctx, i);
                          ctx.alu(2);
                          p_.put(ctx, i, ri + beta * pi);
                        });
    }
  }

  std::size_t n_ = 0;
  int cg_its_ = 0;
  int outer_ = 0;
  double zeta_ = 0;
  Array<double> a_;
  Array<std::uint32_t> colidx_;
  Array<std::uint32_t> rowstr_;
  Array<double> x_, z_, p_, q_, r_;
  std::vector<double> b_saved_;
};

}  // namespace

namespace detail {
std::unique_ptr<Kernel> make_cg() { return std::make_unique<CgKernel>(); }
}  // namespace detail

}  // namespace paxsim::npb
