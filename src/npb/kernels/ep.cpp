// NPB EP — embarrassingly parallel.
//
// Generates pairs of uniform deviates with the NPB randlc generator,
// transforms accepted pairs to Gaussian deviates (Marsaglia polar method)
// and tallies them into ten square annuli.  Almost no memory traffic, a
// data-dependent acceptance branch (~78.5% taken), and heavy FP arithmetic:
// EP is the pure issue-rate yardstick — under Hyper-Threading it gains only
// the modest execution-unit-sharing benefit and pays no cache penalty.
//
// Verification is exact: the same generator is replayed uninstrumented and
// the annulus counts and Gaussian sums must match bit-for-bit.
#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

#include "npb/array.hpp"
#include "npb/kernel.hpp"
#include "npb/kernels_impl.hpp"
#include "npb/rng.hpp"

namespace paxsim::npb {
namespace {

struct EpSize {
  std::uint64_t pairs;  // total pairs over all steps
  int steps;
};

EpSize ep_size(ProblemClass c) {
  switch (c) {
    case ProblemClass::kClassS: return {1ull << 15, 2};
    case ProblemClass::kClassW: return {1ull << 16, 2};
    case ProblemClass::kClassA: return {1ull << 17, 3};
    case ProblemClass::kClassB: return {1ull << 18, 3};
  }
  return {1ull << 15, 2};
}

constexpr xomp::CodeBlock kBlkBatch{1, 40};
constexpr std::uint32_t kAcceptBranchSite = 201;
constexpr std::size_t kBatch = 256;  // pairs per loop iteration

class EpKernel final : public Kernel {
 public:
  [[nodiscard]] Benchmark id() const noexcept override { return Benchmark::kEP; }

  void setup(sim::AddressSpace& space, const ProblemConfig& cfg) override {
    const EpSize sz = ep_size(cfg.cls);
    pairs_ = sz.pairs;
    steps_ = sz.steps;
    seed_ = cfg.seed;
    q_ = Array<double>(space, 10);  // annulus tallies
    for (std::size_t i = 0; i < 10; ++i) q_.host(i) = 0.0;
    sx_ = sy_ = 0.0;
  }

  [[nodiscard]] int total_steps() const noexcept override { return steps_; }

  [[nodiscard]] double result_signature() const override { return sx_ + sy_; }

  void step(xomp::Team& team, int s) override {
    const std::size_t batches = batches_per_step();
    const std::uint64_t per_step = static_cast<std::uint64_t>(batches) * kBatch;
    const std::uint64_t first = per_step * static_cast<std::uint64_t>(s);

    std::vector<double> qloc(10 * static_cast<std::size_t>(team.size()), 0.0);
    const double sx = team.parallel_reduce(
        0, batches, xomp::Schedule::static_default(), kBlkBatch,
        [&](std::size_t b, sim::HwContext& ctx, int rank) {
          NpbRandom rng(seed_);
          rng.skip((first + b * kBatch) * 2);
          double sx_part = 0;
          for (std::size_t p = 0; p < kBatch; ++p) {
            const double x = 2.0 * rng.next() - 1.0;
            const double y = 2.0 * rng.next() - 1.0;
            ctx.alu(12);  // two randlc steps + scaling + t = x^2+y^2
            const double t = x * x + y * y;
            const bool accept = t <= 1.0;
            ctx.branch(kAcceptBranchSite, accept);
            if (!accept) continue;
            ctx.alu(18);  // log, sqrt, two products, annulus select
            const double f = std::sqrt(-2.0 * std::log(t) / t);
            const double gx = x * f;
            const double gy = y * f;
            const auto annulus = static_cast<std::size_t>(
                std::max(std::abs(gx), std::abs(gy)));
            if (annulus < 10) {
              qloc[static_cast<std::size_t>(rank) * 10 + annulus] += 1.0;
            }
            sx_part += gx;
            sy_partial_[static_cast<std::size_t>(rank)] += gy;
          }
          return sx_part;
        });
    // Merge annulus tallies (master).
    team.serial([&](sim::HwContext& ctx) {
      for (std::size_t a = 0; a < 10; ++a) {
        double s2 = 0;
        for (int r = 0; r < team.size(); ++r) {
          s2 += qloc[static_cast<std::size_t>(r) * 10 + a];
        }
        ctx.alu(static_cast<std::uint32_t>(team.size()));
        q_.add(ctx, a, s2);
      }
    });
    sx_ += sx;
    for (double& v : sy_partial_) {
      sy_ += v;
      v = 0;
    }
  }

  [[nodiscard]] bool verify() const override {
    // Exact replay: identical generator, identical arithmetic, host-only.
    double rx = 0, ry = 0;
    std::vector<double> rq(10, 0.0);
    NpbRandom rng(seed_);
    const std::uint64_t total = static_cast<std::uint64_t>(batches_per_step()) *
                                kBatch * static_cast<std::uint64_t>(steps_);
    for (std::uint64_t p = 0; p < total; ++p) {
      const double x = 2.0 * rng.next() - 1.0;
      const double y = 2.0 * rng.next() - 1.0;
      const double t = x * x + y * y;
      if (t > 1.0) continue;
      const double f = std::sqrt(-2.0 * std::log(t) / t);
      const double gx = x * f;
      const double gy = y * f;
      const auto annulus =
          static_cast<std::size_t>(std::max(std::abs(gx), std::abs(gy)));
      if (annulus < 10) rq[annulus] += 1.0;
      rx += gx;
      ry += gy;
    }
    for (std::size_t a = 0; a < 10; ++a) {
      if (rq[a] != q_.host(a)) return false;
    }
    // Sums are reduced in a different order than the replay: allow fp slack.
    return std::abs(rx - sx_) <= 1e-8 * (1.0 + std::abs(rx)) &&
           std::abs(ry - sy_) <= 1e-8 * (1.0 + std::abs(ry));
  }

  [[nodiscard]] std::size_t footprint_bytes() const noexcept override {
    return q_.footprint_bytes();
  }

 private:
  [[nodiscard]] std::size_t batches_per_step() const noexcept {
    return static_cast<std::size_t>(
        pairs_ / (static_cast<std::uint64_t>(steps_) * kBatch));
  }

  std::uint64_t pairs_ = 0;
  int steps_ = 0;
  std::uint64_t seed_ = 0;
  double sx_ = 0, sy_ = 0;
  std::array<double, 8> sy_partial_{};
  Array<double> q_;
};

}  // namespace

namespace detail {
std::unique_ptr<Kernel> make_ep() { return std::make_unique<EpKernel>(); }
}  // namespace detail

}  // namespace paxsim::npb
