// NPB FT — 3-D fast Fourier transform.
//
// Each timed step performs a forward 3-D FFT, a pointwise evolution
// (multiplication by per-point phase factors), an inverse 3-D FFT and a
// checksum — the NPB FT time-step structure.
//
// Compute/memory signature: FT is the *compute-bound* member of the pair
// study (the paper pairs it against memory-bound CG): each pencil is
// gathered (strided for the y/z dimensions), transformed with O(n log n)
// in-register arithmetic, and scattered back.  The butterfly arithmetic is
// modelled as issue-bound uops — its operands live in L1/registers — while
// the pencil gather/scatter produces the real strided address stream.
#include <cmath>
#include <complex>
#include <cstdint>
#include <numbers>
#include <vector>

#include "npb/array.hpp"
#include "npb/kernel.hpp"
#include "npb/kernels_impl.hpp"
#include "npb/rng.hpp"

namespace paxsim::npb {
namespace {

struct FtSize {
  std::size_t nx, ny, nz;  // powers of two
  int steps;
};

FtSize ft_size(ProblemClass c) {
  switch (c) {
    case ProblemClass::kClassS: return {8, 8, 8, 2};
    case ProblemClass::kClassW: return {16, 16, 8, 2};
    case ProblemClass::kClassA: return {32, 16, 16, 3};
    case ProblemClass::kClassB: return {32, 32, 16, 3};
  }
  return {8, 8, 8, 2};
}

constexpr xomp::CodeBlock kBlkFftPencil{1, 48};
constexpr xomp::CodeBlock kBlkEvolve{2, 16};
constexpr xomp::CodeBlock kBlkChecksum{3, 12};

using Cplx = std::complex<double>;

/// In-place iterative radix-2 Cooley-Tukey on a host buffer.
void fft1d(std::vector<Cplx>& a, bool inverse) {
  const std::size_t n = a.size();
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang =
        (inverse ? 2.0 : -2.0) * std::numbers::pi / static_cast<double>(len);
    const Cplx wl(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      Cplx w(1.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Cplx u = a[i + k];
        const Cplx v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wl;
      }
    }
  }
  if (inverse) {
    for (auto& x : a) x /= static_cast<double>(n);
  }
}

class FtKernel final : public Kernel {
 public:
  [[nodiscard]] Benchmark id() const noexcept override { return Benchmark::kFT; }

  void setup(sim::AddressSpace& space, const ProblemConfig& cfg) override {
    const FtSize sz = ft_size(cfg.cls);
    nx_ = sz.nx;
    ny_ = sz.ny;
    nz_ = sz.nz;
    steps_ = sz.steps;
    const std::size_t n = nx_ * ny_ * nz_;
    // Complex data as interleaved re/im doubles: u (field) and w (the
    // transpose/work array NPB FT ping-pongs against).
    u_ = Array<double>(space, 2 * n);
    w_ = Array<double>(space, 2 * n);
    orig_.resize(n);
    NpbRandom rng(cfg.seed);
    for (std::size_t c = 0; c < n; ++c) {
      const double re = rng.next() - 0.5;
      const double im = rng.next() - 0.5;
      u_.host(2 * c) = re;
      u_.host(2 * c + 1) = im;
      orig_[c] = Cplx(re, im);
    }
    checksums_.clear();
  }

  [[nodiscard]] int total_steps() const noexcept override { return steps_; }

  void step(xomp::Team& team, int s) override {
    fft3d(team, /*inverse=*/false);
    evolve(team, s + 1);
    fft3d(team, /*inverse=*/true);
    checksums_.push_back(checksum(team));
  }

  [[nodiscard]] bool verify() const override {
    // Forward FFT + unit-magnitude phase evolution + inverse FFT preserves
    // the field's energy; and the round trip without evolution would return
    // the original exactly.  Check (a) all checksums finite, (b) energy
    // conserved to near machine precision against the initial field.
    if (checksums_.empty()) return false;
    for (const Cplx c : checksums_) {
      if (!std::isfinite(c.real()) || !std::isfinite(c.imag())) return false;
    }
    double e0 = 0, e1 = 0;
    for (std::size_t c = 0; c < orig_.size(); ++c) {
      e0 += std::norm(orig_[c]);
      e1 += u_.host(2 * c) * u_.host(2 * c) +
            u_.host(2 * c + 1) * u_.host(2 * c + 1);
    }
    return std::abs(e0 - e1) <= 1e-9 * e0;
  }

  [[nodiscard]] std::size_t footprint_bytes() const noexcept override {
    return u_.footprint_bytes() + w_.footprint_bytes();
  }

  [[nodiscard]] const std::vector<Cplx>& checksums() const noexcept {
    return checksums_;
  }

  [[nodiscard]] double result_signature() const override {
    return checksums_.empty() ? 0.0
                              : checksums_.back().real() +
                                    checksums_.back().imag();
  }

 private:
  [[nodiscard]] std::size_t at(std::size_t i, std::size_t j,
                               std::size_t k) const noexcept {
    return (k * ny_ + j) * nx_ + i;
  }

  /// Transforms all pencils along dimension @p dim, parallel over pencils.
  ///
  /// NPB FT performs each pass over a *transposed* copy so the 1-D FFTs
  /// always stream contiguously (cffts1..3 + transpose); we model the same
  /// discipline: each pass reads its pencil from one array and writes it to
  /// the other at transposed-layout (contiguous) addresses, ping-ponging
  /// between u_ and the work array.  The address stream the machine sees is
  /// therefore two long prefetchable streams per pass — the real FT memory
  /// signature — while the butterfly arithmetic itself is in-register.
  ///
  /// Arithmetic density is charged at the *unscaled* class-B FFT depth
  /// (512-point transforms, ~9 stages) so that scaling the grid down does
  /// not silently turn the suite's compute-bound member memory-bound.
  void fft_dim(xomp::Team& team, int dim, bool inverse, int pass_index) {
    const std::size_t len = dim == 0 ? nx_ : (dim == 1 ? ny_ : nz_);
    const std::size_t n_pencils = (nx_ * ny_ * nz_) / len;
    constexpr std::uint32_t kClassBStages = 9;  // log2(512)

    Array<double>& src = (pass_index % 2 == 0) ? u_ : w_;
    Array<double>& dst = (pass_index % 2 == 0) ? w_ : u_;

    // One scratch pencil per team rank: loop bodies run concurrently on
    // host threads under --par, so a single shared buffer would race.
    if (pencils_.size() < static_cast<std::size_t>(team.size())) {
      pencils_.resize(static_cast<std::size_t>(team.size()));
    }
    team.parallel_for(
        0, n_pencils, xomp::Schedule::static_default(), kBlkFftPencil,
        [&](std::size_t p, sim::HwContext& ctx, int rank) {
          std::vector<Cplx>& pencil = pencils_[static_cast<std::size_t>(rank)];
          pencil.resize(len);
          // Contiguous read of this pencil in the pass's layout.
          for (std::size_t t = 0; t < len; ++t) {
            const std::size_t c = pencil_cell(dim, p, t);
            ctx.load(src.addr(2 * (p * len + t)));
            pencil[t] = Cplx(src.host(2 * c), src.host(2 * c + 1));
          }
          // Butterflies: ~16 uops per point per stage (complex mul/add plus
          // addressing), in-register.
          ctx.alu(static_cast<std::uint32_t>(len) * kClassBStages * 16);
          fft1d(pencil, inverse);
          // Contiguous write into the other array's layout.
          for (std::size_t t = 0; t < len; ++t) {
            const std::size_t c = pencil_cell(dim, p, t);
            ctx.store(dst.addr(2 * (p * len + t)));
            dst.host(2 * c) = pencil[t].real();
            dst.host(2 * c + 1) = pencil[t].imag();
          }
        });
  }

  [[nodiscard]] std::size_t pencil_cell(int dim, std::size_t p,
                                        std::size_t t) const noexcept {
    switch (dim) {
      case 0: {  // pencil p = (j,k), element t = i
        const std::size_t j = p % ny_;
        const std::size_t k = p / ny_;
        return at(t, j, k);
      }
      case 1: {  // pencil p = (i,k), element t = j
        const std::size_t i = p % nx_;
        const std::size_t k = p / nx_;
        return at(i, t, k);
      }
      default: {  // pencil p = (i,j), element t = k
        const std::size_t i = p % nx_;
        const std::size_t j = p / nx_;
        return at(i, j, t);
      }
    }
  }

  /// Forward 3-D FFT: passes 0,1,2 ping-pong u_ -> w_ -> u_ -> w_, leaving
  /// the spectrum in w_.  Inverse: passes 3,4,5 bring it back to u_.
  void fft3d(xomp::Team& team, bool inverse) {
    if (!inverse) {
      fft_dim(team, 0, false, 0);
      fft_dim(team, 1, false, 1);
      fft_dim(team, 2, false, 2);
    } else {
      fft_dim(team, 2, true, 3);
      fft_dim(team, 1, true, 4);
      fft_dim(team, 0, true, 5);
    }
  }

  /// Pointwise multiplication by a unit-magnitude per-cell phase (stands in
  /// for NPB's exp(-4 pi^2 t |k|^2) evolution while conserving energy so the
  /// verification invariant stays exact).  Operates on the spectrum, which
  /// after the forward passes lives in w_.
  void evolve(xomp::Team& team, int t) {
    const std::size_t n = nx_ * ny_ * nz_;
    team.parallel_for(0, n, xomp::Schedule::static_default(), kBlkEvolve,
                      [&](std::size_t c, sim::HwContext& ctx, int) {
                        ctx.load(w_.addr(2 * c));
                        ctx.alu(8);
                        const double phase =
                            1e-3 * static_cast<double>(t) * static_cast<double>(c % 97);
                        const Cplx w(std::cos(phase), std::sin(phase));
                        const Cplx v =
                            Cplx(w_.host(2 * c), w_.host(2 * c + 1)) * w;
                        ctx.store(w_.addr(2 * c));
                        w_.host(2 * c) = v.real();
                        w_.host(2 * c + 1) = v.imag();
                      });
  }

  Cplx checksum(xomp::Team& team) {
    const std::size_t n = nx_ * ny_ * nz_;
    const std::size_t samples = std::min<std::size_t>(1024, n);
    const double re = team.parallel_reduce(
        0, samples, xomp::Schedule::static_default(), kBlkChecksum,
        [&](std::size_t q, sim::HwContext& ctx, int) {
          const std::size_t c = (q * 1099511628211ull) % n;
          ctx.load(u_.addr(2 * c));
          ctx.alu(2);
          return u_.host(2 * c);
        });
    const double im = team.parallel_reduce(
        0, samples, xomp::Schedule::static_default(), kBlkChecksum,
        [&](std::size_t q, sim::HwContext& ctx, int) {
          const std::size_t c = (q * 1099511628211ull) % n;
          ctx.load(u_.addr(2 * c + 1));
          ctx.alu(2);
          return u_.host(2 * c + 1);
        });
    return {re, im};
  }

  std::size_t nx_ = 0, ny_ = 0, nz_ = 0;
  int steps_ = 0;
  Array<double> u_, w_;
  std::vector<Cplx> orig_;
  std::vector<Cplx> checksums_;
  std::vector<std::vector<Cplx>> pencils_;  // indexed by team rank
};

}  // namespace

namespace detail {
std::unique_ptr<Kernel> make_ft() { return std::make_unique<FtKernel>(); }
}  // namespace detail

}  // namespace paxsim::npb
