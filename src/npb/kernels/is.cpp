// NPB IS — integer sort (bucketed counting sort / ranking).
//
// Each timed step ranks the key array: per-thread private histograms, a
// serial prefix scan, then a scatter pass computing each key's rank — the
// NPB-OMP IS structure.  The scatter is the interesting part for the
// machine: the rank lookup `count[key]` is a *data-dependent (chained)* load
// into a table under heavy contention, and the final ranked store is a
// random scatter — IS stresses the DTLB and produces scattered, prefetch-
// hostile bus traffic.
#include <cstdint>
#include <vector>

#include "npb/array.hpp"
#include "npb/kernel.hpp"
#include "npb/kernels_impl.hpp"
#include "npb/rng.hpp"

namespace paxsim::npb {
namespace {

struct IsSize {
  std::size_t n_keys;
  std::size_t max_key;  // power of two
  int steps;
};

IsSize is_size(ProblemClass c) {
  switch (c) {
    case ProblemClass::kClassS: return {1 << 14, 1 << 9, 2};
    case ProblemClass::kClassW: return {1 << 16, 1 << 10, 2};
    case ProblemClass::kClassA: return {1 << 17, 1 << 11, 3};
    case ProblemClass::kClassB: return {1 << 18, 1 << 11, 3};
  }
  return {1 << 14, 1 << 9, 2};
}

constexpr xomp::CodeBlock kBlkHist{1, 12};
constexpr xomp::CodeBlock kBlkScan{2, 8};
constexpr xomp::CodeBlock kBlkRank{3, 16};

class IsKernel final : public Kernel {
 public:
  [[nodiscard]] Benchmark id() const noexcept override { return Benchmark::kIS; }

  void setup(sim::AddressSpace& space, const ProblemConfig& cfg) override {
    const IsSize sz = is_size(cfg.cls);
    n_ = sz.n_keys;
    max_key_ = sz.max_key;
    steps_ = sz.steps;
    keys_ = Array<std::uint32_t>(space, n_);
    ranks_ = Array<std::uint32_t>(space, n_);
    // Per-thread private histograms (allocated for the max team of 8).
    hist_ = Array<std::uint32_t>(space, max_key_ * kMaxThreads);
    count_ = Array<std::uint32_t>(space, max_key_);
    NpbRandom rng(cfg.seed);
    for (std::size_t i = 0; i < n_; ++i) {
      // NPB IS keys: average of four uniforms, scaled — a binomial-ish hump.
      const double r =
          (rng.next() + rng.next() + rng.next() + rng.next()) / 4.0;
      keys_.host(i) = static_cast<std::uint32_t>(r * (max_key_ - 1));
    }
  }

  [[nodiscard]] int total_steps() const noexcept override { return steps_; }

  [[nodiscard]] double result_signature() const override {
    // Order-sensitive digest of the ranking permutation.
    std::uint64_t h = 1469598103934665603ull;
    for (std::size_t i = 0; i < n_; ++i) {
      h = (h ^ ranks_.host(i)) * 1099511628211ull;
    }
    return static_cast<double>(h >> 11);
  }

  void step(xomp::Team& team, int /*s*/) override {
    const auto nt = static_cast<std::size_t>(team.size());
    // 1. Zero private histograms.
    team.parallel_for(0, max_key_ * nt, xomp::Schedule::static_default(),
                      kBlkScan, [&](std::size_t i, sim::HwContext& ctx, int) {
                        hist_.put(ctx, i, 0);
                      });
    // 2. Count keys into private histograms.
    team.parallel_for(0, n_, xomp::Schedule::static_default(), kBlkHist,
                      [&](std::size_t i, sim::HwContext& ctx, int rank) {
                        const std::uint32_t k = keys_.get(ctx, i);
                        const std::size_t h =
                            static_cast<std::size_t>(rank) * max_key_ + k;
                        // Histogram update: address depends on the key.
                        hist_.add(ctx, h, 1, sim::Dep::kChained);
                      });
    // 3. Merge + exclusive prefix scan (master).
    team.serial_for(0, max_key_, kBlkScan, [&](std::size_t k, sim::HwContext& ctx) {
      std::uint32_t s = 0;
      for (std::size_t t = 0; t < nt; ++t) {
        ctx.load(hist_.addr(t * max_key_ + k));
        s += hist_.host(t * max_key_ + k);
      }
      ctx.alu(static_cast<std::uint32_t>(nt));
      count_.put(ctx, k, s);
    });
    team.serial([&](sim::HwContext& ctx) {
      std::uint32_t acc = 0;
      for (std::size_t k = 0; k < max_key_; ++k) {
        ctx.load(count_.addr(k));
        ctx.alu(2);
        const std::uint32_t c = count_.host(k);
        ctx.store(count_.addr(k));
        count_.host(k) = acc;
        acc += c;
      }
    });
    // 3b. Turn the private histograms into per-thread scatter bases:
    //     base[t][k] = count[k] + sum of hist[s][k] over threads s < t.
    team.parallel_for(0, max_key_, xomp::Schedule::static_default(), kBlkScan,
                      [&](std::size_t k, sim::HwContext& ctx, int) {
                        std::uint32_t acc;
                        ctx.load(count_.addr(k));
                        acc = count_.host(k);
                        for (std::size_t t = 0; t < nt; ++t) {
                          const std::size_t h = t * max_key_ + k;
                          ctx.load(hist_.addr(h));
                          ctx.alu(1);
                          const std::uint32_t c = hist_.host(h);
                          ctx.store(hist_.addr(h));
                          hist_.host(h) = acc;
                          acc += c;
                        }
                      });
    // 4. Rank in parallel: each thread ranks the same slice of keys it
    //    counted in phase 2 (identical static partition), bumping its own
    //    per-key base — the NPB-OMP IS scatter.
    team.parallel_for(0, n_, xomp::Schedule::static_default(), kBlkRank,
                      [&](std::size_t i, sim::HwContext& ctx, int rank) {
                        const std::uint32_t k = keys_.get(ctx, i);
                        const std::size_t h =
                            static_cast<std::size_t>(rank) * max_key_ + k;
                        // Base lookup and bump: address depends on the key.
                        ctx.load(hist_.addr(h), sim::Dep::kChained);
                        ctx.alu(2);
                        const std::uint32_t pos = hist_.host(h)++;
                        ctx.store(hist_.addr(h));
                        ranks_.put(ctx, i, pos);  // random scatter store
                      });
  }

  [[nodiscard]] bool verify() const override {
    // ranks_ must be a permutation of [0, n) and honour key order:
    // key[i] < key[j]  =>  rank[i] < rank[j].
    std::vector<std::uint8_t> seen(n_, 0);
    for (std::size_t i = 0; i < n_; ++i) {
      const std::uint32_t r = ranks_.host(i);
      if (r >= n_ || seen[r]) return false;
      seen[r] = 1;
    }
    // Spot-check ordering via the inverse permutation.
    std::vector<std::uint32_t> by_rank(n_);
    for (std::size_t i = 0; i < n_; ++i) by_rank[ranks_.host(i)] = keys_.host(i);
    for (std::size_t r = 1; r < n_; ++r) {
      if (by_rank[r - 1] > by_rank[r]) return false;
    }
    return true;
  }

  [[nodiscard]] std::size_t footprint_bytes() const noexcept override {
    return keys_.footprint_bytes() + ranks_.footprint_bytes() +
           hist_.footprint_bytes() + count_.footprint_bytes();
  }

 private:
  static constexpr std::size_t kMaxThreads = 8;

  std::size_t n_ = 0;
  std::size_t max_key_ = 0;
  int steps_ = 0;
  Array<std::uint32_t> keys_, ranks_, hist_, count_;
};

}  // namespace

namespace detail {
std::unique_ptr<Kernel> make_is() { return std::make_unique<IsKernel>(); }
}  // namespace detail

}  // namespace paxsim::npb
