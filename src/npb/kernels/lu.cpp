// NPB LU — SSOR solver.
//
// Solves the 7-point Poisson system A u = b with symmetric successive
// over-relaxation: a lower sweep with k ascending and an upper sweep with k
// descending per iteration.  Like NPB LU, the k dependency serialises the
// planes: each k-plane is one parallel region over its j-lines, so at high
// thread counts LU is dominated by small parallel grains and frequent
// barriers — the worst-scaling member of the suite, as in the paper.
//
// Within a plane the j-neighbour uses the previous iterate (hybrid
// Jacobi-in-j / Gauss-Seidel-in-i,k), preserving parallel determinism; the
// verification invariant is the true residual ||b - A u||, which must fall
// monotonically.
#include <cmath>
#include <cstdint>
#include <vector>

#include "npb/array.hpp"
#include "npb/kernel.hpp"
#include "npb/kernels_impl.hpp"
#include "npb/rng.hpp"

namespace paxsim::npb {
namespace {

struct LuSize {
  std::size_t n;
  int steps;
};

LuSize lu_size(ProblemClass c) {
  switch (c) {
    // Class B keeps u+b above the scaled per-core L2 (the study regime).
    case ProblemClass::kClassS: return {8, 3};
    case ProblemClass::kClassW: return {12, 4};
    case ProblemClass::kClassA: return {16, 5};
    case ProblemClass::kClassB: return {24, 6};
  }
  return {8, 3};
}

constexpr xomp::CodeBlock kBlkSweep{1, 44};

class LuKernel final : public Kernel {
 public:
  [[nodiscard]] Benchmark id() const noexcept override { return Benchmark::kLU; }

  void setup(sim::AddressSpace& space, const ProblemConfig& cfg) override {
    const LuSize sz = lu_size(cfg.cls);
    n_ = sz.n;
    steps_ = sz.steps;
    u_ = Array<double>(space, n_ * n_ * n_);
    b_ = Array<double>(space, n_ * n_ * n_);
    NpbRandom rng(cfg.seed);
    for (std::size_t c = 0; c < u_.size(); ++c) {
      u_.host(c) = 0.0;
      b_.host(c) = rng.next() - 0.5;
    }
    initial_residual_ = host_residual();
    residual_history_.assign(1, initial_residual_);
  }

  [[nodiscard]] int total_steps() const noexcept override { return steps_; }

  [[nodiscard]] double result_signature() const override {
    return residual_history_.back();
  }

  void step(xomp::Team& team, int /*s*/) override {
    // Lower sweep: k ascending; upper sweep: k descending.
    for (std::size_t k = 0; k < n_; ++k) plane_sweep(team, k);
    for (std::size_t k = n_; k-- > 0;) plane_sweep(team, k);
    residual_history_.push_back(host_residual());
  }

  [[nodiscard]] bool verify() const override {
    for (std::size_t s = 1; s < residual_history_.size(); ++s) {
      if (!std::isfinite(residual_history_[s])) return false;
      if (residual_history_[s] > residual_history_[s - 1] * (1.0 + 1e-12)) {
        return false;
      }
    }
    // SSOR on a Dirichlet Poisson problem contracts briskly; demand at
    // least 10x total reduction over the run.
    return residual_history_.back() < 0.1 * initial_residual_;
  }

  [[nodiscard]] std::size_t footprint_bytes() const noexcept override {
    return u_.footprint_bytes() + b_.footprint_bytes();
  }

 private:
  [[nodiscard]] std::size_t at(std::size_t i, std::size_t j,
                               std::size_t k) const noexcept {
    return (k * n_ + j) * n_ + i;
  }

  /// Dirichlet halo: zero outside the cube.
  [[nodiscard]] double uval(std::ptrdiff_t i, std::ptrdiff_t j,
                            std::ptrdiff_t k) const noexcept {
    if (i < 0 || j < 0 || k < 0 || i >= static_cast<std::ptrdiff_t>(n_) ||
        j >= static_cast<std::ptrdiff_t>(n_) ||
        k >= static_cast<std::ptrdiff_t>(n_)) {
      return 0.0;
    }
    return u_.host(at(static_cast<std::size_t>(i), static_cast<std::size_t>(j),
                      static_cast<std::size_t>(k)));
  }

  /// One Gauss-Seidel-flavoured pass over plane @p k, parallel over j.
  /// The j-neighbours read a pre-sweep snapshot of the plane (Jacobi in j),
  /// so the result is bit-identical for every thread partition; i and k
  /// keep their Gauss-Seidel freshness (i rows are thread-sequential, k
  /// planes are barrier-ordered).
  void plane_sweep(xomp::Team& team, std::size_t k) {
    plane_snapshot_.assign(u_.host_data() + k * n_ * n_,
                           u_.host_data() + (k + 1) * n_ * n_);
    team.parallel_for(
        0, n_, xomp::Schedule::static_default(), kBlkSweep,
        [&](std::size_t j, sim::HwContext& ctx, int) {
          for (std::size_t i = 0; i < n_; ++i) {
            const std::size_t c = at(i, j, k);
            // Loads: centre, rhs, and the two out-of-line neighbours
            // (in-line neighbours ride the streaming lines).
            ctx.load(b_.addr(c));
            ctx.load(u_.addr(c));
            ctx.load(u_.addr(at(i, j, k == 0 ? 0 : k - 1)));
            if (k + 1 < n_) ctx.load(u_.addr(at(i, j, k + 1)));
            ctx.alu(14);
            const auto si = static_cast<std::ptrdiff_t>(i);
            const auto sj = static_cast<std::ptrdiff_t>(j);
            const auto sk = static_cast<std::ptrdiff_t>(k);
            const double jm =
                j == 0 ? 0.0 : plane_snapshot_[(j - 1) * n_ + i];
            const double jp =
                j + 1 == n_ ? 0.0 : plane_snapshot_[(j + 1) * n_ + i];
            const double nb = uval(si - 1, sj, sk) + uval(si + 1, sj, sk) +
                              jm + jp +
                              uval(si, sj, sk - 1) + uval(si, sj, sk + 1);
            const double gs = (b_.host(c) + nb) / 6.0;
            const double unew =
                u_.host(c) + kOmega * (gs - u_.host(c));
            ctx.store(u_.addr(c));
            u_.host(c) = unew;
          }
        });
  }

  [[nodiscard]] double host_residual() const {
    double s = 0;
    for (std::size_t k = 0; k < n_; ++k) {
      for (std::size_t j = 0; j < n_; ++j) {
        for (std::size_t i = 0; i < n_; ++i) {
          const auto si = static_cast<std::ptrdiff_t>(i);
          const auto sj = static_cast<std::ptrdiff_t>(j);
          const auto sk = static_cast<std::ptrdiff_t>(k);
          const double nb = uval(si - 1, sj, sk) + uval(si + 1, sj, sk) +
                            uval(si, sj - 1, sk) + uval(si, sj + 1, sk) +
                            uval(si, sj, sk - 1) + uval(si, sj, sk + 1);
          const double r = b_.host(at(i, j, k)) -
                           (6.0 * u_.host(at(i, j, k)) - nb);
          s += r * r;
        }
      }
    }
    return std::sqrt(s);
  }

  static constexpr double kOmega = 1.2;

  std::size_t n_ = 0;
  int steps_ = 0;
  double initial_residual_ = 0;
  std::vector<double> residual_history_;
  std::vector<double> plane_snapshot_;
  Array<double> u_, b_;
};

}  // namespace

namespace detail {
std::unique_ptr<Kernel> make_lu() { return std::make_unique<LuKernel>(); }
}  // namespace detail

}  // namespace paxsim::npb
