// NPB MG — multigrid.
//
// V-cycles of a geometric multigrid solver for the 3-D Poisson problem
// A u = v on a periodic cube, with a 7-point stencil (the NPB original uses
// a 27-point operator; the 7-point substitution keeps the identical memory
// signature — plane-streaming stencils over a level hierarchy — at lower
// simulation cost, and is flagged in DESIGN.md).
//
// Memory signature: long unit-stride streams through multiple resolution
// levels; very prefetch-friendly and strongly bandwidth-bound — in the paper
// this is the class of code whose speedup is capped by the per-package FSB.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "npb/array.hpp"
#include "npb/kernel.hpp"
#include "npb/kernels_impl.hpp"
#include "npb/rng.hpp"

namespace paxsim::npb {
namespace {

struct MgSize {
  std::size_t n;  // finest grid edge (divisible by 2^(levels-1))
  int levels;
  int cycles;  // timed V-cycles
};

MgSize mg_size(ProblemClass c) {
  switch (c) {
    case ProblemClass::kClassS: return {16, 3, 2};
    case ProblemClass::kClassW: return {24, 3, 3};
    case ProblemClass::kClassA: return {32, 4, 3};
    case ProblemClass::kClassB: return {40, 4, 3};
  }
  return {16, 3, 2};
}

constexpr xomp::CodeBlock kBlkSmooth{1, 30};
constexpr xomp::CodeBlock kBlkResid{2, 30};
constexpr xomp::CodeBlock kBlkRestrict{3, 22};
constexpr xomp::CodeBlock kBlkProlong{4, 22};
constexpr xomp::CodeBlock kBlkNorm{5, 8};

/// One grid level: u (solution), uo (previous-sweep field, the Jacobi read
/// stream), r (residual / rhs).
struct Level {
  std::size_t n = 0;  // edge length
  Array<double> u, uo, r;
  [[nodiscard]] std::size_t cells() const noexcept { return n * n * n; }
  [[nodiscard]] std::size_t at(std::size_t i, std::size_t j,
                               std::size_t k) const noexcept {
    return (k * n + j) * n + i;
  }
};

class MgKernel final : public Kernel {
 public:
  [[nodiscard]] Benchmark id() const noexcept override { return Benchmark::kMG; }

  void setup(sim::AddressSpace& space, const ProblemConfig& cfg) override {
    const MgSize sz = mg_size(cfg.cls);
    cycles_ = sz.cycles;
    levels_.clear();
    levels_.resize(static_cast<std::size_t>(sz.levels));
    std::size_t n = sz.n;
    for (auto& lv : levels_) {
      lv.n = n;
      lv.u = Array<double>(space, n * n * n);
      lv.uo = Array<double>(space, n * n * n);
      lv.r = Array<double>(space, n * n * n);
      n /= 2;
    }
    // Finest right-hand side: +1/-1 spikes at reproducible random cells
    // (NPB MG's charge distribution), zero elsewhere; u starts at zero.
    rhs_ = Array<double>(space, levels_[0].cells());
    NpbRandom rng(cfg.seed);
    for (std::size_t c = 0; c < levels_[0].cells(); ++c) rhs_.host(c) = 0.0;
    const int spikes = 20;
    for (int s = 0; s < spikes; ++s) {
      const auto c = static_cast<std::size_t>(rng.next() * levels_[0].cells());
      rhs_.host(c) = (s % 2 == 0) ? 1.0 : -1.0;
    }
    initial_norm_ = host_residual_norm();
  }

  [[nodiscard]] int total_steps() const noexcept override { return cycles_; }

  [[nodiscard]] double result_signature() const override {
    return host_residual_norm();
  }

  void step(xomp::Team& team, int /*s*/) override { v_cycle(team, 0); }

  [[nodiscard]] bool verify() const override {
    const double rn = host_residual_norm();
    if (!std::isfinite(rn)) return false;
    // Multigrid contracts the residual every cycle; demand at least 35%
    // reduction per V-cycle on average (7-pt + damped-Jacobi is ~2x).
    return rn < initial_norm_ * std::pow(0.65, cycles_done_);
  }

  [[nodiscard]] std::size_t footprint_bytes() const noexcept override {
    std::size_t b = rhs_.footprint_bytes();
    for (const auto& lv : levels_) {
      b += lv.u.footprint_bytes() + lv.uo.footprint_bytes() +
           lv.r.footprint_bytes();
    }
    return b;
  }

 private:
  // Instrumented 7-point pass over one k-plane: per point, load the three
  // k-plane neighbours at (i,j) — the in-plane neighbours ride the same
  // cache lines as the centre stream — compute, store.
  template <typename F>
  void plane_loop(xomp::Team& team, Level& lv, xomp::CodeBlock blk, F&& f) {
    const std::size_t n = lv.n;
    team.parallel_for(0, n, xomp::Schedule::static_default(), blk,
                      [&](std::size_t k, sim::HwContext& ctx, int) {
                        for (std::size_t j = 0; j < n; ++j) {
                          for (std::size_t i = 0; i < n; ++i) f(ctx, i, j, k);
                        }
                      });
  }

  /// Periodic wrap of an index expression in [0, 2n); callers pass i+1 or
  /// i+n-1 for the +/-1 neighbours.
  [[nodiscard]] static std::size_t wrap(std::size_t i, std::size_t n) noexcept {
    return i % n;
  }

  double host_stencil(const Level& lv, std::size_t i, std::size_t j,
                      std::size_t k) const {
    const std::size_t n = lv.n;
    return lv.u.host(lv.at(wrap(i + 1, n), j, k)) +
           lv.u.host(lv.at(wrap(i + n - 1, n), j, k)) +
           lv.u.host(lv.at(i, wrap(j + 1, n), k)) +
           lv.u.host(lv.at(i, wrap(j + n - 1, n), k)) +
           lv.u.host(lv.at(i, j, wrap(k + 1, n))) +
           lv.u.host(lv.at(i, j, wrap(k + n - 1, n)));
  }

  // Damped Jacobi smoothing: u += omega/6 * (b - A u) pointwise.  Textbook
  // two-stream Jacobi: the previous-sweep field is its own array (uo) that
  // the region only reads, while u is only written — plane k's writer never
  // touches a word the plane k±1 threads read, which is what makes the
  // sweep race-free (--check=race verifies exactly this).
  void smooth(xomp::Team& team, Level& lv, const Array<double>& b) {
    const std::size_t n = lv.n;
    // Snapshot u into the read stream (untimed host copy standing in for
    // the pointer swap a ping-pong Jacobi would do between sweeps).
    std::copy(lv.u.host_data(), lv.u.host_data() + lv.cells(),
              lv.uo.host_data());
    plane_loop(team, lv, kBlkSmooth,
               [&](sim::HwContext& ctx, std::size_t i, std::size_t j, std::size_t k) {
                 const std::size_t c = lv.at(i, j, k);
                 // Streamed loads: centre and the two adjacent k-planes of
                 // the old field.
                 ctx.load(lv.uo.addr(c));
                 ctx.load(lv.uo.addr(lv.at(i, j, wrap(k + 1, n))));
                 ctx.load(lv.uo.addr(lv.at(i, j, wrap(k + n - 1, n))));
                 ctx.load(b.addr(c));
                 ctx.alu(24);  // 27-point-operator arithmetic density
                 const double nb = neighbor_sum_from(lv.uo, lv, i, j, k);
                 const double res = b.host(c) - (6.0 * lv.uo.host(c) - nb);
                 const double unew = lv.uo.host(c) + (kOmega / 6.0) * res;
                 lv.u.put(ctx, c, unew);
               });
  }

  // r = b - A u.
  void residual(xomp::Team& team, Level& lv, const Array<double>& b) {
    const std::size_t n = lv.n;
    plane_loop(team, lv, kBlkResid,
               [&](sim::HwContext& ctx, std::size_t i, std::size_t j, std::size_t k) {
                 const std::size_t c = lv.at(i, j, k);
                 ctx.load(lv.u.addr(c));
                 ctx.load(lv.u.addr(lv.at(i, j, wrap(k + 1, n))));
                 ctx.load(lv.u.addr(lv.at(i, j, wrap(k + n - 1, n))));
                 ctx.load(b.addr(c));
                 ctx.alu(22);  // 27-point-operator arithmetic density
                 const double val =
                     b.host(c) - (6.0 * lv.u.host(c) - host_stencil(lv, i, j, k));
                 lv.r.put(ctx, c, val);
               });
  }

  // Full-weighting restriction of fine.r into coarse (used as coarse rhs).
  void restrict_to(xomp::Team& team, Level& fine, Level& coarse) {
    const std::size_t cn = coarse.n;
    team.parallel_for(
        0, cn, xomp::Schedule::static_default(), kBlkRestrict,
        [&](std::size_t k, sim::HwContext& ctx, int) {
          for (std::size_t j = 0; j < cn; ++j) {
            for (std::size_t i = 0; i < cn; ++i) {
              // 2x2x2 cell average of the fine residual.
              double s = 0;
              for (int dk = 0; dk < 2; ++dk) {
                const std::size_t fc =
                    fine.at(2 * i, 2 * j, 2 * k + static_cast<std::size_t>(dk));
                ctx.load(fine.r.addr(fc));
                for (int dj = 0; dj < 2; ++dj) {
                  for (int di = 0; di < 2; ++di) {
                    s += fine.r.host(fine.at(2 * i + static_cast<std::size_t>(di),
                                             2 * j + static_cast<std::size_t>(dj),
                                             2 * k + static_cast<std::size_t>(dk)));
                  }
                }
              }
              ctx.alu(8);
              const std::size_t cc = coarse.at(i, j, k);
              // Full-weighting average, times the (2h)^2 / h^2 = 4 grid
              // scaling the graph-Laplacian form of the operator needs.
              coarse.r.put(ctx, cc, 4.0 * s / 8.0);
              coarse.u.put(ctx, cc, 0.0);
            }
          }
        });
  }

  // Trilinear-ish prolongation: add the coarse correction to the fine field.
  void prolong_add(xomp::Team& team, Level& coarse, Level& fine) {
    const std::size_t fn = fine.n;
    team.parallel_for(0, fn, xomp::Schedule::static_default(), kBlkProlong,
                      [&](std::size_t k, sim::HwContext& ctx, int) {
                        for (std::size_t j = 0; j < fn; ++j) {
                          for (std::size_t i = 0; i < fn; ++i) {
                            const std::size_t cc =
                                coarse.at(i / 2, j / 2, k / 2);
                            const std::size_t fc = fine.at(i, j, k);
                            ctx.load(coarse.u.addr(cc));
                            ctx.alu(2);
                            // paxlint: allow(shared-scratch) -- fc = fine.at(i, j, k) is injective and the team iterates over k, so each iteration owns plane k outright; adds from different ranks can never land on the same element
                            fine.u.add(ctx, fc, coarse.u.host(cc));
                          }
                        }
                      });
  }

  void v_cycle(xomp::Team& team, std::size_t l) {
    Level& lv = levels_[l];
    const Array<double>& b = (l == 0) ? rhs_ : lv.r;
    if (l + 1 == levels_.size()) {
      // Coarsest level: a few smoothing sweeps stand in for a direct solve.
      for (int s = 0; s < 4; ++s) smooth(team, lv, b);
      if (l == 0) ++cycles_done_;
      return;
    }
    smooth(team, lv, b);            // pre-smooth
    residual(team, lv, b);          // r = b - A u
    restrict_to(team, lv, levels_[l + 1]);
    v_cycle(team, l + 1);
    prolong_add(team, levels_[l + 1], lv);
    smooth(team, lv, b);            // post-smooth
    if (l == 0) ++cycles_done_;
  }

  double host_residual_norm() const {
    const Level& lv = levels_[0];
    double s = 0;
    for (std::size_t k = 0; k < lv.n; ++k) {
      for (std::size_t j = 0; j < lv.n; ++j) {
        for (std::size_t i = 0; i < lv.n; ++i) {
          const std::size_t c = lv.at(i, j, k);
          const double r =
              rhs_.host(c) - (6.0 * lv.u.host(c) - host_stencil(lv, i, j, k));
          s += r * r;
        }
      }
    }
    return std::sqrt(s);
  }

  static double neighbor_sum_from(const Array<double>& f, const Level& lv,
                                  std::size_t i, std::size_t j, std::size_t k) {
    const std::size_t n = lv.n;
    return f.host(lv.at(wrap(i + 1, n), j, k)) +
           f.host(lv.at(wrap(i + n - 1, n), j, k)) +
           f.host(lv.at(i, wrap(j + 1, n), k)) +
           f.host(lv.at(i, wrap(j + n - 1, n), k)) +
           f.host(lv.at(i, j, wrap(k + 1, n))) +
           f.host(lv.at(i, j, wrap(k + n - 1, n)));
  }

  static constexpr double kOmega = 0.8;

  int cycles_ = 0;
  int cycles_done_ = 0;
  double initial_norm_ = 0;
  std::vector<Level> levels_;
  Array<double> rhs_;
};

}  // namespace

namespace detail {
std::unique_ptr<Kernel> make_mg() { return std::make_unique<MgKernel>(); }
}  // namespace detail

}  // namespace paxsim::npb
