// Seeded-racy diagnostic kernels (not NPB suite members).
//
// These two kernels exist so the analysis subsystem (src/check/) has known
// positives to find; they are excluded from kAllBenchmarks and only run by
// checker tests and `--check=` experiments.
//
//   RW (RacyHist): every thread read-modify-writes a small shared histogram
//      with no synchronisation — the classic lost-update pattern.  Under any
//      multi-threaded schedule the detector must report write-write races on
//      the shared bins.
//   RF (RacyFlag): rank 0 publishes a flag word by plain store while the
//      other ranks poll it by plain load inside the same parallel region —
//      an unsynchronised publish, so write-read / read-write races on the
//      flag word.
//
// The simulator executes threads on one host thread, interleaved in virtual
// time, so the numbers these kernels compute are still deterministic and
// verify() can be exact; the *race* is in the happens-before structure of
// the simulated access stream, which is exactly what the detector sees.
#include <cstdint>

#include "npb/array.hpp"
#include "npb/kernel.hpp"
#include "npb/kernels_impl.hpp"

namespace paxsim::npb {
namespace {

struct RacySize {
  std::size_t iters;  // loop iterations per step
  int steps;
};

RacySize racy_size(ProblemClass c) {
  switch (c) {
    case ProblemClass::kClassS: return {2048, 2};
    case ProblemClass::kClassW: return {4096, 2};
    case ProblemClass::kClassA: return {8192, 2};
    case ProblemClass::kClassB: return {16384, 2};
  }
  return {2048, 2};
}

constexpr xomp::CodeBlock kBlkTally{1, 10};
constexpr xomp::CodeBlock kBlkPoll{1, 8};
constexpr std::size_t kBins = 64;

// Knuth multiplicative hash: spreads iterations over bins so every thread
// touches every bin (maximal write-write contention).
constexpr std::size_t bin_of(std::size_t i) noexcept {
  return static_cast<std::size_t>((i * 2654435761u) % kBins);
}

class RacyHistKernel final : public Kernel {
 public:
  [[nodiscard]] Benchmark id() const noexcept override {
    return Benchmark::kRacyHist;
  }

  void setup(sim::AddressSpace& space, const ProblemConfig& cfg) override {
    const RacySize sz = racy_size(cfg.cls);
    iters_ = sz.iters;
    steps_ = sz.steps;
    hist_ = Array<double>(space, kBins);
    for (std::size_t b = 0; b < kBins; ++b) hist_.host(b) = 0.0;
  }

  [[nodiscard]] int total_steps() const noexcept override { return steps_; }

  void step(xomp::Team& team, int /*s*/) override {
    // Deliberately unsynchronised: Array::add is a load + store on a word
    // that every rank hits, with no critical/atomic bracket around it.
    team.parallel_for(0, iters_, xomp::Schedule::static_default(), kBlkTally,
                      [&](std::size_t i, sim::HwContext& ctx, int /*rank*/) {
                        // paxlint: allow(shared-scratch) -- seeded diagnostic race: racy.RW exists to be caught (paxcheck, TSan, and paxlint's own tree test assert exactly this finding)
                        hist_.add(ctx, bin_of(i), 1.0);
                      });
  }

  [[nodiscard]] bool verify() const override {
    // Host execution is virtual-time serialised, so despite the race in the
    // simulated access stream the counts are exact.
    for (std::size_t b = 0; b < kBins; ++b) {
      double expect = 0.0;
      for (std::size_t i = 0; i < iters_; ++i) {
        if (bin_of(i) == b) expect += 1.0;
      }
      expect *= static_cast<double>(steps_);
      if (hist_.host(b) != expect) return false;
    }
    return true;
  }

  [[nodiscard]] double result_signature() const override {
    double sig = 0.0;
    for (std::size_t b = 0; b < kBins; ++b) {
      sig += static_cast<double>(b + 1) * hist_.host(b);
    }
    return sig;
  }

  [[nodiscard]] std::size_t footprint_bytes() const noexcept override {
    return hist_.footprint_bytes();
  }

 private:
  std::size_t iters_ = 0;
  int steps_ = 0;
  Array<double> hist_;
};

class RacyFlagKernel final : public Kernel {
 public:
  [[nodiscard]] Benchmark id() const noexcept override {
    return Benchmark::kRacyFlag;
  }

  void setup(sim::AddressSpace& space, const ProblemConfig& cfg) override {
    const RacySize sz = racy_size(cfg.cls);
    iters_ = sz.iters;
    steps_ = sz.steps;
    flag_ = Array<double>(space, 1);
    flag_.host(0) = 0.0;
    writes_ = 0;
  }

  [[nodiscard]] int total_steps() const noexcept override { return steps_; }

  void step(xomp::Team& team, int /*s*/) override {
    const std::size_t stride = 64;
    team.parallel_for(
        0, iters_, xomp::Schedule::static_default(), kBlkPoll,
        [&](std::size_t i, sim::HwContext& ctx, int rank) {
          if (rank == 0) {
            // Unsynchronised publish: plain store, no release fence.
            if (i % stride == 0) {
              // paxlint: allow(shared-scratch) -- seeded diagnostic race: racy.RF's publish/poll pair exists to be caught (paxcheck, TSan, and paxlint's own tree test assert exactly this finding)
              flag_.put(ctx, 0, static_cast<double>(++writes_));
            }
          } else {
            // Unsynchronised poll: plain load racing with rank 0's store.
            (void)flag_.get(ctx, 0);
            ctx.alu(1);
          }
        });
  }

  [[nodiscard]] bool verify() const override {
    // Only the writer's final store is checked: what the pollers observed
    // depends on the schedule, which is the point of the exercise.
    return flag_.host(0) == static_cast<double>(writes_) && writes_ > 0;
  }

  [[nodiscard]] double result_signature() const override {
    return flag_.host(0);
  }

  [[nodiscard]] std::size_t footprint_bytes() const noexcept override {
    return flag_.footprint_bytes();
  }

 private:
  std::size_t iters_ = 0;
  int steps_ = 0;
  std::uint64_t writes_ = 0;
  Array<double> flag_;
};

}  // namespace

namespace detail {
std::unique_ptr<Kernel> make_racy_hist() {
  return std::make_unique<RacyHistKernel>();
}
std::unique_ptr<Kernel> make_racy_flag() {
  return std::make_unique<RacyFlagKernel>();
}
}  // namespace detail

}  // namespace paxsim::npb
