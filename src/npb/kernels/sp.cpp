// NPB SP — scalar pentadiagonal ADI application (see adi_kernel.hpp).
#include "npb/kernels/adi_kernel.hpp"
#include "npb/kernels_impl.hpp"

namespace paxsim::npb::detail {
namespace {

// SP: one component per pass (5x the sweeps of BT over the same data),
// light scalar arithmetic per cell: the bandwidth-hungry sibling.
constexpr AdiProfile kSpProfile{Benchmark::kSP,
                                /*per_component_passes=*/true,
                                /*cell_uops=*/25,
                                /*body_uops=*/40};

}  // namespace

std::unique_ptr<Kernel> make_sp() {
  return std::make_unique<AdiKernel<kSpProfile>>();
}

}  // namespace paxsim::npb::detail
