// paxsim/npb/kernels_impl.hpp
//
// Internal factory functions, one per suite member (each implemented in its
// own translation unit under kernels/).
#pragma once

#include <memory>

namespace paxsim::npb {
class Kernel;
namespace detail {

std::unique_ptr<Kernel> make_cg();
std::unique_ptr<Kernel> make_mg();
std::unique_ptr<Kernel> make_ft();
std::unique_ptr<Kernel> make_is();
std::unique_ptr<Kernel> make_ep();
std::unique_ptr<Kernel> make_bt();
std::unique_ptr<Kernel> make_sp();
std::unique_ptr<Kernel> make_lu();
std::unique_ptr<Kernel> make_racy_hist();
std::unique_ptr<Kernel> make_racy_flag();

}  // namespace detail
}  // namespace paxsim::npb
