// paxsim/npb/rng.hpp
//
// The NAS Parallel Benchmarks linear congruential generator ("randlc"):
//   x_{k+1} = a * x_k  mod 2^46,   a = 5^13,
// returning uniform doubles in (0,1).  Implemented with 64-bit integer
// arithmetic (2^46 fits comfortably), bit-exact with the NPB definition, so
// EP's Gaussian-pair counts are reproducible.
#pragma once

#include <cstdint>

namespace paxsim::npb {

/// NPB randlc generator.
class NpbRandom {
 public:
  static constexpr std::uint64_t kModMask = (std::uint64_t{1} << 46) - 1;
  static constexpr std::uint64_t kA = 1220703125;  // 5^13

  explicit NpbRandom(std::uint64_t seed = 314159265) noexcept
      : x_(seed & kModMask) {}

  /// Next uniform double in (0,1).
  double next() noexcept {
    x_ = mul46(kA, x_);
    return static_cast<double>(x_) * kR46;
  }

  /// Jumps the stream ahead by @p n draws in O(log n) (NPB's power method),
  /// used to give each thread an independent, reproducible substream.
  void skip(std::uint64_t n) noexcept {
    std::uint64_t a = kA;
    while (n != 0) {
      if (n & 1) x_ = mul46(a, x_);
      a = mul46(a, a);
      n >>= 1;
    }
  }

  [[nodiscard]] std::uint64_t state() const noexcept { return x_; }

 private:
  static constexpr double kR46 = 1.0 / static_cast<double>(std::uint64_t{1} << 46);

  static std::uint64_t mul46(std::uint64_t a, std::uint64_t b) noexcept {
    // 46-bit modular product via 128-bit intermediate.
    return static_cast<std::uint64_t>(
               (static_cast<unsigned __int128>(a) * b)) &
           kModMask;
  }

  std::uint64_t x_;
};

}  // namespace paxsim::npb
