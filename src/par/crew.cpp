#include "par/crew.hpp"

namespace paxsim::par {

Crew::Crew(int n_workers) {
  if (n_workers < 0) n_workers = 0;
  errors_.resize(static_cast<std::size_t>(n_workers) + 1);
  workers_.reserve(static_cast<std::size_t>(n_workers));
  for (int i = 0; i < n_workers; ++i) {
    workers_.emplace_back([this, i] { worker_main(i); });
  }
}

Crew::~Crew() {
  {
    std::lock_guard<std::mutex> g(mu_);
    shutdown_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void Crew::worker_main(int index) {
  const int lp = index + 1;
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* body = nullptr;
    {
      std::unique_lock<std::mutex> g(mu_);
      cv_start_.wait(g, [&] {
        return shutdown_ || (epoch_ != seen && lp < active_ + 1);
      });
      if (shutdown_) return;
      seen = epoch_;
      body = body_;
    }
    try {
      (*body)(lp);
    } catch (...) {
      std::lock_guard<std::mutex> g(mu_);
      errors_[static_cast<std::size_t>(lp)] = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> g(mu_);
      if (--running_ == 0) cv_done_.notify_all();
    }
  }
}

void Crew::run(int n_lps, const std::function<void(int)>& body) {
  if (n_lps > max_lps()) n_lps = max_lps();
  const int workers = n_lps - 1;
  {
    std::lock_guard<std::mutex> g(mu_);
    for (int i = 0; i < n_lps; ++i) errors_[static_cast<std::size_t>(i)] = {};
    body_ = &body;
    active_ = workers;
    running_ = workers;
    ++epoch_;
  }
  if (workers > 0) cv_start_.notify_all();
  try {
    body(0);
  } catch (...) {
    std::lock_guard<std::mutex> g(mu_);
    errors_[0] = std::current_exception();
  }
  std::unique_lock<std::mutex> g(mu_);
  cv_done_.wait(g, [&] { return running_ == 0; });
  body_ = nullptr;
  for (int i = 0; i < n_lps; ++i) {
    if (errors_[static_cast<std::size_t>(i)]) {
      std::exception_ptr e = errors_[static_cast<std::size_t>(i)];
      errors_[static_cast<std::size_t>(i)] = {};
      g.unlock();
      std::rethrow_exception(e);
    }
  }
}

}  // namespace paxsim::par
