// paxsim/par/crew.hpp
//
// A small reusable worker pool for LP execution.  One crew lives as long as
// its Team: workers are spawned once and parked on a condition variable
// between parallel regions, so per-region dispatch costs two lock/notify
// round trips instead of thread creation.  The caller always runs LP 0
// inline — a region on N LPs wakes N-1 workers.
//
// Exceptions thrown by a body (par::Abort in practice) are captured per
// worker; run() rethrows the lowest-LP one after everyone parked again, so
// the caller observes a deterministic error regardless of host timing.
#pragma once

#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace paxsim::par {

class Crew {
 public:
  /// Spawns @p n_workers host threads (pass max LPs minus one).
  explicit Crew(int n_workers);
  ~Crew();
  Crew(const Crew&) = delete;
  Crew& operator=(const Crew&) = delete;

  [[nodiscard]] int max_lps() const noexcept {
    return static_cast<int>(workers_.size()) + 1;
  }

  /// Runs @p body(lp) for lp in [0, n_lps): LP 0 on the calling thread,
  /// the rest on workers.  Returns after every LP finished; rethrows the
  /// lowest-LP captured exception, if any.
  void run(int n_lps, const std::function<void(int)>& body);

 private:
  void worker_main(int index);

  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(int)>* body_ = nullptr;  // valid while epoch open
  std::uint64_t epoch_ = 0;
  int active_ = 0;    // workers participating in the open epoch
  int running_ = 0;   // workers still inside body
  bool shutdown_ = false;
  std::vector<std::exception_ptr> errors_;  // slot per LP (0 = caller)
  std::vector<std::thread> workers_;
};

}  // namespace paxsim::par
