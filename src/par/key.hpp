// paxsim/par/key.hpp
//
// The total order of the host-parallel backend.  Every scheduling grain a
// logical process (LP) executes carries a Key: the picking thread's virtual
// clock at pick time plus a tie id (the context's flat cpu index).  The
// serial runtime dequeues grains in exactly (clock, tie) order, so replaying
// every cross-LP interaction in ascending Key order reproduces the serial
// interleaving bit for bit.  Keys also stamp cache lines ("this line was
// last touched by the grain with this key") — the evidence the conflict
// detector compares against a remote operation's key.
//
// This header is dependency-free on purpose: sim/cache.hpp embeds Keys in
// cache lines, so it must be includable from the lowest simulator layer.
#pragma once

#include <cstdint>
#include <limits>

namespace paxsim::par {

/// A position in the global grain order: (virtual clock, context flat id).
struct Key {
  double clock = 0;
  std::int32_t tie = 0;

  friend constexpr bool operator<(const Key& a, const Key& b) noexcept {
    return a.clock < b.clock || (a.clock == b.clock && a.tie < b.tie);
  }
  friend constexpr bool operator==(const Key& a, const Key& b) noexcept {
    return a.clock == b.clock && a.tie == b.tie;
  }
};

/// The stamp serial-mode caches write: compares below every real grain key,
/// so serial-mode residue can never trigger a conflict in a later parallel
/// region of the same process.
inline constexpr Key kKeyZero{0.0, std::numeric_limits<std::int32_t>::min()};

/// Published lower bound of an LP that has retired all its work.
inline constexpr double kClockDone = std::numeric_limits<double>::infinity();

}  // namespace paxsim::par
