#include "par/par.hpp"

#include <mutex>

namespace paxsim::par {

namespace {
std::mutex g_stats_mu;
Stats g_stats;
}  // namespace

void stats_add(const Stats& s) noexcept {
  std::lock_guard<std::mutex> g(g_stats_mu);
  g_stats += s;
}

Stats stats_snapshot() noexcept {
  std::lock_guard<std::mutex> g(g_stats_mu);
  return g_stats;
}

void stats_reset() noexcept {
  std::lock_guard<std::mutex> g(g_stats_mu);
  g_stats = Stats{};
}

int effective_par(int par, int jobs, unsigned hardware_threads) noexcept {
  if (par <= 1) return 1;
  if (hardware_threads == 0) hardware_threads = 1;
  if (jobs < 1) jobs = 1;
  // Each engine job drives its own machine; give every job an equal slice of
  // the host so par x jobs never oversubscribes.
  const int slice = static_cast<int>(hardware_threads) / jobs;
  const int cap = slice < 1 ? 1 : slice;
  return par < cap ? par : cap;
}

double lookahead_window(double latency_floor, double window_factor) noexcept {
  if (window_factor <= 0) return 0;  // disabled: unbounded speculation
  const double floor = latency_floor > 1.0 ? latency_floor : 1.0;
  return floor * window_factor;
}

}  // namespace paxsim::par
