// paxsim/par/par.hpp
//
// Umbrella header of the host-parallel backend: conservative logical-process
// execution of one simulated Machine across host threads, bit-identical to
// the serial fast path (see session.hpp for the protocol).  The backend is
// deliberately simulator-agnostic — it orders opaque grains and 64-bit line
// addresses — so it sits below sim/ in the layering and cache lines can embed
// par::Key stamps without a dependency cycle.
#pragma once

#include "par/crew.hpp"
#include "par/key.hpp"
#include "par/session.hpp"
#include "par/stats.hpp"

namespace paxsim::par {

/// Number of LP threads one run may use once the engine's own `--jobs`
/// parallelism is accounted for: par, clamped to hardware_threads / jobs
/// (at least 1).  Keeps `--par` composable with `--jobs` without
/// oversubscribing the host.
[[nodiscard]] int effective_par(int par, int jobs,
                                unsigned hardware_threads) noexcept;

/// Lookahead window in simulated cycles: the topology's latency floor (the
/// cheapest cross-context interaction — min of cache/bus/memory service
/// latencies) scaled by the user's window factor.  <= 0 factor disables the
/// window.  The window only bounds host-side speculation depth; results are
/// identical for every value.
[[nodiscard]] double lookahead_window(double latency_floor,
                                     double window_factor) noexcept;

}  // namespace paxsim::par
