#include "par/session.hpp"

#include <algorithm>
#include <cassert>
#include <thread>

namespace paxsim::par {

ThreadState& tls() noexcept {
  thread_local ThreadState state;
  return state;
}

Session::Session(int max_lps, double window)
    : lps_(static_cast<std::size_t>(std::max(1, max_lps))), window_(window) {
  blocked_key_.resize(lps_.size());
  blocked_valid_.assign(lps_.size(), false);
}

Session::~Session() { stats_add(stats_); }

void Session::begin_region(int n_lps, const double* initial_lbs) {
  assert(!aborted() && "a session never restarts after an abort");
  n_active_ = n_lps;
  for (int i = 0; i < n_lps; ++i) {
    LpSlot& s = lps_[static_cast<std::size_t>(i)];
    s.yield_req.store(false, std::memory_order_relaxed);
    s.tombs.clear();
    s.lb.store(initial_lbs[i], std::memory_order_release);
  }
  std::lock_guard<std::mutex> g(gate_mu_);
  std::fill(blocked_valid_.begin(), blocked_valid_.end(), false);
}

void Session::end_region() {
  for (int i = 0; i < n_active_; ++i) {
    LpSlot& s = lps_[static_cast<std::size_t>(i)];
    stats_.grains += s.grains;
    stats_.token_acquires += s.token_acquires;
    stats_.token_spins += s.token_spins;
    stats_.yields += s.yields;
    stats_.window_parks += s.window_parks;
    s.grains = s.token_acquires = s.token_spins = s.yields = s.window_parks = 0;
    s.tombs.clear();
  }
  n_active_ = 0;
}

Session::LpScope::LpScope(Session& s, int lp) : s_(s), lp_(lp), saved_(tls()) {
  ThreadState& t = tls();
  t.session = &s;
  t.lp = lp;
  t.key = Key{};
  t.token = false;
  s_.lps_[static_cast<std::size_t>(lp)].run_mu.lock();
}

Session::LpScope::~LpScope() {
  LpSlot& me = s_.lps_[static_cast<std::size_t>(lp_)];
  // Publishing "done" is what releases every qualification spin that was
  // waiting on this LP; it must precede the unlock so a parked remote
  // operation re-checking after the mutex sees the final state.
  me.lb.store(kClockDone, std::memory_order_release);
  me.run_mu.unlock();
  tls() = saved_;
}

void Session::spin_pause(std::uint64_t& spins) noexcept {
  ++spins;
  if ((spins & 0x3F) == 0) std::this_thread::yield();
}

void Session::cooperative(int lp) {
  if (abort_.load(std::memory_order_acquire)) throw Abort{"peer abort"};
  LpSlot& me = lps_[static_cast<std::size_t>(lp)];
  if (me.yield_req.load(std::memory_order_relaxed)) {
    ++me.yields;
    me.run_mu.unlock();
    std::uint64_t spins = 0;
    while (me.yield_req.load(std::memory_order_acquire)) spin_pause(spins);
    me.run_mu.lock();
    if (abort_.load(std::memory_order_acquire)) throw Abort{"peer abort"};
  }
}

double Session::floor_clock() const noexcept {
  double f = kClockDone;
  for (int i = 0; i < n_active_; ++i) {
    f = std::min(f, lps_[static_cast<std::size_t>(i)].lb.load(
                        std::memory_order_acquire));
  }
  return f;
}

void Session::begin_grain(int lp, Key key) {
  cooperative(lp);
  LpSlot& me = lps_[static_cast<std::size_t>(lp)];
  // The key slot is LP-private (only this thread stamps through it); the
  // atomic lower bound is what peers read.  Monotone: every grain strictly
  // advances its context's clock, so plain release stores suffice.
  me.current_key = key;
  me.lb.store(key.clock, std::memory_order_release);
  ThreadState& t = tls();
  t.key = key;
  t.token = false;
  ++me.grains;
  if (window_ > 0 &&
      key.clock > floor_clock() + window_ &&
      !abort_.load(std::memory_order_acquire)) {
    ++me.window_parks;
    me.run_mu.unlock();
    std::uint64_t spins = 0;
    // Park outside the run mutex so a remote operation can slip in.
    // Terminates even when peers unwind: a done LP publishes +inf.
    while (key.clock > floor_clock() + window_ &&
           !abort_.load(std::memory_order_acquire)) {
      spin_pause(spins);
    }
    me.run_mu.lock();
    cooperative(lp);
  }
}

void Session::end_grain(int lp) noexcept {
  (void)lp;
  tls().token = false;
}

void Session::acquire_token() noexcept {
  ThreadState& t = tls();
  assert(t.session == this && t.lp >= 0 && !t.token);
  const int lp = t.lp;
  const Key key = t.key;
  LpSlot& me = lps_[static_cast<std::size_t>(lp)];
  {
    std::lock_guard<std::mutex> g(gate_mu_);
    blocked_key_[static_cast<std::size_t>(lp)] = key;
    blocked_valid_[static_cast<std::size_t>(lp)] = true;
  }
  // Spin outside the run mutex: the token holder may need to park this LP
  // for a remote operation while we wait.  After an abort the protocol
  // still drains by itself — unwinding peers publish +inf, blocked peers
  // qualify in tie order — so no abort special-casing is needed here.
  me.run_mu.unlock();
  std::uint64_t spins = 0;
  bool ok = false;
  while (!ok) {
    ok = true;
    for (int j = 0; j < n_active_; ++j) {
      if (j == lp) continue;
      const double lbj = lps_[static_cast<std::size_t>(j)].lb.load(
          std::memory_order_acquire);
      if (lbj > key.clock) continue;  // strictly ahead: stable forever
      std::lock_guard<std::mutex> g(gate_mu_);
      if (blocked_valid_[static_cast<std::size_t>(j)] &&
          key < blocked_key_[static_cast<std::size_t>(j)]) {
        continue;  // blocked behind us in tie order: waits for our lb
      }
      ok = false;
      break;
    }
    if (!ok) spin_pause(spins);
  }
  {
    std::lock_guard<std::mutex> g(gate_mu_);
    blocked_valid_[static_cast<std::size_t>(lp)] = false;
  }
  me.run_mu.lock();
  t.token = true;
  ++me.token_acquires;
  me.token_spins += spins;
}

void Session::note_evidence(std::uint64_t line) noexcept {
  ThreadState& t = tls();
  assert(t.session == this && t.lp >= 0);
  LpSlot& me = lps_[static_cast<std::size_t>(t.lp)];
  me.tombs.emplace_back(line, t.key);
  if (me.tombs.size() > 256) {
    // Remote operations always carry keys at or above the floor, so older
    // evidence can never fire; prune it.
    const double f = floor_clock();
    std::erase_if(me.tombs,
                  [f](const auto& e) { return e.second.clock < f; });
  }
}

bool Session::evidence_after(int lp, std::uint64_t line, Key k) const noexcept {
  const LpSlot& s = lps_[static_cast<std::size_t>(lp)];
  for (const auto& [l, key] : s.tombs) {
    if (l == line && k < key) return true;
  }
  return false;
}

Session::RemoteLock::RemoteLock(Session& s, int target_lp)
    : s_(s), target_(target_lp) {
  ThreadState& t = tls();
  assert(t.session == &s && t.token &&
         "only the token holder performs remote operations");
  if (target_lp == t.lp || target_lp < 0) return;
  cross_ = true;
  LpSlot& tgt = s_.lps_[static_cast<std::size_t>(target_lp)];
  tgt.yield_req.store(true, std::memory_order_release);
  tgt.run_mu.lock();
}

Session::RemoteLock::~RemoteLock() {
  if (!cross_) return;
  LpSlot& tgt = s_.lps_[static_cast<std::size_t>(target_)];
  tgt.yield_req.store(false, std::memory_order_relaxed);
  tgt.run_mu.unlock();
}

void Session::note_conflict() noexcept {
  {
    std::lock_guard<std::mutex> g(gate_mu_);
    ++stats_.conflicts;
  }
  abort_.store(true, std::memory_order_release);
}

}  // namespace paxsim::par
