// paxsim/par/session.hpp
//
// Conservative synchronization core of the host-parallel backend.
//
// One simulated Machine is sharded into logical processes (LPs): each LP is
// a union of whole coherence domains, so every cache structure is owned by
// exactly one LP and only Machine-level shared paths (directory coherence,
// bus/memory-controller service, the dynamic-schedule cursor) ever cross LPs.
// One host thread drives each LP, free-running its grains in local (clock,
// tie) order and stamping every line it touches with the grain's Key.
//
// Ordering rules:
//  * A grain that needs a machine-shared operation must first acquire the
//    token: its Key must be the global minimum over all LPs' published
//    lower bounds (an atomic clock per LP) and blocked keys (a small table
//    under a mutex that resolves equal-clock ties by tie id).  Once a grain
//    qualifies it stays the minimum until it ends, so one acquisition covers
//    every shared operation of the grain.
//  * A token holder touching another LP's structures (remote invalidate /
//    downgrade) first parks that LP (yield flag + its run mutex), then
//    checks for evidence that the target already ran past the holder's key
//    on the affected line: a line stamp or an eviction/snoop tombstone with
//    a larger key means the speculative execution diverged — the session
//    flags an abort and the harness replays the trial serially
//    (bit-identity is therefore unconditional; aborts only pick between two
//    identical strategies).
//
// Abort draining: the simulator's call chain is noexcept, so nothing below
// the team layer ever throws.  note_conflict() only sets a flag; every LP
// keeps executing (now-discarded) grains under the normal token protocol —
// still mutually exclusive, still race-free — until its next grain pick or
// cooperative point, where begin_grain()/cooperative() throw Abort and the
// LP unwinds, publishing "done".  Peers blocked on it then qualify and
// drain the same way, so the region always terminates cleanly.
//  * An LP may not start a grain more than `window` cycles past the slowest
//    LP (lookahead window, derived from the machine's latency floor).  The
//    window only bounds speculation depth; it never changes results.
//
// Memory model: lower bounds are released on publish and acquired during
// qualification, so every write a previous token holder made is visible to
// the next holder; remote operations synchronize through the target's run
// mutex; everything else is LP-private.  The backend is TSan-clean by
// construction.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "par/key.hpp"
#include "par/stats.hpp"

namespace paxsim::par {

class Session;

/// Thrown when speculation diverged from the serial order (or a construct
/// the parallel backend does not support ran inside a parallel region).
/// run_single catches it, resets the machine and replays the trial serially.
struct Abort {
  const char* reason = "conflict";
};

/// Per-host-thread view of the backend.  Inactive (null session) outside
/// parallel regions, so serial-mode code never pays more than one
/// thread-local load on the slow paths that consult it.
struct ThreadState {
  Session* session = nullptr;  ///< active session, null when serial
  int lp = -1;                 ///< this thread's LP index
  Key key{};                   ///< key of the grain being executed
  bool token = false;          ///< token held for the current grain
};

[[nodiscard]] ThreadState& tls() noexcept;

class Session {
 public:
  /// @p max_lps bounds the crew size; @p window is the lookahead window in
  /// cycles (<= 0 disables the window).
  Session(int max_lps, double window);

  /// Folds this session's accumulated stats into the process-global
  /// accumulator (par::stats_snapshot), so per-run deltas survive the
  /// session's owner (one Team per trial).
  ~Session();

  [[nodiscard]] int max_lps() const noexcept {
    return static_cast<int>(lps_.size());
  }
  [[nodiscard]] double window() const noexcept { return window_; }

  // ---- region lifecycle (main thread, crew quiescent) ----------------------

  /// Arms @p n_lps LPs with their initial lower bounds for one region.
  void begin_region(int n_lps, const double* initial_lbs);

  /// Folds per-LP stats; tombstone logs are cleared (keys from an earlier
  /// region sort below every later key, so they could never fire anyway).
  void end_region();

  // ---- LP-thread protocol --------------------------------------------------

  /// Enters/leaves the LP loop: locks the LP's run mutex and activates the
  /// thread state.  The destructor publishes kClockDone and unlocks.
  class LpScope {
   public:
    LpScope(Session& s, int lp);
    ~LpScope();
    LpScope(const LpScope&) = delete;
    LpScope& operator=(const LpScope&) = delete;

   private:
    Session& s_;
    int lp_;
    ThreadState saved_;
  };

  /// Grain pick: publishes the lower bound, installs the thread-state key,
  /// honors aborts/yield requests and the lookahead window.  Must be called
  /// with the LP's run mutex held (it may release and re-acquire it).
  void begin_grain(int lp, Key key);

  /// Grain end: drops the token (the next begin_grain publishes the new
  /// lower bound, which is what actually releases waiters).
  void end_grain(int lp) noexcept;

  /// Cooperative point without a new grain (loop bookkeeping): abort/yield
  /// checks only.
  void cooperative(int lp);

  /// Acquires the token for the current grain (no-op if already held).
  /// Called from the Machine's shared-path hooks through tls(); never
  /// throws (the simulator below it is noexcept) — after an abort it
  /// degenerates to the same protocol over discarded grains.
  void acquire_token() noexcept;

  /// acquire_token through the thread state, guarded against foreign
  /// threads (e.g. a --jobs worker that never entered this session).
  static void gate_current(Session* expected) noexcept {
    ThreadState& t = tls();
    if (t.session != expected || t.session == nullptr || t.token) return;
    t.session->acquire_token();
  }

  /// Records eviction/snoop evidence: the calling LP destroyed or weakened
  /// one of its own cached copies of @p line at the current grain key.
  /// Evictions destroy line stamps, and a destroyed stamp may have covered
  /// an earlier speculative touch, so this fires for token-held evictions
  /// too — the eviction-time key upper-bounds every key the line carried.
  void note_evidence(std::uint64_t line) noexcept;

  // ---- token-holder remote access ------------------------------------------

  /// Parks @p target_lp (yield flag + run mutex) for the duration of the
  /// scope so the holder can read stamps and mutate the target's caches.
  /// Degenerates to a no-op when the target is the calling LP.
  class RemoteLock {
   public:
    RemoteLock(Session& s, int target_lp);
    ~RemoteLock();
    RemoteLock(const RemoteLock&) = delete;
    RemoteLock& operator=(const RemoteLock&) = delete;
    /// True when this actually crossed into another LP (conflict checks and
    /// evidence scans are only meaningful then).
    [[nodiscard]] bool cross() const noexcept { return cross_; }

   private:
    Session& s_;
    int target_;
    bool cross_ = false;
  };

  /// True if @p lp's tombstone log holds evidence for @p line newer than
  /// @p k.  Caller must hold the target's run mutex (RemoteLock).
  [[nodiscard]] bool evidence_after(int lp, std::uint64_t line,
                                    Key k) const noexcept;

  /// Flags a speculation conflict.  Does NOT throw (callers sit below the
  /// simulator's noexcept chain): execution continues on discarded state
  /// until every LP drains at its next cooperative point.
  void note_conflict() noexcept;

  [[nodiscard]] bool aborted() const noexcept {
    return abort_.load(std::memory_order_relaxed);
  }

  /// Key slot stamped into cache lines while @p lp executes (LP-private:
  /// written at each grain pick by the LP's own thread).
  [[nodiscard]] const Key* key_slot(int lp) const noexcept {
    return &lps_[static_cast<std::size_t>(lp)].current_key;
  }

  [[nodiscard]] Stats& stats() noexcept { return stats_; }

 private:
  struct alignas(64) LpSlot {
    std::mutex run_mu;
    std::atomic<bool> yield_req{false};
    std::atomic<double> lb{kClockDone};
    Key current_key{};  ///< LP-private stamp source (see key_slot)
    std::vector<std::pair<std::uint64_t, Key>> tombs;  ///< run_mu-guarded
    // LP-private stat shards, folded in end_region.
    std::uint64_t grains = 0;
    std::uint64_t token_acquires = 0;
    std::uint64_t token_spins = 0;
    std::uint64_t yields = 0;
    std::uint64_t window_parks = 0;
  };

  /// Minimum published lower bound across the region's LPs.
  [[nodiscard]] double floor_clock() const noexcept;

  /// One relaxation step while waiting.
  static void spin_pause(std::uint64_t& spins) noexcept;

  std::vector<LpSlot> lps_;
  double window_;
  int n_active_ = 0;
  std::atomic<bool> abort_{false};
  mutable std::mutex gate_mu_;
  std::vector<Key> blocked_key_;    // gate table, gate_mu_-guarded
  std::vector<bool> blocked_valid_;
  Stats stats_{};
};

}  // namespace paxsim::par
