// paxsim/par/stats.hpp
//
// Host-side bookkeeping of the parallel backend.  These numbers describe the
// *host* execution (how much synchronization the LPs paid, how often the
// speculation aborted), never the simulated machine, so they live outside
// RunResult: they vary run to run with host timing while every simulated
// quantity stays bit-identical.
#pragma once

#include <cstdint>

namespace paxsim::par {

/// Synchronization/overhead counters, aggregated per run (and process-wide
/// through the global accumulator below).  All plain adds — fold order never
/// matters.
struct Stats {
  std::uint64_t parallel_regions = 0;  ///< regions executed on the LP crew
  std::uint64_t serial_regions = 0;    ///< eligible-team regions run serially
  std::uint64_t grains = 0;            ///< grains executed across all LPs
  std::uint64_t token_acquires = 0;    ///< gated-op token acquisitions
  std::uint64_t token_spins = 0;       ///< qualification re-check iterations
  std::uint64_t yields = 0;            ///< LP parked for a remote operation
  std::uint64_t window_parks = 0;      ///< LP parked at the lookahead window
  std::uint64_t conflicts = 0;         ///< speculation conflicts detected
  std::uint64_t serial_reruns = 0;     ///< trials replayed on the serial path

  Stats& operator+=(const Stats& o) noexcept {
    parallel_regions += o.parallel_regions;
    serial_regions += o.serial_regions;
    grains += o.grains;
    token_acquires += o.token_acquires;
    token_spins += o.token_spins;
    yields += o.yields;
    window_parks += o.window_parks;
    conflicts += o.conflicts;
    serial_reruns += o.serial_reruns;
    return *this;
  }
};

/// Process-global accumulator (mutex-guarded; see par.cpp).  Sessions fold
/// their counts in when they end; run_single adds serial_reruns.  Benches
/// snapshot deltas around each run to report per-kernel sync overhead.
void stats_add(const Stats& s) noexcept;
[[nodiscard]] Stats stats_snapshot() noexcept;
void stats_reset() noexcept;

}  // namespace paxsim::par
