// paxsim.hpp — the umbrella facade of the paxsim public API.
//
// One include gives a driver program everything the study surface exposes:
//
//   sim::      machine model (MachineParams, Machine, check/trace modes)
//   npb::      the NAS-derived kernel suite (Benchmark, ProblemClass)
//   perf::     PMU counters, the Figure-2 metric bundle, phase timelines
//   harness::  StudyConfig, RunOptions, the machine-reusing runners,
//              ExperimentEngine/ExperimentPlan, tables and JSON reports
//   model::    the analytical predictor (profiles + predictions)
//   check::    race detection / invariant audit reports
//   trace::    CPI stall-stack tracing and the Chrome-tracing exporter
//   report::   the one JSON writer every machine-readable report uses,
//              and its consumer-side parser
//   serve::    the persistent sweep service — the on-disk content-addressed
//              result store, job files and the batch driver
//   lmb::      the LMbench-analog calibration probes
//   sched::    scheduler policies for the co-scheduling extension
//   tune::     model-driven autotuning (SearchSpace, strategies, tuner)
//   xomp::     the OpenMP-analog runtime, for authoring custom kernels
//   par::      the host-parallel backend (RunOptions::par, stats, Abort)
//
// In-repo drivers (bench/, examples/, the CLI) include only this header;
// the per-layer headers remain available for targeted use, but the facade
// is the supported spelling and what docs/ARCHITECTURE.md documents.
//
// Deliberately not included: cli/cli.hpp (the driver itself, not API) and
// internal simulator headers not exported by the layers below.
#pragma once

#include "check/checker.hpp"
#include "check/report.hpp"
#include "harness/cellspec.hpp"
#include "harness/config.hpp"
#include "harness/engine.hpp"
#include "harness/plot.hpp"
#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "harness/sched_runner.hpp"
#include "harness/stats.hpp"
#include "lmb/lmbench.hpp"
#include "model/predict.hpp"
#include "model/profile.hpp"
#include "npb/array.hpp"
#include "npb/kernel.hpp"
#include "npb/rng.hpp"
#include "par/par.hpp"
#include "perf/counters.hpp"
#include "perf/metrics.hpp"
#include "perf/timeline.hpp"
#include "report/json.hpp"
#include "report/parse.hpp"
#include "sched/scheduler.hpp"
#include "serve/jobs.hpp"
#include "serve/serve.hpp"
#include "serve/store.hpp"
#include "sim/machine.hpp"
#include "sim/params.hpp"
#include "sim/topology.hpp"
#include "trace/chrome.hpp"
#include "tune/space.hpp"
#include "tune/strategy.hpp"
#include "tune/tuner.hpp"
#include "trace/report.hpp"
#include "trace/ring.hpp"
#include "trace/stack.hpp"
#include "trace/tracer.hpp"
#include "xomp/team.hpp"
