#include "perf/counters.hpp"

#include <ostream>

namespace paxsim::perf {

std::string_view event_name(Event e) noexcept {
  switch (e) {
    case Event::kCycles: return "cycles";
    case Event::kInstructions: return "instructions";
    case Event::kL1dReferences: return "l1d_references";
    case Event::kL1dMisses: return "l1d_misses";
    case Event::kL2References: return "l2_references";
    case Event::kL2Misses: return "l2_misses";
    case Event::kTraceCacheReferences: return "trace_cache_references";
    case Event::kTraceCacheMisses: return "trace_cache_misses";
    case Event::kItlbReferences: return "itlb_references";
    case Event::kItlbMisses: return "itlb_misses";
    case Event::kDtlbReferences: return "dtlb_references";
    case Event::kDtlbLoadMisses: return "dtlb_load_misses";
    case Event::kDtlbStoreMisses: return "dtlb_store_misses";
    case Event::kBranches: return "branches";
    case Event::kBranchMispredicts: return "branch_mispredicts";
    case Event::kStallCyclesMemory: return "stall_cycles_memory";
    case Event::kStallCyclesBranch: return "stall_cycles_branch";
    case Event::kStallCyclesTlb: return "stall_cycles_tlb";
    case Event::kStallCyclesFrontend: return "stall_cycles_frontend";
    case Event::kBusTransactions: return "bus_transactions";
    case Event::kBusReads: return "bus_reads";
    case Event::kBusWrites: return "bus_writes";
    case Event::kBusPrefetches: return "bus_prefetches";
    case Event::kPrefetchesIssued: return "prefetches_issued";
    case Event::kPrefetchesUseful: return "prefetches_useful";
    case Event::kL2Invalidations: return "l2_invalidations";
    case Event::kL3References: return "l3_references";
    case Event::kL3Misses: return "l3_misses";
    case Event::kCount: break;
  }
  return "unknown";
}

CounterSet& CounterSet::operator+=(const CounterSet& rhs) noexcept {
  for (std::size_t i = 0; i < kEventCount; ++i) values_[i] += rhs.values_[i];
  return *this;
}

CounterSet CounterSet::delta_since(const CounterSet& earlier) const noexcept {
  CounterSet out;
  for (std::size_t i = 0; i < kEventCount; ++i) {
    out.values_[i] =
        values_[i] >= earlier.values_[i] ? values_[i] - earlier.values_[i] : 0;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const CounterSet& c) {
  for (std::size_t i = 0; i < kEventCount; ++i) {
    const auto e = static_cast<Event>(i);
    if (c.get(e) != 0) os << event_name(e) << ',' << c.get(e) << '\n';
  }
  return os;
}

}  // namespace paxsim::perf
