#include "perf/metrics.hpp"

#include <ostream>

namespace paxsim::perf {
namespace {

double ratio(std::uint64_t num, std::uint64_t den) noexcept {
  return den == 0 ? 0.0 : static_cast<double>(num) / static_cast<double>(den);
}

}  // namespace

Metrics derive_metrics(const CounterSet& c) noexcept {
  Metrics m;
  m.l1d_miss_rate = ratio(c.get(Event::kL1dMisses), c.get(Event::kL1dReferences));
  m.l2_miss_rate = ratio(c.get(Event::kL2Misses), c.get(Event::kL2References));
  m.trace_cache_miss_rate =
      ratio(c.get(Event::kTraceCacheMisses), c.get(Event::kTraceCacheReferences));
  m.itlb_miss_rate = ratio(c.get(Event::kItlbMisses), c.get(Event::kItlbReferences));
  m.dtlb_misses = static_cast<double>(c.get(Event::kDtlbLoadMisses) +
                                      c.get(Event::kDtlbStoreMisses));
  const std::uint64_t stalls =
      c.get(Event::kStallCyclesMemory) + c.get(Event::kStallCyclesBranch) +
      c.get(Event::kStallCyclesTlb) + c.get(Event::kStallCyclesFrontend);
  m.stalled_fraction = ratio(stalls, c.get(Event::kCycles));
  const std::uint64_t branches = c.get(Event::kBranches);
  m.branch_prediction_rate =
      branches == 0 ? 1.0
                    : 1.0 - ratio(c.get(Event::kBranchMispredicts), branches);
  m.prefetch_bus_fraction =
      ratio(c.get(Event::kBusPrefetches), c.get(Event::kBusTransactions));
  m.cpi = ratio(c.get(Event::kCycles), c.get(Event::kInstructions));
  return m;
}

std::string_view metric_name(int i) noexcept {
  switch (i) {
    case 0: return "l1d_miss_rate";
    case 1: return "l2_miss_rate";
    case 2: return "trace_cache_miss_rate";
    case 3: return "itlb_miss_rate";
    case 4: return "dtlb_misses";
    case 5: return "stalled_fraction";
    case 6: return "branch_prediction_rate";
    case 7: return "prefetch_bus_fraction";
    case 8: return "cpi";
    default: return "unknown";
  }
}

double metric_value(const Metrics& m, int i) noexcept {
  switch (i) {
    case 0: return m.l1d_miss_rate;
    case 1: return m.l2_miss_rate;
    case 2: return m.trace_cache_miss_rate;
    case 3: return m.itlb_miss_rate;
    case 4: return m.dtlb_misses;
    case 5: return m.stalled_fraction;
    case 6: return m.branch_prediction_rate;
    case 7: return m.prefetch_bus_fraction;
    case 8: return m.cpi;
    default: return 0.0;
  }
}

std::ostream& operator<<(std::ostream& os, const Metrics& m) {
  for (int i = 0; i < kMetricCount; ++i) {
    os << metric_name(i) << ',' << metric_value(m, i) << '\n';
  }
  return os;
}

}  // namespace paxsim::perf
