// paxsim/perf/metrics.hpp
//
// Derived metrics — exactly the nine quantities plotted in Figure 2 (and
// again, per-workload, in Figure 4) of the paper:
//
//   L1 / L2 / trace-cache miss rate, ITLB miss rate, DTLB load+store misses
//   (normalised to the serial run), % of execution cycles spent stalled,
//   branch prediction rate, % of bus accesses that are prefetches, and CPI.
#pragma once

#include <iosfwd>
#include <string_view>

#include "perf/counters.hpp"

namespace paxsim::perf {

/// The derived per-run metric bundle of Figure 2 / Figure 4.
///
/// Rates are fractions in [0,1] unless noted.  `dtlb_misses` is the raw
/// load+store miss count; the harness normalises it against the serial run
/// when emitting the figure (the paper plots "DTLB Load and Store Misses
/// normalized over Serial").
struct Metrics {
  double l1d_miss_rate = 0.0;        ///< L1D misses / references
  double l2_miss_rate = 0.0;         ///< L2 misses / references
  double trace_cache_miss_rate = 0.0;///< TC misses / references
  double itlb_miss_rate = 0.0;       ///< ITLB misses / references
  double dtlb_misses = 0.0;          ///< load+store DTLB misses (raw count)
  double stalled_fraction = 0.0;     ///< stall cycles / total cycles
  double branch_prediction_rate = 0.0;///< 1 - mispredicts/branches
  double prefetch_bus_fraction = 0.0;///< prefetch transactions / all bus transactions
  double cpi = 0.0;                  ///< cycles / instructions retired
};

/// Computes the Figure-2 metric bundle from a counter delta.
/// Ratios with a zero denominator are reported as 0 (the paper's plots do
/// the same for benchmarks that never touch a structure).
[[nodiscard]] Metrics derive_metrics(const CounterSet& c) noexcept;

/// Number of scalar metrics in `Metrics` (for tabular emission).
inline constexpr int kMetricCount = 9;

/// Stable column name of the i-th metric (0-based, declaration order).
[[nodiscard]] std::string_view metric_name(int i) noexcept;

/// Value of the i-th metric (0-based, declaration order).
[[nodiscard]] double metric_value(const Metrics& m, int i) noexcept;

/// Emits "name,value" CSV lines.
std::ostream& operator<<(std::ostream& os, const Metrics& m);

}  // namespace paxsim::perf
