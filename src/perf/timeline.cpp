#include "perf/timeline.hpp"

#include <ostream>

namespace paxsim::perf {

void Timeline::sample(const CounterSet& now) {
  deltas_.push_back(now.delta_since(last_));
  last_ = now;
}

void Timeline::print_csv(std::ostream& os) const {
  for (std::size_t i = 0; i < deltas_.size(); ++i) {
    const Metrics m = derive_metrics(deltas_[i]);
    for (int k = 0; k < kMetricCount; ++k) {
      os << i << ',' << metric_name(k) << ',' << metric_value(m, k) << '\n';
    }
  }
}

}  // namespace paxsim::perf
