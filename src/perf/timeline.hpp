// paxsim/perf/timeline.hpp
//
// Interval sampling of a counter set — the VTune time-sampling mode the
// paper used, rebuilt on exact counters: snapshot at phase boundaries (e.g.
// after every kernel step) and read back per-interval deltas and derived
// metric series.
#pragma once

#include <iosfwd>
#include <vector>

#include "perf/counters.hpp"
#include "perf/metrics.hpp"

namespace paxsim::perf {

/// Accumulates per-interval counter deltas.
class Timeline {
 public:
  /// Records the interval since the previous sample (or since start).
  void sample(const CounterSet& now);

  /// Number of completed intervals.
  [[nodiscard]] std::size_t intervals() const noexcept {
    return deltas_.size();
  }

  /// Counter delta of interval @p i.
  [[nodiscard]] const CounterSet& delta(std::size_t i) const {
    return deltas_[i];
  }

  /// Derived Figure-2 metric bundle of interval @p i.
  [[nodiscard]] Metrics metrics(std::size_t i) const {
    return derive_metrics(deltas_[i]);
  }

  /// Emits "interval,metric,value" CSV lines for all intervals.
  void print_csv(std::ostream& os) const;

  void clear() {
    deltas_.clear();
    last_ = CounterSet{};
  }

 private:
  CounterSet last_;
  std::vector<CounterSet> deltas_;
};

}  // namespace paxsim::perf
