// paxsim/report/json.cpp
#include "report/json.hpp"

#include <cassert>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace paxsim::report {

void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

Json& Json::begin_document(std::string_view kind) {
  assert(stack_.empty() && "begin_document must be the first call");
  object();
  field("schema_version", kSchemaVersion);
  field("kind", kind);
  return *this;
}

void Json::separate() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the key already emitted the comma and the colon follows it
  }
  if (!stack_.empty()) {
    assert(stack_.back().kind == '[' && "object members need a key first");
    if (!stack_.back().first) os_ << ',';
    stack_.back().first = false;
  }
}

Json& Json::object() {
  separate();
  os_ << '{';
  stack_.push_back(Scope{'{', true});
  return *this;
}

Json& Json::array() {
  separate();
  os_ << '[';
  stack_.push_back(Scope{'[', true});
  return *this;
}

Json& Json::end() {
  assert(!stack_.empty() && "end() without an open scope");
  assert(!pending_key_ && "dangling key");
  os_ << (stack_.back().kind == '{' ? '}' : ']');
  stack_.pop_back();
  return *this;
}

Json& Json::key(std::string_view k) {
  assert(!stack_.empty() && stack_.back().kind == '{' &&
         "key() outside an object");
  assert(!pending_key_ && "two keys in a row");
  if (!stack_.back().first) os_ << ',';
  stack_.back().first = false;
  write_json_string(os_, k);
  os_ << ':';
  pending_key_ = true;
  return *this;
}

Json& Json::value(std::string_view v) {
  separate();
  write_json_string(os_, v);
  return *this;
}

Json& Json::value(bool v) {
  separate();
  os_ << (v ? "true" : "false");
  return *this;
}

Json& Json::value(double v) {
  separate();
  if (!std::isfinite(v)) {
    os_ << "null";
    return *this;
  }
  // Shortest representation that still distinguishes report-scale values;
  // %g keeps integers integral ("12" not "12.000000").
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  os_ << buf;
  return *this;
}

Json& Json::value(std::uint64_t v) {
  separate();
  os_ << v;
  return *this;
}

Json& Json::value(std::int64_t v) {
  separate();
  os_ << v;
  return *this;
}

void Json::finish() {
  assert(!pending_key_ && "dangling key at finish()");
  while (!stack_.empty()) end();
  os_ << '\n';
}

// ---------------------------------------------------------------------------
// validate_json: a tiny recursive-descent parser.  Not a conformance
// checker — it accepts a superset on numbers — but it rejects every
// structural mistake an emitter bug could produce (unbalanced scopes,
// missing commas/colons, bad escapes, trailing garbage).
// ---------------------------------------------------------------------------
namespace {

class Validator {
 public:
  explicit Validator(std::string_view text) : s_(text) {}

  bool run(std::string* error) {
    const bool ok = skip_ws() && parse_value() && at_end();
    if (!ok && error != nullptr) {
      *error = "JSON parse error at offset " + std::to_string(pos_);
    }
    return ok;
  }

 private:
  [[nodiscard]] bool at_end() {
    skip_ws();
    return pos_ == s_.size();
  }
  [[nodiscard]] char peek() const {
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }
  bool skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
    return true;
  }
  bool consume(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  bool literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  bool parse_string() {
    if (!consume('"')) return false;
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_++];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= s_.size() ||
                std::isxdigit(static_cast<unsigned char>(s_[pos_])) == 0) {
              return false;
            }
            ++pos_;
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
    }
    return false;  // unterminated
  }

  bool parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-' || peek() == '+') ++pos_;
    bool digits = false;
    const auto digit_run = [&] {
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) {
        ++pos_;
        digits = true;
      }
    };
    digit_run();
    if (consume('.')) digit_run();
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '-' || peek() == '+') ++pos_;
      digit_run();
    }
    return digits && pos_ > start;
  }

  bool parse_value() {  // NOLINT(misc-no-recursion)
    skip_ws();
    switch (peek()) {
      case '{': {
        ++pos_;
        skip_ws();
        if (consume('}')) return true;
        do {
          skip_ws();
          if (!parse_string()) return false;
          skip_ws();
          if (!consume(':')) return false;
          if (!parse_value()) return false;
          skip_ws();
        } while (consume(','));
        return consume('}');
      }
      case '[': {
        ++pos_;
        skip_ws();
        if (consume(']')) return true;
        do {
          if (!parse_value()) return false;
          skip_ws();
        } while (consume(','));
        return consume(']');
      }
      case '"':
        return parse_string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return parse_number();
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

bool validate_json(std::string_view text, std::string* error) {
  return Validator(text).run(error);
}

}  // namespace paxsim::report
