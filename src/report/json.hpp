// paxsim/report/json.hpp
//
// The one JSON emitter: every machine-readable report paxsim prints (run,
// predict, check, trace) renders through this writer, so escaping, number
// formatting and the document envelope are defined in exactly one place.
//
// Documents are versioned: begin_document() opens the root object and
// stamps {"schema_version": N, "kind": "<kind>"} before any payload, and
// consumers key their parsing off those two fields.  Bump kSchemaVersion
// whenever a field changes meaning or disappears (adding fields is not a
// version bump).
//
// The writer is a thin structural streamer — no DOM, no allocation beyond
// the scope stack — with just enough bookkeeping to guarantee the output
// is well-formed: commas are inserted automatically, keys may only appear
// inside objects, and finish() asserts every scope was closed.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace paxsim::report {

/// Version of every JSON document paxsim emits.
inline constexpr int kSchemaVersion = 1;

/// Writes @p s as a JSON string literal (quotes included) with the
/// mandatory escapes (backslash, quote, control characters).
void write_json_string(std::ostream& os, std::string_view s);

/// Streaming well-formed JSON writer.
class Json {
 public:
  explicit Json(std::ostream& os) : os_(os) {}

  Json(const Json&) = delete;
  Json& operator=(const Json&) = delete;

  /// Opens the schema-versioned root object of a paxsim report:
  /// {"schema_version":N,"kind":"<kind>",...   Must be the first call.
  Json& begin_document(std::string_view kind);

  // ---- structure ------------------------------------------------------------
  Json& object();  ///< '{' in value position
  Json& array();   ///< '[' in value position
  Json& end();     ///< closes the innermost open object/array
  Json& key(std::string_view k);  ///< next member's name (objects only)

  // ---- values ---------------------------------------------------------------
  Json& value(std::string_view v);
  Json& value(const char* v) { return value(std::string_view(v)); }
  Json& value(bool v);
  Json& value(double v);  ///< non-finite values render as null
  Json& value(std::uint64_t v);
  Json& value(std::int64_t v);
  Json& value(int v) { return value(static_cast<std::int64_t>(v)); }
  Json& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }

  /// key + value in one call.
  template <typename T>
  Json& field(std::string_view k, T v) {
    key(k);
    return value(v);
  }

  /// Closes every open scope and emits the trailing newline (reports are
  /// line-oriented: one document per line feeds `grep`-based tooling).
  void finish();

  /// Open-scope depth (0 once finish()ed).
  [[nodiscard]] std::size_t depth() const noexcept { return stack_.size(); }

 private:
  void separate();  ///< comma/structural bookkeeping before a value

  struct Scope {
    char kind;   ///< '{' or '['
    bool first;  ///< no member written yet
  };
  std::ostream& os_;
  std::vector<Scope> stack_;
  bool pending_key_ = false;
};

/// Structural validator used by the schema tests and the CI smoke: true iff
/// @p text is exactly one syntactically valid JSON value (numbers are
/// checked loosely; semantic schema checks are the tests' business).
bool validate_json(std::string_view text, std::string* error = nullptr);

}  // namespace paxsim::report
