// paxsim/report/parse.cpp
#include "report/parse.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace paxsim::report {

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool JsonValue::as_u64(std::uint64_t* out) const noexcept {
  if (kind != Kind::kNumber || raw_number.empty()) return false;
  for (const char c : raw_number) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0) return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(raw_number.c_str(), &end, 10);
  if (errno == ERANGE || end == nullptr || *end != '\0') return false;
  *out = static_cast<std::uint64_t>(v);
  return true;
}

std::string JsonValue::string_or(std::string_view key,
                                 std::string fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_string()) ? v->string : std::move(fallback);
}

double JsonValue::number_or(std::string_view key,
                            double fallback) const noexcept {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_number()) ? v->number : fallback;
}

bool JsonValue::bool_or(std::string_view key, bool fallback) const noexcept {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_bool()) ? v->boolean : fallback;
}

namespace {

/// Recursive-descent parser over a flat buffer.  Depth-capped so a
/// pathological (or corrupted) store entry cannot overflow the host stack.
class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  bool parse(JsonValue* out) {
    skip_ws();
    if (!value(out, 0)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters after value");
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool fail(const std::string& msg) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = msg + " at byte " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] bool at_end() const noexcept { return pos_ >= text_.size(); }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool value(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (at_end()) return fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': return object(out, depth);
      case '[': return array(out, depth);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return string(&out->string);
      case 't':
        if (!literal("true")) return fail("bad literal");
        out->kind = JsonValue::Kind::kBool;
        out->boolean = true;
        return true;
      case 'f':
        if (!literal("false")) return fail("bad literal");
        out->kind = JsonValue::Kind::kBool;
        out->boolean = false;
        return true;
      case 'n':
        if (!literal("null")) return fail("bad literal");
        out->kind = JsonValue::Kind::kNull;
        return true;
      default: return number(out);
    }
  }

  bool object(JsonValue* out, int depth) {
    ++pos_;  // '{'
    out->kind = JsonValue::Kind::kObject;
    skip_ws();
    if (!at_end() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (at_end() || text_[pos_] != '"' || !string(&key)) {
        return fail("expected object key");
      }
      skip_ws();
      if (at_end() || text_[pos_] != ':') return fail("expected ':'");
      ++pos_;
      skip_ws();
      JsonValue v;
      if (!value(&v, depth + 1)) return false;
      out->members.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (at_end()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool array(JsonValue* out, int depth) {
    ++pos_;  // '['
    out->kind = JsonValue::Kind::kArray;
    skip_ws();
    if (!at_end() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      JsonValue v;
      if (!value(&v, depth + 1)) return false;
      out->items.push_back(std::move(v));
      skip_ws();
      if (at_end()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool string(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (true) {
      if (at_end()) return fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (at_end()) return fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("bad \\u escape");
            }
          }
          // The writer only ever emits \u00XX for control bytes; decode the
          // BMP code point as UTF-8 so arbitrary valid JSON still parses.
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: return fail("unknown escape");
      }
    }
  }

  bool number(JsonValue* out) {
    const std::size_t start = pos_;
    if (!at_end() && text_[pos_] == '-') ++pos_;
    const std::size_t digits_start = pos_;
    while (!at_end() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == digits_start) return fail("expected a value");
    if (!at_end() && text_[pos_] == '.') {
      ++pos_;
      const std::size_t frac = pos_;
      while (!at_end() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      if (pos_ == frac) return fail("digits required after '.'");
    }
    if (!at_end() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (!at_end() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      const std::size_t exp = pos_;
      while (!at_end() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      if (pos_ == exp) return fail("digits required in exponent");
    }
    out->kind = JsonValue::Kind::kNumber;
    out->raw_number.assign(text_.substr(start, pos_ - start));
    out->number = std::strtod(out->raw_number.c_str(), nullptr);
    return true;
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

bool parse_json_value(std::string_view text, JsonValue* out,
                      std::string* error) {
  if (error != nullptr) error->clear();
  *out = JsonValue{};
  Parser p(text, error);
  return p.parse(out);
}

}  // namespace paxsim::report
