// paxsim/report/parse.hpp
//
// The one JSON reader: the consumer-side counterpart of report::Json.
// Everything in the tree that ingests JSON it previously emitted — the
// result store's entries (src/serve/store), serve job files
// (src/serve/jobs) — parses through this small document model, so number
// handling, escapes and error reporting are defined in exactly one place.
//
// The model is deliberately minimal: a JsonValue is null, a bool, a number,
// a string, an array, or an object whose members keep insertion order (the
// writer's order, so round-trip tooling sees stable documents).  Numbers
// retain their raw token text alongside the parsed double, because store
// entries carry exact 64-bit quantities (counter values, double bit
// patterns) that must not lose precision through a double round-trip.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace paxsim::report {

/// A parsed JSON value.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;         ///< numeric value (lossy for 64-bit integers)
  std::string raw_number;    ///< the exact number token as written
  std::string string;        ///< string contents (escapes resolved)
  std::vector<JsonValue> items;                               ///< arrays
  std::vector<std::pair<std::string, JsonValue>> members;     ///< objects

  [[nodiscard]] bool is_null() const noexcept { return kind == Kind::kNull; }
  [[nodiscard]] bool is_object() const noexcept {
    return kind == Kind::kObject;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind == Kind::kArray; }
  [[nodiscard]] bool is_string() const noexcept {
    return kind == Kind::kString;
  }
  [[nodiscard]] bool is_number() const noexcept {
    return kind == Kind::kNumber;
  }
  [[nodiscard]] bool is_bool() const noexcept { return kind == Kind::kBool; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const noexcept;

  /// The exact unsigned 64-bit value of a number token; false when the
  /// value is not an unsigned integer literal that fits.
  [[nodiscard]] bool as_u64(std::uint64_t* out) const noexcept;

  /// Convenience accessors with defaults for optional members.
  [[nodiscard]] std::string string_or(std::string_view key,
                                      std::string fallback) const;
  [[nodiscard]] double number_or(std::string_view key,
                                 double fallback) const noexcept;
  [[nodiscard]] bool bool_or(std::string_view key,
                             bool fallback) const noexcept;
};

/// Parses exactly one JSON value from @p text (trailing whitespace allowed,
/// trailing garbage rejected).  On failure returns false and, when @p error
/// is non-null, a human-readable message with the byte offset.
bool parse_json_value(std::string_view text, JsonValue* out,
                      std::string* error = nullptr);

}  // namespace paxsim::report
