#include "sched/scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <random>

namespace paxsim::sched {
namespace {

/// Splits @p allowed across programs by dealing positions round-robin
/// (program 0 gets positions 0, n, 2n, ...; with two programs: even/odd).
std::vector<std::vector<sim::LogicalCpu>> deal(
    const std::vector<int>& threads_per_program,
    const std::vector<sim::LogicalCpu>& order) {
  const std::size_t np = threads_per_program.size();
  std::vector<std::vector<sim::LogicalCpu>> out(np);
  std::size_t pos = 0;
  // Deal one context to each program in turn until everyone is satisfied.
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t p = 0; p < np && pos < order.size(); ++p) {
      if (out[p].size() <
          static_cast<std::size_t>(threads_per_program[p])) {
        out[p].push_back(order[pos++]);
        progressed = true;
      }
    }
  }
  return out;
}

/// Orders contexts cores-first: all context-0 slots (distinct cores), then
/// the SMT siblings.
std::vector<sim::LogicalCpu> cores_first(
    std::vector<sim::LogicalCpu> allowed) {
  std::stable_sort(allowed.begin(), allowed.end(),
                   [](const sim::LogicalCpu& a, const sim::LogicalCpu& b) {
                     return a.context < b.context;
                   });
  return allowed;
}

class PinnedSpreadScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "pinned-spread";
  }
  std::vector<std::vector<sim::LogicalCpu>> place(
      const std::vector<int>& tpp,
      const std::vector<sim::LogicalCpu>& allowed) override {
    return deal(tpp, allowed);
  }
};

class NaivePackScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "naive-pack";
  }
  std::vector<std::vector<sim::LogicalCpu>> place(
      const std::vector<int>& tpp,
      const std::vector<sim::LogicalCpu>& allowed) override {
    // Fill program 0 entirely from the front (packing siblings together),
    // then program 1, etc.
    std::vector<std::vector<sim::LogicalCpu>> out(tpp.size());
    std::size_t pos = 0;
    for (std::size_t p = 0; p < tpp.size(); ++p) {
      for (int r = 0; r < tpp[p] && pos < allowed.size(); ++r) {
        out[p].push_back(allowed[pos++]);
      }
    }
    return out;
  }
};

class RandomMigratingScheduler final : public Scheduler {
 public:
  RandomMigratingScheduler(double prob, std::uint64_t seed)
      : prob_(prob), rng_(seed) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "random-migrating";
  }
  std::vector<std::vector<sim::LogicalCpu>> place(
      const std::vector<int>& tpp,
      const std::vector<sim::LogicalCpu>& allowed) override {
    allowed_ = allowed;
    return deal(tpp, allowed);
  }
  std::vector<Migration> rebalance(
      const std::vector<ThreadView>& threads) override {
    std::vector<Migration> out;
    if (threads.size() < 2) return out;
    std::uniform_real_distribution<double> u(0.0, 1.0);
    if (u(rng_) >= prob_) return out;
    // Swap two random threads' contexts — the classic churn pattern of a
    // topology-blind balancer chasing instantaneous load.
    std::uniform_int_distribution<std::size_t> pick(0, threads.size() - 1);
    const std::size_t a = pick(rng_);
    std::size_t b = pick(rng_);
    while (b == a) b = pick(rng_);
    out.push_back({threads[a].program, threads[a].rank, threads[b].where});
    out.push_back({threads[b].program, threads[b].rank, threads[a].where});
    return out;
  }

 private:
  double prob_;
  std::mt19937_64 rng_;
  std::vector<sim::LogicalCpu> allowed_;
};

class HtAwareScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "ht-aware";
  }
  std::vector<std::vector<sim::LogicalCpu>> place(
      const std::vector<int>& tpp,
      const std::vector<sim::LogicalCpu>& allowed) override {
    // Whole cores first; when siblings must be used, keep them within one
    // program (a program sharing a core with *itself* shares code and data
    // constructively; sharing with a stranger only contends).
    const std::vector<sim::LogicalCpu> order = cores_first(allowed);
    std::vector<std::vector<sim::LogicalCpu>> out(tpp.size());
    std::size_t pos = 0;
    for (std::size_t p = 0; p < tpp.size(); ++p) {
      for (int r = 0; r < tpp[p] && pos < order.size(); ++r) {
        out[p].push_back(order[pos++]);
      }
    }
    return out;
  }
};

class SymbioticScheduler final : public Scheduler {
 public:
  explicit SymbioticScheduler(int sample_steps) : sample_steps_(sample_steps) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "symbiotic";
  }

  std::vector<std::vector<sim::LogicalCpu>> place(
      const std::vector<int>& tpp,
      const std::vector<sim::LogicalCpu>& allowed) override {
    // Candidate placements to sample: dealt (spread) and packed and
    // cores-first.  The rebalance hook walks through them.
    candidates_.clear();
    candidates_.push_back(deal(tpp, allowed));
    {
      std::vector<std::vector<sim::LogicalCpu>> packed(tpp.size());
      std::size_t pos = 0;
      for (std::size_t p = 0; p < tpp.size(); ++p) {
        for (int r = 0; r < tpp[p] && pos < allowed.size(); ++r) {
          packed[p].push_back(allowed[pos++]);
        }
      }
      candidates_.push_back(std::move(packed));
    }
    candidates_.push_back([&] {
      const auto order = cores_first(allowed);
      std::vector<std::vector<sim::LogicalCpu>> v(tpp.size());
      std::size_t pos = 0;
      for (std::size_t p = 0; p < tpp.size(); ++p) {
        for (int r = 0; r < tpp[p] && pos < order.size(); ++r) {
          v[p].push_back(order[pos++]);
        }
      }
      return v;
    }());
    current_ = 0;
    steps_in_current_ = 0;
    scores_.assign(candidates_.size(), 0.0);
    locked_ = false;
    return candidates_[0];
  }

  std::vector<Migration> rebalance(
      const std::vector<ThreadView>& threads) override {
    if (locked_) return {};
    // Accumulate the progress the current placement achieved.
    for (const ThreadView& t : threads) {
      scores_[current_] += t.recent_progress;
    }
    if (++steps_in_current_ < sample_steps_) return {};
    // Advance to the next candidate, or lock the best.
    std::size_t target;
    if (current_ + 1 < candidates_.size()) {
      target = ++current_;
      steps_in_current_ = 0;
    } else {
      target = static_cast<std::size_t>(
          std::max_element(scores_.begin(), scores_.end()) - scores_.begin());
      locked_ = true;
    }
    return migrations_to(candidates_[target], threads);
  }

  [[nodiscard]] bool locked() const noexcept { return locked_; }

 private:
  static std::vector<Migration> migrations_to(
      const std::vector<std::vector<sim::LogicalCpu>>& placement,
      const std::vector<ThreadView>& threads) {
    std::vector<Migration> out;
    for (const ThreadView& t : threads) {
      const sim::LogicalCpu want =
          placement[static_cast<std::size_t>(t.program)]
                   [static_cast<std::size_t>(t.rank)];
      if (!(want == t.where)) out.push_back({t.program, t.rank, want});
    }
    return out;
  }

  int sample_steps_;
  std::vector<std::vector<std::vector<sim::LogicalCpu>>> candidates_;
  std::vector<double> scores_;
  std::size_t current_ = 0;
  int steps_in_current_ = 0;
  bool locked_ = false;
};

}  // namespace

std::unique_ptr<Scheduler> make_pinned_spread() {
  return std::make_unique<PinnedSpreadScheduler>();
}
std::unique_ptr<Scheduler> make_naive_pack() {
  return std::make_unique<NaivePackScheduler>();
}
std::unique_ptr<Scheduler> make_random_migrating(double migrate_probability,
                                                 std::uint64_t seed) {
  return std::make_unique<RandomMigratingScheduler>(migrate_probability, seed);
}
std::unique_ptr<Scheduler> make_ht_aware() {
  return std::make_unique<HtAwareScheduler>();
}
std::unique_ptr<Scheduler> make_symbiotic(int sample_steps) {
  return std::make_unique<SymbioticScheduler>(sample_steps);
}

}  // namespace paxsim::sched
