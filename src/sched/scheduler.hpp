// paxsim/sched/scheduler.hpp
//
// OS-scheduler substrate — the paper's stated future work ("devising
// optimal schedulers to improve the performance of multithreaded
// applications running on emerging multithreaded, multi-core
// architectures"; "we are currently experimenting with other schedulers").
//
// A Scheduler makes two kinds of decisions, mirroring what an OS kernel
// does for OpenMP processes:
//   * initial placement of each program's threads onto the configuration's
//     hardware contexts;
//   * periodic rebalancing between kernel steps, which may *migrate*
//     threads — migrated threads pay a context-switch penalty and find the
//     destination core's private caches cold (the cold misses emerge from
//     the cache state; nothing is modelled by formula).
//
// Shipped policies:
//   * PinnedSpreadScheduler  — the study default: spread threads across
//     the context list, never migrate (what a well-pinned OpenMP run does).
//   * NaivePackScheduler     — packs threads onto sibling contexts first
//     (what a topology-blind scheduler can do); shows placement cost.
//   * RandomMigratingScheduler — migrates a random thread every rebalance
//     with probability p: the 2.6-era load-balancer churn the paper
//     suspects behind its multi-program stall anomalies.
//   * HtAwareScheduler       — cores first, SMT contexts last, and pairs
//     each program's threads with its *own* siblings where possible.
//   * SymbioticScheduler     — Snavely/Tullsen-style sample phase: tries
//     candidate placements for a few steps each, watches achieved
//     progress, then locks the best (the direction the paper proposes).
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "sim/types.hpp"

namespace paxsim::sched {

/// What the scheduler can observe about one simulated thread, roughly the
/// information an OS tick handler has.
struct ThreadView {
  int program = 0;               ///< program slot (0 or 1)
  int rank = 0;                  ///< thread rank within the program
  sim::LogicalCpu where;         ///< current hardware context
  double recent_progress = 0;    ///< work completed in the last interval
};

/// One migration decision.
struct Migration {
  int program = 0;
  int rank = 0;
  sim::LogicalCpu to;
};

/// Scheduler policy interface.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Places each program's threads.  @p threads_per_program lists thread
  /// counts (one entry per program); @p allowed is the configuration's
  /// hardware-context list in Table-1 order.  Returns one context list per
  /// program; lists must be disjoint and each of the requested size.
  [[nodiscard]] virtual std::vector<std::vector<sim::LogicalCpu>> place(
      const std::vector<int>& threads_per_program,
      const std::vector<sim::LogicalCpu>& allowed) = 0;

  /// Called between kernel steps with the current thread views; returns
  /// migrations to apply.  Default: never migrate.
  [[nodiscard]] virtual std::vector<Migration> rebalance(
      const std::vector<ThreadView>& threads) {
    (void)threads;
    return {};
  }
};

/// Cycles a migrated thread pays for the kernel-mode switch (register
/// state, run-queue surgery); the dominant cost — cold caches — emerges
/// from the simulation itself.
inline constexpr double kMigrationPenaltyCycles = 3000.0;

[[nodiscard]] std::unique_ptr<Scheduler> make_pinned_spread();
[[nodiscard]] std::unique_ptr<Scheduler> make_naive_pack();
[[nodiscard]] std::unique_ptr<Scheduler> make_random_migrating(
    double migrate_probability, std::uint64_t seed);
[[nodiscard]] std::unique_ptr<Scheduler> make_ht_aware();
/// @param sample_steps steps spent on each candidate placement before the
///        scheduler locks the best one.
[[nodiscard]] std::unique_ptr<Scheduler> make_symbiotic(int sample_steps = 2);

}  // namespace paxsim::sched
