// paxsim/serve/jobs.cpp
#include "serve/jobs.hpp"

#include <fstream>
#include <memory>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "harness/cellspec.hpp"
#include "npb/kernel.hpp"
#include "report/json.hpp"
#include "report/parse.hpp"
#include "sim/topology.hpp"

namespace paxsim::serve {
namespace {

bool parse_class_letter(const std::string& s, npb::ProblemClass* out) {
  if (s.size() != 1) return false;
  switch (s[0]) {
    case 'S': *out = npb::ProblemClass::kClassS; return true;
    case 'W': *out = npb::ProblemClass::kClassW; return true;
    case 'A': *out = npb::ProblemClass::kClassA; return true;
    case 'B': *out = npb::ProblemClass::kClassB; return true;
    default: return false;
  }
}

/// The tunable knobs a job file can set globally ("defaults") and override
/// per sweep.
struct Knobs {
  npb::ProblemClass cls = npb::ProblemClass::kClassB;
  int trials = 1;
  std::uint64_t seed = 314159265;
  bool verify = true;
  std::size_t grain = 1;
  double scale = 16.0;
  std::string sched = "default";  ///< loop schedule; CellSpec owns the names
  std::size_t sched_chunk = 0;
};

/// Applies @p obj's knob members on top of @p base.  Unknown members are an
/// error (a typo'd knob silently meaning "default" would poison a sweep),
/// except the structural sweep members the caller owns.
bool apply_knobs(const report::JsonValue& obj, Knobs* k, bool is_sweep,
                 std::string* error) {
  for (const auto& [name, v] : obj.members) {
    if (name == "class") {
      if (!v.is_string() || !parse_class_letter(v.string, &k->cls)) {
        *error = "bad \"class\" (use \"S\", \"W\", \"A\" or \"B\")";
        return false;
      }
    } else if (name == "trials") {
      std::uint64_t t = 0;
      if (!v.as_u64(&t) || t < 1 || t > 1000) {
        *error = "bad \"trials\" (need an integer in [1, 1000])";
        return false;
      }
      k->trials = static_cast<int>(t);
    } else if (name == "seed") {
      if (!v.as_u64(&k->seed)) {
        *error = "bad \"seed\" (need an unsigned integer)";
        return false;
      }
    } else if (name == "verify") {
      if (!v.is_bool()) {
        *error = "bad \"verify\" (need a boolean)";
        return false;
      }
      k->verify = v.boolean;
    } else if (name == "grain") {
      std::uint64_t g = 0;
      if (!v.as_u64(&g) || g < 1) {
        *error = "bad \"grain\" (need an integer >= 1)";
        return false;
      }
      k->grain = static_cast<std::size_t>(g);
    } else if (name == "scale") {
      if (!v.is_number() || v.number <= 0) {
        *error = "bad \"scale\" (need a positive number)";
        return false;
      }
      k->scale = v.number;
    } else if (name == "schedule") {
      if (!v.is_string() ||
          (v.string != "default" && v.string != "static" &&
           v.string != "dynamic" && v.string != "guided")) {
        *error =
            "bad \"schedule\" (use \"default\", \"static\", \"dynamic\" or "
            "\"guided\")";
        return false;
      }
      k->sched = v.string;
    } else if (name == "chunk") {
      std::uint64_t c = 0;
      if (!v.as_u64(&c)) {
        *error = "bad \"chunk\" (need an unsigned integer)";
        return false;
      }
      k->sched_chunk = static_cast<std::size_t>(c);
    } else if (is_sweep && (name == "benches" || name == "machines" ||
                            name == "configs" || name == "modes" ||
                            name == "pairs")) {
      // Structural members, handled by expand_sweep.
    } else {
      *error = "unknown member \"" + name + "\"";
      return false;
    }
  }
  return true;
}

/// "benches": "all" | ["CG", ...].  Absent means "all".
bool parse_benches(const report::JsonValue& sweep,
                   std::vector<npb::Benchmark>* out, std::string* error) {
  out->clear();
  const report::JsonValue* v = sweep.find("benches");
  if (v == nullptr || (v->is_string() && v->string == "all")) {
    out->assign(std::begin(npb::kAllBenchmarks), std::end(npb::kAllBenchmarks));
    return true;
  }
  if (!v->is_array() || v->items.empty()) {
    *error = "bad \"benches\" (use \"all\" or a non-empty array of names)";
    return false;
  }
  for (const report::JsonValue& item : v->items) {
    npb::Benchmark b{};
    if (!item.is_string() || !npb::parse_benchmark(item.string, b)) {
      *error = "bad benchmark \"" + item.string + "\" in \"benches\"";
      return false;
    }
    out->push_back(b);
  }
  return true;
}

/// "pairs": [["CG","FT"], ...].
bool parse_pairs(const report::JsonValue& sweep,
                 std::vector<std::pair<npb::Benchmark, npb::Benchmark>>* out,
                 std::string* error) {
  out->clear();
  const report::JsonValue* v = sweep.find("pairs");
  if (v == nullptr) return true;
  if (!v->is_array()) {
    *error = "bad \"pairs\" (need an array of [\"A\",\"B\"] pairs)";
    return false;
  }
  for (const report::JsonValue& item : v->items) {
    npb::Benchmark a{}, b{};
    if (!item.is_array() || item.items.size() != 2 ||
        !item.items[0].is_string() || !item.items[1].is_string() ||
        !npb::parse_benchmark(item.items[0].string, a) ||
        !npb::parse_benchmark(item.items[1].string, b)) {
      *error = "bad \"pairs\" entry (each must be [\"A\",\"B\"])";
      return false;
    }
    out->emplace_back(a, b);
  }
  return true;
}

/// One resolved machine of a sweep: the spec string plus the topology
/// (null for the default machine) and its configuration table.
struct ResolvedMachine {
  std::string spec;  ///< as written ("" and "default" normalize to "")
  std::shared_ptr<const sim::Topology> topology;  ///< null = default
  std::vector<harness::StudyConfig> configs;
};

/// "machines": ["default", "woodcrest", "topo.json", ...].  Absent means
/// the default machine only.
bool parse_machines(const report::JsonValue& sweep,
                    std::vector<ResolvedMachine>* out, std::string* error) {
  out->clear();
  std::vector<std::string> specs;
  const report::JsonValue* v = sweep.find("machines");
  if (v == nullptr) {
    specs.emplace_back();
  } else if (v->is_array() && !v->items.empty()) {
    for (const report::JsonValue& item : v->items) {
      if (!item.is_string()) {
        *error = "bad \"machines\" (need an array of spec strings)";
        return false;
      }
      specs.push_back(item.string == "default" ? std::string() : item.string);
    }
  } else {
    *error = "bad \"machines\" (need a non-empty array of spec strings)";
    return false;
  }
  for (std::string& spec : specs) {
    ResolvedMachine m;
    m.spec = std::move(spec);
    if (m.spec.empty()) {
      m.configs = harness::all_configs();
    } else {
      sim::Topology topo;
      std::string why;
      if (!sim::Topology::resolve(m.spec, &topo, &why)) {
        *error = "bad machine \"" + m.spec + "\": " + why;
        return false;
      }
      m.topology = std::make_shared<const sim::Topology>(std::move(topo));
      m.configs = harness::configs_for(*m.topology);
    }
    out->push_back(std::move(m));
  }
  return true;
}

enum class Mode { kSingle, kPair, kPredict };

bool parse_modes(const report::JsonValue& sweep, std::vector<Mode>* out,
                 std::string* error) {
  out->clear();
  const report::JsonValue* v = sweep.find("modes");
  if (v == nullptr) {
    out->push_back(Mode::kSingle);
    return true;
  }
  if (!v->is_array() || v->items.empty()) {
    *error = "bad \"modes\" (need a non-empty array)";
    return false;
  }
  for (const report::JsonValue& item : v->items) {
    if (item.string == "single") {
      out->push_back(Mode::kSingle);
    } else if (item.string == "pair") {
      out->push_back(Mode::kPair);
    } else if (item.string == "predict") {
      out->push_back(Mode::kPredict);
    } else {
      *error = "bad mode \"" + item.string +
               "\" (use \"single\", \"pair\" or \"predict\")";
      return false;
    }
  }
  return true;
}

/// The configuration rows a sweep names on one machine.  "all" (or absent)
/// expands mode-sensitively: pairs get only the parallel rows (a pair needs
/// threads to split between two programs).
bool select_configs(const report::JsonValue& sweep, const ResolvedMachine& m,
                    bool for_pairs,
                    std::vector<const harness::StudyConfig*>* out,
                    std::string* error) {
  out->clear();
  const report::JsonValue* v = sweep.find("configs");
  if (v == nullptr || (v->is_string() && v->string == "all")) {
    for (const harness::StudyConfig& cfg : m.configs) {
      if (!(for_pairs && cfg.is_serial())) out->push_back(&cfg);
    }
    return true;
  }
  if (!v->is_array() || v->items.empty()) {
    *error = "bad \"configs\" (use \"all\" or a non-empty array of names)";
    return false;
  }
  for (const report::JsonValue& item : v->items) {
    const int i = item.is_string()
                      ? harness::find_config_index(m.configs, item.string)
                      : -1;
    if (i < 0) {
      *error = "unknown configuration \"" + item.string + "\" on machine \"" +
               (m.spec.empty() ? "default" : m.spec) + "\"";
      return false;
    }
    out->push_back(&m.configs[static_cast<std::size_t>(i)]);
  }
  return true;
}

/// Appends one trial of a resolved cell, collapsing duplicates by
/// fingerprint.
void emit_cell(const harness::CellSpec::Resolved& cell, int trial,
               const ResolvedMachine& m, JobPlan* plan,
               std::unordered_set<std::string>* seen) {
  if (!seen->insert(cell.fingerprint(trial)).second) return;
  JobCell jc;
  jc.key = cell.key(trial);
  jc.cfg = cell.cfg;
  jc.opt = cell.opt;
  jc.seed = cell.opt.trial_seed(trial);
  jc.machine = m.spec;
  plan->cells.push_back(std::move(jc));
}

bool expand_sweep(const report::JsonValue& sweep, const Knobs& defaults,
                  JobPlan* plan, std::unordered_set<std::string>* seen,
                  std::string* error) {
  Knobs k = defaults;
  if (!apply_knobs(sweep, &k, /*is_sweep=*/true, error)) return false;

  std::vector<npb::Benchmark> benches;
  std::vector<std::pair<npb::Benchmark, npb::Benchmark>> pairs;
  std::vector<ResolvedMachine> machines;
  std::vector<Mode> modes;
  if (!parse_benches(sweep, &benches, error) ||
      !parse_pairs(sweep, &pairs, error) ||
      !parse_machines(sweep, &machines, error) ||
      !parse_modes(sweep, &modes, error)) {
    return false;
  }
  for (const Mode mode : modes) {
    if (mode == Mode::kPair && pairs.empty()) {
      *error = "mode \"pair\" needs a non-empty \"pairs\" array";
      return false;
    }
  }

  for (const ResolvedMachine& m : machines) {
    for (const Mode mode : modes) {
      std::vector<const harness::StudyConfig*> configs;
      if (!select_configs(sweep, m, mode == Mode::kPair, &configs, error)) {
        return false;
      }
      for (const harness::StudyConfig* cfg : configs) {
        // One CellSpec per (machine, mode, config, programs): resolve()
        // validates the cell once, then every trial mints its key from the
        // same Resolved.
        std::vector<harness::CellSpec> specs;
        switch (mode) {
          case Mode::kSingle:
            for (const npb::Benchmark b : benches) {
              specs.push_back(harness::CellSpec::bench(b));
            }
            break;
          case Mode::kPredict:
            for (const npb::Benchmark b : benches) {
              specs.push_back(harness::CellSpec::bench(b).mode(
                  harness::CellSpec::Mode::kPredict));
            }
            break;
          case Mode::kPair:
            for (const auto& [a, b] : pairs) {
              specs.push_back(harness::CellSpec::bench(a).pair_with(b));
            }
            break;
        }
        for (harness::CellSpec& spec : specs) {
          spec.machine(m.topology)
              .config(*cfg)
              .problem_class(k.cls)
              .scale(k.scale)
              .grain(k.grain)
              .schedule(k.sched, k.sched_chunk)
              .trials(k.trials)
              .seed(k.seed)
              .verify(k.verify);
          harness::CellSpec::Resolved cell;
          if (!spec.resolve(&cell, error)) return false;
          for (int t = 0; t < k.trials; ++t) {
            emit_cell(cell, t, m, plan, seen);
          }
        }
      }
    }
  }
  return true;
}

}  // namespace

bool parse_job_file(std::string_view text, JobPlan* out, std::string* error) {
  *out = JobPlan{};
  std::string err;
  report::JsonValue doc;
  if (!report::parse_json_value(text, &doc, &err)) {
    if (error != nullptr) *error = "job file: " + err;
    return false;
  }
  if (!doc.is_object() || doc.string_or("kind", "") != "job_file") {
    if (error != nullptr) {
      *error = "job file: root must be {\"kind\":\"job_file\", ...}";
    }
    return false;
  }
  std::uint64_t schema = 0;
  const report::JsonValue* sv = doc.find("schema_version");
  if (sv == nullptr || !sv->as_u64(&schema) ||
      schema != static_cast<std::uint64_t>(report::kSchemaVersion)) {
    if (error != nullptr) {
      *error = "job file: unsupported schema_version (want " +
               std::to_string(report::kSchemaVersion) + ")";
    }
    return false;
  }
  out->store_dir = doc.string_or("store", "");

  Knobs defaults;
  const report::JsonValue* d = doc.find("defaults");
  if (d != nullptr) {
    if (!d->is_object() ||
        !apply_knobs(*d, &defaults, /*is_sweep=*/false, &err)) {
      if (error != nullptr) {
        *error = "job file defaults: " + (err.empty() ? "not an object" : err);
      }
      return false;
    }
  }

  const report::JsonValue* sweeps = doc.find("sweeps");
  if (sweeps == nullptr || !sweeps->is_array() || sweeps->items.empty()) {
    if (error != nullptr) {
      *error = "job file: need a non-empty \"sweeps\" array";
    }
    return false;
  }
  std::unordered_set<std::string> seen;
  for (std::size_t i = 0; i < sweeps->items.size(); ++i) {
    if (!sweeps->items[i].is_object()) {
      if (error != nullptr) {
        *error = "job file sweep " + std::to_string(i) + ": not an object";
      }
      return false;
    }
    if (!expand_sweep(sweeps->items[i], defaults, out, &seen, &err)) {
      if (error != nullptr) {
        *error = "job file sweep " + std::to_string(i) + ": " + err;
      }
      return false;
    }
  }
  return true;
}

bool load_job_file(const std::string& path, JobPlan* out, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot read job file '" + path + "'";
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_job_file(ss.str(), out, error);
}

}  // namespace paxsim::serve
