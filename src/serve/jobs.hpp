// paxsim/serve/jobs.hpp
//
// Job files — the batch input of `paxsim serve`.  A job file is one JSON
// document describing a sweep as cross-products, which expansion turns
// into a flat, deduplicated, deterministically ordered cell list:
//
//   {"schema_version": 1, "kind": "job_file",
//    "store": "results/",                      // default --store (optional)
//    "defaults": {"class": "B", "trials": 1, "seed": 314159265,
//                 "verify": true, "grain": 1, "scale": 16.0},
//    "sweeps": [
//      {"benches": "all",                      // or ["CG","FT",...]
//       "machines": ["default", "woodcrest"],  // preset | JSON path |
//                                              // "default" (optional)
//       "configs": "all",                      // or ["HT on -4-1", ...]
//       "modes": ["single", "predict"],        // single | pair | predict
//       "pairs": [["CG","FT"], ...]            // for mode "pair"
//      }, ...]}
//
// Expansion semantics, per sweep: every machine x every named configuration
// of that machine x every mode x every benchmark (or pair) x every trial
// seed.  "configs": "all" means the machine's full Table-1 analogue for
// single/predict and the parallel rows only for pairs (a pair needs threads
// to split).  Any defaults key may be overridden per sweep.  Duplicate
// cells across sweeps collapse to their first occurrence, so overlapping
// sweeps are cheap to write.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness/config.hpp"
#include "harness/engine.hpp"
#include "harness/runner.hpp"

namespace paxsim::serve {

/// One expanded cell of a job plan: the identity the store keys on plus
/// everything needed to compute it.
struct JobCell {
  harness::CellKey key;      ///< kind selects single / pair / prediction
  harness::StudyConfig cfg;  ///< resolved configuration (owned copy)
  harness::RunOptions opt;   ///< class/scale/verify/grain/topology applied
  std::uint64_t seed = 0;    ///< the per-trial seed (key.seed, repeated
                             ///< here for driver convenience)
  std::string machine;       ///< the sweep's machine spec ("" = default)
};

/// A parsed + expanded job file.
struct JobPlan {
  std::string store_dir;       ///< the file's "store" member ("" if absent)
  std::vector<JobCell> cells;  ///< deduplicated, in expansion order
};

/// Parses and expands a job-file document.  On failure returns false and a
/// user-facing message naming the offending sweep/field.  Pure except for
/// topology resolution (a machine spec may name a JSON file).
bool parse_job_file(std::string_view text, JobPlan* out, std::string* error);

/// parse_job_file over the contents of @p path.
bool load_job_file(const std::string& path, JobPlan* out, std::string* error);

}  // namespace paxsim::serve
