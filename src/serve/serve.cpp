// paxsim/serve/serve.cpp
#include "serve/serve.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <exception>
#include <memory>
#include <mutex>
#include <ostream>
#include <utility>
#include <vector>

#include "harness/engine.hpp"
#include "npb/kernel.hpp"
#include "report/json.hpp"
#include "serve/store.hpp"

namespace paxsim::serve {
namespace {

const char* payload_name(harness::CellKey::Kind kind) {
  switch (kind) {
    case harness::CellKey::Kind::kSingle: return "single";
    case harness::CellKey::Kind::kPair: return "pair";
    case harness::CellKey::Kind::kPredict: return "prediction";
  }
  return "single";
}

/// One NDJSON progress line.  Self-describing (cell index + identity), so
/// consumers need no ordering guarantees beyond line atomicity.
void emit_progress(std::ostream& os, const JobCell& cell, std::size_t index,
                   std::size_t total, const char* outcome) {
  report::Json j(os);
  j.begin_document("serve_progress")
      .field("cell", static_cast<std::uint64_t>(index))
      .field("total", static_cast<std::uint64_t>(total))
      .field("payload", payload_name(cell.key.kind))
      .field("bench", npb::benchmark_name(cell.key.a));
  if (cell.key.kind == harness::CellKey::Kind::kPair) {
    j.field("bench_b", npb::benchmark_name(cell.key.b));
  }
  j.field("config", cell.cfg.name)
      .field("machine", cell.machine.empty() ? "default" : cell.machine)
      .field("seed", cell.key.seed)
      .field("outcome", outcome)
      .field("digest",
             harness::cell_digest(harness::cell_fingerprint(cell.key)));
  j.finish();
}

void emit_summary(std::ostream& os, const ServeSummary& s, int procs,
                  int workers_failed) {
  report::Json j(os);
  j.begin_document("serve_summary")
      .field("total", s.total)
      .field("store_hits", s.store_hits)
      .field("computed", s.computed)
      .field("skipped", s.skipped)
      .field("failures", s.failures)
      .field("procs", procs)
      .field("workers_failed", workers_failed);
  j.finish();
}

/// Computes one cell through the engine (which writes it through to the
/// attached store).  Throws what the engine throws (verification failure).
void compute_cell(harness::ExperimentEngine& engine, const JobCell& cell) {
  switch (cell.key.kind) {
    case harness::CellKey::Kind::kSingle:
      engine.single(cell.key.a, cell.cfg, cell.opt, cell.seed);
      break;
    case harness::CellKey::Kind::kPair:
      engine.pair(cell.key.a, cell.key.b, cell.cfg, cell.opt, cell.seed);
      break;
    case harness::CellKey::Kind::kPredict:
      engine.predict(cell.key.a, cell.cfg, cell.opt, cell.seed);
      break;
  }
}

/// The per-process workhorse: this process's round-robin shard of the plan
/// against one store handle.
ServeSummary run_shard(const JobPlan& plan, const std::string& store_dir,
                       const ServeOptions& opt, int shard, int nshards,
                       std::ostream* progress) {
  auto store = std::make_shared<ResultStore>(store_dir);
  harness::ExperimentEngine engine(opt.jobs);
  engine.set_store(store);

  ServeSummary s;
  s.total = plan.cells.size();

  // Pass 1 — probe: answered cells are hits, the rest queue for compute
  // (bounded by --max-cells; the overflow is reported, not silently
  // dropped, so an interrupted plan is visible in the stream).
  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < plan.cells.size(); ++i) {
    if (nshards > 1 && static_cast<int>(i % static_cast<std::size_t>(
                           nshards)) != shard) {
      continue;
    }
    const JobCell& cell = plan.cells[i];
    if (store->contains(cell.key)) {
      ++s.store_hits;
      if (progress != nullptr) {
        emit_progress(*progress, cell, i, plan.cells.size(), "hit");
      }
    } else if (opt.max_cells != 0 && pending.size() >= opt.max_cells) {
      ++s.skipped;
      if (progress != nullptr) {
        emit_progress(*progress, cell, i, plan.cells.size(), "skipped");
      }
    } else {
      pending.push_back(i);
    }
  }
  if (nshards > 1) {
    // This shard's universe is its own cells only.
    s.total = s.store_hits + s.skipped + pending.size();
  }

  // Pass 2 — compute the queue on the engine's worker pool.  Every cell is
  // persisted the moment it finishes (the engine's write-through), so an
  // interruption anywhere in this loop loses at most in-flight cells.
  std::mutex mu;  // progress stream + summary counters
  engine.for_each(pending.size(), [&](std::size_t q) {
    const std::size_t i = pending[q];
    const JobCell& cell = plan.cells[i];
    bool ok = true;
    try {
      compute_cell(engine, cell);
    } catch (const std::exception&) {
      ok = false;
    }
    std::lock_guard<std::mutex> lock(mu);
    const char* outcome = ok ? "computed" : "error";
    if (ok) {
      ++s.computed;
    } else {
      ++s.failures;
    }
    if (progress != nullptr) {
      emit_progress(*progress, cell, i, plan.cells.size(), outcome);
    }
  });
  return s;
}

}  // namespace

ServeSummary serve_cells(const JobPlan& plan, const std::string& store_dir,
                         const ServeOptions& opt, std::ostream* progress) {
  return run_shard(plan, store_dir, opt, /*shard=*/0, /*nshards=*/1,
                   progress);
}

int run_serve(const ServeOptions& opt, std::ostream& out, std::ostream& err) {
  JobPlan plan;
  std::string error;
  if (!load_job_file(opt.jobs_file, &plan, &error)) {
    err << "error: " << error << '\n';
    return 1;
  }
  const std::string store_dir =
      !opt.store_dir.empty() ? opt.store_dir : plan.store_dir;
  if (store_dir.empty()) {
    err << "error: no store directory (pass --store=DIR or set \"store\" in "
           "the job file)\n";
    return 1;
  }

  try {
    if (opt.procs <= 1) {
      const ServeSummary s = serve_cells(plan, store_dir, opt,
                                         opt.progress ? &out : nullptr);
      emit_summary(out, s, 1, 0);
      return s.failures == 0 ? 0 : 1;
    }

    // Multi-process sharding.  The parent probes the store before and
    // after, so the summary is exact without any worker IPC: pre-answered
    // cells are hits, newly present ones were computed, absent ones were
    // skipped (or failed — the worker exit codes say which happened).
    ServeSummary s;
    s.total = plan.cells.size();
    std::vector<bool> pre(plan.cells.size(), false);
    {
      ResultStore probe(store_dir);
      for (std::size_t i = 0; i < plan.cells.size(); ++i) {
        pre[i] = probe.contains(plan.cells[i].key);
        if (pre[i]) {
          ++s.store_hits;
          if (opt.progress) {
            emit_progress(out, plan.cells[i], i, plan.cells.size(), "hit");
          }
        }
      }
    }
    out.flush();
    std::vector<pid_t> workers;
    for (int w = 0; w < opt.procs; ++w) {
      const pid_t pid = fork();
      if (pid < 0) {
        err << "error: fork failed\n";
        for (const pid_t running : workers) {
          int status = 0;
          waitpid(running, &status, 0);
        }
        return 1;
      }
      if (pid == 0) {
        // Worker: silent (the parent owns the progress stream), its shard
        // only, coordination purely through the store's atomic writes.
        const ServeSummary ws =
            run_shard(plan, store_dir, opt, w, opt.procs, nullptr);
        _exit(ws.failures == 0 ? 0 : 1);
      }
      workers.push_back(pid);
    }
    int workers_failed = 0;
    for (const pid_t pid : workers) {
      int status = 0;
      waitpid(pid, &status, 0);
      if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) ++workers_failed;
    }
    ResultStore probe(store_dir);
    for (std::size_t i = 0; i < plan.cells.size(); ++i) {
      if (pre[i]) continue;
      const bool now = probe.contains(plan.cells[i].key);
      if (now) {
        ++s.computed;
      } else {
        ++s.skipped;
      }
      if (opt.progress) {
        emit_progress(out, plan.cells[i], i, plan.cells.size(),
                      now ? "computed" : "skipped");
      }
    }
    emit_summary(out, s, opt.procs, workers_failed);
    return workers_failed == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    err << "error: " << e.what() << '\n';
    return 1;
  }
}

}  // namespace paxsim::serve
