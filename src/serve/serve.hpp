// paxsim/serve/serve.hpp
//
// The paxserve batch driver: expands a job file (serve/jobs.hpp) against a
// persistent result store (serve/store.hpp) and computes exactly the cells
// the store cannot already answer.
//
// Progress streams as NDJSON — one {"kind":"serve_progress"} line per cell
// with its outcome ("hit" | "computed" | "skipped" | "error") and a final
// {"kind":"serve_summary"} line whose computed/store_hits counts tooling
// keys off (a fully warmed store re-run prints "computed":0).
//
// Scaling:
//   --jobs=N   host threads inside one process (the engine's dispatch);
//   --procs=N  shared-nothing worker processes, cells sharded round-robin
//              by position.  Workers coordinate exclusively through the
//              store's atomic writes — no locks, no IPC; racing writers on
//              a shared cell dedup through rename(2).
//
// Interruption and resume need no bookkeeping beyond the store itself:
// every computed cell is persisted the moment it finishes, so re-running
// the same job file picks up where the interrupted run stopped.
// --max-cells=N bounds how many cells one invocation computes (stored
// answers don't count), turning interruption into a deterministic,
// testable event.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "serve/jobs.hpp"

namespace paxsim::serve {

/// Knobs of one `paxsim serve` invocation.
struct ServeOptions {
  std::string jobs_file;        ///< path to the job-file JSON (required)
  std::string store_dir;        ///< --store override; "" uses the job
                                ///< file's "store" member
  int jobs = 1;                 ///< host threads per worker process
  int procs = 1;                ///< worker processes (fork-based sharding)
  std::uint64_t max_cells = 0;  ///< stop after computing N cells (0 = all)
  bool progress = true;         ///< stream per-cell NDJSON lines
};

/// What one invocation did.  total == store_hits + computed + skipped +
/// failures always holds.
struct ServeSummary {
  std::uint64_t total = 0;       ///< cells in the expanded plan
  std::uint64_t store_hits = 0;  ///< answered by the store, not computed
  std::uint64_t computed = 0;    ///< simulated/predicted by this run
  std::uint64_t skipped = 0;     ///< left for later (--max-cells reached)
  std::uint64_t failures = 0;    ///< cells that threw (verification, I/O)
};

/// Runs the expanded @p plan against the store at @p store_dir with
/// single-process semantics (opt.procs is ignored; sharding is the
/// process-spawning run_serve()'s business).  NDJSON progress goes to
/// @p progress when non-null.  The workhorse run_serve() and the tests
/// drive directly.
ServeSummary serve_cells(const JobPlan& plan, const std::string& store_dir,
                         const ServeOptions& opt, std::ostream* progress);

/// The `paxsim serve` entry point: loads opt.jobs_file, resolves the store
/// directory, fans out over opt.procs worker processes, streams NDJSON to
/// @p out and diagnostics to @p err.  Returns a process exit code (0 even
/// when --max-cells left cells unanswered; 1 on failures or bad input).
int run_serve(const ServeOptions& opt, std::ostream& out, std::ostream& err);

}  // namespace paxsim::serve
