// paxsim/serve/store.cpp
#include "serve/store.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "perf/metrics.hpp"
#include "report/json.hpp"

namespace fs = std::filesystem;

namespace paxsim::serve {
namespace {

constexpr const char* kMarkerName = "paxstore.json";
constexpr const char* kQuarantineSuffix = ".quarantined";

std::uint64_t double_bits(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double bits_double(std::uint64_t bits) {
  double v = 0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

/// A double field stored losslessly: "<name>" carries the human-readable
/// rendering, "<name>_bits" the exact IEEE-754 pattern load reads back.
void write_exact_double(report::Json& j, std::string_view name, double v) {
  j.field(name, v);
  j.field(std::string(name) + "_bits", double_bits(v));
}

bool read_exact_double(const report::JsonValue& obj, std::string_view name,
                       double* out) {
  const report::JsonValue* bits = obj.find(std::string(name) + "_bits");
  std::uint64_t b = 0;
  if (bits == nullptr || !bits->as_u64(&b)) return false;
  *out = bits_double(b);
  return true;
}

void write_run_result(report::Json& j, const harness::RunResult& r) {
  j.object();
  write_exact_double(j, "wall_cycles", r.wall_cycles);
  write_exact_double(j, "host_sim_sec", r.host_sim_sec);
  j.field("verified", r.verified);
  j.key("counters").object();
  for (std::size_t e = 0; e < perf::kEventCount; ++e) {
    const auto ev = static_cast<perf::Event>(e);
    j.field(perf::event_name(ev), r.counters.get(ev));
  }
  j.end();
  j.end();
}

/// Strict reconstruction: every known counter must be present and no
/// unknown counter may appear, so event-set skew between the writing and
/// reading binaries reads as a version mismatch, never as silent zeros.
/// Metrics are re-derived from the counters — the exact function of them
/// the simulation itself used.
bool read_run_result(const report::JsonValue& obj, harness::RunResult* out) {
  *out = harness::RunResult{};
  if (!read_exact_double(obj, "wall_cycles", &out->wall_cycles)) return false;
  if (!read_exact_double(obj, "host_sim_sec", &out->host_sim_sec)) {
    return false;
  }
  const report::JsonValue* verified = obj.find("verified");
  if (verified == nullptr || !verified->is_bool()) return false;
  out->verified = verified->boolean;
  const report::JsonValue* counters = obj.find("counters");
  if (counters == nullptr || !counters->is_object() ||
      counters->members.size() != perf::kEventCount) {
    return false;
  }
  for (std::size_t e = 0; e < perf::kEventCount; ++e) {
    const auto ev = static_cast<perf::Event>(e);
    const report::JsonValue* v = counters->find(perf::event_name(ev));
    std::uint64_t count = 0;
    if (v == nullptr || !v->as_u64(&count)) return false;
    out->counters.add(ev, count);
  }
  out->metrics = perf::derive_metrics(out->counters);
  return true;
}

/// The model::Prediction fields, serialized exactly.  Names are the struct
/// member names; the metrics bundle reuses the perf metric column names.
struct PredField {
  const char* name;
  double model::Prediction::* member;
};

constexpr PredField kPredFields[] = {
    {"wall_cycles", &model::Prediction::wall_cycles},
    {"serial_wall_cycles", &model::Prediction::serial_wall_cycles},
    {"speedup", &model::Prediction::speedup},
    {"cycles", &model::Prediction::cycles},
    {"instructions", &model::Prediction::instructions},
    {"l1d_refs", &model::Prediction::l1d_refs},
    {"l1d_misses", &model::Prediction::l1d_misses},
    {"l2_refs", &model::Prediction::l2_refs},
    {"l2_misses", &model::Prediction::l2_misses},
    {"tc_refs", &model::Prediction::tc_refs},
    {"tc_misses", &model::Prediction::tc_misses},
    {"itlb_refs", &model::Prediction::itlb_refs},
    {"itlb_misses", &model::Prediction::itlb_misses},
    {"dtlb_misses", &model::Prediction::dtlb_misses},
    {"branches", &model::Prediction::branches},
    {"mispredicts", &model::Prediction::mispredicts},
    {"bus_reads", &model::Prediction::bus_reads},
    {"bus_writes", &model::Prediction::bus_writes},
    {"bus_prefetches", &model::Prediction::bus_prefetches},
    {"coherence_transfers", &model::Prediction::coherence_transfers},
    {"stall_mem", &model::Prediction::stall_mem},
    {"stall_fe", &model::Prediction::stall_fe},
    {"stall_tlb", &model::Prediction::stall_tlb},
    {"stall_branch", &model::Prediction::stall_branch},
    {"mc_utilization", &model::Prediction::mc_utilization},
};

struct MetricField {
  const char* name;
  double perf::Metrics::* member;
};

constexpr MetricField kMetricFields[] = {
    {"l1d_miss_rate", &perf::Metrics::l1d_miss_rate},
    {"l2_miss_rate", &perf::Metrics::l2_miss_rate},
    {"trace_cache_miss_rate", &perf::Metrics::trace_cache_miss_rate},
    {"itlb_miss_rate", &perf::Metrics::itlb_miss_rate},
    {"dtlb_misses", &perf::Metrics::dtlb_misses},
    {"stalled_fraction", &perf::Metrics::stalled_fraction},
    {"branch_prediction_rate", &perf::Metrics::branch_prediction_rate},
    {"prefetch_bus_fraction", &perf::Metrics::prefetch_bus_fraction},
    {"cpi", &perf::Metrics::cpi},
};

void write_prediction(report::Json& j, const model::Prediction& p) {
  j.object();
  for (const PredField& f : kPredFields) {
    write_exact_double(j, f.name, p.*(f.member));
  }
  j.key("metrics").object();
  for (const MetricField& f : kMetricFields) {
    write_exact_double(j, f.name, p.metrics.*(f.member));
  }
  j.end();
  j.end();
}

bool read_prediction(const report::JsonValue& obj, model::Prediction* out) {
  *out = model::Prediction{};
  for (const PredField& f : kPredFields) {
    if (!read_exact_double(obj, f.name, &(out->*(f.member)))) return false;
  }
  const report::JsonValue* metrics = obj.find("metrics");
  if (metrics == nullptr || !metrics->is_object()) return false;
  for (const MetricField& f : kMetricFields) {
    if (!read_exact_double(*metrics, f.name, &(out->metrics.*(f.member)))) {
      return false;
    }
  }
  return true;
}

const char* payload_name(harness::CellKey::Kind kind) {
  switch (kind) {
    case harness::CellKey::Kind::kSingle: return "single";
    case harness::CellKey::Kind::kPair: return "pair";
    case harness::CellKey::Kind::kPredict: return "prediction";
  }
  return "single";
}

/// Envelope check shared by load and verify: schema/store/fingerprint
/// versions must all match this binary's.  Returns false on mismatch
/// (*corrupt stays false) or malformed envelope (*corrupt set).
bool envelope_ok(const report::JsonValue& doc, bool* corrupt) {
  *corrupt = false;
  if (!doc.is_object() || doc.string_or("kind", "") != "stored_cell") {
    *corrupt = true;
    return false;
  }
  std::uint64_t schema = 0, format = 0, fpv = 0;
  const report::JsonValue* s = doc.find("schema_version");
  const report::JsonValue* f = doc.find("store_format");
  const report::JsonValue* v = doc.find("fingerprint_version");
  if (s == nullptr || !s->as_u64(&schema) || f == nullptr ||
      !f->as_u64(&format) || v == nullptr || !v->as_u64(&fpv)) {
    *corrupt = true;
    return false;
  }
  return schema == static_cast<std::uint64_t>(report::kSchemaVersion) &&
         format == static_cast<std::uint64_t>(kStoreFormatVersion) &&
         fpv == static_cast<std::uint64_t>(harness::kCellFingerprintVersion);
}

bool read_file(const fs::path& p, std::string* out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return in.good() || in.eof();
}

}  // namespace

ResultStore::ResultStore(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(fs::path(dir_) / "objects", ec);
  fs::create_directories(fs::path(dir_) / "tmp", ec);
  if (ec) {
    throw std::runtime_error("paxserve: cannot create store layout under '" +
                             dir_ + "': " + ec.message());
  }
  const fs::path marker = fs::path(dir_) / kMarkerName;
  std::string text;
  if (read_file(marker, &text)) {
    report::JsonValue doc;
    std::uint64_t format = 0;
    const bool parsed = report::parse_json_value(text, &doc);
    const report::JsonValue* f = parsed ? doc.find("store_format") : nullptr;
    if (!parsed || f == nullptr || !f->as_u64(&format) ||
        format != static_cast<std::uint64_t>(kStoreFormatVersion)) {
      throw std::runtime_error(
          "paxserve: '" + dir_ +
          "' holds a store of an incompatible format version (want " +
          std::to_string(kStoreFormatVersion) + ")");
    }
    return;
  }
  // Fresh store: commit the marker through the same tmp+rename discipline
  // as entries, so two processes opening a new store concurrently are fine.
  std::ostringstream body;
  report::Json j(body);
  j.begin_document("store_marker")
      .field("store_format", kStoreFormatVersion)
      .field("fingerprint_version", harness::kCellFingerprintVersion);
  j.finish();
  const fs::path tmp = fs::path(dir_) / "tmp" / "marker.tmp";
  std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
  out << body.str();
  out.close();
  if (!out) {
    throw std::runtime_error("paxserve: cannot write store marker in '" +
                             dir_ + "'");
  }
  fs::rename(tmp, marker, ec);
  if (ec && !fs::exists(marker)) {
    throw std::runtime_error("paxserve: cannot commit store marker in '" +
                             dir_ + "': " + ec.message());
  }
}

std::string ResultStore::object_path(const std::string& digest) const {
  return (fs::path(dir_) / "objects" / digest.substr(0, 2) /
          (digest.substr(2) + ".json"))
      .string();
}

bool ResultStore::contains(const harness::CellKey& key) const {
  return fs::exists(
      object_path(harness::cell_digest(harness::cell_fingerprint(key))));
}

bool ResultStore::read_object(const std::string& digest,
                              std::string* payload) const {
  if (digest.size() != 32) return false;
  for (const char c : digest) {
    const bool hex = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    if (!hex) return false;
  }
  return read_file(object_path(digest), payload);
}

void ResultStore::quarantine(const std::string& path) {
  std::error_code ec;
  fs::rename(path, path + kQuarantineSuffix, ec);
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.quarantines;
}

bool ResultStore::load_validated(const harness::CellKey& key,
                                 report::JsonValue* doc) {
  const std::string fingerprint = harness::cell_fingerprint(key);
  const std::string path = object_path(harness::cell_digest(fingerprint));
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.loads;
  }
  std::string text;
  if (!fs::exists(path)) return false;
  if (!read_file(path, &text)) return false;
  bool corrupt = false;
  if (!report::parse_json_value(text, doc)) {
    quarantine(path);
    return false;
  }
  if (!envelope_ok(*doc, &corrupt)) {
    if (corrupt) {
      quarantine(path);
    } else {
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.load_rejects;
    }
    return false;
  }
  // Content addressing is verified, not assumed: the entry must carry the
  // exact fingerprint its name was derived from.
  if (doc->string_or("fingerprint", "") != fingerprint ||
      doc->string_or("payload", "") != payload_name(key.kind)) {
    quarantine(path);
    return false;
  }
  return true;
}

bool ResultStore::load_cell(const harness::CellKey& key,
                            harness::CellValue* out) {
  report::JsonValue doc;
  if (!load_validated(key, &doc)) return false;
  *out = harness::CellValue{};
  bool ok = false;
  if (key.kind == harness::CellKey::Kind::kSingle) {
    const report::JsonValue* single = doc.find("single");
    ok = single != nullptr && read_run_result(*single, &out->single);
  } else if (key.kind == harness::CellKey::Kind::kPair) {
    const report::JsonValue* pair = doc.find("pair");
    const report::JsonValue* programs =
        pair != nullptr ? pair->find("program") : nullptr;
    ok = programs != nullptr && programs->is_array() &&
         programs->items.size() == 2 &&
         read_run_result(programs->items[0], &out->pair.program[0]) &&
         read_run_result(programs->items[1], &out->pair.program[1]);
  }
  if (!ok) {
    quarantine(object_path(harness::cell_digest(harness::cell_fingerprint(key))));
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.load_hits;
  return true;
}

bool ResultStore::load_prediction(const harness::CellKey& key,
                                  model::Prediction* out) {
  report::JsonValue doc;
  if (!load_validated(key, &doc)) return false;
  const report::JsonValue* pred = doc.find("prediction");
  if (pred == nullptr || !read_prediction(*pred, out)) {
    quarantine(object_path(harness::cell_digest(harness::cell_fingerprint(key))));
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.load_hits;
  return true;
}

void ResultStore::commit(const harness::CellKey& key,
                         const std::string& body) {
  const std::string digest =
      harness::cell_digest(harness::cell_fingerprint(key));
  const std::string final_path = object_path(digest);
  if (fs::exists(final_path)) {
    // Another shared-nothing writer (or an earlier run) already answered
    // this cell with the identical deterministic bytes.
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.dedup_skips;
    return;
  }
  std::error_code ec;
  fs::create_directories(fs::path(final_path).parent_path(), ec);
  std::uint64_t seq = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    seq = tmp_seq_++;
  }
  // Unique per (process, handle, write): concurrent writers never collide
  // on the tmp name, and rename(2) makes the commit atomic — a reader sees
  // either no entry or the whole entry, never a torn one.
  const fs::path tmp =
      fs::path(dir_) / "tmp" /
      (digest + "." + std::to_string(::getpid()) + "." + std::to_string(seq) +
       ".tmp");
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out << body;
    out.close();
    if (!out) {
      throw std::runtime_error("paxserve: cannot write store entry " +
                               tmp.string());
    }
  }
  fs::rename(tmp, final_path, ec);
  if (ec) {
    // A racing writer may have landed first on a filesystem where rename
    // onto an existing file errors; that is a successful dedup.
    if (fs::exists(final_path)) {
      fs::remove(tmp, ec);
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.dedup_skips;
      return;
    }
    throw std::runtime_error("paxserve: cannot commit store entry for " +
                             final_path + ": " + ec.message());
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.writes;
}

namespace {

/// Entry head shared by every payload: envelope versions + the verified
/// fingerprint.
void begin_entry(report::Json& j, const harness::CellKey& key) {
  j.begin_document("stored_cell")
      .field("store_format", kStoreFormatVersion)
      .field("fingerprint_version", harness::kCellFingerprintVersion)
      .field("fingerprint", harness::cell_fingerprint(key))
      .field("payload", payload_name(key.kind));
}

}  // namespace

void ResultStore::store_cell(const harness::CellKey& key,
                             const harness::CellValue& value) {
  std::ostringstream body;
  report::Json j(body);
  begin_entry(j, key);
  if (key.kind == harness::CellKey::Kind::kSingle) {
    j.key("single");
    write_run_result(j, value.single);
  } else {
    j.key("pair").object().key("program").array();
    write_run_result(j, value.pair.program[0]);
    write_run_result(j, value.pair.program[1]);
    j.end().end();
  }
  j.finish();
  commit(key, body.str());
}

void ResultStore::store_prediction(const harness::CellKey& key,
                                   const model::Prediction& p) {
  std::ostringstream body;
  report::Json j(body);
  begin_entry(j, key);
  j.key("prediction");
  write_prediction(j, p);
  j.finish();
  commit(key, body.str());
}

namespace {

/// Collects committed/quarantined object paths, sorted so every consumer
/// (scan, ls, verify) walks the store in one deterministic order.
struct ObjectWalk {
  std::vector<std::string> committed;
  std::vector<std::string> quarantined;
};

ObjectWalk walk_objects(const std::string& dir) {
  ObjectWalk w;
  const fs::path root = fs::path(dir) / "objects";
  std::error_code ec;
  for (fs::recursive_directory_iterator it(root, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (!it->is_regular_file()) continue;
    const std::string p = it->path().string();
    if (p.size() > std::strlen(kQuarantineSuffix) &&
        p.rfind(kQuarantineSuffix) == p.size() -
                                          std::strlen(kQuarantineSuffix)) {
      w.quarantined.push_back(p);
    } else if (it->path().extension() == ".json") {
      w.committed.push_back(p);
    }
  }
  std::sort(w.committed.begin(), w.committed.end());
  std::sort(w.quarantined.begin(), w.quarantined.end());
  return w;
}

std::vector<std::string> walk_tmp(const std::string& dir) {
  std::vector<std::string> files;
  std::error_code ec;
  for (fs::directory_iterator it(fs::path(dir) / "tmp", ec), end;
       !ec && it != end; it.increment(ec)) {
    if (it->is_regular_file()) files.push_back(it->path().string());
  }
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace

StoreScan ResultStore::scan() const {
  StoreScan s;
  const ObjectWalk w = walk_objects(dir_);
  s.entries = w.committed.size();
  s.quarantined = w.quarantined.size();
  s.tmp_files = walk_tmp(dir_).size();
  std::error_code ec;
  for (const std::string& p : w.committed) {
    s.bytes += fs::file_size(p, ec);
  }
  return s;
}

std::vector<StoreEntry> ResultStore::list() const {
  std::vector<StoreEntry> rows;
  for (const std::string& p : walk_objects(dir_).committed) {
    std::string text;
    report::JsonValue doc;
    if (!read_file(p, &text) || !report::parse_json_value(text, &doc)) {
      continue;
    }
    StoreEntry e;
    const fs::path path(p);
    e.digest = path.parent_path().filename().string() + path.stem().string();
    e.payload = doc.string_or("payload", "?");
    e.fingerprint = doc.string_or("fingerprint", "");
    e.bytes = text.size();
    rows.push_back(std::move(e));
  }
  return rows;
}

GcResult ResultStore::gc() {
  GcResult r;
  std::error_code ec;
  for (const std::string& p : walk_tmp(dir_)) {
    if (fs::remove(p, ec)) ++r.removed_tmp;
  }
  for (const std::string& p : walk_objects(dir_).quarantined) {
    if (fs::remove(p, ec)) ++r.removed_quarantined;
  }
  return r;
}

VerifyResult ResultStore::verify() {
  VerifyResult r;
  for (const std::string& p : walk_objects(dir_).committed) {
    ++r.checked;
    std::string text;
    report::JsonValue doc;
    if (!read_file(p, &text) || !report::parse_json_value(text, &doc)) {
      quarantine(p);
      ++r.corrupt;
      continue;
    }
    bool corrupt = false;
    if (!envelope_ok(doc, &corrupt)) {
      if (corrupt) {
        quarantine(p);
        ++r.corrupt;
      } else {
        ++r.version_mismatch;
      }
      continue;
    }
    // The payload must parse under its own declared shape.
    const std::string payload = doc.string_or("payload", "");
    bool ok = false;
    if (payload == "single") {
      harness::RunResult rr;
      const report::JsonValue* single = doc.find("single");
      ok = single != nullptr && read_run_result(*single, &rr);
    } else if (payload == "pair") {
      harness::RunResult rr;
      const report::JsonValue* pair = doc.find("pair");
      const report::JsonValue* programs =
          pair != nullptr ? pair->find("program") : nullptr;
      ok = programs != nullptr && programs->is_array() &&
           programs->items.size() == 2 &&
           read_run_result(programs->items[0], &rr) &&
           read_run_result(programs->items[1], &rr);
    } else if (payload == "prediction") {
      model::Prediction pred;
      const report::JsonValue* pr = doc.find("prediction");
      ok = pr != nullptr && read_prediction(*pr, &pred);
    }
    if (!ok) {
      quarantine(p);
      ++r.corrupt;
      continue;
    }
    ++r.ok;
  }
  return r;
}

StoreCounters ResultStore::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

}  // namespace paxsim::serve
