// paxsim/serve/store.hpp
//
// The on-disk content-addressed result store — the persistence layer of
// paxserve.  Every previously answered (kernel, machine, placement, mode)
// question becomes O(1): the ExperimentEngine consults the store before
// simulating and writes every freshly computed eligible cell through.
//
// Addressing.  An entry's name is harness::cell_digest() of the explicit
// versioned harness::cell_fingerprint() serialization of its CellKey —
// never of in-memory struct layout — so stores written by different
// binaries, compilers and hosts interoperate.  The full fingerprint string
// is recorded inside each entry and re-verified on load, so even a digest
// collision cannot alias two cells.
//
// Layout (all under one root directory):
//   paxstore.json                     version marker (store format +
//                                     fingerprint version + JSON schema)
//   objects/<2 hex>/<30 hex>.json     one entry per cell, sharded by the
//                                     first digest byte
//   objects/.../<name>.json.quarantined   corrupted entries set aside by
//                                     load/verify; never read again
//   tmp/                              in-flight writes (unique names)
//
// Concurrency.  Writers are shared-nothing: an entry is serialized to a
// unique file under tmp/ and atomically rename(2)d into place.  Two
// processes racing on the same cell both compute the identical
// deterministic bytes, so whichever rename lands last is a no-op — the
// store mediates cross-process dedup without locks.
//
// Values are the versioned JSON report envelope ({"schema_version":N,
// "kind":"stored_cell"}) written through report::Json; doubles that must
// survive bit-exactly (wall cycles, prediction fields) are stored as their
// IEEE-754 bit patterns next to a human-readable rendering.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "harness/engine.hpp"
#include "model/predict.hpp"
#include "report/parse.hpp"

namespace paxsim::serve {

/// Format version of the store layout + entry envelope.  A store created
/// with a different version refuses to open; entries stamped with a
/// different version are rejected on load (treated as absent).
inline constexpr int kStoreFormatVersion = 1;

/// What a directory scan found (the `paxsim store stat` payload).
struct StoreScan {
  std::uint64_t entries = 0;      ///< committed objects
  std::uint64_t bytes = 0;        ///< total committed object bytes
  std::uint64_t quarantined = 0;  ///< entries set aside as corrupt
  std::uint64_t tmp_files = 0;    ///< leftover in-flight writes
};

/// Per-handle operation counters (process-local, not persisted).
struct StoreCounters {
  std::uint64_t loads = 0;         ///< load attempts
  std::uint64_t load_hits = 0;     ///< loads answered
  std::uint64_t load_rejects = 0;  ///< version/fingerprint rejections
  std::uint64_t writes = 0;        ///< entries committed by this handle
  std::uint64_t dedup_skips = 0;   ///< writes skipped (entry already present)
  std::uint64_t quarantines = 0;   ///< corrupt entries set aside
};

/// One `paxsim store ls` row.
struct StoreEntry {
  std::string digest;       ///< 32-hex object name
  std::string payload;      ///< "single" | "pair" | "prediction"
  std::string fingerprint;  ///< full serialized CellKey
  std::uint64_t bytes = 0;
};

/// Outcome of `paxsim store gc`.
struct GcResult {
  std::uint64_t removed_tmp = 0;
  std::uint64_t removed_quarantined = 0;
};

/// Outcome of `paxsim store verify`.
struct VerifyResult {
  std::uint64_t checked = 0;
  std::uint64_t ok = 0;
  std::uint64_t version_mismatch = 0;  ///< rejected, left in place
  std::uint64_t corrupt = 0;           ///< quarantined
};

/// The on-disk store.  Thread-safe: all methods may be called from engine
/// workers concurrently; the only shared mutable state is the counter set.
class ResultStore final : public harness::CellStore {
 public:
  /// Opens (creating if needed) the store rooted at @p dir.  Throws
  /// std::runtime_error when the directory holds a store of a different
  /// format version or the layout cannot be created.
  explicit ResultStore(std::string dir);

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

  // ---- harness::CellStore --------------------------------------------------
  bool load_cell(const harness::CellKey& key,
                 harness::CellValue* out) override;
  void store_cell(const harness::CellKey& key,
                  const harness::CellValue& value) override;
  bool load_prediction(const harness::CellKey& key,
                       model::Prediction* out) override;
  void store_prediction(const harness::CellKey& key,
                        const model::Prediction& p) override;

  /// Existence probe by key (no parse, no counters).
  [[nodiscard]] bool contains(const harness::CellKey& key) const;

  /// Raw committed entry text by 32-hex digest — the `paxsim store get`
  /// front-end.  Returns the exact bytes of the entry envelope (one JSON
  /// document); false when the digest is malformed or no entry exists.
  [[nodiscard]] bool read_object(const std::string& digest,
                                 std::string* payload) const;

  // ---- maintenance (the `paxsim store` subcommand) --------------------------
  [[nodiscard]] StoreScan scan() const;
  /// Every committed entry, parsed and sorted by digest.  Unparseable
  /// entries are skipped (verify() is the tool that acts on them).
  [[nodiscard]] std::vector<StoreEntry> list() const;
  GcResult gc();
  /// Re-parses every entry; quarantines corrupt ones, counts version
  /// mismatches without touching them.
  VerifyResult verify();

  [[nodiscard]] StoreCounters counters() const;

 private:
  [[nodiscard]] std::string object_path(const std::string& digest) const;
  /// Serializes + atomically commits one entry; dedups against an existing
  /// object.
  void commit(const harness::CellKey& key, const std::string& body);
  /// Loads + validates the entry for @p key into a parsed document.
  /// Returns false (and bumps the right counter) on absence, version
  /// mismatch or corruption (the latter quarantines the file).
  bool load_validated(const harness::CellKey& key, report::JsonValue* doc);
  void quarantine(const std::string& path);

  std::string dir_;
  mutable std::mutex mu_;  ///< guards counters_ and the tmp name sequence
  StoreCounters counters_;
  std::uint64_t tmp_seq_ = 0;
};

}  // namespace paxsim::serve
