#include "sim/branch.hpp"

#include <cassert>

namespace paxsim::sim {

BranchPredictor::BranchPredictor(std::size_t pht_entries, unsigned history_bits)
    : pht_(pht_entries, 1),  // weakly not-taken
      mask_(static_cast<std::uint32_t>(pht_entries - 1)),
      history_mask_((1u << history_bits) - 1) {
  assert(is_pow2(pht_entries));
}

bool BranchPredictor::predict_and_update(std::uint32_t site, bool taken,
                                         BranchHistory& h) noexcept {
  // Knuth multiplicative hash spreads dense site ids across the table.
  const std::uint32_t pc_hash = site * 2654435761u;
  const std::uint32_t idx = (pc_hash ^ h.ghr) & mask_;
  std::uint8_t& ctr = pht_[idx];
  const bool predicted_taken = ctr >= 2;
  if (taken && ctr < 3) ++ctr;
  if (!taken && ctr > 0) --ctr;
  h.ghr = ((h.ghr << 1) | (taken ? 1u : 0u)) & history_mask_;
  return predicted_taken == taken;
}

void BranchPredictor::reset() noexcept {
  for (auto& c : pht_) c = 1;
}

}  // namespace paxsim::sim
