#include "sim/branch.hpp"

#include <cassert>

namespace paxsim::sim {

BranchPredictor::BranchPredictor(std::size_t pht_entries, unsigned history_bits)
    : pht_(pht_entries, 1),  // weakly not-taken
      mask_(static_cast<std::uint32_t>(pht_entries - 1)),
      history_mask_((1u << history_bits) - 1) {
  assert(is_pow2(pht_entries));
}

void BranchPredictor::reset() noexcept {
  for (auto& c : pht_) c = 1;
}

}  // namespace paxsim::sim
