// paxsim/sim/branch.hpp
//
// Conditional-branch predictor: gshare pattern-history table of 2-bit
// saturating counters.  The PHT is a per-core structure shared by both SMT
// contexts (as on NetBurst), so enabling Hyper-Threading introduces
// cross-thread aliasing — one of the interference channels the paper
// observes (CG's data-dependent branches degrade sharply under HT).
// Each context keeps a private global-history register.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace paxsim::sim {

/// Per-context branch history state.
struct BranchHistory {
  std::uint32_t ghr = 0;  ///< global history register (low bits used)
};

/// gshare predictor with a shared PHT.
class BranchPredictor {
 public:
  /// @param pht_entries  pattern table size (power of two)
  /// @param history_bits global-history length
  explicit BranchPredictor(std::size_t pht_entries = 4096,
                           unsigned history_bits = 12);

  /// Predicts the branch at static site @p site with outcome @p taken under
  /// the context history @p h, updates the table and history, and returns
  /// whether the prediction was correct.  Inline: this runs once per
  /// simulated loop iteration on every path through the simulator.
  bool predict_and_update(std::uint32_t site, bool taken,
                          BranchHistory& h) noexcept {
    // Knuth multiplicative hash spreads dense site ids across the table.
    const std::uint32_t pc_hash = site * 2654435761u;
    const std::uint32_t idx = (pc_hash ^ h.ghr) & mask_;
    std::uint8_t& ctr = pht_[idx];
    const bool predicted_taken = ctr >= 2;
    if (taken && ctr < 3) ++ctr;
    if (!taken && ctr > 0) --ctr;
    h.ghr = ((h.ghr << 1) | (taken ? 1u : 0u)) & history_mask_;
    return predicted_taken == taken;
  }

  /// Resets the table to weakly-not-taken and clears nothing else.
  void reset() noexcept;

  [[nodiscard]] std::size_t table_size() const noexcept { return pht_.size(); }

 private:
  std::vector<std::uint8_t> pht_;  // 2-bit counters
  std::uint32_t mask_;
  std::uint32_t history_mask_;
};

}  // namespace paxsim::sim
