#include "sim/cache.hpp"

#include <cassert>

namespace paxsim::sim {

SetAssocCache::SetAssocCache(const CacheGeometry& geom)
    : sets_(geom.sets()),
      ways_(geom.ways),
      line_bytes_(geom.line_bytes),
      line_shift_(log2_exact(geom.line_bytes)) {
  assert(is_pow2(sets_) && "cache set count must be a power of two");
  assert(is_pow2(line_bytes_) && "cache line size must be a power of two");
  lines_.resize(sets_ * ways_);
}

SetAssocCache::Line* SetAssocCache::find(Addr addr) noexcept {
  const Addr la = line_of(addr);
  const std::size_t base = set_index(la) * ways_;
  const Addr tag = tag_of(la);
  for (std::size_t w = 0; w < ways_; ++w) {
    Line& l = lines_[base + w];
    if (l.state != LineState::kInvalid && l.tag == tag) return &l;
  }
  return nullptr;
}

const SetAssocCache::Line* SetAssocCache::find(Addr addr) const noexcept {
  return const_cast<SetAssocCache*>(this)->find(addr);
}

ProbeResult SetAssocCache::probe(Addr addr, bool is_store) noexcept {
  ++clock_;
  Line* l = find(addr);
  if (l == nullptr) return {};
  l->stamp = clock_;
  ProbeResult r{true, l->prefetched, l->ready_at};
  l->prefetched = false;  // first demand touch consumes the prefetch credit
  if (is_store && l->state != LineState::kShared) l->state = LineState::kModified;
  return r;
}

bool SetAssocCache::needs_upgrade(Addr addr) const noexcept {
  const Line* l = find(addr);
  return l != nullptr && l->state == LineState::kShared;
}

std::optional<Eviction> SetAssocCache::fill(Addr addr, LineState st,
                                            bool prefetched,
                                            double ready_at) noexcept {
  ++clock_;
  const Addr la = line_of(addr);
  const std::size_t base = set_index(la) * ways_;
  // Re-fill of a resident line just updates state (e.g. upgrade fill).
  if (Line* l = find(addr)) {
    l->state = st;
    l->stamp = clock_;
    l->prefetched = prefetched;
    l->ready_at = ready_at;
    return std::nullopt;
  }
  std::size_t victim = 0;
  std::uint64_t best = UINT64_MAX;
  for (std::size_t w = 0; w < ways_; ++w) {
    Line& l = lines_[base + w];
    if (l.state == LineState::kInvalid) {
      victim = w;
      best = 0;
      break;
    }
    if (l.stamp < best) {
      best = l.stamp;
      victim = w;
    }
  }
  Line& v = lines_[base + victim];
  std::optional<Eviction> ev;
  if (v.state != LineState::kInvalid) {
    ev = Eviction{v.tag << line_shift_, v.state == LineState::kModified};
  }
  v.tag = tag_of(la);
  v.stamp = clock_;
  v.state = st;
  v.prefetched = prefetched;
  v.ready_at = ready_at;
  return ev;
}

bool SetAssocCache::invalidate(Addr addr) noexcept {
  Line* l = find(addr);
  if (l == nullptr) return false;
  const bool dirty = l->state == LineState::kModified;
  l->state = LineState::kInvalid;
  l->prefetched = false;
  return dirty;
}

bool SetAssocCache::downgrade_to_shared(Addr addr) noexcept {
  Line* l = find(addr);
  if (l == nullptr) return false;
  const bool dirty = l->state == LineState::kModified;
  l->state = LineState::kShared;
  return dirty;
}

bool SetAssocCache::contains(Addr addr) const noexcept {
  return find(addr) != nullptr;
}

LineState SetAssocCache::state_of(Addr addr) const noexcept {
  const Line* l = find(addr);
  return l == nullptr ? LineState::kInvalid : l->state;
}

void SetAssocCache::upgrade_to_modified(Addr addr) noexcept {
  if (Line* l = find(addr)) l->state = LineState::kModified;
}

void SetAssocCache::reset() noexcept {
  for (Line& l : lines_) l = Line{};
  clock_ = 0;
}

std::size_t SetAssocCache::resident_lines() const noexcept {
  std::size_t n = 0;
  for (const Line& l : lines_) n += l.state != LineState::kInvalid;
  return n;
}

}  // namespace paxsim::sim
