#include "sim/cache.hpp"

#include <algorithm>
#include <cassert>

namespace paxsim::sim {

SetAssocCache::SetAssocCache(const CacheGeometry& geom)
    : sets_(geom.sets()),
      ways_(geom.ways),
      line_bytes_(geom.line_bytes),
      line_shift_(log2_exact(geom.line_bytes)) {
  assert(is_pow2(sets_) && "cache set count must be a power of two");
  assert(is_pow2(line_bytes_) && "cache line size must be a power of two");
  assert(ways_ <= 255 && "MRU way hint is stored in a byte");
  lines_.resize(sets_ * ways_);
  mru_.assign(sets_, 0);
  set_gens_.assign(sets_, 0);
}

bool SetAssocCache::invalidate(Addr addr) noexcept {
  Line* l = find(addr);
  if (l == nullptr) return false;
  ++set_gens_[set_index(line_of(addr))];
  ++mut_gen_;
  const bool dirty = l->state == LineState::kModified;
  l->state = LineState::kInvalid;
  l->prefetched = false;
  return dirty;
}

bool SetAssocCache::downgrade_to_shared(Addr addr) noexcept {
  Line* l = find(addr);
  if (l == nullptr) return false;
  ++set_gens_[set_index(line_of(addr))];
  ++mut_gen_;
  const bool dirty = l->state == LineState::kModified;
  l->state = LineState::kShared;
  return dirty;
}

void SetAssocCache::reset() noexcept {
  // Lazy invalidation: bumping the epoch strands every resident line in the
  // old epoch, where live() treats it exactly like a kInvalid slot.  A full
  // line-array walk only happens on the (unreachable in practice) 2^32-nd
  // reset, when the epoch counter wraps.
  if (++epoch_ == 0) {
    for (Line& l : lines_) l = Line{};
    epoch_ = 1;
  }
  last_hit_ = nullptr;
  clock_ = 0;
  // One increment advances every set's mutation generation (set_gens_ stay
  // as they are; the per-set accessor adds the base), keeping reset O(1).
  ++gen_base_;
  ++mut_gen_;
}

std::size_t SetAssocCache::resident_lines() const noexcept {
  std::size_t n = 0;
  for (const Line& l : lines_) n += live(l);
  return n;
}

std::vector<SetAssocCache::LineView> SetAssocCache::live_lines() const {
  std::vector<LineView> out;
  out.reserve(lines_.size());
  for (const Line& l : lines_) {
    if (!live(l)) continue;
    out.push_back(LineView{l.tag << line_shift_, l.state, l.stamp, l.ready_at,
                           l.prefetched});
  }
  return out;
}

bool SetAssocCache::audit(std::string* why) const {
  const auto fail = [&](std::string msg) {
    if (why != nullptr) *why = std::move(msg);
    return false;
  };
  for (std::size_t set = 0; set < sets_; ++set) {
    if (mru_[set] >= ways_) {
      return fail("mru hint out of range in set " + std::to_string(set));
    }
    const std::size_t base = set * ways_;
    for (std::size_t w = 0; w < ways_; ++w) {
      const Line& l = lines_[base + w];
      if (!live(l)) continue;
      if (l.stamp > clock_) {
        return fail("stamp " + std::to_string(l.stamp) + " ahead of LRU clock " +
                    std::to_string(clock_) + " (set " + std::to_string(set) +
                    ", way " + std::to_string(w) + ")");
      }
      if (set_index(l.tag << line_shift_) != set) {
        return fail("tag maps outside its set (set " + std::to_string(set) +
                    ", way " + std::to_string(w) + ")");
      }
      for (std::size_t w2 = w + 1; w2 < ways_; ++w2) {
        const Line& l2 = lines_[base + w2];
        if (live(l2) && l2.tag == l.tag) {
          return fail("duplicate live tag in set " + std::to_string(set));
        }
      }
    }
  }
  return true;
}

}  // namespace paxsim::sim
