// paxsim/sim/cache.hpp
//
// Generic set-associative cache with true-LRU replacement, writeback /
// write-allocate policy, MESI-lite line states and a "prefetched" line tag
// used to credit the hardware prefetcher.  Used for L1D and L2; the trace
// cache and the TLBs reuse the same structure via thin adapters.
//
// Hot-path support: probe() remembers the line it served (`last_ref()`), and
// the core's inlined fast path revalidates that handle with fast_check() and
// replays probe()'s exact hit effects with fast_commit() — same LRU clock
// tick, same stamp refresh, same store-upgrade rule — so the cache's state
// trajectory is bit-identical whether an access took the fast or the slow
// path.  find() also keeps a per-set MRU way hint, probed before the way
// walk (pure lookup acceleration, no state effects).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "par/key.hpp"
#include "sim/params.hpp"
#include "sim/types.hpp"

namespace paxsim::sim {

/// MESI-lite coherence state of a cached line.
enum class LineState : std::uint8_t { kInvalid, kShared, kExclusive, kModified };

/// Result of a cache probe.
struct ProbeResult {
  bool hit = false;          ///< line present
  bool prefetched = false;   ///< line was brought in by the prefetcher
  double ready_at = 0;       ///< virtual time the line's data arrives
                             ///< (an in-flight fill hit must wait for it)
};

/// A line evicted to make room for a fill.
struct Eviction {
  Addr line_addr = 0;  ///< line-aligned byte address
  bool dirty = false;  ///< needs writeback
};

/// Set-associative cache.  Addresses are byte addresses; the cache aligns
/// them internally.  The caller owns all timing; this class is purely
/// functional state plus hit/miss bookkeeping hooks (the owner counts).
class SetAssocCache {
  struct Line {
    Addr tag = 0;
    std::uint64_t stamp = 0;
    double ready_at = 0;
    par::Key par_key{};       ///< grain that last touched the line (par mode)
    std::uint32_t epoch = 0;  ///< lazily invalidated: live iff == cache epoch
    LineState state = LineState::kInvalid;
    bool prefetched = false;
  };

 public:
  explicit SetAssocCache(const CacheGeometry& geom);

  /// Opaque handle to a line slot, handed out by last_ref() after a probe or
  /// fill touched the line.  The handle stays cheap to revalidate rather
  /// than guaranteed-valid: fast_check() re-verifies tag and state against
  /// the live slot, so a handle left stale by an eviction, invalidation or
  /// reset simply fails the check and the caller falls back to probe().
  class LineRef {
   public:
    constexpr LineRef() = default;

   private:
    friend class SetAssocCache;
    explicit constexpr LineRef(Line* l) noexcept : l_(l) {}
    Line* l_ = nullptr;
  };

  /// Looks up @p addr.  On a hit the line's LRU stamp is refreshed and, if
  /// @p is_store, the line is upgraded towards kModified (coherence actions
  /// for other caches are the owner's job — see `needs_upgrade`).
  ProbeResult probe(Addr addr, bool is_store) noexcept;

  /// Handle to the line the most recent probe() hit or fill() installed.
  [[nodiscard]] LineRef last_ref() const noexcept { return LineRef{last_hit_}; }

  /// Handle to the resident line containing @p addr (a null handle, which
  /// fails every fast_check, if absent).  Pure lookup for fast-path
  /// registration — no LRU clock tick, no stamp refresh.
  [[nodiscard]] LineRef ref_of(Addr addr) noexcept {
    return LineRef{find(addr)};
  }

  /// True if @p ref still denotes the valid line containing @p addr, in a
  /// state a hit of this kind would not have to escalate: stores reject
  /// kShared lines (those need the slow path's remote upgrade) and lines
  /// with an in-flight fill still pending (`ready_at` must be charged).
  /// Pure check — no LRU or state side effects.
  [[nodiscard]] bool fast_check(LineRef ref, Addr addr,
                                bool is_store = false) const noexcept {
    const Line* l = ref.l_;
    return l != nullptr && l->epoch == epoch_ &&
           l->state != LineState::kInvalid &&
           l->tag == (line_of(addr) >> line_shift_) && !l->prefetched &&
           l->ready_at == 0 && !(is_store && l->state == LineState::kShared);
  }

  /// Replays exactly the state effects probe() has on a hit of the line
  /// behind @p ref: the LRU clock tick, the stamp refresh, the prefetch-
  /// credit consumption and the store upgrade towards kModified.  The
  /// caller must have validated @p ref with fast_check() for this access.
  void fast_commit(LineRef ref, bool is_store = false) noexcept {
    Line* l = ref.l_;
    ++clock_;
    l->stamp = clock_;
    l->par_key = *par_key_;
    l->prefetched = false;
    if (is_store && l->state != LineState::kShared) {
      l->state = LineState::kModified;
    }
  }

  /// Mutation generation of the set that holds @p addr.  Monotone; ticks on
  /// every fill(), invalidate() and downgrade_to_shared() that touches the
  /// set and on every reset() (which advances all sets at once).  Those are
  /// exactly the operations that can move, retag, weaken or re-time a line,
  /// so an unchanged generation proves a LineRef captured under it is still
  /// valid without re-reading the line: probe()/fast_commit() only refresh
  /// stamps, consume prefetch credit and strengthen state towards kModified,
  /// and upgrade_to_modified() strengthens a line an armed handle never
  /// covers (arming requires non-kShared).  This is the zero-dereference
  /// tier of the core's inlined fast path.
  [[nodiscard]] std::uint64_t mutation_gen(Addr addr) const noexcept {
    return set_gens_[set_index(line_of(addr))] + gen_base_;
  }

  /// Whole-cache mutation generation: ticks whenever any set's generation
  /// does, including reset().  Coarser than mutation_gen(addr) — any fill
  /// anywhere advances it — but a single member load to read, which suits
  /// caches that mutate rarely (the TLBs).
  [[nodiscard]] std::uint64_t mutation_gen() const noexcept {
    return mut_gen_;
  }

  /// Direct pointer to the mutation-generation slot of the set holding
  /// @p addr, for callers that revalidate per access and want to skip the
  /// index math.  Stable for the cache's lifetime (the array never
  /// resizes).  NOTE: the slot value alone excludes the reset() base —
  /// holders must drop their handles on reset, which every fast-path
  /// register does (reset tears down the core's FastEntry tables).
  [[nodiscard]] const std::uint64_t* mutation_gen_slot(
      Addr addr) const noexcept {
    return &set_gens_[set_index(line_of(addr))];
  }

  /// LRU clock: ticks on every probe(), fill() and fast_commit(); reset()
  /// zeroes it.  An unchanged clock therefore proves *no* lookup or fill has
  /// touched the whole cache since it was read — the front-end fast path
  /// snapshots it to replay a repeated trace fetch without revalidation.
  [[nodiscard]] std::uint64_t lru_clock() const noexcept { return clock_; }

  /// True if a store to @p addr requires invalidating remote copies, i.e.
  /// the line is present but only in kShared state.
  [[nodiscard]] bool needs_upgrade(Addr addr) const noexcept;

  /// Installs the line containing @p addr with state @p st.  @p ready_at is
  /// the virtual time the fill data arrives (0 for an immediate fill).
  /// Returns the eviction performed to make room, if any.
  std::optional<Eviction> fill(Addr addr, LineState st, bool prefetched,
                               double ready_at = 0) noexcept;

  /// Removes the line containing @p addr if present; returns true if it was
  /// dirty (the caller emits the writeback).
  bool invalidate(Addr addr) noexcept;

  /// Downgrades the line containing @p addr to kShared (remote read snoop).
  /// Returns true if it was dirty (implicit writeback of the modified data).
  bool downgrade_to_shared(Addr addr) noexcept;

  /// True if the line containing @p addr is resident.
  [[nodiscard]] bool contains(Addr addr) const noexcept;

  /// Current state of the line containing @p addr (kInvalid if absent).
  [[nodiscard]] LineState state_of(Addr addr) const noexcept;

  /// Marks the store-upgrade of a present line to kModified.
  void upgrade_to_modified(Addr addr) noexcept;

  // ---- host-parallel backend support (src/par/) ---------------------------
  /// Redirects the grain-key stamp source.  The parallel backend points each
  /// cache at its owning LP's current-key slot for the duration of a region;
  /// serially (and by default) the source is par::kKeyZero, which sorts
  /// below every real grain key, so serial-mode residue never reads as a
  /// conflict.  Every owner-side touch (probe hit, fast_commit, fill,
  /// store upgrade) stamps; remote snoops never do.
  void set_par_key(const par::Key* key) noexcept {
    par_key_ = key != nullptr ? key : &par::kKeyZero;
  }

  /// True if the live line containing @p addr carries a stamp strictly after
  /// @p k — evidence that the owning LP free-ran past a remote operation
  /// ordered at @p k.  Pure scan: no LRU tick, no MRU hint update.
  [[nodiscard]] bool par_stamp_after(Addr addr, par::Key k) const noexcept {
    const Addr la = line_of(addr);
    const std::size_t base = set_index(la) * ways_;
    const Addr tag = tag_of(la);
    for (std::size_t w = 0; w < ways_; ++w) {
      const Line& l = lines_[base + w];
      if (live(l) && l.tag == tag) return k < l.par_key;
    }
    return false;
  }

  /// Line-aligned address of @p addr under this cache's geometry.
  [[nodiscard]] Addr line_of(Addr addr) const noexcept {
    return addr & ~static_cast<Addr>(line_bytes_ - 1);
  }

  /// Drops all content (used between trials), including the MRU hints and
  /// the last-hit handle.  O(1): bumps the epoch instead of walking the
  /// line array, so a full-capacity 2 MB L2 resets as cheaply as a 1 KB L1.
  void reset() noexcept;

  [[nodiscard]] std::size_t sets() const noexcept { return sets_; }
  [[nodiscard]] std::size_t ways() const noexcept { return ways_; }
  [[nodiscard]] std::size_t line_bytes() const noexcept { return line_bytes_; }

  /// Number of valid lines currently resident (for tests / introspection).
  [[nodiscard]] std::size_t resident_lines() const noexcept;

  // ---- introspection (invariant checker, src/check/) ----------------------
  /// Snapshot of one live line.
  struct LineView {
    Addr line_addr = 0;       ///< line-aligned byte address
    LineState state = LineState::kInvalid;
    std::uint64_t stamp = 0;  ///< LRU stamp at snapshot time
    double ready_at = 0;      ///< pending fill arrival (0 = data present)
    bool prefetched = false;  ///< unconsumed prefetch credit
  };

  /// All live lines, set-major.  O(sets * ways); checker-cadence only.
  [[nodiscard]] std::vector<LineView> live_lines() const;

  /// Structural self-audit: every live stamp <= the LRU clock, every live
  /// epoch equals the current one (by construction of live()), each set's
  /// MRU hint within the way count, and no two live lines of a set carry
  /// the same tag.  Returns true when clean; otherwise fills @p why (if
  /// non-null) with the first violation found.
  [[nodiscard]] bool audit(std::string* why) const;

 private:
  [[nodiscard]] std::size_t set_index(Addr line_addr) const noexcept {
    return (line_addr >> line_shift_) & (sets_ - 1);
  }
  [[nodiscard]] Addr tag_of(Addr line_addr) const noexcept {
    return line_addr >> line_shift_;
  }
  /// A line participates in lookups only when it belongs to the current
  /// reset epoch; stale-epoch lines behave exactly like kInvalid slots.
  [[nodiscard]] bool live(const Line& l) const noexcept {
    return l.epoch == epoch_ && l.state != LineState::kInvalid;
  }
  Line* find(Addr addr) noexcept;
  const Line* find(Addr addr) const noexcept;

  std::size_t sets_;
  std::size_t ways_;
  std::size_t line_bytes_;
  unsigned line_shift_;
  std::uint64_t clock_ = 0;  // LRU stamp source
  std::uint64_t gen_base_ = 0;          // reset() bumps all sets' generations
  std::uint64_t mut_gen_ = 0;           // whole-cache mutation generation
  std::uint32_t epoch_ = 1;  // current reset epoch (0 marks never-used slots)
  std::vector<Line> lines_;  // sets_ * ways_, set-major
  std::vector<std::uint64_t> set_gens_;  // per-set mutation generation
  std::vector<std::uint8_t> mru_;  // per-set most-recently-matched way hint
  Line* last_hit_ = nullptr;       // line served by the latest probe/fill
  const par::Key* par_key_ = &par::kKeyZero;  // stamp source (see set_par_key)
};

// ---------------------------------------------------------------------------
// Inlined lookup core.  find() and the probe/contains/state family are the
// busiest functions in the whole simulator (every slow-path memory access
// walks them several times), so they live in the header.
// ---------------------------------------------------------------------------

inline auto SetAssocCache::find(Addr addr) noexcept -> Line* {
  const Addr la = line_of(addr);
  const std::size_t set = set_index(la);
  const std::size_t base = set * ways_;
  const Addr tag = tag_of(la);
  // Most accesses re-touch the way the set served last; probe it first.
  Line& hint = lines_[base + mru_[set]];
  if (live(hint) && hint.tag == tag) return &hint;
  for (std::size_t w = 0; w < ways_; ++w) {
    Line& l = lines_[base + w];
    if (live(l) && l.tag == tag) {
      mru_[set] = static_cast<std::uint8_t>(w);
      return &l;
    }
  }
  return nullptr;
}

inline auto SetAssocCache::find(Addr addr) const noexcept -> const Line* {
  return const_cast<SetAssocCache*>(this)->find(addr);
}

inline ProbeResult SetAssocCache::probe(Addr addr, bool is_store) noexcept {
  ++clock_;
  Line* l = find(addr);
  if (l == nullptr) return {};
  last_hit_ = l;
  l->stamp = clock_;
  l->par_key = *par_key_;
  ProbeResult r{true, l->prefetched, l->ready_at};
  l->prefetched = false;  // first demand touch consumes the prefetch credit
  if (is_store && l->state != LineState::kShared) l->state = LineState::kModified;
  return r;
}

inline bool SetAssocCache::needs_upgrade(Addr addr) const noexcept {
  const Line* l = find(addr);
  return l != nullptr && l->state == LineState::kShared;
}

inline bool SetAssocCache::contains(Addr addr) const noexcept {
  return find(addr) != nullptr;
}

inline LineState SetAssocCache::state_of(Addr addr) const noexcept {
  const Line* l = find(addr);
  return l == nullptr ? LineState::kInvalid : l->state;
}

inline void SetAssocCache::upgrade_to_modified(Addr addr) noexcept {
  if (Line* l = find(addr)) {
    l->state = LineState::kModified;
    l->par_key = *par_key_;
  }
}

inline std::optional<Eviction> SetAssocCache::fill(Addr addr, LineState st,
                                                   bool prefetched,
                                                   double ready_at) noexcept {
  ++clock_;
  const Addr la = line_of(addr);
  const std::size_t set = set_index(la);
  const std::size_t base = set * ways_;
  // Either branch below rewrites a line's identity, state or timing, so any
  // fast-path handle armed against this set must revalidate.
  ++set_gens_[set];
  ++mut_gen_;
  // Re-fill of a resident line just updates state (e.g. upgrade fill).
  if (Line* l = find(addr)) {
    last_hit_ = l;
    l->state = st;
    l->stamp = clock_;
    l->par_key = *par_key_;
    l->prefetched = prefetched;
    l->ready_at = ready_at;
    return std::nullopt;
  }
  std::size_t victim = 0;
  std::uint64_t best = UINT64_MAX;
  for (std::size_t w = 0; w < ways_; ++w) {
    Line& l = lines_[base + w];
    if (!live(l)) {
      victim = w;
      best = 0;
      break;
    }
    if (l.stamp < best) {
      best = l.stamp;
      victim = w;
    }
  }
  Line& v = lines_[base + victim];
  std::optional<Eviction> ev;
  if (live(v)) {
    ev = Eviction{v.tag << line_shift_, v.state == LineState::kModified};
  }
  v.tag = tag_of(la);
  v.stamp = clock_;
  v.par_key = *par_key_;
  v.epoch = epoch_;
  v.state = st;
  v.prefetched = prefetched;
  v.ready_at = ready_at;
  mru_[set] = static_cast<std::uint8_t>(victim);
  last_hit_ = &v;
  return ev;
}

}  // namespace paxsim::sim
