// paxsim/sim/cache.hpp
//
// Generic set-associative cache with true-LRU replacement, writeback /
// write-allocate policy, MESI-lite line states and a "prefetched" line tag
// used to credit the hardware prefetcher.  Used for L1D and L2; the trace
// cache and the TLBs reuse the same structure via thin adapters.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/params.hpp"
#include "sim/types.hpp"

namespace paxsim::sim {

/// MESI-lite coherence state of a cached line.
enum class LineState : std::uint8_t { kInvalid, kShared, kExclusive, kModified };

/// Result of a cache probe.
struct ProbeResult {
  bool hit = false;          ///< line present
  bool prefetched = false;   ///< line was brought in by the prefetcher
  double ready_at = 0;       ///< virtual time the line's data arrives
                             ///< (an in-flight fill hit must wait for it)
};

/// A line evicted to make room for a fill.
struct Eviction {
  Addr line_addr = 0;  ///< line-aligned byte address
  bool dirty = false;  ///< needs writeback
};

/// Set-associative cache.  Addresses are byte addresses; the cache aligns
/// them internally.  The caller owns all timing; this class is purely
/// functional state plus hit/miss bookkeeping hooks (the owner counts).
class SetAssocCache {
 public:
  explicit SetAssocCache(const CacheGeometry& geom);

  /// Looks up @p addr.  On a hit the line's LRU stamp is refreshed and, if
  /// @p is_store, the line is upgraded towards kModified (coherence actions
  /// for other caches are the owner's job — see `needs_upgrade`).
  ProbeResult probe(Addr addr, bool is_store) noexcept;

  /// True if a store to @p addr requires invalidating remote copies, i.e.
  /// the line is present but only in kShared state.
  [[nodiscard]] bool needs_upgrade(Addr addr) const noexcept;

  /// Installs the line containing @p addr with state @p st.  @p ready_at is
  /// the virtual time the fill data arrives (0 for an immediate fill).
  /// Returns the eviction performed to make room, if any.
  std::optional<Eviction> fill(Addr addr, LineState st, bool prefetched,
                               double ready_at = 0) noexcept;

  /// Removes the line containing @p addr if present; returns true if it was
  /// dirty (the caller emits the writeback).
  bool invalidate(Addr addr) noexcept;

  /// Downgrades the line containing @p addr to kShared (remote read snoop).
  /// Returns true if it was dirty (implicit writeback of the modified data).
  bool downgrade_to_shared(Addr addr) noexcept;

  /// True if the line containing @p addr is resident.
  [[nodiscard]] bool contains(Addr addr) const noexcept;

  /// Current state of the line containing @p addr (kInvalid if absent).
  [[nodiscard]] LineState state_of(Addr addr) const noexcept;

  /// Marks the store-upgrade of a present line to kModified.
  void upgrade_to_modified(Addr addr) noexcept;

  /// Line-aligned address of @p addr under this cache's geometry.
  [[nodiscard]] Addr line_of(Addr addr) const noexcept {
    return addr & ~static_cast<Addr>(line_bytes_ - 1);
  }

  /// Drops all content (used between trials).
  void reset() noexcept;

  [[nodiscard]] std::size_t sets() const noexcept { return sets_; }
  [[nodiscard]] std::size_t ways() const noexcept { return ways_; }
  [[nodiscard]] std::size_t line_bytes() const noexcept { return line_bytes_; }

  /// Number of valid lines currently resident (for tests / introspection).
  [[nodiscard]] std::size_t resident_lines() const noexcept;

 private:
  struct Line {
    Addr tag = 0;
    std::uint64_t stamp = 0;
    double ready_at = 0;
    LineState state = LineState::kInvalid;
    bool prefetched = false;
  };

  [[nodiscard]] std::size_t set_index(Addr line_addr) const noexcept {
    return (line_addr >> line_shift_) & (sets_ - 1);
  }
  [[nodiscard]] Addr tag_of(Addr line_addr) const noexcept {
    return line_addr >> line_shift_;
  }
  Line* find(Addr addr) noexcept;
  const Line* find(Addr addr) const noexcept;

  std::size_t sets_;
  std::size_t ways_;
  std::size_t line_bytes_;
  unsigned line_shift_;
  std::uint64_t clock_ = 0;  // LRU stamp source
  std::vector<Line> lines_;  // sets_ * ways_, set-major
};

}  // namespace paxsim::sim
