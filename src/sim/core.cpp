#include "sim/core.hpp"

#include <algorithm>
#include <cmath>

#include "sim/machine.hpp"

namespace paxsim::sim {

using perf::Event;

// ---------------------------------------------------------------------------
// HwContext
// ---------------------------------------------------------------------------

void HwContext::exec_block_slow(BlockId block, std::uint32_t uops) noexcept {
  const MachineParams& p = *core_->params_;
  ++acc_itlb_refs_;
  last_block_ = block;
  const Addr code_addr = code_base_ + static_cast<Addr>(block) * p.code_block_bytes;
  double itlb_walk = 0;
  if (!core_->itlb_.access(code_addr)) {
    counters_->add(Event::kItlbMisses, 1);
    const double walk = static_cast<double>(p.tlb_walk_penalty);
    now_ += walk;
    stall_tlb_ += walk;
    itlb_walk = walk;
  }
  // NetBurst statically splits the trace cache between contexts in MT mode.
  const int partition =
      (core_->active_contexts_ > 1 && p.trace_mt_static_partition)
          ? id_.context
          : -1;
  const TraceFetch tf =
      core_->trace_cache_.fetch(code_base_, block, uops, partition);
  acc_tc_refs_ += tf.lines_referenced;
  double decode = 0;
  if (tf.lines_missed != 0) {
    counters_->add(Event::kTraceCacheMisses, tf.lines_missed);
    decode = static_cast<double>(tf.lines_missed) *
             static_cast<double>(p.trace_miss_penalty);
    now_ += decode;
    stall_fe_ += decode;
  }
  // The block's translation and trace lines are resident now (hit or
  // filled); capture handles so a repeat can replay the all-hit fetch.
  if (core_->fast_path_) {
    FastBlock& fb = fast_block_;
    fb.block = block;
    fb.uops = uops;
    fb.code_base = code_base_;
    fb.code_addr = code_addr;
    fb.partition = partition;
    fb.itlb = core_->itlb_.last_ref();
    core_->trace_cache_.register_fast(fb.trace, code_base_, block, uops,
                                      partition);
    fb.valid = fb.trace.part != nullptr;
    if (fb.valid) {
      // register_fast() verified every handle, so snapshotting the LRU
      // clocks here arms the unchecked replay tier of exec_block().
      fb.part_clock = fb.trace.part->lru_clock();
      fb.itlb_clock = core_->itlb_.lru_clock();
    }
  }
  if (TraceSink* sink = core_->sink_) {
    sink->on_fetch(*this, code_addr, uops);
    sink->on_fetch_stall(*this, itlb_walk, decode);
  }
}

void HwContext::flush_accumulators() noexcept {
  flush_event_counts();
  if (counters_ == nullptr) return;
  if (TraceSink* sink = core_->sink_) {
    // Hand the unrounded deltas to the tracer before they are folded away;
    // region attribution follows the flush boundaries (every barrier).
    sink->on_flush(*this, busy_, busy_stretch_, stall_mem_, stall_branch_,
                   stall_tlb_, stall_fe_);
  }
  const double total = busy_ + stall_mem_ + stall_branch_ + stall_tlb_ + stall_fe_;
  executed_total_ += total;
  counters_->add(Event::kCycles, static_cast<std::uint64_t>(std::llround(total)));
  counters_->add(Event::kStallCyclesMemory,
                 static_cast<std::uint64_t>(std::llround(stall_mem_)));
  counters_->add(Event::kStallCyclesBranch,
                 static_cast<std::uint64_t>(std::llround(stall_branch_)));
  counters_->add(Event::kStallCyclesTlb,
                 static_cast<std::uint64_t>(std::llround(stall_tlb_)));
  counters_->add(Event::kStallCyclesFrontend,
                 static_cast<std::uint64_t>(std::llround(stall_fe_)));
  busy_ = stall_mem_ = stall_branch_ = stall_tlb_ = stall_fe_ = 0;
  busy_stretch_ = 0;
}

void HwContext::reset() noexcept {
  now_ = 0;
  busy_ = stall_mem_ = stall_branch_ = stall_tlb_ = stall_fe_ = 0;
  busy_stretch_ = 0;
  executed_total_ = 0;
  acc_instructions_ = acc_mem_accesses_ = 0;
  acc_itlb_refs_ = acc_tc_refs_ = acc_branch_ops_ = 0;
  last_block_ = 0;
  clear_fast_entries();
  history_ = BranchHistory{};
  counters_ = nullptr;
  code_base_ = 0;
}

// ---------------------------------------------------------------------------
// Core
// ---------------------------------------------------------------------------

Core::Core(const MachineParams& p, Machine* machine, int chip_idx, int core_idx)
    : params_(&p),
      machine_(machine),
      chip_idx_(chip_idx),
      core_idx_(core_idx),
      l1d_(p.l1d),
      l2_own_(std::make_unique<SetAssocCache>(p.l2)),
      l2_(l2_own_.get()),
      trace_cache_(p.trace_cache_uops, p.trace_uops_per_line, p.trace_cache_ways),
      itlb_(p.itlb_entries, p.itlb_ways, p.page_bytes),
      dtlb_(p.dtlb_entries, p.dtlb_ways, p.page_bytes),
      predictor_(),
      prefetcher_(p),
      // Any analysis, profiling or tracing mode needs the complete access
      // stream, which only the reference path reports; its state trajectory
      // is bit-identical.
      fast_path_(p.fast_path && p.check_mode == CheckMode::kOff &&
                 !p.profile && p.trace_mode == TraceMode::kOff) {
  refresh_issue_cost();
  const int smt = std::max(1, p.contexts_per_core);
  contexts_.resize(static_cast<std::size_t>(smt));
  for (int i = 0; i < smt; ++i) {
    HwContext& ctx = contexts_[static_cast<std::size_t>(i)];
    ctx.core_ = this;
    ctx.id_ = LogicalCpu{static_cast<std::uint8_t>(chip_idx),
                         static_cast<std::uint8_t>(core_idx),
                         static_cast<std::uint8_t>(i)};
    ctx.fast_line_mask_ = ~static_cast<Addr>(p.l1d.line_bytes - 1);
    ctx.fast_line_shift_ = log2_exact(p.l1d.line_bytes);
  }
}

double Core::access_memory(HwContext& ctx, Addr addr, bool is_store,
                           Dep dep) noexcept {
  const MachineParams& p = *params_;
  perf::CounterSet& c = *ctx.counters_;

  // --- DTLB ------------------------------------------------------------------
  // (The reference count was already batched by the inlined load()/store().)
  double stall = 0;
  double dtlb_walk = 0;
  if (!dtlb_.access(addr)) {
    c.add(is_store ? Event::kDtlbStoreMisses : Event::kDtlbLoadMisses, 1);
    // Page walks are charged to the TLB stall class directly on the context.
    const double walk = static_cast<double>(p.tlb_walk_penalty);
    ctx.now_ += walk;
    ctx.stall_tlb_ += walk;
    dtlb_walk = walk;
  }
  // Whether hit or walked-in fill, the DTLB's last-touched entry is now the
  // page of @p addr — capture the handle for the fast-path registration
  // below (nothing after this point touches the DTLB).
  const SetAssocCache::LineRef dtlb_ref = dtlb_.last_ref();

  // --- L1D --------------------------------------------------------------------
  const Addr line = l1d_.line_of(addr);
  const ProbeResult l1 = l1d_.probe(addr, is_store);
  double latency = 0;    // load-to-use latency of the level that served us
  double hard_wait = 0;  // in-flight fill arrival wait (not overlappable)
  double queue_wait = 0; // FSB + memory-controller backlog share of latency
  MemLevel level = MemLevel::kL1;
  if (l1.hit) {
    latency = static_cast<double>(p.l1_latency);
    if (is_store && l1d_.needs_upgrade(addr)) {
      machine_->store_upgrade(global_id(), line, ctx);
      l1d_.upgrade_to_modified(addr);
      l2_->upgrade_to_modified(addr);
      if (l3_ != nullptr) l3_->upgrade_to_modified(addr);
      latency += static_cast<double>(p.l2_latency);  // snoop round-trip
    }
  } else {
    c.add(Event::kL1dMisses, 1);
    // --- L2 -------------------------------------------------------------------
    c.add(Event::kL2References, 1);
    const ProbeResult l2 = l2_->probe(addr, is_store);
    level = MemLevel::kL2;
    if (l2.hit) {
      if (l2.prefetched) {
        c.add(Event::kPrefetchesUseful, 1);
        // A demand hit on a prefetched line confirms the stream: keep it
        // running (real stream engines advance on prefetch hits, otherwise
        // a perfectly covered stream would starve its own detector).
        issue_prefetches(ctx, l2_->line_of(addr));
      }
      latency = static_cast<double>(p.l2_latency);
      // A hit on an in-flight fill waits for the data to land.  The wait is
      // a hard arrival constraint — charged in full, not scaled by the
      // overlap factor — which is what throttles an eager prefetcher to the
      // memory controller's service rate instead of conjuring bandwidth.
      if (l2.ready_at > ctx.now_) hard_wait = l2.ready_at - ctx.now_;
      if (is_store && l2_->needs_upgrade(addr)) {
        machine_->store_upgrade(global_id(), line, ctx);
        l2_->upgrade_to_modified(addr);
        if (l3_ != nullptr) l3_->upgrade_to_modified(addr);
        latency += static_cast<double>(p.l2_latency);
      }
    } else if (l3_ == nullptr) {
      c.add(Event::kL2Misses, 1);
      level = MemLevel::kMem;
      latency = resolve_l2_miss(ctx, line, is_store);
      // Everything the bus path charged beyond the raw DRAM latency is
      // backlog behind other transfers.
      queue_wait = latency - machine_->memory_base_latency(chip_idx_, line);
    } else {
      c.add(Event::kL2Misses, 1);
      // --- L3 (chip-shared last level, three-level topologies) --------------
      c.add(Event::kL3References, 1);
      const ProbeResult l3 = l3_->probe(addr, is_store);
      level = MemLevel::kL3;
      if (l3.hit) {
        if (l3.prefetched) {
          c.add(Event::kPrefetchesUseful, 1);
          issue_prefetches(ctx, l3_->line_of(addr));
        }
        latency = l3_latency_;
        if (l3.ready_at > ctx.now_) hard_wait = l3.ready_at - ctx.now_;
        if (is_store && l3_->needs_upgrade(addr)) {
          machine_->store_upgrade(global_id(), line, ctx);
          l3_->upgrade_to_modified(addr);
          latency += l3_latency_;
        }
      } else {
        c.add(Event::kL3Misses, 1);
        level = MemLevel::kMem;
        latency = resolve_l2_miss(ctx, line, is_store);
        queue_wait = latency - machine_->memory_base_latency(chip_idx_, line);
      }
      // Refill the private mid-level L2 from the L3.  Its state mirrors the
      // L3's sharing; a dirty mid-level victim folds back into the L3 (or
      // back through the coherent fill path if the L3 already evicted it).
      const LineState mid_state =
          is_store ? LineState::kModified
                   : (l3_->state_of(addr) == LineState::kShared
                          ? LineState::kShared
                          : LineState::kExclusive);
      if (auto ev = l2_->fill(addr, mid_state, false)) {
        if (par_on_) machine_->par_note_evict(ev->line_addr);
        if (ev->dirty) {
          if (l3_->contains(ev->line_addr)) {
            l3_->upgrade_to_modified(ev->line_addr);
          } else {
            fill_l2(ctx, ev->line_addr, /*is_store=*/true,
                    /*prefetched=*/false);
          }
        }
      }
    }
    // Under a shared outer cache, other cores of the domain may hold inner
    // copies of this line: a store kills them, a load downgrades them (and
    // forces our own L1 copy to Shared).  The sibling list is empty on
    // private-outer topologies, so the default machine never enters here.
    bool sibling_had_copy = false;
    for (Core* sib : domain_siblings_) {
      sibling_had_copy |= sib->snoop_inner(line, is_store);
    }
    // Fill L1 (evictions write through to the L2, on-chip, no bus traffic).
    // The L1 state must mirror the L2's sharing: caching a remotely-shared
    // line as Exclusive in L1 would let a later store skip the remote
    // invalidation (caught by the coherence fuzz suite).
    const LineState l1_state =
        is_store ? LineState::kModified
                 : ((l2_->state_of(addr) == LineState::kShared || sibling_had_copy)
                        ? LineState::kShared
                        : LineState::kExclusive);
    if (auto ev = l1d_.fill(addr, l1_state, false)) {
      // The victim's stamp is gone with it; log the tombstone even for clean
      // victims — a remote operation ordered before our touches must still
      // find the evidence (see par::Session::note_evidence).
      if (par_on_) machine_->par_note_evict(ev->line_addr);
      if (ev->dirty) {
        if (l2_->contains(ev->line_addr)) {
          l2_->upgrade_to_modified(ev->line_addr);
        } else {
          fill_l2(ctx, ev->line_addr, /*is_store=*/true, /*prefetched=*/false);
        }
      }
    }
  }

  // --- fast-path registration -------------------------------------------------
  // The line is resident in L1 and its page is in the DTLB: register the
  // handles so the next same-line access can take the inlined path.  The
  // handles are revalidated at use time, so a later eviction reusing either
  // slot merely misses the fast path — it can never serve stale state.
  if (fast_path_) {
    HwContext::FastEntry& fe = ctx.fast_entry(line);
    fe.line = line;
    fe.l1 = l1d_.last_ref();
    fe.tlb = dtlb_ref;
    fe.l1_gen_slot = l1d_.mutation_gen_slot(addr);
    // Arm the zero-revalidation tier only when the line could also replay a
    // store through this entry (fast_check with is_store doubles as the
    // kShared test; everything else it checks holds by construction here).
    // A shared line stays unarmed — gen 0 never equals a live generation
    // sum — and keeps revalidating through the handles.
    fe.gen = l1d_.fast_check(fe.l1, addr, /*is_store=*/true)
                 ? *fe.l1_gen_slot + dtlb_.mutation_gen()
                 : 0;
  }

  // --- exposure of the latency ------------------------------------------------
  const double issue = issue_cycles_per_uop();
  if (dep == Dep::kChained) {
    stall += std::max(0.0, latency + hard_wait - issue);
  } else {
    stall += hard_wait;
    // MT mode halves the per-thread load/store-buffer and ROB share
    // (NetBurst static partitioning), so less of an independent miss's
    // latency can be hidden.
    const bool mt = active_contexts_ > 1;
    const double store_ov = mt ? p.mt_store_overlap : p.store_overlap;
    if (latency >= static_cast<double>(p.mem_latency)) {
      stall += latency * (is_store ? store_ov
                                   : (mt ? p.mt_mem_overlap : p.mem_overlap));
    } else if (latency > static_cast<double>(p.l1_latency)) {
      stall += latency * (is_store ? store_ov
                                   : (mt ? p.mt_l2_overlap : p.l2_overlap));
    }
    // Independent L1 hits are fully pipelined: no exposed stall.
  }

  // Analysis hook: all cache/TLB/coherence state effects are committed, so
  // an attached sink observes the access exactly as it retired.  The wait on
  // an in-flight fill is queueing (the data is crossing the bus) on top of
  // whatever backlog the bus path itself charged.
  if (TraceSink* sink = sink_) {
    sink->on_access(ctx, addr, is_store, dep);
    sink->on_access_stall(ctx, level, dtlb_walk, stall, queue_wait + hard_wait,
                          latency + hard_wait);
  }
  return stall;
}

bool Core::audit_fast_entries(std::string* why) const {
  const auto fail = [&](const char* what, int ctx_idx) {
    if (why != nullptr) {
      *why = std::string(what) + " (core " + std::to_string(global_id()) +
             ", context " + std::to_string(ctx_idx) + ")";
    }
    return false;
  };
  for (int i = 0; i < smt_count(); ++i) {
    const HwContext& ctx = contexts_[static_cast<std::size_t>(i)];
    for (const HwContext::FastEntry& fe : ctx.fast_) {
      if (fe.line == ~Addr{0}) continue;  // empty register
      if (fe.l1_gen_slot == nullptr) {
        return fail("registered fast entry without a generation slot", i);
      }
      // The tier-1 proof: an armed generation sum that still matches the
      // live structures claims both handles are valid without reading them.
      // Cross-check the claim against tier 2.
      if (fe.gen != 0 && fe.gen == *fe.l1_gen_slot + dtlb_.mutation_gen()) {
        if (!l1d_.fast_check(fe.l1, fe.line, /*is_store=*/true)) {
          return fail("armed fast entry fails L1 revalidation", i);
        }
        if (!dtlb_.fast_check(fe.tlb, fe.line)) {
          return fail("armed fast entry fails DTLB revalidation", i);
        }
      }
    }
    const HwContext::FastBlock& fb = ctx.fast_block_;
    if (fb.valid && fb.part_clock == fb.trace.part->lru_clock() &&
        fb.itlb_clock == itlb_.lru_clock() &&
        !itlb_.fast_check(fb.itlb, fb.code_addr)) {
      return fail("armed fast block fails ITLB revalidation", i);
    }
  }
  return true;
}

double Core::resolve_l2_miss(HwContext& ctx, Addr line_addr, bool is_store) noexcept {
  perf::CounterSet& c = *ctx.counters_;
  c.add(Event::kBusTransactions, 1);
  c.add(Event::kBusReads, 1);
  const double latency = machine_->memory_read(chip_idx_, line_addr, ctx.now_);
  fill_l2(ctx, line_addr, is_store, /*prefetched=*/false, ctx.now_ + latency);
  issue_prefetches(ctx, line_addr);
  return latency;
}

void Core::fill_l2(HwContext& ctx, Addr line_addr, bool is_store,
                   bool prefetched, double ready_at) noexcept {
  const LineState st =
      machine_->coherent_fill(global_id(), line_addr, is_store, ctx);
  SetAssocCache& outer = l3_ != nullptr ? *l3_ : *l2_;
  if (auto ev = outer.fill(line_addr, st, prefetched, ready_at)) {
    if (par_on_) machine_->par_note_evict(ev->line_addr);
    machine_->on_l2_evict(global_id(), ev->line_addr);
    // Keep the hierarchy inclusive: a line leaving the outermost level
    // leaves every inner copy too — ours and, under a shared outer cache,
    // our domain siblings'.
    l1d_.invalidate(ev->line_addr);
    if (l3_ != nullptr) l2_->invalidate(ev->line_addr);
    for (Core* sib : domain_siblings_) sib->invalidate_inner(ev->line_addr);
    if (ev->dirty) {
      perf::CounterSet& c = *ctx.counters_;
      c.add(Event::kBusTransactions, 1);
      c.add(Event::kBusWrites, 1);
      machine_->memory_write(chip_idx_, ev->line_addr, ctx.now_);
    }
  }
}

void Core::issue_prefetches(HwContext& ctx, Addr line_addr) noexcept {
  const MachineParams& p = *params_;
  prefetch_buffer_.clear();
  prefetcher_.on_demand_miss(line_addr, prefetch_buffer_);
  // Residency filter first: a window whose every line is already resident in
  // the outermost cache issues nothing, so it should not even consult the
  // bus.  The per-request check below stays, because an earlier prefetch's
  // fill can evict a later request's line mid-loop; only the all-resident
  // early-out is hoisted (utilization() is const, so skipping it cannot
  // change any state).
  SetAssocCache& outer = l3_ != nullptr ? *l3_ : *l2_;
  const bool any_missing =
      std::any_of(prefetch_buffer_.begin(), prefetch_buffer_.end(),
                  [&outer](const PrefetchRequest& req) {
                    return !outer.contains(req.line_addr);
                  });
  if (!any_missing) return;
  // The utilization read below consults machine-shared bus state, so it
  // must be ordered like any other shared operation.
  machine_->par_gate();
  FrontSideBus& bus = machine_->bus(chip_idx_);
  if (bus.utilization(ctx.now_) > p.prefetch_bus_threshold) return;
  perf::CounterSet& c = *ctx.counters_;
  for (const PrefetchRequest& req : prefetch_buffer_) {
    if (outer.contains(req.line_addr)) continue;
    c.add(Event::kPrefetchesIssued, 1);
    c.add(Event::kBusTransactions, 1);
    c.add(Event::kBusPrefetches, 1);
    const double lat = bus.read(ctx.now_);  // occupies bus + controller
    fill_l2(ctx, req.line_addr, /*is_store=*/false, /*prefetched=*/true,
            ctx.now_ + lat);
  }
}

bool Core::invalidate_line(Addr line_addr) noexcept {
  // Conservatively drop the fast-path registers: the handles would fail
  // revalidation anyway for this line, but a remote action is rare enough
  // that clearing everything keeps the invariant trivially auditable.
  clear_fast_entries();
  l1d_.invalidate(line_addr);
  if (l3_ != nullptr) {
    l2_->invalidate(line_addr);
    return l3_->invalidate(line_addr);
  }
  return l2_->invalidate(line_addr);
}

bool Core::downgrade_line(Addr line_addr) noexcept {
  clear_fast_entries();
  l1d_.downgrade_to_shared(line_addr);
  if (l3_ != nullptr) {
    l2_->downgrade_to_shared(line_addr);
    return l3_->downgrade_to_shared(line_addr);
  }
  return l2_->downgrade_to_shared(line_addr);
}

void Core::invalidate_inner(Addr line_addr) noexcept {
  clear_fast_entries();
  l1d_.invalidate(line_addr);
  if (l3_ != nullptr) l2_->invalidate(line_addr);
}

void Core::downgrade_inner(Addr line_addr) noexcept {
  clear_fast_entries();
  l1d_.downgrade_to_shared(line_addr);
  if (l3_ != nullptr) l2_->downgrade_to_shared(line_addr);
}

bool Core::snoop_inner(Addr line_addr, bool is_store) noexcept {
  const bool held = l1d_.contains(line_addr) ||
                    (l3_ != nullptr && l2_->contains(line_addr));
  if (!held) return false;
  if (par_on_) machine_->par_note_evict(line_addr);
  if (is_store) {
    invalidate_inner(line_addr);
  } else {
    downgrade_inner(line_addr);
  }
  return true;
}

void Core::reset() noexcept {
  l1d_.reset();
  l2_->reset();  // idempotent when chip-shared: each member core resets it
  if (l3_ != nullptr) l3_->reset();
  trace_cache_.reset();
  itlb_.reset();
  dtlb_.reset();
  predictor_.reset();
  prefetcher_.reset();
  for (auto& ctx : contexts_) ctx.reset();
  active_contexts_ = 1;
  refresh_issue_cost();
}

}  // namespace paxsim::sim
