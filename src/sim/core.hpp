// paxsim/sim/core.hpp
//
// One physical core of the Paxville package, with its two SMT hardware
// contexts.  Per-core (shared by both contexts): L1D, private L2, trace
// cache, ITLB, DTLB, branch-predictor pattern table, execution units and the
// stream prefetcher.  Per-context (architectural): the virtual clock, stall
// accounting, branch history, and the binding to a program's counter set.
//
// Timing model
// ------------
//   * Issue: every uop costs `cycles_per_uop`, stretched by
//     `smt_issue_stretch` while both contexts of the core are active — the
//     Hyper-Threading execution-unit sharing penalty.
//   * Loads: a chained (pointer-chase) load exposes the full load-to-use
//     latency of the level it hits in; an independent load exposes only the
//     `*_overlap` fraction (the out-of-order window hides the rest).
//   * Stores: write-allocate; miss latency weighted by `store_overlap`
//     (store buffer).  Dirty evictions post writebacks on the package bus.
//   * Branch mispredicts, TLB walks and trace-cache rebuild each charge
//     their own stall category, so "% stalled" decomposes exactly as the
//     paper's PMU data does.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "perf/counters.hpp"
#include "sim/branch.hpp"
#include "sim/cache.hpp"
#include "sim/params.hpp"
#include "sim/prefetcher.hpp"
#include "sim/tlb.hpp"
#include "sim/trace_cache.hpp"
#include "sim/types.hpp"

namespace paxsim::sim {

class Core;
class Machine;

/// One SMT hardware context (a "logical processor" in the paper's Figure 1).
/// This is the handle instrumented kernels execute against.
class HwContext {
 public:
  HwContext() = default;

  /// Binds this context to a program: all events are charged to
  /// @p counters and code addresses are based at @p code_base.
  void bind(perf::CounterSet* counters, Addr code_base) noexcept {
    counters_ = counters;
    code_base_ = code_base;
  }

  /// True if a program is currently bound.
  [[nodiscard]] bool bound() const noexcept { return counters_ != nullptr; }

  /// Virtual time of this context, in (fractional) core cycles.
  [[nodiscard]] double now() const noexcept { return now_; }

  /// Jumps the clock forward (barrier release, region join).  Time skipped
  /// this way is idle, not execution, and is not charged to any counter.
  void set_now(double t) noexcept {
    if (t > now_) now_ = t;
  }

  /// Executes @p uops ALU/FP uops.
  void alu(std::uint32_t uops) noexcept;

  /// Executes one load of the word at @p addr.
  void load(Addr addr, Dep dep = Dep::kIndependent) noexcept;

  /// Executes one store to the word at @p addr.
  void store(Addr addr, Dep dep = Dep::kIndependent) noexcept;

  /// Executes one conditional branch at static site @p site with outcome
  /// @p taken.
  void branch(std::uint32_t site, bool taken) noexcept;

  /// Front-end fetch of static code block @p block (@p uops decoded uops)
  /// through the trace cache and ITLB.  Call once per dynamic execution of
  /// the block; the uops themselves are charged by alu()/load()/store().
  void exec_block(BlockId block, std::uint32_t uops) noexcept;

  /// Folds the fractional busy/stall accumulators into the bound counter
  /// set (kCycles and the four stall categories).  The runtime calls this at
  /// the end of every parallel region and at program completion.
  void flush_accumulators() noexcept;

  /// This context's position in the machine.
  [[nodiscard]] LogicalCpu id() const noexcept { return id_; }

  /// The core this context belongs to.
  [[nodiscard]] Core& core() const noexcept { return *core_; }

  /// Cycles of pure execution (busy + stalls) since the last reset, i.e.
  /// excluding idle time introduced by set_now().
  [[nodiscard]] double execution_cycles() const noexcept {
    return executed_total_;
  }

  /// Charges @p cycles of operating-system overhead (context-switch cost on
  /// migration): time passes and counts as busy execution, but retires no
  /// instructions — OS overhead inflates CPI, as on real hardware.
  void os_overhead(double cycles) noexcept { advance_busy(cycles); }

  /// Clears clock, accumulators and branch history (new trial).
  void reset() noexcept;

 private:
  friend class Core;
  friend class Machine;

  void advance_busy(double c) noexcept {
    now_ += c;
    busy_ += c;
  }

  Core* core_ = nullptr;
  LogicalCpu id_{};
  perf::CounterSet* counters_ = nullptr;
  Addr code_base_ = 0;
  BranchHistory history_{};

  double now_ = 0;
  double busy_ = 0;
  double stall_mem_ = 0;
  double stall_branch_ = 0;
  double stall_tlb_ = 0;
  double stall_fe_ = 0;
  double executed_total_ = 0;
};

/// One physical core and its shared structures.
class Core {
 public:
  Core(const MachineParams& p, Machine* machine, int chip_idx, int core_idx);

  Core(const Core&) = delete;
  Core& operator=(const Core&) = delete;

  /// The hardware context @p i (0 or 1).
  [[nodiscard]] HwContext& context(int i) noexcept { return contexts_[i]; }
  [[nodiscard]] const HwContext& context(int i) const noexcept {
    return contexts_[i];
  }

  /// Declares how many contexts of this core are actively running threads
  /// in the current region (1 or 2).  Set by the runtime; drives the SMT
  /// issue-sharing stretch.
  void set_active_contexts(int n) noexcept { active_contexts_ = n; }
  [[nodiscard]] int active_contexts() const noexcept { return active_contexts_; }

  /// Issue cost of one uop on one context under the current SMT activity.
  [[nodiscard]] double issue_cycles_per_uop() const noexcept {
    return active_contexts_ > 1 ? params_->cycles_per_uop * params_->smt_issue_stretch
                                : params_->cycles_per_uop;
  }

  /// Global core id (0..3) used by the coherence directory.
  [[nodiscard]] int global_id() const noexcept {
    return chip_idx_ * params_->cores_per_chip + core_idx_;
  }
  [[nodiscard]] int chip_index() const noexcept { return chip_idx_; }

  /// Coherence entry points (called by Machine on behalf of remote cores).
  /// Invalidates the line from L1 and L2; returns true if L2 copy was dirty.
  bool invalidate_line(Addr line_addr) noexcept;
  /// Downgrades the L2 copy to shared; returns true if it was dirty.
  bool downgrade_line(Addr line_addr) noexcept;

  /// Cold restart (new trial): clears caches, TLBs, predictor, prefetcher
  /// and both contexts.
  void reset() noexcept;

  // Introspection for tests.
  [[nodiscard]] const SetAssocCache& l1d() const noexcept { return l1d_; }
  [[nodiscard]] const SetAssocCache& l2() const noexcept { return l2_; }

 private:
  friend class HwContext;

  /// Shared load/store path; returns the exposed stall cycles.
  double access_memory(HwContext& ctx, Addr addr, bool is_store, Dep dep) noexcept;
  /// Resolves an L2 miss: bus read, coherent fill, eviction writeback,
  /// prefetch issue.  Returns load-to-use latency.
  double resolve_l2_miss(HwContext& ctx, Addr line_addr, bool is_store) noexcept;
  /// Installs @p line_addr into L2 with coherence, handling the eviction.
  /// @p ready_at is the virtual time the fill data arrives.
  void fill_l2(HwContext& ctx, Addr line_addr, bool is_store, bool prefetched,
               double ready_at = 0) noexcept;
  void issue_prefetches(HwContext& ctx, Addr line_addr) noexcept;

  const MachineParams* params_;
  Machine* machine_;
  int chip_idx_;
  int core_idx_;

  SetAssocCache l1d_;
  SetAssocCache l2_;
  TraceCache trace_cache_;
  Tlb itlb_;
  Tlb dtlb_;
  BranchPredictor predictor_;
  StreamPrefetcher prefetcher_;
  std::vector<PrefetchRequest> prefetch_buffer_;
  std::array<HwContext, 2> contexts_;
  int active_contexts_ = 1;
};

}  // namespace paxsim::sim
