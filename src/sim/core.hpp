// paxsim/sim/core.hpp
//
// One physical core with its SMT hardware contexts (two on the default
// Paxville machine; the count comes from the topology).  Per-core (shared by
// the core's contexts): L1D, an L2 that is private by default but may be
// chip-shared or backed by a chip-shared L3 on other topologies, trace
// cache, ITLB, DTLB, branch-predictor pattern table, execution units and the
// stream prefetcher.  Per-context (architectural): the virtual clock, stall
// accounting, branch history, and the binding to a program's counter set.
//
// Timing model
// ------------
//   * Issue: every uop costs `cycles_per_uop`, stretched by
//     `smt_issue_stretch` while both contexts of the core are active — the
//     Hyper-Threading execution-unit sharing penalty.
//   * Loads: a chained (pointer-chase) load exposes the full load-to-use
//     latency of the level it hits in; an independent load exposes only the
//     `*_overlap` fraction (the out-of-order window hides the rest).
//   * Stores: write-allocate; miss latency weighted by `store_overlap`
//     (store buffer).  Dirty evictions post writebacks on the package bus.
//   * Branch mispredicts, TLB walks and trace-cache rebuild each charge
//     their own stall category, so "% stalled" decomposes exactly as the
//     paper's PMU data does.
//
// Hot path (see docs/ARCHITECTURE.md, "The hot path")
// ---------------------------------------------------
// load()/store() are inlined here and keep a small per-context table of
// "last line / last page" registers: an access whose line and page were both
// served before revalidates the cached L1/DTLB handles and replays exactly
// the state effects the out-of-line Core::access_memory path would have —
// never entering it.  High-frequency events (instructions, L1D/DTLB/ITLB/
// trace-cache references) accumulate in plain context-local integers and
// are folded into the bound CounterSet wherever flush_accumulators()
// already runs (and on rebind).  Both mechanisms are bit-identity
// preserving; `MachineParams::fast_path = false` (or building with
// -DPAXSIM_REFERENCE_PATH=ON) forces every access through the reference
// path, which the differential tests compare against.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "perf/counters.hpp"
#include "sim/branch.hpp"
#include "sim/cache.hpp"
#include "sim/params.hpp"
#include "sim/prefetcher.hpp"
#include "sim/tlb.hpp"
#include "sim/trace_cache.hpp"
#include "sim/types.hpp"

namespace paxsim::sim {

class Core;
class Machine;
class TraceSink;

/// One SMT hardware context (a "logical processor" in the paper's Figure 1).
/// This is the handle instrumented kernels execute against.
class HwContext {
 public:
  HwContext() = default;

  /// Binds this context to a program: all events are charged to
  /// @p counters and code addresses are based at @p code_base.  Pending
  /// batched events are flushed to the previously bound counter set first,
  /// so attribution across rebinds is exact.
  void bind(perf::CounterSet* counters, Addr code_base) noexcept {
    if (counters_ != nullptr && counters_ != counters) flush_event_counts();
    counters_ = counters;
    code_base_ = code_base;
    clear_fast_entries();
  }

  /// True if a program is currently bound.
  [[nodiscard]] bool bound() const noexcept { return counters_ != nullptr; }

  /// Virtual time of this context, in (fractional) core cycles.
  [[nodiscard]] double now() const noexcept { return now_; }

  /// Jumps the clock forward (barrier release, region join).  Time skipped
  /// this way is idle, not execution, and is not charged to any counter.
  void set_now(double t) noexcept {
    if (t > now_) now_ = t;
  }

  /// Executes @p uops ALU/FP uops.
  void alu(std::uint32_t uops) noexcept;

  /// Executes one load of the word at @p addr.
  void load(Addr addr, Dep dep = Dep::kIndependent) noexcept;

  /// Executes one store to the word at @p addr.
  void store(Addr addr, Dep dep = Dep::kIndependent) noexcept;

  /// Executes one conditional branch at static site @p site with outcome
  /// @p taken.
  void branch(std::uint32_t site, bool taken) noexcept;

  /// Front-end fetch of static code block @p block (@p uops decoded uops)
  /// through the trace cache and ITLB.  Call once per dynamic execution of
  /// the block; the uops themselves are charged by alu()/load()/store().
  /// Inlined: a repeat of the last block whose ITLB entry and trace lines
  /// are all still resident replays the all-hit fetch without the
  /// out-of-line walk (see the hot-path note above).
  void exec_block(BlockId block, std::uint32_t uops) noexcept;

  /// Folds the fractional busy/stall accumulators into the bound counter
  /// set (kCycles and the four stall categories) and flushes the batched
  /// event counts.  The runtime calls this at the end of every parallel
  /// region and at program completion.
  void flush_accumulators() noexcept;

  /// This context's position in the machine.
  [[nodiscard]] LogicalCpu id() const noexcept { return id_; }

  /// Static id of the code block most recently fetched through the
  /// reference front-end path (exec_block_slow) — the analysis layer's
  /// "program counter" when attributing accesses.  Every fetch takes the
  /// reference path while a check mode is active, so this is exact there.
  [[nodiscard]] BlockId last_block() const noexcept { return last_block_; }

  /// The core this context belongs to.
  [[nodiscard]] Core& core() const noexcept { return *core_; }

  /// Cycles of pure execution (busy + stalls) since the last reset, i.e.
  /// excluding idle time introduced by set_now().
  [[nodiscard]] double execution_cycles() const noexcept {
    return executed_total_;
  }

  /// Charges @p cycles of operating-system overhead (context-switch cost on
  /// migration): time passes and counts as busy execution, but retires no
  /// instructions — OS overhead inflates CPI, as on real hardware.
  void os_overhead(double cycles) noexcept { advance_busy(cycles); }

  /// Swaps the bound counter set without touching the fast-path registers
  /// (exact: pending batched events flush to the old set first).  The
  /// host-parallel backend points each context at an LP-local set for the
  /// duration of a region and folds the locals rank-order afterwards —
  /// counter adds are commutative uint64 sums, so the fold is bit-identical
  /// to serial interleaved accumulation.
  void redirect_counters(perf::CounterSet* counters) noexcept {
    flush_event_counts();
    counters_ = counters;
  }
  [[nodiscard]] perf::CounterSet* counters() const noexcept {
    return counters_;
  }

  /// Clears clock, accumulators, fast-path registers and branch history
  /// (new trial).
  void reset() noexcept;

 private:
  friend class Core;
  friend class Machine;

  /// One "last line / last page" register of the inlined fast path: the
  /// L1-line address it covers plus revalidatable handles to the L1 line
  /// and the DTLB entry that served it.  `line` uses an all-ones sentinel
  /// (no real line address has all low bits set after alignment), so an
  /// empty register can never match.
  struct FastEntry {
    Addr line = ~Addr{0};
    SetAssocCache::LineRef l1;
    SetAssocCache::LineRef tlb;
    /// Generation slot of the L1 set holding `line` (stable pointer into
    /// the L1D); null until first registration.
    const std::uint64_t* l1_gen_slot = nullptr;
    /// Sum of the L1-set generation (*l1_gen_slot) and the whole-DTLB
    /// mutation generation when the entry was armed, or 0 for "revalidate
    /// through the handles".  Both terms are monotone, so an equal sum
    /// means neither moved: no fill, invalidation, downgrade or reset has
    /// touched the L1 set or the DTLB and the handles are valid without
    /// dereferencing them.  Arming requires the line to be store-safe (not
    /// kShared), so one generation covers loads and stores alike; 0 is
    /// unreachable as a live sum because a registered line's set and the
    /// DTLB have each seen >= 1 fill.
    std::uint64_t gen = 0;
  };
  /// Sized past a full-fidelity L1D (16 KB / 64 B = 256 lines) so the
  /// filter, not the table, decides fast-path coverage.
  static constexpr std::size_t kFastEntries = 512;

  /// Front-end counterpart of FastEntry: the last code block this context
  /// fetched, with revalidatable handles to its ITLB entry and trace lines.
  /// The key fields (block id, uops, code base, partition) must all match
  /// the current fetch before the handles are even consulted, so a rebind
  /// or MT-mode flip can never replay another program's or partition's
  /// trace.
  struct FastBlock {
    BlockId block = 0;
    std::uint32_t uops = 0;
    Addr code_base = 0;
    Addr code_addr = 0;  ///< ITLB lookup address of the block
    int partition = 0;
    bool valid = false;
    SetAssocCache::LineRef itlb;
    TraceCache::FastTrace trace;
    /// LRU clocks of the trace partition and the ITLB right after the last
    /// (re)validated fetch of this block.  Both structures mutate only
    /// through clock-ticking operations (probe, fill, fast_commit) or
    /// reset() — which tears this register down — so unchanged clocks prove
    /// every handle is exactly as the last commit left it and the repeat
    /// fetch can replay with no per-line checks at all.
    std::uint64_t part_clock = 0;
    std::uint64_t itlb_clock = 0;
  };

  [[nodiscard]] FastEntry& fast_entry(Addr line) noexcept {
    // Fold high line bits into the index: concurrently-walked arrays are
    // often a near-multiple of the table span apart in the address space,
    // and a plain modulo would alias them slot-for-slot.
    const Addr l = line >> fast_line_shift_;
    return fast_[(l ^ (l >> 9)) & (kFastEntries - 1)];
  }
  /// Replays the state and timing effects of an L1/DTLB hit through the
  /// entry's validated handles (tail of the inlined load()/store() paths).
  void fast_hit(FastEntry& fe, Dep dep, bool is_store) noexcept;

  /// Conservative teardown: any coherence action, MT-mode flip, rebind or
  /// reset empties the registers; the next access re-registers via the
  /// reference path.
  void clear_fast_entries() noexcept {
    for (FastEntry& e : fast_) e = FastEntry{};
    fast_block_.valid = false;
  }

  /// Reference path of exec_block(): ITLB access, trace fetch, miss
  /// penalties — and fast-path re-registration on the way out.
  void exec_block_slow(BlockId block, std::uint32_t uops) noexcept;

  /// Adds the batched high-frequency events to the bound counter set and
  /// zeroes the accumulators.  Integer adds, no rounding: attribution is
  /// exact however often this runs.  Memory accesses and branches batch as
  /// single per-kind counts that fan out here — a load/store is always one
  /// instruction + one L1D reference + one DTLB reference, and a branch is
  /// always one instruction + one branch, so folding at flush time charges
  /// exactly what per-access increments would have.
  void flush_event_counts() noexcept {
    if (counters_ != nullptr) {
      counters_->add(perf::Event::kInstructions,
                     acc_instructions_ + acc_mem_accesses_ + acc_branch_ops_);
      counters_->add(perf::Event::kL1dReferences, acc_mem_accesses_);
      counters_->add(perf::Event::kDtlbReferences, acc_mem_accesses_);
      counters_->add(perf::Event::kItlbReferences, acc_itlb_refs_);
      counters_->add(perf::Event::kTraceCacheReferences, acc_tc_refs_);
      counters_->add(perf::Event::kBranches, acc_branch_ops_);
    }
    acc_instructions_ = acc_mem_accesses_ = 0;
    acc_itlb_refs_ = acc_tc_refs_ = acc_branch_ops_ = 0;
  }

  void advance_busy(double c) noexcept {
    now_ += c;
    busy_ += c;
  }

  /// Issue of @p uops uops at the core's current per-uop cost.  Alongside
  /// the busy time it tracks how much of that time is SMT stretch (the
  /// surcharge over the single-context cost) — a plain accumulator that
  /// never feeds back into timing, so it is bit-identity free; the tracer
  /// reads it at flush to split busy into issue + contention.
  void advance_issue(double uops) noexcept;

  Core* core_ = nullptr;
  LogicalCpu id_{};
  perf::CounterSet* counters_ = nullptr;
  Addr code_base_ = 0;
  BlockId last_block_ = 0;
  BranchHistory history_{};

  double now_ = 0;
  double busy_ = 0;
  double busy_stretch_ = 0;  ///< SMT issue-stretch share of busy_
  double stall_mem_ = 0;
  double stall_branch_ = 0;
  double stall_tlb_ = 0;
  double stall_fe_ = 0;
  double executed_total_ = 0;

  // Batched high-frequency event counts (flushed by flush_event_counts).
  std::uint64_t acc_instructions_ = 0;   // alu uops only
  std::uint64_t acc_mem_accesses_ = 0;   // loads + stores (3 events each)
  std::uint64_t acc_itlb_refs_ = 0;
  std::uint64_t acc_tc_refs_ = 0;
  std::uint64_t acc_branch_ops_ = 0;     // branches (2 events each)

  // Fast-path registers; geometry mirrors the owning core's L1 lines.
  std::array<FastEntry, kFastEntries> fast_{};
  FastBlock fast_block_{};
  Addr fast_line_mask_ = 0;
  unsigned fast_line_shift_ = 0;
};

/// One physical core and its shared structures.
class Core {
 public:
  Core(const MachineParams& p, Machine* machine, int chip_idx, int core_idx);

  Core(const Core&) = delete;
  Core& operator=(const Core&) = delete;

  /// The hardware context @p i (0 .. smt_count()-1).
  [[nodiscard]] HwContext& context(int i) noexcept { return contexts_[static_cast<std::size_t>(i)]; }
  [[nodiscard]] const HwContext& context(int i) const noexcept {
    return contexts_[static_cast<std::size_t>(i)];
  }

  /// Number of SMT hardware contexts this core was built with.
  [[nodiscard]] int smt_count() const noexcept {
    return static_cast<int>(contexts_.size());
  }

  /// Declares how many contexts of this core are actively running threads
  /// in the current region (1 or 2).  Set by the runtime; drives the SMT
  /// issue-sharing stretch.
  void set_active_contexts(int n) noexcept {
    active_contexts_ = n;
    refresh_issue_cost();
    clear_fast_entries();
  }
  [[nodiscard]] int active_contexts() const noexcept { return active_contexts_; }

  /// Issue cost of one uop on one context under the current SMT activity.
  [[nodiscard]] double issue_cycles_per_uop() const noexcept {
    return issue_cost_;
  }

  /// Global core id (0..3) used by the coherence directory.
  [[nodiscard]] int global_id() const noexcept {
    return chip_idx_ * params_->cores_per_chip + core_idx_;
  }
  [[nodiscard]] int chip_index() const noexcept { return chip_idx_; }

  /// Coherence entry points (called by Machine on behalf of remote cores).
  /// Invalidates the line from every level this core reaches (L1, private
  /// mid-level if any, and its outermost cache); returns true if the
  /// outermost copy was dirty.
  bool invalidate_line(Addr line_addr) noexcept;
  /// Downgrades every level's copy to shared; returns true if the outermost
  /// copy was dirty.
  bool downgrade_line(Addr line_addr) noexcept;

  // ---- topology wiring (called by Machine during construction) -------------
  /// Replaces this core's private outer cache with the chip-shared one
  /// (shared-L2 topologies).  The core no longer owns its L2 storage.
  void attach_shared_l2(SetAssocCache* shared) noexcept {
    l2_own_.reset();
    l2_ = shared;
  }
  /// Attaches a chip-shared last-level cache behind the private L2
  /// (three-level topologies).
  void attach_l3(SetAssocCache* l3, Cycle latency) noexcept {
    l3_ = l3;
    l3_latency_ = static_cast<double>(latency);
  }
  /// Registers another core of the same coherence domain (it shares this
  /// core's outermost cache).  Empty on private-outer topologies.
  void add_domain_sibling(Core* sib) { domain_siblings_.push_back(sib); }

  // ---- intra-domain coherence (cores sharing one outer cache) --------------
  /// Drops this core's *inner* copies of @p line_addr (L1, and the private
  /// mid-level cache when an L3 is attached); the shared outer copy is the
  /// caller's to manage.
  void invalidate_inner(Addr line_addr) noexcept;
  /// Downgrades this core's inner copies to shared.
  void downgrade_inner(Addr line_addr) noexcept;
  /// If this core holds @p line_addr in an inner level, invalidates
  /// (@p is_store) or downgrades it and returns true; otherwise returns
  /// false without touching anything.
  bool snoop_inner(Addr line_addr, bool is_store) noexcept;
  /// snoop_inner on every registered domain sibling (no-op when none).
  void snoop_siblings(Addr line_addr, bool is_store) noexcept {
    for (Core* sib : domain_siblings_) sib->snoop_inner(line_addr, is_store);
  }

  // ---- host-parallel backend (set by Machine::par_begin_region) ------------
  /// Points this core's private caches at the owning LP's grain-key slot
  /// (null reverts to par::kKeyZero, the serial stamp).
  void par_set_key(const par::Key* key) noexcept {
    l1d_.set_par_key(key);
    if (l2_own_ != nullptr) l2_own_->set_par_key(key);
  }
  /// Arms/disarms the free-run evidence hooks on the eviction paths.
  void par_set_active(bool on) noexcept { par_on_ = on; }
  /// True if any private cache of this core stamps @p line_addr after @p k.
  [[nodiscard]] bool par_stamp_after(Addr line_addr,
                                     par::Key k) const noexcept {
    return l1d_.par_stamp_after(line_addr, k) ||
           (l2_own_ != nullptr && l2_own_->par_stamp_after(line_addr, k));
  }

  /// Cold restart (new trial): clears caches, TLBs, predictor, prefetcher
  /// and both contexts.  The attached sink survives a reset, mirroring
  /// Machine::reset (attachment lifetime is the caller's concern).
  void reset() noexcept;

  /// Machine-wide event sink, cached per core so reference-path call sites
  /// skip the Machine indirection.  Set by Machine::set_trace_sink; never
  /// attach directly.
  void set_trace_sink(TraceSink* sink) noexcept { sink_ = sink; }
  [[nodiscard]] TraceSink* trace_sink() const noexcept { return sink_; }

  // Introspection for tests and the invariant checker.
  [[nodiscard]] const SetAssocCache& l1d() const noexcept { return l1d_; }
  [[nodiscard]] const SetAssocCache& l2() const noexcept { return *l2_; }
  [[nodiscard]] const Tlb& itlb() const noexcept { return itlb_; }
  [[nodiscard]] const Tlb& dtlb() const noexcept { return dtlb_; }
  /// Chip-shared last-level cache, or null on two-level topologies.
  [[nodiscard]] const SetAssocCache* l3() const noexcept { return l3_; }
  /// True when this core owns its outer cache (no chip-shared L2).
  [[nodiscard]] bool owns_l2() const noexcept { return l2_own_ != nullptr; }
  /// The outermost cache this core fills from memory: the L3 when attached,
  /// otherwise the (private or chip-shared) L2.
  [[nodiscard]] const SetAssocCache& outer_cache() const noexcept {
    return l3_ != nullptr ? *l3_ : *l2_;
  }

  /// Audits both contexts' fast-path registers: an entry whose armed
  /// generation sum still matches the live structures must also pass handle
  /// revalidation — the tier-1 "commit without reading the line" proof must
  /// never outlive tier 2's.  Returns true when clean; otherwise fills
  /// @p why (if non-null).  Trivially clean when a check mode disabled the
  /// fast path (the tables stay empty); exercised against fast-path
  /// machines by the unit tests.
  [[nodiscard]] bool audit_fast_entries(std::string* why) const;

 private:
  friend class HwContext;

  /// Shared load/store path; returns the exposed stall cycles.
  double access_memory(HwContext& ctx, Addr addr, bool is_store, Dep dep) noexcept;
  /// Resolves a miss in the outermost cache level: bus read, coherent fill,
  /// eviction writeback, prefetch issue.  Returns load-to-use latency.
  double resolve_l2_miss(HwContext& ctx, Addr line_addr, bool is_store) noexcept;
  /// Installs @p line_addr into the outermost cache with coherence, handling
  /// the eviction.  @p ready_at is the virtual time the fill data arrives.
  void fill_l2(HwContext& ctx, Addr line_addr, bool is_store, bool prefetched,
               double ready_at = 0) noexcept;
  void issue_prefetches(HwContext& ctx, Addr line_addr) noexcept;

  /// Recomputes the cached issue cost and the precomputed chained-L1-hit
  /// stall for the current SMT activity (the values the inlined fast path
  /// reads per access).
  void refresh_issue_cost() noexcept {
    issue_cost_ = active_contexts_ > 1
                      ? params_->cycles_per_uop * params_->smt_issue_stretch
                      : params_->cycles_per_uop;
    chained_l1_stall_ =
        std::max(0.0, static_cast<double>(params_->l1_latency) - issue_cost_);
    // Per-uop SMT surcharge over the single-context cost; exactly 0 when
    // this core runs one context, so busy_stretch_ accumulates nothing.
    issue_stretch_extra_ = issue_cost_ - params_->cycles_per_uop;
  }
  void clear_fast_entries() noexcept {
    for (HwContext& ctx : contexts_) ctx.clear_fast_entries();
  }

  const MachineParams* params_;
  Machine* machine_;
  int chip_idx_;
  int core_idx_;

  SetAssocCache l1d_;
  /// The core's mid/outer cache: owned private storage by default, or the
  /// chip-shared cache after attach_shared_l2().  On three-level topologies
  /// this stays the private mid-level and l3_ points at the shared LLC.
  std::unique_ptr<SetAssocCache> l2_own_;
  SetAssocCache* l2_ = nullptr;
  SetAssocCache* l3_ = nullptr;    ///< chip-shared LLC (three-level only)
  double l3_latency_ = 0;          ///< load-to-use latency of l3_
  std::vector<Core*> domain_siblings_;  ///< other cores sharing our outer cache
  TraceCache trace_cache_;
  Tlb itlb_;
  Tlb dtlb_;
  BranchPredictor predictor_;
  StreamPrefetcher prefetcher_;
  std::vector<PrefetchRequest> prefetch_buffer_;
  std::vector<HwContext> contexts_;
  int active_contexts_ = 1;

  bool fast_path_ = true;          ///< MachineParams::fast_path
  bool par_on_ = false;            ///< parallel region active (evidence hooks)
  double issue_cost_ = 0;          ///< cached issue_cycles_per_uop()
  double chained_l1_stall_ = 0;    ///< max(0, l1_latency - issue_cost_)
  double issue_stretch_extra_ = 0; ///< issue_cost_ - cycles_per_uop
  TraceSink* sink_ = nullptr;      ///< Machine's sink, cached per core
};

// ---------------------------------------------------------------------------
// Inlined hot path.  A load/store whose line and page hit registered, still-
// valid L1/DTLB entries replays the exact state and timing effects of the
// out-of-line path: issue cost, both reference counts, one LRU clock tick
// per structure, stamp refresh, store upgrade towards Modified, and (for
// chained accesses) the precomputed exposed L1-hit stall.  Everything else —
// first touch, misses, shared-line stores, in-flight fills — falls through
// to Core::access_memory, which re-registers the entry on its way out.
//
// Validation is two-tier.  Tier 1 compares the entry's armed generation sum
// against the live L1D+DTLB set generations: equality proves no fill,
// invalidation, downgrade or reset has touched either set since arming, so
// both handles are valid *by construction* and the access commits without
// reading a single cache-line field.  Tier 2 (generation moved) revalidates
// through the handles as before and re-arms the entry when the line is
// store-safe.  Both tiers commit the identical effects; only the proof of
// validity differs.
// ---------------------------------------------------------------------------

inline void HwContext::advance_issue(double uops) noexcept {
  advance_busy(uops * core_->issue_cost_);
  busy_stretch_ += uops * core_->issue_stretch_extra_;
}

inline void HwContext::alu(std::uint32_t uops) noexcept {
  advance_issue(static_cast<double>(uops));
  acc_instructions_ += uops;
}

inline void HwContext::fast_hit(FastEntry& fe, Dep dep,
                                bool is_store) noexcept {
  core_->l1d_.fast_commit(fe.l1, is_store);
  core_->dtlb_.fast_commit(fe.tlb);
  if (dep == Dep::kChained) {
    const double stall = core_->chained_l1_stall_;
    now_ += stall;
    stall_mem_ += stall;
  }
  // Independent L1 hits are fully pipelined: no exposed stall.
}

inline void HwContext::load(Addr addr, Dep dep) noexcept {
  advance_issue(1.0);
  ++acc_mem_accesses_;
  const Addr line = addr & fast_line_mask_;
  FastEntry& fe = fast_entry(line);
  if (fe.line == line) {  // a match implies registration: l1_gen_slot is set
    const std::uint64_t cur =
        *fe.l1_gen_slot + core_->dtlb_.mutation_gen();
    if (fe.gen == cur) {  // tier 1: armed and nothing structural happened
      fast_hit(fe, dep, /*is_store=*/false);
      return;
    }
    if (core_->dtlb_.fast_check(fe.tlb, addr)) {  // tier 2
      if (core_->l1d_.fast_check(fe.l1, addr, /*is_store=*/true)) {
        fe.gen = cur;  // store-safe: re-arm tier 1 for both access kinds
        fast_hit(fe, dep, /*is_store=*/false);
        return;
      }
      if (core_->l1d_.fast_check(fe.l1, addr, /*is_store=*/false)) {
        fast_hit(fe, dep, /*is_store=*/false);  // kShared line: stay unarmed
        return;
      }
    }
  }
  const double stall = core_->access_memory(*this, addr, /*is_store=*/false, dep);
  now_ += stall;
  stall_mem_ += stall;
}

inline void HwContext::store(Addr addr, Dep dep) noexcept {
  advance_issue(1.0);
  ++acc_mem_accesses_;
  const Addr line = addr & fast_line_mask_;
  FastEntry& fe = fast_entry(line);
  if (fe.line == line) {  // a match implies registration: l1_gen_slot is set
    const std::uint64_t cur =
        *fe.l1_gen_slot + core_->dtlb_.mutation_gen();
    if (fe.gen == cur) {  // tier 1: an armed line is store-safe by arming rule
      fast_hit(fe, dep, /*is_store=*/true);
      return;
    }
    if (core_->l1d_.fast_check(fe.l1, addr, /*is_store=*/true) &&
        core_->dtlb_.fast_check(fe.tlb, addr)) {  // tier 2
      fe.gen = cur;
      fast_hit(fe, dep, /*is_store=*/true);
      return;
    }
  }
  const double stall = core_->access_memory(*this, addr, /*is_store=*/true, dep);
  now_ += stall;
  stall_mem_ += stall;
}

inline void HwContext::exec_block(BlockId block, std::uint32_t uops) noexcept {
  FastBlock& fb = fast_block_;
  if (fb.valid && fb.block == block && fb.uops == uops &&
      fb.code_base == code_base_) {
    const int partition = (core_->active_contexts_ > 1 &&
                           core_->params_->trace_mt_static_partition)
                              ? id_.context
                              : -1;
    if (partition == fb.partition) {
      if (fb.part_clock == fb.trace.part->lru_clock() &&
          fb.itlb_clock == core_->itlb_.lru_clock()) {
        // Tier 1: neither structure ticked since our last commit, so every
        // handle is exactly as that commit left it — replay unchecked.
        core_->trace_cache_.commit(fb.trace);
        core_->itlb_.fast_commit(fb.itlb);
      } else if (core_->itlb_.fast_check(fb.itlb, fb.code_addr) &&
                 core_->trace_cache_.try_commit(fb.trace)) {
        core_->itlb_.fast_commit(fb.itlb);  // tier 2: handle revalidation
      } else {
        exec_block_slow(block, uops);
        return;
      }
      fb.part_clock = fb.trace.part->lru_clock();
      fb.itlb_clock = core_->itlb_.lru_clock();
      ++acc_itlb_refs_;
      acc_tc_refs_ += fb.trace.n;
      return;
    }
  }
  exec_block_slow(block, uops);
}

inline void HwContext::branch(std::uint32_t site, bool taken) noexcept {
  advance_issue(1.0);
  ++acc_branch_ops_;
  const bool correct =
      core_->predictor_.predict_and_update(site, taken, history_);
  if (!correct) {
    counters_->add(perf::Event::kBranchMispredicts, 1);
    const double penalty =
        static_cast<double>(core_->params_->mispredict_penalty);
    now_ += penalty;
    stall_branch_ += penalty;
  }
}

}  // namespace paxsim::sim
