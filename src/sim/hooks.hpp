// paxsim/sim/hooks.hpp
//
// Observation interface for analysis subsystems (src/check/): a TraceSink
// attached to a Machine receives the simulator's memory-access and fetch
// stream plus synchronization callbacks from the xomp runtime, all in
// virtual-time execution order.
//
// Cost discipline: every call site is on the *reference* (out-of-line) path
// only — the inlined L1/DTLB fast path never consults the sink.  Analysis
// modes that need the full stream (MachineParams::check_mode != kOff) force
// the reference path, so a machine running with the sink detached and the
// fast path enabled pays nothing.  A sink observes; it must never mutate
// simulator state (all references handed to it are const).
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/types.hpp"

namespace paxsim::sim {

class HwContext;

/// Receiver of the simulated machine's event stream.  Attach with
/// Machine::set_trace_sink(); the xomp runtime discovers it through the
/// machine and adds the synchronization vocabulary.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// One committed data access (load or store) by @p ctx at byte address
  /// @p addr.  Called at the end of the reference memory path, after all
  /// cache/TLB/coherence state effects have been applied.  @p dep is the
  /// dependence class the program declared for the access (chained loads
  /// expose their full latency; the reuse profiler bins them separately
  /// because they are what Hyper-Threading overlaps).
  virtual void on_access(const HwContext& ctx, Addr addr, bool is_store,
                         Dep dep) = 0;

  /// One front-end fetch of the code block at @p code_addr by @p ctx
  /// (reference path of exec_block).  @p uops is the block's issue width
  /// in uops — the front-end cost model's unit.
  virtual void on_fetch(const HwContext& ctx, Addr code_addr,
                        std::uint32_t uops) = 0;

  /// A work-sharing loop over [@p begin, @p end) is about to be dispatched
  /// by the xomp runtime on @p ctx's team; @p body identifies the loop
  /// body's code block.  Fired once per dynamic loop instance (including
  /// single-thread teams), before any iteration executes.  Default no-op so
  /// existing sinks need not care.
  virtual void on_loop(const HwContext& ctx, BlockId body, std::size_t begin,
                       std::size_t end) {
    (void)ctx; (void)body; (void)begin; (void)end;
  }

  /// Team lifecycle events from the xomp runtime.  @p members lists the
  /// hardware contexts currently executing the team's threads, in rank
  /// order.  kFork/kBarrier/kJoin all establish an all-to-all
  /// happens-before edge across the members (the runtime synchronises every
  /// thread clock at each of them).
  enum class TeamEvent : std::uint8_t { kCreate, kFork, kBarrier, kJoin };
  virtual void on_team(TeamEvent ev, const void* team,
                       const HwContext* const* members, std::size_t count) = 0;

  /// Declares [base, base+bytes) as runtime-internal synchronization
  /// storage (lock word, loop cursor, barrier counter, reduction slots).
  /// Accesses there model atomic hardware operations and are exempt from
  /// data-race checking.
  virtual void on_runtime_range(Addr base, std::size_t bytes) = 0;

  /// Synchronization operation on the object identified by @p addr:
  /// critical enter / lock acquire (kAcquire), critical exit / lock release
  /// (kRelease), and the master-side reduction combine (kCombine, which
  /// rides the join barrier for ordering and is reported for accounting).
  /// An atomic read-modify-write is bracketed as kAcquire + kRelease on the
  /// target address, so the plain load/store it issues in between are
  /// lock-ordered against other atomics on the same address.
  enum class SyncOp : std::uint8_t { kAcquire, kRelease, kCombine };
  virtual void on_sync(SyncOp op, const HwContext& ctx, Addr addr) = 0;

  /// Thread migration (Team::repin): the logical thread running on @p from
  /// continues on @p to, carrying its happens-before history with it.
  virtual void on_thread_moved(const HwContext& from, const HwContext& to) = 0;
};

}  // namespace paxsim::sim
