// paxsim/sim/hooks.hpp
//
// Observation interface for analysis subsystems (src/check/): a TraceSink
// attached to a Machine receives the simulator's memory-access and fetch
// stream plus synchronization callbacks from the xomp runtime, all in
// virtual-time execution order.
//
// Cost discipline: every call site is on the *reference* (out-of-line) path
// only — the inlined L1/DTLB fast path never consults the sink.  Analysis
// modes that need the full stream (MachineParams::check_mode != kOff) force
// the reference path, so a machine running with the sink detached and the
// fast path enabled pays nothing.  A sink observes; it must never mutate
// simulator state (all references handed to it are const).
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/types.hpp"

namespace paxsim::sim {

class HwContext;

/// Memory-hierarchy level that served a data access.  kL3 occurs only on
/// three-level topologies (sim/topology.hpp).
enum class MemLevel : std::uint8_t { kL1, kL2, kL3, kMem };

/// Receiver of the simulated machine's event stream.  Attach with
/// Machine::set_trace_sink(); the xomp runtime discovers it through the
/// machine and adds the synchronization vocabulary.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// One committed data access (load or store) by @p ctx at byte address
  /// @p addr.  Called at the end of the reference memory path, after all
  /// cache/TLB/coherence state effects have been applied.  @p dep is the
  /// dependence class the program declared for the access (chained loads
  /// expose their full latency; the reuse profiler bins them separately
  /// because they are what Hyper-Threading overlaps).
  virtual void on_access(const HwContext& ctx, Addr addr, bool is_store,
                         Dep dep) = 0;

  /// One front-end fetch of the code block at @p code_addr by @p ctx
  /// (reference path of exec_block).  @p uops is the block's issue width
  /// in uops — the front-end cost model's unit.
  virtual void on_fetch(const HwContext& ctx, Addr code_addr,
                        std::uint32_t uops) = 0;

  /// A work-sharing loop over [@p begin, @p end) is about to be dispatched
  /// by the xomp runtime on @p ctx's team; @p body identifies the loop
  /// body's code block.  Fired once per dynamic loop instance (including
  /// single-thread teams), before any iteration executes.  Default no-op so
  /// existing sinks need not care.
  virtual void on_loop(const HwContext& ctx, BlockId body, std::size_t begin,
                       std::size_t end) {
    (void)ctx; (void)body; (void)begin; (void)end;
  }

  /// Team lifecycle events from the xomp runtime.  @p members lists the
  /// hardware contexts currently executing the team's threads, in rank
  /// order.  kFork/kBarrier/kJoin all establish an all-to-all
  /// happens-before edge across the members (the runtime synchronises every
  /// thread clock at each of them).
  enum class TeamEvent : std::uint8_t { kCreate, kFork, kBarrier, kJoin };
  virtual void on_team(TeamEvent ev, const void* team,
                       const HwContext* const* members, std::size_t count) = 0;

  /// Declares [base, base+bytes) as runtime-internal synchronization
  /// storage (lock word, loop cursor, barrier counter, reduction slots).
  /// Accesses there model atomic hardware operations and are exempt from
  /// data-race checking.
  virtual void on_runtime_range(Addr base, std::size_t bytes) = 0;

  /// Synchronization operation on the object identified by @p addr:
  /// critical enter / lock acquire (kAcquire), critical exit / lock release
  /// (kRelease), and the master-side reduction combine (kCombine, which
  /// rides the join barrier for ordering and is reported for accounting).
  /// An atomic read-modify-write is bracketed as kAcquire + kRelease on the
  /// target address, so the plain load/store it issues in between are
  /// lock-ordered against other atomics on the same address.
  enum class SyncOp : std::uint8_t { kAcquire, kRelease, kCombine };
  virtual void on_sync(SyncOp op, const HwContext& ctx, Addr addr) = 0;

  /// Thread migration (Team::repin): the logical thread running on @p from
  /// continues on @p to, carrying its happens-before history with it.
  virtual void on_thread_moved(const HwContext& from, const HwContext& to) = 0;

  // ---- stall-attribution vocabulary (src/trace/) --------------------------
  // Default no-ops so sinks that only need the access stream (the checker,
  // the reuse profiler) stay untouched.  All values are fractional cycles.

  /// Stall decomposition of the access that on_access() is about to report:
  /// @p level is the hierarchy level that served it, @p dtlb_walk the page
  /// walk charged directly to the context's TLB stall class (0 on a DTLB
  /// hit), @p stall the exposed memory-stall cycles the access returned to
  /// the context, @p queue_wait the queueing component of the load-to-use
  /// latency (FSB + memory-controller backlog plus any in-flight-fill
  /// arrival wait), and @p total_wait the full latency + arrival wait.  The
  /// exposed stall splits proportionally: stall * queue_wait / total_wait
  /// of it was spent queueing, the rest being served.
  virtual void on_access_stall(const HwContext& ctx, MemLevel level,
                               double dtlb_walk, double stall,
                               double queue_wait, double total_wait) {
    (void)ctx; (void)level; (void)dtlb_walk;
    (void)stall; (void)queue_wait; (void)total_wait;
  }

  /// Front-end cost of the fetch that on_fetch() is about to report:
  /// @p itlb_walk is the ITLB page-walk stall (0 on a hit) and @p decode
  /// the trace-cache rebuild stall (0 when every line hit).
  virtual void on_fetch_stall(const HwContext& ctx, double itlb_walk,
                              double decode) {
    (void)ctx; (void)itlb_walk; (void)decode;
  }

  /// Accumulator flush (barrier, region boundary, completion): the cycle
  /// deltas @p ctx is about to fold into its counter set, before rounding.
  /// @p busy is issue/execute time (of which @p smt_stretch is the extra
  /// cost of sharing the core's issue width with the sibling context); the
  /// stall_* terms are the four stall classes.  Everything is a delta since
  /// the previous flush; the stack accountant attributes each delta to the
  /// context's current parallel region.
  virtual void on_flush(const HwContext& ctx, double busy, double smt_stretch,
                        double stall_mem, double stall_branch,
                        double stall_tlb, double stall_fe) {
    (void)ctx; (void)busy; (void)smt_stretch; (void)stall_mem;
    (void)stall_branch; (void)stall_tlb; (void)stall_fe;
  }
};

}  // namespace paxsim::sim
