#include "sim/machine.hpp"

#include <algorithm>

namespace paxsim::sim {

using perf::Event;

Machine::Machine(const MachineParams& p) : params_(p), mc_(p) {
  buses_.reserve(static_cast<std::size_t>(p.chips));
  for (int c = 0; c < p.chips; ++c) buses_.emplace_back(params_, &mc_);
  cores_.reserve(static_cast<std::size_t>(p.total_cores()));
  for (int chip = 0; chip < p.chips; ++chip) {
    for (int core = 0; core < p.cores_per_chip; ++core) {
      cores_.push_back(std::make_unique<Core>(params_, this, chip, core));
    }
  }
}

double Machine::wall_time() const noexcept {
  double t = 0;
  for (const auto& c : cores_) {
    const Core& core_ref = *c;
    for (int i = 0; i < 2; ++i) {
      t = std::max(t, core_ref.context(i).now());
    }
  }
  return t;
}

void Machine::reset() noexcept {
  mc_.reset();
  for (auto& b : buses_) b.reset();
  for (auto& c : cores_) c->reset();
  directory_.clear();
}

LineState Machine::coherent_fill(int filler_core, Addr line_addr, bool is_store,
                                 HwContext& ctx) noexcept {
  std::uint8_t& holders = directory_[line_addr];
  const std::uint8_t self = static_cast<std::uint8_t>(1u << filler_core);
  const std::uint8_t others = static_cast<std::uint8_t>(holders & ~self);
  LineState st;
  if (is_store) {
    // Read-for-ownership: every remote copy dies.
    for (int c = 0; c < static_cast<int>(cores_.size()); ++c) {
      if ((others & (1u << c)) == 0) continue;
      ctx.counters_->add(Event::kL2Invalidations, 1);
      if (cores_[c]->invalidate_line(line_addr)) {
        // Dirty remote copy: implicit writeback on the remote package's bus.
        ctx.counters_->add(Event::kBusTransactions, 1);
        ctx.counters_->add(Event::kBusWrites, 1);
        buses_[cores_[c]->chip_index()].write(ctx.now());
      }
    }
    holders = self;
    st = LineState::kModified;
  } else {
    for (int c = 0; c < static_cast<int>(cores_.size()); ++c) {
      if ((others & (1u << c)) == 0) continue;
      if (cores_[c]->downgrade_line(line_addr)) {
        ctx.counters_->add(Event::kBusTransactions, 1);
        ctx.counters_->add(Event::kBusWrites, 1);
        buses_[cores_[c]->chip_index()].write(ctx.now());
      }
    }
    st = others != 0 ? LineState::kShared : LineState::kExclusive;
    holders = static_cast<std::uint8_t>(holders | self);
  }
  return st;
}

void Machine::on_l2_evict(int core_id, Addr line_addr) noexcept {
  auto it = directory_.find(line_addr);
  if (it == directory_.end()) return;
  it->second = static_cast<std::uint8_t>(it->second & ~(1u << core_id));
  if (it->second == 0) directory_.erase(it);
}

void Machine::store_upgrade(int core_id, Addr line_addr, HwContext& ctx) noexcept {
  std::uint8_t& holders = directory_[line_addr];
  const std::uint8_t self = static_cast<std::uint8_t>(1u << core_id);
  for (int c = 0; c < static_cast<int>(cores_.size()); ++c) {
    if (c == core_id || (holders & (1u << c)) == 0) continue;
    ctx.counters_->add(Event::kL2Invalidations, 1);
    if (cores_[c]->invalidate_line(line_addr)) {
      ctx.counters_->add(Event::kBusTransactions, 1);
      ctx.counters_->add(Event::kBusWrites, 1);
      buses_[cores_[c]->chip_index()].write(ctx.now());
    }
  }
  holders = self;
}

unsigned Machine::holders_of(Addr line_addr) const noexcept {
  const auto it = directory_.find(line_addr);
  return it == directory_.end() ? 0u : it->second;
}

std::vector<std::pair<Addr, unsigned>> Machine::directory_snapshot() const {
  std::vector<std::pair<Addr, unsigned>> out;
  out.reserve(directory_.size());
  for (const auto& [line, holders] : directory_) out.emplace_back(line, holders);
  return out;
}

}  // namespace paxsim::sim
