#include "sim/machine.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <string>

namespace paxsim::sim {

using perf::Event;

Machine::Machine(const MachineParams& p)
    : params_(p), topo_(p.resolved_topology()) {
  std::string why;
  if (!topo_.validate_for_sim(&why)) {
    throw std::invalid_argument("paxsim: unsupported machine topology (" +
                                topo_.name + "): " + why);
  }
  remote_extra_ = static_cast<double>(topo_.remote_node_extra_latency);

  // One memory controller per NUMA node (the default topology's single node
  // is the calibrated shared north bridge).
  mcs_.reserve(topo_.nodes.size());
  for (const MemNode& n : topo_.nodes) {
    mcs_.emplace_back(n.read_occupancy, n.write_occupancy);
  }
  home_node_.assign(static_cast<std::size_t>(topo_.packages), 0);
  for (std::size_t n = 0; n < topo_.nodes.size(); ++n) {
    for (const int pkg : topo_.nodes[n].home_packages) {
      home_node_[static_cast<std::size_t>(pkg)] = static_cast<int>(n);
    }
  }

  // One link per package, bound to its local node for the plain
  // read()/write() compatibility path.
  buses_.reserve(static_cast<std::size_t>(p.chips));
  for (int c = 0; c < p.chips; ++c) {
    const std::size_t node = static_cast<std::size_t>(home_node_[static_cast<std::size_t>(c)]);
    buses_.emplace_back(topo_.link_read_occupancy, topo_.link_write_occupancy,
                        &mcs_[node],
                        static_cast<double>(topo_.nodes[node].latency));
  }

  // Chip-shared outermost caches when the outer level's sharing scope is
  // per-chip; otherwise every core owns its outer level (the default).
  const TopoCacheLevel& outer_level = topo_.levels.back();
  chip_domains_ = outer_level.scope == SharingScope::kPerChip;
  if (chip_domains_) {
    chip_caches_.reserve(static_cast<std::size_t>(p.chips));
    for (int c = 0; c < p.chips; ++c) {
      chip_caches_.push_back(
          std::make_unique<SetAssocCache>(outer_level.geometry));
    }
  }

  cores_.reserve(static_cast<std::size_t>(p.total_cores()));
  for (int chip = 0; chip < p.chips; ++chip) {
    for (int core = 0; core < p.cores_per_chip; ++core) {
      cores_.push_back(std::make_unique<Core>(params_, this, chip, core));
    }
  }
  if (chip_domains_) {
    const bool three_level = topo_.levels.size() == 3;
    for (auto& cp : cores_) {
      SetAssocCache* shared =
          chip_caches_[static_cast<std::size_t>(cp->chip_index())].get();
      if (three_level) {
        cp->attach_l3(shared, topo_.levels[2].latency);
      } else {
        cp->attach_shared_l2(shared);
      }
    }
  }

  // Coherence domains: one per outermost cache instance.
  domain_count_ = chip_domains_ ? p.chips : p.total_cores();
  domain_of_core_.resize(cores_.size());
  domain_cores_.assign(static_cast<std::size_t>(domain_count_), {});
  domain_chip_.assign(static_cast<std::size_t>(domain_count_), 0);
  for (int c = 0; c < static_cast<int>(cores_.size()); ++c) {
    const int d = chip_domains_ ? cores_[static_cast<std::size_t>(c)]->chip_index() : c;
    domain_of_core_[static_cast<std::size_t>(c)] = d;
    domain_cores_[static_cast<std::size_t>(d)].push_back(c);
    domain_chip_[static_cast<std::size_t>(d)] =
        cores_[static_cast<std::size_t>(c)]->chip_index();
  }
  if (chip_domains_) {
    for (int c = 0; c < static_cast<int>(cores_.size()); ++c) {
      for (const int o : domain_cores_[static_cast<std::size_t>(domain_of_core_[static_cast<std::size_t>(c)])]) {
        if (o != c) {
          cores_[static_cast<std::size_t>(c)]->add_domain_sibling(
              cores_[static_cast<std::size_t>(o)].get());
        }
      }
    }
  }
}

double Machine::wall_time() const noexcept {
  double t = 0;
  for (const auto& c : cores_) {
    const Core& core_ref = *c;
    for (int i = 0; i < core_ref.smt_count(); ++i) {
      t = std::max(t, core_ref.context(i).now());
    }
  }
  return t;
}

void Machine::reset() noexcept {
  for (auto& mc : mcs_) mc.reset();
  for (auto& b : buses_) b.reset();
  for (auto& c : cores_) c->reset();
  directory_.clear();
}

bool Machine::invalidate_domain(int d, Addr line_addr) noexcept {
  if (!chip_domains_) {
    // Private-outer topologies: the domain is exactly one core, and this is
    // the seed machine's remote-invalidate path, unchanged.
    return cores_[static_cast<std::size_t>(d)]->invalidate_line(line_addr);
  }
  for (const int c : domain_cores_[static_cast<std::size_t>(d)]) {
    cores_[static_cast<std::size_t>(c)]->invalidate_inner(line_addr);
  }
  return chip_caches_[static_cast<std::size_t>(d)]->invalidate(line_addr);
}

bool Machine::downgrade_domain(int d, Addr line_addr) noexcept {
  if (!chip_domains_) {
    return cores_[static_cast<std::size_t>(d)]->downgrade_line(line_addr);
  }
  for (const int c : domain_cores_[static_cast<std::size_t>(d)]) {
    cores_[static_cast<std::size_t>(c)]->downgrade_inner(line_addr);
  }
  return chip_caches_[static_cast<std::size_t>(d)]->downgrade_to_shared(line_addr);
}

LineState Machine::coherent_fill(int filler_core, Addr line_addr, bool is_store,
                                 HwContext& ctx) noexcept {
  par_gate();
  const int self_d = domain_of_core_[static_cast<std::size_t>(filler_core)];
  std::uint32_t& holders = directory_[line_addr];
  const std::uint32_t self = 1u << self_d;
  const std::uint32_t others = holders & ~self;
  LineState st;
  if (is_store) {
    // Read-for-ownership: every remote copy dies.
    for (int d = 0; d < domain_count_; ++d) {
      if ((others & (1u << d)) == 0) continue;
      std::optional<par::Session::RemoteLock> rl;
      if (par_session_ != nullptr) {
        rl.emplace(*par_session_,
                   domain_lp_[static_cast<std::size_t>(d)]);
        if (rl->cross() && par_domain_conflict(d, line_addr)) {
          par_session_->note_conflict();
        }
      }
      ctx.counters_->add(Event::kL2Invalidations, 1);
      if (invalidate_domain(d, line_addr)) {
        // Dirty remote copy: implicit writeback on the remote package's bus.
        ctx.counters_->add(Event::kBusTransactions, 1);
        ctx.counters_->add(Event::kBusWrites, 1);
        memory_write(domain_chip_[static_cast<std::size_t>(d)], line_addr,
                     ctx.now());
      }
    }
    holders = self;
    st = LineState::kModified;
  } else {
    for (int d = 0; d < domain_count_; ++d) {
      if ((others & (1u << d)) == 0) continue;
      std::optional<par::Session::RemoteLock> rl;
      if (par_session_ != nullptr) {
        rl.emplace(*par_session_,
                   domain_lp_[static_cast<std::size_t>(d)]);
        if (rl->cross() && par_domain_conflict(d, line_addr)) {
          par_session_->note_conflict();
        }
      }
      if (downgrade_domain(d, line_addr)) {
        ctx.counters_->add(Event::kBusTransactions, 1);
        ctx.counters_->add(Event::kBusWrites, 1);
        memory_write(domain_chip_[static_cast<std::size_t>(d)], line_addr,
                     ctx.now());
      }
    }
    st = others != 0 ? LineState::kShared : LineState::kExclusive;
    holders |= self;
  }
  return st;
}

void Machine::on_l2_evict(int core_id, Addr line_addr) noexcept {
  par_gate();
  auto it = directory_.find(line_addr);
  if (it == directory_.end()) return;
  it->second &= ~(1u << domain_of_core_[static_cast<std::size_t>(core_id)]);
  if (it->second == 0) directory_.erase(it);
}

void Machine::store_upgrade(int core_id, Addr line_addr, HwContext& ctx) noexcept {
  par_gate();
  const int self_d = domain_of_core_[static_cast<std::size_t>(core_id)];
  std::uint32_t& holders = directory_[line_addr];
  for (int d = 0; d < domain_count_; ++d) {
    if (d == self_d || (holders & (1u << d)) == 0) continue;
    std::optional<par::Session::RemoteLock> rl;
    if (par_session_ != nullptr) {
      rl.emplace(*par_session_, domain_lp_[static_cast<std::size_t>(d)]);
      if (rl->cross() && par_domain_conflict(d, line_addr)) {
        par_session_->note_conflict();
      }
    }
    ctx.counters_->add(Event::kL2Invalidations, 1);
    if (invalidate_domain(d, line_addr)) {
      ctx.counters_->add(Event::kBusTransactions, 1);
      ctx.counters_->add(Event::kBusWrites, 1);
      memory_write(domain_chip_[static_cast<std::size_t>(d)], line_addr,
                   ctx.now());
    }
  }
  holders = 1u << self_d;
  // Intra-domain: sibling cores sharing the writer's outer cache drop their
  // inner copies so the writer becomes the sole holder (no-op by
  // construction on private-outer topologies).
  cores_[static_cast<std::size_t>(core_id)]->snoop_siblings(line_addr,
                                                            /*is_store=*/true);
}

void Machine::par_begin_region(par::Session* session,
                               const std::vector<int>& domain_lp) noexcept {
  par_session_ = session;
  domain_lp_ = domain_lp;
  for (int d = 0; d < domain_count_; ++d) {
    const int lp = domain_lp_[static_cast<std::size_t>(d)];
    const par::Key* key = lp >= 0 ? session->key_slot(lp) : nullptr;
    for (const int c : domain_cores_[static_cast<std::size_t>(d)]) {
      cores_[static_cast<std::size_t>(c)]->par_set_key(key);
    }
    if (chip_domains_) {
      chip_caches_[static_cast<std::size_t>(d)]->set_par_key(key);
    }
  }
  for (auto& c : cores_) c->par_set_active(true);
}

void Machine::par_end_region() noexcept {
  for (auto& c : cores_) {
    c->par_set_key(nullptr);
    c->par_set_active(false);
  }
  for (auto& cc : chip_caches_) cc->set_par_key(nullptr);
  par_session_ = nullptr;
  domain_lp_.clear();
}

void Machine::par_note_evict_slow(Addr line_addr) noexcept {
  par::ThreadState& t = par::tls();
  if (t.session != par_session_) return;  // foreign thread: nothing to log
  par_session_->note_evidence(line_addr);
}

bool Machine::par_domain_conflict(int d, Addr line_addr) const noexcept {
  const par::Key k = par::tls().key;
  for (const int c : domain_cores_[static_cast<std::size_t>(d)]) {
    if (cores_[static_cast<std::size_t>(c)]->par_stamp_after(line_addr, k)) {
      return true;
    }
  }
  if (chip_domains_ &&
      chip_caches_[static_cast<std::size_t>(d)]->par_stamp_after(line_addr,
                                                                 k)) {
    return true;
  }
  return par_session_->evidence_after(
      domain_lp_[static_cast<std::size_t>(d)], line_addr, k);
}

unsigned Machine::holders_of(Addr line_addr) const noexcept {
  const auto it = directory_.find(line_addr);
  return it == directory_.end() ? 0u : it->second;
}

std::vector<std::pair<Addr, unsigned>> Machine::directory_snapshot() const {
  std::vector<std::pair<Addr, unsigned>> out;
  out.reserve(directory_.size());
  // paxlint: allow(determinism) -- hash order never escapes: the snapshot is sorted into address order below
  for (const auto& [line, holders] : directory_) out.emplace_back(line, holders);
  // Hash order would leak into anything that renders the snapshot; address
  // order is the canonical presentation.
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace paxsim::sim
