// paxsim/sim/machine.hpp
//
// The whole platform, built from a Topology description (sim/topology.hpp):
// packages ("chips") with cores and SMT contexts, a per-package link
// (front-side bus or point-to-point), one memory controller per NUMA node,
// and the coherence directory.  The directory tracks *coherence domains* —
// one per owner of an outermost cache instance: every core on the default
// private-L2 Paxville machine, every chip when the outermost level is
// chip-shared (shared-L2 or L3 topologies).  `MachineParams{}` (no topology
// attached) builds the calibrated Paxville machine, bit-identical to the
// pre-topology simulator (test-enforced).
//
// The Machine is constructed from MachineParams and is reusable across
// trials via reset(): a reset machine is bit-identical, in every observable
// counter and timing, to a freshly constructed one (the harness MachinePool
// and the engine determinism tests rely on this).  Hardware-context
// enablement (HT on/off, the kernel's `maxcpus=` masking of Table 1) is a
// property of the *study configuration*, not the machine: the harness simply
// binds threads only to allowed contexts.
//
// Threading: by default a Machine is confined to one host thread at a time;
// the harness dispatches concurrent trials by giving each worker thread its
// own pooled Machine, never by sharing one.  The exception is the
// host-parallel backend (src/par/): inside a parallel region armed via
// par_begin_region(), one Machine is driven by several LP threads under the
// par::Session protocol — every machine-shared entry point below gates on
// the grain token, so cross-thread access stays mutually exclusive and in
// serial order (see src/par/session.hpp).
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "par/session.hpp"
#include "sim/core.hpp"
#include "sim/hooks.hpp"
#include "sim/memsys.hpp"
#include "sim/params.hpp"
#include "sim/topology.hpp"
#include "sim/types.hpp"

namespace paxsim::sim {

/// Per-program bump allocator carving disjoint regions out of the simulated
/// physical address space, so that co-scheduled programs interfere in the
/// caches exactly as distinct working sets do (and never falsely share).
class AddressSpace {
 public:
  /// @param program_index  0-based program slot; each slot owns a 1-TiB
  ///        window of the simulated address space.
  explicit AddressSpace(int program_index)
      : base_((static_cast<Addr>(program_index) + 1) << 40), next_(base_) {}

  /// Allocates @p bytes aligned to @p align (power of two), never freed.
  [[nodiscard]] Addr alloc(std::size_t bytes, std::size_t align = 64) noexcept {
    next_ = (next_ + (align - 1)) & ~static_cast<Addr>(align - 1);
    const Addr a = next_;
    next_ += bytes;
    return a;
  }

  /// Base address of this program's code segment (for the trace cache and
  /// ITLB model), disjoint from the data window.
  [[nodiscard]] Addr code_base() const noexcept {
    return base_ + (static_cast<Addr>(1) << 39);
  }

  [[nodiscard]] Addr data_base() const noexcept { return base_; }
  [[nodiscard]] std::size_t bytes_allocated() const noexcept {
    return static_cast<std::size_t>(next_ - base_);
  }

 private:
  Addr base_;
  Addr next_;
};

/// The simulated SMP, shaped by `MachineParams::resolved_topology()`.
class Machine {
 public:
  /// Builds the machine.  Throws std::invalid_argument when the resolved
  /// topology fails Topology::validate_for_sim (the CLI validates earlier
  /// and reports the reason; this is the last line of defence).
  explicit Machine(const MachineParams& p);

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  [[nodiscard]] const MachineParams& params() const noexcept { return params_; }

  /// Hardware context at topology position @p cpu.
  [[nodiscard]] HwContext& context(LogicalCpu cpu) noexcept {
    return core(cpu.chip, cpu.core).context(cpu.context);
  }

  /// Core @p core_idx of chip @p chip_idx.
  [[nodiscard]] Core& core(int chip_idx, int core_idx) noexcept {
    return *cores_[chip_idx * params_.cores_per_chip + core_idx];
  }
  [[nodiscard]] Core& core_by_id(int global_id) noexcept {
    return *cores_[global_id];
  }
  [[nodiscard]] const Core& core_by_id(int global_id) const noexcept {
    return *cores_[global_id];
  }

  [[nodiscard]] FrontSideBus& bus(int chip_idx) noexcept {
    return buses_[static_cast<std::size_t>(chip_idx)];
  }
  /// Memory controller of node 0 (the only one on single-node topologies).
  [[nodiscard]] MemoryController& controller() noexcept { return mcs_[0]; }
  /// Memory controller of NUMA node @p node.
  [[nodiscard]] MemoryController& controller(int node) noexcept {
    return mcs_[static_cast<std::size_t>(node)];
  }

  /// The topology this machine was built from.
  [[nodiscard]] const Topology& topology() const noexcept { return topo_; }

  // ---- memory path (called by Core) ----------------------------------------
  /// Line read from @p chip_idx at time @p t: link backlog + the home
  /// node's controller backlog + that node's (possibly remote) latency.
  [[nodiscard]] double memory_read(int chip_idx, Addr line_addr,
                                   double t) noexcept {
    par_gate();
    const int node = node_of_line(line_addr);
    return buses_[static_cast<std::size_t>(chip_idx)].read_via(
        t, mcs_[static_cast<std::size_t>(node)],
        memory_base_latency(chip_idx, line_addr));
  }
  /// Asynchronous line writeback from @p chip_idx at time @p t.
  void memory_write(int chip_idx, Addr line_addr, double t) noexcept {
    par_gate();
    buses_[static_cast<std::size_t>(chip_idx)].write_via(
        t, mcs_[static_cast<std::size_t>(node_of_line(line_addr))]);
  }
  /// Uncontended load-to-use latency of @p line_addr's home node as seen
  /// from @p chip_idx (node latency, plus the remote surcharge when the
  /// node is not local to the chip).
  [[nodiscard]] double memory_base_latency(int chip_idx,
                                           Addr line_addr) const noexcept {
    const int node = node_of_line(line_addr);
    double base =
        static_cast<double>(topo_.nodes[static_cast<std::size_t>(node)].latency);
    if (home_node_[static_cast<std::size_t>(chip_idx)] != node) {
      base += remote_extra_;
    }
    return base;
  }
  /// Home NUMA node of @p line_addr: node 0 on single-node machines,
  /// page-interleaved (4 KiB granules) across nodes otherwise.
  [[nodiscard]] int node_of_line(Addr line_addr) const noexcept {
    const std::size_t n = mcs_.size();
    return n == 1 ? 0 : static_cast<int>((line_addr >> 12) % n);
  }

  /// Wall-clock virtual time: max clock over all contexts.
  [[nodiscard]] double wall_time() const noexcept;

  /// Cold restart for a new trial: caches, TLBs, predictors, buses,
  /// directory and context clocks all cleared.
  void reset() noexcept;

  // ---- coherence (called by Core) -----------------------------------------
  /// Computes the MESI state for a fill of @p line_addr into @p filler_core,
  /// performing remote downgrades/invalidations.  @p ctx is the requester
  /// (events such as remote writebacks are charged to it).
  LineState coherent_fill(int filler_core, Addr line_addr, bool is_store,
                          HwContext& ctx) noexcept;
  /// Records that @p core_id's domain no longer holds @p line_addr in its
  /// outermost cache.
  void on_l2_evict(int core_id, Addr line_addr) noexcept;
  /// Store hit on a Shared line: invalidate all remote copies.
  void store_upgrade(int core_id, Addr line_addr, HwContext& ctx) noexcept;

  // ---- coherence domains ----------------------------------------------------
  /// One domain per owner of an outermost cache instance: per core on
  /// private-outer topologies (the default), per chip when the outermost
  /// level is chip-shared.
  [[nodiscard]] int domain_count() const noexcept { return domain_count_; }
  [[nodiscard]] int domain_of_core(int core_id) const noexcept {
    return domain_of_core_[static_cast<std::size_t>(core_id)];
  }
  /// Global core ids belonging to domain @p d.
  [[nodiscard]] const std::vector<int>& domain_cores(int d) const noexcept {
    return domain_cores_[static_cast<std::size_t>(d)];
  }
  /// The outermost cache instance owned by domain @p d.
  [[nodiscard]] const SetAssocCache& domain_outer_cache(int d) const noexcept {
    return chip_domains_
               ? *chip_caches_[static_cast<std::size_t>(d)]
               : cores_[static_cast<std::size_t>(d)]->outer_cache();
  }
  /// True when domains are per-chip (shared outermost level).
  [[nodiscard]] bool chip_domains() const noexcept { return chip_domains_; }

  /// Directory introspection (tests): bitmask of *domains* holding @p line
  /// (domain == core on the default private-L2 machine).
  [[nodiscard]] unsigned holders_of(Addr line_addr) const noexcept;

  /// Full directory content, one (line address, holder bitmask) pair per
  /// tracked line — the invariant checker cross-audits it against the
  /// outermost caches.
  [[nodiscard]] std::vector<std::pair<Addr, unsigned>> directory_snapshot()
      const;

  // ---- analysis hooks (src/check/) ----------------------------------------
  /// Attaches/detaches the event-stream observer.  Only reference-path code
  /// consults it (see sim/hooks.hpp); pass nullptr to detach.  The sink is
  /// not owned and must outlive its attachment.  Each core caches the
  /// pointer so per-access call sites skip the machine indirection.
  void set_trace_sink(TraceSink* sink) noexcept {
    sink_ = sink;
    for (auto& c : cores_) c->set_trace_sink(sink);
  }
  [[nodiscard]] TraceSink* trace_sink() const noexcept { return sink_; }

  // ---- host-parallel backend (src/par/) ------------------------------------
  /// Arms the machine for one parallel region.  @p session provides the
  /// token/conflict protocol; @p domain_lp maps each coherence domain to
  /// the LP that owns it (-1 for domains idle this region).  Every cache of
  /// domain d stamps the lines it touches through session->key_slot(lp), so
  /// remote operations can compare "who touched this line last" against
  /// their own grain key.  Caller guarantees no LP thread is running yet.
  void par_begin_region(par::Session* session,
                        const std::vector<int>& domain_lp) noexcept;
  /// Disarms after the region (stamp sources revert to par::kKeyZero).
  /// Caller guarantees every LP thread is parked.
  void par_end_region() noexcept;
  [[nodiscard]] par::Session* par_session() const noexcept {
    return par_session_;
  }
  /// Orders a machine-shared operation: acquires the calling grain's token
  /// when a parallel region is active.  No-op (one predictable branch) when
  /// serial or called from a thread outside the session.
  void par_gate() noexcept {
    if (par_session_ != nullptr) par::Session::gate_current(par_session_);
  }
  /// Eviction/snoop evidence hook (see par::Session::note_evidence): the
  /// calling LP destroyed a cached copy of @p line_addr, and with it the
  /// stamp that may have covered a speculative touch.
  void par_note_evict(Addr line_addr) noexcept {
    if (par_session_ != nullptr) par_note_evict_slow(line_addr);
  }

 private:
  /// Out-of-line tail of par_note_evict (thread-state checks).
  void par_note_evict_slow(Addr line_addr) noexcept;
  /// True if domain @p d holds evidence (line stamp or tombstone) that its
  /// LP already ran past the calling token holder's key on @p line_addr.
  /// Caller holds the domain's run mutex via par::Session::RemoteLock.
  [[nodiscard]] bool par_domain_conflict(int d, Addr line_addr) const noexcept;
  /// Invalidates @p line_addr everywhere inside domain @p d; returns true
  /// when the outermost copy was dirty (implicit writeback needed).
  bool invalidate_domain(int d, Addr line_addr) noexcept;
  /// Downgrades @p line_addr to Shared inside domain @p d; returns true
  /// when the outermost copy was dirty.
  bool downgrade_domain(int d, Addr line_addr) noexcept;

  MachineParams params_;
  Topology topo_;
  std::vector<MemoryController> mcs_;  ///< one per NUMA node
  std::vector<int> home_node_;         ///< package -> local node index
  double remote_extra_ = 0;            ///< Topology::remote_node_extra_latency
  std::vector<FrontSideBus> buses_;    ///< one per package
  /// Chip-shared outermost caches (shared-L2 or L3 topologies); empty when
  /// every core owns its outer level.
  std::vector<std::unique_ptr<SetAssocCache>> chip_caches_;
  std::vector<std::unique_ptr<Core>> cores_;

  bool chip_domains_ = false;
  int domain_count_ = 0;
  std::vector<int> domain_of_core_;
  std::vector<std::vector<int>> domain_cores_;
  std::vector<int> domain_chip_;

  std::unordered_map<Addr, std::uint32_t> directory_;
  TraceSink* sink_ = nullptr;

  par::Session* par_session_ = nullptr;  ///< active parallel region, or null
  std::vector<int> domain_lp_;           ///< domain -> owning LP (par mode)
};

}  // namespace paxsim::sim
