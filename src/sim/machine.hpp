// paxsim/sim/machine.hpp
//
// The whole platform: two packages ("chips"), each with two cores and its
// own front-side bus, behind one shared memory controller; plus the
// coherence directory that keeps the four private L2s consistent.
//
// The Machine is constructed from MachineParams and is reusable across
// trials via reset(): a reset machine is bit-identical, in every observable
// counter and timing, to a freshly constructed one (the harness MachinePool
// and the engine determinism tests rely on this).  Hardware-context
// enablement (HT on/off, the kernel's `maxcpus=` masking of Table 1) is a
// property of the *study configuration*, not the machine: the harness simply
// binds threads only to allowed contexts.
//
// Threading: a Machine is confined to one host thread at a time.  The
// harness dispatches concurrent trials by giving each worker thread its own
// pooled Machine, never by sharing one.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/core.hpp"
#include "sim/hooks.hpp"
#include "sim/memsys.hpp"
#include "sim/params.hpp"
#include "sim/types.hpp"

namespace paxsim::sim {

/// Per-program bump allocator carving disjoint regions out of the simulated
/// physical address space, so that co-scheduled programs interfere in the
/// caches exactly as distinct working sets do (and never falsely share).
class AddressSpace {
 public:
  /// @param program_index  0-based program slot; each slot owns a 1-TiB
  ///        window of the simulated address space.
  explicit AddressSpace(int program_index)
      : base_((static_cast<Addr>(program_index) + 1) << 40), next_(base_) {}

  /// Allocates @p bytes aligned to @p align (power of two), never freed.
  [[nodiscard]] Addr alloc(std::size_t bytes, std::size_t align = 64) noexcept {
    next_ = (next_ + (align - 1)) & ~static_cast<Addr>(align - 1);
    const Addr a = next_;
    next_ += bytes;
    return a;
  }

  /// Base address of this program's code segment (for the trace cache and
  /// ITLB model), disjoint from the data window.
  [[nodiscard]] Addr code_base() const noexcept {
    return base_ + (static_cast<Addr>(1) << 39);
  }

  [[nodiscard]] Addr data_base() const noexcept { return base_; }
  [[nodiscard]] std::size_t bytes_allocated() const noexcept {
    return static_cast<std::size_t>(next_ - base_);
  }

 private:
  Addr base_;
  Addr next_;
};

/// The two-package dual-core Hyper-Threaded SMP.
class Machine {
 public:
  explicit Machine(const MachineParams& p);

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  [[nodiscard]] const MachineParams& params() const noexcept { return params_; }

  /// Hardware context at topology position @p cpu.
  [[nodiscard]] HwContext& context(LogicalCpu cpu) noexcept {
    return core(cpu.chip, cpu.core).context(cpu.context);
  }

  /// Core @p core_idx of chip @p chip_idx.
  [[nodiscard]] Core& core(int chip_idx, int core_idx) noexcept {
    return *cores_[chip_idx * params_.cores_per_chip + core_idx];
  }
  [[nodiscard]] Core& core_by_id(int global_id) noexcept {
    return *cores_[global_id];
  }
  [[nodiscard]] const Core& core_by_id(int global_id) const noexcept {
    return *cores_[global_id];
  }

  [[nodiscard]] FrontSideBus& bus(int chip_idx) noexcept {
    return buses_[chip_idx];
  }
  [[nodiscard]] MemoryController& controller() noexcept { return mc_; }

  /// Wall-clock virtual time: max clock over all contexts.
  [[nodiscard]] double wall_time() const noexcept;

  /// Cold restart for a new trial: caches, TLBs, predictors, buses,
  /// directory and context clocks all cleared.
  void reset() noexcept;

  // ---- coherence (called by Core) -----------------------------------------
  /// Computes the MESI state for a fill of @p line_addr into @p filler_core,
  /// performing remote downgrades/invalidations.  @p ctx is the requester
  /// (events such as remote writebacks are charged to it).
  LineState coherent_fill(int filler_core, Addr line_addr, bool is_store,
                          HwContext& ctx) noexcept;
  /// Records that @p core_id no longer holds @p line_addr in its L2.
  void on_l2_evict(int core_id, Addr line_addr) noexcept;
  /// Store hit on a Shared line: invalidate all remote copies.
  void store_upgrade(int core_id, Addr line_addr, HwContext& ctx) noexcept;

  /// Directory introspection (tests): bitmask of cores holding @p line.
  [[nodiscard]] unsigned holders_of(Addr line_addr) const noexcept;

  /// Full directory content, one (line address, holder bitmask) pair per
  /// tracked line — the invariant checker cross-audits it against the L2s.
  [[nodiscard]] std::vector<std::pair<Addr, unsigned>> directory_snapshot()
      const;

  // ---- analysis hooks (src/check/) ----------------------------------------
  /// Attaches/detaches the event-stream observer.  Only reference-path code
  /// consults it (see sim/hooks.hpp); pass nullptr to detach.  The sink is
  /// not owned and must outlive its attachment.  Each core caches the
  /// pointer so per-access call sites skip the machine indirection.
  void set_trace_sink(TraceSink* sink) noexcept {
    sink_ = sink;
    for (auto& c : cores_) c->set_trace_sink(sink);
  }
  [[nodiscard]] TraceSink* trace_sink() const noexcept { return sink_; }

 private:
  MachineParams params_;
  MemoryController mc_;
  std::vector<FrontSideBus> buses_;
  std::vector<std::unique_ptr<Core>> cores_;
  std::unordered_map<Addr, std::uint8_t> directory_;
  TraceSink* sink_ = nullptr;
};

}  // namespace paxsim::sim
