// paxsim/sim/memsys.hpp
//
// Bandwidth model of the platform's memory path: one front-side bus per
// package, feeding a shared memory controller (north bridge + dual-channel
// DDR-2).
//
// Each resource is a *time-bucketed capacity server*: virtual time is cut
// into fixed windows, each window can serve `window` occupancy-cycles, and
// a request arriving at time t inside a window waits for whatever backlog
// the window has already accumulated beyond the elapsed portion.  Compared
// with a strict FIFO (`next_free`), this has two properties the simulator
// needs:
//
//   * capacity is enforced exactly — a saturated stream drains at the
//     calibrated bytes/cycle, reproducing the paper's bandwidth ceilings —
//     because within a window the k-th line cannot be ready before
//     window_start + k * occupancy;
//   * requesters far apart in *virtual time* do not contend — two
//     co-scheduled programs are interleaved at coarse granularity, and a
//     FIFO would bill the lagging program for reservations the leading one
//     made millions of cycles "in the future", a pure simulation artifact.
//
// Calibration (paper section 3):
//   one package streaming:  3.57 GB/s read, 1.77 GB/s write  (FSB-limited)
//   both packages:          4.43 GB/s read, 2.60 GB/s write  (MC-limited)
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>

#include "sim/params.hpp"
#include "sim/types.hpp"

namespace paxsim::sim {

/// Windowed busy-time tracker: reports the utilisation of a trailing
/// ~64k-cycle window, used by the prefetch gate ("prefetch only into spare
/// bandwidth").
class UtilizationWindow {
 public:
  void account(double at, double occ) noexcept {
    busy_ += occ;
    if (at - win_start_ >= kWindow) {
      prev_density_ = win_busy_ / std::max(at - win_start_, 1.0);
      win_start_ = at;
      win_busy_ = 0;
    }
    win_busy_ += occ;
  }

  [[nodiscard]] double utilization(double now) const noexcept {
    const double horizon = std::max(now, win_start_ + 1.0);
    const double span = horizon - win_start_;
    if (span >= kWindow) return std::min(1.0, win_busy_ / span);
    const double blended = win_busy_ + prev_density_ * (kWindow - span);
    return std::min(1.0, blended / kWindow);
  }

  [[nodiscard]] double total_busy() const noexcept { return busy_; }

  void reset() noexcept {
    busy_ = win_start_ = win_busy_ = prev_density_ = 0;
  }

 private:
  static constexpr double kWindow = 65536.0;
  double busy_ = 0;
  double win_start_ = 0;
  double win_busy_ = 0;
  double prev_density_ = 0;
};

/// The time-bucketed capacity server described in the file header.
class BucketServer {
 public:
  /// Reserves @p occ occupancy-cycles at time @p t; returns the backlog
  /// delay the request waits before service begins.
  double reserve(double t, double occ) noexcept {
    const auto w = static_cast<std::int64_t>(t / kWindowCycles);
    const double elapsed = t - static_cast<double>(w) * kWindowCycles;
    double& used = buckets_[w];
    const double delay = std::max(0.0, used - elapsed);
    used += occ;
    return delay;
  }

  void reset() noexcept { buckets_.clear(); }

  /// Bucket width in cycles.  The per-window capacity reset briefly forgives
  /// backlog (roughly prefetch_depth lines per boundary), so the width is
  /// chosen large enough that the resulting bandwidth overshoot stays in the
  /// low single digits of a percent, while map growth stays negligible.
  static constexpr double kWindowCycles = 32768.0;

 private:
  std::unordered_map<std::int64_t, double> buckets_;
};

/// The shared memory controller.  All packages' misses funnel through it;
/// its occupancy per line sets the two-package aggregate bandwidth ceiling.
class MemoryController {
 public:
  explicit MemoryController(const MachineParams& p)
      : read_occ_(p.mem_read_occupancy), write_occ_(p.mem_write_occupancy) {}
  /// Controller of one explicit memory node (NUMA topologies).
  MemoryController(double read_occupancy, double write_occupancy)
      : read_occ_(read_occupancy), write_occ_(write_occupancy) {}

  /// Reserves the controller for one line transfer arriving at @p t;
  /// returns the backlog delay.
  double reserve(double t, bool is_write) noexcept {
    const double occ = is_write ? write_occ_ : read_occ_;
    const double delay = server_.reserve(t, occ);
    window_.account(t, occ);
    return delay;
  }

  /// Recent utilisation, evaluated at @p now.
  [[nodiscard]] double utilization(double now) const noexcept {
    return window_.utilization(now);
  }

  void reset() noexcept {
    server_.reset();
    window_.reset();
  }

 private:
  double read_occ_;
  double write_occ_;
  BucketServer server_;
  UtilizationWindow window_;
};

/// One package's front-side bus.
class FrontSideBus {
 public:
  FrontSideBus(const MachineParams& p, MemoryController* mc)
      : read_occ_(p.bus_read_occupancy),
        write_occ_(p.bus_write_occupancy),
        mem_latency_(static_cast<double>(p.mem_latency)),
        mc_(mc) {}

  /// A link with explicit occupancies, bound to the home node's controller
  /// and uncontended latency (topology-driven construction).
  FrontSideBus(double read_occupancy, double write_occupancy,
               MemoryController* mc, double mem_latency)
      : read_occ_(read_occupancy),
        write_occ_(write_occupancy),
        mem_latency_(mem_latency),
        mc_(mc) {}

  /// Issues a demand or prefetch line read at time @p t.  Returns the
  /// load-to-use latency: bus backlog + controller backlog + DRAM latency.
  double read(double t) noexcept { return read_via(t, *mc_, mem_latency_); }

  /// Posts a writeback at time @p t.  Writebacks drain asynchronously and do
  /// not stall the core, but they consume bus and controller capacity and
  /// therefore delay later reads in the same windows.
  void write(double t) noexcept { return write_via(t, *mc_); }

  /// read() against an explicit target controller/latency — the same link
  /// capacity serves every node reachable from this package, but the far
  /// end (which controller queues the request, and the uncontended latency)
  /// depends on the line's home node.
  double read_via(double t, MemoryController& mc, double mem_latency) noexcept {
    const double bus_delay = server_.reserve(t, read_occ_);
    window_.account(t, read_occ_);
    const double mc_delay = mc.reserve(t + bus_delay, /*is_write=*/false);
    return bus_delay + mc_delay + mem_latency;
  }

  /// write() against an explicit target controller.
  void write_via(double t, MemoryController& mc) noexcept {
    const double bus_delay = server_.reserve(t, write_occ_);
    window_.account(t, write_occ_);
    mc.reserve(t + bus_delay, /*is_write=*/true);
  }

  /// Recent utilisation of this bus, evaluated at @p now.  Gates the
  /// hardware prefetcher.
  [[nodiscard]] double utilization(double now) const noexcept {
    return window_.utilization(now);
  }

  void reset() noexcept {
    server_.reset();
    window_.reset();
  }

 private:
  double read_occ_;
  double write_occ_;
  double mem_latency_;
  MemoryController* mc_;
  BucketServer server_;
  UtilizationWindow window_;
};

}  // namespace paxsim::sim
