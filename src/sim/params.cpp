#include "sim/params.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace paxsim::sim {

const char* check_mode_name(CheckMode m) noexcept {
  switch (m) {
    case CheckMode::kOff: return "off";
    case CheckMode::kRace: return "race";
    case CheckMode::kInvariants: return "invariants";
    case CheckMode::kFull: return "full";
  }
  return "?";
}

bool parse_check_mode(const char* s, CheckMode& out) noexcept {
  for (const CheckMode m : {CheckMode::kOff, CheckMode::kRace,
                            CheckMode::kInvariants, CheckMode::kFull}) {
    if (std::strcmp(s, check_mode_name(m)) == 0) {
      out = m;
      return true;
    }
  }
  return false;
}

const char* trace_mode_name(TraceMode m) noexcept {
  switch (m) {
    case TraceMode::kOff: return "off";
    case TraceMode::kStacks: return "stacks";
    case TraceMode::kEvents: return "events";
    case TraceMode::kFull: return "full";
  }
  return "?";
}

bool parse_trace_mode(const char* s, TraceMode& out) noexcept {
  for (const TraceMode m : {TraceMode::kOff, TraceMode::kStacks,
                            TraceMode::kEvents, TraceMode::kFull}) {
    if (std::strcmp(s, trace_mode_name(m)) == 0) {
      out = m;
      return true;
    }
  }
  return false;
}

namespace {

std::size_t scale_down(std::size_t v, double factor, std::size_t floor_v) {
  const double scaled = static_cast<double>(v) / factor;
  std::size_t out = 1;
  while (out * 2 <= static_cast<std::size_t>(scaled)) out *= 2;  // round to pow2
  return std::max(out, floor_v);
}

}  // namespace

MachineParams MachineParams::scaled(double factor) const {
  MachineParams p = *this;
  if (factor <= 1.0) return p;
  p.l1d.size_bytes = scale_down(l1d.size_bytes, factor, l1d.line_bytes * l1d.ways);
  p.l2.size_bytes = scale_down(l2.size_bytes, factor, l2.line_bytes * l2.ways);
  p.trace_cache_uops = scale_down(trace_cache_uops, factor,
                                  trace_uops_per_line * trace_cache_ways);
  p.itlb_entries = scale_down(itlb_entries, factor, itlb_ways);
  p.dtlb_entries = scale_down(dtlb_entries, factor, dtlb_ways);
  return p;
}

}  // namespace paxsim::sim
