#include "sim/params.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "sim/topology.hpp"

namespace paxsim::sim {

const char* check_mode_name(CheckMode m) noexcept {
  switch (m) {
    case CheckMode::kOff: return "off";
    case CheckMode::kRace: return "race";
    case CheckMode::kInvariants: return "invariants";
    case CheckMode::kFull: return "full";
  }
  return "?";
}

bool parse_check_mode(const char* s, CheckMode& out) noexcept {
  for (const CheckMode m : {CheckMode::kOff, CheckMode::kRace,
                            CheckMode::kInvariants, CheckMode::kFull}) {
    if (std::strcmp(s, check_mode_name(m)) == 0) {
      out = m;
      return true;
    }
  }
  return false;
}

const char* trace_mode_name(TraceMode m) noexcept {
  switch (m) {
    case TraceMode::kOff: return "off";
    case TraceMode::kStacks: return "stacks";
    case TraceMode::kEvents: return "events";
    case TraceMode::kFull: return "full";
  }
  return "?";
}

bool parse_trace_mode(const char* s, TraceMode& out) noexcept {
  for (const TraceMode m : {TraceMode::kOff, TraceMode::kStacks,
                            TraceMode::kEvents, TraceMode::kFull}) {
    if (std::strcmp(s, trace_mode_name(m)) == 0) {
      out = m;
      return true;
    }
  }
  return false;
}

namespace {

std::size_t scale_down(std::size_t v, double factor, std::size_t floor_v) {
  const double scaled = static_cast<double>(v) / factor;
  std::size_t out = 1;
  while (out * 2 <= static_cast<std::size_t>(scaled)) out *= 2;  // round to pow2
  return std::max(out, floor_v);
}

}  // namespace

MachineParams MachineParams::scaled(double factor) const {
  MachineParams p = *this;
  if (factor <= 1.0) return p;
  p.l1d.size_bytes = scale_down(l1d.size_bytes, factor, l1d.line_bytes * l1d.ways);
  p.l2.size_bytes = scale_down(l2.size_bytes, factor, l2.line_bytes * l2.ways);
  p.trace_cache_uops = scale_down(trace_cache_uops, factor,
                                  trace_uops_per_line * trace_cache_ways);
  p.itlb_entries = scale_down(itlb_entries, factor, itlb_ways);
  p.dtlb_entries = scale_down(dtlb_entries, factor, dtlb_ways);
  if (topology != nullptr) {
    auto scaled_topo = std::make_shared<Topology>(*topology);
    for (TopoCacheLevel& lv : scaled_topo->levels) {
      lv.geometry.size_bytes =
          scale_down(lv.geometry.size_bytes, factor,
                     lv.geometry.line_bytes * lv.geometry.ways);
    }
    p.set_topology(std::move(scaled_topo));
  }
  return p;
}

MachineParams& MachineParams::set_topology(std::shared_ptr<const Topology> topo) {
  topology = std::move(topo);
  if (topology == nullptr) return *this;
  const Topology& t = *topology;
  chips = t.packages;
  cores_per_chip = t.cores_per_package;
  contexts_per_core = t.smt_per_core;
  bus_read_occupancy = t.link_read_occupancy;
  bus_write_occupancy = t.link_write_occupancy;
  if (!t.levels.empty()) {
    l1d = t.levels[0].geometry;
    l1_latency = t.levels[0].latency;
  }
  if (t.levels.size() > 1) {
    l2 = t.levels[1].geometry;
    l2_latency = t.levels[1].latency;
  }
  if (!t.nodes.empty()) {
    mem_latency = t.nodes[0].latency;
    mem_read_occupancy = t.nodes[0].read_occupancy;
    mem_write_occupancy = t.nodes[0].write_occupancy;
  }
  return *this;
}

Topology MachineParams::resolved_topology() const {
  if (topology != nullptr) return *topology;
  Topology t;
  t.name = "default";
  t.packages = chips;
  t.cores_per_package = cores_per_chip;
  t.smt_per_core = contexts_per_core;
  t.interconnect = Interconnect::kSharedFsb;
  t.link_read_occupancy = bus_read_occupancy;
  t.link_write_occupancy = bus_write_occupancy;
  t.remote_node_extra_latency = 0;
  t.levels = {
      {"L1D", l1d, SharingScope::kPerCore, l1_latency},
      {"L2", l2, SharingScope::kPerCore, l2_latency},
  };
  MemNode node;
  node.latency = mem_latency;
  node.read_occupancy = mem_read_occupancy;
  node.write_occupancy = mem_write_occupancy;
  for (int p2 = 0; p2 < chips; ++p2) node.home_packages.push_back(p2);
  t.nodes = {std::move(node)};
  return t;
}

}  // namespace paxsim::sim
