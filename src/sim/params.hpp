// paxsim/sim/params.hpp
//
// Machine parameterisation, calibrated against the paper's Section 3:
// a Dell PowerEdge 2850 with two dual-core 2.8 GHz Hyper-Threaded Intel Xeon
// (Paxville) packages, 16 KB L1D + 12k-uop trace cache + TLBs shared by the
// two contexts of each core, a private 2 MB L2 per core, one front-side bus
// per package, and dual-channel DDR-2 memory.
//
// Calibration anchors (paper values):
//   L1 latency 1.43 ns  ->  4 cycles @ 2.8 GHz
//   L2 latency 10.6 ns  -> 30 cycles
//   memory    136.85 ns -> 383 cycles
//   read bandwidth  3.57 GB/s (one package) / 4.43 GB/s (both packages)
//   write bandwidth 1.77 GB/s (one package) / 2.60 GB/s (both packages)
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "sim/types.hpp"

namespace paxsim::sim {

struct Topology;  // sim/topology.hpp

/// Which runtime analyses (src/check/) observe a run.  Any mode other than
/// kOff routes every memory access through the reference (out-of-line) path
/// so the attached checker sees the complete event stream; kOff leaves the
/// inlined fast path untouched and costs nothing.
enum class CheckMode : std::uint8_t {
  kOff,         ///< no analysis; the default
  kRace,        ///< happens-before data-race detection only
  kInvariants,  ///< machine-state invariant auditing only
  kFull,        ///< both analyses
};

/// Stable lowercase name ("off", "race", "invariants", "full").
[[nodiscard]] const char* check_mode_name(CheckMode m) noexcept;

/// Parses a check-mode name; returns true on success.
bool parse_check_mode(const char* s, CheckMode& out) noexcept;

/// Which tracing layers (src/trace/) observe a run.  Any mode other than
/// kOff routes every memory access through the reference (out-of-line) path
/// so the attached tracer sees the complete event stream; kOff leaves the
/// inlined fast path untouched and costs nothing (bit-identical,
/// test-enforced, like CheckMode::kOff).
enum class TraceMode : std::uint8_t {
  kOff,     ///< no tracing; the default
  kStacks,  ///< CPI stall-attribution stacks only
  kEvents,  ///< ring-buffered event recording only
  kFull,    ///< both
};

/// Stable lowercase name ("off", "stacks", "events", "full").
[[nodiscard]] const char* trace_mode_name(TraceMode m) noexcept;

/// Parses a trace-mode name; returns true on success.
bool parse_trace_mode(const char* s, TraceMode& out) noexcept;

/// Geometry of one set-associative structure.
struct CacheGeometry {
  std::size_t size_bytes = 0;  ///< total capacity
  std::size_t line_bytes = 64; ///< line (block) size
  std::size_t ways = 8;        ///< associativity

  [[nodiscard]] constexpr std::size_t lines() const noexcept {
    return size_bytes / line_bytes;
  }
  [[nodiscard]] constexpr std::size_t sets() const noexcept {
    return lines() / ways;
  }
};

/// Every tunable of the simulated machine.  `MachineParams{}` is the
/// calibrated Paxville SMP; `scaled()` shrinks capacities together with the
/// workload classes so that class-B cache-pressure regimes are preserved at
/// tractable simulation cost (working-set / capacity ratios are invariant).
struct MachineParams {
  // ---- topology -----------------------------------------------------------
  int chips = 2;              ///< physical packages
  int cores_per_chip = 2;     ///< cores per package
  int contexts_per_core = 2;  ///< SMT contexts per core (when HT is on)

  double clock_ghz = 2.8;     ///< core clock

  // ---- per-core structures (shared by that core's SMT contexts) -----------
  CacheGeometry l1d{16 * 1024, 64, 8};      ///< L1 data cache
  CacheGeometry l2{2 * 1024 * 1024, 64, 8}; ///< private unified L2
  std::size_t trace_cache_uops = 12 * 1024; ///< trace cache capacity in uops
  std::size_t trace_uops_per_line = 6;      ///< uops per trace line
  std::size_t trace_cache_ways = 8;         ///< trace cache associativity
  /// NetBurst MT mode statically halves the trace cache per context.
  bool trace_mt_static_partition = true;
  std::size_t itlb_entries = 128;           ///< instruction TLB entries
  std::size_t itlb_ways = 16;               ///< ITLB associativity
  std::size_t dtlb_entries = 64;            ///< data TLB entries
  std::size_t dtlb_ways = 16;               ///< DTLB associativity
  std::size_t page_bytes = 4096;            ///< page size

  // ---- latencies (cycles) --------------------------------------------------
  Cycle l1_latency = 4;        ///< load-to-use, L1 hit
  Cycle l2_latency = 30;       ///< load-to-use, L2 hit
  Cycle mem_latency = 383;     ///< load-to-use, DRAM (uncontended)
  Cycle tlb_walk_penalty = 30; ///< page-walk stall per TLB miss
  Cycle mispredict_penalty = 30; ///< pipeline flush (31-stage Prescott pipe)
  Cycle trace_miss_penalty = 10; ///< decode path per missing trace line

  // ---- issue model ---------------------------------------------------------
  /// Cycles one context needs per uop when it has the core to itself.
  /// 0.75 cyc/uop = 1.33 uops/cycle sustained, in line with measured NPB IPC
  /// on the NetBurst core.
  double cycles_per_uop = 0.75;
  /// Multiplier on `cycles_per_uop` for each context when both contexts of a
  /// core are active (Hyper-Threading).  2.25 means two FP-saturated
  /// contexts together sustain *less* (2/2.25 = 0.89x) than one alone — the
  /// NetBurst MT-mode reality for issue-bound code (partitioned uop queue,
  /// replay storms; Tuck & Tullsen observed outright slowdowns).  Hyper-
  /// Threading's real benefit therefore comes from overlapping one
  /// context's memory stalls with the other's execution, which this model
  /// produces naturally: stalls advance only the stalled context's clock.
  /// This is what makes latency-bound CG the one benchmark that still wins
  /// at full HT load while issue-bound FT/BT lose — the paper's Figure 3.
  double smt_issue_stretch = 2.25;

  // ---- memory-level parallelism --------------------------------------------
  /// Fraction of the L2-hit latency exposed for an *independent* load (an
  /// out-of-order window hides the rest).  Chained loads expose it fully.
  double l2_overlap = 0.35;
  /// Fraction of the DRAM latency exposed for an independent load.
  double mem_overlap = 0.38;
  /// Fraction of the miss latency exposed for stores (store buffer drains
  /// mostly off the critical path).
  double store_overlap = 0.12;

  /// MT-mode (both contexts active) variants of the overlap factors.
  /// NetBurst statically partitions the load/store buffers and the ROB
  /// between the two contexts, halving each thread's memory-level
  /// parallelism: independent-miss streams expose more of their latency.
  /// Chained loads are unaffected (they were fully exposed already), which
  /// is precisely why the paper finds the irregular, latency-bound CG to be
  /// the one application that still profits from HT at full machine load.
  double mt_l2_overlap = 0.50;
  double mt_mem_overlap = 0.55;
  double mt_store_overlap = 0.18;

  // ---- bus / memory bandwidth ---------------------------------------------
  /// FSB occupancy per 64-byte line transferred, per package.
  /// 3.57 GB/s @ 2.8 GHz = 1.275 B/cycle -> 50.2 cycles/line.  A *stored*
  /// stream moves two lines per line of data (read-for-ownership plus the
  /// eventual writeback), which is exactly why the paper measures write
  /// bandwidth at roughly half the read bandwidth (1.77 vs 3.57 GB/s).
  double bus_read_occupancy = 50.2;
  /// FSB occupancy per line written back (same wires, same size): 50.2.
  double bus_write_occupancy = 50.2;
  /// Shared memory-controller occupancy per line read.
  /// Aggregate 4.43 GB/s -> 40.4 cycles/line.
  double mem_read_occupancy = 40.4;
  /// Shared memory-controller occupancy per line written.  Calibrated so
  /// the two-package write bandwidth (RFO read + writeback per line:
  /// 64 B / (40.4 + 28.4) cycles) reproduces the paper's 2.60 GB/s.
  double mem_write_occupancy = 28.4;

  // ---- prefetcher ----------------------------------------------------------
  int prefetch_streams = 16;        ///< stream-table entries per core
  int prefetch_depth = 8;           ///< lines fetched ahead per trigger (covers
                                    ///< the 383-cycle DRAM latency at ~50-cycle
                                    ///< line spacing)
  int prefetch_trigger = 2;         ///< consecutive stride hits to arm
  double prefetch_bus_threshold = 0.95; ///< max recent bus utilisation to prefetch

  // ---- front-end / code layout ---------------------------------------------
  std::size_t code_block_bytes = 256; ///< average static footprint per block

  // ---- simulator execution (not a property of the modelled machine) --------
  /// Enables the core's inlined L1-hit/DTLB-hit fast path.  Results are
  /// bit-identical either way — the fast path replays exactly the state
  /// effects the out-of-line path would have (enforced by the differential
  /// tests); the reference path exists to prove that and to debug against.
  /// Building with -DPAXSIM_REFERENCE_PATH=ON flips the default to false.
#ifdef PAXSIM_REFERENCE_PATH
  bool fast_path = false;
#else
  bool fast_path = true;
#endif

  /// Opt-in analysis mode (see CheckMode).  Any mode but kOff overrides
  /// `fast_path`: checked runs execute on the reference path, whose state
  /// trajectory is bit-identical, so the analyses observe every access
  /// without perturbing what they measure.
  CheckMode check_mode = CheckMode::kOff;

  /// Opt-in reuse-profile collection (src/model/).  Like check_mode, any
  /// profiled run executes on the reference path so the attached
  /// model::Profiler sees the complete access/fetch stream; the state
  /// trajectory — and therefore every counter — is bit-identical to an
  /// unprofiled run (test-enforced).  Off by default and free when off.
  bool profile = false;

  /// Opt-in execution tracing (src/trace/).  Like check_mode, any mode but
  /// kOff routes the machine through the reference path so the attached
  /// trace::Tracer observes every access, fetch and accumulator flush.  The
  /// virtual-time trajectory is unchanged; --trace=off stays bit-identical
  /// to a build without the tracing subsystem (test-enforced).
  TraceMode trace_mode = TraceMode::kOff;

  /// Optional first-class machine description (sim/topology.hpp).  Null
  /// means "the calibrated Paxville shape described by the scalar fields
  /// above" — the seed machine, bit-identical to the pre-topology
  /// simulator.  When set (via set_topology), the topology is authoritative
  /// for structure (counts, cache levels, nodes, links) and the mirror
  /// scalars above are kept in sync so existing readers stay correct.
  std::shared_ptr<const Topology> topology;

  /// Installs @p topo and syncs the mirror scalars (chips/cores/contexts,
  /// l1d/l2 geometry + latencies, bus/memory occupancies, mem_latency) from
  /// it.  Returns *this for chaining.
  MachineParams& set_topology(std::shared_ptr<const Topology> topo);

  /// The topology this machine is built from: `*topology` when set,
  /// otherwise the Paxville-shaped description of the scalar fields.
  [[nodiscard]] Topology resolved_topology() const;

  /// Returns a copy with all capacity-like quantities divided by @p factor
  /// (latencies, bandwidth-per-cycle and issue parameters untouched).
  /// Associativities are preserved; entry counts are floored at the
  /// associativity so structures stay well-formed.  An attached topology's
  /// cache levels scale identically.
  [[nodiscard]] MachineParams scaled(double factor) const;

  /// Total logical processors when HT is enabled.
  [[nodiscard]] int total_contexts() const noexcept {
    return chips * cores_per_chip * contexts_per_core;
  }
  /// Total physical cores.
  [[nodiscard]] int total_cores() const noexcept {
    return chips * cores_per_chip;
  }
};

}  // namespace paxsim::sim
