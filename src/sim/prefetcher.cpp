#include "sim/prefetcher.hpp"

#include <cstdlib>

namespace paxsim::sim {

void StreamPrefetcher::on_demand_miss(Addr line_addr,
                                      std::vector<PrefetchRequest>& out) {
  ++tick_;
  const std::int64_t window = 8 * line_bytes_;  // stream-association window

  // 1. Exact continuation of an armed stream?
  for (auto& s : streams_) {
    if (!s.valid || s.stride == 0) continue;
    if (static_cast<std::int64_t>(line_addr) -
            static_cast<std::int64_t>(s.last_line) == s.stride) {
      s.last_line = line_addr;
      s.last_use = tick_;
      if (++s.hits >= trigger_) {
        for (int d = 1; d <= depth_; ++d) {
          out.push_back(PrefetchRequest{
              static_cast<Addr>(static_cast<std::int64_t>(line_addr) +
                                s.stride * d)});
        }
      }
      return;
    }
  }
  // 2. Near an existing stream head: re-learn its stride.
  for (auto& s : streams_) {
    if (!s.valid) continue;
    const std::int64_t delta = static_cast<std::int64_t>(line_addr) -
                               static_cast<std::int64_t>(s.last_line);
    if (delta != 0 && std::llabs(delta) <= window) {
      s.stride = delta;
      s.last_line = line_addr;
      s.hits = 1;
      s.last_use = tick_;
      return;
    }
  }
  // 3. Allocate the least-recently-used stream slot.
  Stream* victim = &streams_[0];
  for (auto& s : streams_) {
    if (!s.valid) {
      victim = &s;
      break;
    }
    if (s.last_use < victim->last_use) victim = &s;
  }
  *victim = Stream{true, line_addr, 0, 0, tick_};
}

}  // namespace paxsim::sim
