// paxsim/sim/prefetcher.hpp
//
// Per-core hardware stream prefetcher.  Watches the L2 demand-miss stream;
// after `trigger` consecutive constant-stride misses within a stream it
// speculatively reads the next `depth` lines into the L2 — but only while
// the package bus has spare bandwidth.  Prefetch reads are counted as their
// own FSB transaction class, which is exactly the "% prefetching bus
// accesses" panel of Figures 2 and 4.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/params.hpp"
#include "sim/types.hpp"

namespace paxsim::sim {

/// A prefetch the engine wants issued (line-aligned address).
struct PrefetchRequest {
  Addr line_addr = 0;
};

/// Stride-stream detector.  Pure policy: the Core performs the actual bus
/// reads and fills so that timing and counters stay in one place.
class StreamPrefetcher {
 public:
  explicit StreamPrefetcher(const MachineParams& p)
      : streams_(static_cast<std::size_t>(p.prefetch_streams)),
        depth_(p.prefetch_depth),
        trigger_(p.prefetch_trigger),
        line_bytes_(static_cast<std::int64_t>(p.l2.line_bytes)) {}

  /// Feeds one L2 demand miss; appends any prefetch requests to @p out.
  void on_demand_miss(Addr line_addr, std::vector<PrefetchRequest>& out);

  void reset() noexcept {
    for (auto& s : streams_) s = Stream{};
    tick_ = 0;
  }

 private:
  struct Stream {
    bool valid = false;
    Addr last_line = 0;
    std::int64_t stride = 0;  // bytes, multiple of line size
    int hits = 0;
    std::uint64_t last_use = 0;
  };

  std::vector<Stream> streams_;
  int depth_;
  int trigger_;
  std::int64_t line_bytes_;
  std::uint64_t tick_ = 0;
};

}  // namespace paxsim::sim
