#include "sim/tlb.hpp"

#include <algorithm>

namespace paxsim::sim {
namespace {

CacheGeometry tlb_geometry(std::size_t entries, std::size_t ways,
                           std::size_t page_bytes) {
  ways = std::min(ways, entries);
  // Entries and ways are powers of two by construction of MachineParams.
  return CacheGeometry{entries * page_bytes, page_bytes, ways};
}

}  // namespace

Tlb::Tlb(std::size_t entries, std::size_t ways, std::size_t page_bytes)
    : cache_(tlb_geometry(entries, ways, page_bytes)) {}

}  // namespace paxsim::sim
