// paxsim/sim/tlb.hpp
//
// Instruction and data TLB models.  A TLB is a set-associative cache of page
// translations; we reuse SetAssocCache keyed on page-aligned addresses.
// Misses cost a fixed page-walk penalty charged by the core.
#pragma once

#include "sim/cache.hpp"
#include "sim/params.hpp"
#include "sim/types.hpp"

namespace paxsim::sim {

/// A translation lookaside buffer.  Shared between the two SMT contexts of a
/// core (as on the Xeon), so cross-thread translation pressure is emergent.
class Tlb {
 public:
  /// @param entries  total translations held
  /// @param ways     associativity (clamped to `entries`)
  /// @param page_bytes page size; must be a power of two
  Tlb(std::size_t entries, std::size_t ways, std::size_t page_bytes);

  /// Looks up the page of @p addr; inserts it on miss. Returns true on hit.
  bool access(Addr addr) noexcept {
    if (cache_.probe(addr, /*is_store=*/false).hit) return true;
    cache_.fill(addr, LineState::kExclusive, /*prefetched=*/false);
    return false;
  }

  /// Fast-path handle support (see SetAssocCache::LineRef): the core caches
  /// the translation entry access() last touched and replays the equivalent
  /// of a hitting access() — probe(addr, false) — without the set walk.
  [[nodiscard]] SetAssocCache::LineRef last_ref() const noexcept {
    return cache_.last_ref();
  }
  [[nodiscard]] bool fast_check(SetAssocCache::LineRef ref,
                                Addr addr) const noexcept {
    return cache_.fast_check(ref, addr, /*is_store=*/false);
  }
  void fast_commit(SetAssocCache::LineRef ref) noexcept {
    cache_.fast_commit(ref, /*is_store=*/false);
  }

  /// Whole-TLB mutation generation (see SetAssocCache::mutation_gen) — the
  /// zero-dereference validity tier.  Coarse on purpose: a TLB mutates only
  /// on a miss's fill or on reset, both rare, so one member load buys a
  /// proof that every outstanding translation handle is still valid.
  [[nodiscard]] std::uint64_t mutation_gen() const noexcept {
    return cache_.mutation_gen();
  }

  /// LRU clock of the underlying cache (ticks on every access()).
  [[nodiscard]] std::uint64_t lru_clock() const noexcept {
    return cache_.lru_clock();
  }

  /// Drops all translations.
  void reset() noexcept { cache_.reset(); }

  /// Read-only view of the underlying translation table (invariant checker:
  /// every live entry must translate a page the access stream has touched).
  [[nodiscard]] const SetAssocCache& table() const noexcept { return cache_; }

  [[nodiscard]] std::size_t entries() const noexcept {
    return cache_.sets() * cache_.ways();
  }
  [[nodiscard]] std::size_t page_bytes() const noexcept {
    return cache_.line_bytes();
  }

 private:
  SetAssocCache cache_;
};

}  // namespace paxsim::sim
