// paxsim/sim/tlb.hpp
//
// Instruction and data TLB models.  A TLB is a set-associative cache of page
// translations; we reuse SetAssocCache keyed on page-aligned addresses.
// Misses cost a fixed page-walk penalty charged by the core.
#pragma once

#include "sim/cache.hpp"
#include "sim/params.hpp"
#include "sim/types.hpp"

namespace paxsim::sim {

/// A translation lookaside buffer.  Shared between the two SMT contexts of a
/// core (as on the Xeon), so cross-thread translation pressure is emergent.
class Tlb {
 public:
  /// @param entries  total translations held
  /// @param ways     associativity (clamped to `entries`)
  /// @param page_bytes page size; must be a power of two
  Tlb(std::size_t entries, std::size_t ways, std::size_t page_bytes);

  /// Looks up the page of @p addr; inserts it on miss. Returns true on hit.
  bool access(Addr addr) noexcept;

  /// Drops all translations.
  void reset() noexcept { cache_.reset(); }

  [[nodiscard]] std::size_t entries() const noexcept {
    return cache_.sets() * cache_.ways();
  }
  [[nodiscard]] std::size_t page_bytes() const noexcept {
    return cache_.line_bytes();
  }

 private:
  SetAssocCache cache_;
};

}  // namespace paxsim::sim
