// paxsim/sim/topology.cpp
#include "sim/topology.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <fstream>
#include <map>
#include <sstream>

#include "report/json.hpp"

namespace paxsim::sim {

const char* sharing_scope_name(SharingScope s) noexcept {
  switch (s) {
    case SharingScope::kPerContext: return "context";
    case SharingScope::kPerCore: return "core";
    case SharingScope::kPerChip: return "chip";
  }
  return "?";
}

const char* interconnect_name(Interconnect i) noexcept {
  switch (i) {
    case Interconnect::kSharedFsb: return "shared_fsb";
    case Interconnect::kPointToPoint: return "point_to_point";
  }
  return "?";
}

int Topology::home_node_of(int package) const noexcept {
  for (std::size_t n = 0; n < nodes.size(); ++n) {
    for (const int p : nodes[n].home_packages) {
      if (p == package) return static_cast<int>(n);
    }
  }
  return 0;
}

bool Topology::has_chip_shared_cache() const noexcept {
  for (const TopoCacheLevel& lv : levels) {
    if (lv.scope == SharingScope::kPerChip) return true;
  }
  return false;
}

namespace {

bool fail(std::string* error, std::string why) {
  if (error != nullptr) *error = std::move(why);
  return false;
}

}  // namespace

bool Topology::validate(std::string* error) const {
  if (packages < 1 || packages > 16) {
    return fail(error, "packages must be in [1,16]");
  }
  if (cores_per_package < 1 || cores_per_package > 16) {
    return fail(error, "cores_per_package must be in [1,16]");
  }
  if (smt_per_core < 1 || smt_per_core > 4) {
    return fail(error, "smt_per_core must be in [1,4]");
  }
  if (total_cores() > 32) {
    return fail(error, "more than 32 cores (directory width)");
  }
  if (total_contexts() > 64) return fail(error, "more than 64 contexts");
  if (link_read_occupancy <= 0 || link_write_occupancy <= 0) {
    return fail(error, "link occupancies must be positive");
  }
  if (levels.empty()) return fail(error, "no cache levels");
  if (levels.size() > 4) return fail(error, "more than 4 cache levels");
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const TopoCacheLevel& lv = levels[i];
    const std::string tag = "level " + std::to_string(i) +
                            (lv.name.empty() ? "" : " (" + lv.name + ")");
    if (lv.geometry.ways == 0) return fail(error, tag + ": zero-way cache");
    if (!is_pow2(lv.geometry.line_bytes) || lv.geometry.line_bytes < 8) {
      return fail(error, tag + ": line size must be a power of two >= 8");
    }
    const std::size_t way_bytes = lv.geometry.line_bytes * lv.geometry.ways;
    if (lv.geometry.size_bytes < way_bytes ||
        lv.geometry.size_bytes % way_bytes != 0) {
      return fail(error,
                  tag + ": capacity must be a multiple of line_bytes*ways");
    }
    if (lv.latency < 1) return fail(error, tag + ": latency must be >= 1");
    if (i > 0) {
      if (lv.geometry.size_bytes < levels[i - 1].geometry.size_bytes) {
        return fail(error, tag + ": shrinks relative to the inner level");
      }
      if (lv.geometry.line_bytes != levels[i - 1].geometry.line_bytes) {
        return fail(error, tag + ": line size differs from the inner level");
      }
      if (lv.latency < levels[i - 1].latency) {
        return fail(error, tag + ": faster than the inner level");
      }
      if (static_cast<int>(lv.scope) < static_cast<int>(levels[i - 1].scope)) {
        return fail(error, tag + ": sharing scope narrows going outward");
      }
    }
  }
  if (nodes.empty()) return fail(error, "no memory nodes");
  std::vector<int> homed(static_cast<std::size_t>(packages), 0);
  for (std::size_t n = 0; n < nodes.size(); ++n) {
    const MemNode& node = nodes[n];
    const std::string tag = "node " + std::to_string(n);
    if (node.latency < 1) return fail(error, tag + ": latency must be >= 1");
    if (node.read_occupancy <= 0 || node.write_occupancy <= 0) {
      return fail(error, tag + ": occupancies must be positive");
    }
    if (node.home_packages.empty()) {
      return fail(error, tag + ": orphan NUMA node (homes no package)");
    }
    for (const int p : node.home_packages) {
      if (p < 0 || p >= packages) {
        return fail(error, tag + ": homes nonexistent package " +
                               std::to_string(p));
      }
      ++homed[static_cast<std::size_t>(p)];
    }
  }
  for (int p = 0; p < packages; ++p) {
    if (homed[static_cast<std::size_t>(p)] != 1) {
      return fail(error, "package " + std::to_string(p) +
                             " must be homed by exactly one node");
    }
  }
  return true;
}

bool Topology::validate_for_sim(std::string* error) const {
  if (!validate(error)) return false;
  if (levels.size() < 2 || levels.size() > 3) {
    return fail(error, "simulator supports 2- or 3-level data hierarchies");
  }
  if (levels[0].scope != SharingScope::kPerCore) {
    return fail(error,
                "simulator requires a per-core innermost level (per-context "
                "data caches are model-only)");
  }
  if (levels.size() == 3) {
    if (levels[1].scope != SharingScope::kPerCore ||
        levels[2].scope != SharingScope::kPerChip) {
      return fail(error,
                  "3-level hierarchies must be per-core L2 + per-chip L3");
    }
  } else if (levels[1].scope == SharingScope::kPerContext) {
    return fail(error, "outer level cannot be per-context");
  }
  if (smt_per_core > 2) {
    return fail(error, "simulator supports at most 2 SMT contexts per core");
  }
  return true;
}

std::string Topology::fingerprint() const {
  std::ostringstream os;
  os << name << ";" << packages << "x" << cores_per_package << "x"
     << smt_per_core << ";" << interconnect_name(interconnect) << ";"
     << link_read_occupancy << "/" << link_write_occupancy << ";+"
     << remote_node_extra_latency;
  for (const TopoCacheLevel& lv : levels) {
    os << ";" << lv.name << ":" << lv.geometry.size_bytes << "/"
       << lv.geometry.line_bytes << "/" << lv.geometry.ways << "/"
       << sharing_scope_name(lv.scope) << "/" << lv.latency;
  }
  for (const MemNode& node : nodes) {
    os << ";N:" << node.latency << "/" << node.read_occupancy << "/"
       << node.write_occupancy << "/[";
    for (std::size_t i = 0; i < node.home_packages.size(); ++i) {
      os << (i > 0 ? "," : "") << node.home_packages[i];
    }
    os << "]";
  }
  return os.str();
}

std::string Topology::to_json() const {
  std::ostringstream os;
  report::Json j(os);
  j.begin_document("topology");
  j.field("name", std::string_view(name));
  j.field("packages", packages);
  j.field("cores_per_package", cores_per_package);
  j.field("smt_per_core", smt_per_core);
  j.field("interconnect", interconnect_name(interconnect));
  j.field("link_read_occupancy", link_read_occupancy);
  j.field("link_write_occupancy", link_write_occupancy);
  j.field("remote_node_extra_latency", remote_node_extra_latency);
  j.key("levels").array();
  for (const TopoCacheLevel& lv : levels) {
    j.object();
    j.field("name", std::string_view(lv.name));
    j.field("size_bytes", static_cast<std::uint64_t>(lv.geometry.size_bytes));
    j.field("line_bytes", static_cast<std::uint64_t>(lv.geometry.line_bytes));
    j.field("ways", static_cast<std::uint64_t>(lv.geometry.ways));
    j.field("scope", sharing_scope_name(lv.scope));
    j.field("latency", lv.latency);
    j.end();
  }
  j.end();
  j.key("nodes").array();
  for (const MemNode& node : nodes) {
    j.object();
    j.field("latency", node.latency);
    j.field("read_occupancy", node.read_occupancy);
    j.field("write_occupancy", node.write_occupancy);
    j.key("home_packages").array();
    for (const int p : node.home_packages) j.value(p);
    j.end();
    j.end();
  }
  j.end();
  j.finish();
  return os.str();
}

// ---------------------------------------------------------------------------
// Minimal JSON reader for topology files.  The repo's report layer only
// writes JSON; topology descriptions are the one thing paxsim *reads*, so
// this stays a private recursive-descent parser scoped to the schema above
// (objects, arrays, strings, numbers, booleans, null — no surprises).

namespace {

struct JValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<JValue> arr;
  std::map<std::string, JValue> obj;
};

class JsonReader {
 public:
  JsonReader(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  bool parse(JValue* out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters");
    return true;
  }

 private:
  bool fail(const std::string& why) {
    if (error_ != nullptr) {
      *error_ = "JSON parse error at offset " + std::to_string(pos_) + ": " +
                why;
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool value(JValue* out) {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return object(out);
    if (c == '[') return array(out);
    if (c == '"') {
      out->kind = JValue::Kind::kString;
      return string(&out->str);
    }
    if (literal("true")) {
      out->kind = JValue::Kind::kBool;
      out->b = true;
      return true;
    }
    if (literal("false")) {
      out->kind = JValue::Kind::kBool;
      out->b = false;
      return true;
    }
    if (literal("null")) {
      out->kind = JValue::Kind::kNull;
      return true;
    }
    return number(out);
  }

  bool number(JValue* out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected a value");
    try {
      out->num = std::stod(std::string(text_.substr(start, pos_ - start)));
    } catch (...) {
      return fail("malformed number");
    }
    out->kind = JValue::Kind::kNumber;
    return true;
  }

  bool string(std::string* out) {
    if (text_[pos_] != '"') return fail("expected '\"'");
    ++pos_;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case '"': case '\\': case '/': c = e; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
            // Topology names are ASCII; map non-ASCII escapes to '?'.
            unsigned cp = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              cp <<= 4;
              if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("bad \\u escape");
            }
            c = cp < 0x80 ? static_cast<char>(cp) : '?';
            break;
          }
          default: return fail("unknown escape");
        }
      }
      out->push_back(c);
    }
    if (pos_ >= text_.size()) return fail("unterminated string");
    ++pos_;  // closing quote
    return true;
  }

  bool array(JValue* out) {
    out->kind = JValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JValue v;
      skip_ws();
      if (!value(&v)) return false;
      out->arr.push_back(std::move(v));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool object(JValue* out) {
    out->kind = JValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string k;
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected a member name");
      }
      if (!string(&k)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') return fail("expected ':'");
      ++pos_;
      skip_ws();
      JValue v;
      if (!value(&v)) return false;
      out->obj[std::move(k)] = std::move(v);
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

const JValue* member(const JValue& obj, const std::string& key) {
  const auto it = obj.obj.find(key);
  return it == obj.obj.end() ? nullptr : &it->second;
}

bool take_number(const JValue& obj, const std::string& key, double* out,
                 std::string* error) {
  const JValue* v = member(obj, key);
  if (v == nullptr || v->kind != JValue::Kind::kNumber) {
    return fail(error, "missing or non-numeric field '" + key + "'");
  }
  *out = v->num;
  return true;
}

bool take_int(const JValue& obj, const std::string& key, int* out,
              std::string* error) {
  double d = 0;
  if (!take_number(obj, key, &d, error)) return false;
  if (d != std::floor(d) || d < -2e9 || d > 2e9) {
    return fail(error, "field '" + key + "' must be an integer");
  }
  *out = static_cast<int>(d);
  return true;
}

bool take_u64(const JValue& obj, const std::string& key, std::uint64_t* out,
              std::string* error) {
  double d = 0;
  if (!take_number(obj, key, &d, error)) return false;
  if (d != std::floor(d) || d < 0 || d > 9e15) {
    return fail(error, "field '" + key + "' must be a non-negative integer");
  }
  *out = static_cast<std::uint64_t>(d);
  return true;
}

bool take_string(const JValue& obj, const std::string& key, std::string* out,
                 std::string* error) {
  const JValue* v = member(obj, key);
  if (v == nullptr || v->kind != JValue::Kind::kString) {
    return fail(error, "missing or non-string field '" + key + "'");
  }
  *out = v->str;
  return true;
}

bool parse_scope(const std::string& s, SharingScope* out) {
  if (s == "context") *out = SharingScope::kPerContext;
  else if (s == "core") *out = SharingScope::kPerCore;
  else if (s == "chip") *out = SharingScope::kPerChip;
  else return false;
  return true;
}

}  // namespace

bool Topology::parse_json(std::string_view text, Topology* out,
                          std::string* error) {
  JValue root;
  JsonReader reader(text, error);
  if (!reader.parse(&root)) return false;
  if (root.kind != JValue::Kind::kObject) {
    return fail(error, "topology document must be a JSON object");
  }
  int schema = 0;
  if (!take_int(root, "schema_version", &schema, error)) return false;
  if (schema != report::kSchemaVersion) {
    return fail(error, "unsupported schema_version " + std::to_string(schema));
  }
  std::string kind;
  if (!take_string(root, "kind", &kind, error)) return false;
  if (kind != "topology") {
    return fail(error, "document kind is '" + kind + "', want 'topology'");
  }

  Topology t;
  if (!take_string(root, "name", &t.name, error)) return false;
  if (!take_int(root, "packages", &t.packages, error)) return false;
  if (!take_int(root, "cores_per_package", &t.cores_per_package, error)) {
    return false;
  }
  if (!take_int(root, "smt_per_core", &t.smt_per_core, error)) return false;
  std::string interconnect;
  if (!take_string(root, "interconnect", &interconnect, error)) return false;
  if (interconnect == "shared_fsb") {
    t.interconnect = Interconnect::kSharedFsb;
  } else if (interconnect == "point_to_point") {
    t.interconnect = Interconnect::kPointToPoint;
  } else {
    return fail(error, "unknown interconnect '" + interconnect + "'");
  }
  if (!take_number(root, "link_read_occupancy", &t.link_read_occupancy,
                   error) ||
      !take_number(root, "link_write_occupancy", &t.link_write_occupancy,
                   error)) {
    return false;
  }
  std::uint64_t remote = 0;
  if (member(root, "remote_node_extra_latency") != nullptr &&
      !take_u64(root, "remote_node_extra_latency", &remote, error)) {
    return false;
  }
  t.remote_node_extra_latency = remote;

  const JValue* levels = member(root, "levels");
  if (levels == nullptr || levels->kind != JValue::Kind::kArray) {
    return fail(error, "missing 'levels' array");
  }
  for (const JValue& lvj : levels->arr) {
    if (lvj.kind != JValue::Kind::kObject) {
      return fail(error, "each level must be an object");
    }
    TopoCacheLevel lv;
    std::uint64_t size = 0, line = 0, ways = 0, latency = 0;
    std::string scope;
    if (!take_string(lvj, "name", &lv.name, error) ||
        !take_u64(lvj, "size_bytes", &size, error) ||
        !take_u64(lvj, "line_bytes", &line, error) ||
        !take_u64(lvj, "ways", &ways, error) ||
        !take_string(lvj, "scope", &scope, error) ||
        !take_u64(lvj, "latency", &latency, error)) {
      return false;
    }
    lv.geometry.size_bytes = static_cast<std::size_t>(size);
    lv.geometry.line_bytes = static_cast<std::size_t>(line);
    lv.geometry.ways = static_cast<std::size_t>(ways);
    lv.latency = latency;
    if (!parse_scope(scope, &lv.scope)) {
      return fail(error, "level '" + lv.name + "': unknown scope '" + scope +
                             "' (want context|core|chip)");
    }
    t.levels.push_back(std::move(lv));
  }

  const JValue* nodes = member(root, "nodes");
  if (nodes == nullptr || nodes->kind != JValue::Kind::kArray) {
    return fail(error, "missing 'nodes' array");
  }
  for (const JValue& nj : nodes->arr) {
    if (nj.kind != JValue::Kind::kObject) {
      return fail(error, "each node must be an object");
    }
    MemNode node;
    std::uint64_t latency = 0;
    if (!take_u64(nj, "latency", &latency, error) ||
        !take_number(nj, "read_occupancy", &node.read_occupancy, error) ||
        !take_number(nj, "write_occupancy", &node.write_occupancy, error)) {
      return false;
    }
    node.latency = latency;
    const JValue* homes = member(nj, "home_packages");
    if (homes == nullptr || homes->kind != JValue::Kind::kArray) {
      return fail(error, "node missing 'home_packages' array");
    }
    node.home_packages.clear();
    for (const JValue& hp : homes->arr) {
      if (hp.kind != JValue::Kind::kNumber || hp.num != std::floor(hp.num)) {
        return fail(error, "home_packages entries must be integers");
      }
      node.home_packages.push_back(static_cast<int>(hp.num));
    }
    t.nodes.push_back(std::move(node));
  }

  if (!t.validate(error)) return false;
  *out = std::move(t);
  return true;
}

// ---------------------------------------------------------------------------
// Presets.

Topology Topology::paxville() {
  Topology t;
  t.name = "paxville";
  t.packages = 2;
  t.cores_per_package = 2;
  t.smt_per_core = 2;
  t.interconnect = Interconnect::kSharedFsb;
  t.link_read_occupancy = 50.2;
  t.link_write_occupancy = 50.2;
  t.remote_node_extra_latency = 0;
  t.levels = {
      {"L1D", CacheGeometry{16 * 1024, 64, 8}, SharingScope::kPerCore, 4},
      {"L2", CacheGeometry{2 * 1024 * 1024, 64, 8}, SharingScope::kPerCore,
       30},
  };
  t.nodes = {{383, 40.4, 28.4, {0, 1}}};
  return t;
}

Topology Topology::paxville_noht() {
  Topology t = paxville();
  t.name = "paxville-noht";
  t.smt_per_core = 1;
  return t;
}

Topology Topology::woodcrest() {
  // A Core-microarchitecture contrast machine: two dual-core packages whose
  // cores share one fast 4 MB L2, no SMT, a quicker FSB and DRAM path.  The
  // interesting inversion vs. Paxville: intra-package sharing happens in
  // cache instead of on the bus.
  Topology t;
  t.name = "woodcrest";
  t.packages = 2;
  t.cores_per_package = 2;
  t.smt_per_core = 1;
  t.interconnect = Interconnect::kSharedFsb;
  t.link_read_occupancy = 30.0;
  t.link_write_occupancy = 30.0;
  t.remote_node_extra_latency = 0;
  t.levels = {
      {"L1D", CacheGeometry{32 * 1024, 64, 8}, SharingScope::kPerCore, 3},
      {"L2", CacheGeometry{4 * 1024 * 1024, 64, 16}, SharingScope::kPerChip,
       14},
  };
  t.nodes = {{250, 30.0, 20.0, {0, 1}}};
  return t;
}

Topology Topology::numa16() {
  // A 4-socket point-to-point NUMA box, 4 cores per socket, private L2 plus
  // a chip-shared L3, one memory node per socket.  Remote accesses pay the
  // link hop; the paper's single-FSB bandwidth wall disappears and is
  // replaced by locality sensitivity.
  Topology t;
  t.name = "numa16";
  t.packages = 4;
  t.cores_per_package = 4;
  t.smt_per_core = 1;
  t.interconnect = Interconnect::kPointToPoint;
  t.link_read_occupancy = 20.0;
  t.link_write_occupancy = 15.0;
  t.remote_node_extra_latency = 120;
  t.levels = {
      {"L1D", CacheGeometry{32 * 1024, 64, 8}, SharingScope::kPerCore, 4},
      {"L2", CacheGeometry{512 * 1024, 64, 8}, SharingScope::kPerCore, 12},
      {"L3", CacheGeometry{8 * 1024 * 1024, 64, 16}, SharingScope::kPerChip,
       40},
  };
  t.nodes = {
      {200, 20.0, 14.0, {0}},
      {200, 20.0, 14.0, {1}},
      {200, 20.0, 14.0, {2}},
      {200, 20.0, 14.0, {3}},
  };
  return t;
}

std::optional<Topology> Topology::from_preset(std::string_view name) {
  if (name == "paxville") return paxville();
  if (name == "paxville-noht") return paxville_noht();
  if (name == "woodcrest") return woodcrest();
  if (name == "numa16") return numa16();
  return std::nullopt;
}

const std::vector<std::string>& Topology::preset_names() {
  static const std::vector<std::string> names = {
      "paxville", "paxville-noht", "woodcrest", "numa16"};
  return names;
}

bool Topology::resolve(const std::string& spec, Topology* out,
                       std::string* error) {
  std::optional<Topology> topo = from_preset(spec);
  if (!topo.has_value()) {
    std::ifstream f(spec);
    if (!f) {
      std::string presets;
      for (const std::string& p : preset_names()) {
        if (!presets.empty()) presets += ' ';
        presets += p;
      }
      return fail(error, "'" + spec + "' is not a preset [" + presets +
                             "] and not a readable file");
    }
    std::stringstream ss;
    ss << f.rdbuf();
    Topology parsed;
    std::string why;
    if (!parse_json(ss.str(), &parsed, &why)) {
      return fail(error, "'" + spec + "': " + why);
    }
    topo = std::move(parsed);
  }
  std::string why;
  if (!topo->validate_for_sim(&why)) {
    return fail(error, "'" + spec + "': " + why);
  }
  *out = std::move(*topo);
  return true;
}

}  // namespace paxsim::sim
