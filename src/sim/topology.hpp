// paxsim/sim/topology.hpp
//
// First-class machine topology: a declarative description of the hardware
// sharing structure the paper's contention taxonomy is about — how many
// packages/cores/SMT contexts exist, which cache level is private to what
// (per-context, per-core, per-chip), where the memory controllers live
// (one shared controller vs. NUMA nodes), and how packages reach memory
// (a front-side bus per package vs. point-to-point links).
//
// `Machine` builds its hierarchy from a Topology instead of a baked-in
// L1 -> private-L2 -> FSB -> MC chain; `MachineParams{}` without an explicit
// topology still resolves to the calibrated Paxville instance, bit-identical
// to the pre-topology simulator (tests/integration/topology_identity_test
// enforces this).
//
// Topologies are plain data: constructed from the built-in presets
// (`paxville`, `paxville-noht`, `woodcrest`, `numa16`), parsed from a
// schema_version'd JSON description, or assembled in code.  `validate()`
// rejects descriptions that cannot be a machine (zero-way caches,
// non-power-of-two line sizes, orphan NUMA nodes, empty packages);
// `validate_for_sim()` additionally narrows to the shapes the timing
// simulator implements (2-3 data levels, innermost per-core).
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/params.hpp"
#include "sim/types.hpp"

namespace paxsim::sim {

/// Which contexts share one instance of a resource.  This is the paper's
/// contention axis: per-context resources never contend, per-core resources
/// contend between SMT siblings (Section 4's HT losses), per-chip resources
/// contend between cores of a package (the FSB wall of MG/SP).
enum class SharingScope : std::uint8_t {
  kPerContext,  ///< one instance per SMT context (e.g. architectural state)
  kPerCore,     ///< shared by a core's SMT contexts (Paxville L1/L2)
  kPerChip,     ///< shared by every core on a package (Woodcrest L2, L3s)
};

/// How packages reach the memory nodes.
enum class Interconnect : std::uint8_t {
  kSharedFsb,      ///< one front-side bus per package into shared controllers
  kPointToPoint,   ///< per-package links (HyperTransport/QPI-like)
};

[[nodiscard]] const char* sharing_scope_name(SharingScope s) noexcept;
[[nodiscard]] const char* interconnect_name(Interconnect i) noexcept;

/// One cache level of the hierarchy, innermost first.
struct TopoCacheLevel {
  std::string name;                            ///< "L1D", "L2", "L3"
  CacheGeometry geometry;                      ///< capacity / line / ways
  SharingScope scope = SharingScope::kPerCore;
  Cycle latency = 0;                           ///< load-to-use on a hit
};

/// One NUMA memory node: a controller with its own occupancy calibration
/// and uncontended latency, home to one or more packages.
struct MemNode {
  Cycle latency = 383;           ///< load-to-use, DRAM on this node
  double read_occupancy = 40.4;  ///< controller cycles per line read
  double write_occupancy = 28.4; ///< additional cycles per line written
  std::vector<int> home_packages;///< packages local to this node
};

/// A complete machine description.  Default-constructed Topology is NOT a
/// machine (no levels/nodes); use the presets or parse_json.
struct Topology {
  std::string name = "custom";
  int packages = 1;
  int cores_per_package = 1;
  int smt_per_core = 1;
  Interconnect interconnect = Interconnect::kSharedFsb;
  double link_read_occupancy = 50.2;   ///< package-link cycles per line read
  double link_write_occupancy = 50.2;  ///< package-link cycles per line written
  Cycle remote_node_extra_latency = 0; ///< added when crossing to a remote node
  std::vector<TopoCacheLevel> levels;  ///< data-cache levels, innermost first
  std::vector<MemNode> nodes;          ///< memory nodes (>= 1)

  // -- Derived arithmetic: the one place package/core/context products live.
  [[nodiscard]] int total_cores() const noexcept {
    return packages * cores_per_package;
  }
  [[nodiscard]] int total_contexts() const noexcept {
    return total_cores() * smt_per_core;
  }
  [[nodiscard]] int contexts_per_chip() const noexcept {
    return cores_per_package * smt_per_core;
  }
  /// Global physical-core index of (chip, core).
  [[nodiscard]] int core_id(int chip, int core) const noexcept {
    return chip * cores_per_package + core;
  }
  /// Dense context index of a logical CPU under THIS topology.  Equals
  /// LogicalCpu::flat() for the default 2x2x2 shape; unlike flat(), it
  /// stays collision-free for machines with more than 2 cores per chip.
  [[nodiscard]] int flat(const LogicalCpu& cpu) const noexcept {
    return (cpu.chip * cores_per_package + cpu.core) * smt_per_core +
           cpu.context;
  }
  /// Inverse of flat().
  [[nodiscard]] LogicalCpu unflat(int index) const noexcept {
    const int ctx = index % smt_per_core;
    const int core = (index / smt_per_core) % cores_per_package;
    const int chip = index / (smt_per_core * cores_per_package);
    return LogicalCpu{static_cast<std::uint8_t>(chip),
                      static_cast<std::uint8_t>(core),
                      static_cast<std::uint8_t>(ctx)};
  }
  /// The memory node a package is local to (first node listing it as home;
  /// validate() guarantees exactly one).
  [[nodiscard]] int home_node_of(int package) const noexcept;

  /// True when the topology has a level shared between the cores of a chip
  /// (a per-chip data cache).
  [[nodiscard]] bool has_chip_shared_cache() const noexcept;

  // -- Validation.
  /// Structural validity: positive counts, power-of-two cache lines,
  /// non-zero ways, monotonically non-shrinking levels outward, every
  /// package homed by exactly one node, no orphan nodes (a node homing no
  /// package), at least one level and one node.
  [[nodiscard]] bool validate(std::string* error = nullptr) const;
  /// validate() plus the narrower shape contract of the timing simulator:
  /// 2 or 3 data levels; innermost per-core; a 3-level hierarchy's middle
  /// level per-core and outer level per-chip; per-context data caches are
  /// schema-valid (the model can reason about them) but not simulatable.
  [[nodiscard]] bool validate_for_sim(std::string* error = nullptr) const;

  /// Compact identity string covering every simulation-relevant field;
  /// distinct machines can never fingerprint equal.  Used by the harness
  /// CellKey and machine-pool keys.
  [[nodiscard]] std::string fingerprint() const;

  // -- JSON (schema_version'd, kind "topology").
  [[nodiscard]] std::string to_json() const;
  /// Parses and validate()s @p text.  On failure returns false and, when
  /// @p error is non-null, a one-line reason.
  static bool parse_json(std::string_view text, Topology* out,
                         std::string* error);

  // -- Presets.
  static Topology paxville();       ///< the paper's calibrated dual-core SMP
  static Topology paxville_noht();  ///< Paxville with Hyper-Threading fused off
  static Topology woodcrest();      ///< shared-L2 dual-core, no SMT
  static Topology numa16();         ///< 4-socket NUMA, 4 cores/socket, L3
  static std::optional<Topology> from_preset(std::string_view name);
  static const std::vector<std::string>& preset_names();

  /// Resolves a machine spec — a preset name, else a path to a topology
  /// JSON file — into a simulation-ready (validate_for_sim-clean) machine.
  /// The one resolution path behind the CLI's and the bench artifacts'
  /// `--machine=` flags.  On failure returns false and, when @p error is
  /// non-null, a one-line reason naming the spec.
  static bool resolve(const std::string& spec, Topology* out,
                      std::string* error = nullptr);
};

}  // namespace paxsim::sim
