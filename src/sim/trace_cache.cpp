#include "sim/trace_cache.hpp"

#include <algorithm>
#include <cassert>

namespace paxsim::sim {
namespace {

constexpr std::size_t kTraceKeyBytes = TraceCache::kKeyBytes;

CacheGeometry trace_geometry(std::size_t capacity_uops,
                             std::size_t uops_per_line, std::size_t ways) {
  std::size_t lines = capacity_uops / uops_per_line;
  // Round line count down to a power of two so the set math stays exact.
  std::size_t p = 1;
  while (p * 2 <= lines) p *= 2;
  lines = std::max<std::size_t>(p, ways);
  return CacheGeometry{lines * kTraceKeyBytes, kTraceKeyBytes, ways};
}

}  // namespace

TraceCache::TraceCache(std::size_t capacity_uops, std::size_t uops_per_line,
                       std::size_t ways)
    : capacity_uops_(capacity_uops),
      uops_per_line_(uops_per_line),
      full_(trace_geometry(capacity_uops, uops_per_line, ways)),
      half_{SetAssocCache(trace_geometry(capacity_uops / 2, uops_per_line,
                                         std::max<std::size_t>(1, ways / 2))),
            SetAssocCache(trace_geometry(capacity_uops / 2, uops_per_line,
                                         std::max<std::size_t>(1, ways / 2)))} {
  assert(uops_per_line_ > 0);
}

TraceFetch TraceCache::fetch(Addr code_base, BlockId block, std::uint32_t uops,
                             int partition) noexcept {
  SetAssocCache& cache_ =
      partition < 0 ? full_ : half_[partition & 1];
  const std::uint32_t n_lines =
      std::max<std::uint32_t>(1, (uops + static_cast<std::uint32_t>(uops_per_line_) - 1) /
                                     static_cast<std::uint32_t>(uops_per_line_));
  // Each (program, block, line) tuple gets a distinct synthetic key
  // address.  The per-block stride is a prime number of lines so block
  // starts spread across the sets (a power-of-two stride would alias every
  // block's i-th line into the same set and thrash spuriously).
  const Addr base_key =
      code_base + static_cast<Addr>(block) * 67 * kTraceKeyBytes;
  TraceFetch out;
  out.lines_referenced = n_lines;
  for (std::uint32_t i = 0; i < n_lines; ++i) {
    const Addr key = base_key + static_cast<Addr>(i) * kTraceKeyBytes;
    if (!cache_.probe(key, /*is_store=*/false).hit) {
      ++out.lines_missed;
      cache_.fill(key, LineState::kExclusive, /*prefetched=*/false);
    }
  }
  return out;
}

void TraceCache::register_fast(FastTrace& ft, Addr code_base, BlockId block,
                               std::uint32_t uops, int partition) noexcept {
  SetAssocCache& cache =
      partition < 0 ? full_ : half_[partition & 1];
  const std::uint32_t n_lines =
      std::max<std::uint32_t>(1, (uops + static_cast<std::uint32_t>(uops_per_line_) - 1) /
                                     static_cast<std::uint32_t>(uops_per_line_));
  if (n_lines > kFastTraceLines) {
    ft.part = nullptr;
    return;
  }
  ft.part = &cache;
  ft.base_key = code_base + static_cast<Addr>(block) * 67 * kKeyBytes;
  ft.n = n_lines;
  for (std::uint32_t i = 0; i < n_lines; ++i) {
    const Addr key = ft.base_key + static_cast<Addr>(i) * kKeyBytes;
    ft.ref[i] = cache.ref_of(key);
    // A block can evict its own earlier lines while filling later ones
    // (tiny scaled caches): such a register would fail try_commit() on
    // every repeat and must never be replayed unchecked, so refuse it.
    if (!cache.fast_check(ft.ref[i], key)) {
      ft.part = nullptr;
      return;
    }
  }
}

}  // namespace paxsim::sim
