// paxsim/sim/trace_cache.hpp
//
// Execution trace cache model (the NetBurst front-end).  Decoded uops are
// stored as fixed-size "trace lines"; a static code block of U uops occupies
// ceil(U / uops_per_line) consecutive trace lines.  The structure is shared
// by both SMT contexts of a core, so two threads executing disjoint code
// (e.g. two different programs in the multi-program study) evict each
// other's traces — the trace-cache interference channel identified in the
// authors' earlier IOSCA'05 work and revisited in this paper.
#pragma once

#include <cstdint>

#include "sim/cache.hpp"
#include "sim/params.hpp"
#include "sim/types.hpp"

namespace paxsim::sim {

/// Outcome of fetching one code block through the trace cache.
struct TraceFetch {
  std::uint32_t lines_referenced = 0;  ///< trace lines looked up
  std::uint32_t lines_missed = 0;      ///< trace lines rebuilt via decode
};

/// Trace cache: a set-associative cache whose "addresses" are synthesized
/// from (program code base, block id, trace line index).
///
/// NetBurst statically partitions the trace cache in MT mode: when both
/// SMT contexts of the core are active, each fetches from its own half.
/// The partitions are modelled as two persistent half-size caches beside
/// the full-size one, so alternating between ST and MT phases behaves like
/// the hardware's partition/recombine (warm state per mode survives).
class TraceCache {
 public:
  TraceCache(std::size_t capacity_uops, std::size_t uops_per_line,
             std::size_t ways);

  /// Fetches the block @p block (with static size @p uops) belonging to the
  /// program whose code segment starts at @p code_base.
  /// @param partition  -1 for single-threaded mode (full capacity); 0 or 1
  ///        for the fetching context's half in MT mode.
  TraceFetch fetch(Addr code_base, BlockId block, std::uint32_t uops,
                   int partition = -1) noexcept;

  void reset() noexcept {
    full_.reset();
    half_[0].reset();
    half_[1].reset();
  }

  [[nodiscard]] std::size_t capacity_uops() const noexcept {
    return capacity_uops_;
  }
  [[nodiscard]] std::size_t uops_per_line() const noexcept {
    return uops_per_line_;
  }

 private:
  std::size_t capacity_uops_;
  std::size_t uops_per_line_;
  SetAssocCache full_;
  SetAssocCache half_[2];
};

}  // namespace paxsim::sim
