// paxsim/sim/trace_cache.hpp
//
// Execution trace cache model (the NetBurst front-end).  Decoded uops are
// stored as fixed-size "trace lines"; a static code block of U uops occupies
// ceil(U / uops_per_line) consecutive trace lines.  The structure is shared
// by both SMT contexts of a core, so two threads executing disjoint code
// (e.g. two different programs in the multi-program study) evict each
// other's traces — the trace-cache interference channel identified in the
// authors' earlier IOSCA'05 work and revisited in this paper.
#pragma once

#include <array>
#include <cstdint>

#include "sim/cache.hpp"
#include "sim/params.hpp"
#include "sim/types.hpp"

namespace paxsim::sim {

/// Outcome of fetching one code block through the trace cache.
struct TraceFetch {
  std::uint32_t lines_referenced = 0;  ///< trace lines looked up
  std::uint32_t lines_missed = 0;      ///< trace lines rebuilt via decode
};

/// Trace cache: a set-associative cache whose "addresses" are synthesized
/// from (program code base, block id, trace line index).
///
/// NetBurst statically partitions the trace cache in MT mode: when both
/// SMT contexts of the core are active, each fetches from its own half.
/// The partitions are modelled as two persistent half-size caches beside
/// the full-size one, so alternating between ST and MT phases behaves like
/// the hardware's partition/recombine (warm state per mode survives).
class TraceCache {
 public:
  /// Synthetic-address stride per trace line (see fetch()).
  static constexpr Addr kKeyBytes = 64;
  /// Upper bound on trace lines a FastTrace may span; blocks larger than
  /// this (none in the study: BT's 64-uop bodies are 11 lines at the
  /// default 6 uops/line) simply never take the fast path.
  static constexpr std::uint32_t kFastTraceLines = 12;

  TraceCache(std::size_t capacity_uops, std::size_t uops_per_line,
             std::size_t ways);

  /// Fetches the block @p block (with static size @p uops) belonging to the
  /// program whose code segment starts at @p code_base.
  /// @param partition  -1 for single-threaded mode (full capacity); 0 or 1
  ///        for the fetching context's half in MT mode.
  TraceFetch fetch(Addr code_base, BlockId block, std::uint32_t uops,
                   int partition = -1) noexcept;

  /// Cached line handles of one block's resident trace, captured by
  /// register_fast() and revalidated/replayed by try_commit() — the
  /// exec-block half of the core's inlined fast path.
  struct FastTrace {
    SetAssocCache* part = nullptr;  ///< partition the handles live in
    Addr base_key = 0;              ///< synthetic address of the block's line 0
    std::uint32_t n = 0;            ///< trace lines in the block
    std::array<SetAssocCache::LineRef, kFastTraceLines> ref{};
  };

  /// If every cached handle still denotes its resident, fast-safe trace
  /// line, replays the all-hit fetch — one LRU clock tick and stamp refresh
  /// per line, exactly what fetch() does when nothing misses — and returns
  /// true.  Otherwise leaves all state untouched (the caller re-fetches).
  [[nodiscard]] bool try_commit(FastTrace& ft) noexcept {
    for (std::uint32_t i = 0; i < ft.n; ++i) {
      if (!ft.part->fast_check(
              ft.ref[i], ft.base_key + static_cast<Addr>(i) * kKeyBytes)) {
        return false;
      }
    }
    commit(ft);
    return true;
  }

  /// Replays the all-hit fetch with no validation at all.  Only callable
  /// when every handle is known-valid by construction: register_fast()
  /// verified them at capture, and the partition's lru_clock() is unchanged
  /// since — nothing can have probed, filled or reset the partition in
  /// between, so the lines are exactly as the last commit left them.
  void commit(FastTrace& ft) noexcept {
    for (std::uint32_t i = 0; i < ft.n; ++i) ft.part->fast_commit(ft.ref[i]);
  }

  /// Captures handles to the (now resident) trace lines of the block a
  /// fetch just served, for later replay by try_commit().  Leaves @p ft
  /// unusable (part == nullptr) when the block spans more lines than a
  /// FastTrace holds.
  void register_fast(FastTrace& ft, Addr code_base, BlockId block,
                     std::uint32_t uops, int partition) noexcept;

  void reset() noexcept {
    full_.reset();
    half_[0].reset();
    half_[1].reset();
  }

  [[nodiscard]] std::size_t capacity_uops() const noexcept {
    return capacity_uops_;
  }
  [[nodiscard]] std::size_t uops_per_line() const noexcept {
    return uops_per_line_;
  }

 private:
  std::size_t capacity_uops_;
  std::size_t uops_per_line_;
  SetAssocCache full_;
  SetAssocCache half_[2];
};

}  // namespace paxsim::sim
