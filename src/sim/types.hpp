// paxsim/sim/types.hpp
//
// Fundamental vocabulary types of the machine model.
#pragma once

#include <cstddef>
#include <cstdint>

namespace paxsim::sim {

/// Virtual time, in core clock cycles (2.8 GHz in the calibrated machine).
using Cycle = std::uint64_t;

/// A byte address in the simulated physical address space.
using Addr = std::uint64_t;

/// Identifier of a static code block (loop body, function) used by the
/// trace-cache and ITLB front-end model.  Kernels assign small dense ids.
using BlockId = std::uint32_t;

/// Dependency class of a memory access, which controls how much of the
/// access latency an out-of-order core can hide.
enum class Dep : std::uint8_t {
  kIndependent,  ///< address available early; latency largely overlapped
  kChained,      ///< pointer-chase / indirect: latency fully exposed
};

/// True if @p v is a nonzero power of two.
[[nodiscard]] constexpr bool is_pow2(std::uint64_t v) noexcept {
  return v != 0 && (v & (v - 1)) == 0;
}

/// Floor log2 for powers of two.
[[nodiscard]] constexpr unsigned log2_exact(std::uint64_t v) noexcept {
  unsigned n = 0;
  while (v > 1) {
    v >>= 1;
    ++n;
  }
  return n;
}

/// Identifies one of the up-to-8 logical processors of the machine.
///
/// Numbering follows the paper's Figure 1: with HT enabled, contexts are
/// A0..A7 in (chip, core, context) order; with HT disabled, cores are
/// B0..B3 in (chip, core) order.
struct LogicalCpu {
  std::uint8_t chip = 0;     ///< physical package, 0 or 1
  std::uint8_t core = 0;     ///< core within the package, 0 or 1
  std::uint8_t context = 0;  ///< SMT hardware context within the core, 0 or 1

  /// Flat index in 0..7 (chip-major, as the Linux kernel enumerated them).
  [[nodiscard]] constexpr int flat() const noexcept {
    return chip * 4 + core * 2 + context;
  }

  friend constexpr bool operator==(LogicalCpu, LogicalCpu) = default;
};

}  // namespace paxsim::sim
