// paxsim/trace/chrome.cpp
#include "trace/chrome.hpp"

#include <iomanip>
#include <ostream>

#include "trace/report.hpp"

namespace paxsim::trace {
namespace {

/// Emits the fixed prefix of one event object: {"ph":"<ph>","pid":0,
/// "tid":<tid>,"ts":<ts> — caller appends the rest and closes the brace.
void event_head(std::ostream& os, bool& first, char ph, int tid, double ts) {
  if (!first) os << ",\n";
  first = false;
  os << R"({"ph":")" << ph << R"(","pid":0,"tid":)" << tid << R"(,"ts":)"
     << ts;
}

}  // namespace

void write_chrome_trace(std::ostream& os, const TraceReport& report) {
  const auto flags = os.flags();
  const auto precision = os.precision();
  os << std::fixed << std::setprecision(3);

  os << "{\"traceEvents\":[\n";
  bool first = true;

  // Track metadata: one named thread per hardware context.
  if (!first) os << ",\n";
  first = false;
  os << R"({"ph":"M","pid":0,"name":"process_name",)"
     << R"("args":{"name":"paxsim machine"}})";
  for (const ContextStack& cs : report.contexts) {
    os << ",\n"
       << R"({"ph":"M","pid":0,"tid":)" << cs.cpu.flat()
       << R"(,"name":"thread_name","args":{"name":"cpu)" << cs.cpu.flat()
       << " (chip" << int{cs.cpu.chip} << " core" << int{cs.cpu.core}
       << " ctx" << int{cs.cpu.context} << ")\"}}";
  }

  for (const TraceEvent& ev : report.events) {
    const int tid = ev.cpu;
    switch (ev.kind) {
      case TraceEvent::Kind::kFork:
        event_head(os, first, 'B', tid, ev.t0);
        os << R"(,"cat":"region","name":"region )" << ev.region << "\"}";
        break;
      case TraceEvent::Kind::kJoin:
        event_head(os, first, 'E', tid, ev.t0);
        os << R"(,"cat":"region"})";
        break;
      case TraceEvent::Kind::kLoop:
        event_head(os, first, 'i', tid, ev.t0);
        os << R"(,"s":"t","cat":"loop","name":"loop body )" << ev.a << "\"}";
        break;
      case TraceEvent::Kind::kBarrier:
        event_head(os, first, 'i', tid, ev.t0);
        os << R"(,"s":"t","cat":"sync","name":"barrier"})";
        break;
      case TraceEvent::Kind::kCriticalEnter:
        event_head(os, first, 'B', tid, ev.t0);
        os << R"(,"cat":"sync","name":"critical )" << ev.a << "\"}";
        break;
      case TraceEvent::Kind::kCriticalExit:
        event_head(os, first, 'E', tid, ev.t0);
        os << R"(,"cat":"sync"})";
        break;
      case TraceEvent::Kind::kMemMiss:
        event_head(os, first, 'X', tid, ev.t0);
        os << R"(,"dur":)" << (ev.t1 - ev.t0)
           << R"(,"cat":"mem","name":"mem miss"})";
        break;
      case TraceEvent::Kind::kThreadMoved:
        event_head(os, first, 'i', tid, ev.t0);
        os << R"(,"s":"t","cat":"sched","name":"thread moved from cpu)"
           << ev.a << "\"}";
        break;
      case TraceEvent::Kind::kSample:
        // One counter track per context; the three series stack in the
        // viewer, mirroring the CPI-stack decomposition coarsely.
        event_head(os, first, 'C', tid, ev.t0);
        os << R"(,"name":"cpu)" << tid << R"( cycles","args":{"busy":)"
           << ev.v0 << R"(,"mem_stall":)" << ev.v1 << R"(,"other_stall":)"
           << ev.v2 << "}}";
        break;
    }
  }

  os << "\n],\n\"displayTimeUnit\":\"ns\",\n"
     << "\"otherData\":{\"events_recorded\":" << report.events_recorded
     << ",\"events_dropped\":" << report.events_dropped
     << ",\"wall_cycles\":" << report.wall_cycles << "}}\n";

  os.flags(flags);
  os.precision(precision);
}

}  // namespace paxsim::trace
