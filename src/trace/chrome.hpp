// paxsim/trace/chrome.hpp
//
// Chrome tracing / Perfetto JSON exporter for TraceReport event streams:
// one track (tid) per hardware context, duration slices for parallel
// regions and critical sections, instants for barriers, and counter tracks
// fed by the accumulator-flush samples.  Load the output at ui.perfetto.dev
// or chrome://tracing.  Timestamps are virtual core cycles presented as
// microseconds (the viewers require a time unit; cycles are what the
// simulator has).
#pragma once

#include <iosfwd>

namespace paxsim::trace {

struct TraceReport;

/// Writes @p report's retained events as a Chrome "JSON object format"
/// trace ({"traceEvents": [...], ...}).  Valid JSON for any report,
/// including one with no events (stacks-only or off).
void write_chrome_trace(std::ostream& os, const TraceReport& report);

}  // namespace paxsim::trace
