// paxsim/trace/report.hpp
//
// The rendered outcome of one traced run: per-hardware-context CPI stall
// stacks (closed against the run's wall cycles), per-parallel-region
// aggregates, and the retained event stream.  Default-constructed means
// "nothing was traced" — the same convention check::CheckReport uses.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/params.hpp"
#include "sim/types.hpp"
#include "trace/stack.hpp"

namespace paxsim::trace {

/// One retained trace event (see Tracer for what gets recorded when).
/// Times are virtual cycles; instants have t1 == t0.
struct TraceEvent {
  enum class Kind : std::uint8_t {
    kFork,           ///< team fork (per member), region opens
    kLoop,           ///< work-sharing loop dispatched; a = body block id
    kBarrier,        ///< barrier release (per member)
    kJoin,           ///< team join (per member), region closes
    kCriticalEnter,  ///< critical/lock acquire; a = lock address
    kCriticalExit,   ///< critical/lock release; a = lock address
    kMemMiss,        ///< L2-miss access; a = address, t1-t0 = exposed stall
    kThreadMoved,    ///< thread migration onto this context
    kSample,         ///< accumulator flush: v0 busy, v1 mem, v2 other stalls
  };

  Kind kind{};
  std::uint8_t cpu = 0;      ///< flat hardware-context id
  std::uint32_t region = 0;  ///< dynamic region ordinal (0 = outside)
  double t0 = 0;
  double t1 = 0;
  std::uint64_t a = 0;       ///< kind-specific payload (address, block id)
  double v0 = 0, v1 = 0, v2 = 0;  ///< kSample counter payload
};

/// Aggregate over every dynamic instance of one static parallel region
/// (keyed by the loop body's code block; body 0 collects serial execution
/// and everything outside work-sharing loops).
struct RegionStats {
  sim::BlockId body = 0;
  std::uint64_t instances = 0;   ///< dynamic dispatches of this loop
  std::uint64_t iterations = 0;  ///< total iterations across instances
  std::uint64_t accesses = 0;    ///< data accesses observed in the region
  std::uint64_t l1_misses = 0;   ///< of which missed the L1D
  std::uint64_t l2_misses = 0;   ///< of which also missed the L2
  std::uint64_t fetches = 0;     ///< front-end block fetches
  /// Executed-cycle stack summed over all contexts while they were in this
  /// region (kIdle stays 0 — idle is a per-context, whole-run residual).
  CpiStack stack;
};

/// One hardware context's whole-run stack, closed against wall_cycles.
struct ContextStack {
  sim::LogicalCpu cpu{};
  bool active = false;   ///< executed anything during the run
  CpiStack stack;        ///< sums exactly to the run's wall_cycles
  double executed = 0;   ///< the context's own executed-cycle total
};

/// Everything the Tracer distilled from one run.
struct TraceReport {
  sim::TraceMode mode = sim::TraceMode::kOff;
  double wall_cycles = 0;

  std::vector<ContextStack> contexts;  ///< one per hardware context
  std::vector<RegionStats> regions;    ///< serial (body 0) first, then by body

  /// Retained events, merged across contexts in t0 order (kEvents/kFull).
  std::vector<TraceEvent> events;
  std::uint64_t events_recorded = 0;  ///< everything ever pushed
  std::uint64_t events_dropped = 0;   ///< fell out of the rings

  // Run-level phase tallies (counted in every mode).
  std::uint64_t team_forks = 0;
  std::uint64_t loop_dispatches = 0;
  std::uint64_t barriers = 0;
  std::uint64_t criticals = 0;

  [[nodiscard]] bool traced() const noexcept {
    return mode != sim::TraceMode::kOff;
  }
  [[nodiscard]] bool has_stacks() const noexcept {
    return mode == sim::TraceMode::kStacks || mode == sim::TraceMode::kFull;
  }
  [[nodiscard]] bool has_events() const noexcept {
    return mode == sim::TraceMode::kEvents || mode == sim::TraceMode::kFull;
  }
};

}  // namespace paxsim::trace
