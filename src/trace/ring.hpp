// paxsim/trace/ring.hpp
//
// Fixed-capacity ring buffer for per-hardware-context event recording.  A
// traced run can emit far more events than anyone wants to export; the ring
// keeps the most recent `capacity` of them and counts what it overwrote, so
// the exporter can state its coverage honestly instead of silently
// truncating.  Plain value semantics, no allocation after construction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace paxsim::trace {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity = 0) : buf_(capacity) {}

  /// Appends @p v, overwriting the oldest element when full (the overwrite
  /// is counted in dropped()).
  void push(const T& v) {
    ++total_;
    if (buf_.empty()) {
      ++dropped_;
      return;
    }
    if (size_ < buf_.size()) {
      buf_[(head_ + size_) % buf_.size()] = v;
      ++size_;
      return;
    }
    buf_[head_] = v;
    head_ = (head_ + 1) % buf_.size();
    ++dropped_;
  }

  /// Element @p i, oldest first (@p i in [0, size())).
  [[nodiscard]] const T& operator[](std::size_t i) const {
    return buf_[(head_ + i) % buf_.size()];
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return buf_.size(); }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  /// Everything ever pushed, retained or not.
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  /// Pushes that fell off the front (or were refused by a zero-capacity
  /// ring).
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

  void clear() noexcept {
    head_ = size_ = 0;
    total_ = dropped_ = 0;
  }

 private:
  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::uint64_t total_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace paxsim::trace
