// paxsim/trace/stack.hpp
//
// The CPI stall stack: an additive decomposition of a hardware context's
// wall cycles into the categories the paper's VTune methodology attributes
// slowdowns to.  The defining invariant is that a closed stack sums
// *exactly* (bitwise, not within a tolerance) to the wall cycles it
// decomposes — close() constructs the idle residual so that holds, and the
// integration tests enforce it for every kernel x configuration.
#pragma once

#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>

namespace paxsim::trace {

/// One additive category of a context's wall cycles.
enum class StackCat : std::uint8_t {
  kIssue,        ///< issue/execute at the single-context cost (incl. OS work)
  kSmtStretch,   ///< extra issue cycles from sharing the core's issue width
  kL1Serve,      ///< exposed latency of accesses served by the L1D
  kL2Serve,      ///< exposed latency of L1D misses served by the L2
  kL3Serve,      ///< exposed latency of L2 misses served by a chip-shared L3
  kMemServe,     ///< exposed DRAM latency of last-level misses
  kBusQueue,     ///< FSB + memory-controller queueing share of exposed stalls
  kDtlbWalk,     ///< data-TLB page walks
  kItlbWalk,     ///< instruction-TLB page walks
  kTcRebuild,    ///< trace-cache rebuild (decode) stalls
  kBranchFlush,  ///< branch-mispredict pipeline flushes
  kIdle,         ///< barrier / serial-section / not-yet-started idle wait
};

inline constexpr std::size_t kStackCatCount = 12;

/// Stable lowercase name ("issue", "smt_stretch", ...), used by the report
/// tables and the JSON schema.
[[nodiscard]] constexpr const char* stack_cat_name(StackCat c) noexcept {
  switch (c) {
    case StackCat::kIssue: return "issue";
    case StackCat::kSmtStretch: return "smt_stretch";
    case StackCat::kL1Serve: return "l1_serve";
    case StackCat::kL2Serve: return "l2_serve";
    case StackCat::kL3Serve: return "l3_serve";
    case StackCat::kMemServe: return "mem_serve";
    case StackCat::kBusQueue: return "bus_queue";
    case StackCat::kDtlbWalk: return "dtlb_walk";
    case StackCat::kItlbWalk: return "itlb_walk";
    case StackCat::kTcRebuild: return "tc_rebuild";
    case StackCat::kBranchFlush: return "branch_flush";
    case StackCat::kIdle: return "idle";
  }
  return "?";
}

/// The additive stack itself (fractional cycles per category).
struct CpiStack {
  std::array<double, kStackCatCount> cycles{};

  [[nodiscard]] double& operator[](StackCat c) noexcept {
    return cycles[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] double operator[](StackCat c) const noexcept {
    return cycles[static_cast<std::size_t>(c)];
  }

  /// Left-to-right sum in category order (kIdle last), so close() can reason
  /// about the exact floating-point total.
  [[nodiscard]] double sum() const noexcept {
    double s = 0;
    for (const double c : cycles) s += c;
    return s;
  }

  /// Executed (non-idle) cycles.
  [[nodiscard]] double executed() const noexcept {
    double s = 0;
    for (std::size_t i = 0; i + 1 < kStackCatCount; ++i) s += cycles[i];
    return s;
  }

  void add(const CpiStack& o) noexcept {
    for (std::size_t i = 0; i < kStackCatCount; ++i) cycles[i] += o.cycles[i];
  }

  /// One idle-steering pass toward sum() == @p wall_cycles.  Idle is the
  /// LAST term of sum(), so the sum is `fl(partial + idle)` — one rounding,
  /// monotone in idle.  Coarse `idle += wall - sum()` corrections converge
  /// when idle's grid is finer than the sum's (each correction is exactly
  /// representable in idle); when the grids coincide those corrections can
  /// two-cycle across an ulp, and the trailing ulp walk lands instead.
  void steer_idle(double wall_cycles) noexcept {
    (*this)[StackCat::kIdle] = 0;
    (*this)[StackCat::kIdle] = wall_cycles - sum();
    for (int i = 0; i < 32 && sum() != wall_cycles; ++i) {
      (*this)[StackCat::kIdle] += wall_cycles - sum();
    }
    constexpr double kInf = std::numeric_limits<double>::infinity();
    for (int i = 0; i < 8; ++i) {
      const double s = sum();
      if (s == wall_cycles) return;
      double& idle = (*this)[StackCat::kIdle];
      idle = std::nextafter(idle, s < wall_cycles ? kInf : -kInf);
    }
  }

  /// Closes the stack against @p wall_cycles: constructs the kIdle residual
  /// so that sum() == wall_cycles *bitwise*.  Steering idle alone almost
  /// always suffices, with one genuine impossibility: when the idle-free
  /// partial sum sits in a lower binade than the wall, the exact sum can
  /// land exactly halfway between representable doubles for EVERY candidate
  /// idle, and round-to-even then skips odd-mantissa walls forever.
  /// Breaking that tie costs one ulp *of the partial sum* on one stall term
  /// (relative error 2^-52 of the stack, far below anything the tables
  /// print); that granularity matters — a one-ulp nudge of a small category
  /// is absorbed by the running sum's rounding, while a partial-sum ulp is
  /// a multiple of every intermediate rounding grid and propagates exactly.
  /// Returns the uncorrected residual — callers sanity-check it against the
  /// context's executed-cycle total.
  double close(double wall_cycles) noexcept {
    (*this)[StackCat::kIdle] = 0;
    const double residual = wall_cycles - sum();
    steer_idle(wall_cycles);
    if (sum() == wall_cycles) return residual;
    (*this)[StackCat::kIdle] = 0;
    const double partial = sum();
    constexpr double kInf = std::numeric_limits<double>::infinity();
    const double delta = std::nextafter(partial, kInf) - partial;
    for (std::size_t j = 0; j + 1 < kStackCatCount; ++j) {
      if (cycles[j] == 0) continue;
      for (const double dir : {delta, -delta}) {
        const double saved = cycles[j];
        cycles[j] = saved + dir;
        steer_idle(wall_cycles);
        if (sum() == wall_cycles) return residual;
        cycles[j] = saved;
      }
    }
    steer_idle(wall_cycles);  // best-effort idle after restoring every nudge
    return residual;
  }
};

}  // namespace paxsim::trace
