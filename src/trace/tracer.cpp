// paxsim/trace/tracer.cpp
#include "trace/tracer.hpp"

#include <algorithm>
#include <cassert>

#include "sim/core.hpp"
#include "sim/machine.hpp"

namespace paxsim::trace {

Tracer::Tracer(sim::Machine& machine, sim::TraceMode mode,
               std::size_t ring_capacity)
    : machine_(machine),
      mode_(mode),
      events_(mode == sim::TraceMode::kEvents ||
              mode == sim::TraceMode::kFull),
      cores_per_chip_(machine.params().cores_per_chip),
      contexts_per_core_(machine.params().contexts_per_core) {
  assert(machine.trace_sink() == nullptr && "machine already has a sink");
  // One dense slot per hardware context of the machine's topology (see
  // flat_index()).
  const std::size_t slots =
      static_cast<std::size_t>(machine.params().total_contexts());
  ctxs_.reserve(slots);
  for (std::size_t i = 0; i < slots; ++i) {
    PerCtx s;
    s.ring = RingBuffer<TraceEvent>(events_ ? ring_capacity : 0);
    ctxs_.push_back(std::move(s));
  }
  // The serial bucket exists even for a run that never forks.
  regions_.push_back(RegionStats{});
  region_index_.emplace(sim::BlockId{0}, 0);
  machine_.set_trace_sink(this);
  attached_ = true;
}

Tracer::~Tracer() {
  if (attached_) machine_.set_trace_sink(nullptr);
}

Tracer::PerCtx& Tracer::state(const sim::HwContext& ctx) noexcept {
  return ctxs_[static_cast<std::size_t>(flat_index(ctx.id()))];
}

std::size_t Tracer::region_index(sim::BlockId body) {
  const auto [it, inserted] = region_index_.emplace(body, regions_.size());
  if (inserted) {
    RegionStats r;
    r.body = body;
    regions_.push_back(r);
  }
  return it->second;
}

void Tracer::on_access(const sim::HwContext& ctx, sim::Addr /*addr*/,
                       bool /*is_store*/, sim::Dep /*dep*/) {
  ++regions_[state(ctx).cur_region_idx].accesses;
}

void Tracer::on_fetch(const sim::HwContext& ctx, sim::Addr /*code_addr*/,
                      std::uint32_t /*uops*/) {
  ++regions_[state(ctx).cur_region_idx].fetches;
}

void Tracer::on_loop(const sim::HwContext& ctx, sim::BlockId body,
                     std::size_t begin, std::size_t end) {
  ++loop_dispatches_;
  const std::size_t idx = region_index(body);
  RegionStats& r = regions_[idx];
  ++r.instances;
  r.iterations += static_cast<std::uint64_t>(end - begin);

  // The dispatching context speaks for the whole team: every member runs
  // this loop body until the closing barrier, so each one's subsequent
  // flush delta belongs to it.
  PerCtx& lead = state(ctx);
  const auto members = team_members_.find(lead.team);
  if (members != team_members_.end()) {
    for (const int flat : members->second) {
      PerCtx& s = ctxs_[static_cast<std::size_t>(flat)];
      s.cur_body = body;
      s.cur_region_idx = idx;
    }
  } else {  // no fork observed (serial_for): just this context
    lead.cur_body = body;
    lead.cur_region_idx = idx;
  }

  TraceEvent ev;
  ev.kind = TraceEvent::Kind::kLoop;
  ev.cpu = static_cast<std::uint8_t>(flat_index(ctx.id()));
  ev.region = lead.cur_region;
  ev.t0 = ev.t1 = ctx.now();
  ev.a = body;
  record(lead, ev);
}

void Tracer::on_team(TeamEvent ev, const void* team,
                     const sim::HwContext* const* members, std::size_t count) {
  switch (ev) {
    case TeamEvent::kCreate:
      return;
    case TeamEvent::kFork: {
      ++team_forks_;
      const std::uint32_t region = ++next_region_;
      std::vector<int>& flats = team_members_[team];
      flats.clear();
      for (std::size_t i = 0; i < count; ++i) {
        PerCtx& s = state(*members[i]);
        flats.push_back(flat_index(members[i]->id()));
        s.team = team;
        s.cur_region = region;
        s.cur_body = 0;  // serial until the team dispatches a loop
        s.cur_region_idx = 0;
        TraceEvent e;
        e.kind = TraceEvent::Kind::kFork;
        e.cpu = static_cast<std::uint8_t>(flat_index(members[i]->id()));
        e.region = region;
        e.t0 = e.t1 = members[i]->now();
        record(s, e);
      }
      return;
    }
    case TeamEvent::kBarrier: {
      ++barriers_;
      // Membership can have shifted (scheduler repin); refresh it so the
      // next on_loop reaches the contexts actually in the team.
      std::vector<int>& flats = team_members_[team];
      flats.clear();
      for (std::size_t i = 0; i < count; ++i) {
        PerCtx& s = state(*members[i]);
        flats.push_back(flat_index(members[i]->id()));
        s.team = team;
        TraceEvent e;
        e.kind = TraceEvent::Kind::kBarrier;
        e.cpu = static_cast<std::uint8_t>(flat_index(members[i]->id()));
        e.region = s.cur_region;
        e.t0 = e.t1 = members[i]->now();
        record(s, e);
      }
      return;
    }
    case TeamEvent::kJoin: {
      for (std::size_t i = 0; i < count; ++i) {
        PerCtx& s = state(*members[i]);
        TraceEvent e;
        e.kind = TraceEvent::Kind::kJoin;
        e.cpu = static_cast<std::uint8_t>(flat_index(members[i]->id()));
        e.region = s.cur_region;
        e.t0 = e.t1 = members[i]->now();
        record(s, e);
        s.cur_body = 0;
        s.cur_region_idx = 0;
        s.cur_region = 0;
        s.team = nullptr;
      }
      team_members_.erase(team);
      return;
    }
  }
}

void Tracer::on_runtime_range(sim::Addr /*base*/, std::size_t /*bytes*/) {}

void Tracer::on_sync(SyncOp op, const sim::HwContext& ctx, sim::Addr addr) {
  if (op == SyncOp::kCombine) return;
  PerCtx& s = state(ctx);
  if (op == SyncOp::kAcquire) ++criticals_;
  TraceEvent e;
  e.kind = op == SyncOp::kAcquire ? TraceEvent::Kind::kCriticalEnter
                                  : TraceEvent::Kind::kCriticalExit;
  e.cpu = static_cast<std::uint8_t>(flat_index(ctx.id()));
  e.region = s.cur_region;
  e.t0 = e.t1 = ctx.now();
  e.a = addr;
  record(s, e);
}

void Tracer::on_thread_moved(const sim::HwContext& from,
                             const sim::HwContext& to) {
  PerCtx& sf = state(from);
  PerCtx& st = state(to);
  // The logical thread carries its region with it.
  st.cur_body = sf.cur_body;
  st.cur_region_idx = sf.cur_region_idx;
  st.cur_region = sf.cur_region;
  st.team = sf.team;
  sf.cur_body = 0;
  sf.cur_region_idx = 0;
  sf.cur_region = 0;
  sf.team = nullptr;
  TraceEvent e;
  e.kind = TraceEvent::Kind::kThreadMoved;
  e.cpu = static_cast<std::uint8_t>(flat_index(to.id()));
  e.region = st.cur_region;
  e.t0 = e.t1 = to.now();
  e.a = static_cast<std::uint64_t>(flat_index(from.id()));
  record(st, e);
}

void Tracer::on_access_stall(const sim::HwContext& ctx, sim::MemLevel level,
                             double dtlb_walk, double stall, double queue_wait,
                             double total_wait) {
  PerCtx& s = state(ctx);
  RegionStats& r = regions_[s.cur_region_idx];
  if (level != sim::MemLevel::kL1) ++r.l1_misses;
  if (level == sim::MemLevel::kMem || level == sim::MemLevel::kL3) {
    ++r.l2_misses;  // an L3-served access missed the L2 on its way there
  }

  s.dtlb += dtlb_walk;
  // Split the exposed stall into its queueing share and its serve share by
  // the access's latency composition; DRAM serve time is left for the
  // flush-time residual so the four mem buckets always re-add to the
  // context's stall_mem class.
  const double queue_part =
      total_wait > 0 ? stall * (queue_wait / total_wait) : 0;
  const double serve_part = stall - queue_part;
  s.queue += queue_part;
  switch (level) {
    case sim::MemLevel::kL1: s.l1_serve += serve_part; break;
    case sim::MemLevel::kL2: s.l2_serve += serve_part; break;
    case sim::MemLevel::kL3: s.l3_serve += serve_part; break;
    case sim::MemLevel::kMem: break;  // kMemServe residual at flush
  }

  if (events_ && level == sim::MemLevel::kMem) {
    TraceEvent e;
    e.kind = TraceEvent::Kind::kMemMiss;
    e.cpu = static_cast<std::uint8_t>(flat_index(ctx.id()));
    e.region = s.cur_region;
    e.t0 = ctx.now();  // hook fires before the stall advances the clock
    e.t1 = ctx.now() + stall;
    record(s, e);
  }
}

void Tracer::on_fetch_stall(const sim::HwContext& ctx, double itlb_walk,
                            double /*decode*/) {
  state(ctx).itlb += itlb_walk;
}

void Tracer::on_flush(const sim::HwContext& ctx, double busy,
                      double smt_stretch, double stall_mem,
                      double stall_branch, double stall_tlb, double stall_fe) {
  PerCtx& s = state(ctx);
  CpiStack d;
  d[StackCat::kIssue] = busy - smt_stretch;
  d[StackCat::kSmtStretch] = smt_stretch;
  d[StackCat::kL1Serve] = s.l1_serve;
  d[StackCat::kL2Serve] = s.l2_serve;
  d[StackCat::kL3Serve] = s.l3_serve;
  d[StackCat::kBusQueue] = s.queue;
  d[StackCat::kMemServe] =
      stall_mem - s.l1_serve - s.l2_serve - s.l3_serve - s.queue;
  d[StackCat::kDtlbWalk] = s.dtlb;
  // Integer-valued walk penalties make this subtraction exact, and it keeps
  // the TLB split additive even if an itlb accumulation was ever missed
  // (s.itlb is kept as a cross-check, not a source of truth).
  d[StackCat::kItlbWalk] = stall_tlb - s.dtlb;
  d[StackCat::kTcRebuild] = stall_fe;
  d[StackCat::kBranchFlush] = stall_branch;
  s.stack.add(d);
  regions_[s.cur_region_idx].stack.add(d);
  s.executed += busy + stall_mem + stall_branch + stall_tlb + stall_fe;
  s.l1_serve = s.l2_serve = s.l3_serve = s.queue = s.dtlb = s.itlb = 0;

  if (events_) {
    TraceEvent e;
    e.kind = TraceEvent::Kind::kSample;
    e.cpu = static_cast<std::uint8_t>(flat_index(ctx.id()));
    e.region = s.cur_region;
    e.t0 = e.t1 = ctx.now();
    e.v0 = busy;
    e.v1 = stall_mem;
    e.v2 = stall_branch + stall_tlb + stall_fe;
    record(s, e);
  }
}

TraceReport Tracer::finish(double wall_cycles) {
  if (attached_) {
    machine_.set_trace_sink(nullptr);
    attached_ = false;
  }

  TraceReport rep;
  rep.mode = mode_;
  rep.wall_cycles = wall_cycles;

  const auto& p = machine_.params();
  for (int chip = 0; chip < p.chips; ++chip) {
    for (int core = 0; core < p.cores_per_chip; ++core) {
      for (int c = 0; c < p.contexts_per_core; ++c) {
        sim::LogicalCpu cpu{static_cast<std::uint8_t>(chip),
                            static_cast<std::uint8_t>(core),
                            static_cast<std::uint8_t>(c)};
        PerCtx& s = ctxs_[static_cast<std::size_t>(flat_index(cpu))];
        ContextStack cs;
        cs.cpu = cpu;
        cs.active = s.executed > 0;
        cs.executed = s.executed;
        cs.stack = s.stack;
        cs.stack.close(wall_cycles);
        rep.contexts.push_back(cs);
      }
    }
  }

  rep.regions = regions_;
  std::sort(rep.regions.begin() + 1, rep.regions.end(),
            [](const RegionStats& a, const RegionStats& b) {
              return a.body < b.body;
            });

  for (const PerCtx& s : ctxs_) {
    rep.events_recorded += s.ring.total();
    rep.events_dropped += s.ring.dropped();
    for (std::size_t i = 0; i < s.ring.size(); ++i) {
      rep.events.push_back(s.ring[i]);
    }
  }
  std::stable_sort(rep.events.begin(), rep.events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.t0 != b.t0) return a.t0 < b.t0;
                     return a.cpu < b.cpu;
                   });

  rep.team_forks = team_forks_;
  rep.loop_dispatches = loop_dispatches_;
  rep.barriers = barriers_;
  rep.criticals = criticals_;
  return rep;
}

}  // namespace paxsim::trace
