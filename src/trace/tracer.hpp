// paxsim/trace/tracer.hpp
//
// The stall-attribution accountant: a sim::TraceSink that turns the
// reference-path event stream of one run into per-context CPI stacks,
// per-region aggregates and (in the event modes) ring-buffered event
// records.  Usage mirrors check::Checker:
//
//   sim::Machine machine(params);           // params.trace_mode != kOff
//   trace::Tracer tracer(machine, params.trace_mode);   // attaches
//   ... run the workload ...
//   trace::TraceReport report = tracer.finish(machine.wall_time());
//
// Attachment is RAII: the destructor detaches the sink if finish() was
// never called.  The tracer only observes — it never mutates machine
// state — and every hook it consumes lives on the reference path, which
// MachineParams::trace_mode != kOff forces; a --trace=off run is
// bit-identical to one executed before this subsystem existed.
//
// Accounting scheme (see docs/TRACING.md for the full derivation)
// ---------------------------------------------------------------
// The context's own flush deltas (on_flush) are ground truth: busy plus
// the four stall classes, exactly as they enter the counter sets.  The
// tracer refines them with per-access/per-fetch hook data accumulated
// since the previous flush:
//   busy       -> kIssue + kSmtStretch          (exact subtractive split)
//   stall_mem  -> kL1Serve + kL2Serve + kBusQueue + kMemServe (residual)
//   stall_tlb  -> kDtlbWalk + kItlbWalk         (exact: integer penalties)
//   stall_fe   -> kTcRebuild
//   stall_br   -> kBranchFlush
// Each delta is attributed to the context's current parallel region; the
// fork/barrier flushes the xomp runtime performs in trace mode align the
// flush boundaries with region boundaries, so deltas never straddle one.
// finish() closes each context's whole-run stack against wall_cycles, so
// the per-context stacks sum to the wall *bitwise* (test-enforced).
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/hooks.hpp"
#include "sim/params.hpp"
#include "sim/types.hpp"
#include "trace/report.hpp"
#include "trace/ring.hpp"
#include "trace/stack.hpp"

namespace paxsim::sim {
class Machine;
}

namespace paxsim::trace {

class Tracer final : public sim::TraceSink {
 public:
  /// Events retained per hardware context in the event modes.
  static constexpr std::size_t kDefaultRingCapacity = 8192;

  /// Attaches to @p machine (which must have no other sink and must have
  /// been constructed with trace_mode != kOff so the reference path and
  /// the region-boundary flushes are active).
  Tracer(sim::Machine& machine, sim::TraceMode mode,
         std::size_t ring_capacity = kDefaultRingCapacity);
  ~Tracer() override;

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Detaches and renders the report; @p wall_cycles is the run's wall
  /// time (every context stack is closed against it).  Idempotent on the
  /// attachment: safe to destroy afterwards.
  [[nodiscard]] TraceReport finish(double wall_cycles);

  [[nodiscard]] sim::TraceMode mode() const noexcept { return mode_; }

  // ---- sim::TraceSink -------------------------------------------------------
  void on_access(const sim::HwContext& ctx, sim::Addr addr, bool is_store,
                 sim::Dep dep) override;
  void on_fetch(const sim::HwContext& ctx, sim::Addr code_addr,
                std::uint32_t uops) override;
  void on_loop(const sim::HwContext& ctx, sim::BlockId body, std::size_t begin,
               std::size_t end) override;
  void on_team(TeamEvent ev, const void* team,
               const sim::HwContext* const* members,
               std::size_t count) override;
  void on_runtime_range(sim::Addr base, std::size_t bytes) override;
  void on_sync(SyncOp op, const sim::HwContext& ctx, sim::Addr addr) override;
  void on_thread_moved(const sim::HwContext& from,
                       const sim::HwContext& to) override;
  void on_access_stall(const sim::HwContext& ctx, sim::MemLevel level,
                       double dtlb_walk, double stall, double queue_wait,
                       double total_wait) override;
  void on_fetch_stall(const sim::HwContext& ctx, double itlb_walk,
                      double decode) override;
  void on_flush(const sim::HwContext& ctx, double busy, double smt_stretch,
                double stall_mem, double stall_branch, double stall_tlb,
                double stall_fe) override;

 private:
  /// Everything the tracer tracks about one hardware context.
  struct PerCtx {
    // Refinement accumulators since the last flush (reset by on_flush).
    double l1_serve = 0;   ///< exposed-serve share of L1-hit stalls
    double l2_serve = 0;   ///< exposed-serve share of L2-hit stalls
    double l3_serve = 0;   ///< exposed-serve share of L3-hit stalls (3-level)
    double queue = 0;      ///< queueing share of all exposed stalls
    double dtlb = 0;       ///< DTLB page-walk cycles
    double itlb = 0;       ///< ITLB page-walk cycles (cross-check only)

    CpiStack stack;        ///< whole-run stack, closed at finish()
    double executed = 0;   ///< busy + stalls total across flushes

    sim::BlockId cur_body = 0;     ///< region key: loop body, 0 = serial
    std::size_t cur_region_idx = 0;  ///< cached index into regions_
    std::uint32_t cur_region = 0;  ///< dynamic region ordinal (0 = outside)
    const void* team = nullptr;    ///< team currently running here

    RingBuffer<TraceEvent> ring;
  };

  [[nodiscard]] PerCtx& state(const sim::HwContext& ctx) noexcept;
  /// Dense slot of @p ctx: (chip*cores_per_chip + core)*contexts_per_core +
  /// context.  Equals LogicalCpu::flat() on the default 2x2x2 shape, and
  /// stays collision-free on arbitrary topologies (flat() would alias once
  /// cores_per_chip or contexts_per_core leave the Paxville shape).
  [[nodiscard]] int flat_index(sim::LogicalCpu cpu) const noexcept {
    return (cpu.chip * cores_per_chip_ + cpu.core) * contexts_per_core_ +
           cpu.context;
  }
  /// RegionStats slot for @p body, created on first use (0 pre-created).
  [[nodiscard]] std::size_t region_index(sim::BlockId body);
  void record(PerCtx& s, const TraceEvent& ev) {
    if (events_) s.ring.push(ev);
  }

  sim::Machine& machine_;
  sim::TraceMode mode_;
  bool attached_ = false;
  bool events_ = false;  ///< ring recording active (kEvents / kFull)
  int cores_per_chip_ = 2;
  int contexts_per_core_ = 2;

  std::vector<PerCtx> ctxs_;  ///< indexed by flat_index()
  std::vector<RegionStats> regions_;  ///< [0] is the serial bucket
  std::unordered_map<sim::BlockId, std::size_t> region_index_;
  std::unordered_map<const void*, std::vector<int>> team_members_;
  std::uint32_t next_region_ = 0;

  std::uint64_t team_forks_ = 0;
  std::uint64_t loop_dispatches_ = 0;
  std::uint64_t barriers_ = 0;
  std::uint64_t criticals_ = 0;
};

}  // namespace paxsim::trace
