// paxsim/tune/space.cpp
#include "tune/space.hpp"

#include <stdexcept>

namespace paxsim::tune {

std::size_t SearchSpace::axis_size(std::size_t axis) const {
  switch (axis) {
    case 0: return configs.size();
    case 1: return sched_kinds.size();
    case 2: return chunks.size();
    case 3: return grains.size();
    case 4: return scales.size();
    default: throw std::invalid_argument("SearchSpace: bad axis");
  }
}

std::size_t SearchSpace::size() const {
  std::size_t n = 1;
  for (std::size_t a = 0; a < kAxes; ++a) n *= axis_size(a);
  return n;
}

std::size_t SearchSpace::distinct_cells() const {
  // Kernel-default schedule rows collapse the chunk axis to one point.
  std::size_t defaults = 0;
  for (const int k : sched_kinds) {
    if (k < 0) ++defaults;
  }
  const std::size_t per_config =
      (defaults + (sched_kinds.size() - defaults) * chunks.size()) *
      grains.size() * scales.size();
  return configs.size() * per_config;
}

std::size_t SearchSpace::to_flat(const Point& p) const {
  // Mixed radix, config most significant — grid order walks configurations
  // in Table-1 order first, which keeps trajectories readable.
  std::size_t flat = p.config;
  flat = flat * sched_kinds.size() + p.sched;
  flat = flat * chunks.size() + p.chunk;
  flat = flat * grains.size() + p.grain;
  flat = flat * scales.size() + p.scale;
  return flat;
}

Point SearchSpace::from_flat(std::size_t flat) const {
  Point p;
  p.scale = flat % scales.size();
  flat /= scales.size();
  p.grain = flat % grains.size();
  flat /= grains.size();
  p.chunk = flat % chunks.size();
  flat /= chunks.size();
  p.sched = flat % sched_kinds.size();
  flat /= sched_kinds.size();
  p.config = flat;
  return p;
}

Point SearchSpace::canonicalize(Point p) const {
  if (sched_kinds[p.sched] < 0) p.chunk = 0;
  return p;
}

namespace {

// std::to_string(double) renders "16.000000"; labels want "16".
std::string trim_double(double v) {
  std::string s = std::to_string(v);
  const std::size_t dot = s.find('.');
  if (dot == std::string::npos) return s;
  std::size_t last = s.find_last_not_of('0');
  if (last == dot) --last;
  s.erase(last + 1);
  return s;
}

}  // namespace

std::string SearchSpace::describe(const Point& p) const {
  const int kind = sched_kinds[p.sched];
  std::string s = "config=\"";
  s += configs[p.config].name;
  s += "\" sched=";
  s += kind < 0 ? "default"
                : (kind == 0 ? "static" : (kind == 1 ? "dynamic" : "guided"));
  if (kind >= 0) {
    s += " chunk=";
    s += std::to_string(chunks[p.chunk]);
  }
  s += " grain=";
  s += std::to_string(grains[p.grain]);
  s += " scale=";
  s += trim_double(scales[p.scale]);
  return s;
}

void SearchSpace::validate() const {
  for (std::size_t a = 0; a < kAxes; ++a) {
    if (axis_size(a) == 0) {
      throw std::invalid_argument("SearchSpace: empty axis " +
                                  std::to_string(a));
    }
  }
  for (const int k : sched_kinds) {
    if (k < -1 || k > 2) {
      throw std::invalid_argument("SearchSpace: bad schedule kind " +
                                  std::to_string(k));
    }
  }
  for (const std::size_t g : grains) {
    if (g < 1) throw std::invalid_argument("SearchSpace: grain must be >= 1");
  }
  for (const double s : scales) {
    if (s < 1.0) throw std::invalid_argument("SearchSpace: scale must be >= 1");
  }
}

}  // namespace paxsim::tune
