// paxsim/tune/space.hpp
//
// The paxtune search space: the cross-product of every axis a configuration
// question spans — Table-1 row (threads x placement, from the machine's
// configuration table), loop-schedule override, schedule chunk, iteration
// grain and machine capacity scale.  Machines themselves are the outer axis
// of a tuning run (each machine has its own configuration table, so the
// driver builds one SearchSpace per machine rather than forcing a jagged
// axis into the product).
//
// Points are axis-index tuples (not resolved values), which is what the
// search strategies want: coordinate descent moves along one index axis at
// a time, and the annealer proposes single-axis perturbations.  A point's
// flat index is its mixed-radix encoding; canonicalize() collapses the
// points that name the same cell (the kernel-default schedule has no chunk
// parameter) so strategies never spend two evaluations on one cell.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "harness/config.hpp"

namespace paxsim::tune {

/// One candidate: indices into each SearchSpace axis.
struct Point {
  std::size_t config = 0;
  std::size_t sched = 0;
  std::size_t chunk = 0;
  std::size_t grain = 0;
  std::size_t scale = 0;

  friend bool operator==(const Point&, const Point&) = default;
};

/// The per-machine axis lists.  Defaults make every axis but the
/// configuration a single point, so the default space IS the Table-1 row
/// set — the space the paper's Table 2 brute-forced.
struct SearchSpace {
  std::vector<harness::StudyConfig> configs;  ///< the machine's Table-1 rows
  std::vector<int> sched_kinds{-1};           ///< -1 = kernel default
  std::vector<std::size_t> chunks{0};         ///< 0 = schedule's default
  std::vector<std::size_t> grains{1};
  std::vector<double> scales{16.0};

  static constexpr std::size_t kAxes = 5;

  [[nodiscard]] std::size_t axis_size(std::size_t axis) const;
  /// Product of all axis sizes (canonical duplicates included).
  [[nodiscard]] std::size_t size() const;
  /// Number of DISTINCT cells (canonical points) in the space.
  [[nodiscard]] std::size_t distinct_cells() const;

  [[nodiscard]] std::size_t to_flat(const Point& p) const;
  [[nodiscard]] Point from_flat(std::size_t flat) const;

  /// Collapses aliases of the same cell: the kernel-default schedule
  /// (sched_kinds[p.sched] == -1) ignores the chunk parameter, so its chunk
  /// index is forced to 0.
  [[nodiscard]] Point canonicalize(Point p) const;

  /// Human-readable axis values of @p p (for trajectories and reports).
  [[nodiscard]] std::string describe(const Point& p) const;

  /// Throws std::invalid_argument unless every axis is non-empty and every
  /// index of @p p is in range.
  void validate() const;
};

}  // namespace paxsim::tune
