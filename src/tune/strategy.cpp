// paxsim/tune/strategy.cpp
#include "tune/strategy.hpp"

#include <cmath>
#include <unordered_set>
#include <utility>

namespace paxsim::tune {

namespace {

/// Exploration log shared by every strategy: distinct canonical points in
/// first-visit order, deduplicated by flat index.
class Visited {
 public:
  explicit Visited(const SearchSpace& space) : space_(space) {}

  /// Canonicalizes @p p, records the first visit, and returns the model
  /// score (memoized by the evaluator, so revisits are free).
  double visit(Point p, Evaluator& eval) {
    p = space_.canonicalize(p);
    if (seen_.insert(space_.to_flat(p)).second) order_.push_back(p);
    return eval.predicted_wall(p);
  }

  [[nodiscard]] std::vector<Point> take() { return std::move(order_); }

 private:
  const SearchSpace& space_;
  std::unordered_set<std::size_t> seen_;
  std::vector<Point> order_;
};

class GridStrategy final : public Strategy {
 public:
  [[nodiscard]] std::string_view name() const override { return "grid"; }
  [[nodiscard]] bool exhaustive() const override { return true; }

  std::vector<Point> explore(const SearchSpace& space, Evaluator& eval,
                             std::uint64_t /*seed*/) override {
    space.validate();
    Visited v(space);
    const std::size_t n = space.size();
    for (std::size_t flat = 0; flat < n; ++flat) {
      v.visit(space.from_flat(flat), eval);
    }
    return v.take();
  }
};

class GreedyStrategy final : public Strategy {
 public:
  [[nodiscard]] std::string_view name() const override { return "greedy"; }

  std::vector<Point> explore(const SearchSpace& space, Evaluator& eval,
                             std::uint64_t /*seed*/) override {
    space.validate();
    Visited v(space);
    Point cur;  // all-zero indices: Table-1 row 0 with default knobs
    double cur_score = v.visit(cur, eval);

    // Coordinate descent: sweep every axis, trying every value of that axis
    // with the other axes pinned; move only on strict improvement (ties
    // keep the incumbent, which makes the walk deterministic).  Stop when a
    // full sweep moves nothing.
    bool moved = true;
    while (moved) {
      moved = false;
      for (std::size_t axis = 0; axis < SearchSpace::kAxes; ++axis) {
        const std::size_t n = space.axis_size(axis);
        std::size_t best_idx = axis_index(cur, axis);
        double best_score = cur_score;
        for (std::size_t i = 0; i < n; ++i) {
          Point cand = cur;
          set_axis_index(&cand, axis, i);
          const double s = v.visit(cand, eval);
          if (s < best_score) {
            best_score = s;
            best_idx = i;
          }
        }
        if (best_idx != axis_index(cur, axis)) {
          set_axis_index(&cur, axis, best_idx);
          cur = space.canonicalize(cur);
          cur_score = best_score;
          moved = true;
        }
      }
    }
    return v.take();
  }

 private:
  static std::size_t axis_index(const Point& p, std::size_t axis) {
    switch (axis) {
      case 0: return p.config;
      case 1: return p.sched;
      case 2: return p.chunk;
      case 3: return p.grain;
      default: return p.scale;
    }
  }
  static void set_axis_index(Point* p, std::size_t axis, std::size_t i) {
    switch (axis) {
      case 0: p->config = i; break;
      case 1: p->sched = i; break;
      case 2: p->chunk = i; break;
      case 3: p->grain = i; break;
      default: p->scale = i; break;
    }
  }
};

class AnnealStrategy final : public Strategy {
 public:
  explicit AnnealStrategy(int budget) : budget_(budget < 1 ? 1 : budget) {}

  [[nodiscard]] std::string_view name() const override { return "anneal"; }

  std::vector<Point> explore(const SearchSpace& space, Evaluator& eval,
                             std::uint64_t seed) override {
    space.validate();
    Visited v(space);
    SplitMix64 rng(seed);

    Point cur = space.from_flat(rng.below(space.size()));
    double cur_score = v.visit(cur, eval);

    // Geometric ladder from a 20% relative-delta acceptance scale down to
    // 0.5% over the budget; epsilon-greedy jumps keep the walk from
    // pinning to one basin on rugged model landscapes.
    const double t0 = 0.20;
    const double t1 = 0.005;
    const double decay =
        budget_ > 1 ? std::exp(std::log(t1 / t0) / (budget_ - 1)) : 1.0;
    constexpr double kEpsilon = 0.10;

    double temp = t0;
    for (int step = 0; step < budget_; ++step, temp *= decay) {
      Point cand;
      if (rng.uniform() < kEpsilon) {
        cand = space.from_flat(rng.below(space.size()));
      } else {
        // Single-axis perturbation to a different value of that axis.
        cand = cur;
        const std::size_t axis = rng.below(SearchSpace::kAxes);
        const std::size_t n = space.axis_size(axis);
        if (n > 1) {
          const std::size_t shift = 1 + rng.below(n - 1);
          const std::size_t cur_i = GreedyAxis::get(cand, axis);
          GreedyAxis::set(&cand, axis, (cur_i + shift) % n);
        }
      }
      const double s = v.visit(cand, eval);
      const double rel =
          cur_score > 0 ? (s - cur_score) / cur_score : (s - cur_score);
      if (rel <= 0 || rng.uniform() < std::exp(-rel / temp)) {
        cur = space.canonicalize(cand);
        cur_score = s;
      }
    }
    return v.take();
  }

 private:
  // Axis accessors shared with the greedy walk.
  struct GreedyAxis {
    static std::size_t get(const Point& p, std::size_t axis) {
      switch (axis) {
        case 0: return p.config;
        case 1: return p.sched;
        case 2: return p.chunk;
        case 3: return p.grain;
        default: return p.scale;
      }
    }
    static void set(Point* p, std::size_t axis, std::size_t i) {
      switch (axis) {
        case 0: p->config = i; break;
        case 1: p->sched = i; break;
        case 2: p->chunk = i; break;
        case 3: p->grain = i; break;
        default: p->scale = i; break;
      }
    }
  };

  int budget_;
};

}  // namespace

std::unique_ptr<Strategy> make_grid() { return std::make_unique<GridStrategy>(); }

std::unique_ptr<Strategy> make_greedy() {
  return std::make_unique<GreedyStrategy>();
}

std::unique_ptr<Strategy> make_anneal(int budget) {
  return std::make_unique<AnnealStrategy>(budget);
}

std::unique_ptr<Strategy> make_strategy(std::string_view name,
                                        int anneal_budget) {
  if (name == "grid") return make_grid();
  if (name == "greedy") return make_greedy();
  if (name == "anneal") return make_anneal(anneal_budget);
  return nullptr;
}

}  // namespace paxsim::tune
