// paxsim/tune/strategy.hpp
//
// Search strategies over a tune::SearchSpace, behind one Strategy
// interface.  A strategy explores the space by scoring candidate points
// through an Evaluator — the MODEL tier (ExperimentEngine::predict), which
// answers in microseconds — and returns the points it visited in
// exploration order.  The driver (tuner.hpp) then validates the most
// promising explored points on the SIMULATOR and crowns the best by
// measured wall cycles; a strategy that declares itself exhaustive() (the
// grid) gets every explored point validated, making it the brute-force
// ground truth the cheaper strategies are judged against.
//
// Determinism is part of the interface contract: explore() must be a pure
// function of (space, evaluator answers, seed).  All randomness flows from
// the seeded SplitMix64 below — never from host entropy — so the same seed
// replays the same trajectory on any machine (test-enforced).
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "tune/space.hpp"

namespace paxsim::tune {

/// Deterministic 64-bit PRNG (Steele et al.'s SplitMix64): tiny state,
/// full-period, and — unlike std::mt19937 adapters — identical output on
/// every platform and standard library.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() noexcept {
    state_ += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, n).
  std::uint64_t below(std::uint64_t n) noexcept { return next() % n; }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

/// The model-tier scorer a strategy explores through.  Implementations
/// memoize per distinct cell, so re-asking a point is free.
class Evaluator {
 public:
  virtual ~Evaluator() = default;

  /// Model-predicted wall cycles of (the cell named by) @p p — lower is
  /// better.  @p p is canonical.
  virtual double predicted_wall(const Point& p) = 0;
};

/// One search strategy.  Stateless across explore() calls.
class Strategy {
 public:
  virtual ~Strategy() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// True when every explored point must be simulator-validated (the
  /// exhaustive grid — the ground-truth reference).  False strategies get
  /// only their top-k validated.
  [[nodiscard]] virtual bool exhaustive() const { return false; }

  /// Explores @p space, scoring points via @p eval.  Returns the DISTINCT
  /// canonical points visited, in exploration order.  Deterministic for a
  /// given (space, eval, seed).
  [[nodiscard]] virtual std::vector<Point> explore(const SearchSpace& space,
                                                   Evaluator& eval,
                                                   std::uint64_t seed) = 0;
};

/// Exhaustive enumeration in flat (Table-1-major) order.
[[nodiscard]] std::unique_ptr<Strategy> make_grid();

/// Greedy coordinate descent: sweep each axis in turn, move to the axis
/// value with the best model score, repeat until a full sweep improves
/// nothing.  Deterministic (ties keep the current value); the seed is
/// unused.
[[nodiscard]] std::unique_ptr<Strategy> make_greedy();

/// Simulated annealing with epsilon-greedy restarts: single-axis random
/// proposals accepted by Metropolis on the relative score delta, a
/// geometric temperature ladder, and an epsilon chance per step of jumping
/// to a uniformly random point.  @p budget bounds the number of proposal
/// steps.
[[nodiscard]] std::unique_ptr<Strategy> make_anneal(int budget);

/// Factory by CLI name: "grid", "greedy" or "anneal"; null on unknown.
[[nodiscard]] std::unique_ptr<Strategy> make_strategy(std::string_view name,
                                                      int anneal_budget);

}  // namespace paxsim::tune
