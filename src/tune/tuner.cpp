// paxsim/tune/tuner.cpp
#include "tune/tuner.hpp"

#include <algorithm>
#include <ostream>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "report/json.hpp"

namespace paxsim::tune {

namespace {

/// Builds the RunOptions of one search point: the base options with the
/// point's schedule, grain and scale substituted in.
harness::RunOptions options_for(const SearchSpace& space, const Point& p,
                                const harness::RunOptions& base) {
  harness::RunOptions opt = base;
  const int kind = space.sched_kinds[p.sched];
  opt.sched_kind = kind;
  opt.sched_chunk = kind < 0 ? 0 : space.chunks[p.chunk];
  opt.grain = space.grains[p.grain];
  opt.machine_scale = space.scales[p.scale];
  return opt;
}

/// Model-tier evaluator over the engine: each distinct point costs one
/// ExperimentEngine::predict (microseconds after the memoized profiling
/// run); revisits are answered from a local memo.
class EngineEvaluator final : public Evaluator {
 public:
  EngineEvaluator(harness::ExperimentEngine& engine, npb::Benchmark bench,
                  const SearchSpace& space, const harness::RunOptions& base,
                  std::uint64_t seed)
      : engine_(engine), bench_(bench), space_(space), base_(base),
        seed_(seed) {}

  double predicted_wall(const Point& p) override {
    const std::size_t flat = space_.to_flat(p);
    const auto it = memo_.find(flat);
    if (it != memo_.end()) return it->second;
    const harness::RunOptions opt = options_for(space_, p, base_);
    const harness::StudyConfig& cfg = space_.configs[p.config];
    const double wall =
        engine_.predict(bench_, cfg, opt, seed_).prediction.wall_cycles;
    memo_.emplace(flat, wall);
    return wall;
  }

  [[nodiscard]] std::size_t distinct_evaluations() const {
    return memo_.size();
  }

 private:
  harness::ExperimentEngine& engine_;
  npb::Benchmark bench_;
  const SearchSpace& space_;
  const harness::RunOptions& base_;
  std::uint64_t seed_;
  std::unordered_map<std::size_t, double> memo_;
};

}  // namespace

TuneReport tune(harness::ExperimentEngine& engine,
                const std::vector<npb::Benchmark>& benches,
                const harness::RunOptions& base_opt,
                const std::string& machine_spec, const TuneOptions& topt) {
  std::unique_ptr<Strategy> strategy =
      make_strategy(topt.strategy, topt.anneal_budget);
  if (strategy == nullptr) {
    throw std::invalid_argument("unknown strategy '" + topt.strategy +
                                "' (use grid, greedy or anneal)");
  }
  if (topt.top_k < 1) throw std::invalid_argument("top_k must be >= 1");

  // The search space is per-machine: the configuration axis is the
  // machine's own Table-1 row set (Serial included — the tuner is not told
  // that parallel wins; it has to find out).
  SearchSpace space;
  space.configs = base_opt.topology == nullptr
                      ? harness::all_configs()
                      : harness::configs_for(*base_opt.topology);
  space.sched_kinds = topt.sched_kinds;
  space.chunks = topt.chunks;
  space.grains = topt.grains;
  space.scales = topt.scales;
  space.validate();

  TuneReport report;
  report.strategy = std::string(strategy->name());
  report.top_k = topt.top_k;
  report.seed = base_opt.base_seed;
  report.machine = machine_spec;
  report.problem_class = npb::class_name(base_opt.cls)[0];

  for (const npb::Benchmark bench : benches) {
    const std::uint64_t seed = base_opt.trial_seed(0);
    KernelResult kr;
    kr.bench = bench;
    kr.machine = machine_spec;
    kr.space_cells = space.distinct_cells();

    // ---- explore: model tier only --------------------------------------
    EngineEvaluator eval(engine, bench, space, base_opt, seed);
    const std::vector<Point> explored =
        strategy->explore(space, eval, base_opt.base_seed);
    kr.explored = explored.size();
    kr.model_cells = eval.distinct_evaluations();
    kr.trajectory.reserve(explored.size());
    for (const Point& p : explored) {
      kr.trajectory.push_back(
          {p, space.describe(p), eval.predicted_wall(p)});
    }

    // ---- rank the frontier by the model's opinion -----------------------
    std::vector<std::size_t> order(explored.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return eval.predicted_wall(explored[a]) <
                              eval.predicted_wall(explored[b]);
                     });
    const std::size_t k =
        strategy->exhaustive()
            ? explored.size()
            : std::min<std::size_t>(static_cast<std::size_t>(topt.top_k),
                                    explored.size());

    // ---- validate: simulator tier on the top of the ranking -------------
    const std::uint64_t misses_before = engine.stats().cache_misses;
    for (std::size_t rank = 0; rank < k; ++rank) {
      const Point& p = explored[order[rank]];
      const harness::RunOptions opt = options_for(space, p, base_opt);
      const harness::StudyConfig& cfg = space.configs[p.config];
      const harness::RunResult run = engine.single(bench, cfg, opt, seed);
      // The serial anchor of this point's profile (already memoized by the
      // explore phase) is the speedup denominator — no extra serial cell.
      const double anchor =
          engine.profile(bench, opt, seed)->anchor.wall_cycles;
      Validated v;
      v.point = p;
      v.label = space.describe(p);
      v.config_name = cfg.name;
      v.model_rank = rank;
      v.predicted_wall = eval.predicted_wall(p);
      v.sim_wall = run.wall_cycles;
      v.sim_speedup = run.wall_cycles > 0 ? anchor / run.wall_cycles : 0;
      kr.validated.push_back(std::move(v));
    }
    kr.sim_cells = engine.stats().cache_misses - misses_before;

    // ---- crown by measured wall (ties keep the model's order) -----------
    std::size_t best = 0;
    for (std::size_t i = 1; i < kr.validated.size(); ++i) {
      if (kr.validated[i].sim_wall < kr.validated[best].sim_wall) best = i;
    }
    kr.best = kr.validated[best];
    kr.model_agrees = kr.best.model_rank == 0;
    report.kernels.push_back(std::move(kr));
  }

  report.stats = engine.stats();
  return report;
}

namespace {

void write_validated(report::Json& j, const Validated& v) {
  j.object();
  j.field("config", v.config_name);
  j.field("label", v.label);
  j.field("model_rank", static_cast<std::uint64_t>(v.model_rank));
  j.field("predicted_wall_cycles", v.predicted_wall);
  j.field("sim_wall_cycles", v.sim_wall);
  j.field("sim_speedup", v.sim_speedup);
  j.end();
}

}  // namespace

void write_tuning_report(std::ostream& out, const TuneReport& report) {
  report::Json j(out);
  j.begin_document("tuning_report");
  j.field("strategy", report.strategy);
  j.field("top_k", report.top_k);
  j.field("seed", report.seed);
  j.field("machine", report.machine.empty() ? std::string("default")
                                            : report.machine);
  j.field("class", std::string(1, report.problem_class));
  j.key("kernels").array();
  for (const KernelResult& kr : report.kernels) {
    j.object();
    j.field("bench", npb::benchmark_name(kr.bench));
    j.field("machine",
            kr.machine.empty() ? std::string("default") : kr.machine);
    j.field("space_cells", static_cast<std::uint64_t>(kr.space_cells));
    j.field("explored", static_cast<std::uint64_t>(kr.explored));
    j.field("model_cells", static_cast<std::uint64_t>(kr.model_cells));
    j.field("sim_cells", static_cast<std::uint64_t>(kr.sim_cells));
    j.field("model_agrees", kr.model_agrees);
    j.key("best");
    write_validated(j, kr.best);
    j.key("validated").array();
    for (const Validated& v : kr.validated) write_validated(j, v);
    j.end();
    j.key("trajectory").array();
    for (const TrajectoryStep& t : kr.trajectory) {
      j.object();
      j.field("label", t.label);
      j.field("predicted_wall_cycles", t.predicted_wall);
      j.end();
    }
    j.end();
    j.end();
  }
  j.end();
  j.key("engine").object();
  j.field("cache_hits", report.stats.cache_hits);
  j.field("cache_misses", report.stats.cache_misses);
  j.field("store_hits", report.stats.store_hits);
  j.field("store_writes", report.stats.store_writes);
  j.field("machines_created", report.stats.machines_created);
  j.field("machines_acquired", report.stats.machines_acquired);
  j.end();
  j.finish();
}

}  // namespace paxsim::tune
