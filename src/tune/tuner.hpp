// paxsim/tune/tuner.hpp
//
// The paxtune driver: model-first autotuning over the full configuration
// space.  For each kernel it lets a Strategy explore a SearchSpace through
// the analytical-model tier (ExperimentEngine::predict — microseconds per
// point after the one memoized profiling run), ranks the explored frontier
// by predicted wall cycles, then validates only the most promising
// candidates on the cycle-level simulator and crowns the best by MEASURED
// wall cycles.  The exhaustive grid validates everything it explores,
// making it the brute-force ground truth; greedy/anneal typically reach the
// same winners with a quarter of the simulator invocations (test-enforced
// against the engine's cache-miss counters).
//
// Everything downstream of the seed is deterministic: the model answers are
// pure, the strategies draw randomness only from their SplitMix64 stream,
// and the simulator cells are the engine's usual bit-reproducible cells —
// so a tuning run is itself a reproducible experiment, and its report says
// which seed to replay.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "harness/engine.hpp"
#include "tune/space.hpp"
#include "tune/strategy.hpp"

namespace paxsim::tune {

/// Knobs of one tuning run (the search side; simulation knobs — class,
/// seed, verify, machine — ride in on the RunOptions/machine spec).
struct TuneOptions {
  std::string strategy = "greedy";  ///< grid | greedy | anneal
  /// Simulator validations per kernel for non-exhaustive strategies: the
  /// top-k model-ranked explored points.  The grid ignores this and
  /// validates everything it explored.
  int top_k = 2;
  int anneal_budget = 48;  ///< proposal steps for --strategy=anneal

  // Axis lists beyond the machine's configuration table.  Defaults keep
  // every extra axis a single point, so the default space is exactly the
  // Table-1 row set the paper brute-forced.
  std::vector<int> sched_kinds{-1};
  std::vector<std::size_t> chunks{0};
  std::vector<std::size_t> grains{1};
  std::vector<double> scales{16.0};
};

/// One simulator-validated candidate.
struct Validated {
  Point point;
  std::string label;          ///< SearchSpace::describe(point)
  std::string config_name;    ///< resolved Table-1 row name
  std::size_t model_rank = 0; ///< 0 = model's favourite among explored
  double predicted_wall = 0;  ///< model wall cycles
  double sim_wall = 0;        ///< measured (simulated) wall cycles
  double sim_speedup = 0;     ///< serial anchor wall / sim_wall
};

/// One explored point, in exploration order (the strategy trajectory).
struct TrajectoryStep {
  Point point;
  std::string label;
  double predicted_wall = 0;
};

/// Tuning outcome for one kernel on one machine.
struct KernelResult {
  npb::Benchmark bench{};
  std::string machine;           ///< machine spec ("" = calibrated default)
  Validated best;                ///< winner by measured sim wall
  bool model_agrees = false;     ///< model rank 0 == simulator winner
  std::size_t space_cells = 0;   ///< distinct cells in the search space
  std::size_t explored = 0;      ///< distinct points the strategy visited
  std::size_t model_cells = 0;   ///< distinct model evaluations
  std::size_t sim_cells = 0;     ///< simulator invocations (engine misses)
  std::vector<TrajectoryStep> trajectory;
  std::vector<Validated> validated;  ///< model-rank order
};

/// A whole tuning run: per-kernel winners plus the engine's ledger.
struct TuneReport {
  std::string strategy;
  int top_k = 0;
  std::uint64_t seed = 0;
  std::string machine;
  char problem_class = 'S';
  std::vector<KernelResult> kernels;
  harness::EngineStats stats;  ///< engine counters after the run
};

/// Tunes every benchmark in @p benches on @p engine.  @p base_opt supplies
/// the problem class, seeding, verification policy and the machine
/// topology (RunOptions::topology; @p machine_spec is its display name).
/// Throws std::invalid_argument on an unknown strategy or an invalid
/// search space.
[[nodiscard]] TuneReport tune(harness::ExperimentEngine& engine,
                              const std::vector<npb::Benchmark>& benches,
                              const harness::RunOptions& base_opt,
                              const std::string& machine_spec,
                              const TuneOptions& topt);

/// Emits @p report as a schema-versioned "tuning_report" JSON document on
/// @p out (the PR 5 report layer's envelope).
void write_tuning_report(std::ostream& out, const TuneReport& report);

}  // namespace paxsim::tune
