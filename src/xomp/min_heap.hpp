// paxsim/xomp/min_heap.hpp
//
// Indexed binary min-heap over a dense id space [0, capacity), keyed by a
// double (a virtual-time clock).  Used by the runtime and the harness to
// pick the context/program furthest behind in virtual time in O(log n)
// instead of a linear scan per step.
//
// Determinism: ordering is lexicographic on (key, tie, id).  The tie value
// defaults to the id itself, which reproduces exactly the tie-break of the
// linear scans this heap replaced — "the first strictly smaller clock wins",
// i.e. equal clocks resolve to the lowest rank.  Callers that participate in
// a machine-global order (the runtime's ready heap feeding the parallel
// backend's LP merge) instead pass an explicit tie — the context's flat cpu
// id — so heap dequeue and cross-LP event merge share one total order
// independent of insertion order or id numbering (covered by the tie-storm
// unit test).
#pragma once

#include <cstddef>
#include <vector>

namespace paxsim::xomp {

class IndexedMinHeap {
 public:
  explicit IndexedMinHeap(int capacity = 0) { reset(capacity); }

  /// Empties the heap and re-sizes the id space to [0, capacity).
  void reset(int capacity) {
    heap_.clear();
    heap_.reserve(static_cast<std::size_t>(capacity));
    key_.assign(static_cast<std::size_t>(capacity), 0.0);
    tie_.assign(static_cast<std::size_t>(capacity), 0);
    pos_.assign(static_cast<std::size_t>(capacity), -1);
    for (int i = 0; i < capacity; ++i) tie_[static_cast<std::size_t>(i)] = i;
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  [[nodiscard]] bool contains(int id) const noexcept {
    return pos_[static_cast<std::size_t>(id)] >= 0;
  }
  [[nodiscard]] double key_of(int id) const noexcept {
    return key_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] int tie_of(int id) const noexcept {
    return tie_[static_cast<std::size_t>(id)];
  }

  /// Id with the smallest (key, tie, id); the heap must be non-empty.
  [[nodiscard]] int top() const noexcept { return heap_.front(); }

  /// Inserts @p id (must not be present) with @p key.  @p tie overrides the
  /// id-order tie-break (ids sharing a tie fall back to id order).
  void push(int id, double key) { push(id, key, id); }
  void push(int id, double key, int tie) {
    key_[static_cast<std::size_t>(id)] = key;
    tie_[static_cast<std::size_t>(id)] = tie;
    pos_[static_cast<std::size_t>(id)] = static_cast<int>(heap_.size());
    heap_.push_back(id);
    sift_up(heap_.size() - 1);
  }

  /// Removes @p id (must be present).
  void remove(int id) {
    const std::size_t slot =
        static_cast<std::size_t>(pos_[static_cast<std::size_t>(id)]);
    const int moved = heap_.back();
    heap_.pop_back();
    pos_[static_cast<std::size_t>(id)] = -1;
    if (slot < heap_.size()) {
      heap_[slot] = moved;
      pos_[static_cast<std::size_t>(moved)] = static_cast<int>(slot);
      if (!sift_down(slot)) sift_up(slot);
    }
  }

  void pop() { remove(heap_.front()); }

  /// Changes @p id's key (must be present) and restores heap order.
  void update(int id, double key) {
    key_[static_cast<std::size_t>(id)] = key;
    const std::size_t slot =
        static_cast<std::size_t>(pos_[static_cast<std::size_t>(id)]);
    if (!sift_down(slot)) sift_up(slot);
  }

 private:
  [[nodiscard]] bool less(int a, int b) const noexcept {
    const double ka = key_[static_cast<std::size_t>(a)];
    const double kb = key_[static_cast<std::size_t>(b)];
    if (ka != kb) return ka < kb;
    const int ta = tie_[static_cast<std::size_t>(a)];
    const int tb = tie_[static_cast<std::size_t>(b)];
    return ta < tb || (ta == tb && a < b);
  }

  void swap_slots(std::size_t i, std::size_t j) noexcept {
    std::swap(heap_[i], heap_[j]);
    pos_[static_cast<std::size_t>(heap_[i])] = static_cast<int>(i);
    pos_[static_cast<std::size_t>(heap_[j])] = static_cast<int>(j);
  }

  void sift_up(std::size_t slot) noexcept {
    while (slot > 0) {
      const std::size_t parent = (slot - 1) / 2;
      if (!less(heap_[slot], heap_[parent])) break;
      swap_slots(slot, parent);
      slot = parent;
    }
  }

  /// Returns true if the element moved.
  bool sift_down(std::size_t slot) noexcept {
    bool moved = false;
    for (;;) {
      std::size_t best = slot;
      const std::size_t l = 2 * slot + 1;
      const std::size_t r = 2 * slot + 2;
      if (l < heap_.size() && less(heap_[l], heap_[best])) best = l;
      if (r < heap_.size() && less(heap_[r], heap_[best])) best = r;
      if (best == slot) return moved;
      swap_slots(slot, best);
      slot = best;
      moved = true;
    }
  }

  std::vector<int> heap_;    // slot -> id
  std::vector<int> pos_;     // id -> slot (-1 if absent)
  std::vector<double> key_;  // id -> key
  std::vector<int> tie_;     // id -> tie-break value (defaults to id)
};

}  // namespace paxsim::xomp
