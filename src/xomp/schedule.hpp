// paxsim/xomp/schedule.hpp
//
// OpenMP-style loop schedules and the static-code-block descriptor kernels
// use to describe their loop bodies to the front-end model.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/types.hpp"

namespace paxsim::xomp {

/// OpenMP loop schedule kinds (OpenMP 2.5, the version the paper used).
enum class ScheduleKind : std::uint8_t {
  kStatic,   ///< contiguous blocks, decided at region entry
  kDynamic,  ///< threads pull fixed-size chunks from a shared counter
  kGuided,   ///< chunk size decays with remaining work
};

/// A loop schedule: kind plus chunk parameter (0 = implementation default,
/// which for static means one contiguous block per thread and for
/// dynamic/guided means chunk size 1).
struct Schedule {
  ScheduleKind kind = ScheduleKind::kStatic;
  std::size_t chunk = 0;

  [[nodiscard]] static constexpr Schedule static_default() noexcept { return {}; }
  [[nodiscard]] static constexpr Schedule dynamic(std::size_t c = 1) noexcept {
    return {ScheduleKind::kDynamic, c};
  }
  [[nodiscard]] static constexpr Schedule guided(std::size_t c = 1) noexcept {
    return {ScheduleKind::kGuided, c};
  }
};

/// Describes the static code of a loop body: a block id (unique within the
/// program) and its decoded size in uops.  The runtime fetches the block
/// through the trace cache once per dynamic iteration.
struct CodeBlock {
  sim::BlockId id = 0;
  std::uint32_t uops = 8;
};

}  // namespace paxsim::xomp
