#include "xomp/team.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace paxsim::xomp {

Team::Team(sim::Machine& machine, std::vector<sim::LogicalCpu> cpus,
           perf::CounterSet* counters, sim::AddressSpace& space)
    : machine_(&machine), counters_(counters), code_base_(space.code_base()) {
  assert(!cpus.empty() && "a team needs at least one thread");
  ctxs_.reserve(cpus.size());
  for (const sim::LogicalCpu cpu : cpus) {
    sim::HwContext& ctx = machine.context(cpu);
    ctx.bind(counters, code_base_);
    ctxs_.push_back(&ctx);
  }
  // One cache line each so runtime structures do not falsely share.
  lock_addr_ = space.alloc(64, 64);
  cursor_addr_ = space.alloc(64, 64);
  barrier_addr_ = space.alloc(64, 64);
  reduction_addr_ = space.alloc(64 * ctxs_.size(), 64);
  if (sim::TraceSink* sink = machine_->trace_sink()) {
    // The runtime's own shared lines model atomic hardware operations;
    // declare them so the race detector exempts the plain load/store
    // sequences the runtime issues against them.
    sink->on_runtime_range(lock_addr_, 64);
    sink->on_runtime_range(cursor_addr_, 64);
    sink->on_runtime_range(barrier_addr_, 64);
    sink->on_runtime_range(reduction_addr_, 64 * ctxs_.size());
  }
  recompute_ties();
  notify_team(sim::TraceSink::TeamEvent::kCreate);
}

void Team::recompute_ties() {
  // Flat cpu id from the machine's own shape (LogicalCpu::flat() assumes the
  // paper's fixed 2x2x2 box; scaled topologies need the real strides).
  const sim::MachineParams& p = machine_->params();
  tie_of_.resize(ctxs_.size());
  for (std::size_t r = 0; r < ctxs_.size(); ++r) {
    const sim::LogicalCpu c = ctxs_[r]->id();
    tie_of_[r] = (c.chip * p.cores_per_chip + c.core) * p.contexts_per_core +
                 c.context;
  }
}

void Team::enable_parallel(int threads, double window) {
  if (threads <= 1) {
    par_.reset();
    return;
  }
  par_ = std::make_unique<ParRuntime>();
  par_->session = std::make_unique<par::Session>(threads, window);
  par_->crew = std::make_unique<par::Crew>(threads - 1);
  par_->heaps.resize(static_cast<std::size_t>(threads));
  par_->rank_counters.resize(ctxs_.size());
  par_->max_lps = threads;
}

bool Team::par_region_prepare() {
  ParRuntime& rt = *par_;
  const int nt = size();
  // Shard along coherence-domain boundaries: contexts sharing any cache
  // always land in the same LP, so every cache has exactly one writer
  // thread and only directory/bus/memory interactions need the token.
  std::vector<int> rank_domain(static_cast<std::size_t>(nt));
  std::vector<int> domains;
  domains.reserve(static_cast<std::size_t>(nt));
  for (int r = 0; r < nt; ++r) {
    const sim::LogicalCpu cpu = ctxs_[r]->id();
    const int core_id =
        cpu.chip * machine_->params().cores_per_chip + cpu.core;
    const int d = machine_->domain_of_core(core_id);
    rank_domain[static_cast<std::size_t>(r)] = d;
    domains.push_back(d);
  }
  std::sort(domains.begin(), domains.end());
  domains.erase(std::unique(domains.begin(), domains.end()), domains.end());
  const int n_lp =
      std::min(rt.max_lps, static_cast<int>(domains.size()));
  if (n_lp < 2) {
    // One domain (or --par=1 after clamping): nothing to shard.
    ++rt.session->stats().serial_regions;
    return false;
  }
  rt.n_lp = n_lp;
  // Block-partition the (ascending) domain list over the LPs.
  rt.domain_lp.assign(static_cast<std::size_t>(machine_->domain_count()), -1);
  for (std::size_t i = 0; i < domains.size(); ++i) {
    rt.domain_lp[static_cast<std::size_t>(domains[i])] =
        static_cast<int>(i * static_cast<std::size_t>(n_lp) / domains.size());
  }
  rt.rank_lp.resize(static_cast<std::size_t>(nt));
  rt.initial_lbs.assign(static_cast<std::size_t>(n_lp),
                        std::numeric_limits<double>::infinity());
  for (int r = 0; r < nt; ++r) {
    const int lp =
        rt.domain_lp[static_cast<std::size_t>(rank_domain[static_cast<std::size_t>(r)])];
    rt.rank_lp[static_cast<std::size_t>(r)] = lp;
    rt.initial_lbs[static_cast<std::size_t>(lp)] =
        std::min(rt.initial_lbs[static_cast<std::size_t>(lp)],
                 ctxs_[static_cast<std::size_t>(r)]->now());
  }
  return true;
}

void Team::par_region_begin() {
  ParRuntime& rt = *par_;
  for (std::size_t r = 0; r < ctxs_.size(); ++r) {
    rt.rank_counters[r] = perf::CounterSet{};
    ctxs_[r]->redirect_counters(&rt.rank_counters[r]);
  }
  rt.session->begin_region(rt.n_lp, rt.initial_lbs.data());
  machine_->par_begin_region(rt.session.get(), rt.domain_lp);
  ++rt.session->stats().parallel_regions;
}

void Team::par_region_end(bool ok) {
  ParRuntime& rt = *par_;
  machine_->par_end_region();
  rt.session->end_region();
  for (std::size_t r = 0; r < ctxs_.size(); ++r) {
    ctxs_[r]->redirect_counters(counters_);
  }
  if (ok) {
    // Rank-order fold of the LP-local shards: commutative uint64 sums, so
    // the total is bit-identical to serial accumulation.  An aborted
    // region's shards are garbage and are simply dropped — the caller
    // resets the machine and re-runs serially.
    for (const perf::CounterSet& cs : rt.rank_counters) *counters_ += cs;
  }
}

void Team::par_guard_construct() {
  par::ThreadState& t = par::tls();
  if (t.session == nullptr) return;
  t.session->note_conflict();
  throw par::Abort{"unsupported construct in parallel region"};
}

void Team::build_static_chunks(
    std::size_t begin, std::size_t end, Schedule sched,
    std::vector<std::vector<std::pair<std::size_t, std::size_t>>>& chunks) {
  if (sched.kind != ScheduleKind::kStatic) return;
  const int nt = size();
  const std::size_t n = end - begin;
  chunks.resize(static_cast<std::size_t>(nt));
  if (sched.chunk == 0) {
    const std::size_t per =
        (n + static_cast<std::size_t>(nt) - 1) / static_cast<std::size_t>(nt);
    for (int r = 0; r < nt; ++r) {
      const std::size_t lo = begin + static_cast<std::size_t>(r) * per;
      const std::size_t hi = std::min(end, lo + per);
      if (lo < hi) chunks[static_cast<std::size_t>(r)].push_back({lo, hi});
    }
  } else {
    std::size_t lo = begin;
    int r = 0;
    while (lo < end) {
      const std::size_t hi = std::min(end, lo + sched.chunk);
      chunks[static_cast<std::size_t>(r)].push_back({lo, hi});
      lo = hi;
      r = (r + 1) % nt;
    }
  }
}

double Team::wall_time() const noexcept {
  double t = 0;
  for (const sim::HwContext* c : ctxs_) t = std::max(t, c->now());
  return t;
}

void Team::fork() {
  // Workers that idled through a serial section catch up to the master.
  const double t = wall_time();
  for (sim::HwContext* c : ctxs_) c->set_now(t);
  // Region-boundary flush, trace mode only: hand the serial segment's
  // accumulators to the tracer before the next parallel region begins, so
  // its per-region stacks never smear serial cycles into parallel regions.
  // Gated on the machine mode, not sink presence: extra flushes change
  // counter rounding, and checked/profiled runs are bit-identity bound.
  if (machine_->params().trace_mode != sim::TraceMode::kOff) flush();
  notify_team(sim::TraceSink::TeamEvent::kFork);
}

void Team::join() {
  barrier();
  notify_team(sim::TraceSink::TeamEvent::kJoin);
}

void Team::barrier() {
  if (size() > 1) {
    // Centralized sense-reversing barrier: each thread RMWs the shared
    // counter line, which ping-pongs between the participating caches.
    for (sim::HwContext* c : ctxs_) {
      c->load(barrier_addr_, sim::Dep::kChained);
      c->store(barrier_addr_);
    }
  }
  const double t = wall_time();
  for (sim::HwContext* c : ctxs_) c->set_now(t);
  flush();
  notify_team(sim::TraceSink::TeamEvent::kBarrier);
}

void Team::flush() {
  for (sim::HwContext* c : ctxs_) c->flush_accumulators();
}

void Team::repin(int rank, sim::LogicalCpu to, double os_penalty_cycles) {
  sim::HwContext& dst = machine_->context(to);
  sim::HwContext& src = *ctxs_[rank];
  if (&dst == &src) return;
  // Account the time the thread has accrued on the old context before it
  // leaves, so nothing is lost if the old context is never used again.
  src.flush_accumulators();
  dst.bind(counters_, code_base_);
  dst.set_now(std::max(dst.now(), src.now()));
  dst.os_overhead(os_penalty_cycles);
  if (sim::TraceSink* sink = machine_->trace_sink()) {
    sink->on_thread_moved(src, dst);
  }
  ctxs_[rank] = &dst;
  recompute_ties();
}

void Team::notify_team(sim::TraceSink::TeamEvent ev) {
  sim::TraceSink* sink = machine_->trace_sink();
  if (sink == nullptr) return;
  members_scratch_.assign(ctxs_.begin(), ctxs_.end());
  sink->on_team(ev, this, members_scratch_.data(), members_scratch_.size());
}

void Team::notify_loop(sim::BlockId body, std::size_t begin, std::size_t end) {
  if (sim::TraceSink* sink = machine_->trace_sink()) {
    sink->on_loop(*ctxs_[0], body, begin, end);
  }
}

void Team::sync_acquire(sim::HwContext& ctx, sim::Addr addr) {
  if (sim::TraceSink* sink = machine_->trace_sink()) {
    sink->on_sync(sim::TraceSink::SyncOp::kAcquire, ctx, addr);
  }
}

void Team::sync_release(sim::HwContext& ctx, sim::Addr addr) {
  if (sim::TraceSink* sink = machine_->trace_sink()) {
    sink->on_sync(sim::TraceSink::SyncOp::kRelease, ctx, addr);
  }
}

void Team::sync_combine(sim::HwContext& ctx, sim::Addr addr) {
  if (sim::TraceSink* sink = machine_->trace_sink()) {
    sink->on_sync(sim::TraceSink::SyncOp::kCombine, ctx, addr);
  }
}

}  // namespace paxsim::xomp
