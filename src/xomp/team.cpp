#include "xomp/team.hpp"

#include <algorithm>
#include <cassert>

namespace paxsim::xomp {

Team::Team(sim::Machine& machine, std::vector<sim::LogicalCpu> cpus,
           perf::CounterSet* counters, sim::AddressSpace& space)
    : machine_(&machine), counters_(counters), code_base_(space.code_base()) {
  assert(!cpus.empty() && "a team needs at least one thread");
  ctxs_.reserve(cpus.size());
  for (const sim::LogicalCpu cpu : cpus) {
    sim::HwContext& ctx = machine.context(cpu);
    ctx.bind(counters, code_base_);
    ctxs_.push_back(&ctx);
  }
  // One cache line each so runtime structures do not falsely share.
  lock_addr_ = space.alloc(64, 64);
  cursor_addr_ = space.alloc(64, 64);
  barrier_addr_ = space.alloc(64, 64);
  reduction_addr_ = space.alloc(64 * ctxs_.size(), 64);
  if (sim::TraceSink* sink = machine_->trace_sink()) {
    // The runtime's own shared lines model atomic hardware operations;
    // declare them so the race detector exempts the plain load/store
    // sequences the runtime issues against them.
    sink->on_runtime_range(lock_addr_, 64);
    sink->on_runtime_range(cursor_addr_, 64);
    sink->on_runtime_range(barrier_addr_, 64);
    sink->on_runtime_range(reduction_addr_, 64 * ctxs_.size());
  }
  notify_team(sim::TraceSink::TeamEvent::kCreate);
}

double Team::wall_time() const noexcept {
  double t = 0;
  for (const sim::HwContext* c : ctxs_) t = std::max(t, c->now());
  return t;
}

void Team::fork() {
  // Workers that idled through a serial section catch up to the master.
  const double t = wall_time();
  for (sim::HwContext* c : ctxs_) c->set_now(t);
  // Region-boundary flush, trace mode only: hand the serial segment's
  // accumulators to the tracer before the next parallel region begins, so
  // its per-region stacks never smear serial cycles into parallel regions.
  // Gated on the machine mode, not sink presence: extra flushes change
  // counter rounding, and checked/profiled runs are bit-identity bound.
  if (machine_->params().trace_mode != sim::TraceMode::kOff) flush();
  notify_team(sim::TraceSink::TeamEvent::kFork);
}

void Team::join() {
  barrier();
  notify_team(sim::TraceSink::TeamEvent::kJoin);
}

void Team::barrier() {
  if (size() > 1) {
    // Centralized sense-reversing barrier: each thread RMWs the shared
    // counter line, which ping-pongs between the participating caches.
    for (sim::HwContext* c : ctxs_) {
      c->load(barrier_addr_, sim::Dep::kChained);
      c->store(barrier_addr_);
    }
  }
  const double t = wall_time();
  for (sim::HwContext* c : ctxs_) c->set_now(t);
  flush();
  notify_team(sim::TraceSink::TeamEvent::kBarrier);
}

void Team::flush() {
  for (sim::HwContext* c : ctxs_) c->flush_accumulators();
}

void Team::repin(int rank, sim::LogicalCpu to, double os_penalty_cycles) {
  sim::HwContext& dst = machine_->context(to);
  sim::HwContext& src = *ctxs_[rank];
  if (&dst == &src) return;
  // Account the time the thread has accrued on the old context before it
  // leaves, so nothing is lost if the old context is never used again.
  src.flush_accumulators();
  dst.bind(counters_, code_base_);
  dst.set_now(std::max(dst.now(), src.now()));
  dst.os_overhead(os_penalty_cycles);
  if (sim::TraceSink* sink = machine_->trace_sink()) {
    sink->on_thread_moved(src, dst);
  }
  ctxs_[rank] = &dst;
}

void Team::notify_team(sim::TraceSink::TeamEvent ev) {
  sim::TraceSink* sink = machine_->trace_sink();
  if (sink == nullptr) return;
  members_scratch_.assign(ctxs_.begin(), ctxs_.end());
  sink->on_team(ev, this, members_scratch_.data(), members_scratch_.size());
}

void Team::notify_loop(sim::BlockId body, std::size_t begin, std::size_t end) {
  if (sim::TraceSink* sink = machine_->trace_sink()) {
    sink->on_loop(*ctxs_[0], body, begin, end);
  }
}

void Team::sync_acquire(sim::HwContext& ctx, sim::Addr addr) {
  if (sim::TraceSink* sink = machine_->trace_sink()) {
    sink->on_sync(sim::TraceSink::SyncOp::kAcquire, ctx, addr);
  }
}

void Team::sync_release(sim::HwContext& ctx, sim::Addr addr) {
  if (sim::TraceSink* sink = machine_->trace_sink()) {
    sink->on_sync(sim::TraceSink::SyncOp::kRelease, ctx, addr);
  }
}

void Team::sync_combine(sim::HwContext& ctx, sim::Addr addr) {
  if (sim::TraceSink* sink = machine_->trace_sink()) {
    sink->on_sync(sim::TraceSink::SyncOp::kCombine, ctx, addr);
  }
}

}  // namespace paxsim::xomp
