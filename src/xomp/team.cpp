#include "xomp/team.hpp"

#include <algorithm>
#include <cassert>

namespace paxsim::xomp {

Team::Team(sim::Machine& machine, std::vector<sim::LogicalCpu> cpus,
           perf::CounterSet* counters, sim::AddressSpace& space)
    : machine_(&machine), counters_(counters), code_base_(space.code_base()) {
  assert(!cpus.empty() && "a team needs at least one thread");
  ctxs_.reserve(cpus.size());
  for (const sim::LogicalCpu cpu : cpus) {
    sim::HwContext& ctx = machine.context(cpu);
    ctx.bind(counters, code_base_);
    ctxs_.push_back(&ctx);
  }
  // One cache line each so runtime structures do not falsely share.
  lock_addr_ = space.alloc(64, 64);
  cursor_addr_ = space.alloc(64, 64);
  barrier_addr_ = space.alloc(64, 64);
  reduction_addr_ = space.alloc(64 * ctxs_.size(), 64);
}

double Team::wall_time() const noexcept {
  double t = 0;
  for (const sim::HwContext* c : ctxs_) t = std::max(t, c->now());
  return t;
}

void Team::fork() {
  // Workers that idled through a serial section catch up to the master.
  const double t = wall_time();
  for (sim::HwContext* c : ctxs_) c->set_now(t);
}

void Team::join() { barrier(); }

void Team::barrier() {
  if (size() > 1) {
    // Centralized sense-reversing barrier: each thread RMWs the shared
    // counter line, which ping-pongs between the participating caches.
    for (sim::HwContext* c : ctxs_) {
      c->load(barrier_addr_, sim::Dep::kChained);
      c->store(barrier_addr_);
    }
  }
  const double t = wall_time();
  for (sim::HwContext* c : ctxs_) c->set_now(t);
  flush();
}

void Team::flush() {
  for (sim::HwContext* c : ctxs_) c->flush_accumulators();
}

void Team::repin(int rank, sim::LogicalCpu to, double os_penalty_cycles) {
  sim::HwContext& dst = machine_->context(to);
  sim::HwContext& src = *ctxs_[rank];
  if (&dst == &src) return;
  // Account the time the thread has accrued on the old context before it
  // leaves, so nothing is lost if the old context is never used again.
  src.flush_accumulators();
  dst.bind(counters_, code_base_);
  dst.set_now(std::max(dst.now(), src.now()));
  dst.os_overhead(os_penalty_cycles);
  ctxs_[rank] = &dst;
}

}  // namespace paxsim::xomp
